//! Loss helpers.

/// Numerically stable sigmoid.
#[inline]
pub fn sigmoid(x: f32) -> f32 {
    if x >= 0.0 {
        1.0 / (1.0 + (-x).exp())
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}

/// Sigmoid cross-entropy loss for one logit/target pair (target ∈ {0,1}).
#[inline]
pub fn bce_with_logits(logit: f32, target: f32) -> f32 {
    // max(x,0) - x*z + ln(1 + e^{-|x|})  (TensorFlow's stable form)
    logit.max(0.0) - logit * target + (1.0 + (-logit.abs()).exp()).ln()
}

/// Gradient of [`bce_with_logits`] w.r.t. the logit: `σ(x) − z`.
#[inline]
pub fn bce_grad(logit: f32, target: f32) -> f32 {
    sigmoid(logit) - target
}

/// Softmax over logits (stable), returning probabilities.
pub fn softmax(logits: &[f32]) -> Vec<f32> {
    let max = logits.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    let exps: Vec<f32> = logits.iter().map(|&x| (x - max).exp()).collect();
    let sum: f32 = exps.iter().sum();
    exps.into_iter().map(|e| e / sum.max(f32::MIN_POSITIVE)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sigmoid_symmetry_and_bounds() {
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-6);
        assert!((sigmoid(10.0) - 1.0).abs() < 1e-4);
        assert!(sigmoid(-10.0) < 1e-4);
        assert!((sigmoid(3.0) + sigmoid(-3.0) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn bce_matches_naive_formula() {
        for (x, z) in [(0.5f32, 1.0f32), (-2.0, 0.0), (3.0, 1.0), (-1.0, 1.0)] {
            let p = sigmoid(x);
            let naive = -(z * p.ln() + (1.0 - z) * (1.0 - p).ln());
            assert!((bce_with_logits(x, z) - naive).abs() < 1e-5, "x={x} z={z}");
        }
    }

    #[test]
    fn bce_grad_sign() {
        assert!(bce_grad(2.0, 0.0) > 0.0);
        assert!(bce_grad(-2.0, 1.0) < 0.0);
    }

    #[test]
    fn softmax_sums_to_one() {
        let p = softmax(&[1.0, 2.0, 3.0]);
        assert!((p.iter().sum::<f32>() - 1.0).abs() < 1e-6);
        assert!(p[2] > p[1] && p[1] > p[0]);
        // Stability under large logits.
        let p = softmax(&[1000.0, 1000.0]);
        assert!((p[0] - 0.5).abs() < 1e-6);
    }
}
