//! Persistent match artifacts — save a fitted model's matching state to
//! disk and match from it later without re-training.
//!
//! The paper notes that "any downstream classifier can be trained using
//! the embeddings from our solution" (§I); that requires the embeddings
//! to outlive the fitting process. A [`MatchArtifact`] holds everything
//! matching needs: the term vectors and both corpora's document vectors,
//! the latter as pre-normalized [`ScoreMatrix`]es — the same
//! normalize-once / dot-many layout the live
//! [`TdModel`](crate::pipeline::TdModel) scores with, so a loaded
//! artifact matches at full engine speed with **no per-call
//! re-normalization**.
//!
//! # Format (version 2, `TDZ1` container)
//!
//! Artifacts serialize into the shared zero-copy container
//! (`tdmatch_graph::container`): little-endian sections at 64-byte
//! aligned offsets, each CRC-32 sealed. Sections:
//!
//! ```text
//! AHDR   u64 × 3: format version (2), dim, term count
//! ALBL   per term: u32 label length, UTF-8 label (sorted by label)
//! AVEC   term vectors, term-major f32, term count × dim
//! SMH0/SMD0/SMV0   first-corpus ScoreMatrix (header/rows/bitmap)
//! SMH1/SMD1/SMV1   second-corpus ScoreMatrix
//! ANH0/ANS0/ANO0/ANE0   optional HNSW index over the first corpus
//! ```
//!
//! The ANN sections are written only when the artifact carries an index
//! (see [`MatchArtifact::build_ann`]); artifacts without one are
//! byte-identical to before the sections existed, and loaders ignore
//! their absence.
//!
//! Loading via [`MatchArtifact::from_storage`] is zero-copy: both
//! document matrices are views into the container buffer. The legacy v1
//! stream (`TDM1` magic: raw `Option<Vec<f32>>` rows, whole-stream CRC)
//! is still readable — [`read_from`](MatchArtifact::read_from) detects
//! the magic and upgrades v1 payloads into the flat layout on load
//! (normalizing once, at load time instead of per match call).
//!
//! # Cross-process serving
//!
//! [`MatchArtifact::load`] opens the file through
//! `tdmatch_graph::container::Storage::open`, which memory-maps it on
//! 64-bit unix: N serving processes loading the same artifact share
//! **one** physical copy of the matrices through the OS page cache
//! (private heap copies appear only on platforms without mmap, or when
//! mapping fails). The byte-level container spec lives in
//! `docs/FORMAT.md` at the repository root.

use std::collections::HashMap;
use std::io::{self, Read, Write};
use std::path::Path;

use tdmatch_embed::ann::{HnswIndex, HnswParams, SearchScratch};
use tdmatch_embed::score::ScoreMatrix;
use tdmatch_graph::container::{pod_bytes, ContainerWriter, SectionTag, Storage};
use tdmatch_graph::persist::{crc32, put_f32s, put_u32, ByteReader, DecodeError};

use crate::delta::{DeltaBatch, DeltaOp, DeltaSummary};
use crate::matcher::{top_k_matches_matrix, MatchResult};

/// Current on-disk format version (`TDZ1` container).
pub const FORMAT_VERSION: u32 = 2;

/// Largest embedding dimensionality the decoders accept. Far above any
/// real configuration; a header claiming more is hostile or corrupt.
pub const MAX_DIM: usize = 1 << 20;

const MAGIC_V1: [u8; 4] = *b"TDM1";
const MAGIC_CONTAINER: [u8; 4] = *b"TDZ1";

/// Section: `[format_version, dim, term count]` as `u64`s.
pub const SEC_ARTIFACT_HEADER: SectionTag = *b"AHDR";
/// Section: length-prefixed term labels, sorted.
pub const SEC_TERM_LABELS: SectionTag = *b"ALBL";
/// Section: flat term vectors (`f32`, term-major).
pub const SEC_TERM_VECTORS: SectionTag = *b"AVEC";

/// ScoreMatrix slot of the first corpus inside the container.
pub const FIRST_SLOT: u8 = 0;
/// ScoreMatrix slot of the second corpus inside the container.
pub const SECOND_SLOT: u8 = 1;

/// Errors raised when saving or loading a [`MatchArtifact`].
#[derive(Debug)]
pub enum PersistError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// The file does not start with a known TDmatch magic.
    BadMagic,
    /// The file's format version is not supported by this build.
    UnsupportedVersion {
        /// Version found in the file.
        found: u32,
    },
    /// The checksum does not match: the file is truncated or corrupt.
    Corrupt,
    /// A label is not valid UTF-8 (implies corruption).
    BadLabel,
    /// Structurally invalid or implausible content (hostile header
    /// fields, section shape mismatches).
    Invalid(&'static str),
}

impl From<io::Error> for PersistError {
    fn from(e: io::Error) -> Self {
        PersistError::Io(e)
    }
}

impl std::fmt::Display for PersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "I/O error: {e}"),
            PersistError::BadMagic => write!(f, "not a TDmatch artifact (bad magic)"),
            PersistError::UnsupportedVersion { found } => {
                write!(f, "unsupported artifact version {found} (supported: 1, {FORMAT_VERSION})")
            }
            PersistError::Corrupt => write!(f, "artifact checksum mismatch (corrupt file)"),
            PersistError::BadLabel => write!(f, "artifact contains a non-UTF-8 label"),
            PersistError::Invalid(what) => write!(f, "invalid artifact content: {what}"),
        }
    }
}

impl std::error::Error for PersistError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PersistError::Io(e) => Some(e),
            _ => None,
        }
    }
}

/// Maps shared decode errors into artifact persistence errors.
impl From<DecodeError> for PersistError {
    fn from(e: DecodeError) -> Self {
        match e {
            DecodeError::Io(io) => PersistError::Io(io),
            DecodeError::BadMagic => PersistError::BadMagic,
            DecodeError::UnsupportedVersion { found } => {
                PersistError::UnsupportedVersion { found }
            }
            DecodeError::Corrupt => PersistError::Corrupt,
            DecodeError::Invalid(what) => PersistError::Invalid(what),
        }
    }
}

/// A self-contained, persistable matching state: term embeddings plus
/// both corpora's document embeddings as pre-normalized score matrices.
///
/// Obtained from [`TdModel::artifact`](crate::pipeline::TdModel::artifact)
/// or loaded from disk with [`MatchArtifact::load`] /
/// [`MatchArtifact::from_storage`].
///
/// Document vectors are stored (and returned by
/// [`first_vector`](MatchArtifact::first_vector) /
/// [`second_vector`](MatchArtifact::second_vector)) **L2-normalized** —
/// cosine rankings are unchanged, and matching needs no per-call work.
/// Term vectors stay raw, so [`embed_tokens`](MatchArtifact::embed_tokens)
/// aggregates exactly like the fitted model's vocabulary.
#[derive(Debug, Clone)]
pub struct MatchArtifact {
    dim: usize,
    /// Term label → embedding, sorted by label for deterministic files.
    terms: Vec<(String, Vec<f32>)>,
    term_index: HashMap<String, usize>,
    first: ScoreMatrix,
    second: ScoreMatrix,
    /// Optional HNSW index over the first (target-side) corpus.
    ann: Option<HnswIndex>,
}

impl PartialEq for MatchArtifact {
    fn eq(&self, other: &Self) -> bool {
        self.dim == other.dim
            && self.terms == other.terms
            && self.first == other.first
            && self.second == other.second
            && self.ann == other.ann
    }
}

/// Term label → embedding pairs, sorted by label.
type TermTable = Vec<(String, Vec<f32>)>;

fn sort_and_index(mut terms: TermTable) -> (TermTable, HashMap<String, usize>) {
    terms.sort_by(|a, b| a.0.cmp(&b.0));
    terms.dedup_by(|b, a| a.0 == b.0);
    let index = terms
        .iter()
        .enumerate()
        .map(|(i, (label, _))| (label.clone(), i))
        .collect();
    (terms, index)
}

impl MatchArtifact {
    /// Assembles an artifact from raw (un-normalized) parts. Vectors must
    /// all have length `dim`; term labels must be unique (later
    /// duplicates are dropped). Document rows are normalized once, here.
    pub fn new(
        dim: usize,
        terms: Vec<(String, Vec<f32>)>,
        first: Vec<Option<Vec<f32>>>,
        second: Vec<Option<Vec<f32>>>,
    ) -> Self {
        debug_assert!(first.iter().flatten().all(|v| v.len() == dim));
        debug_assert!(second.iter().flatten().all(|v| v.len() == dim));
        Self::from_matrices(
            dim,
            terms,
            ScoreMatrix::from_options_dim(&first, dim),
            ScoreMatrix::from_options_dim(&second, dim),
        )
    }

    /// Assembles an artifact from already-normalized score matrices —
    /// the allocation-free path used by
    /// [`TdModel::artifact`](crate::pipeline::TdModel::artifact).
    pub fn from_matrices(
        dim: usize,
        terms: Vec<(String, Vec<f32>)>,
        first: ScoreMatrix,
        second: ScoreMatrix,
    ) -> Self {
        debug_assert!(terms.iter().all(|(_, v)| v.len() == dim));
        assert_eq!(first.dim(), dim, "first matrix dim must equal artifact dim");
        assert_eq!(second.dim(), dim, "second matrix dim must equal artifact dim");
        let (terms, term_index) = sort_and_index(terms);
        Self {
            dim,
            terms,
            term_index,
            first,
            second,
            ann: None,
        }
    }

    /// Embedding dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of stored term vectors.
    pub fn term_count(&self) -> usize {
        self.terms.len()
    }

    /// The frozen vocabulary's labels, in stored (sorted) order — the
    /// terms a delta batch can embed against.
    pub fn term_labels(&self) -> impl Iterator<Item = &str> {
        self.terms.iter().map(|(label, _)| label.as_str())
    }

    /// `(first corpus size, second corpus size)`.
    pub fn corpus_sizes(&self) -> (usize, usize) {
        (self.first.rows(), self.second.rows())
    }

    /// The pre-normalized first-corpus (target-side) matrix.
    pub fn first_matrix(&self) -> &ScoreMatrix {
        &self.first
    }

    /// The pre-normalized second-corpus (query-side) matrix.
    pub fn second_matrix(&self) -> &ScoreMatrix {
        &self.second
    }

    /// True when the document matrices still borrow container storage
    /// (i.e. the artifact was loaded zero-copy).
    pub fn is_zero_copy(&self) -> bool {
        self.first.is_zero_copy() || self.second.is_zero_copy()
    }

    /// The stored (raw) embedding of a term, if present.
    pub fn term_vector(&self, term: &str) -> Option<&[f32]> {
        self.term_index
            .get(term)
            .map(|&i| self.terms[i].1.as_slice())
    }

    /// The stored normalized embedding of document `idx` in the first
    /// corpus.
    pub fn first_vector(&self, idx: usize) -> Option<&[f32]> {
        (idx < self.first.rows() && self.first.is_valid(idx)).then(|| self.first.row(idx))
    }

    /// The stored normalized embedding of document `idx` in the second
    /// corpus.
    pub fn second_vector(&self, idx: usize) -> Option<&[f32]> {
        (idx < self.second.rows() && self.second.is_valid(idx)).then(|| self.second.row(idx))
    }

    /// Ranks the top-`k` first-corpus documents for every second-corpus
    /// document — the same matching as
    /// [`TdModel::match_top_k`](crate::pipeline::TdModel::match_top_k),
    /// without the graph: a dot-many scan over the stored pre-normalized
    /// matrices.
    pub fn match_top_k(&self, k: usize) -> Vec<MatchResult> {
        top_k_matches_matrix(&self.second, &self.first, k, None, None)
    }

    /// Builds (or rebuilds) the HNSW index over the first (target-side)
    /// corpus. `O(T log T)` distance evaluations — a build-time cost;
    /// queries afterwards retrieve candidate pools in ~`O(pool log T)`.
    pub fn build_ann(&mut self, params: &HnswParams) {
        self.ann = Some(HnswIndex::build(&self.first, params));
    }

    /// Drops the stored ANN index (subsequent saves omit its sections).
    pub fn clear_ann(&mut self) {
        self.ann = None;
    }

    /// The stored ANN index over the first corpus, when present.
    pub fn ann(&self) -> Option<&HnswIndex> {
        self.ann.as_ref()
    }

    /// The candidate pool for one query row: the ANN index's widened
    /// pool **plus every invalid target row** — the exact scan offers
    /// invalid rows too (they score exactly `-1.0`), so appending them
    /// keeps missing-target semantics identical, and a pool widened to
    /// the corpus size reproduces the exact scan bit-for-bit.
    ///
    /// Returns `None` when no index is stored.
    pub fn ann_pool(&self, qrow: &[f32], pool: usize) -> Option<Vec<usize>> {
        self.ann_pool_with(qrow, pool, pool, &mut SearchScratch::new())
    }

    /// [`ann_pool`](MatchArtifact::ann_pool) with an explicit beam
    /// width (`ef`, clamped up to `pool`) and a caller-owned
    /// [`SearchScratch`]. Batching callers keep one scratch per worker
    /// and reuse it across every query of a batch — one visited-set
    /// allocation per batch instead of one per query, bit-identical
    /// results either way.
    pub fn ann_pool_with(
        &self,
        qrow: &[f32],
        pool: usize,
        ef: usize,
        scratch: &mut SearchScratch,
    ) -> Option<Vec<usize>> {
        let ann = self.ann.as_ref()?;
        let mut cands = ann.search_with(&self.first, qrow, pool, ef, scratch);
        cands.extend((0..self.first.rows()).filter(|&t| !self.first.is_valid(t)));
        Some(cands)
    }

    /// [`match_top_k`](MatchArtifact::match_top_k) through the ANN
    /// index: each query retrieves a widened pool of `pool` candidates
    /// which is then exact-rescored with the engine's own kernels — the
    /// published ranking keeps the engine's exact total order over the
    /// pool. Falls back to the exact scan when no index is stored.
    pub fn match_top_k_ann(&self, k: usize, pool: usize) -> Vec<MatchResult> {
        self.match_top_k_ann_with(k, pool, pool)
    }

    /// [`match_top_k_ann`](MatchArtifact::match_top_k_ann) with an
    /// explicit search beam (`ef`, clamped up to `pool`). One
    /// [`SearchScratch`] is reused across the whole batch.
    pub fn match_top_k_ann_with(&self, k: usize, pool: usize, ef: usize) -> Vec<MatchResult> {
        if self.ann.is_none() {
            return self.match_top_k(k);
        }
        let scratch = std::cell::RefCell::new(SearchScratch::new());
        let cand = |q: usize| {
            self.ann_pool_with(self.second.row(q), pool, ef, &mut scratch.borrow_mut())
                .expect("index presence checked above")
        };
        top_k_matches_matrix(&self.second, &self.first, k, None, Some(&cand))
    }

    /// Embeds an *unseen* document as the mean of its known terms' vectors
    /// (the standard aggregation the paper uses for its W2VEC baseline,
    /// §V: "We generate embeddings for longer texts with the mean of the
    /// vectors of their tokens"). Returns `None` when no token is in the
    /// stored vocabulary.
    ///
    /// Tokens should be pre-processed the same way the model was fitted
    /// (e.g. via `tdmatch-text`'s `Preprocessor::base_tokens`).
    pub fn embed_tokens<S: AsRef<str>>(&self, tokens: &[S]) -> Option<Vec<f32>> {
        let mut sum = vec![0.0f32; self.dim];
        let mut hits = 0usize;
        for tok in tokens {
            if let Some(v) = self.term_vector(tok.as_ref()) {
                for (s, x) in sum.iter_mut().zip(v) {
                    *s += x;
                }
                hits += 1;
            }
        }
        if hits == 0 {
            return None;
        }
        let inv = 1.0 / hits as f32;
        for s in &mut sum {
            *s *= inv;
        }
        Some(sum)
    }

    /// Ranks the top-`k` first-corpus documents for one *out-of-corpus*
    /// query given as pre-processed tokens. Queries whose tokens are all
    /// unknown yield an empty ranking.
    pub fn match_new_query<S: AsRef<str>>(&self, tokens: &[S], k: usize) -> MatchResult {
        let mut query = ScoreMatrix::invalid(1, self.dim);
        if let Some(v) = self.embed_tokens(tokens) {
            query.set_row(0, &v);
        }
        let mut results = top_k_matches_matrix(&query, &self.first, k, None, None);
        results.swap_remove(0)
    }

    /// Applies a corpus delta in place: appends / re-embeds / tombstones
    /// target-side rows against the **frozen** vocabulary, and keeps a
    /// carried ANN index in sync through the incremental
    /// [`HnswIndex::insert`] path — no refit, no index rebuild.
    ///
    /// Untouched rows keep their exact bits, and every touched row runs
    /// the same [`embed_tokens`](MatchArtifact::embed_tokens) →
    /// normalize path a full re-export would, so the delta-updated
    /// artifact ranks **bit-identically** to a from-scratch export of
    /// the final corpus under the same vocabulary
    /// (`crates/core/tests/delta_prop.rs` pins this). A document with no
    /// known term gets an invalid row: still addressable, scores exactly
    /// −1.0 — identical to a fit that could not embed it.
    ///
    /// Ops apply in batch order; appends allocate row indices past the
    /// current corpus, so later ops may address rows appended earlier in
    /// the same batch. The whole batch is bounds-checked up front — an
    /// out-of-bounds target returns `PersistError::Invalid` *before any
    /// mutation*, leaving the artifact untouched.
    pub fn apply_delta(&mut self, batch: &DeltaBatch) -> Result<DeltaSummary, PersistError> {
        let old_rows = self.first.rows();
        let mut rows = old_rows;
        for op in &batch.ops {
            match op {
                DeltaOp::Append { .. } => rows += 1,
                DeltaOp::Update { target, .. } | DeltaOp::Tombstone { target } => {
                    if *target >= rows {
                        return Err(PersistError::Invalid("delta target out of bounds"));
                    }
                }
            }
        }

        // Pre-delta index membership (= row validity, the invariant the
        // build and every previous delta maintain), captured before any
        // row changes: `HnswIndex::insert` wants `removed` to name
        // *current* members.
        let members: Vec<bool> = if self.ann.is_some() {
            (0..old_rows).map(|i| self.first.is_valid(i)).collect()
        } else {
            Vec::new()
        };

        let mut summary = DeltaSummary { rows, ..Default::default() };
        let mut touched: Vec<usize> = Vec::with_capacity(batch.ops.len());
        self.first.grow_rows(rows);
        let mut next = old_rows;
        for op in &batch.ops {
            match op {
                DeltaOp::Append { tokens } => {
                    if let Some(v) = self.embed_tokens(tokens) {
                        self.first.set_row(next, &v);
                    }
                    touched.push(next);
                    next += 1;
                    summary.appended += 1;
                }
                DeltaOp::Update { target, tokens } => {
                    match self.embed_tokens(tokens) {
                        Some(v) => self.first.set_row(*target, &v),
                        None => self.first.clear_row(*target),
                    }
                    touched.push(*target);
                    summary.updated += 1;
                }
                DeltaOp::Tombstone { target } => {
                    self.first.clear_row(*target);
                    touched.push(*target);
                    summary.tombstoned += 1;
                }
            }
        }

        if let Some(ann) = self.ann.as_mut() {
            touched.sort_unstable();
            touched.dedup();
            // A re-embedded member leaves and re-enters: its stored
            // adjacency described the old vector.
            let removed: Vec<usize> = touched
                .iter()
                .copied()
                .filter(|&i| i < old_rows && members[i])
                .collect();
            let added: Vec<usize> = touched
                .iter()
                .copied()
                .filter(|&i| self.first.is_valid(i))
                .collect();
            summary.ann_removed = removed.len();
            summary.ann_inserted = added.len();
            ann.insert(&self.first, &added, &removed);
        }
        Ok(summary)
    }

    /// Serializes into any writer as a `TDZ1` container (format v2). See
    /// the module docs for the section layout. The document matrices are
    /// borrowed by the writer and streamed out — no assembled copy.
    pub fn write_to<W: Write>(&self, w: &mut W) -> Result<(), PersistError> {
        let mut labels: Vec<u8> = Vec::new();
        let mut vecs: Vec<f32> = Vec::with_capacity(self.terms.len() * self.dim);
        for (label, vec) in &self.terms {
            put_u32(&mut labels, label.len() as u32);
            labels.extend_from_slice(label.as_bytes());
            vecs.extend_from_slice(vec);
        }
        let mut cw = ContainerWriter::new();
        cw.add(
            SEC_ARTIFACT_HEADER,
            pod_bytes(&[
                FORMAT_VERSION as u64,
                self.dim as u64,
                self.terms.len() as u64,
            ]),
        );
        cw.add(SEC_TERM_LABELS, labels);
        cw.add_pod(SEC_TERM_VECTORS, &vecs);
        self.first.write_sections(FIRST_SLOT, &mut cw);
        self.second.write_sections(SECOND_SLOT, &mut cw);
        if let Some(ann) = &self.ann {
            ann.write_sections(FIRST_SLOT, &mut cw);
        }
        cw.write_to(w).map_err(PersistError::from)
    }

    /// Dispatches on the magic bytes of fully-loaded storage: `TDZ1`
    /// containers take the zero-copy path
    /// ([`from_storage`](MatchArtifact::from_storage)), legacy `TDM1`
    /// streams are decoded and upgraded into the flat layout. This is
    /// the format-agnostic entry point [`load`](MatchArtifact::load) and
    /// [`read_from`](MatchArtifact::read_from) route through; use it
    /// directly when you already hold a [`Storage`] (e.g. to report its
    /// backing alongside the artifact).
    pub fn from_storage_any(storage: &Storage) -> Result<Self, PersistError> {
        let bytes = storage.as_bytes();
        if bytes.len() >= 4 && bytes[..4] == MAGIC_CONTAINER {
            return Self::from_storage(storage);
        }
        if bytes.len() >= 4 && bytes[..4] == MAGIC_V1 {
            return Self::read_v1(bytes);
        }
        Err(PersistError::BadMagic)
    }

    /// Deserializes from a reader: one buffer read into aligned storage,
    /// then the magic-dispatched load (zero-copy for `TDZ1`, upgrade for
    /// legacy `TDM1`).
    pub fn read_from<R: Read>(r: &mut R) -> Result<Self, PersistError> {
        let mut buf = Vec::new();
        r.read_to_end(&mut buf)?;
        Self::from_storage_any(&Storage::from_bytes(&buf))
    }

    /// Loads from container storage, zero-copy: both document matrices
    /// become views into `storage`'s buffer (kept alive by the artifact).
    /// This is the warm-start path: one linear CRC pass over the buffer
    /// plus O(terms) label decoding — the document matrices are never
    /// copied, re-allocated, or re-normalized.
    pub fn from_storage(storage: &Storage) -> Result<Self, PersistError> {
        let container = storage.container()?;
        let header = container.require(SEC_ARTIFACT_HEADER)?.as_u64s()?;
        let &[version, dim, n_terms] = header else {
            return Err(PersistError::Invalid("artifact header shape"));
        };
        if version != FORMAT_VERSION as u64 {
            return Err(PersistError::UnsupportedVersion {
                found: version.min(u32::MAX as u64) as u32,
            });
        }
        let dim = usize::try_from(dim).map_err(|_| PersistError::Corrupt)?;
        if dim > MAX_DIM {
            return Err(PersistError::Invalid("implausible dimensionality"));
        }
        let n_terms = usize::try_from(n_terms).map_err(|_| PersistError::Corrupt)?;

        let vecs = container.require(SEC_TERM_VECTORS)?.as_f32s()?;
        let expect = n_terms
            .checked_mul(dim)
            .ok_or(PersistError::Invalid("term section shape overflows"))?;
        if vecs.len() != expect {
            return Err(PersistError::Invalid("term vector length mismatch"));
        }
        let mut labels = container.require(SEC_TERM_LABELS)?.reader()?;
        let mut terms = Vec::with_capacity(n_terms.min(1 << 20));
        for i in 0..n_terms {
            let label = labels.string().map_err(|e| match e {
                DecodeError::Invalid(_) => PersistError::BadLabel,
                other => other.into(),
            })?;
            terms.push((label, vecs[i * dim..(i + 1) * dim].to_vec()));
        }
        if labels.remaining() != 0 {
            return Err(PersistError::Invalid("trailing bytes in label section"));
        }

        let first = ScoreMatrix::from_sections(storage, &container, FIRST_SLOT)?;
        let second = ScoreMatrix::from_sections(storage, &container, SECOND_SLOT)?;
        if first.dim() != dim || second.dim() != dim {
            return Err(PersistError::Invalid("matrix dim disagrees with header"));
        }
        let ann = if HnswIndex::present(&container, FIRST_SLOT) {
            let index = HnswIndex::from_sections(storage, &container, FIRST_SLOT)?;
            if index.rows() != first.rows() {
                return Err(PersistError::Invalid("ann index shape disagrees with matrix"));
            }
            Some(index)
        } else {
            None
        };
        let (terms, term_index) = sort_and_index(terms);
        Ok(Self {
            dim,
            terms,
            term_index,
            first,
            second,
            ann,
        })
    }

    /// Decodes the legacy v1 stream (raw optional rows, whole-stream
    /// CRC), normalizing the document rows once into the flat layout.
    ///
    /// Header fields are sanity-limited *before* any allocation sized by
    /// them: a hostile header whose claimed sizes exceed the stream
    /// length (or overflow) is rejected up front.
    fn read_v1(buf: &[u8]) -> Result<Self, PersistError> {
        if buf.len() < MAGIC_V1.len() + 8 {
            return Err(PersistError::Corrupt);
        }
        let body_len = buf.len() - 4;
        let stored_crc = u32::from_le_bytes(buf[body_len..].try_into().unwrap());
        if crc32(&buf[..body_len]) != stored_crc {
            return Err(PersistError::Corrupt);
        }
        let mut cur = ByteReader::new(&buf[..body_len], 4);
        let version = cur.u32()?;
        if version != 1 {
            return Err(PersistError::UnsupportedVersion { found: version });
        }
        let dim = cur.u32()? as usize;
        if dim > MAX_DIM {
            return Err(PersistError::Invalid("implausible dimensionality"));
        }
        let vec_bytes = dim * 4; // ≤ 4 MiB by the MAX_DIM check
        let n_terms = cur.u32()? as usize;
        // Every term costs at least a length prefix plus one vector;
        // reject counts the stream cannot possibly hold before reserving.
        if n_terms
            .checked_mul(4 + vec_bytes)
            .is_none_or(|need| need > cur.remaining())
        {
            return Err(PersistError::Invalid("term count exceeds stream length"));
        }
        let mut terms = Vec::with_capacity(n_terms);
        for _ in 0..n_terms {
            let len = cur.u32()? as usize;
            let label = String::from_utf8(cur.bytes(len)?.to_vec())
                .map_err(|_| PersistError::BadLabel)?;
            terms.push((label, cur.f32s(dim)?));
        }
        let mut sides: [Vec<Option<Vec<f32>>>; 2] = [Vec::new(), Vec::new()];
        for side in &mut sides {
            let n = cur.u32()? as usize;
            // Each document costs at least its presence byte.
            if n > cur.remaining() {
                return Err(PersistError::Invalid("corpus size exceeds stream length"));
            }
            side.reserve(n);
            for _ in 0..n {
                let present = cur.bytes(1)?[0];
                side.push(if present == 1 {
                    Some(cur.f32s(dim)?)
                } else {
                    None
                });
            }
        }
        let [first, second] = sides;
        Ok(Self::new(dim, terms, first, second))
    }

    /// Serializes into the *legacy* v1 stream (`TDM1`). Document rows are
    /// written as stored — normalized — so a v1 re-import ranks
    /// identically. Kept for downgrade compatibility and decoder tests;
    /// new files should use [`write_to`](MatchArtifact::write_to).
    pub fn write_to_v1<W: Write>(&self, w: &mut W) -> Result<(), PersistError> {
        let mut buf: Vec<u8> = Vec::new();
        buf.extend_from_slice(&MAGIC_V1);
        put_u32(&mut buf, 1);
        put_u32(&mut buf, self.dim as u32);
        put_u32(&mut buf, self.terms.len() as u32);
        for (label, vec) in &self.terms {
            put_u32(&mut buf, label.len() as u32);
            buf.extend_from_slice(label.as_bytes());
            put_f32s(&mut buf, vec);
        }
        for side in [&self.first, &self.second] {
            put_u32(&mut buf, side.rows() as u32);
            for i in 0..side.rows() {
                if side.is_valid(i) {
                    buf.push(1);
                    put_f32s(&mut buf, side.row(i));
                } else {
                    buf.push(0);
                }
            }
        }
        let crc = crc32(&buf);
        put_u32(&mut buf, crc);
        w.write_all(&buf)?;
        Ok(())
    }

    /// Saves to a file path (format v2), crash-safely: the container is
    /// written to a same-directory temp file, fsynced, and renamed over
    /// `path` ([`publish_atomic`](tdmatch_graph::publish::publish_atomic)).
    /// A publisher killed at any byte offset — `kill -9` included —
    /// leaves `path` pointing at the previous complete artifact (or
    /// still absent), never at a torn file; daemons mapping the old
    /// inode keep serving it untouched. This *is* the rename-to-publish
    /// discipline `docs/SERVING.md` specifies.
    pub fn save<P: AsRef<Path>>(&self, path: P) -> Result<(), PersistError> {
        tdmatch_graph::publish::publish_atomic(path.as_ref(), |f| self.write_to(f))
    }

    /// Loads from a file path (v2 zero-copy, or legacy v1 upgraded).
    ///
    /// v2 containers are **memory-mapped** where the platform allows
    /// ([`Storage::open`]; heap read elsewhere or when mapping fails):
    /// every serving process that loads the same artifact file shares one
    /// physical copy of the matrices through the OS page cache, and the
    /// mapping stays alive for as long as the artifact does. Section
    /// CRCs are checked lazily, on each section's first access — which
    /// for an artifact means during this call, since loading touches
    /// every artifact section; corruption anywhere still fails the load.
    /// Set `TDMATCH_EAGER_CRC=1` to force the historical
    /// verify-everything-at-open behaviour.
    ///
    /// ```
    /// use tdmatch_core::artifact::MatchArtifact;
    ///
    /// let artifact = MatchArtifact::new(
    ///     2,
    ///     vec![("tarantino".into(), vec![1.0, 0.0])],
    ///     vec![Some(vec![1.0, 0.0]), Some(vec![0.0, 1.0])], // targets
    ///     vec![Some(vec![0.9, 0.1])],                       // queries
    /// );
    /// let path = std::env::temp_dir().join("tdmatch-doc-artifact.tdm");
    /// artifact.save(&path)?;
    ///
    /// // A serving process maps the file and matches immediately:
    /// let served = MatchArtifact::load(&path)?;
    /// assert!(served.is_zero_copy());
    /// let top = served.match_top_k(1);
    /// assert_eq!(top[0].ranked[0].0, 0); // query [0.9, 0.1] → target 0
    /// # std::fs::remove_file(&path).ok();
    /// # Ok::<(), tdmatch_core::artifact::PersistError>(())
    /// ```
    pub fn load<P: AsRef<Path>>(path: P) -> Result<Self, PersistError> {
        Self::from_storage_any(&Storage::open(path)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> MatchArtifact {
        MatchArtifact::new(
            2,
            vec![
                ("tarantino".into(), vec![1.0, 0.0]),
                ("willis".into(), vec![0.5, 0.5]),
            ],
            vec![Some(vec![1.0, 0.0]), None, Some(vec![0.0, 1.0])],
            vec![Some(vec![0.9, 0.1])],
        )
    }

    fn roundtrip(a: &MatchArtifact) -> MatchArtifact {
        let mut buf = Vec::new();
        a.write_to(&mut buf).unwrap();
        MatchArtifact::read_from(&mut buf.as_slice()).unwrap()
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let a = sample();
        let b = roundtrip(&a);
        assert_eq!(a, b);
        assert_eq!(b.term_vector("tarantino"), Some(&[1.0f32, 0.0][..]));
        assert_eq!(b.first_vector(1), None);
        assert_eq!(b.corpus_sizes(), (3, 1));
        // Unit rows round-trip exactly.
        assert_eq!(b.first_vector(0), Some(&[1.0f32, 0.0][..]));
    }

    #[test]
    fn loaded_artifact_is_zero_copy() {
        let a = sample();
        let mut buf = Vec::new();
        a.write_to(&mut buf).unwrap();
        let storage = Storage::from_bytes(&buf);
        let b = MatchArtifact::from_storage(&storage).unwrap();
        assert!(b.is_zero_copy());
        assert!(!a.is_zero_copy());
        assert_eq!(a, b);
        // The streaming entry point takes the same zero-copy path after
        // its one buffer read.
        assert!(roundtrip(&a).is_zero_copy());
    }

    #[test]
    fn matching_from_artifact_ranks_by_cosine() {
        let a = sample();
        let r = a.match_top_k(3);
        assert_eq!(r.len(), 1);
        // Query [0.9, 0.1]: closest is first doc [1,0], then [0,1]; the
        // None doc ranks last with score -1.
        assert_eq!(r[0].target_indices(), vec![0, 2, 1]);
    }

    #[test]
    fn embed_tokens_averages_known_vectors() {
        let a = sample();
        // "tarantino" = [1,0], "willis" = [0.5,0.5]; mean = [0.75, 0.25].
        let v = a.embed_tokens(&["tarantino", "willis", "unknown"]).unwrap();
        assert!((v[0] - 0.75).abs() < 1e-6 && (v[1] - 0.25).abs() < 1e-6);
        // All-unknown queries embed to nothing.
        assert!(a.embed_tokens(&["zzz", "yyy"]).is_none());
        assert!(a.embed_tokens::<&str>(&[]).is_none());
    }

    #[test]
    fn new_query_ranks_against_first_corpus() {
        let a = sample();
        // Query = "tarantino" → [1, 0]: nearest is first doc [1,0].
        let r = a.match_new_query(&["tarantino"], 2);
        assert_eq!(r.target_indices()[0], 0);
        // Unknown query gets an empty ranking, not a panic.
        let r = a.match_new_query(&["zzz"], 2);
        assert!(r.ranked.is_empty());
    }

    #[test]
    fn bad_magic_is_rejected() {
        let mut buf = Vec::new();
        sample().write_to(&mut buf).unwrap();
        buf[0] = b'X';
        let err = MatchArtifact::read_from(&mut buf.as_slice()).unwrap_err();
        assert!(matches!(err, PersistError::BadMagic));
    }

    #[test]
    fn bit_flip_anywhere_is_detected() {
        let mut clean = Vec::new();
        sample().write_to(&mut clean).unwrap();
        // Flip one bit in every byte position past the magic; each must
        // fail (checksum, version, or structure) — never load silently.
        for pos in 4..clean.len() {
            let mut buf = clean.clone();
            buf[pos] ^= 0x01;
            match MatchArtifact::read_from(&mut buf.as_slice()) {
                Err(_) => {}
                Ok(loaded) => panic!(
                    "bit flip at {pos} loaded successfully (CRC missed it): {loaded:?}"
                ),
            }
        }
    }

    #[test]
    fn truncation_is_detected() {
        let mut buf = Vec::new();
        sample().write_to(&mut buf).unwrap();
        for cut in [1usize, 4, buf.len() / 2, buf.len() - 1] {
            let short = &buf[..cut];
            assert!(
                MatchArtifact::read_from(&mut &short[..]).is_err(),
                "truncated file of {cut} bytes loaded"
            );
        }
    }

    #[test]
    fn legacy_v1_stream_upgrades_on_load() {
        let a = sample();
        let mut v1 = Vec::new();
        a.write_to_v1(&mut v1).unwrap();
        assert_eq!(&v1[..4], b"TDM1");
        let b = MatchArtifact::read_from(&mut v1.as_slice()).unwrap();
        // v1 payloads are the normalized rows; re-normalizing a unit
        // vector is identity up to fp, and here the rows are exact units.
        assert_eq!(a.match_top_k(3), b.match_top_k(3));
        assert_eq!(a.term_vector("willis"), b.term_vector("willis"));
        assert_eq!(a.corpus_sizes(), b.corpus_sizes());
        assert!(!b.is_zero_copy()); // upgraded, not mapped

        // v1 corruption is still detected everywhere.
        for pos in 4..v1.len() {
            let mut bad = v1.clone();
            bad[pos] ^= 0x10;
            assert!(
                MatchArtifact::read_from(&mut bad.as_slice()).is_err(),
                "v1 bit flip at {pos} loaded silently"
            );
        }
    }

    #[test]
    fn hostile_v1_header_is_rejected_before_allocating() {
        // A syntactically valid v1 stream whose header claims far more
        // content than the stream holds. The CRC is stamped correctly, so
        // only the sanity limits stand between the header and a huge
        // allocation.
        let mut buf = Vec::new();
        buf.extend_from_slice(b"TDM1");
        put_u32(&mut buf, 1); // version
        put_u32(&mut buf, 64); // dim (plausible)
        put_u32(&mut buf, u32::MAX); // term count (hostile)
        let crc = crc32(&buf);
        put_u32(&mut buf, crc);
        let err = MatchArtifact::read_from(&mut buf.as_slice()).unwrap_err();
        assert!(matches!(err, PersistError::Invalid(_)), "got {err:?}");

        // Same for an implausible dimensionality…
        let mut buf = Vec::new();
        buf.extend_from_slice(b"TDM1");
        put_u32(&mut buf, 1);
        put_u32(&mut buf, u32::MAX); // dim (hostile)
        put_u32(&mut buf, 1);
        let crc = crc32(&buf);
        put_u32(&mut buf, crc);
        let err = MatchArtifact::read_from(&mut buf.as_slice()).unwrap_err();
        assert!(matches!(err, PersistError::Invalid(_)), "got {err:?}");

        // …and for a corpus size the stream cannot hold.
        let mut buf = Vec::new();
        buf.extend_from_slice(b"TDM1");
        put_u32(&mut buf, 1);
        put_u32(&mut buf, 2); // dim
        put_u32(&mut buf, 0); // no terms
        put_u32(&mut buf, u32::MAX); // first-corpus size (hostile)
        let crc = crc32(&buf);
        put_u32(&mut buf, crc);
        let err = MatchArtifact::read_from(&mut buf.as_slice()).unwrap_err();
        assert!(matches!(err, PersistError::Invalid(_)), "got {err:?}");
    }

    #[test]
    fn future_container_version_is_rejected() {
        let a = sample();
        let mut buf = Vec::new();
        a.write_to(&mut buf).unwrap();
        // Bump the *artifact* format version inside the header section.
        // Rather than hand-patching CRCs, rebuild a container with a bad
        // header through the writer.
        let mut cw = ContainerWriter::new();
        cw.add(SEC_ARTIFACT_HEADER, pod_bytes(&[99u64, 2, 0]));
        cw.add(SEC_TERM_LABELS, Vec::new());
        cw.add_pod(SEC_TERM_VECTORS, &[] as &[f32]);
        a.first.write_sections(FIRST_SLOT, &mut cw);
        a.second.write_sections(SECOND_SLOT, &mut cw);
        let bytes = cw.finish();
        let err = MatchArtifact::from_storage(&Storage::from_bytes(&bytes)).unwrap_err();
        assert!(matches!(err, PersistError::UnsupportedVersion { found: 99 }));
    }

    #[test]
    fn duplicate_terms_keep_first_occurrence_after_sort() {
        let a = MatchArtifact::new(
            1,
            vec![("b".into(), vec![2.0]), ("a".into(), vec![1.0]), ("a".into(), vec![9.0])],
            vec![],
            vec![],
        );
        assert_eq!(a.term_count(), 2);
        assert!(a.term_vector("a").is_some());
    }

    fn sample_with_ann(targets: usize, dim: usize) -> MatchArtifact {
        let mut state = 0x5EEDu64;
        let mut next = move || {
            state ^= state >> 12;
            state ^= state << 25;
            state ^= state >> 27;
            (state.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 40) as f32 / (1 << 24) as f32 - 0.5
        };
        let first: Vec<Option<Vec<f32>>> = (0..targets)
            .map(|i| (i % 11 != 7).then(|| (0..dim).map(|_| next()).collect()))
            .collect();
        let second: Vec<Option<Vec<f32>>> =
            (0..4).map(|_| Some((0..dim).map(|_| next()).collect())).collect();
        let mut a = MatchArtifact::new(dim, Vec::new(), first, second);
        a.build_ann(&HnswParams::default());
        a
    }

    #[test]
    fn ann_index_roundtrips_bit_identical() {
        let a = sample_with_ann(120, 8);
        assert!(a.ann().is_some());
        let b = roundtrip(&a);
        assert_eq!(a, b);
        assert_eq!(b.ann().map(|i| i.layers()), a.ann().map(|i| i.layers()));
        // An artifact without an index stays index-less through a save.
        let mut plain = sample();
        plain.clear_ann();
        assert!(roundtrip(&plain).ann().is_none());
    }

    #[test]
    fn ann_match_rescores_exactly_over_a_wide_pool() {
        let a = sample_with_ann(120, 8);
        // Pool as wide as the corpus ⇒ identical to the exact scan,
        // indices, tie-breaks, and score bits alike.
        assert_eq!(a.match_top_k(5), a.match_top_k_ann(5, 120));
        // Without an index the ANN entry point is the exact scan.
        let mut plain = sample_with_ann(120, 8);
        plain.clear_ann();
        assert_eq!(plain.match_top_k(5), plain.match_top_k_ann(5, 16));
    }

    #[test]
    fn ann_bit_flip_anywhere_is_detected() {
        // Same everywhere-flip coverage as the plain artifact, over a
        // file that carries the four ANN sections.
        let mut clean = Vec::new();
        sample_with_ann(40, 4).write_to(&mut clean).unwrap();
        for pos in 4..clean.len() {
            let mut buf = clean.clone();
            buf[pos] ^= 0x01;
            assert!(
                MatchArtifact::read_from(&mut buf.as_slice()).is_err(),
                "bit flip at {pos} loaded silently"
            );
        }
    }

    #[test]
    fn ann_shape_mismatch_is_rejected() {
        // An index over a different row count must not pair with the
        // matrices it did not come from.
        let a = sample_with_ann(40, 4);
        let mut cw = ContainerWriter::new();
        cw.add(
            SEC_ARTIFACT_HEADER,
            pod_bytes(&[FORMAT_VERSION as u64, 4, 0]),
        );
        cw.add(SEC_TERM_LABELS, Vec::new());
        cw.add_pod(SEC_TERM_VECTORS, &[] as &[f32]);
        let small = ScoreMatrix::invalid(3, 4);
        small.write_sections(FIRST_SLOT, &mut cw);
        small.write_sections(SECOND_SLOT, &mut cw);
        let ann = a.ann().unwrap();
        ann.write_sections(FIRST_SLOT, &mut cw);
        let bytes = cw.finish();
        let err = MatchArtifact::from_storage(&Storage::from_bytes(&bytes)).unwrap_err();
        assert!(matches!(err, PersistError::Invalid(_)), "got {err:?}");
    }

    #[test]
    fn apply_delta_bounds_check_rejects_before_mutating() {
        use crate::delta::DeltaBatch;
        let mut a = sample();
        let before = a.clone();
        // Op 1 is fine, op 2 addresses a row that never exists.
        let batch = DeltaBatch::new().update(0, ["tarantino"]).tombstone(99);
        let err = a.apply_delta(&batch).unwrap_err();
        assert!(matches!(err, PersistError::Invalid(_)));
        assert_eq!(a, before, "failed delta must leave the artifact untouched");
        // …but a target appended earlier in the same batch is in bounds.
        let batch = DeltaBatch::new().append(["willis"]).tombstone(3);
        a.apply_delta(&batch).unwrap();
        assert_eq!(a.corpus_sizes().0, 4);
    }

    #[test]
    fn apply_delta_mirrors_a_fresh_export_of_the_final_corpus() {
        use crate::delta::DeltaBatch;
        let mut a = sample();
        let batch = DeltaBatch::new()
            .append(["willis"])               // row 3
            .update(2, ["tarantino", "willis"])
            .tombstone(0)
            .append(["zzz", "unknown"]);      // row 4: embeds to nothing
        let s = a.apply_delta(&batch).unwrap();
        assert_eq!((s.appended, s.updated, s.tombstoned, s.rows), (2, 1, 1, 5));

        // Reference: assemble the final corpus from scratch over the
        // same frozen terms. Rows must agree bit-for-bit.
        let terms = vec![
            ("tarantino".to_string(), vec![1.0, 0.0]),
            ("willis".to_string(), vec![0.5, 0.5]),
        ];
        let refit = MatchArtifact::new(
            2,
            terms,
            vec![
                None,                         // tombstoned
                None,                         // was None at fit time
                a.embed_tokens(&["tarantino", "willis"]),
                a.embed_tokens(&["willis"]),
                None,                         // unknown-only append
            ],
            vec![Some(vec![0.9, 0.1])],
        );
        assert_eq!(a, refit);
        assert_eq!(a.match_top_k(5), refit.match_top_k(5));
    }

    #[test]
    fn apply_delta_keeps_a_carried_ann_index_exact_at_wide_pools() {
        use crate::delta::DeltaBatch;
        let mut a = sample_with_ann(120, 8);
        let batch = DeltaBatch::new()
            .tombstone(3)
            .update(10, Vec::<String>::new()) // no tokens → row invalidated
            .append(Vec::<String>::new())     // row 120, invalid
            .tombstone(120);
        let s = a.apply_delta(&batch).unwrap();
        assert_eq!(s.rows, 121);
        assert!(s.ann_removed >= 2 && s.ann_inserted == 0);
        let ann = a.ann().unwrap();
        assert_eq!(ann.rows(), 121, "index must track the grown matrix");
        // Wide-pool ANN rescoring stays the exact scan, bit-for-bit.
        assert_eq!(a.match_top_k(6), a.match_top_k_ann(6, 121));

        // The delta-updated artifact still saves and reloads: the
        // from_storage shape check (index rows == matrix rows) passes.
        let mut buf = Vec::new();
        a.write_to(&mut buf).unwrap();
        let b = MatchArtifact::from_storage(&Storage::from_bytes(&buf)).unwrap();
        assert_eq!(a, b);
        assert_eq!(b.match_top_k(6), b.match_top_k_ann(6, 121));
    }

    #[test]
    fn save_and_load_via_files() {
        let dir = std::env::temp_dir().join("tdmatch-artifact-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.tdm");
        let a = sample();
        a.save(&path).unwrap();
        let b = MatchArtifact::load(&path).unwrap();
        assert_eq!(a, b);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_file_is_io_error() {
        let err = MatchArtifact::load("/nonexistent/path/model.tdm").unwrap_err();
        assert!(matches!(err, PersistError::Io(_)));
        assert!(err.to_string().contains("I/O"));
    }
}
