//! Random sampling over the graph: neighbors and random walks (Alg. 4),
//! plus the biased variants (node2vec second-order walks, edge-type
//! weighted walks) that plug into the embedding generator.

use rand::seq::IndexedRandom;
use rand::{Rng, RngExt};

use crate::edge::EdgeTypeWeights;
use crate::graph::Graph;
use crate::node::NodeId;

/// Picks a uniformly random neighbor of `node`, or `None` for isolated /
/// removed nodes.
#[inline]
pub fn random_neighbor<R: Rng + ?Sized>(g: &Graph, node: NodeId, rng: &mut R) -> Option<NodeId> {
    g.neighbors(node).choose(rng).copied()
}

/// Generates one random walk of exactly `len` *steps* starting at `start`
/// (the paper's Alg. 4 appends `len` randomly chosen neighbors). The walk
/// includes the start node followed by up to `len` sampled nodes; it stops
/// early only if it reaches an isolated node.
pub fn random_walk<R: Rng + ?Sized>(
    g: &Graph,
    start: NodeId,
    len: usize,
    rng: &mut R,
) -> Vec<NodeId> {
    let mut walk = Vec::with_capacity(len + 1);
    walk.push(start);
    let mut cur = start;
    for _ in 0..len {
        match random_neighbor(g, cur, rng) {
            Some(next) => {
                walk.push(next);
                cur = next;
            }
            None => break,
        }
    }
    walk
}

/// Picks a uniformly random element of `items`.
pub fn choose<'a, T, R: Rng + ?Sized>(items: &'a [T], rng: &mut R) -> Option<&'a T> {
    items.choose(rng)
}

/// Samples an index from unnormalized non-negative `weights` by cumulative
/// sum. Returns `None` when all weights are zero (or the slice is empty).
fn sample_weighted<R: Rng + ?Sized>(weights: &[f32], rng: &mut R) -> Option<usize> {
    let total: f32 = weights.iter().sum();
    if total <= 0.0 || total.is_nan() {
        return None;
    }
    // Reborrow: `Rng::random` needs `Self: Sized`, and `&mut R` is.
    let mut target = (*rng).random::<f32>() * total;
    for (i, &w) in weights.iter().enumerate() {
        target -= w;
        if target < 0.0 {
            return Some(i);
        }
    }
    // Float round-off can leave target at ~0; fall back to the last
    // positive-weight index.
    weights.iter().rposition(|&w| w > 0.0)
}

/// One random walk where each transition is weighted by the edge's
/// [`EdgeKind`](crate::edge::EdgeKind) via `weights`. With uniform weights
/// this is exactly [`random_walk`]. Edges whose kind has weight `0.0` are
/// never crossed; the walk stops early if no crossable edge remains.
pub fn random_walk_edge_typed<R: Rng + ?Sized>(
    g: &Graph,
    start: NodeId,
    len: usize,
    weights: &EdgeTypeWeights,
    rng: &mut R,
) -> Vec<NodeId> {
    let mut walk = Vec::with_capacity(len + 1);
    walk.push(start);
    let mut cur = start;
    let mut buf: Vec<f32> = Vec::new();
    for _ in 0..len {
        let neighbors = g.neighbors(cur);
        if neighbors.is_empty() {
            break;
        }
        buf.clear();
        buf.extend(g.neighbor_kinds(cur).iter().map(|&k| weights.get(k)));
        match sample_weighted(&buf, rng) {
            Some(i) => {
                cur = neighbors[i];
                walk.push(cur);
            }
            None => break,
        }
    }
    walk
}

/// One node2vec-style second-order random walk (Grover & Leskovec, KDD'16
/// — cited by the paper as an alternative embedding generator, §IV-A).
///
/// Given the previous node `t` and current node `v`, the unnormalized
/// probability of stepping to neighbor `x` is:
///
/// * `1/p` when `x == t` (return),
/// * `1`   when `x` is a neighbor of `t` (stay close),
/// * `1/q` otherwise (explore).
///
/// `p` is the *return* parameter, `q` the *in-out* parameter; `p = q = 1`
/// reduces to the paper's uniform walk. Both must be positive.
pub fn random_walk_node2vec<R: Rng + ?Sized>(
    g: &Graph,
    start: NodeId,
    len: usize,
    p: f32,
    q: f32,
    rng: &mut R,
) -> Vec<NodeId> {
    debug_assert!(p > 0.0 && q > 0.0, "node2vec parameters must be positive");
    let mut walk = Vec::with_capacity(len + 1);
    walk.push(start);
    // First step has no history: uniform.
    let Some(first) = random_neighbor(g, start, rng) else {
        return walk;
    };
    walk.push(first);
    let (mut prev, mut cur) = (start, first);
    let (inv_p, inv_q) = (1.0 / p, 1.0 / q);
    let mut buf: Vec<f32> = Vec::new();
    for _ in 1..len {
        let neighbors = g.neighbors(cur);
        if neighbors.is_empty() {
            break;
        }
        buf.clear();
        buf.extend(neighbors.iter().map(|&x| {
            if x == prev {
                inv_p
            } else if g.has_edge(prev, x) {
                1.0
            } else {
                inv_q
            }
        }));
        match sample_weighted(&buf, rng) {
            Some(i) => {
                prev = cur;
                cur = neighbors[i];
                walk.push(cur);
            }
            None => break,
        }
    }
    walk
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn walk_has_expected_length_and_valid_edges() {
        let mut g = Graph::new();
        let nodes: Vec<NodeId> = (0..10).map(|i| g.intern_data(&format!("n{i}"))).collect();
        for w in nodes.windows(2) {
            g.add_edge(w[0], w[1]);
        }
        let mut rng = SmallRng::seed_from_u64(7);
        let walk = random_walk(&g, nodes[0], 20, &mut rng);
        assert_eq!(walk.len(), 21);
        for pair in walk.windows(2) {
            assert!(g.has_edge(pair[0], pair[1]));
        }
    }

    #[test]
    fn walk_from_isolated_node_is_singleton() {
        let mut g = Graph::new();
        let a = g.intern_data("a");
        let mut rng = SmallRng::seed_from_u64(1);
        assert_eq!(random_walk(&g, a, 5, &mut rng), vec![a]);
        assert_eq!(random_neighbor(&g, a, &mut rng), None);
    }

    #[test]
    fn walks_are_deterministic_under_seed() {
        let mut g = Graph::new();
        let a = g.intern_data("a");
        let b = g.intern_data("b");
        let c = g.intern_data("c");
        g.add_edge(a, b);
        g.add_edge(a, c);
        g.add_edge(b, c);
        let w1 = random_walk(&g, a, 10, &mut SmallRng::seed_from_u64(42));
        let w2 = random_walk(&g, a, 10, &mut SmallRng::seed_from_u64(42));
        assert_eq!(w1, w2);
    }

    #[test]
    fn weighted_sampler_respects_zero_and_point_masses() {
        let mut rng = SmallRng::seed_from_u64(3);
        assert_eq!(sample_weighted(&[], &mut rng), None);
        assert_eq!(sample_weighted(&[0.0, 0.0], &mut rng), None);
        for _ in 0..20 {
            assert_eq!(sample_weighted(&[0.0, 1.0, 0.0], &mut rng), Some(1));
        }
    }

    #[test]
    fn edge_typed_walk_never_crosses_zero_weight_edges() {
        use crate::edge::EdgeKind;
        // a —Contains— b —External— c. Forbidding External traps the walk
        // on {a, b}.
        let mut g = Graph::new();
        let a = g.intern_data("a");
        let b = g.intern_data("b");
        let c = g.intern_data("c");
        g.add_edge_typed(a, b, EdgeKind::Contains);
        g.add_edge_typed(b, c, EdgeKind::External);
        let weights = EdgeTypeWeights::uniform().with(EdgeKind::External, 0.0);
        let mut rng = SmallRng::seed_from_u64(5);
        for _ in 0..10 {
            let walk = random_walk_edge_typed(&g, a, 12, &weights, &mut rng);
            assert!(!walk.contains(&c), "walk crossed a zero-weight edge");
        }
    }

    #[test]
    fn edge_typed_walk_with_uniform_weights_matches_plain_walk() {
        let mut g = Graph::new();
        let ids: Vec<NodeId> = (0..8).map(|i| g.intern_data(&format!("n{i}"))).collect();
        for w in ids.windows(2) {
            g.add_edge(w[0], w[1]);
        }
        let weights = EdgeTypeWeights::uniform();
        let walk = random_walk_edge_typed(&g, ids[0], 15, &weights, &mut SmallRng::seed_from_u64(11));
        assert_eq!(walk.len(), 16);
        for pair in walk.windows(2) {
            assert!(g.has_edge(pair[0], pair[1]));
        }
    }

    #[test]
    fn node2vec_walk_follows_edges_and_is_deterministic() {
        let mut g = Graph::new();
        let ids: Vec<NodeId> = (0..10).map(|i| g.intern_data(&format!("n{i}"))).collect();
        for i in 0..10 {
            g.add_edge(ids[i], ids[(i + 1) % 10]);
            g.add_edge(ids[i], ids[(i + 3) % 10]);
        }
        let w1 = random_walk_node2vec(&g, ids[0], 20, 0.5, 2.0, &mut SmallRng::seed_from_u64(7));
        let w2 = random_walk_node2vec(&g, ids[0], 20, 0.5, 2.0, &mut SmallRng::seed_from_u64(7));
        assert_eq!(w1, w2);
        assert_eq!(w1.len(), 21);
        for pair in w1.windows(2) {
            assert!(g.has_edge(pair[0], pair[1]));
        }
    }

    #[test]
    fn node2vec_low_p_returns_more_often() {
        // On a path graph, the middle node's walker either returns (weight
        // 1/p) or moves on (weight 1/q since endpoints of a path share no
        // neighbors). With p tiny, returning dominates.
        let mut g = Graph::new();
        let ids: Vec<NodeId> = (0..30).map(|i| g.intern_data(&format!("n{i}"))).collect();
        for w in ids.windows(2) {
            g.add_edge(w[0], w[1]);
        }
        let count_returns = |p: f32, q: f32, seed: u64| {
            let mut rng = SmallRng::seed_from_u64(seed);
            let mut returns = 0usize;
            let mut steps = 0usize;
            for _ in 0..50 {
                let walk = random_walk_node2vec(&g, ids[15], 10, p, q, &mut rng);
                for win in walk.windows(3) {
                    steps += 1;
                    if win[0] == win[2] {
                        returns += 1;
                    }
                }
            }
            returns as f64 / steps.max(1) as f64
        };
        let returny = count_returns(0.05, 1.0, 9);
        let explorey = count_returns(20.0, 1.0, 9);
        assert!(
            returny > explorey + 0.2,
            "low p should return far more often: {returny} vs {explorey}"
        );
    }

    #[test]
    fn node2vec_from_isolated_node_is_singleton() {
        let mut g = Graph::new();
        let a = g.intern_data("a");
        let mut rng = SmallRng::seed_from_u64(1);
        assert_eq!(random_walk_node2vec(&g, a, 5, 1.0, 1.0, &mut rng), vec![a]);
        let weights = EdgeTypeWeights::uniform();
        assert_eq!(
            random_walk_edge_typed(&g, a, 5, &weights, &mut rng),
            vec![a]
        );
    }
}
