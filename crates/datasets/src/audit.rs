//! The Audit scenario (§V-B): enterprise documents matched to a concept
//! taxonomy — the paper's hardest task.
//!
//! A synthetic audit-domain taxonomy (paths 2–5 nodes deep) and documents
//! that reference 1–27 concepts (40 % one concept, 10 % two, the rest
//! more, averaging ~4), written in domain vocabulary the pre-trained model
//! does not cover, with acronyms (the PDCA example of §I) standing in for
//! their expansions.

use rand::rngs::SmallRng;
use rand::seq::IndexedRandom;
use rand::{RngExt, SeedableRng};

use tdmatch_core::config::TdConfig;
use tdmatch_core::corpus::{Corpus, StructuredText, TaxonomyNode, TextCorpus};
use tdmatch_kb::{lexicon, SyntheticConceptNet};

use crate::{standard_pretrained, Scale, Scenario};

fn sizes(scale: Scale) -> (usize, usize) {
    // (taxonomy concepts, documents)
    match scale {
        Scale::Tiny => (40, 60),
        Scale::Small => (200, 400),
        Scale::Paper => (747, 1_622),
    }
}

/// Builds the audit taxonomy: a root, area nodes, and concept subtrees.
/// Node texts combine audit-domain terms ("risk assessment walkthrough").
fn build_taxonomy(rng: &mut SmallRng, n_concepts: usize) -> StructuredText {
    let mut nodes = Vec::with_capacity(n_concepts);
    nodes.push(TaxonomyNode {
        text: "audit framework".into(),
        parent: None,
    });
    // Level 2: broad areas.
    let n_areas = (n_concepts / 12).clamp(4, 12);
    let mut seen = std::collections::HashSet::new();
    seen.insert("audit framework".to_string());
    for _ in 0..n_areas {
        let text = loop {
            let t = format!(
                "{} {}",
                lexicon::AUDIT_TERMS.choose(rng).expect("non-empty"),
                ["management", "assessment", "process", "programme"]
                    .choose(rng)
                    .expect("non-empty")
            );
            if seen.insert(t.clone()) {
                break t;
            }
        };
        nodes.push(TaxonomyNode {
            text,
            parent: Some(0),
        });
    }
    // Acronym concepts: every expansion becomes a node so documents using
    // the acronym must bridge to it ("plan do check act steps").
    for (i, (_, expansion)) in lexicon::AUDIT_ACRONYMS.iter().enumerate() {
        if nodes.len() >= n_concepts {
            break;
        }
        let parent = 1 + (i % n_areas);
        let text = format!("{expansion} steps");
        if seen.insert(text.clone()) {
            nodes.push(TaxonomyNode {
                text,
                parent: Some(parent),
            });
        }
    }
    // Deeper concept nodes: attach below a random existing non-root node,
    // keeping depth ≤ 5. A child *inherits* one term from its parent so
    // subtrees are topically coherent — the hierarchy edges then encode
    // genuine semantic proximity (this is what makes the paper's
    // metadata-edge ablation come out positive).
    while nodes.len() < n_concepts {
        let parent = rng.random_range(1..nodes.len());
        // Compute depth of parent.
        let mut depth = 1;
        let mut cur = Some(parent);
        while let Some(c) = cur {
            depth += 1;
            cur = nodes[c].parent;
        }
        if depth >= 5 {
            continue;
        }
        let parent_term = nodes[parent]
            .text
            .split(' ')
            .next()
            .expect("non-empty text")
            .to_string();
        let text = loop {
            let fresh = lexicon::AUDIT_TERMS.choose(rng).expect("non-empty");
            let t = if rng.random_bool(0.7) {
                format!("{parent_term} {fresh}")
            } else {
                let b = lexicon::AUDIT_TERMS.choose(rng).expect("non-empty");
                format!("{fresh} {b}")
            };
            if seen.insert(t.clone()) {
                break t;
            }
        };
        nodes.push(TaxonomyNode {
            text,
            parent: Some(parent),
        });
    }
    StructuredText::new(nodes)
}

/// How many concepts a document references: 40 % → 1, 10 % → 2, rest 3+.
fn concepts_per_doc(rng: &mut SmallRng) -> usize {
    let roll = rng.random::<f64>();
    if roll < 0.4 {
        1
    } else if roll < 0.5 {
        2
    } else {
        rng.random_range(3..8)
    }
}

fn doc_text(rng: &mut SmallRng, taxonomy: &StructuredText, concepts: &[usize]) -> String {
    let mut sentences = Vec::new();
    for &c in concepts {
        let concept_text = &taxonomy.nodes[c].text;
        // Acronym substitution: if the concept is an acronym expansion,
        // half the documents use the acronym instead (the PDCA case).
        let mentioned = lexicon::AUDIT_ACRONYMS
            .iter()
            .find(|(_, exp)| concept_text.starts_with(exp))
            .filter(|_| rng.random_bool(0.5))
            .map(|(acr, _)| acr.to_string())
            .unwrap_or_else(|| concept_text.clone());
        let verb = lexicon::GENERIC_VERBS.choose(rng).expect("non-empty");
        let term = lexicon::AUDIT_TERMS.choose(rng).expect("non-empty");
        sentences.push(format!(
            "the auditor must {verb} the {mentioned} during {term} activities"
        ));
    }
    // Filler audit prose — "audit" appears in most documents, the
    // ambiguity the paper calls out.
    for _ in 0..rng.random_range(0..2usize) {
        let t1 = lexicon::AUDIT_TERMS.choose(rng).expect("non-empty");
        let t2 = lexicon::AUDIT_TERMS.choose(rng).expect("non-empty");
        sentences.push(format!("audit {t1} requires documented {t2}"));
    }
    sentences.join(". ")
}

/// Generates the Audit scenario (text to structured text).
pub fn generate(scale: Scale, seed: u64) -> Scenario {
    let mut rng = SmallRng::seed_from_u64(seed ^ 0xA0D1_7000);
    let (n_concepts, n_docs) = sizes(scale);
    let taxonomy = build_taxonomy(&mut rng, n_concepts);

    let mut docs = Vec::with_capacity(n_docs);
    let mut truth = Vec::with_capacity(n_docs);
    // Leaf-ish nodes (depth ≥ 3) are the annotatable concepts.
    let candidates: Vec<usize> = (0..taxonomy.nodes.len())
        .filter(|&i| taxonomy.depth(i) >= 3)
        .collect();
    let pool: &[usize] = if candidates.is_empty() {
        &[] // degenerate tiny taxonomies fall back below
    } else {
        &candidates
    };
    // Area (level-2 ancestor) of each node, for topical clustering.
    let area_of = |mut i: usize| -> usize {
        while let Some(p) = taxonomy.nodes[i].parent {
            if taxonomy.nodes[p].parent.is_none() {
                return i;
            }
            i = p;
        }
        i
    };
    for _ in 0..n_docs {
        let n = concepts_per_doc(&mut rng);
        let mut chosen: Vec<usize> = Vec::with_capacity(n);
        let first_concept = if pool.is_empty() {
            rng.random_range(1..taxonomy.nodes.len())
        } else {
            *pool.choose(&mut rng).expect("non-empty")
        };
        chosen.push(first_concept);
        // Documents are topically focused: further concepts come from the
        // same area subtree with high probability, which is what makes
        // the taxonomy's hierarchy edges informative (§V-F2).
        let home_area = area_of(first_concept);
        let same_area: Vec<usize> = pool
            .iter()
            .copied()
            .filter(|&c| area_of(c) == home_area)
            .collect();
        for _ in 1..n {
            let c = if !same_area.is_empty() && rng.random_bool(0.7) {
                *same_area.choose(&mut rng).expect("non-empty")
            } else if pool.is_empty() {
                rng.random_range(1..taxonomy.nodes.len())
            } else {
                *pool.choose(&mut rng).expect("non-empty")
            };
            if !chosen.contains(&c) {
                chosen.push(c);
            }
        }
        docs.push(doc_text(&mut rng, &taxonomy, &chosen));
        truth.push(chosen);
    }

    let (pretrained, gamma) = standard_pretrained(seed, 0.25);
    Scenario {
        name: "audit".to_string(),
        first: Corpus::Structured(taxonomy),
        second: Corpus::Text(TextCorpus::new(docs)),
        ground_truth: truth,
        kb: Box::new(SyntheticConceptNet::standard(seed, 2)),
        pretrained,
        gamma,
        config: TdConfig::text_oriented(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn taxonomy_depth_is_bounded() {
        let s = generate(Scale::Small, 2);
        let Corpus::Structured(t) = &s.first else { panic!() };
        for i in 0..t.nodes.len() {
            let d = t.depth(i);
            assert!((1..=5).contains(&d), "depth {d} out of paper range");
        }
    }

    #[test]
    fn concept_distribution_roughly_matches_paper() {
        let s = generate(Scale::Small, 2);
        let one = s.ground_truth.iter().filter(|g| g.len() == 1).count() as f64;
        let frac = one / s.ground_truth.len() as f64;
        assert!(
            (0.25..=0.55).contains(&frac),
            "single-concept fraction {frac}"
        );
    }

    #[test]
    fn documents_use_domain_vocabulary() {
        let s = generate(Scale::Tiny, 2);
        let Corpus::Text(docs) = &s.second else { panic!() };
        let audit_hits = docs
            .docs
            .iter()
            .filter(|d| lexicon::AUDIT_TERMS.iter().any(|t| d.contains(t)))
            .count();
        assert_eq!(audit_hits, docs.docs.len());
    }

    #[test]
    fn some_documents_use_acronyms() {
        let s = generate(Scale::Small, 2);
        let Corpus::Text(docs) = &s.second else { panic!() };
        let with_acronym = docs
            .docs
            .iter()
            .filter(|d| {
                lexicon::AUDIT_ACRONYMS
                    .iter()
                    .any(|(a, _)| d.contains(&format!(" {a} ")))
            })
            .count();
        assert!(with_acronym > 0, "no documents with acronym mentions");
    }

    #[test]
    fn uses_cbow_task_config() {
        use tdmatch_embed::word2vec::W2vMode;
        let s = generate(Scale::Tiny, 2);
        assert_eq!(s.config.w2v_mode, W2vMode::Cbow);
        assert_eq!(s.config.window, 15);
    }
}
