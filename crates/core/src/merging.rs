//! Node-merging techniques (§II-C).
//!
//! Three merges improve connectivity between related metadata nodes:
//!
//! * **stemming** happens upstream in pre-processing (`tdmatch-text`);
//! * **bucketing** merges numeric terms into equal-width bins whose width
//!   follows the Freedman–Diaconis rule;
//! * **similarity merging** collapses data nodes whose pre-trained
//!   embeddings exceed the calibrated threshold γ (synonyms, entity name
//!   variants), with an edit-distance fallback for typos the pre-trained
//!   lexicon cannot see.

use std::collections::HashMap;

use tdmatch_graph::{Graph, NodeId};
use tdmatch_kb::PretrainedModel;
use tdmatch_text::distance::levenshtein_similarity;
use tdmatch_text::normalize::{bucket_index, bucket_label, freedman_diaconis_width, parse_number};

/// Minimum normalized edit similarity for the typo fallback merge.
const TYPO_SIMILARITY: f64 = 0.8;
/// Minimum token length considered for typo merging (short tokens collide
/// too easily: "cat"/"car").
const TYPO_MIN_LEN: usize = 5;
/// Buckets larger than this are skipped during candidate generation to
/// keep merging near-linear (very common tokens generate O(n²) pairs).
const MAX_BUCKET: usize = 64;

/// A numeric-term → bucket-label mapping computed over both corpora.
#[derive(Debug, Clone, Default)]
pub struct NumericBuckets {
    width: f64,
    min: f64,
    enabled: bool,
}

impl NumericBuckets {
    /// Fits buckets on every numeric token in `values`; disabled when the
    /// Freedman–Diaconis width degenerates (fewer than 2 values or no
    /// spread).
    pub fn fit(values: &[f64]) -> Self {
        match freedman_diaconis_width(values) {
            Some(width) => {
                let min = values.iter().copied().fold(f64::INFINITY, f64::min);
                Self {
                    width,
                    min,
                    enabled: true,
                }
            }
            None => Self::default(),
        }
    }

    /// True when bucketing is active.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// The bucket width (0 when disabled).
    pub fn width(&self) -> f64 {
        if self.enabled {
            self.width
        } else {
            0.0
        }
    }

    /// Maps a term to its bucket label when it is numeric and bucketing is
    /// enabled; otherwise returns the term unchanged.
    pub fn map_term(&self, term: &str) -> String {
        if !self.enabled {
            return term.to_string();
        }
        match parse_number(term) {
            Some(v) => {
                let idx = bucket_index(v, self.min, self.width);
                bucket_label(idx, self.min, self.width)
            }
            None => term.to_string(),
        }
    }
}

/// Statistics from similarity merging.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MergeStats {
    /// Candidate pairs whose similarity was computed.
    pub pairs_compared: usize,
    /// Node pairs actually merged.
    pub merged: usize,
}

/// Merges data nodes whose labels are similar under the pre-trained model
/// (cosine ≥ `gamma`, §II-C) or, for OOV single tokens, under normalized
/// edit distance (typos). The better-connected node of each pair survives.
pub fn similarity_merge(
    g: &mut Graph,
    model: &PretrainedModel,
    gamma: f32,
) -> MergeStats {
    // Candidate generation: inverted index token → data-node labels, plus
    // a (prefix, length-band) bucket for single-token typo candidates.
    let data_nodes: Vec<(NodeId, String)> = g
        .nodes()
        .filter(|&n| !g.kind(n).is_metadata())
        .map(|n| (n, g.label(n).to_string()))
        .collect();

    let mut token_buckets: HashMap<&str, Vec<usize>> = HashMap::new();
    let mut typo_buckets: HashMap<(char, usize), Vec<usize>> = HashMap::new();
    for (i, (_, label)) in data_nodes.iter().enumerate() {
        for tok in label.split_whitespace() {
            token_buckets.entry(tok).or_default().push(i);
        }
        if !label.contains(' ') && label.len() >= TYPO_MIN_LEN {
            if let Some(c) = label.chars().next() {
                typo_buckets.entry((c, label.len() / 3)).or_default().push(i);
            }
        }
    }

    let mut stats = MergeStats::default();
    let mut scored: Vec<(f32, usize, usize)> = Vec::new();
    let consider = |a: usize, b: usize, scored: &mut Vec<(f32, usize, usize)>,
                        stats: &mut MergeStats| {
        let (la, lb) = (&data_nodes[a].1, &data_nodes[b].1);
        if la == lb {
            return;
        }
        stats.pairs_compared += 1;
        // One label contained in the other as a token subset is the name-
        // variant case (B. Willis vs Bruce Willis); otherwise rely on the
        // pre-trained space, then the typo fallback.
        let sim = match model.label_similarity(la, lb) {
            Some(s) => s,
            None => {
                if !la.contains(' ') && !lb.contains(' ') {
                    let s = levenshtein_similarity(la, lb);
                    if s >= TYPO_SIMILARITY {
                        // Map into cosine-like range above gamma.
                        gamma + (s as f32 - TYPO_SIMILARITY as f32)
                    } else {
                        -1.0
                    }
                } else {
                    -1.0
                }
            }
        };
        if sim >= gamma {
            scored.push((sim, a, b));
        }
    };

    for bucket in token_buckets.values().filter(|b| b.len() <= MAX_BUCKET) {
        for (x, &a) in bucket.iter().enumerate() {
            for &b in &bucket[x + 1..] {
                consider(a, b, &mut scored, &mut stats);
            }
        }
    }
    for bucket in typo_buckets.values().filter(|b| b.len() <= MAX_BUCKET) {
        for (x, &a) in bucket.iter().enumerate() {
            for &b in &bucket[x + 1..] {
                consider(a, b, &mut scored, &mut stats);
            }
        }
    }

    // Apply best-first; a node participates in at most one merge round but
    // chains resolve because merge_nodes tolerates removed nodes. The
    // (a, b) tie-break matters: candidates arrive in HashMap-bucket order,
    // which varies per process, and equal-similarity merges are not
    // commutative — without the tie-break the final graph differs from
    // run to run.
    scored.sort_by(|x, y| {
        y.0
            .partial_cmp(&x.0)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| (x.1, x.2).cmp(&(y.1, y.2)))
    });
    for (_, a, b) in scored {
        let (na, nb) = (data_nodes[a].0, data_nodes[b].0);
        if g.is_removed(na) || g.is_removed(nb) {
            continue;
        }
        let (keep, remove) = if g.degree(na) >= g.degree(nb) {
            (na, nb)
        } else {
            (nb, na)
        };
        g.merge_nodes(keep, remove);
        stats.merged += 1;
    }
    stats
}

/// Collects every numeric value appearing as a token in the given term
/// lists (used to fit [`NumericBuckets`]).
pub fn collect_numeric_values<'a, I>(terms: I) -> Vec<f64>
where
    I: IntoIterator<Item = &'a str>,
{
    terms.into_iter().filter_map(parse_number).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tdmatch_graph::{CorpusSide, MetaKind};

    #[test]
    fn buckets_merge_close_numbers() {
        let values: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let b = NumericBuckets::fit(&values);
        assert!(b.is_enabled());
        assert_eq!(b.map_term("1"), b.map_term("2"));
        assert_ne!(b.map_term("1"), b.map_term("99"));
        assert_eq!(b.map_term("hello"), "hello");
    }

    #[test]
    fn degenerate_buckets_disable() {
        let b = NumericBuckets::fit(&[5.0, 5.0, 5.0]);
        assert!(!b.is_enabled());
        assert_eq!(b.map_term("5"), "5");
    }

    #[test]
    fn similarity_merge_collapses_synonyms() {
        let mut model = PretrainedModel::standard(32, 1, 0.3);
        // Mark the actor as a popular entity the pre-trained resource
        // knows (the dataset generators do the same for famous names).
        model.add_entity("willis");
        let mut g = Graph::new();
        let t = g.add_meta("t0", CorpusSide::First, MetaKind::Tuple, 0);
        let p = g.add_meta("p0", CorpusSide::Second, MetaKind::TextDoc, 0);
        let a = g.intern_data("comedy");
        let b = g.intern_data("funny");
        g.add_edge(t, a);
        g.add_edge(p, b);
        let gamma = 0.5;
        let stats = similarity_merge(&mut g, &model, gamma);
        // "comedy"/"funny" share a concept base, but share no token — they
        // are only candidates if a token bucket catches them. They do not
        // share tokens, so they are NOT merged (mirrors reality: the merge
        // step targets name variants & typos; synonym linking comes from
        // expansion). Instead check name variants:
        let _ = stats;
        let w1 = g.intern_data("willis");
        let w2 = g.intern_data("bruce willis");
        g.add_edge(t, w1);
        g.add_edge(p, w2);
        let stats = similarity_merge(&mut g, &model, gamma);
        assert!(stats.merged >= 1, "name variants should merge: {stats:?}");
        let survivor = g
            .data_node("willis")
            .or_else(|| g.data_node("bruce willis"));
        assert!(survivor.is_some());
        // After the merge both metadata nodes reach the surviving node.
        let s = survivor.unwrap();
        assert!(g.has_edge(t, s) && g.has_edge(p, s));
    }

    #[test]
    fn typo_fallback_merges_oov_tokens() {
        let model = PretrainedModel::standard(32, 1, 0.0);
        let mut g = Graph::new();
        let t = g.add_meta("t0", CorpusSide::First, MetaKind::Tuple, 0);
        let a = g.intern_data("germany");
        let b = g.intern_data("germny");
        g.add_edge(t, a);
        g.add_edge(t, b);
        // Make "germany"/"germny" OOV by using an empty-coverage model…
        // "germany" IS in the country lexicon, so label_similarity works for
        // it, but "germny" is OOV → typo fallback path triggers.
        let stats = similarity_merge(&mut g, &model, 0.57);
        assert!(stats.merged >= 1, "typo should merge: {stats:?}");
        assert!(g.data_node("germany").is_none() || g.data_node("germny").is_none());
    }

    #[test]
    fn unrelated_labels_survive() {
        let model = PretrainedModel::standard(32, 1, 0.3);
        let mut g = Graph::new();
        let t = g.add_meta("t0", CorpusSide::First, MetaKind::Tuple, 0);
        let a = g.intern_data("movie night");
        let b = g.intern_data("movie budget");
        g.add_edge(t, a);
        g.add_edge(t, b);
        similarity_merge(&mut g, &model, 0.95);
        assert!(g.data_node("movie night").is_some());
        assert!(g.data_node("movie budget").is_some());
    }

    #[test]
    fn collect_numeric_filters_words() {
        let vals = collect_numeric_values(["12", "abc", "3.5", "1,000"]);
        assert_eq!(vals, vec![12.0, 3.5, 1000.0]);
    }
}
