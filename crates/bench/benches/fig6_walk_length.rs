//! Figure 6 — mean average precision as the walk length grows
//! (5, 10, 20, 30, 40, 50) for all five scenarios.
//!
//! Paper shape: quality climbs steeply up to length ≈ 20, then plateaus
//! (larger, denser graphs keep benefiting a bit longer).

use tdmatch_bench::{bench_config, evaluate, registry, run_with_config, MethodRun};
use tdmatch_datasets::{Scale, Scenario};
use tdmatch_eval::ranking::RankMetrics;

const LENGTHS: [usize; 6] = [5, 10, 20, 30, 40, 50];

fn map5(run: &MethodRun, scenario: &Scenario) -> f64 {
    let m: RankMetrics = evaluate(run, scenario);
    m.map_at[1] // MAP@5
}

fn main() {
    // Sweeps multiply the fit count; use the tiny preset per scenario.
    let scenarios: Vec<Scenario> = registry::paper_five(Scale::Tiny, 42);
    println!("\n=== Figure 6 — MAP@5 vs walk length ===");
    print!("{:<12}", "walk_len");
    for l in LENGTHS {
        print!(" {l:>7}");
    }
    println!();
    for scenario in &scenarios {
        print!("{:<12}", scenario.name);
        for l in LENGTHS {
            let config = tdmatch_core::config::TdConfig {
                walk_len: l,
                ..bench_config(&scenario.config)
            };
            let (run, _) = run_with_config(scenario, config, 20, false);
            print!(" {:>7.3}", map5(&run, scenario));
        }
        println!();
    }
}
