//! Shared experiment plumbing, hoisted out of `tdmatch-bench`.
//!
//! Every table and figure of the paper has a `harness = false` bench
//! target in `crates/bench/benches/`; this module holds the pieces they
//! share: the scaled-down pipeline configuration, the W-RW(-EX)
//! pipeline runners producing a uniform [`MethodRun`], metric
//! evaluation, and table printing. The conformance lifecycle
//! ([`crate::lifecycle`]) and the method dispatcher
//! ([`crate::methods`]) build on the same surface.
//!
//! Scales are controlled by environment variables so a paper-scale run
//! is one `TDMATCH_SCALE=paper cargo bench` away (see EXPERIMENTS.md):
//!
//! * `TDMATCH_SCALE` — `tiny` | `small` (default) | `paper`;
//! * `TDMATCH_WALKS`, `TDMATCH_WALK_LEN`, `TDMATCH_DIM`,
//!   `TDMATCH_EPOCHS`, `TDMATCH_THREADS` — pipeline overrides.

use std::collections::HashSet;

use tdmatch_baselines::RankedMatches;
use tdmatch_core::config::TdConfig;
use tdmatch_core::pipeline::{FitOptions, TdMatch, TdModel};
use tdmatch_datasets::{Scale, Scenario};
use tdmatch_eval::ranking::{mean_metrics_over, RankMetrics};

/// A uniform view over one method's output on one scenario.
#[derive(Debug, Clone)]
pub struct MethodRun {
    /// Method name as printed in the tables.
    pub method: String,
    /// Ranked first-corpus indices per query.
    pub ranked: Vec<Vec<usize>>,
    /// Training seconds.
    pub train_secs: f64,
    /// Matching seconds.
    pub test_secs: f64,
}

impl From<RankedMatches> for MethodRun {
    fn from(r: RankedMatches) -> Self {
        MethodRun {
            ranked: r.all_indices(),
            method: r.method,
            train_secs: r.train_secs,
            test_secs: r.test_secs,
        }
    }
}

/// Reads the dataset scale from `TDMATCH_SCALE`.
pub fn scale_from_env() -> Scale {
    match std::env::var("TDMATCH_SCALE").as_deref() {
        Ok("tiny") => Scale::Tiny,
        Ok("paper") => Scale::Paper,
        _ => Scale::Small,
    }
}

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// The per-scale pipeline presets (walks/node, walk length, dimension,
/// epochs) shared by the benches, the CLI's `--scale`, and the
/// conformance lifecycle.
pub fn scale_presets(scale: Scale) -> (usize, usize, usize, usize) {
    match scale {
        Scale::Tiny => (10, 10, 48, 3),
        Scale::Small => (30, 18, 80, 4),
        Scale::Paper => (100, 30, 300, 5),
    }
}

/// Scales a scenario's paper-default config down to bench size (or up,
/// via environment overrides).
pub fn bench_config(base: &TdConfig) -> TdConfig {
    let scale = scale_from_env();
    let (walks, len, dim, epochs) = scale_presets(scale);
    TdConfig {
        walks_per_node: env_usize("TDMATCH_WALKS", walks),
        walk_len: env_usize("TDMATCH_WALK_LEN", len),
        dim: env_usize("TDMATCH_DIM", dim),
        epochs: env_usize("TDMATCH_EPOCHS", epochs),
        threads: env_usize(
            "TDMATCH_THREADS",
            tdmatch_embed::word2vec::default_threads(),
        ),
        ..base.clone()
    }
}

/// Fits W-RW (no expansion) on a scenario and returns the run + model.
pub fn run_wrw(scenario: &Scenario, k: usize) -> (MethodRun, TdModel) {
    run_pipeline(scenario, k, false, None)
}

/// Fits W-RW-EX (with expansion) on a scenario.
pub fn run_wrw_ex(scenario: &Scenario, k: usize) -> (MethodRun, TdModel) {
    run_pipeline(scenario, k, true, None)
}

/// Fits the pipeline with optional expansion and compression.
pub fn run_pipeline(
    scenario: &Scenario,
    k: usize,
    expand: bool,
    compression: Option<tdmatch_core::config::Compression>,
) -> (MethodRun, TdModel) {
    let config = bench_config(&scenario.config);
    let trainer = TdMatch::new(config);
    let options = FitOptions {
        kb: if expand { Some(scenario.kb.as_ref()) } else { None },
        compression,
        merge: Some((&scenario.pretrained, scenario.gamma)),
    };
    let model = trainer
        .fit_with(&scenario.first, &scenario.second, options)
        .expect("pipeline fit failed");
    let t0 = std::time::Instant::now();
    let results = model.match_top_k(k);
    let test_secs = t0.elapsed().as_secs_f64();
    let ranked = results.iter().map(|r| r.target_indices()).collect();
    let name = if expand { "W-RW-EX" } else { "W-RW" };
    (
        MethodRun {
            method: name.to_string(),
            ranked,
            train_secs: model.timings.total(),
            test_secs,
        },
        model,
    )
}

/// Fits the pipeline under an explicit configuration (for parameter
/// sweeps — Figs. 6/7/9 and the ablations).
pub fn run_with_config(
    scenario: &Scenario,
    config: TdConfig,
    k: usize,
    expand: bool,
) -> (MethodRun, TdModel) {
    let trainer = TdMatch::new(config);
    let options = FitOptions {
        kb: if expand { Some(scenario.kb.as_ref()) } else { None },
        compression: None,
        merge: Some((&scenario.pretrained, scenario.gamma)),
    };
    let model = trainer
        .fit_with(&scenario.first, &scenario.second, options)
        .expect("pipeline fit failed");
    let t0 = std::time::Instant::now();
    let results = model.match_top_k(k);
    let test_secs = t0.elapsed().as_secs_f64();
    let ranked = results.iter().map(|r| r.target_indices()).collect();
    (
        MethodRun {
            method: "W-RW".to_string(),
            ranked,
            train_secs: model.timings.total(),
            test_secs,
        },
        model,
    )
}

/// Evaluates a run against the scenario's ground truth (queries without
/// truth are skipped inside the metrics). Ranked lists are borrowed
/// straight from the run — no per-query clone.
pub fn evaluate(run: &MethodRun, scenario: &Scenario) -> RankMetrics {
    let truth = scenario.truth_sets();
    mean_metrics_over(
        run.ranked
            .iter()
            .zip(&truth)
            .map(|(r, rel)| (r.as_slice(), rel)),
    )
}

/// Prints the header of a ranking table (Tables I/II/IV/V/VI layout).
pub fn print_ranking_header(title: &str) {
    println!("\n=== {title} ===");
    println!(
        "{:<10} {:>6} | {:>6} {:>6} {:>6} | {:>6} {:>6} {:>6}",
        "Method", "MRR", "MAP@1", "MAP@5", "MAP@20", "HP@1", "HP@5", "HP@20"
    );
    println!("{}", "-".repeat(66));
}

/// Prints one ranking-table row.
pub fn print_ranking_row(method: &str, m: &RankMetrics) {
    println!(
        "{:<10} {:>6.3} | {:>6.3} {:>6.3} {:>6.3} | {:>6.3} {:>6.3} {:>6.3}",
        method,
        m.mrr,
        m.map_at[0],
        m.map_at[1],
        m.map_at[2],
        m.has_positive_at[0],
        m.has_positive_at[1],
        m.has_positive_at[2],
    );
}

/// Default supervised-baseline options at bench scale.
pub fn supervised_options(seed: u64) -> tdmatch_baselines::supervised::SupervisedOptions {
    tdmatch_baselines::supervised::SupervisedOptions {
        epochs: match scale_from_env() {
            Scale::Tiny => 8,
            _ => 15,
        },
        seed,
        ..Default::default()
    }
}

/// The k the ranking tables report up to.
pub const TABLE_K: usize = 20;

/// Exact and Node P/R/F for a run on the Audit scenario at cut-off `k`
/// (Table III): predictions are root-to-node taxonomy paths.
pub fn audit_eval(
    run: &MethodRun,
    scenario: &Scenario,
    k: usize,
) -> (tdmatch_eval::Prf, tdmatch_eval::Prf) {
    let tdmatch_core::corpus::Corpus::Structured(tax) = &scenario.first else {
        panic!("audit_eval needs a structured first corpus");
    };
    let path_of = |i: usize| tax.path(i);
    // Exact: top-k path strings vs truth path strings.
    let mut exact_docs: Vec<(Vec<String>, HashSet<String>)> = Vec::new();
    let mut node_docs: Vec<tdmatch_eval::node_score::DocPathPair<String>> = Vec::new();
    for (q, ranked) in run.ranked.iter().enumerate() {
        let truth = &scenario.ground_truth[q];
        if truth.is_empty() {
            continue;
        }
        let predicted: Vec<Vec<String>> = ranked.iter().take(k).map(|&t| path_of(t)).collect();
        exact_docs.push((
            predicted.iter().map(|p| p.join("/")).collect(),
            truth.iter().map(|&t| path_of(t).join("/")).collect(),
        ));
        node_docs.push((predicted, truth.iter().map(|&t| path_of(t)).collect()));
    }
    (
        tdmatch_eval::exact_prf(&exact_docs),
        tdmatch_eval::node_prf(&node_docs),
    )
}

/// Prints the Table III header.
pub fn print_prf_header(title: &str) {
    println!("\n=== {title} ===");
    println!(
        "{:<4} {:<10} | {:>6} {:>6} {:>6} | {:>6} {:>6} {:>6}",
        "K", "Method", "ExP", "ExR", "ExF", "NodeP", "NodeR", "NodeF"
    );
    println!("{}", "-".repeat(66));
}

/// Prints one Table III row.
pub fn print_prf_row(k: usize, method: &str, exact: &tdmatch_eval::Prf, node: &tdmatch_eval::Prf) {
    println!(
        "{:<4} {:<10} | {:>6.3} {:>6.3} {:>6.3} | {:>6.3} {:>6.3} {:>6.3}",
        k, method, exact.precision, exact.recall, exact.f1, node.precision, node.recall, node.f1
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use tdmatch_datasets::imdb;

    #[test]
    fn wrw_runs_on_tiny_imdb() {
        let scenario = imdb::generate(Scale::Tiny, 7, true);
        let config = TdConfig {
            walks_per_node: 10,
            walk_len: 8,
            dim: 32,
            epochs: 2,
            ..scenario.config.clone()
        };
        let (run, model) = run_with_config(&scenario, config, 5, false);
        assert_eq!(run.ranked.len(), scenario.second.len());
        let metrics = evaluate(&run, &scenario);
        assert!(metrics.mrr > 0.0, "mrr {}", metrics.mrr);
        assert!(model.graph_size().0 > 0);
    }

    #[test]
    fn env_scale_parsing_defaults_to_small() {
        // No env var set in tests → Small.
        assert_eq!(scale_from_env(), Scale::Small);
    }
}
