//! Typed edges and biased walks: the paper's future-work extensions.
//!
//! The graph tags every edge with its provenance (`Contains`, `ColumnOf`,
//! `Hierarchy`, `External`), and the walk generator can bias transitions —
//! either with node2vec's return/in-out parameters or with per-edge-kind
//! weights. This example fits the same corpora under three strategies and
//! compares where the true match lands.
//!
//! ```sh
//! cargo run --release --example biased_walks
//! ```

use tdmatch::core::config::TdConfig;
use tdmatch::core::corpus::{Corpus, Table, TextCorpus};
use tdmatch::core::pipeline::TdMatch;
use tdmatch::embed::walks::WalkStrategy;
use tdmatch::graph::{EdgeKind, EdgeTypeWeights};

fn corpora() -> (Corpus, Corpus) {
    let movies = Table::new(
        "movies",
        vec!["title".into(), "director".into(), "actor".into(), "genre".into()],
        vec![
            vec!["The Sixth Sense".into(), "Shyamalan".into(), "Bruce Willis".into(), "Thriller".into()],
            vec!["Pulp Fiction".into(), "Tarantino".into(), "Samuel Jackson".into(), "Drama".into()],
            vec!["Dark City".into(), "Proyas".into(), "Rufus Sewell".into(), "Mystery".into()],
            vec!["Kill Bill".into(), "Tarantino".into(), "Uma Thurman".into(), "Action".into()],
        ],
    );
    let reviews = TextCorpus::new(vec![
        "a tarantino movie with samuel jackson that is really a comedy".into(),
        "shyamalan directs bruce willis in a thriller with a twist".into(),
        "proyas builds a dark mystery city".into(),
        "kill bill has uma thurman in a tarantino action spectacle".into(),
    ]);
    (Corpus::Table(movies), Corpus::Text(reviews))
}

/// True tuple index for each review above.
const TRUTH: [usize; 4] = [1, 0, 2, 3];

fn top1_accuracy(strategy: WalkStrategy, label: &str) {
    let (first, second) = corpora();
    let config = TdConfig {
        walk_strategy: strategy,
        walks_per_node: 40,
        walk_len: 12,
        dim: 48,
        epochs: 5,
        ..TdConfig::for_tests()
    };
    let model = TdMatch::new(config).fit(&first, &second).expect("fit");
    let results = model.match_top_k(4);
    let correct = results
        .iter()
        .enumerate()
        .filter(|(i, r)| r.target_indices().first() == Some(&TRUTH[*i]))
        .count();
    let tops: Vec<String> = results
        .iter()
        .map(|r| {
            let (t, s) = r.ranked[0];
            format!("{t}({s:.2})")
        })
        .collect();
    println!(
        "{label:<22} top-1 correct: {correct}/{}  predictions: {}",
        results.len(),
        tops.join(" ")
    );
}

fn main() {
    // Inspect the typed edges the builder produced.
    let (first, second) = corpora();
    let model = TdMatch::new(TdConfig::for_tests())
        .fit(&first, &second)
        .expect("fit");
    let hist = model.graph.edge_kind_histogram();
    println!("edge kinds in the joint graph:");
    for kind in EdgeKind::ALL {
        if hist[kind.index()] > 0 {
            println!("  {kind:<12} {}", hist[kind.index()]);
        }
    }
    println!();

    // The paper's uniform walk (Alg. 4)…
    top1_accuracy(WalkStrategy::Uniform, "uniform (paper)");
    // …node2vec exploring outward (DFS-like)…
    top1_accuracy(WalkStrategy::Node2Vec { p: 0.5, q: 2.0 }, "node2vec p=0.5 q=2");
    // …and edge-typed walks preferring containment edges over the
    // structural column edges.
    let weights = EdgeTypeWeights::uniform()
        .with(EdgeKind::Contains, 2.0)
        .with(EdgeKind::ColumnOf, 0.5);
    top1_accuracy(WalkStrategy::EdgeTyped(weights), "edge-typed contains×2");
}
