//! Figure 8 — execution time (random walks + Word2Vec training) as the
//! graph grows.
//!
//! The paper grows STS-derived graphs (expanded with ConceptNet) from 3k
//! to 120k nodes and reports total embedding time; the expected shape is
//! **linear** scaling in the node count. We replicate by unioning several
//! independently-seeded STS scenarios into one corpus pair of increasing
//! size, building the graph, expanding it, and timing walks + training.

use std::time::Instant;

use tdmatch_bench::bench_config;
use tdmatch_core::builder::build_graph;
use tdmatch_core::corpus::{Corpus, TextCorpus};
use tdmatch_datasets::{sts, Scale};
use tdmatch_embed::walks::generate_walk_corpus;
use tdmatch_embed::word2vec::train_corpus;
use tdmatch_graph::CsrGraph;

fn main() {
    println!("\n=== Figure 8 — embedding time vs graph size ===");
    println!("{:>10} {:>10} {:>12}", "#nodes", "#edges", "time_secs");
    for copies in [1usize, 2, 4, 8, 16] {
        // Union `copies` STS corpora into one big text-to-text pair.
        let mut first_docs = Vec::new();
        let mut second_docs = Vec::new();
        for seed in 0..copies as u64 {
            let s = sts::generate(Scale::Small, 100 + seed, 2);
            let Corpus::Text(f) = s.first else { unreachable!() };
            let Corpus::Text(snd) = s.second else { unreachable!() };
            first_docs.extend(f.docs);
            second_docs.extend(snd.docs);
        }
        let first = Corpus::Text(TextCorpus::new(first_docs));
        let second = Corpus::Text(TextCorpus::new(second_docs));
        let base = sts::generate(Scale::Tiny, 1, 2);
        let config = bench_config(&base.config);

        let built = build_graph(&first, &second, &config, None);
        let mut graph = built.graph;
        tdmatch_core::expand::expand_graph(&mut graph, base.kb.as_ref(), 16);

        let t0 = Instant::now();
        let csr = CsrGraph::from_graph(&graph);
        let corpus = generate_walk_corpus(&csr, &config.walk_config());
        let counts = corpus.token_counts(graph.id_bound(), false);
        let _matrix = train_corpus(&corpus, &counts, &config.w2v_config());
        let secs = t0.elapsed().as_secs_f64();
        println!(
            "{:>10} {:>10} {:>12.3}",
            graph.node_count(),
            graph.edge_count(),
            secs
        );
    }
}
