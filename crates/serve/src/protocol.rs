//! The wire protocol: length-prefixed JSON frames over a byte stream.
//!
//! Full operator-facing specification in `docs/SERVING.md`; this module
//! is the single implementation both ends share (daemon, client, tests).
//!
//! # Framing
//!
//! ```text
//! +----------------+---------------------------+
//! | length u32 LE  | payload (length bytes)    |
//! +----------------+---------------------------+
//! ```
//!
//! The payload is one UTF-8 JSON object, conventionally terminated by a
//! newline (writers append it, parsers ignore surrounding whitespace) so
//! captured traffic reads as JSON-lines. A length of zero or above
//! [`MAX_FRAME`] is a framing error; the receiver reports
//! [`ErrorCode::Oversized`] / [`ErrorCode::BadFrame`] and closes the
//! connection, since the stream can no longer be trusted.
//!
//! # Score fidelity
//!
//! Scores are `f32`s widened to `f64` before encoding (exact) and
//! printed shortest-round-trip, so a client narrowing them back to
//! `f32` recovers the server's scores **bit-for-bit** — the protocol
//! never degrades the engine's bit-identical batching guarantee.

use std::io::{self, Read, Write};

use crate::json::{obj, parse, Json};

/// Hard ceiling on a frame's payload size (1 MiB). A `query_vector`
/// request for the largest supported artifact dim fits comfortably;
/// anything bigger is hostile or a desynchronized stream.
pub const MAX_FRAME: u32 = 1 << 20;

/// Default `k` when a query request omits it.
pub const DEFAULT_K: usize = 5;

/// Machine-readable failure classes, carried in the `code` field of
/// error responses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// The frame itself was unreadable (truncated payload, zero length).
    BadFrame,
    /// The length prefix exceeds [`MAX_FRAME`].
    Oversized,
    /// The payload is not valid JSON.
    BadJson,
    /// The payload is JSON but not a valid request (missing/ill-typed
    /// fields).
    BadRequest,
    /// The `op` field names no known operation.
    UnknownOp,
    /// A `query_id` document index at or beyond the query corpus.
    UnknownId,
    /// A `query_vector` vector whose length is not the artifact dim.
    BadVector,
    /// The daemon is draining and no longer accepts queries.
    ShuttingDown,
    /// The daemon is at its max-inflight limit and shed this request
    /// instead of queueing it. **Retryable**: back off and resend —
    /// [`Client`](crate::client::Client) does so automatically when
    /// given a retry policy.
    Overloaded,
    /// A `reload` request found no loadable artifact (no `--artifact`
    /// path, or the file is missing/torn/corrupt). The daemon keeps
    /// serving the previous snapshot.
    ReloadFailed,
}

impl ErrorCode {
    /// The wire spelling of this code.
    pub fn as_str(self) -> &'static str {
        match self {
            ErrorCode::BadFrame => "bad_frame",
            ErrorCode::Oversized => "oversized",
            ErrorCode::BadJson => "bad_json",
            ErrorCode::BadRequest => "bad_request",
            ErrorCode::UnknownOp => "unknown_op",
            ErrorCode::UnknownId => "unknown_id",
            ErrorCode::BadVector => "bad_vector",
            ErrorCode::ShuttingDown => "shutting_down",
            ErrorCode::Overloaded => "overloaded",
            ErrorCode::ReloadFailed => "reload_failed",
        }
    }

    /// True when resending the same request later may succeed without
    /// any operator action — the client retry policy's gate.
    pub fn is_retryable(self) -> bool {
        matches!(self, ErrorCode::Overloaded | ErrorCode::ShuttingDown)
    }

    /// Parses the wire spelling.
    pub fn parse(s: &str) -> Option<Self> {
        Some(match s {
            "bad_frame" => ErrorCode::BadFrame,
            "oversized" => ErrorCode::Oversized,
            "bad_json" => ErrorCode::BadJson,
            "bad_request" => ErrorCode::BadRequest,
            "unknown_op" => ErrorCode::UnknownOp,
            "unknown_id" => ErrorCode::UnknownId,
            "bad_vector" => ErrorCode::BadVector,
            "shutting_down" => ErrorCode::ShuttingDown,
            "overloaded" => ErrorCode::Overloaded,
            "reload_failed" => ErrorCode::ReloadFailed,
            _ => return None,
        })
    }
}

impl std::fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// What a client asks the daemon to do.
///
/// The three query operations carry an optional `ann` flag: `Some(true)`
/// requests ANN retrieval (widened pool + exact rerank), `Some(false)`
/// forces the exact scan, and `None` defers to the daemon's configured
/// default (`tdmatch serve --ann`). Daemons serving an artifact without
/// an index always scan exactly, whatever the flag says.
#[derive(Debug, Clone, PartialEq)]
pub enum RequestBody {
    /// Rank targets for query-corpus document `doc`.
    QueryId {
        /// Index into the artifact's query (second) corpus.
        doc: usize,
        /// How many ranked targets to return.
        k: usize,
        /// Per-request retrieval mode override (`None` = daemon default).
        ann: Option<bool>,
    },
    /// Tokenize + embed `text` server-side, then rank targets.
    QueryText {
        /// Raw query text (pre-processed with the standard tokenizer).
        text: String,
        /// How many ranked targets to return.
        k: usize,
        /// Per-request retrieval mode override (`None` = daemon default).
        ann: Option<bool>,
    },
    /// Rank targets for a raw (un-normalized) embedding vector.
    QueryVector {
        /// The vector; must have the artifact's dimensionality.
        vector: Vec<f32>,
        /// How many ranked targets to return.
        k: usize,
        /// Per-request retrieval mode override (`None` = daemon default).
        ann: Option<bool>,
    },
    /// Liveness probe.
    Ping,
    /// Request a [`StatsSnapshot`].
    Stats,
    /// Ask the daemon to hot-swap in the artifact currently at its
    /// configured path (rename-to-publish makes that path always a
    /// complete snapshot). In-flight queries finish against the old
    /// snapshot; a failed load keeps the old snapshot serving.
    Reload,
    /// Ask the daemon to drain and exit.
    Shutdown,
}

/// One request frame: a client-chosen correlation id plus the body.
/// The id is echoed verbatim in the response.
#[derive(Debug, Clone, PartialEq)]
pub struct Request {
    /// Client-chosen correlation id (0 if omitted). Must stay below
    /// 2^53: ids travel as JSON numbers, so larger values lose
    /// precision in any standards-conforming peer.
    pub id: u64,
    /// The operation.
    pub body: RequestBody,
}

/// Aggregate serving counters, as returned by [`RequestBody::Stats`].
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct StatsSnapshot {
    /// Query requests answered (all kinds, including error answers).
    pub requests: u64,
    /// Queries that went through the batching scheduler.
    pub batched_requests: u64,
    /// Scoring batches executed.
    pub batches: u64,
    /// Requests that shared their batch with at least one other request.
    pub coalesced: u64,
    /// Error responses sent.
    pub errors: u64,
    /// Largest batch executed.
    pub max_batch: u64,
    /// Requests shed with `overloaded` at the max-inflight limit.
    pub shed: u64,
    /// Connections evicted for stalling past the I/O deadline.
    pub evicted: u64,
    /// Successful hot swaps since startup.
    pub reloads: u64,
    /// Reload attempts that failed (old snapshot kept serving).
    pub reload_failures: u64,
    /// Snapshot generation currently serving (counts successful swaps).
    pub generation: u64,
    /// Queries whose candidates came from the ANN index.
    pub ann_queries: u64,
    /// Queries answered by the exact full scan.
    pub exact_queries: u64,
    /// Total candidates offered to the exact rescorer by ANN queries
    /// (divide by `ann_queries` for the mean pool — see
    /// [`mean_pool`](StatsSnapshot::mean_pool)).
    pub pooled: u64,
    /// Scoring-pool width the daemon runs with (configured workers).
    pub workers: u64,
    /// Shard scoring calls executed by the pool (one coalesced batch
    /// fans out into up to `workers` shards per retrieval mode).
    pub shards: u64,
    /// Admitted-but-unanswered queries right now (gauge, not a
    /// counter): queued plus being scored plus awaiting their response
    /// write. The `max_inflight` admission budget is enforced against
    /// exactly this number.
    pub inflight: u64,
    /// Queries and shard tasks waiting for a thread right now (gauge):
    /// the batch queue plus the scoring pool's backlog.
    pub queue_depth: u64,
    /// Seconds since the daemon started.
    pub uptime_secs: f64,
}

impl StatsSnapshot {
    /// Mean queries per executed batch (0 when nothing ran yet).
    pub fn mean_batch(&self) -> f64 {
        if self.batches == 0 {
            0.0
        } else {
            self.batched_requests as f64 / self.batches as f64
        }
    }

    /// Mean exact-rescored candidates per ANN query (0 when no query
    /// has pooled through the index yet).
    pub fn mean_pool(&self) -> f64 {
        if self.ann_queries == 0 {
            0.0
        } else {
            self.pooled as f64 / self.ann_queries as f64
        }
    }
}

/// What the daemon answers.
#[derive(Debug, Clone, PartialEq)]
pub enum ResponseBody {
    /// A ranked answer to any `query_*` request.
    Matches {
        /// `(target index, score)` by decreasing score.
        matches: Vec<(usize, f32)>,
        /// Number of queries coalesced into the scoring call that
        /// answered this request (0 when answered without scoring, e.g.
        /// a text query with no known token).
        batch: usize,
    },
    /// Answer to `ping`.
    Pong,
    /// Answer to `stats`.
    Stats(StatsSnapshot),
    /// Answer to a successful `reload`: the generation now serving.
    Reloaded {
        /// Snapshot generation after the swap.
        generation: u64,
    },
    /// Acknowledgement of `shutdown`; the daemon drains and exits.
    Stopping,
    /// The request failed.
    Error {
        /// Machine-readable failure class.
        code: ErrorCode,
        /// Human-oriented detail.
        message: String,
    },
}

/// One response frame: the echoed request id plus the body.
#[derive(Debug, Clone, PartialEq)]
pub struct Response {
    /// The request's correlation id (0 when the request was unreadable).
    pub id: u64,
    /// The answer.
    pub body: ResponseBody,
}

impl Response {
    /// Shorthand for an error response.
    pub fn error(id: u64, code: ErrorCode, message: impl Into<String>) -> Self {
        Response {
            id,
            body: ResponseBody::Error {
                code,
                message: message.into(),
            },
        }
    }
}

/// Why a frame could not be read off the stream.
#[derive(Debug)]
pub enum FrameError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// The length prefix exceeds [`MAX_FRAME`] (or is zero).
    Oversized {
        /// The length the prefix claimed.
        len: u32,
    },
    /// The stream ended mid-frame.
    Truncated,
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Io(e) => write!(f, "I/O error: {e}"),
            FrameError::Oversized { len } => {
                write!(f, "frame of {len} bytes exceeds the {MAX_FRAME}-byte limit")
            }
            FrameError::Truncated => write!(f, "stream ended mid-frame"),
        }
    }
}

impl std::error::Error for FrameError {}

impl From<io::Error> for FrameError {
    fn from(e: io::Error) -> Self {
        FrameError::Io(e)
    }
}

/// Reads one frame's payload. `Ok(None)` is a clean end-of-stream (the
/// peer closed between frames); ending *inside* a frame is
/// [`FrameError::Truncated`].
pub fn read_frame<R: Read>(r: &mut R) -> Result<Option<Vec<u8>>, FrameError> {
    let mut prefix = [0u8; 4];
    let mut got = 0;
    while got < 4 {
        match r.read(&mut prefix[got..]) {
            Ok(0) if got == 0 => return Ok(None),
            Ok(0) => return Err(FrameError::Truncated),
            Ok(n) => got += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e.into()),
        }
    }
    let len = u32::from_le_bytes(prefix);
    if len == 0 || len > MAX_FRAME {
        return Err(FrameError::Oversized { len });
    }
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload).map_err(|e| {
        if e.kind() == io::ErrorKind::UnexpectedEof {
            FrameError::Truncated
        } else {
            FrameError::Io(e)
        }
    })?;
    Ok(Some(payload))
}

/// A *resumable* frame decoder for sockets with read deadlines.
///
/// [`read_frame`] assumes a blocking reader: a timeout mid-prefix would
/// lose the bytes already consumed and desynchronize the stream.
/// `FrameReader` keeps the partial state across calls instead, so a
/// server can read with `SO_RCVTIMEO` armed and distinguish the two
/// timeout cases:
///
/// * timeout **between** frames ([`in_frame`](FrameReader::in_frame) is
///   `false`) — an idle client; keep waiting;
/// * timeout **inside** a frame (`in_frame` is `true`) — a stalled or
///   half-dead client holding a reader thread hostage; evict it.
///
/// A successful [`next`](FrameReader::next) resets the state for the
/// following frame. Timeouts surface as [`FrameError::Io`] with kind
/// `WouldBlock` or `TimedOut` (platforms differ); every other error is
/// terminal exactly as with [`read_frame`].
#[derive(Debug, Default)]
pub struct FrameReader {
    prefix: [u8; 4],
    prefix_got: usize,
    payload: Vec<u8>,
    payload_got: usize,
}

impl FrameReader {
    /// A decoder at a frame boundary.
    pub fn new() -> Self {
        Self::default()
    }

    /// True when some bytes of the current frame have been consumed but
    /// the frame is not complete — the eviction signal on timeout.
    pub fn in_frame(&self) -> bool {
        self.prefix_got > 0
    }

    /// Reads (or resumes reading) one frame. Same contract as
    /// [`read_frame`], except that `WouldBlock`/`TimedOut` I/O errors
    /// leave the decoder resumable: call `next` again to continue the
    /// same frame.
    pub fn next<R: Read>(&mut self, r: &mut R) -> Result<Option<Vec<u8>>, FrameError> {
        self.next_with(r, || {})
    }

    /// Like [`next`](FrameReader::next), but invokes `on_frame_start`
    /// exactly once per frame, when its first byte is consumed — the
    /// earliest moment the peer is known to have a request in flight.
    /// The hook does not re-fire when a `WouldBlock` interruption is
    /// resumed mid-frame. The server uses it to signal batching intent
    /// ([`BatchQueue::begin_intent`](crate::batch::BatchQueue::begin_intent))
    /// before the frame completes, so the coalescing window waits for
    /// requests that are demonstrably on their way and for nothing else.
    pub fn next_with<R: Read, F: FnMut()>(
        &mut self,
        r: &mut R,
        mut on_frame_start: F,
    ) -> Result<Option<Vec<u8>>, FrameError> {
        while self.prefix_got < 4 {
            match r.read(&mut self.prefix[self.prefix_got..]) {
                Ok(0) if self.prefix_got == 0 => return Ok(None),
                Ok(0) => return Err(FrameError::Truncated),
                Ok(n) => {
                    if self.prefix_got == 0 {
                        on_frame_start();
                    }
                    self.prefix_got += n;
                    if self.prefix_got == 4 {
                        let len = u32::from_le_bytes(self.prefix);
                        if len == 0 || len > MAX_FRAME {
                            return Err(FrameError::Oversized { len });
                        }
                        self.payload = vec![0u8; len as usize];
                        self.payload_got = 0;
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e.into()),
            }
        }
        while self.payload_got < self.payload.len() {
            match r.read(&mut self.payload[self.payload_got..]) {
                Ok(0) => return Err(FrameError::Truncated),
                Ok(n) => self.payload_got += n,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e.into()),
            }
        }
        self.prefix_got = 0;
        Ok(Some(std::mem::take(&mut self.payload)))
    }
}

/// Writes one frame: length prefix, the JSON text, a closing newline
/// (included in the length).
pub fn write_frame<W: Write>(w: &mut W, json_text: &str) -> io::Result<()> {
    let len = json_text.len() + 1; // + trailing newline
    let len = u32::try_from(len).map_err(|_| {
        io::Error::new(io::ErrorKind::InvalidInput, "frame exceeds u32 length")
    })?;
    w.write_all(&len.to_le_bytes())?;
    w.write_all(json_text.as_bytes())?;
    w.write_all(b"\n")?;
    w.flush()
}

/// A payload that parsed as JSON but is not a valid message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MalformedMessage {
    /// The closest protocol error class ([`ErrorCode::BadJson`],
    /// [`ErrorCode::BadRequest`] or [`ErrorCode::UnknownOp`]).
    pub code: ErrorCode,
    /// The request id, when one could still be extracted (so the error
    /// response can be correlated).
    pub id: u64,
    /// What was wrong.
    pub message: String,
}

impl std::fmt::Display for MalformedMessage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.code, self.message)
    }
}

impl std::error::Error for MalformedMessage {}

fn malformed(code: ErrorCode, id: u64, message: impl Into<String>) -> MalformedMessage {
    MalformedMessage {
        code,
        id,
        message: message.into(),
    }
}

/// Extracts `id` (default 0) from a JSON message, if it is an object.
fn message_id(v: &Json) -> u64 {
    v.get("id").and_then(Json::as_u64).unwrap_or(0)
}

fn parse_payload(payload: &[u8]) -> Result<Json, MalformedMessage> {
    let text = std::str::from_utf8(payload)
        .map_err(|_| malformed(ErrorCode::BadJson, 0, "payload is not UTF-8"))?;
    parse(text).map_err(|e| malformed(ErrorCode::BadJson, 0, e.to_string()))
}

fn field_k(v: &Json, id: u64) -> Result<usize, MalformedMessage> {
    match v.get("k") {
        None => Ok(DEFAULT_K),
        Some(k) => k
            .as_usize()
            .ok_or_else(|| malformed(ErrorCode::BadRequest, id, "k must be a non-negative integer")),
    }
}

fn field_ann(v: &Json, id: u64) -> Result<Option<bool>, MalformedMessage> {
    match v.get("ann") {
        None => Ok(None),
        Some(Json::Bool(b)) => Ok(Some(*b)),
        Some(_) => Err(malformed(ErrorCode::BadRequest, id, "ann must be a boolean")),
    }
}

impl Request {
    /// Encodes to the wire JSON text.
    pub fn encode(&self) -> String {
        let mut members = vec![("id", Json::Num(self.id as f64))];
        let push_ann = |members: &mut Vec<(&str, Json)>, ann: &Option<bool>| {
            if let Some(ann) = ann {
                members.push(("ann", Json::Bool(*ann)));
            }
        };
        match &self.body {
            RequestBody::QueryId { doc, k, ann } => {
                members.push(("op", Json::Str("query_id".into())));
                members.push(("doc", Json::Num(*doc as f64)));
                members.push(("k", Json::Num(*k as f64)));
                push_ann(&mut members, ann);
            }
            RequestBody::QueryText { text, k, ann } => {
                members.push(("op", Json::Str("query_text".into())));
                members.push(("text", Json::Str(text.clone())));
                members.push(("k", Json::Num(*k as f64)));
                push_ann(&mut members, ann);
            }
            RequestBody::QueryVector { vector, k, ann } => {
                members.push(("op", Json::Str("query_vector".into())));
                members.push((
                    "vector",
                    Json::Arr(vector.iter().map(|&x| Json::Num(x as f64)).collect()),
                ));
                members.push(("k", Json::Num(*k as f64)));
                push_ann(&mut members, ann);
            }
            RequestBody::Ping => members.push(("op", Json::Str("ping".into()))),
            RequestBody::Stats => members.push(("op", Json::Str("stats".into()))),
            RequestBody::Reload => members.push(("op", Json::Str("reload".into()))),
            RequestBody::Shutdown => members.push(("op", Json::Str("shutdown".into()))),
        }
        Json::Obj(members.into_iter().map(|(k, v)| (k.to_string(), v)).collect()).encode()
    }

    /// Decodes a request payload. On failure the error carries the best
    /// available correlation id and the protocol error class to answer
    /// with.
    pub fn decode(payload: &[u8]) -> Result<Self, MalformedMessage> {
        let v = parse_payload(payload)?;
        if !matches!(v, Json::Obj(_)) {
            return Err(malformed(ErrorCode::BadRequest, 0, "request must be an object"));
        }
        let id = message_id(&v);
        let op = v
            .get("op")
            .and_then(Json::as_str)
            .ok_or_else(|| malformed(ErrorCode::BadRequest, id, "missing op field"))?;
        let body = match op {
            "query_id" => RequestBody::QueryId {
                doc: v
                    .get("doc")
                    .and_then(Json::as_usize)
                    .ok_or_else(|| malformed(ErrorCode::BadRequest, id, "query_id requires a doc index"))?,
                k: field_k(&v, id)?,
                ann: field_ann(&v, id)?,
            },
            "query_text" => RequestBody::QueryText {
                text: v
                    .get("text")
                    .and_then(Json::as_str)
                    .ok_or_else(|| malformed(ErrorCode::BadRequest, id, "query_text requires a text string"))?
                    .to_string(),
                k: field_k(&v, id)?,
                ann: field_ann(&v, id)?,
            },
            "query_vector" => {
                let arr = v
                    .get("vector")
                    .and_then(Json::as_arr)
                    .ok_or_else(|| malformed(ErrorCode::BadRequest, id, "query_vector requires a vector array"))?;
                let mut vector = Vec::with_capacity(arr.len());
                for x in arr {
                    vector.push(x.as_num().ok_or_else(|| {
                        malformed(ErrorCode::BadRequest, id, "vector elements must be numbers")
                    })? as f32);
                }
                RequestBody::QueryVector {
                    vector,
                    k: field_k(&v, id)?,
                    ann: field_ann(&v, id)?,
                }
            }
            "ping" => RequestBody::Ping,
            "stats" => RequestBody::Stats,
            "reload" => RequestBody::Reload,
            "shutdown" => RequestBody::Shutdown,
            other => {
                return Err(malformed(
                    ErrorCode::UnknownOp,
                    id,
                    format!("unknown op `{other}`"),
                ))
            }
        };
        Ok(Request { id, body })
    }
}

impl StatsSnapshot {
    fn to_json(self) -> Json {
        obj([
            ("requests", Json::Num(self.requests as f64)),
            ("batched_requests", Json::Num(self.batched_requests as f64)),
            ("batches", Json::Num(self.batches as f64)),
            ("coalesced", Json::Num(self.coalesced as f64)),
            ("errors", Json::Num(self.errors as f64)),
            ("max_batch", Json::Num(self.max_batch as f64)),
            ("mean_batch", Json::Num(self.mean_batch())),
            ("shed", Json::Num(self.shed as f64)),
            ("evicted", Json::Num(self.evicted as f64)),
            ("reloads", Json::Num(self.reloads as f64)),
            ("reload_failures", Json::Num(self.reload_failures as f64)),
            ("generation", Json::Num(self.generation as f64)),
            ("ann_queries", Json::Num(self.ann_queries as f64)),
            ("exact_queries", Json::Num(self.exact_queries as f64)),
            ("pooled", Json::Num(self.pooled as f64)),
            ("mean_pool", Json::Num(self.mean_pool())),
            ("workers", Json::Num(self.workers as f64)),
            ("shards", Json::Num(self.shards as f64)),
            ("inflight", Json::Num(self.inflight as f64)),
            ("queue_depth", Json::Num(self.queue_depth as f64)),
            ("uptime_secs", Json::Num(self.uptime_secs)),
        ])
    }

    fn from_json(v: &Json) -> Option<Self> {
        // Counters added after the first release (the ANN trio, then
        // the scoring-pool quartet) default to zero so snapshots
        // emitted by older daemons still parse.
        let u64_or_zero = |key: &str| v.get(key).and_then(Json::as_u64).unwrap_or(0);
        Some(StatsSnapshot {
            requests: v.get("requests")?.as_u64()?,
            batched_requests: v.get("batched_requests")?.as_u64()?,
            batches: v.get("batches")?.as_u64()?,
            coalesced: v.get("coalesced")?.as_u64()?,
            errors: v.get("errors")?.as_u64()?,
            max_batch: v.get("max_batch")?.as_u64()?,
            shed: v.get("shed")?.as_u64()?,
            evicted: v.get("evicted")?.as_u64()?,
            reloads: v.get("reloads")?.as_u64()?,
            reload_failures: v.get("reload_failures")?.as_u64()?,
            generation: v.get("generation")?.as_u64()?,
            ann_queries: u64_or_zero("ann_queries"),
            exact_queries: u64_or_zero("exact_queries"),
            pooled: u64_or_zero("pooled"),
            workers: u64_or_zero("workers"),
            shards: u64_or_zero("shards"),
            inflight: u64_or_zero("inflight"),
            queue_depth: u64_or_zero("queue_depth"),
            uptime_secs: v.get("uptime_secs")?.as_num()?,
        })
    }
}

impl Response {
    /// Encodes to the wire JSON text.
    pub fn encode(&self) -> String {
        let mut members = vec![("id", Json::Num(self.id as f64))];
        match &self.body {
            ResponseBody::Matches { matches, batch } => {
                members.push(("ok", Json::Bool(true)));
                members.push((
                    "matches",
                    Json::Arr(
                        matches
                            .iter()
                            .map(|&(t, s)| {
                                Json::Arr(vec![Json::Num(t as f64), Json::Num(s as f64)])
                            })
                            .collect(),
                    ),
                ));
                members.push(("batch", Json::Num(*batch as f64)));
            }
            ResponseBody::Pong => {
                members.push(("ok", Json::Bool(true)));
                members.push(("pong", Json::Bool(true)));
            }
            ResponseBody::Stats(stats) => {
                members.push(("ok", Json::Bool(true)));
                members.push(("stats", stats.to_json()));
            }
            ResponseBody::Reloaded { generation } => {
                members.push(("ok", Json::Bool(true)));
                members.push(("reloaded", Json::Bool(true)));
                members.push(("generation", Json::Num(*generation as f64)));
            }
            ResponseBody::Stopping => {
                members.push(("ok", Json::Bool(true)));
                members.push(("stopping", Json::Bool(true)));
            }
            ResponseBody::Error { code, message } => {
                members.push(("ok", Json::Bool(false)));
                members.push(("code", Json::Str(code.as_str().into())));
                members.push(("error", Json::Str(message.clone())));
            }
        }
        Json::Obj(members.into_iter().map(|(k, v)| (k.to_string(), v)).collect()).encode()
    }

    /// Decodes a response payload (the client side).
    pub fn decode(payload: &[u8]) -> Result<Self, MalformedMessage> {
        let v = parse_payload(payload)?;
        let id = message_id(&v);
        let bad = |msg: &str| malformed(ErrorCode::BadRequest, id, msg);
        let ok = v
            .get("ok")
            .and_then(|b| match b {
                Json::Bool(b) => Some(*b),
                _ => None,
            })
            .ok_or_else(|| bad("missing ok field"))?;
        if !ok {
            let code = v
                .get("code")
                .and_then(Json::as_str)
                .and_then(ErrorCode::parse)
                .ok_or_else(|| bad("error response without a known code"))?;
            let message = v
                .get("error")
                .and_then(Json::as_str)
                .unwrap_or_default()
                .to_string();
            return Ok(Response {
                id,
                body: ResponseBody::Error { code, message },
            });
        }
        if let Some(arr) = v.get("matches").and_then(Json::as_arr) {
            let mut matches = Vec::with_capacity(arr.len());
            for pair in arr {
                let pair = pair.as_arr().filter(|p| p.len() == 2).ok_or_else(|| {
                    bad("matches entries must be [target, score] pairs")
                })?;
                let t = pair[0].as_usize().ok_or_else(|| bad("bad target index"))?;
                let s = pair[1].as_num().ok_or_else(|| bad("bad score"))? as f32;
                matches.push((t, s));
            }
            let batch = v
                .get("batch")
                .and_then(Json::as_usize)
                .ok_or_else(|| bad("matches response without batch size"))?;
            return Ok(Response {
                id,
                body: ResponseBody::Matches { matches, batch },
            });
        }
        if v.get("pong").is_some() {
            return Ok(Response {
                id,
                body: ResponseBody::Pong,
            });
        }
        if let Some(stats) = v.get("stats") {
            let stats = StatsSnapshot::from_json(stats).ok_or_else(|| bad("bad stats object"))?;
            return Ok(Response {
                id,
                body: ResponseBody::Stats(stats),
            });
        }
        if v.get("reloaded").is_some() {
            let generation = v
                .get("generation")
                .and_then(Json::as_u64)
                .ok_or_else(|| bad("reloaded response without a generation"))?;
            return Ok(Response {
                id,
                body: ResponseBody::Reloaded { generation },
            });
        }
        if v.get("stopping").is_some() {
            return Ok(Response {
                id,
                body: ResponseBody::Stopping,
            });
        }
        Err(bad("unrecognized response shape"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_request(r: Request) {
        let text = r.encode();
        let back = Request::decode(text.as_bytes()).unwrap();
        assert_eq!(r, back, "{text}");
    }

    #[test]
    fn requests_roundtrip() {
        roundtrip_request(Request {
            id: 7,
            body: RequestBody::QueryId {
                doc: 3,
                k: 20,
                ann: None,
            },
        });
        roundtrip_request(Request {
            id: u64::MAX >> 12,
            body: RequestBody::QueryText {
                text: "tarantino \"pulp\"\n".into(),
                k: 1,
                ann: Some(true),
            },
        });
        roundtrip_request(Request {
            id: 0,
            body: RequestBody::QueryVector {
                vector: vec![0.25, -1.5, 0.0],
                k: 5,
                ann: Some(false),
            },
        });
        for body in [
            RequestBody::Ping,
            RequestBody::Stats,
            RequestBody::Reload,
            RequestBody::Shutdown,
        ] {
            roundtrip_request(Request { id: 1, body });
        }
    }

    #[test]
    fn responses_roundtrip_with_bitexact_scores() {
        let scores: Vec<(usize, f32)> = (0..40)
            .map(|i| (i * 3, ((i as f32) * 0.37).sin()))
            .collect();
        let r = Response {
            id: 12,
            body: ResponseBody::Matches {
                matches: scores.clone(),
                batch: 8,
            },
        };
        let back = Response::decode(r.encode().as_bytes()).unwrap();
        let ResponseBody::Matches { matches, batch } = back.body else {
            panic!("wrong shape");
        };
        assert_eq!(batch, 8);
        for ((t, s), (bt, bs)) in scores.iter().zip(&matches) {
            assert_eq!(t, bt);
            assert_eq!(s.to_bits(), bs.to_bits());
        }

        for body in [
            ResponseBody::Pong,
            ResponseBody::Stopping,
            ResponseBody::Reloaded { generation: 3 },
            ResponseBody::Stats(StatsSnapshot {
                requests: 100,
                batched_requests: 90,
                batches: 20,
                coalesced: 72,
                errors: 3,
                max_batch: 8,
                shed: 11,
                evicted: 2,
                reloads: 4,
                reload_failures: 1,
                generation: 4,
                ann_queries: 40,
                exact_queries: 50,
                pooled: 5120,
                workers: 4,
                shards: 35,
                inflight: 6,
                queue_depth: 2,
                uptime_secs: 12.5,
            }),
            ResponseBody::Error {
                code: ErrorCode::UnknownId,
                message: "unknown query id 99".into(),
            },
        ] {
            let r = Response { id: 4, body };
            assert_eq!(Response::decode(r.encode().as_bytes()).unwrap(), r);
        }
    }

    #[test]
    fn request_default_k_applies() {
        let r = Request::decode(br#"{"op":"query_id","doc":0}"#).unwrap();
        assert_eq!(
            r.body,
            RequestBody::QueryId {
                doc: 0,
                k: DEFAULT_K,
                ann: None
            }
        );
        assert_eq!(r.id, 0);
    }

    #[test]
    fn ann_flag_parses_strictly_and_defaults_to_none() {
        let r = Request::decode(br#"{"op":"query_id","doc":0,"ann":true}"#).unwrap();
        assert!(matches!(r.body, RequestBody::QueryId { ann: Some(true), .. }));
        let r = Request::decode(br#"{"op":"query_text","text":"x","ann":false}"#).unwrap();
        assert!(matches!(r.body, RequestBody::QueryText { ann: Some(false), .. }));
        let err = Request::decode(br#"{"op":"query_id","doc":0,"ann":1}"#).unwrap_err();
        assert_eq!(err.code, ErrorCode::BadRequest);
    }

    #[test]
    fn pre_ann_stats_payloads_still_parse() {
        // A snapshot emitted before the ANN counters existed must
        // decode with the new fields zeroed.
        let old = br#"{"id":1,"ok":true,"stats":{"requests":5,"batched_requests":5,
            "batches":2,"coalesced":3,"errors":0,"max_batch":4,"mean_batch":2.5,
            "shed":0,"evicted":0,"reloads":0,"reload_failures":0,"generation":0,
            "uptime_secs":1.5}}"#;
        let r = Response::decode(old).unwrap();
        let ResponseBody::Stats(s) = r.body else { panic!("wrong shape") };
        assert_eq!((s.ann_queries, s.exact_queries, s.pooled), (0, 0, 0));
        assert_eq!(s.mean_pool(), 0.0);
        // Likewise the scoring-pool counters.
        assert_eq!((s.workers, s.shards, s.inflight, s.queue_depth), (0, 0, 0, 0));
    }

    #[test]
    fn malformed_requests_classify_precisely() {
        let cases: [(&[u8], ErrorCode, u64); 7] = [
            (b"not json", ErrorCode::BadJson, 0),
            (b"[1,2]", ErrorCode::BadRequest, 0),
            (br#"{"id":9}"#, ErrorCode::BadRequest, 9),
            (br#"{"id":9,"op":"warp"}"#, ErrorCode::UnknownOp, 9),
            (br#"{"id":2,"op":"query_id"}"#, ErrorCode::BadRequest, 2),
            (br#"{"id":2,"op":"query_id","doc":-1}"#, ErrorCode::BadRequest, 2),
            (
                br#"{"id":3,"op":"query_vector","vector":[1,"x"]}"#,
                ErrorCode::BadRequest,
                3,
            ),
        ];
        for (payload, code, id) in cases {
            let err = Request::decode(payload).unwrap_err();
            assert_eq!((err.code, err.id), (code, id), "{payload:?}");
        }
    }

    #[test]
    fn frames_roundtrip_and_reject_garbage() {
        let mut buf = Vec::new();
        write_frame(&mut buf, r#"{"op":"ping"}"#).unwrap();
        write_frame(&mut buf, r#"{"op":"stats"}"#).unwrap();
        let mut r = &buf[..];
        assert_eq!(
            read_frame(&mut r).unwrap().unwrap(),
            b"{\"op\":\"ping\"}\n"
        );
        assert_eq!(
            read_frame(&mut r).unwrap().unwrap(),
            b"{\"op\":\"stats\"}\n"
        );
        assert!(read_frame(&mut r).unwrap().is_none()); // clean EOF

        // Oversized length prefix.
        let bad = (MAX_FRAME + 1).to_le_bytes();
        assert!(matches!(
            read_frame(&mut &bad[..]),
            Err(FrameError::Oversized { .. })
        ));
        // Zero-length frame.
        let zero = 0u32.to_le_bytes();
        assert!(matches!(
            read_frame(&mut &zero[..]),
            Err(FrameError::Oversized { len: 0 })
        ));
        // Truncated payload.
        let mut t = 10u32.to_le_bytes().to_vec();
        t.extend_from_slice(b"abc");
        assert!(matches!(read_frame(&mut &t[..]), Err(FrameError::Truncated)));
        // Truncated prefix.
        let p = [1u8, 0];
        assert!(matches!(read_frame(&mut &p[..]), Err(FrameError::Truncated)));
    }

    /// A reader yielding its bytes in timed-out dribbles, to exercise
    /// FrameReader resumption at every split point.
    struct Dribble<'a> {
        chunks: Vec<&'a [u8]>,
        timeout_first: bool,
    }

    impl Read for Dribble<'_> {
        fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
            if self.timeout_first {
                self.timeout_first = false;
                return Err(io::Error::new(io::ErrorKind::WouldBlock, "rcvtimeo"));
            }
            self.timeout_first = true;
            match self.chunks.first().copied() {
                None => Ok(0),
                Some(chunk) => {
                    let n = chunk.len().min(buf.len()).min(3);
                    buf[..n].copy_from_slice(&chunk[..n]);
                    if n == chunk.len() {
                        self.chunks.remove(0);
                    } else {
                        self.chunks[0] = &chunk[n..];
                    }
                    Ok(n)
                }
            }
        }
    }

    #[test]
    fn frame_reader_resumes_across_timeouts_and_tracks_frame_state() {
        let mut wire = Vec::new();
        write_frame(&mut wire, r#"{"op":"ping"}"#).unwrap();
        write_frame(&mut wire, r#"{"op":"stats"}"#).unwrap();
        let mut src = Dribble {
            chunks: vec![&wire],
            timeout_first: false,
        };
        let mut fr = FrameReader::new();
        let mut frames = Vec::new();
        let mut timeouts = 0;
        loop {
            match fr.next(&mut src) {
                Ok(Some(p)) => frames.push(p),
                Ok(None) => break,
                Err(FrameError::Io(e)) if e.kind() == io::ErrorKind::WouldBlock => {
                    timeouts += 1;
                    assert!(timeouts < 1000, "no progress");
                }
                Err(e) => panic!("unexpected {e}"),
            }
        }
        assert_eq!(frames.len(), 2);
        assert_eq!(frames[0], b"{\"op\":\"ping\"}\n");
        assert_eq!(frames[1], b"{\"op\":\"stats\"}\n");
        assert!(timeouts > 0, "the dribbler should have timed out plenty");
        assert!(!fr.in_frame());

        // Mid-frame state is visible: feed half a frame, then time out.
        let mut partial = Dribble {
            chunks: vec![&wire[..7]],
            timeout_first: false,
        };
        let mut fr = FrameReader::new();
        loop {
            match fr.next(&mut partial) {
                Err(FrameError::Io(e)) if e.kind() == io::ErrorKind::WouldBlock => {
                    if partial.chunks.is_empty() {
                        break;
                    }
                }
                Err(FrameError::Truncated) => break,
                other => panic!("unexpected {other:?}"),
            }
        }
        assert!(fr.in_frame(), "a half-read frame must report in_frame");

        // Framing errors behave exactly like read_frame's.
        let bad = (MAX_FRAME + 1).to_le_bytes();
        assert!(matches!(
            FrameReader::new().next(&mut &bad[..]),
            Err(FrameError::Oversized { .. })
        ));
        assert!(FrameReader::new().next(&mut &[][..]).unwrap().is_none());
    }

    #[test]
    fn frame_start_hook_fires_once_per_frame_even_across_timeouts() {
        let mut wire = Vec::new();
        write_frame(&mut wire, r#"{"op":"ping"}"#).unwrap();
        write_frame(&mut wire, r#"{"op":"stats"}"#).unwrap();
        // The dribbler times out before every read and delivers at most
        // 3 bytes at a time, so every frame is resumed many times — the
        // hook must still fire exactly once per frame, at first byte.
        let mut src = Dribble {
            chunks: vec![&wire],
            timeout_first: false,
        };
        let mut fr = FrameReader::new();
        let mut frames = 0;
        let mut starts = 0;
        loop {
            match fr.next_with(&mut src, || starts += 1) {
                Ok(Some(_)) => {
                    frames += 1;
                    assert_eq!(starts, frames, "one start per completed frame");
                }
                Ok(None) => break,
                Err(FrameError::Io(e)) if e.kind() == io::ErrorKind::WouldBlock => {}
                Err(e) => panic!("unexpected {e}"),
            }
        }
        assert_eq!(frames, 2);
        assert_eq!(starts, 2);
    }

    #[test]
    fn retryable_codes_are_exactly_overloaded_and_shutting_down() {
        for code in [
            ErrorCode::BadFrame,
            ErrorCode::Oversized,
            ErrorCode::BadJson,
            ErrorCode::BadRequest,
            ErrorCode::UnknownOp,
            ErrorCode::UnknownId,
            ErrorCode::BadVector,
            ErrorCode::ReloadFailed,
        ] {
            assert!(!code.is_retryable(), "{code}");
        }
        assert!(ErrorCode::Overloaded.is_retryable());
        assert!(ErrorCode::ShuttingDown.is_retryable());
        // Every code's wire spelling round-trips.
        for code in [
            ErrorCode::BadFrame,
            ErrorCode::Oversized,
            ErrorCode::BadJson,
            ErrorCode::BadRequest,
            ErrorCode::UnknownOp,
            ErrorCode::UnknownId,
            ErrorCode::BadVector,
            ErrorCode::ShuttingDown,
            ErrorCode::Overloaded,
            ErrorCode::ReloadFailed,
        ] {
            assert_eq!(ErrorCode::parse(code.as_str()), Some(code));
        }
    }
}
