//! Table I — quality of match results for the IMDb scenario (WT and NT).
//!
//! Methods: S-BE, W-RW, W-RW-EX (unsupervised) and RANK*, DITTO*, TAPAS*
//! (supervised, 5-fold CV). Paper shape to reproduce: W-RW(-EX) clearly
//! ahead of S-BE and ahead of all supervised methods; NT harder than WT;
//! EX ≥ plain W-RW.

use tdmatch_bench::{
    evaluate, print_ranking_header, print_ranking_row, run_wrw, run_wrw_ex, scale_from_env,
    supervised_options, MethodRun, TABLE_K,
};
use tdmatch_datasets::imdb;

fn main() {
    let scale = scale_from_env();
    for with_title in [true, false] {
        let scenario = imdb::generate(scale, 42, with_title);
        let variant = if with_title { "WT" } else { "NT" };
        print_ranking_header(&format!("Table I — IMDb {variant} ({})", scenario.name));

        let sbe: MethodRun = tdmatch_baselines::sbe::run(
            &scenario.first,
            &scenario.second,
            &scenario.pretrained,
            TABLE_K,
        )
        .into();
        print_ranking_row(&sbe.method.clone(), &evaluate(&sbe, &scenario));

        let (wrw, _) = run_wrw(&scenario, TABLE_K);
        print_ranking_row(&wrw.method.clone(), &evaluate(&wrw, &scenario));

        let (wrw_ex, _) = run_wrw_ex(&scenario, TABLE_K);
        print_ranking_row(&wrw_ex.method.clone(), &evaluate(&wrw_ex, &scenario));

        let opts = supervised_options(42);
        let rank: MethodRun = tdmatch_baselines::rank::run(
            &scenario.first,
            &scenario.second,
            &scenario.ground_truth,
            &scenario.pretrained,
            &opts,
            TABLE_K,
        )
        .into();
        print_ranking_row(&rank.method.clone(), &evaluate(&rank, &scenario));

        let ditto: MethodRun = tdmatch_baselines::supervised::run_ditto(
            &scenario.first,
            &scenario.second,
            &scenario.ground_truth,
            &scenario.pretrained,
            &opts,
            TABLE_K,
        )
        .into();
        print_ranking_row(&ditto.method.clone(), &evaluate(&ditto, &scenario));

        let tapas: MethodRun = tdmatch_baselines::supervised::run_tapas(
            &scenario.first,
            &scenario.second,
            &scenario.ground_truth,
            &scenario.pretrained,
            &opts,
            TABLE_K,
        )
        .into();
        print_ranking_row(&tapas.method.clone(), &evaluate(&tapas, &scenario));
    }
}
