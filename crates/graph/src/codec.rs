//! Low-level binary codec shared by every persisted format in the
//! workspace: the legacy `TDG1` graph stream, the legacy `TDM1` match
//! artifact, and the `TDZ1` zero-copy container.
//!
//! One copy of the CRC-32 table, the little-endian integer writers, and
//! the bounds-checked [`ByteReader`] lives here; `tdmatch_graph::persist`
//! re-exports everything for backwards compatibility, and
//! [`crate::container`] builds the section-table format on top.

use std::io;

/// Errors raised when encoding or decoding persisted state.
#[derive(Debug)]
pub enum DecodeError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// Wrong magic bytes — not this format.
    BadMagic,
    /// Unsupported format version.
    UnsupportedVersion {
        /// Version found in the input.
        found: u32,
    },
    /// Checksum mismatch or truncation.
    Corrupt,
    /// Structurally invalid content (bad enum tag, non-UTF-8 label,
    /// out-of-range reference, implausible header field).
    Invalid(&'static str),
}

impl From<io::Error> for DecodeError {
    fn from(e: io::Error) -> Self {
        DecodeError::Io(e)
    }
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::Io(e) => write!(f, "I/O error: {e}"),
            DecodeError::BadMagic => write!(f, "bad magic (not a persisted TDmatch format)"),
            DecodeError::UnsupportedVersion { found } => {
                write!(f, "unsupported format version {found}")
            }
            DecodeError::Corrupt => write!(f, "checksum mismatch or truncated input"),
            DecodeError::Invalid(what) => write!(f, "invalid content: {what}"),
        }
    }
}

impl std::error::Error for DecodeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DecodeError::Io(e) => Some(e),
            _ => None,
        }
    }
}

/// CRC-32 (IEEE 802.3), table-driven; the table is built on first use.
pub fn crc32(data: &[u8]) -> u32 {
    use std::sync::OnceLock;
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    let table = TABLE.get_or_init(|| {
        let mut t = [0u32; 256];
        for (i, entry) in t.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            }
            *entry = c;
        }
        t
    });
    let mut crc = 0xFFFF_FFFFu32;
    for &b in data {
        crc = table[((crc ^ b as u32) & 0xFF) as usize] ^ (crc >> 8);
    }
    crc ^ 0xFFFF_FFFF
}

/// Appends a little-endian `u32`.
pub fn put_u32(buf: &mut Vec<u8>, x: u32) {
    buf.extend_from_slice(&x.to_le_bytes());
}

/// Appends a little-endian `u64`.
pub fn put_u64(buf: &mut Vec<u8>, x: u64) {
    buf.extend_from_slice(&x.to_le_bytes());
}

/// Appends little-endian `f32`s.
pub fn put_f32s(buf: &mut Vec<u8>, v: &[f32]) {
    for x in v {
        buf.extend_from_slice(&x.to_le_bytes());
    }
}

/// Bounds-checked reader over a byte slice; any overrun yields
/// [`DecodeError::Corrupt`].
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// Starts reading `buf` at `pos`.
    pub fn new(buf: &'a [u8], pos: usize) -> Self {
        Self { buf, pos }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len().saturating_sub(self.pos)
    }

    /// The next `n` raw bytes.
    pub fn bytes(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        let end = self.pos.checked_add(n).ok_or(DecodeError::Corrupt)?;
        if end > self.buf.len() {
            return Err(DecodeError::Corrupt);
        }
        let out = &self.buf[self.pos..end];
        self.pos = end;
        Ok(out)
    }

    /// One byte.
    pub fn u8(&mut self) -> Result<u8, DecodeError> {
        Ok(self.bytes(1)?[0])
    }

    /// A little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, DecodeError> {
        Ok(u32::from_le_bytes(self.bytes(4)?.try_into().unwrap()))
    }

    /// A little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, DecodeError> {
        Ok(u64::from_le_bytes(self.bytes(8)?.try_into().unwrap()))
    }

    /// `n` little-endian `f32`s.
    pub fn f32s(&mut self, n: usize) -> Result<Vec<f32>, DecodeError> {
        let raw = self.bytes(n.checked_mul(4).ok_or(DecodeError::Corrupt)?)?;
        Ok(raw
            .chunks_exact(4)
            .map(|c| f32::from_le_bytes(c.try_into().unwrap()))
            .collect())
    }

    /// A `u32`-length-prefixed UTF-8 string.
    pub fn string(&mut self) -> Result<String, DecodeError> {
        let len = self.u32()? as usize;
        String::from_utf8(self.bytes(len)?.to_vec())
            .map_err(|_| DecodeError::Invalid("non-UTF-8 label"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_known_vectors() {
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn reader_is_bounds_checked() {
        let mut buf = Vec::new();
        put_u32(&mut buf, 7);
        put_u64(&mut buf, u64::MAX);
        let mut r = ByteReader::new(&buf, 0);
        assert_eq!(r.u32().unwrap(), 7);
        assert_eq!(r.remaining(), 8);
        assert_eq!(r.u64().unwrap(), u64::MAX);
        assert!(matches!(r.u8(), Err(DecodeError::Corrupt)));
    }
}
