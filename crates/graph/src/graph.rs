//! The undirected graph with label interning and tombstone removal.

use std::collections::{HashMap, HashSet};

use crate::edge::EdgeKind;
use crate::node::{CorpusSide, MetaKind, NodeId, NodeKind};

/// Packs an undirected pair into one key (smaller id in the high half),
/// for the O(1) edge-membership set.
#[inline]
fn edge_key(a: NodeId, b: NodeId) -> u64 {
    let (lo, hi) = if a.0 <= b.0 { (a.0, b.0) } else { (b.0, a.0) };
    ((lo as u64) << 32) | hi as u64
}

/// An undirected, unweighted graph over data and metadata nodes.
///
/// * Data nodes are interned by label: adding the same term twice yields the
///   same [`NodeId`] (§II: "If a term is contained in multiple documents
///   across the corpora, it still appears as a single node").
/// * Metadata nodes carry a unique label (e.g. `t1`, `p3`) plus their
///   [`NodeKind`].
/// * Edges are deduplicated, carry an [`EdgeKind`] label (the typed-edge
///   extension from the paper's future work), and self-loops are rejected.
/// * Node removal (needed by expansion's sink-cleanup and by compression)
///   uses tombstones: ids of removed nodes are never reused, and iteration
///   skips them.
#[derive(Debug, Clone, Default)]
pub struct Graph {
    labels: Vec<String>,
    kinds: Vec<NodeKind>,
    adj: Vec<Vec<NodeId>>,
    /// Edge kinds, parallel to `adj`: `akind[u][i]` labels the edge
    /// `u — adj[u][i]`. Every mutation of `adj` mirrors into `akind`.
    akind: Vec<Vec<EdgeKind>>,
    removed: Vec<bool>,
    /// label → id for data/external nodes (the interning table).
    data_index: HashMap<String, NodeId>,
    /// label → id for metadata nodes (kept separate: a metadata label may
    /// coincide with a term).
    meta_index: HashMap<String, NodeId>,
    /// Packed undirected pairs of every live edge. Makes the duplicate
    /// probe in [`add_edge_typed`](Graph::add_edge_typed) and
    /// [`has_edge`](Graph::has_edge) O(1): the old adjacency-list
    /// `contains` scan made construction quadratic around hub terms.
    edge_set: HashSet<u64>,
    edge_count: usize,
    live_nodes: usize,
}

impl Graph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty graph with room for `nodes` nodes.
    pub fn with_capacity(nodes: usize) -> Self {
        Self {
            labels: Vec::with_capacity(nodes),
            kinds: Vec::with_capacity(nodes),
            adj: Vec::with_capacity(nodes),
            akind: Vec::with_capacity(nodes),
            removed: Vec::with_capacity(nodes),
            data_index: HashMap::with_capacity(nodes),
            meta_index: HashMap::new(),
            edge_set: HashSet::new(),
            edge_count: 0,
            live_nodes: 0,
        }
    }

    fn push_node(&mut self, label: String, kind: NodeKind) -> NodeId {
        let id = NodeId(self.labels.len() as u32);
        self.labels.push(label);
        self.kinds.push(kind);
        self.adj.push(Vec::new());
        self.akind.push(Vec::new());
        self.removed.push(false);
        self.live_nodes += 1;
        id
    }

    /// Interns a data node: returns the existing id for `label` or creates a
    /// new node. Revives a tombstoned node if its id is still in the index.
    pub fn intern_data(&mut self, label: &str) -> NodeId {
        if let Some(&id) = self.data_index.get(label) {
            if self.removed[id.index()] {
                self.removed[id.index()] = false;
                self.live_nodes += 1;
            }
            return id;
        }
        let id = self.push_node(label.to_string(), NodeKind::Data);
        self.data_index.insert(label.to_string(), id);
        id
    }

    /// Interns a node created by graph expansion (external resource).
    /// If the label already exists as a data node, that node is returned —
    /// external information attaches to the existing term.
    pub fn intern_external(&mut self, label: &str) -> NodeId {
        if let Some(&id) = self.data_index.get(label) {
            if self.removed[id.index()] {
                self.removed[id.index()] = false;
                self.live_nodes += 1;
            }
            return id;
        }
        let id = self.push_node(label.to_string(), NodeKind::External);
        self.data_index.insert(label.to_string(), id);
        id
    }

    /// Adds a metadata node. Labels must be unique among metadata nodes;
    /// adding a duplicate label returns the existing node.
    pub fn add_meta(&mut self, label: &str, side: CorpusSide, kind: MetaKind, index: u32) -> NodeId {
        if let Some(&id) = self.meta_index.get(label) {
            return id;
        }
        let id = self.push_node(
            label.to_string(),
            NodeKind::Meta { side, kind, index },
        );
        self.meta_index.insert(label.to_string(), id);
        id
    }

    /// Looks up a data/external node by label (live nodes only).
    pub fn data_node(&self, label: &str) -> Option<NodeId> {
        self.data_index
            .get(label)
            .copied()
            .filter(|id| !self.removed[id.index()])
    }

    /// Looks up a metadata node by label (live nodes only).
    pub fn meta_node(&self, label: &str) -> Option<NodeId> {
        self.meta_index
            .get(label)
            .copied()
            .filter(|id| !self.removed[id.index()])
    }

    /// Adds an undirected edge with the default [`EdgeKind::Generic`]
    /// label. Returns `true` if the edge is new; rejects self-loops and
    /// edges to removed nodes (returns `false`).
    pub fn add_edge(&mut self, a: NodeId, b: NodeId) -> bool {
        self.add_edge_typed(a, b, EdgeKind::Generic)
    }

    /// Adds an undirected edge carrying `kind`. Returns `true` if the edge
    /// is new; rejects self-loops, duplicates (the existing kind wins), and
    /// edges to removed nodes.
    pub fn add_edge_typed(&mut self, a: NodeId, b: NodeId, kind: EdgeKind) -> bool {
        if a == b || self.removed[a.index()] || self.removed[b.index()] {
            return false;
        }
        // O(1) duplicate probe; `insert` also registers the new edge.
        if !self.edge_set.insert(edge_key(a, b)) {
            return false;
        }
        self.adj[a.index()].push(b);
        self.akind[a.index()].push(kind);
        self.adj[b.index()].push(a);
        self.akind[b.index()].push(kind);
        self.edge_count += 1;
        true
    }

    /// True if the undirected edge `{a, b}` exists (O(1)).
    pub fn has_edge(&self, a: NodeId, b: NodeId) -> bool {
        !self.removed[a.index()]
            && !self.removed[b.index()]
            && self.edge_set.contains(&edge_key(a, b))
    }

    /// Removes a node and all its incident edges.
    pub fn remove_node(&mut self, id: NodeId) {
        if self.removed[id.index()] {
            return;
        }
        let neighbors = std::mem::take(&mut self.adj[id.index()]);
        self.akind[id.index()].clear();
        self.edge_count -= neighbors.len();
        for n in neighbors {
            self.edge_set.remove(&edge_key(id, n));
            // `adj` and `akind` are parallel; remove the same position from
            // both (swap_remove keeps them parallel and is O(1)).
            if let Some(pos) = self.adj[n.index()].iter().position(|&x| x == id) {
                self.adj[n.index()].swap_remove(pos);
                self.akind[n.index()].swap_remove(pos);
            }
        }
        self.removed[id.index()] = true;
        self.live_nodes -= 1;
    }

    /// The neighbors of a node. Empty for removed nodes.
    #[inline]
    pub fn neighbors(&self, id: NodeId) -> &[NodeId] {
        &self.adj[id.index()]
    }

    /// The edge kinds of a node's incident edges, parallel to
    /// [`neighbors`](Self::neighbors): `neighbor_kinds(u)[i]` labels the
    /// edge to `neighbors(u)[i]`.
    #[inline]
    pub fn neighbor_kinds(&self, id: NodeId) -> &[EdgeKind] {
        &self.akind[id.index()]
    }

    /// The kind of the undirected edge `{a, b}`, or `None` when absent.
    pub fn edge_kind(&self, a: NodeId, b: NodeId) -> Option<EdgeKind> {
        if self.removed[a.index()] || self.removed[b.index()] {
            return None;
        }
        let (probe, other) = if self.adj[a.index()].len() <= self.adj[b.index()].len() {
            (a, b)
        } else {
            (b, a)
        };
        self.adj[probe.index()]
            .iter()
            .position(|&x| x == other)
            .map(|pos| self.akind[probe.index()][pos])
    }

    /// Degree of a node (0 for removed nodes).
    #[inline]
    pub fn degree(&self, id: NodeId) -> usize {
        self.adj[id.index()].len()
    }

    /// The label of a node (also defined for removed nodes).
    #[inline]
    pub fn label(&self, id: NodeId) -> &str {
        &self.labels[id.index()]
    }

    /// The kind of a node.
    #[inline]
    pub fn kind(&self, id: NodeId) -> NodeKind {
        self.kinds[id.index()]
    }

    /// True if the node has been removed.
    #[inline]
    pub fn is_removed(&self, id: NodeId) -> bool {
        self.removed[id.index()]
    }

    /// Number of live nodes.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.live_nodes
    }

    /// Number of live undirected edges.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// Upper bound of node ids ever allocated (including tombstones); use
    /// for sizing side tables indexed by [`NodeId`].
    #[inline]
    pub fn id_bound(&self) -> usize {
        self.labels.len()
    }

    /// Iterates over live node ids.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.labels.len() as u32)
            .map(NodeId)
            .filter(move |id| !self.removed[id.index()])
    }

    /// Iterates over live undirected edges, each reported once with `a < b`.
    pub fn edges(&self) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        self.nodes().flat_map(move |a| {
            self.adj[a.index()]
                .iter()
                .copied()
                .filter(move |&b| a < b)
                .map(move |b| (a, b))
        })
    }

    /// Iterates over live undirected edges with their kinds, each reported
    /// once with `a < b`.
    pub fn edges_with_kinds(&self) -> impl Iterator<Item = (NodeId, NodeId, EdgeKind)> + '_ {
        self.nodes().flat_map(move |a| {
            self.adj[a.index()]
                .iter()
                .copied()
                .zip(self.akind[a.index()].iter().copied())
                .filter(move |&(b, _)| a < b)
                .map(move |(b, kind)| (a, b, kind))
        })
    }

    /// Counts live edges per [`EdgeKind`], indexed by [`EdgeKind::index`].
    /// Useful for reporting the composition of built / expanded graphs.
    pub fn edge_kind_histogram(&self) -> [usize; EdgeKind::ALL.len()] {
        let mut hist = [0usize; EdgeKind::ALL.len()];
        for (_, _, kind) in self.edges_with_kinds() {
            hist[kind.index()] += 1;
        }
        hist
    }

    /// All live metadata nodes, optionally restricted to one corpus side.
    pub fn metadata_nodes(&self, side: Option<CorpusSide>) -> Vec<NodeId> {
        self.nodes()
            .filter(|&id| {
                let k = self.kinds[id.index()];
                k.is_metadata() && (side.is_none() || k.side() == side)
            })
            .collect()
    }

    /// All live *matchable* metadata nodes of one side (tuples, docs,
    /// taxonomy nodes — not attributes).
    pub fn matchable_nodes(&self, side: CorpusSide) -> Vec<NodeId> {
        self.nodes()
            .filter(|&id| {
                let k = self.kinds[id.index()];
                k.is_matchable() && k.side() == Some(side)
            })
            .collect()
    }

    /// Merges node `remove` into node `keep` (§II-C node merging): every
    /// neighbor of `remove` is connected to `keep` with the original edge's
    /// kind, then `remove` is deleted. No-op when the ids are equal or
    /// either is removed.
    pub fn merge_nodes(&mut self, keep: NodeId, remove: NodeId) {
        if keep == remove || self.removed[keep.index()] || self.removed[remove.index()] {
            return;
        }
        let neighbors: Vec<NodeId> = self.adj[remove.index()].clone();
        let kinds: Vec<EdgeKind> = self.akind[remove.index()].clone();
        self.remove_node(remove);
        for (n, kind) in neighbors.into_iter().zip(kinds) {
            if n != keep {
                self.add_edge_typed(keep, n, kind);
            }
        }
    }

    /// Removes every *non-metadata* node whose degree is ≤ 1 (the sink
    /// cleanup of Alg. 2), cascading since removals can create new sinks.
    /// Returns the number of removed nodes.
    ///
    /// Runs off a worklist seeded with the nodes currently at degree ≤ 1;
    /// each removal enqueues only the neighbors it just demoted. Total
    /// cost is O(removed + their degrees) — the previous implementation
    /// rescanned every live node per cascade round, which was quadratic on
    /// long chains. The fixpoint is order-independent (degree peeling is
    /// confluent), so the surviving graph is identical.
    pub fn remove_sinks(&mut self) -> usize {
        let is_sink = |g: &Self, id: NodeId| {
            !g.removed[id.index()]
                && !g.kinds[id.index()].is_metadata()
                && g.adj[id.index()].len() <= 1
        };
        let mut worklist: Vec<NodeId> = self.nodes().filter(|&id| is_sink(self, id)).collect();
        let mut removed_total = 0;
        while let Some(id) = worklist.pop() {
            // A queued node may have been removed since enqueueing (as the
            // sole neighbor of another sink); re-check before removing.
            if !is_sink(self, id) {
                continue;
            }
            let neighbors = self.adj[id.index()].clone();
            self.remove_node(id);
            removed_total += 1;
            for n in neighbors {
                if is_sink(self, n) {
                    worklist.push(n);
                }
            }
        }
        removed_total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn meta(g: &mut Graph, label: &str, side: CorpusSide) -> NodeId {
        g.add_meta(label, side, MetaKind::Tuple, 0)
    }

    #[test]
    fn interning_deduplicates_terms() {
        let mut g = Graph::new();
        let a = g.intern_data("willis");
        let b = g.intern_data("willis");
        assert_eq!(a, b);
        assert_eq!(g.node_count(), 1);
    }

    #[test]
    fn edges_deduplicate_and_reject_self_loops() {
        let mut g = Graph::new();
        let a = g.intern_data("a");
        let b = g.intern_data("b");
        assert!(g.add_edge(a, b));
        assert!(!g.add_edge(a, b));
        assert!(!g.add_edge(b, a));
        assert!(!g.add_edge(a, a));
        assert_eq!(g.edge_count(), 1);
        assert!(g.has_edge(a, b) && g.has_edge(b, a));
    }

    #[test]
    fn removal_updates_counts_and_neighbors() {
        let mut g = Graph::new();
        let a = g.intern_data("a");
        let b = g.intern_data("b");
        let c = g.intern_data("c");
        g.add_edge(a, b);
        g.add_edge(b, c);
        g.remove_node(b);
        assert_eq!(g.node_count(), 2);
        assert_eq!(g.edge_count(), 0);
        assert!(g.neighbors(a).is_empty());
        assert!(g.data_node("b").is_none());
        // Removing twice is a no-op.
        g.remove_node(b);
        assert_eq!(g.node_count(), 2);
    }

    #[test]
    fn interning_revives_removed_node() {
        let mut g = Graph::new();
        let a = g.intern_data("a");
        g.remove_node(a);
        let a2 = g.intern_data("a");
        assert_eq!(a, a2);
        assert_eq!(g.node_count(), 1);
    }

    #[test]
    fn metadata_index_is_separate_from_data() {
        let mut g = Graph::new();
        let term = g.intern_data("audit");
        let m = g.add_meta("audit", CorpusSide::First, MetaKind::Taxonomy, 0);
        assert_ne!(term, m);
        assert_eq!(g.data_node("audit"), Some(term));
        assert_eq!(g.meta_node("audit"), Some(m));
    }

    #[test]
    fn metadata_queries_respect_side_and_kind() {
        let mut g = Graph::new();
        let t1 = meta(&mut g, "t1", CorpusSide::First);
        let p1 = meta(&mut g, "p1", CorpusSide::Second);
        let c1 = g.add_meta("c1", CorpusSide::First, MetaKind::Attribute, 0);
        assert_eq!(g.metadata_nodes(None).len(), 3);
        assert_eq!(g.metadata_nodes(Some(CorpusSide::First)), vec![t1, c1]);
        assert_eq!(g.matchable_nodes(CorpusSide::First), vec![t1]);
        assert_eq!(g.matchable_nodes(CorpusSide::Second), vec![p1]);
    }

    #[test]
    fn sink_removal_cascades() {
        // chain: m - a - b - c  (c is a sink; removing it makes b a sink...)
        let mut g = Graph::new();
        let m = meta(&mut g, "m", CorpusSide::First);
        let a = g.intern_data("a");
        let b = g.intern_data("b");
        let c = g.intern_data("c");
        g.add_edge(m, a);
        g.add_edge(a, b);
        g.add_edge(b, c);
        let removed = g.remove_sinks();
        // c, then b, then a all become degree-1 chains; metadata m stays.
        assert_eq!(removed, 3);
        assert_eq!(g.node_count(), 1);
        assert!(!g.is_removed(m));
    }

    #[test]
    fn sink_removal_keeps_hubs() {
        let mut g = Graph::new();
        let m1 = meta(&mut g, "m1", CorpusSide::First);
        let m2 = meta(&mut g, "m2", CorpusSide::Second);
        let hub = g.intern_data("hub");
        g.add_edge(m1, hub);
        g.add_edge(m2, hub);
        assert_eq!(g.remove_sinks(), 0);
        assert_eq!(g.node_count(), 3);
    }

    #[test]
    fn edge_membership_survives_remove_and_readd() {
        let mut g = Graph::new();
        let a = g.intern_data("a");
        let b = g.intern_data("b");
        let c = g.intern_data("c");
        g.add_edge(a, b);
        g.add_edge(b, c);
        g.remove_node(b);
        assert!(!g.has_edge(a, b));
        // Revive b and re-add one edge: the stale pair must be gone from
        // the membership set, the new one present.
        let b2 = g.intern_data("b");
        assert_eq!(b, b2);
        assert!(!g.has_edge(b, c));
        assert!(g.add_edge(b, c));
        assert!(g.has_edge(b, c));
        assert!(!g.add_edge(c, b));
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    fn sink_removal_clears_long_chain() {
        // A 500-node chain hanging off a metadata anchor: the worklist
        // must peel the whole chain in one pass.
        let mut g = Graph::new();
        let m = meta(&mut g, "m", CorpusSide::First);
        let mut prev = g.intern_data("c0");
        g.add_edge(m, prev);
        for i in 1..500 {
            let next = g.intern_data(&format!("c{i}"));
            g.add_edge(prev, next);
            prev = next;
        }
        assert_eq!(g.remove_sinks(), 500);
        assert_eq!(g.node_count(), 1);
        assert!(!g.is_removed(m));
    }

    #[test]
    fn merge_transfers_neighbors() {
        let mut g = Graph::new();
        let a = g.intern_data("bruce willis");
        let b = g.intern_data("b willis");
        let m1 = meta(&mut g, "t1", CorpusSide::First);
        let m2 = meta(&mut g, "p1", CorpusSide::Second);
        g.add_edge(a, m1);
        g.add_edge(b, m2);
        g.merge_nodes(a, b);
        assert!(g.data_node("b willis").is_none());
        assert!(g.has_edge(a, m1));
        assert!(g.has_edge(a, m2));
        assert_eq!(g.node_count(), 3);
    }

    #[test]
    fn merge_self_and_removed_are_noops() {
        let mut g = Graph::new();
        let a = g.intern_data("a");
        let b = g.intern_data("b");
        g.merge_nodes(a, a);
        assert_eq!(g.node_count(), 2);
        g.remove_node(b);
        g.merge_nodes(a, b);
        assert_eq!(g.node_count(), 1);
    }

    #[test]
    fn merge_drops_edge_between_merged_pair() {
        let mut g = Graph::new();
        let a = g.intern_data("a");
        let b = g.intern_data("b");
        g.add_edge(a, b);
        g.merge_nodes(a, b);
        assert_eq!(g.edge_count(), 0);
        assert_eq!(g.degree(a), 0);
    }

    #[test]
    fn typed_edges_report_their_kind_from_both_endpoints() {
        let mut g = Graph::new();
        let m = meta(&mut g, "t1", CorpusSide::First);
        let term = g.intern_data("willis");
        assert!(g.add_edge_typed(m, term, EdgeKind::Contains));
        assert_eq!(g.edge_kind(m, term), Some(EdgeKind::Contains));
        assert_eq!(g.edge_kind(term, m), Some(EdgeKind::Contains));
        let other = g.intern_data("pulp");
        assert_eq!(g.edge_kind(m, other), None);
    }

    #[test]
    fn duplicate_typed_edge_keeps_first_kind() {
        let mut g = Graph::new();
        let a = g.intern_data("a");
        let b = g.intern_data("b");
        assert!(g.add_edge_typed(a, b, EdgeKind::Hierarchy));
        assert!(!g.add_edge_typed(a, b, EdgeKind::External));
        assert_eq!(g.edge_kind(a, b), Some(EdgeKind::Hierarchy));
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    fn untyped_add_edge_defaults_to_generic() {
        let mut g = Graph::new();
        let a = g.intern_data("a");
        let b = g.intern_data("b");
        g.add_edge(a, b);
        assert_eq!(g.edge_kind(a, b), Some(EdgeKind::Generic));
    }

    #[test]
    fn neighbor_kinds_stay_parallel_after_removal() {
        // star: hub connects to a (Contains), b (External), c (Hierarchy);
        // removing b must leave a and c with their original kinds.
        let mut g = Graph::new();
        let hub = g.intern_data("hub");
        let a = g.intern_data("a");
        let b = g.intern_data("b");
        let c = g.intern_data("c");
        g.add_edge_typed(hub, a, EdgeKind::Contains);
        g.add_edge_typed(hub, b, EdgeKind::External);
        g.add_edge_typed(hub, c, EdgeKind::Hierarchy);
        g.remove_node(b);
        assert_eq!(g.neighbors(hub).len(), g.neighbor_kinds(hub).len());
        assert_eq!(g.edge_kind(hub, a), Some(EdgeKind::Contains));
        assert_eq!(g.edge_kind(hub, c), Some(EdgeKind::Hierarchy));
    }

    #[test]
    fn merge_preserves_edge_kinds() {
        let mut g = Graph::new();
        let keep = g.intern_data("bruce willis");
        let remove = g.intern_data("b willis");
        let m = meta(&mut g, "p1", CorpusSide::Second);
        g.add_edge_typed(remove, m, EdgeKind::Contains);
        g.merge_nodes(keep, remove);
        assert_eq!(g.edge_kind(keep, m), Some(EdgeKind::Contains));
    }

    #[test]
    fn edge_kind_histogram_counts_each_once() {
        let mut g = Graph::new();
        let a = g.intern_data("a");
        let b = g.intern_data("b");
        let c = g.intern_data("c");
        g.add_edge_typed(a, b, EdgeKind::Contains);
        g.add_edge_typed(b, c, EdgeKind::Contains);
        g.add_edge_typed(a, c, EdgeKind::External);
        let hist = g.edge_kind_histogram();
        assert_eq!(hist[EdgeKind::Contains.index()], 2);
        assert_eq!(hist[EdgeKind::External.index()], 1);
        assert_eq!(hist.iter().sum::<usize>(), g.edge_count());
        // edges_with_kinds agrees with edge_kind.
        for (x, y, kind) in g.edges_with_kinds() {
            assert_eq!(g.edge_kind(x, y), Some(kind));
        }
    }

    #[test]
    fn edge_iteration_reports_each_edge_once() {
        let mut g = Graph::new();
        let a = g.intern_data("a");
        let b = g.intern_data("b");
        let c = g.intern_data("c");
        g.add_edge(a, b);
        g.add_edge(b, c);
        g.add_edge(a, c);
        let edges: Vec<_> = g.edges().collect();
        assert_eq!(edges.len(), 3);
        assert_eq!(edges.len(), g.edge_count());
    }
}
