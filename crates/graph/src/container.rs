//! `TDZ1` — the versioned zero-copy artifact container.
//!
//! The pipeline is fit-once / match-many: graph build, walks, and
//! training happen once, while matching (and walk-restarts) happen per
//! request. Warm starts therefore want persisted state that can be
//! *mapped* back, not re-deserialized. This module provides the shared
//! on-disk container every flat structure in the workspace serializes
//! into: [`CsrGraph`](crate::CsrGraph) snapshots, `tdmatch_embed`'s
//! `ScoreMatrix`, and `tdmatch_core`'s `MatchArtifact`.
//!
//! # Layout
//!
//! The full byte-level specification lives in `docs/FORMAT.md` at the
//! repository root. In short — all integers are little-endian; section
//! payloads start at 64-byte aligned offsets from the start of the
//! container:
//!
//! ```text
//! 0..4    magic   b"TDZ1"
//! 4..8    version u32 (currently 1)
//! 8..12   section count u32
//! 12..16  header crc32 over bytes 0..12 ++ the section table
//! 16..    section table: count × 24-byte entries
//!           tag     [u8; 4]
//!           crc32   u32 over the payload bytes
//!           offset  u64 from container start, 64-byte aligned
//!           len     u64 payload bytes (unpadded)
//! …       zero padding to the first 64-byte boundary
//! …       payloads, each zero-padded to the next 64-byte boundary
//! ```
//!
//! Every byte is covered: the header CRC seals the table, per-section
//! CRCs seal the payloads, and parsing rejects non-zero padding and
//! trailing garbage — a flipped bit anywhere is an error, never silent
//! corruption.
//!
//! # Zero-copy loading and cross-process sharing
//!
//! [`Storage`] holds the whole container in one shared, reference-counted
//! buffer. Two backings exist behind the same API:
//!
//! * **heap** ([`Storage::from_bytes`] / [`Storage::read_file`]) — an
//!   8-byte-aligned private buffer ([`AlignedBytes`]), read in one pass;
//! * **mapped** ([`Storage::open`] / [`Storage::open_verified`]) — a
//!   read-only OS memory map of the file ([`crate::mmap::MmapRegion`],
//!   64-bit unix targets). Every process that opens the same snapshot
//!   shares **one** physical copy of its pages through the OS page
//!   cache; opening falls back to the heap read when mapping is
//!   unavailable (non-unix, empty file, mmap-refusing filesystem).
//!
//! Loaded structures do not copy their payloads out: they hold
//! [`FlatBuf`]s — either owned `Vec`s (freshly built state) or borrowed
//! views into the shared storage (kept alive by the storage handle, so a
//! loaded `CsrGraph` or `ScoreMatrix` is `'static`, `Send + Sync`, and
//! materializes without copying any payload). Typed views
//! ([`SectionView::as_u32s`] etc.) check alignment and element size
//! before casting; the 64-byte section alignment plus the backing
//! alignment (8-byte heap, page-aligned map) guarantee the checks pass
//! for buffers loaded through [`Storage`].
//!
//! # Lazy, per-section CRC verification
//!
//! [`Container::parse`] verifies everything up front — one linear CRC
//! pass over the whole buffer. That is the right trade for a one-shot
//! load, but wrong for serving: opening a multi-GB artifact should not
//! touch every page before the first query. [`Storage::open`] therefore
//! parses **lazily**: the header and section table are verified
//! immediately (O(sections), independent of payload bytes), while each
//! payload CRC is checked on the section's *first access* and remembered
//! in a once-per-section atomic bitmap shared by every handle cloned
//! from the same storage.
//!
//! The safety contract, precisely:
//!
//! * every accessor that **interprets** payload bytes —
//!   [`SectionView::as_pod`] and the typed views over it,
//!   [`SectionView::reader`], [`SectionView::payload`], and
//!   [`FlatBuf::from_section`] — verifies the section's CRC before
//!   returning (a no-op after the first time); corruption surfaces as
//!   [`DecodeError::Corrupt`] at that call, *not* at open;
//! * [`SectionView::bytes`] is the raw escape hatch: it returns the
//!   payload **without** triggering verification (call
//!   [`SectionView::verify`] first when it matters);
//! * verification is per *section*: bytes are checked before the first
//!   typed access hands them out, but a mapped file mutated in place
//!   *after* a section verified is outside the CRC's protection (see
//!   [`crate::mmap`] — treat published snapshots as immutable,
//!   rename-into-place on update).
//!
//! [`Storage::open_verified`] keeps the eager behaviour for mapped
//! files, and the `TDMATCH_EAGER_CRC` environment variable forces every
//! [`Storage::open`] in the process onto the eager path — an operational
//! escape hatch when a storage layer is suspected of corrupting files.
//!
//! # Example: save → map → read back
//!
//! ```
//! use tdmatch_graph::container::{ContainerWriter, Storage};
//!
//! // Write a container with one typed section…
//! let mut w = ContainerWriter::new();
//! w.add_pod(*b"DEMO", &[1u32, 2, 3]);
//! let path = std::env::temp_dir().join("tdmatch-doc-container.tdz");
//! w.write_to(&mut std::fs::File::create(&path)?)?;
//!
//! // …and map it back: O(1) in the payload size, shared page-cache
//! // pages across processes, CRC checked on first access.
//! let storage = Storage::open(&path)?;
//! let container = storage.container()?;
//! let section = container.require(*b"DEMO")?;
//! assert_eq!(section.as_u32s()?, &[1, 2, 3]);
//! # std::fs::remove_file(&path).ok();
//! # Ok::<(), tdmatch_graph::DecodeError>(())
//! ```

use std::io::{Read, Write};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::codec::{crc32, put_u32, put_u64, ByteReader, DecodeError};

// The zero-copy typed views reinterpret little-endian payload bytes
// in place; a big-endian host would read garbage.
#[cfg(target_endian = "big")]
compile_error!("the TDZ1 zero-copy container requires a little-endian host");

/// Container format version.
pub const CONTAINER_VERSION: u32 = 1;

/// Container magic bytes.
pub const CONTAINER_MAGIC: [u8; 4] = *b"TDZ1";

/// Payload alignment: every section offset is a multiple of this.
pub const SECTION_ALIGN: usize = 64;

/// Hard cap on the section count — far above any real container, small
/// enough that a hostile header cannot request a huge table allocation.
pub const MAX_SECTIONS: usize = 4096;

/// Environment variable forcing [`Storage::open`] onto the eager
/// (verify-everything-at-open) path. Any value other than `0` or the
/// empty string enables it.
pub const EAGER_CRC_ENV: &str = "TDMATCH_EAGER_CRC";

const HEADER_LEN: usize = 16;
const ENTRY_LEN: usize = 24;

/// A four-byte section identifier (FourCC-style).
pub type SectionTag = [u8; 4];

/// Element types that may be viewed zero-copy inside a section: plain
/// old data whose in-memory layout *is* the on-disk little-endian layout.
///
/// # Safety
///
/// Implementors must be `#[repr(transparent)]` over (or identical to) a
/// fixed-width little-endian-safe primitive, with no invalid bit
/// patterns.
pub unsafe trait Pod: Copy + Send + Sync + 'static {}

unsafe impl Pod for u8 {}
unsafe impl Pod for u32 {}
unsafe impl Pod for u64 {}
unsafe impl Pod for f32 {}
// NodeId is #[repr(transparent)] over u32 (see node.rs).
unsafe impl Pod for crate::node::NodeId {}

/// An 8-byte-aligned byte buffer (backed by `Vec<u64>`), so typed views
/// over 64-byte-aligned section offsets are always correctly aligned.
#[derive(Debug)]
pub struct AlignedBytes {
    words: Vec<u64>,
    len: usize,
}

impl AlignedBytes {
    /// A zeroed aligned buffer of `len` bytes.
    pub fn zeroed(len: usize) -> Self {
        Self {
            words: vec![0u64; len.div_ceil(8)],
            len,
        }
    }

    /// Copies `bytes` into a fresh aligned buffer.
    pub fn from_bytes(bytes: &[u8]) -> Self {
        let mut out = Self::zeroed(bytes.len());
        out.as_mut_slice().copy_from_slice(bytes);
        out
    }

    /// Reads a whole stream into an aligned buffer (one intermediate
    /// copy; prefer [`Storage::read_file`] for files, which reads
    /// straight into the aligned buffer, or [`Storage::open`], which
    /// maps the file without reading it at all).
    pub fn from_reader<R: Read>(r: &mut R) -> std::io::Result<Self> {
        let mut bytes = Vec::new();
        r.read_to_end(&mut bytes)?;
        Ok(Self::from_bytes(&bytes))
    }

    /// Mutable access, for filling the buffer before sharing it.
    pub fn as_mut_slice(&mut self) -> &mut [u8] {
        // Safety: the Vec<u64> allocation covers `len` bytes, and u64 →
        // u8 weakens alignment.
        unsafe { std::slice::from_raw_parts_mut(self.words.as_mut_ptr() as *mut u8, self.len) }
    }

    /// The buffer contents.
    #[inline]
    pub fn as_slice(&self) -> &[u8] {
        // Safety: the Vec<u64> allocation covers `len` initialized bytes.
        unsafe { std::slice::from_raw_parts(self.words.as_ptr() as *const u8, self.len) }
    }

    /// Buffer length in bytes.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the buffer is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

impl std::ops::Deref for AlignedBytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

/// How [`Storage`] schedules payload CRC verification.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verification {
    /// Check each section's CRC on its first access (recorded in a
    /// shared atomic bitmap); opening is O(sections), not O(bytes).
    Lazy,
    /// Check every payload CRC up front, at open / parse time — the
    /// historical behaviour of [`Storage::read_file`].
    Eager,
}

/// The bytes behind a [`Storage`]: a private heap buffer or a shared
/// read-only file mapping.
#[derive(Debug)]
enum Backing {
    Heap(AlignedBytes),
    #[cfg(all(unix, target_pointer_width = "64"))]
    Mapped(crate::mmap::MmapRegion),
}

impl Backing {
    #[inline]
    fn as_slice(&self) -> &[u8] {
        match self {
            Backing::Heap(b) => b.as_slice(),
            #[cfg(all(unix, target_pointer_width = "64"))]
            Backing::Mapped(m) => m.as_slice(),
        }
    }
}

/// Once-per-section "payload CRC already checked" bitmap, shared by
/// every [`Storage`] clone (and every structure loaded from it).
#[derive(Debug)]
pub(crate) struct LazyCrcs {
    bits: Box<[AtomicU64]>,
}

impl LazyCrcs {
    /// Sizes the bitmap from the (untrusted) header's section count.
    /// A garbage count is clamped to [`MAX_SECTIONS`]; if the count byte
    /// disagrees with what parsing later finds, out-of-range sections
    /// simply never memoize (they re-verify on every access).
    fn for_buffer(buf: &[u8]) -> Self {
        let count = if buf.len() >= 12 {
            u32::from_le_bytes(buf[8..12].try_into().unwrap()) as usize
        } else {
            0
        };
        let words = count.min(MAX_SECTIONS).div_ceil(64);
        let mut bits = Vec::with_capacity(words);
        bits.resize_with(words, || AtomicU64::new(0));
        Self {
            bits: bits.into_boxed_slice(),
        }
    }

    #[inline]
    fn is_verified(&self, index: usize) -> bool {
        self.bits
            .get(index / 64)
            .is_some_and(|w| (w.load(Ordering::Acquire) >> (index % 64)) & 1 == 1)
    }

    #[inline]
    fn mark_verified(&self, index: usize) {
        if let Some(w) = self.bits.get(index / 64) {
            w.fetch_or(1 << (index % 64), Ordering::Release);
        }
    }

    /// Marks every section verified — used after an eager open's full
    /// verifying parse, so later `container()` calls skip the payload
    /// pass instead of repeating it.
    fn mark_all(&self) {
        for w in &self.bits {
            w.store(u64::MAX, Ordering::Release);
        }
    }
}

#[derive(Debug)]
struct StorageInner {
    backing: Backing,
    /// `Some` ⇔ payload CRC state is tracked per section in this shared
    /// bitmap (unset bits are checked by [`SectionGuard`] on access)
    /// rather than re-checked on every [`Storage::container`] parse.
    crcs: Option<LazyCrcs>,
    /// True ⇔ verification is deferred to first access (as opposed to
    /// having been completed at open).
    lazy: bool,
}

/// Reference-counted container storage: one shared buffer (heap or
/// memory-mapped) behind every structure loaded from it. Cloning is an
/// `Arc` bump; the lazy-verification bitmap is part of the shared state,
/// so a section verified through one handle stays verified for all.
///
/// | constructor | backing | verification |
/// |---|---|---|
/// | [`from_bytes`](Storage::from_bytes) | heap copy | eager (at [`container`](Storage::container)) |
/// | [`read_file`](Storage::read_file) | heap read | eager (at [`container`](Storage::container)) |
/// | [`open`](Storage::open) | mmap, heap fallback | lazy (or eager via `TDMATCH_EAGER_CRC`) |
/// | [`open_verified`](Storage::open_verified) | mmap, heap fallback | eager, checked at open |
///
/// See the [module docs](self) for the lazy-CRC safety contract.
#[derive(Debug, Clone)]
pub struct Storage {
    inner: Arc<StorageInner>,
}

impl Storage {
    /// Wraps a byte slice (copied once into aligned heap storage);
    /// verification stays eager, as with [`read_file`](Storage::read_file).
    pub fn from_bytes(bytes: &[u8]) -> Self {
        Self {
            inner: Arc::new(StorageInner {
                backing: Backing::Heap(AlignedBytes::from_bytes(bytes)),
                crcs: None,
                lazy: false,
            }),
        }
    }

    /// Reads a container file into a private heap buffer — straight into
    /// the aligned buffer (sized from file metadata), with no
    /// intermediate copy. Verification stays eager. Prefer
    /// [`open`](Storage::open) for serving: it shares one physical copy
    /// across processes and defers payload CRCs.
    pub fn read_file<P: AsRef<Path>>(path: P) -> std::io::Result<Self> {
        let mut f = std::fs::File::open(path)?;
        let len = usize::try_from(f.metadata()?.len())
            .map_err(|_| std::io::Error::other("file too large for memory"))?;
        let mut bytes = AlignedBytes::zeroed(len);
        f.read_exact(bytes.as_mut_slice())?;
        Ok(Self {
            inner: Arc::new(StorageInner {
                backing: Backing::Heap(bytes),
                crcs: None,
                lazy: false,
            }),
        })
    }

    /// Opens a container file for serving: memory-mapped read-only where
    /// the platform supports it (64-bit unix; heap read elsewhere or
    /// when mapping fails), with **lazy** per-section CRC verification —
    /// opening is O(sections), independent of payload size, and N
    /// processes opening the same file share one physical copy of its
    /// pages.
    ///
    /// Setting the `TDMATCH_EAGER_CRC` environment variable (to anything
    /// but `0` or the empty string) forces the eager path,
    /// [`open_verified`](Storage::open_verified).
    pub fn open<P: AsRef<Path>>(path: P) -> Result<Self, DecodeError> {
        let eager = std::env::var(EAGER_CRC_ENV).is_ok_and(|v| !v.is_empty() && v != "0");
        Self::open_with(path, if eager { Verification::Eager } else { Verification::Lazy })
    }

    /// Opens a container file (mapped where possible, like
    /// [`open`](Storage::open)) and verifies **every** payload CRC before
    /// returning. The whole file is touched — O(bytes) — so corruption
    /// anywhere fails here rather than at first access.
    pub fn open_verified<P: AsRef<Path>>(path: P) -> Result<Self, DecodeError> {
        Self::open_with(path, Verification::Eager)
    }

    /// Opens a container file with an explicit [`Verification`] mode —
    /// the env-independent form of [`open`](Storage::open) /
    /// [`open_verified`](Storage::open_verified).
    pub fn open_with<P: AsRef<Path>>(
        path: P,
        mode: Verification,
    ) -> Result<Self, DecodeError> {
        let backing = Self::open_backing(path.as_ref())?;
        let (crcs, lazy) = match mode {
            Verification::Lazy => (Some(LazyCrcs::for_buffer(backing.as_slice())), true),
            Verification::Eager if backing.as_slice().starts_with(&CONTAINER_MAGIC) => {
                // Fail fast: one full verifying parse up front, memoized
                // in a fully-marked bitmap so later `container()` calls
                // (and section accesses) never repeat the payload pass.
                Container::parse(backing.as_slice())?;
                let crcs = LazyCrcs::for_buffer(backing.as_slice());
                crcs.mark_all();
                (Some(crcs), false)
            }
            // Non-TDZ1 bytes (e.g. a legacy TDM1 stream loaded through
            // the same storage) are the caller's to validate.
            Verification::Eager => (None, false),
        };
        Ok(Self {
            inner: Arc::new(StorageInner { backing, crcs, lazy }),
        })
    }

    /// Maps the file if the platform allows, else reads it onto the heap.
    fn open_backing(path: &Path) -> std::io::Result<Backing> {
        #[cfg(all(unix, target_pointer_width = "64"))]
        if let Ok(f) = std::fs::File::open(path) {
            if let Ok(region) = crate::mmap::MmapRegion::map_file(&f) {
                return Ok(Backing::Mapped(region));
            }
        }
        // Fallback: empty files, mmap-refusing filesystems, non-unix
        // targets — and genuine open errors, which surface here.
        let storage = Self::read_file(path)?;
        let inner = Arc::try_unwrap(storage.inner).expect("freshly built storage is unshared");
        Ok(inner.backing)
    }

    /// True when the storage is an OS memory mapping (shared page-cache
    /// pages) rather than a private heap buffer.
    pub fn is_mapped(&self) -> bool {
        #[cfg(all(unix, target_pointer_width = "64"))]
        {
            matches!(self.inner.backing, Backing::Mapped(_))
        }
        #[cfg(not(all(unix, target_pointer_width = "64")))]
        {
            false
        }
    }

    /// True when payload CRCs are verified lazily, on first section
    /// access (see the [module docs](self) for the exact contract).
    /// False for eagerly-opened storage, whose payloads were all
    /// verified at open.
    pub fn lazy_verification(&self) -> bool {
        self.inner.lazy
    }

    /// The raw container bytes.
    #[inline]
    pub fn as_bytes(&self) -> &[u8] {
        self.inner.backing.as_slice()
    }

    /// Parses the container held in this storage. Heap storage from
    /// [`from_bytes`](Storage::from_bytes) /
    /// [`read_file`](Storage::read_file) gets a full checksum pass;
    /// storage from [`open`](Storage::open) /
    /// [`open_verified`](Storage::open_verified) gets the O(sections)
    /// structural parse, with payload CRCs tracked in the shared
    /// bitmap — deferred to first access for lazy opens, already marked
    /// done for eager ones.
    pub fn container(&self) -> Result<Container<'_>, DecodeError> {
        Container::parse_inner(self.as_bytes(), self.inner.crcs.as_ref())
    }

    /// True when `slice` lies inside this storage's buffer.
    fn contains(&self, slice: &[u8]) -> bool {
        let base = self.as_bytes().as_ptr() as usize;
        let ptr = slice.as_ptr() as usize;
        ptr >= base && ptr + slice.len() <= base + self.as_bytes().len()
    }
}

/// Verify-on-first-access handle for one lazily-checked section: the
/// shared atomic bitmap plus the section's table CRC. Copied into every
/// [`SectionView`] handed out by a lazily-parsed [`Container`].
#[derive(Debug, Clone, Copy)]
pub struct SectionGuard<'a> {
    crcs: &'a LazyCrcs,
    index: usize,
    crc: u32,
}

impl SectionGuard<'_> {
    /// Checks `payload`'s CRC unless this section already verified;
    /// memoizes success in the shared bitmap.
    fn ensure(&self, payload: &[u8]) -> Result<(), DecodeError> {
        if self.crcs.is_verified(self.index) {
            return Ok(());
        }
        if crc32(payload) != self.crc {
            return Err(DecodeError::Corrupt);
        }
        self.crcs.mark_verified(self.index);
        Ok(())
    }
}

/// One parsed section: a borrowed payload, CRC-verified either at parse
/// time (eager) or on first interpreting access (lazy; see the
/// [module docs](self)).
#[derive(Debug, Clone, Copy)]
pub struct SectionView<'a> {
    tag: SectionTag,
    bytes: &'a [u8],
    guard: Option<SectionGuard<'a>>,
}

impl<'a> SectionView<'a> {
    /// The section's tag.
    #[inline]
    pub fn tag(&self) -> SectionTag {
        self.tag
    }

    /// The raw payload, **without** triggering lazy verification — the
    /// escape hatch for code that wants the bytes regardless (tooling,
    /// forwarding). Call [`verify`](SectionView::verify) first, or use
    /// [`payload`](SectionView::payload), when integrity matters.
    #[inline]
    pub fn bytes(&self) -> &'a [u8] {
        self.bytes
    }

    /// Ensures this section's payload CRC has been checked (a no-op for
    /// eagerly-parsed containers and on every access after the first).
    pub fn verify(&self) -> Result<(), DecodeError> {
        match &self.guard {
            Some(g) => g.ensure(self.bytes),
            None => Ok(()),
        }
    }

    /// The verified payload.
    pub fn payload(&self) -> Result<&'a [u8], DecodeError> {
        self.verify()?;
        Ok(self.bytes)
    }

    /// Payload length in bytes.
    #[inline]
    pub fn len(&self) -> usize {
        self.bytes.len()
    }

    /// True when the payload is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }

    /// A [`ByteReader`] over the verified payload, for variable-length
    /// encodings (length-prefixed labels etc.).
    pub fn reader(&self) -> Result<ByteReader<'a>, DecodeError> {
        self.verify()?;
        Ok(ByteReader::new(self.bytes, 0))
    }

    /// Zero-copy typed view over the verified payload. Errors when the
    /// payload length is not a multiple of the element size, the base
    /// pointer is misaligned (can only happen for buffers not loaded
    /// through [`Storage`]), or lazy verification finds a corrupt
    /// payload.
    pub fn as_pod<T: Pod>(&self) -> Result<&'a [T], DecodeError> {
        self.verify()?;
        let size = std::mem::size_of::<T>();
        if size == 0 || !self.bytes.len().is_multiple_of(size) {
            return Err(DecodeError::Invalid("section length not a multiple of element size"));
        }
        if !(self.bytes.as_ptr() as usize).is_multiple_of(std::mem::align_of::<T>()) {
            return Err(DecodeError::Invalid("misaligned section payload"));
        }
        // Safety: length and alignment checked; T is Pod (no invalid bit
        // patterns, LE layout asserted at compile time for this module).
        Ok(unsafe {
            std::slice::from_raw_parts(self.bytes.as_ptr() as *const T, self.bytes.len() / size)
        })
    }

    /// Typed view as `&[u32]`.
    pub fn as_u32s(&self) -> Result<&'a [u32], DecodeError> {
        self.as_pod()
    }

    /// Typed view as `&[u64]`.
    pub fn as_u64s(&self) -> Result<&'a [u64], DecodeError> {
        self.as_pod()
    }

    /// Typed view as `&[f32]`.
    pub fn as_f32s(&self) -> Result<&'a [f32], DecodeError> {
        self.as_pod()
    }
}

/// Table-entry metadata for one parsed section.
#[derive(Debug, Clone, Copy)]
struct SectionMeta {
    tag: SectionTag,
    offset: usize,
    len: usize,
    crc: u32,
}

/// A parsed `TDZ1` container: the section table over a borrowed buffer.
///
/// [`parse`](Container::parse) validates everything up front — magic,
/// version, header CRC, section bounds, per-section payload CRCs, zero
/// padding, and exact total length — so section access is infallible
/// afterwards. Containers obtained from a lazily-verified [`Storage`]
/// (via [`Storage::container`]) defer the payload CRCs to each section's
/// first access instead; see the [module docs](self).
#[derive(Debug)]
pub struct Container<'a> {
    buf: &'a [u8],
    sections: Vec<SectionMeta>,
    lazy: Option<&'a LazyCrcs>,
}

impl<'a> Container<'a> {
    /// Parses and fully verifies a container (every payload CRC checked
    /// here, in one linear pass).
    pub fn parse(buf: &'a [u8]) -> Result<Self, DecodeError> {
        Self::parse_inner(buf, None)
    }

    /// Structural parse; `lazy = Some` defers payload CRCs to first
    /// section access (guarded by the shared bitmap), `None` checks them
    /// all here.
    fn parse_inner(buf: &'a [u8], lazy: Option<&'a LazyCrcs>) -> Result<Self, DecodeError> {
        if buf.len() < HEADER_LEN || buf[..4] != CONTAINER_MAGIC {
            return Err(DecodeError::BadMagic);
        }
        let mut r = ByteReader::new(buf, 4);
        let version = r.u32()?;
        if version != CONTAINER_VERSION {
            return Err(DecodeError::UnsupportedVersion { found: version });
        }
        let count = r.u32()? as usize;
        if count > MAX_SECTIONS {
            return Err(DecodeError::Invalid("implausible section count"));
        }
        let stored_header_crc = r.u32()?;
        let table_end = HEADER_LEN
            .checked_add(count.checked_mul(ENTRY_LEN).ok_or(DecodeError::Corrupt)?)
            .ok_or(DecodeError::Corrupt)?;
        if table_end > buf.len() {
            return Err(DecodeError::Corrupt);
        }
        let mut header_crc_input = Vec::with_capacity(table_end - 4);
        header_crc_input.extend_from_slice(&buf[..12]);
        header_crc_input.extend_from_slice(&buf[HEADER_LEN..table_end]);
        if crc32(&header_crc_input) != stored_header_crc {
            return Err(DecodeError::Corrupt);
        }

        let mut sections = Vec::with_capacity(count);
        let mut expected_offset = align_up(table_end);
        for _ in 0..count {
            let mut tag = [0u8; 4];
            tag.copy_from_slice(r.bytes(4)?);
            let stored_crc = r.u32()?;
            let offset = r.u64()? as usize;
            let len = r.u64()? as usize;
            // Sections must be laid out exactly the way the writer emits
            // them: in table order, each at the next aligned offset. This
            // leaves no slack bytes for corruption to hide in.
            if offset != expected_offset {
                return Err(DecodeError::Invalid("section offset out of order or misaligned"));
            }
            let end = offset.checked_add(len).ok_or(DecodeError::Corrupt)?;
            if end > buf.len() {
                return Err(DecodeError::Corrupt);
            }
            if lazy.is_none() && crc32(&buf[offset..end]) != stored_crc {
                return Err(DecodeError::Corrupt);
            }
            sections.push(SectionMeta {
                tag,
                offset,
                len,
                crc: stored_crc,
            });
            expected_offset = align_up(end);
        }

        // The container ends exactly at the last section's aligned end
        // (or the aligned table end when empty): no trailing bytes. The
        // padding zones are each < SECTION_ALIGN bytes, so checking them
        // stays O(sections) on the lazy path too.
        let content_end = sections.last().map_or(table_end, |m| m.offset + m.len);
        if buf.len() != align_up(content_end) {
            return Err(DecodeError::Corrupt);
        }
        let mut prev_end = table_end;
        for m in &sections {
            if buf[prev_end..m.offset].iter().any(|&b| b != 0) {
                return Err(DecodeError::Corrupt);
            }
            prev_end = m.offset + m.len;
        }
        if buf[prev_end..].iter().any(|&b| b != 0) {
            return Err(DecodeError::Corrupt);
        }

        Ok(Self {
            buf,
            sections,
            lazy,
        })
    }

    /// Number of sections.
    pub fn section_count(&self) -> usize {
        self.sections.len()
    }

    /// All section tags, in table order.
    pub fn tags(&self) -> impl Iterator<Item = SectionTag> + '_ {
        self.sections.iter().map(|m| m.tag)
    }

    /// The first section with `tag`, if present. The view's payload is
    /// CRC-verified lazily, at its first interpreting access (eager
    /// containers verified everything at parse already).
    pub fn section(&self, tag: SectionTag) -> Option<SectionView<'a>> {
        self.sections
            .iter()
            .enumerate()
            .find(|(_, m)| m.tag == tag)
            .map(|(index, m)| SectionView {
                tag: m.tag,
                bytes: &self.buf[m.offset..m.offset + m.len],
                guard: self.lazy.map(|crcs| SectionGuard {
                    crcs,
                    index,
                    crc: m.crc,
                }),
            })
    }

    /// The first section with `tag`, or a decode error naming it absent.
    pub fn require(&self, tag: SectionTag) -> Result<SectionView<'a>, DecodeError> {
        self.section(tag)
            .ok_or(DecodeError::Invalid("missing container section"))
    }
}

#[inline]
fn align_up(n: usize) -> usize {
    n.div_ceil(SECTION_ALIGN) * SECTION_ALIGN
}

/// Accumulates sections, then emits one checksummed `TDZ1` byte stream.
///
/// POD payloads added via [`add_pod`](ContainerWriter::add_pod) are
/// *borrowed* (`Cow`), and [`write_to`](ContainerWriter::write_to)
/// streams header, table, and payloads directly to the writer — saving a
/// structure never buffers a second copy of its large arrays.
///
/// ```
/// use tdmatch_graph::container::{Container, ContainerWriter};
///
/// let big = vec![0.5f32; 1024];
/// let mut w = ContainerWriter::new();
/// w.add_pod(*b"ROWS", &big); // borrowed, not copied
/// w.add(*b"NOTE", b"freeform bytes".to_vec());
/// let bytes = w.finish();
/// let parsed = Container::parse(&bytes)?;
/// assert_eq!(parsed.require(*b"ROWS")?.as_f32s()?.len(), 1024);
/// # Ok::<(), tdmatch_graph::DecodeError>(())
/// ```
#[derive(Debug, Default)]
pub struct ContainerWriter<'a> {
    sections: Vec<(SectionTag, std::borrow::Cow<'a, [u8]>)>,
}

impl<'a> ContainerWriter<'a> {
    /// An empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a section with raw payload bytes (owned or borrowed).
    pub fn add(&mut self, tag: SectionTag, bytes: impl Into<std::borrow::Cow<'a, [u8]>>) {
        assert!(
            self.sections.len() < MAX_SECTIONS,
            "container section count exceeds MAX_SECTIONS"
        );
        self.sections.push((tag, bytes.into()));
    }

    /// Appends a section whose payload is a borrowed POD slice
    /// (little-endian, matching the zero-copy read layout).
    pub fn add_pod<T: Pod>(&mut self, tag: SectionTag, values: &'a [T]) {
        // Safety: T is Pod; this module is compile-gated to LE hosts, so
        // the in-memory bytes are the on-disk layout.
        let bytes: &'a [u8] = unsafe {
            std::slice::from_raw_parts(
                values.as_ptr() as *const u8,
                std::mem::size_of_val(values),
            )
        };
        self.add(tag, bytes);
    }

    /// Assembles the container in memory.
    pub fn finish(self) -> Vec<u8> {
        let mut out = Vec::new();
        self.write_to(&mut out).expect("Vec write cannot fail");
        out
    }

    /// Streams the container to `w`: header + table first, then each
    /// payload followed by its zero padding — no assembled copy.
    pub fn write_to<W: Write>(self, w: &mut W) -> Result<(), DecodeError> {
        let table_end = HEADER_LEN + self.sections.len() * ENTRY_LEN;
        let mut head = [0u8; 12];
        head[..4].copy_from_slice(&CONTAINER_MAGIC);
        head[4..8].copy_from_slice(&CONTAINER_VERSION.to_le_bytes());
        head[8..12].copy_from_slice(&(self.sections.len() as u32).to_le_bytes());

        let mut table: Vec<u8> = Vec::with_capacity(table_end - HEADER_LEN);
        let mut offset = align_up(table_end);
        for (tag, bytes) in &self.sections {
            table.extend_from_slice(tag);
            put_u32(&mut table, crc32(bytes));
            put_u64(&mut table, offset as u64);
            put_u64(&mut table, bytes.len() as u64);
            offset = align_up(offset + bytes.len());
        }
        let mut header_crc_input = Vec::with_capacity(12 + table.len());
        header_crc_input.extend_from_slice(&head);
        header_crc_input.extend_from_slice(&table);
        let header_crc = crc32(&header_crc_input);

        const ZEROS: [u8; SECTION_ALIGN] = [0u8; SECTION_ALIGN];
        w.write_all(&head)?;
        w.write_all(&header_crc.to_le_bytes())?;
        w.write_all(&table)?;
        let mut pos = table_end;
        for (_, bytes) in &self.sections {
            w.write_all(&ZEROS[..align_up(pos) - pos])?;
            w.write_all(bytes)?;
            pos = align_up(pos) + bytes.len();
        }
        w.write_all(&ZEROS[..align_up(pos) - pos])?;
        Ok(())
    }
}

/// Copies a POD slice into owned little-endian payload bytes — for
/// sections built from temporaries (small headers), where borrowing into
/// the writer is not possible.
pub fn pod_bytes<T: Pod>(values: &[T]) -> Vec<u8> {
    // Safety: T is Pod; LE host asserted at compile time above.
    unsafe {
        std::slice::from_raw_parts(values.as_ptr() as *const u8, std::mem::size_of_val(values))
    }
    .to_vec()
}

/// A flat typed buffer that is either owned (freshly built) or a
/// zero-copy view into shared container [`Storage`].
///
/// Dereferences to `&[T]` either way, so data structures keep one field
/// type for both lifecycles. The shared variant keeps the storage alive
/// (heap buffer or file mapping — the map is not unmapped until the last
/// `FlatBuf` into it drops), making loaded structures `'static`.
///
/// ```
/// use tdmatch_graph::container::{ContainerWriter, FlatBuf, Storage};
///
/// let mut w = ContainerWriter::new();
/// w.add_pod(*b"DATA", &[1u32, 2, 3]);
/// let storage = Storage::from_bytes(&w.finish());
/// let container = storage.container()?;
/// let mut buf = FlatBuf::<u32>::from_section(&storage, container.require(*b"DATA")?)?;
/// assert!(buf.is_shared());          // borrowed view, no copy
/// assert_eq!(&*buf, &[1, 2, 3]);
/// buf.make_mut()[0] = 9;             // copy-on-write detaches it
/// assert!(!buf.is_shared());
/// # Ok::<(), tdmatch_graph::DecodeError>(())
/// ```
pub struct FlatBuf<T> {
    repr: Repr<T>,
}

enum Repr<T> {
    Owned(Vec<T>),
    Shared {
        _storage: Storage,
        ptr: *const T,
        len: usize,
    },
}

// Safety: the shared variant is an immutable view into a storage-kept
// buffer; it is exactly as thread-safe as `&[T]`.
unsafe impl<T: Send + Sync> Send for FlatBuf<T> {}
unsafe impl<T: Send + Sync> Sync for FlatBuf<T> {}

impl<T> FlatBuf<T> {
    /// An empty owned buffer.
    pub fn new() -> Self {
        Vec::new().into()
    }

    /// True when this buffer borrows shared container storage.
    pub fn is_shared(&self) -> bool {
        matches!(self.repr, Repr::Shared { .. })
    }

    /// The elements.
    #[inline]
    pub fn as_slice(&self) -> &[T] {
        match &self.repr {
            Repr::Owned(v) => v,
            // Safety: ptr/len were validated against the storage buffer
            // at construction and the storage handle keeps it alive.
            Repr::Shared { ptr, len, .. } => unsafe { std::slice::from_raw_parts(*ptr, *len) },
        }
    }

    /// Wraps raw parts pointing into `storage`.
    ///
    /// # Safety
    ///
    /// `ptr..ptr+len` must be a valid, aligned `[T]` inside `storage`'s
    /// buffer, and every bit pattern in it must be a valid `T`.
    pub(crate) unsafe fn from_raw_shared(storage: Storage, ptr: *const T, len: usize) -> Self {
        Self {
            repr: Repr::Shared {
                _storage: storage,
                ptr,
                len,
            },
        }
    }
}

impl<T: Pod> FlatBuf<T> {
    /// A zero-copy view of `view`'s payload, kept alive by `storage`.
    /// `view` must have been obtained from `storage.container()`. The
    /// section is CRC-verified here if the storage is lazily verified
    /// (see the [module docs](self)).
    pub fn from_section(storage: &Storage, view: SectionView<'_>) -> Result<Self, DecodeError> {
        if !storage.contains(view.bytes()) {
            return Err(DecodeError::Invalid("section view does not belong to this storage"));
        }
        let typed = view.as_pod::<T>()?;
        // Safety: as_pod checked alignment/size (and the payload CRC);
        // containment checked above; the storage clone keeps the buffer
        // alive.
        Ok(unsafe { Self::from_raw_shared(storage.clone(), typed.as_ptr(), typed.len()) })
    }
}

impl<T: Clone> FlatBuf<T> {
    /// Mutable access; a shared buffer is first copied out into an owned
    /// `Vec` (copy-on-write).
    pub fn make_mut(&mut self) -> &mut Vec<T> {
        if let Repr::Shared { .. } = self.repr {
            self.repr = Repr::Owned(self.as_slice().to_vec());
        }
        match &mut self.repr {
            Repr::Owned(v) => v,
            Repr::Shared { .. } => unreachable!(),
        }
    }

    /// Converts to the owned representation (no-op when already owned).
    pub fn into_owned(mut self) -> Self {
        self.make_mut();
        self
    }
}

impl<T> Default for FlatBuf<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> From<Vec<T>> for FlatBuf<T> {
    fn from(v: Vec<T>) -> Self {
        Self {
            repr: Repr::Owned(v),
        }
    }
}

impl<T> std::ops::Deref for FlatBuf<T> {
    type Target = [T];
    #[inline]
    fn deref(&self) -> &[T] {
        self.as_slice()
    }
}

impl<T: Clone> Clone for FlatBuf<T> {
    fn clone(&self) -> Self {
        match &self.repr {
            Repr::Owned(v) => v.clone().into(),
            Repr::Shared {
                _storage,
                ptr,
                len,
            } => Self {
                repr: Repr::Shared {
                    _storage: _storage.clone(),
                    ptr: *ptr,
                    len: *len,
                },
            },
        }
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for FlatBuf<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_list().entries(self.as_slice().iter()).finish()
    }
}

impl<T: PartialEq> PartialEq for FlatBuf<T> {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tag(s: &[u8; 4]) -> SectionTag {
        *s
    }

    #[test]
    fn empty_container_roundtrips() {
        let bytes = ContainerWriter::new().finish();
        assert_eq!(bytes.len(), SECTION_ALIGN);
        let c = Container::parse(&bytes).unwrap();
        assert_eq!(c.section_count(), 0);
        assert!(c.section(tag(b"NONE")).is_none());
        assert!(matches!(
            c.require(tag(b"NONE")),
            Err(DecodeError::Invalid(_))
        ));
    }

    #[test]
    fn sections_are_aligned_and_typed_views_work() {
        let mut w = ContainerWriter::new();
        w.add_pod(tag(b"U32S"), &[1u32, 2, 3]);
        w.add_pod(tag(b"F32S"), &[0.5f32, -1.5]);
        w.add_pod(tag(b"U64S"), &[u64::MAX]);
        w.add(tag(b"RAWB"), vec![9, 8, 7]);
        let bytes = w.finish();
        let storage = Storage::from_bytes(&bytes);
        let c = storage.container().unwrap();
        assert_eq!(c.section_count(), 4);
        for t in c.tags() {
            let view = c.section(t).unwrap();
            let base = storage.as_bytes().as_ptr() as usize;
            let off = view.bytes().as_ptr() as usize - base;
            assert_eq!(off % SECTION_ALIGN, 0, "section {t:?} misaligned");
        }
        assert_eq!(c.section(tag(b"U32S")).unwrap().as_u32s().unwrap(), &[1, 2, 3]);
        assert_eq!(c.section(tag(b"F32S")).unwrap().as_f32s().unwrap(), &[0.5, -1.5]);
        assert_eq!(c.section(tag(b"U64S")).unwrap().as_u64s().unwrap(), &[u64::MAX]);
        assert_eq!(c.section(tag(b"RAWB")).unwrap().bytes(), &[9, 8, 7]);
        assert_eq!(c.section(tag(b"RAWB")).unwrap().payload().unwrap(), &[9, 8, 7]);
        // Wrong element size is rejected.
        assert!(c.section(tag(b"RAWB")).unwrap().as_u32s().is_err());
    }

    #[test]
    fn every_bit_flip_is_detected() {
        let mut w = ContainerWriter::new();
        w.add_pod(tag(b"AAAA"), &[7u32, 11, 13]);
        w.add(tag(b"BBBB"), vec![1, 2, 3, 4, 5]);
        let clean = w.finish();
        assert!(Container::parse(&clean).is_ok());
        for pos in 0..clean.len() {
            let mut bad = clean.clone();
            bad[pos] ^= 0x20;
            assert!(
                Container::parse(&bad).is_err(),
                "bit flip at byte {pos} parsed silently"
            );
        }
    }

    #[test]
    fn truncation_and_trailing_garbage_are_detected() {
        let mut w = ContainerWriter::new();
        w.add_pod(tag(b"AAAA"), &[1u32, 2]);
        let clean = w.finish();
        for cut in [0, 3, 15, 16, 40, clean.len() - 1] {
            assert!(Container::parse(&clean[..cut]).is_err(), "truncation {cut}");
        }
        let mut long = clean.clone();
        long.extend_from_slice(&[0u8; 64]);
        assert!(Container::parse(&long).is_err(), "trailing garbage accepted");
    }

    #[test]
    fn unsupported_version_is_reported() {
        let mut bytes = ContainerWriter::new().finish();
        bytes[4..8].copy_from_slice(&9u32.to_le_bytes());
        assert!(matches!(
            Container::parse(&bytes),
            Err(DecodeError::UnsupportedVersion { found: 9 })
        ));
    }

    #[test]
    fn flatbuf_shared_views_and_cow() {
        let mut w = ContainerWriter::new();
        w.add_pod(tag(b"DATA"), &[1.0f32, 2.0, 3.0]);
        let storage = Storage::from_bytes(&w.finish());
        let c = storage.container().unwrap();
        let view = c.section(tag(b"DATA")).unwrap();
        let mut buf: FlatBuf<f32> = FlatBuf::from_section(&storage, view).unwrap();
        assert!(buf.is_shared());
        assert_eq!(&*buf, &[1.0, 2.0, 3.0]);
        let cloned = buf.clone();
        assert!(cloned.is_shared());
        buf.make_mut()[0] = 9.0;
        assert!(!buf.is_shared());
        assert_eq!(&*buf, &[9.0, 2.0, 3.0]);
        assert_eq!(&*cloned, &[1.0, 2.0, 3.0]); // untouched view
        // Foreign views are rejected.
        let other = Storage::from_bytes(storage.as_bytes());
        assert!(FlatBuf::<f32>::from_section(&other, view).is_err());
    }

    #[test]
    fn storage_loads_from_reader_and_file() {
        let mut w = ContainerWriter::new();
        w.add_pod(tag(b"DATA"), &[42u64]);
        let bytes = w.finish();
        let path = std::env::temp_dir().join("tdmatch-container-test.tdz");
        std::fs::write(&path, &bytes).unwrap();
        let storage = Storage::read_file(&path).unwrap();
        assert!(!storage.is_mapped());
        assert!(!storage.lazy_verification());
        let c = storage.container().unwrap();
        assert_eq!(c.section(tag(b"DATA")).unwrap().as_u64s().unwrap(), &[42]);
        std::fs::remove_file(&path).ok();
    }

    fn write_temp(name: &str, bytes: &[u8]) -> std::path::PathBuf {
        let path = std::env::temp_dir().join(name);
        std::fs::write(&path, bytes).unwrap();
        path
    }

    #[test]
    fn open_maps_and_defers_payload_crcs() {
        let mut w = ContainerWriter::new();
        w.add_pod(tag(b"GOOD"), &[1u32, 2, 3]);
        w.add_pod(tag(b"ALSO"), &[4u64]);
        let path = write_temp("tdmatch-container-open.tdz", &w.finish());
        let storage = Storage::open_with(&path, Verification::Lazy).unwrap();
        assert!(storage.lazy_verification());
        #[cfg(all(unix, target_pointer_width = "64"))]
        assert!(storage.is_mapped());
        let c = storage.container().unwrap();
        assert_eq!(c.section(tag(b"GOOD")).unwrap().as_u32s().unwrap(), &[1, 2, 3]);
        assert_eq!(c.section(tag(b"ALSO")).unwrap().as_u64s().unwrap(), &[4]);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn lazy_open_detects_corruption_on_first_access_not_open() {
        let mut w = ContainerWriter::new();
        w.add_pod(tag(b"GOOD"), &[1u32, 2, 3]);
        w.add_pod(tag(b"EVIL"), &[7u32; 64]);
        let mut bytes = w.finish();
        // Corrupt one payload byte inside EVIL (the second section).
        let c = Container::parse(&bytes).unwrap();
        let base = bytes.as_ptr() as usize;
        let evil_off = c.section(tag(b"EVIL")).unwrap().bytes().as_ptr() as usize - base;
        drop(c);
        bytes[evil_off + 5] ^= 0xFF;

        let path = write_temp("tdmatch-container-lazy-corrupt.tdz", &bytes);
        // Eager open refuses the file outright…
        assert!(Storage::open_verified(&path).is_err());
        // …while the lazy open succeeds (header + table are intact)…
        let storage = Storage::open_with(&path, Verification::Lazy).unwrap();
        let container = storage.container().unwrap();
        // …the clean section serves…
        assert_eq!(
            container.require(tag(b"GOOD")).unwrap().as_u32s().unwrap(),
            &[1, 2, 3]
        );
        // …and the corrupt one fails at first (and every later) access,
        // through every interpreting accessor.
        let evil = container.require(tag(b"EVIL")).unwrap();
        assert!(matches!(evil.as_u32s(), Err(DecodeError::Corrupt)));
        assert!(matches!(evil.verify(), Err(DecodeError::Corrupt)));
        assert!(matches!(evil.payload(), Err(DecodeError::Corrupt)));
        assert!(matches!(evil.reader(), Err(DecodeError::Corrupt)));
        assert!(FlatBuf::<u32>::from_section(&storage, evil).is_err());
        // The raw escape hatch stays raw.
        assert_eq!(evil.bytes().len(), 256);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn lazy_verification_memoizes_per_section() {
        let mut w = ContainerWriter::new();
        w.add_pod(tag(b"DATA"), &[9u32; 16]);
        let path = write_temp("tdmatch-container-lazy-memo.tdz", &w.finish());
        let storage = Storage::open_with(&path, Verification::Lazy).unwrap();
        // Two containers parsed from the same storage share the bitmap:
        // verification through the first is visible to the second.
        let c1 = storage.container().unwrap();
        c1.require(tag(b"DATA")).unwrap().verify().unwrap();
        let c2 = storage.container().unwrap();
        c2.require(tag(b"DATA")).unwrap().verify().unwrap();
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn mapped_and_heap_storage_are_bit_identical() {
        let mut w = ContainerWriter::new();
        w.add_pod(tag(b"U32S"), &[3u32, 1, 4, 1, 5]);
        w.add_pod(tag(b"F32S"), &[-0.0f32, f32::MIN_POSITIVE, 2.5]);
        let bytes = w.finish();
        let path = write_temp("tdmatch-container-equiv.tdz", &bytes);
        let mapped = Storage::open_with(&path, Verification::Lazy).unwrap();
        let heap = Storage::read_file(&path).unwrap();
        assert_eq!(mapped.as_bytes(), heap.as_bytes());
        assert_eq!(mapped.as_bytes(), &bytes[..]);
        let (cm, ch) = (mapped.container().unwrap(), heap.container().unwrap());
        for t in [tag(b"U32S"), tag(b"F32S")] {
            assert_eq!(
                cm.require(t).unwrap().payload().unwrap(),
                ch.require(t).unwrap().payload().unwrap()
            );
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn open_missing_file_is_io_error() {
        let err = Storage::open("/nonexistent/tdmatch/container.tdz").unwrap_err();
        assert!(matches!(err, DecodeError::Io(_)));
    }

    #[test]
    fn open_verified_accepts_clean_files_and_non_containers() {
        let mut w = ContainerWriter::new();
        w.add_pod(tag(b"DATA"), &[1u32]);
        let path = write_temp("tdmatch-container-verified.tdz", &w.finish());
        let storage = Storage::open_verified(&path).unwrap();
        assert!(!storage.lazy_verification());
        storage.container().unwrap();
        std::fs::remove_file(&path).ok();
        // Non-TDZ1 bytes (e.g. a legacy stream) open fine — magic
        // dispatch and validation are the caller's job.
        let path = write_temp("tdmatch-container-legacy.bin", b"TDM1 something else");
        assert!(Storage::open_verified(&path).is_ok());
        std::fs::remove_file(&path).ok();
    }
}
