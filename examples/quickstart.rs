//! Quickstart: match free-text reviews to relational tuples in ~30 lines.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use tdmatch::core::config::TdConfig;
use tdmatch::core::corpus::{Corpus, Table, TextCorpus};
use tdmatch::core::pipeline::TdMatch;

fn main() {
    // The paper's running example (Fig. 1): a movie table…
    let movies = Table::new(
        "movies",
        vec!["title".into(), "director".into(), "actor".into(), "genre".into()],
        vec![
            vec!["The Sixth Sense".into(), "Shyamalan".into(), "Bruce Willis".into(), "Thriller".into()],
            vec!["Pulp Fiction".into(), "Tarantino".into(), "Samuel Jackson".into(), "Drama".into()],
            vec!["Dark City".into(), "Proyas".into(), "Rufus Sewell".into(), "Mystery".into()],
        ],
    );
    // …and reviews with no identifiers.
    let reviews = TextCorpus::new(vec![
        "a tarantino movie with samuel jackson that is really a comedy".into(),
        "shyamalan directs bruce willis in a thriller with a twist".into(),
        "proyas builds a dark mystery city".into(),
    ]);

    // Fit the unsupervised pipeline: joint graph → random walks →
    // Word2Vec → cosine matching.
    let model = TdMatch::new(TdConfig::for_tests())
        .fit(&Corpus::Table(movies.clone()), &Corpus::Text(reviews.clone()))
        .expect("corpora are non-empty and share terms");

    println!("graph: {} nodes, {} edges", model.graph_size().0, model.graph_size().1);
    for result in model.match_top_k(3) {
        println!("\nreview: {:?}", reviews.docs[result.query]);
        for (rank, (tuple, score)) in result.ranked.iter().enumerate() {
            println!(
                "  #{} {:<18} (score {:.3})",
                rank + 1,
                movies.rows[*tuple][0],
                score
            );
        }
    }
}
