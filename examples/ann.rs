//! Sub-linear retrieval end to end: fit a scenario, build the persisted
//! HNSW index inside the artifact, publish it, re-open it memory-mapped,
//! and answer ANN queries with exact widened-pool rescoring — verified
//! against the exact full scan.
//!
//! ```sh
//! cargo run --release --example ann
//! ```

use tdmatch::core::pipeline::TdMatch;
use tdmatch::datasets::{imdb, Scale};
use tdmatch::embed::ann::HnswParams;

fn main() {
    // 1. Fit a small scenario and take its match artifact.
    let scenario = imdb::generate(Scale::Tiny, 42, true);
    let config = tdmatch::core::config::TdConfig {
        walks_per_node: 10,
        walk_len: 10,
        dim: 48,
        epochs: 3,
        ..scenario.config.clone()
    };
    let model = TdMatch::new(config)
        .fit(&scenario.first, &scenario.second)
        .expect("fit");
    let mut artifact = model.artifact();
    let (targets, queries) = artifact.corpus_sizes();
    println!("fitted artifact: {targets} targets, {queries} queries, dim {}", artifact.dim());

    // 2. Build the HNSW index over the target corpus and persist both.
    artifact.build_ann(&HnswParams::default());
    let index = artifact.ann().expect("index just built");
    println!(
        "index: {} rows, {} layers, {} edges (m {}, ef {})",
        index.count(),
        index.layers(),
        index.edges(),
        index.m(),
        index.ef_construction()
    );
    let dir = std::env::temp_dir().join(format!("tdmatch-ann-example-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("scratch dir");
    let path = dir.join("indexed.tdz");
    artifact.save(&path).expect("save");

    // 3. Re-open memory-mapped: the index loads zero-copy with the
    //    matrices; nothing is rebuilt.
    let mapped = tdmatch::core::artifact::MatchArtifact::load(&path).expect("mapped open");
    assert!(mapped.ann().is_some(), "index travels with the artifact");
    assert_eq!(&artifact, &mapped, "roundtrip is bit-identical");

    // 4. ANN retrieval with the pool widened to the corpus reproduces
    //    the exact scan bit for bit — the rerank uses the same kernels.
    let k = 5;
    let exact = mapped.match_top_k(k);
    let wide = mapped.match_top_k_ann(k, targets);
    assert_eq!(exact, wide, "pool ≥ corpus must equal the exact scan");

    // 5. A narrow pool trades a little recall for sub-linear retrieval.
    let narrow = mapped.match_top_k_ann(k, 32);
    let mut hits = 0usize;
    let mut total = 0usize;
    for (e, n) in exact.iter().zip(&narrow) {
        let want: std::collections::HashSet<usize> =
            e.ranked.iter().map(|&(t, _)| t).collect();
        hits += n.ranked.iter().filter(|&&(t, _)| want.contains(&t)).count();
        total += want.len();
    }
    let recall = if total == 0 { 1.0 } else { hits as f64 / total as f64 };
    println!("pool 32 recall@{k}: {recall:.3} ({hits}/{total} exact top-{k} hits)");
    assert!(recall > 0.5, "a 32-wide pool should recover most of the top-{k}");

    for result in narrow.iter().take(3) {
        let ranked: Vec<String> = result
            .ranked
            .iter()
            .map(|(t, s)| format!("{t}:{s:.3}"))
            .collect();
        println!("query {:<3} -> {}", result.query, ranked.join(" "));
    }
    std::fs::remove_dir_all(&dir).ok();
    println!("ok: indexed, published, mapped, and verified against the exact scan");
}
