//! # tdmatch-serve
//!
//! The long-lived serving layer: a batch-matching daemon over one
//! memory-mapped [`MatchArtifact`](tdmatch_core::artifact::MatchArtifact).
//!
//! The pipeline is fit-once / match-many, and PRs 3–4 made the "many"
//! side cheap to *open* (zero-copy containers, shared-mmap `Storage`
//! with ~15 µs lazy-CRC opens) — but a one-shot CLI invocation still
//! pays process startup per query, burying the open cost under
//! millisecond-scale exec costs. `tdmatch serve` amortizes startup the
//! rest of the way: the artifact is mapped **once**, and queries arrive
//! over a Unix-domain socket where a batching scheduler coalesces
//! concurrent requests into the engine's query blocks — N clients ride
//! one tiled [`batch_top_k`](tdmatch_embed::score::batch_top_k) scan
//! instead of issuing N scalar ones.
//!
//! * [`protocol`] — length-prefixed JSON frames: requests, responses,
//!   error codes (spec: `docs/SERVING.md`);
//! * [`batch`] — the coalescing queue (window / max-batch policy);
//! * [`pool`] — the fixed worker pool that scores batch shards and
//!   writes responses off the scheduler thread;
//! * [`server`] — the daemon: listeners (Unix socket, optional TCP),
//!   per-connection readers, the scheduler (Unix only);
//! * [`client`] — the synchronous client (`tdmatch query --socket`),
//!   with capped-backoff retries for retryable errors;
//! * [`signals`] — `SIGHUP` → hot-swap reload trigger (Unix only).
//!
//! Batched answers are **bit-identical** to the one-shot
//! `MatchArtifact::match_top_k` path: by-id queries are gathered
//! verbatim out of the pre-normalized query matrix, each ranking is
//! independent of its batch neighbours, and scores cross the wire as
//! exactly-widened `f64`s.
//!
//! ```
//! # #[cfg(unix)]
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! use tdmatch_core::artifact::MatchArtifact;
//! use tdmatch_core::serving::Matcher;
//! use tdmatch_serve::client::Client;
//! use tdmatch_serve::server::{ServeOptions, Server};
//!
//! // Normally `tdmatch run --save` produces the artifact; built inline
//! // here so the example is self-contained.
//! let artifact = MatchArtifact::new(
//!     2,
//!     vec![("tarantino".into(), vec![1.0, 0.0])],
//!     vec![Some(vec![1.0, 0.0]), Some(vec![0.0, 1.0])], // targets
//!     vec![Some(vec![0.9, 0.1])],                       // queries
//! );
//! let socket = std::env::temp_dir().join("tdmatch-serve-doctest.sock");
//! # std::fs::remove_file(&socket).ok();
//! let server = Server::start(Matcher::new(artifact), ServeOptions::at(&socket))?;
//!
//! let mut client = Client::connect(&socket)?;
//! let (ranked, _batch) = client.query_id(0, 1)?;
//! assert_eq!(ranked[0].0, 0); // query [0.9, 0.1] → target 0
//! client.shutdown()?;
//! server.join();
//! assert!(!socket.exists()); // the daemon unlinked its socket
//! # Ok(())
//! # }
//! # #[cfg(not(unix))]
//! # fn main() {} // the daemon is unix-only; see the cfg-gated modules
//! ```

pub mod batch;
pub mod json;
pub mod pool;
pub mod protocol;

#[cfg(unix)]
pub mod client;
#[cfg(unix)]
mod net;
#[cfg(unix)]
pub mod server;
#[cfg(unix)]
pub mod signals;

pub use batch::{BatchOptions, BatchQueue};
pub use protocol::{ErrorCode, Request, RequestBody, Response, ResponseBody, StatsSnapshot};

#[cfg(unix)]
pub use client::{Client, ClientError, RetryPolicy};
#[cfg(unix)]
pub use server::{ServeOptions, Server};
