//! Synthetic DBpedia: an entity-centric knowledge base.
//!
//! The IMDb scenario expands with DBpedia (§V), which knows facts about
//! named entities — `starringOf(Willis, Pulp Fiction)`,
//! `spouse(Shyamalan, Bhavna Vaswani)`, and hundreds of irrelevant
//! relations per popular entity (the paper counts >800 for Tarantino).
//!
//! Since the movie world itself is synthetic, the KB is built *from* the
//! generated world: the dataset generator emits `(subject, predicate,
//! object)` facts (useful ones connecting co-workers and works, plus
//! deterministic filler facts standing in for DBpedia's bulk) and
//! constructs the KB with [`SyntheticDbpedia::from_facts`].

use std::collections::HashMap;

use tdmatch_text::stem::stem;

use crate::{KnowledgeBase, Relation};

/// An entity-centric KB keyed by stemmed entity label.
#[derive(Debug, Clone, Default)]
pub struct SyntheticDbpedia {
    relations: HashMap<String, Vec<Relation>>,
    fact_count: usize,
}

impl SyntheticDbpedia {
    /// Builds the KB from `(subject, predicate, object)` triples. Subjects
    /// and objects are stemmed token-wise so they line up with graph node
    /// labels.
    pub fn from_facts<S: AsRef<str>>(facts: &[(S, S, S)]) -> Self {
        let mut kb = SyntheticDbpedia::default();
        for (s, p, o) in facts {
            kb.add_fact(s.as_ref(), p.as_ref(), o.as_ref());
        }
        kb
    }

    /// Adds one triple.
    pub fn add_fact(&mut self, subject: &str, predicate: &str, object: &str) {
        let key = stem_phrase(subject);
        let obj = stem_phrase(object);
        if key == obj || key.is_empty() || obj.is_empty() {
            return;
        }
        let rels = self.relations.entry(key).or_default();
        let rel = Relation::new(predicate, obj);
        if !rels.contains(&rel) {
            rels.push(rel);
            self.fact_count += 1;
        }
    }

    /// Total stored facts.
    pub fn fact_count(&self) -> usize {
        self.fact_count
    }
}

/// Stems every token of a (possibly multi-token) label.
pub fn stem_phrase(phrase: &str) -> String {
    phrase
        .split_whitespace()
        .map(|t| stem(&t.to_lowercase()))
        .collect::<Vec<_>>()
        .join(" ")
}

impl KnowledgeBase for SyntheticDbpedia {
    fn relations(&self, term: &str) -> Vec<Relation> {
        self.relations
            .get(term)
            .or_else(|| self.relations.get(&stem_phrase(term)))
            .cloned()
            .unwrap_or_default()
    }

    fn subject_count(&self) -> usize {
        self.relations.len()
    }

    fn name(&self) -> &str {
        "dbpedia"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_example_facts() {
        let kb = SyntheticDbpedia::from_facts(&[
            ("willis", "starringOf", "pulp fiction"),
            ("shyamalan", "spouse", "bhavna vaswani"),
            ("tarantino", "style", "comedy"),
        ]);
        let rels = kb.relations("tarantino");
        assert_eq!(rels.len(), 1);
        assert_eq!(rels[0].object, "comedi"); // stemmed
        assert_eq!(kb.fact_count(), 3);
    }

    #[test]
    fn multi_token_subjects_are_stemmed() {
        let kb = SyntheticDbpedia::from_facts(&[("Pulp Fiction", "directedBy", "tarantino")]);
        assert!(!kb.relations("pulp fiction").is_empty());
        // Already-stemmed lookup also works.
        assert!(!kb.relations(&stem_phrase("Pulp Fiction")).is_empty());
    }

    #[test]
    fn duplicate_facts_are_ignored() {
        let mut kb = SyntheticDbpedia::default();
        kb.add_fact("a", "p", "b");
        kb.add_fact("a", "p", "b");
        assert_eq!(kb.fact_count(), 1);
    }

    #[test]
    fn self_facts_rejected() {
        let mut kb = SyntheticDbpedia::default();
        kb.add_fact("willis", "sameAs", "willis");
        assert_eq!(kb.fact_count(), 0);
    }

    #[test]
    fn unknown_entity_is_empty() {
        let kb = SyntheticDbpedia::default();
        assert!(kb.relations("nobody").is_empty());
        assert_eq!(kb.subject_count(), 0);
    }
}
