//! Property tests pinning the incremental-ingest delta path to a full
//! refit:
//!
//! * for **random delta sequences** (append / update / tombstone in any
//!   interleaving), the delta-updated artifact is bit-identical — matrix
//!   bits and top-k rankings, at any thread count — to a from-scratch
//!   assembly of the same *final* corpus under the same frozen
//!   vocabulary, where the reference embedding is an independent
//!   re-implementation of the mean-of-known-terms aggregation;
//! * delta application composes: one batch and the same ops split into
//!   two batches land on identical bits;
//! * a carried ANN index stays exact at wide pools through any delta
//!   sequence (the incremental insert path never breaks the
//!   widened-pool ≡ exact-scan contract).

use proptest::prelude::*;

use tdmatch_core::artifact::MatchArtifact;
use tdmatch_core::delta::{DeltaBatch, DeltaOp};
use tdmatch_core::matcher::top_k_matches_matrix_parallel;
use tdmatch_embed::ann::HnswParams;

/// SplitMix64 — deterministic material from a proptest seed.
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn unit(state: &mut u64) -> f32 {
    (splitmix(state) >> 40) as f32 / (1u64 << 23) as f32 - 1.0
}

/// A frozen vocabulary of `v` random term vectors, labels `t0..t{v-1}`.
fn vocab(dim: usize, v: usize, state: &mut u64) -> Vec<(String, Vec<f32>)> {
    (0..v)
        .map(|i| (format!("t{i}"), (0..dim).map(|_| unit(state)).collect()))
        .collect()
}

/// A random token list: mostly vocabulary terms, ~1/6 unknown tokens,
/// sometimes empty (embeds to nothing → invalid row).
fn gen_tokens(v: usize, state: &mut u64) -> Vec<String> {
    let len = (splitmix(state) % 6) as usize;
    (0..len)
        .map(|_| {
            let r = splitmix(state);
            if r % 6 == 5 {
                format!("zz{}", r % 97) // never in the vocabulary
            } else {
                format!("t{}", r as usize % v)
            }
        })
        .collect()
}

/// Independent reference for the frozen-vocab aggregation: mean of the
/// known terms' vectors, summed in token order. Deliberately *not*
/// `MatchArtifact::embed_tokens` — the property must hold against a
/// second implementation, not against the code under test.
fn ref_embed(terms: &[(String, Vec<f32>)], dim: usize, tokens: &[String]) -> Option<Vec<f32>> {
    let mut sum = vec![0.0f32; dim];
    let mut hits = 0usize;
    for tok in tokens {
        if let Some((_, v)) = terms.iter().find(|(label, _)| label == tok) {
            for (s, x) in sum.iter_mut().zip(v) {
                *s += x;
            }
            hits += 1;
        }
    }
    (hits > 0).then(|| {
        let inv = 1.0 / hits as f32;
        sum.iter().map(|s| s * inv).collect()
    })
}

/// Rankings with scores demoted to bits, so equality is bit-exact.
fn result_bits(results: &[tdmatch_core::matcher::MatchResult]) -> Vec<(usize, Vec<(usize, u32)>)> {
    results
        .iter()
        .map(|r| {
            (
                r.query,
                r.ranked.iter().map(|&(t, s)| (t, s.to_bits())).collect(),
            )
        })
        .collect()
}

/// One random op, applied in parallel to the batch under construction
/// and to the token-level corpus model the reference is built from.
fn push_random_op(
    batch: DeltaBatch,
    docs: &mut Vec<Option<Vec<String>>>,
    v: usize,
    state: &mut u64,
) -> DeltaBatch {
    match splitmix(state) % 3 {
        0 => {
            let tokens = gen_tokens(v, state);
            docs.push(Some(tokens.clone()));
            batch.append(tokens)
        }
        1 => {
            let target = splitmix(state) as usize % docs.len();
            let tokens = gen_tokens(v, state);
            docs[target] = Some(tokens.clone());
            batch.update(target, tokens)
        }
        _ => {
            let target = splitmix(state) as usize % docs.len();
            docs[target] = None;
            batch.tombstone(target)
        }
    }
}

/// The from-scratch reference: final token-level corpus → rows via the
/// independent aggregation, same frozen terms, same queries.
fn refit(
    dim: usize,
    terms: &[(String, Vec<f32>)],
    docs: &[Option<Vec<String>>],
    second: &[Option<Vec<f32>>],
) -> MatchArtifact {
    let rows: Vec<Option<Vec<f32>>> = docs
        .iter()
        .map(|d| d.as_ref().and_then(|t| ref_embed(terms, dim, t)))
        .collect();
    MatchArtifact::new(dim, terms.to_vec(), rows, second.to_vec())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random delta sequences land bit-identically on a refit of the
    /// final corpus: matrix bits, exact rankings, parallel rankings at
    /// several thread counts, and (when indexed) wide-pool ANN answers.
    #[test]
    fn random_delta_sequences_match_a_refit_of_the_final_corpus(
        dim in 1usize..8,
        n_targets in 1usize..20,
        n_vocab in 1usize..9,
        n_ops in 1usize..18,
        k in 0usize..8,
        seed in 0u64..1_000_000,
    ) {
        let with_ann = seed % 2 == 0;
        let mut state = seed ^ 0xDE17A;
        let terms = vocab(dim, n_vocab, &mut state);
        let mut docs: Vec<Option<Vec<String>>> = (0..n_targets)
            .map(|_| (splitmix(&mut state) % 5 != 4).then(|| gen_tokens(n_vocab, &mut state)))
            .collect();
        let second: Vec<Option<Vec<f32>>> = (0..3)
            .map(|_| Some((0..dim).map(|_| unit(&mut state)).collect()))
            .collect();

        let mut artifact = refit(dim, &terms, &docs, &second);
        if with_ann {
            artifact.build_ann(&HnswParams::default());
        }

        let mut batch = DeltaBatch::new();
        for _ in 0..n_ops {
            batch = push_random_op(batch, &mut docs, n_vocab, &mut state);
        }
        let summary = artifact.apply_delta(&batch).expect("targets generated in bounds");
        prop_assert_eq!(summary.rows, docs.len());
        prop_assert_eq!(
            summary.appended,
            batch.ops.iter().filter(|o| matches!(o, DeltaOp::Append { .. })).count()
        );

        let reference = refit(dim, &terms, &docs, &second);
        // Strongest form first: the target matrices agree bit for bit
        // (ScoreMatrix equality is bitwise over data and validity).
        prop_assert_eq!(artifact.first_matrix(), reference.first_matrix());
        prop_assert_eq!(
            result_bits(&artifact.match_top_k(k)),
            result_bits(&reference.match_top_k(k))
        );
        for threads in [1usize, 2, 5] {
            let a = top_k_matches_matrix_parallel(
                artifact.second_matrix(), artifact.first_matrix(), k, None, None, threads,
            );
            let b = top_k_matches_matrix_parallel(
                reference.second_matrix(), reference.first_matrix(), k, None, None, threads,
            );
            prop_assert_eq!(result_bits(&a), result_bits(&b), "threads = {}", threads);
        }
        if with_ann {
            // The incrementally-updated index keeps the widened-pool ≡
            // exact-scan contract over the *post-delta* corpus.
            prop_assert_eq!(
                result_bits(&artifact.match_top_k(k)),
                result_bits(&artifact.match_top_k_ann(k, docs.len().max(1)))
            );
        }
    }

    /// Applying one batch equals applying the same ops as two batches:
    /// the delta path composes, so periodic ingest ticks are equivalent
    /// to one catch-up batch.
    #[test]
    fn delta_application_composes_across_batch_splits(
        dim in 1usize..6,
        n_targets in 1usize..15,
        n_vocab in 1usize..7,
        n_ops in 2usize..16,
        split in 1usize..15,
        seed in 0u64..1_000_000,
    ) {
        let mut state = seed ^ 0xC0DE;
        let terms = vocab(dim, n_vocab, &mut state);
        let mut docs: Vec<Option<Vec<String>>> = (0..n_targets)
            .map(|_| Some(gen_tokens(n_vocab, &mut state)))
            .collect();
        let second = vec![Some((0..dim).map(|_| unit(&mut state)).collect::<Vec<f32>>())];

        let base = refit(dim, &terms, &docs, &second);
        let mut batch = DeltaBatch::new();
        for _ in 0..n_ops {
            batch = push_random_op(batch, &mut docs, n_vocab, &mut state);
        }
        let split = split.min(n_ops - 1);
        let (head, tail) = (
            DeltaBatch { ops: batch.ops[..split].to_vec() },
            DeltaBatch { ops: batch.ops[split..].to_vec() },
        );

        let mut whole = base.clone();
        whole.apply_delta(&batch).unwrap();
        let mut stepped = base.clone();
        stepped.apply_delta(&head).unwrap();
        stepped.apply_delta(&tail).unwrap();
        prop_assert_eq!(&whole, &stepped);
    }
}
