//! Wire back-compat: committed golden frames from earlier protocol
//! revisions must keep parsing byte-for-byte.
//!
//! The fixtures under `tests/fixtures/` are complete length-prefixed
//! frames (u32 LE length, JSON payload, trailing newline) captured at
//! two protocol watermarks:
//!
//! * `query_id_v0.bin` — a `query_id` request from before the per-query
//!   `ann` flag existed;
//! * `stats_v0.bin` — a stats response from before the ANN counters
//!   (`ann_queries`/`exact_queries`/`pooled`/`mean_pool`);
//! * `stats_v1.bin` — a stats response from before the scoring-pool
//!   counters (`workers`/`shards`/`inflight`/`queue_depth`).
//!
//! Because request fields only ever *extend* the schema (new members are
//! optional, absent means the old default), the pre-`ann` request is
//! also today's **canonical** encoding of an `ann: None` query — pinned
//! here so a future encoder change that would break recorded traffic
//! fails this suite first. A live daemon must likewise answer the raw
//! v0 frame bytes, over both transports.

use std::io::Write;

use tdmatch_core::artifact::MatchArtifact;
use tdmatch_core::serving::Matcher;
use tdmatch_serve::protocol::{
    read_frame, write_frame, Request, RequestBody, Response, ResponseBody,
};
use tdmatch_serve::server::{ServeOptions, Server};

fn fixture(name: &str) -> Vec<u8> {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    std::fs::read(&path).unwrap_or_else(|e| panic!("fixture {} missing: {e}", path.display()))
}

/// Decodes the single frame a fixture holds.
fn decode_fixture_frame(name: &str) -> Vec<u8> {
    let bytes = fixture(name);
    let mut r = &bytes[..];
    let payload = read_frame(&mut r)
        .expect("fixture frame readable")
        .expect("fixture holds one frame");
    assert!(
        read_frame(&mut r).expect("clean tail").is_none(),
        "{name}: trailing bytes after the frame"
    );
    payload
}

#[test]
fn pre_ann_query_request_decodes_and_is_still_the_canonical_encoding() {
    let payload = decode_fixture_frame("query_id_v0.bin");
    let request = Request::decode(&payload).expect("v0 request decodes");
    assert_eq!(
        request,
        Request {
            id: 1,
            body: RequestBody::QueryId { doc: 0, k: 3, ann: None },
        }
    );

    // Absent `ann` is the wire default, so re-encoding the decoded
    // request must reproduce the fixture byte-for-byte — frame prefix,
    // sorted keys, trailing newline and all.
    let mut reframed = Vec::new();
    write_frame(&mut reframed, &request.encode()).expect("re-frame");
    assert_eq!(
        reframed,
        fixture("query_id_v0.bin"),
        "the canonical encoding of an ann-less query_id drifted from the recorded wire format"
    );
}

#[test]
fn pre_ann_stats_response_decodes_with_new_counters_zeroed() {
    let payload = decode_fixture_frame("stats_v0.bin");
    let response = Response::decode(&payload).expect("v0 stats decodes");
    assert_eq!(response.id, 2);
    let ResponseBody::Stats(stats) = response.body else {
        panic!("expected a stats body, got {:?}", response.body);
    };
    // The original counter set survives verbatim…
    assert_eq!(stats.requests, 5);
    assert_eq!(stats.batched_requests, 5);
    assert_eq!(stats.batches, 2);
    assert_eq!(stats.coalesced, 3);
    assert_eq!(stats.errors, 1);
    assert_eq!(stats.max_batch, 4);
    assert_eq!(stats.shed, 1);
    assert_eq!(stats.evicted, 0);
    assert_eq!(stats.reloads, 1);
    assert_eq!(stats.reload_failures, 0);
    assert_eq!(stats.generation, 1);
    assert_eq!(stats.uptime_secs, 12.5);
    // …and every counter added since defaults to zero.
    assert_eq!(stats.ann_queries, 0);
    assert_eq!(stats.exact_queries, 0);
    assert_eq!(stats.pooled, 0);
    assert_eq!(stats.workers, 0);
    assert_eq!(stats.shards, 0);
    assert_eq!(stats.inflight, 0);
    assert_eq!(stats.queue_depth, 0);
}

#[test]
fn pre_pool_stats_response_decodes_with_pool_counters_zeroed() {
    let payload = decode_fixture_frame("stats_v1.bin");
    let response = Response::decode(&payload).expect("v1 stats decodes");
    assert_eq!(response.id, 3);
    let ResponseBody::Stats(stats) = response.body else {
        panic!("expected a stats body, got {:?}", response.body);
    };
    // The ANN trio is present in this revision…
    assert_eq!(stats.ann_queries, 3);
    assert_eq!(stats.exact_queries, 2);
    assert_eq!(stats.pooled, 96);
    assert_eq!(stats.mean_pool(), 32.0);
    // …while the scoring-pool quartet still defaults.
    assert_eq!(stats.workers, 0);
    assert_eq!(stats.shards, 0);
    assert_eq!(stats.inflight, 0);
    assert_eq!(stats.queue_depth, 0);
    // Base counters intact.
    assert_eq!(stats.requests, 5);
    assert_eq!(stats.generation, 1);
}

/// Replays the raw v0 request frame against a live daemon on both
/// transports: an old client's bytes must still be answered, and the
/// answer must rank exactly like today's facade.
#[cfg(unix)]
#[test]
fn live_daemon_answers_the_recorded_v0_frame_on_both_transports() {
    let artifact = MatchArtifact::new(
        2,
        vec![
            ("alpha".into(), vec![1.0, 0.0]),
            ("beta".into(), vec![0.0, 1.0]),
        ],
        vec![
            Some(vec![1.0, 0.0]),
            Some(vec![0.0, 1.0]),
            Some(vec![0.6, 0.8]),
        ],
        vec![Some(vec![0.9, 0.1]), Some(vec![0.2, 0.98])],
    );
    let want: Vec<(usize, u32)> = Matcher::new(artifact.clone())
        .query_by_id(0, 3)
        .expect("doc 0 exists")
        .into_iter()
        .map(|(t, s)| (t, s.to_bits()))
        .collect();

    let socket = std::env::temp_dir().join(format!(
        "tdmatch-wire-compat-{}.sock",
        std::process::id()
    ));
    std::fs::remove_file(&socket).ok();
    let server = Server::start(
        Matcher::new(artifact),
        ServeOptions::at(&socket).tcp("127.0.0.1:0"),
    )
    .expect("daemon start");
    let addr = server.tcp_addr().expect("tcp front bound").to_string();

    let raw = fixture("query_id_v0.bin");
    let answers = |mut stream: Box<dyn ReadWrite>| {
        stream.write_all(&raw).expect("replay recorded frame");
        let payload = read_frame(&mut stream)
            .expect("response frame")
            .expect("one response");
        let response = Response::decode(&payload).expect("response decodes");
        assert_eq!(response.id, 1, "correlation id must echo the recorded one");
        match response.body {
            ResponseBody::Matches { matches, .. } => matches
                .into_iter()
                .map(|(t, s)| (t, s.to_bits()))
                .collect::<Vec<_>>(),
            other => panic!("expected matches, got {other:?}"),
        }
    };

    let unix = std::os::unix::net::UnixStream::connect(&socket).expect("unix connect");
    assert_eq!(answers(Box::new(unix)), want, "unix answer to the v0 frame diverged");
    let tcp = std::net::TcpStream::connect(&addr).expect("tcp connect");
    assert_eq!(answers(Box::new(tcp)), want, "tcp answer to the v0 frame diverged");

    server.shutdown();
    server.join();
}

#[cfg(unix)]
trait ReadWrite: std::io::Read + std::io::Write {}
#[cfg(unix)]
impl<T: std::io::Read + std::io::Write> ReadWrite for T {}
