//! Pipeline configuration.

use tdmatch_embed::walks::{WalkConfig, WalkStrategy};
use tdmatch_embed::word2vec::{default_threads, W2vMode, Word2VecConfig};
use tdmatch_text::PreprocessOptions;

/// Which data-node filtering to apply during graph creation (§II-B and the
/// Fig. 9 ablation).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FilterMode {
    /// No filtering: every term of both corpora becomes a node ("Normal").
    None,
    /// The paper's default: the corpus with fewer distinct tokens seeds the
    /// term vocabulary; the other corpus only connects to existing terms.
    Intersect,
    /// TF-IDF baseline: keep only the `k` highest-TF-IDF tokens of every
    /// document (both corpora).
    TfIdf {
        /// Tokens kept per document.
        k: usize,
    },
}

/// How node embeddings are produced from the walk corpus (§IV-A: the
/// embedding generator is pluggable; the paper found graph-native
/// alternatives "comparable in quality ... but more resource intensive"
/// than Word2Vec on walks).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EmbedMethod {
    /// Word2Vec (Skip-gram / CBOW) over walk sentences — the paper's
    /// default (Alg. 4).
    #[default]
    WalkWord2Vec,
    /// PV-DBOW where each node's "document" is the bag of all walks
    /// starting at it (a DeepWalk-style graph-native alternative).
    WalkDoc2Vec,
}

/// Candidate blocking before cosine scoring (the §VII "blocking to speed
/// up performance" future-work extension). Blocking trades a little
/// recall for sub-quadratic matching; [`BlockingMode::None`] reproduces
/// the paper exactly.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum BlockingMode {
    /// Score every (query, target) pair — the paper's behaviour.
    None,
    /// Inverted token index: only score targets sharing ≥ 1 base token
    /// with the query (lexical blocking).
    InvertedIndex,
    /// Random-hyperplane LSH over the metadata embeddings (embedding
    /// blocking; sees non-lexical similarity the token index misses).
    Lsh(crate::lsh::LshConfig),
}

/// Compression to apply after (optional) expansion — Table VIII.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Compression {
    /// The paper's Metadata-Shortest-Path method with ratio β (Alg. 3).
    Msp {
        /// Iterations = β · |V|.
        beta: f64,
    },
    /// Random-pair shortest-path sampling (SSP \[33\]).
    Ssp {
        /// Iterations = ratio · |V|.
        ratio: f64,
    },
    /// SSuM-like summarization keeping ~`ratio` of nodes and edges.
    Ssum {
        /// Fraction of nodes/edges kept.
        ratio: f64,
    },
}

/// End-to-end TDmatch configuration.
#[derive(Debug, Clone)]
pub struct TdConfig {
    /// Pre-processing (stop-words, stemming, n-gram order).
    pub preprocess: PreprocessOptions,
    /// Term filtering during graph creation.
    pub filtering: FilterMode,
    /// Merge numeric data nodes into Freedman–Diaconis equal-width buckets.
    pub bucket_numbers: bool,
    /// Random walks per node (paper default 100).
    pub walks_per_node: usize,
    /// Steps per walk (paper default 30).
    pub walk_len: usize,
    /// Word2Vec objective: Skip-gram for text-to-data (window 3), CBOW for
    /// text-oriented tasks (window 15) — §V.
    pub w2v_mode: W2vMode,
    /// Context window.
    pub window: usize,
    /// Embedding dimensionality.
    pub dim: usize,
    /// Word2Vec epochs over the walk corpus.
    pub epochs: usize,
    /// Negative samples per positive pair.
    pub negative: usize,
    /// Worker threads for walks and training.
    pub threads: usize,
    /// Master seed (walks, training init, compression sampling).
    pub seed: u64,
    /// Connect taxonomy metadata nodes to their parents (§II-A). On by
    /// default; the §V-F2 ablation turns it off.
    pub taxonomy_edges: bool,
    /// Candidate blocking before cosine scoring (future-work extension;
    /// changes speed, not semantics, on overlapping corpora).
    pub blocking: BlockingMode,
    /// Cap on relations fetched per node during expansion.
    pub max_relations_per_node: usize,
    /// Transition rule for the walk generator. [`WalkStrategy::Uniform`]
    /// reproduces the paper; the node2vec / edge-typed variants are the
    /// pluggable-embedding extension (§IV-A, conclusion).
    pub walk_strategy: WalkStrategy,
    /// Embedding generator over the walk corpus (paper default:
    /// Word2Vec).
    pub embed_method: EmbedMethod,
}

impl TdConfig {
    /// Paper defaults for the **text-to-data** task: Skip-gram, window 3
    /// (as in the data-to-data predecessor \[1\]).
    pub fn text_to_data() -> Self {
        Self {
            preprocess: PreprocessOptions::default(),
            filtering: FilterMode::Intersect,
            bucket_numbers: false,
            walks_per_node: 100,
            walk_len: 30,
            w2v_mode: W2vMode::SkipGram,
            window: 3,
            dim: 100,
            epochs: 5,
            negative: 5,
            threads: default_threads(),
            seed: 42,
            taxonomy_edges: true,
            blocking: BlockingMode::None,
            max_relations_per_node: 64,
            walk_strategy: WalkStrategy::Uniform,
            embed_method: EmbedMethod::WalkWord2Vec,
        }
    }

    /// Paper defaults for **text-oriented** tasks (text-to-text and
    /// text-to-structured-text): CBOW with window 15.
    pub fn text_oriented() -> Self {
        Self {
            w2v_mode: W2vMode::Cbow,
            window: 15,
            ..Self::text_to_data()
        }
    }

    /// A tiny, fast, deterministic configuration for unit tests and doc
    /// examples.
    pub fn for_tests() -> Self {
        Self {
            walks_per_node: 12,
            walk_len: 8,
            dim: 32,
            epochs: 3,
            threads: 1,
            ..Self::text_to_data()
        }
    }

    /// Walk-generation parameters derived from this config.
    pub fn walk_config(&self) -> WalkConfig {
        WalkConfig {
            walks_per_node: self.walks_per_node,
            walk_len: self.walk_len,
            seed: self.seed,
            threads: self.threads,
            strategy: self.walk_strategy,
        }
    }

    /// Word2Vec parameters derived from this config.
    pub fn w2v_config(&self) -> Word2VecConfig {
        Word2VecConfig {
            dim: self.dim,
            window: self.window,
            negative: self.negative,
            epochs: self.epochs,
            initial_lr: match self.w2v_mode {
                W2vMode::SkipGram => 0.025,
                W2vMode::Cbow => 0.05,
            },
            min_count: 1,
            mode: self.w2v_mode,
            threads: self.threads,
            seed: self.seed,
            subsample: 0.0,
        }
    }
}

impl Default for TdConfig {
    fn default() -> Self {
        Self::text_to_data()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn task_presets_match_paper() {
        let td = TdConfig::text_to_data();
        assert_eq!(td.w2v_mode, W2vMode::SkipGram);
        assert_eq!(td.window, 3);
        assert_eq!(td.walks_per_node, 100);
        assert_eq!(td.walk_len, 30);

        let to = TdConfig::text_oriented();
        assert_eq!(to.w2v_mode, W2vMode::Cbow);
        assert_eq!(to.window, 15);
    }

    #[test]
    fn derived_configs_inherit_fields() {
        let cfg = TdConfig::for_tests();
        assert_eq!(cfg.walk_config().walks_per_node, cfg.walks_per_node);
        assert_eq!(cfg.w2v_config().dim, cfg.dim);
        assert_eq!(cfg.w2v_config().seed, cfg.seed);
    }

    #[test]
    fn cbow_uses_higher_lr() {
        let sg = TdConfig::text_to_data().w2v_config().initial_lr;
        let cb = TdConfig::text_oriented().w2v_config().initial_lr;
        assert!(cb > sg);
    }
}
