//! Table III — Exact and Node P/R/F for the Audit text-to-structured-text
//! scenario at K ∈ {1, 3, 5, 10}.
//!
//! Methods: D2VEC, S-BE, W-RW, W-RW-EX (unsupervised) and RANK*, L-BE*
//! (supervised). Paper shape: the task is hard in absolute terms; W-RW-EX
//! leads the unsupervised field; D2VEC (trained on the audit text) beats
//! the pre-trained S-BE because the vocabulary is domain specific; L-BE*
//! is competitive only at K = 1.

use tdmatch_bench::{audit_eval, print_prf_header, print_prf_row, registry, scale_from_env, Method};

const KS: [usize; 4] = [1, 3, 5, 10];

fn main() {
    let scenario = registry::by_key("audit")
        .expect("registered")
        .generate(scale_from_env(), 42);
    print_prf_header("Table III — Audit: exact and node scores");

    let methods = [
        Method::D2vec,
        Method::Sbe,
        Method::Wrw,
        Method::WrwEx,
        Method::Rank,
        Method::Lbe,
    ];
    let runs: Vec<_> = methods.iter().map(|&m| m.run(&scenario, 10, 42)).collect();

    for k in KS {
        for run in &runs {
            let (exact, node) = audit_eval(run, &scenario, k);
            print_prf_row(k, &run.method, &exact, &node);
        }
        println!("{}", "-".repeat(66));
    }
}
