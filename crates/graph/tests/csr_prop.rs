//! Property tests pinning the [`CsrGraph`] snapshot to its source
//! [`Graph`]: edge-for-edge structural equivalence, and RNG-stream
//! equivalence of every walk primitive.

use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

use tdmatch_graph::sample::{
    random_walk, random_walk_csr_into, random_walk_edge_typed, random_walk_edge_typed_csr_into,
    random_walk_node2vec, random_walk_node2vec_csr_into,
};
use tdmatch_graph::{CsrGraph, EdgeKind, EdgeTypeWeights, Graph, NodeId};

/// Builds a graph from arbitrary typed edge pairs (mod `n`), optionally
/// tombstoning some nodes afterwards.
fn build(n: usize, edges: &[(usize, usize, u8)], removals: &[usize]) -> Graph {
    let mut g = Graph::new();
    let ids: Vec<NodeId> = (0..n).map(|i| g.intern_data(&format!("n{i}"))).collect();
    for &(a, b, k) in edges {
        let kind = EdgeKind::ALL[k as usize % EdgeKind::ALL.len()];
        g.add_edge_typed(ids[a % n], ids[b % n], kind);
    }
    for &r in removals {
        g.remove_node(ids[r % n]);
    }
    g
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The snapshot reproduces neighbors, kinds, degrees, node kinds,
    /// liveness, and the edge relation exactly.
    #[test]
    fn snapshot_is_edge_for_edge_equivalent(
        n in 2usize..16,
        edges in prop::collection::vec((0usize..16, 0usize..16, 0u8..8), 0..50),
        removals in prop::collection::vec(0usize..16, 0..4),
    ) {
        let g = build(n, &edges, &removals);
        let csr = CsrGraph::from_graph(&g);

        prop_assert_eq!(csr.id_bound(), g.id_bound());
        prop_assert_eq!(csr.node_count(), g.node_count());
        prop_assert_eq!(csr.edge_count(), g.edge_count());
        prop_assert_eq!(
            csr.nodes().collect::<Vec<_>>(),
            g.nodes().collect::<Vec<_>>()
        );
        for id in 0..g.id_bound() as u32 {
            let id = NodeId(id);
            prop_assert_eq!(csr.is_removed(id), g.is_removed(id));
            prop_assert_eq!(csr.kind(id), g.kind(id));
            prop_assert_eq!(csr.degree(id), g.degree(id));
            prop_assert_eq!(csr.neighbors(id), g.neighbors(id));
            prop_assert_eq!(csr.neighbor_kinds(id), g.neighbor_kinds(id));
        }
        for a in 0..g.id_bound() as u32 {
            for b in 0..g.id_bound() as u32 {
                let (a, b) = (NodeId(a), NodeId(b));
                prop_assert_eq!(csr.has_edge(a, b), g.has_edge(a, b));
                prop_assert_eq!(csr.edge_kind(a, b), g.edge_kind(a, b));
            }
        }
        prop_assert_eq!(csr.metadata_nodes(None), g.metadata_nodes(None));
    }

    /// Every walk primitive over the snapshot emits the same token stream
    /// as its mutable-graph reference under the same RNG seed.
    #[test]
    fn csr_walk_primitives_match_reference(
        n in 2usize..14,
        edges in prop::collection::vec((0usize..14, 0usize..14, 0u8..8), 1..40),
        removals in prop::collection::vec(0usize..14, 0..3),
        seed in 0u64..1000,
        len in 1usize..12,
        w_ext in 0.0f32..3.0,
    ) {
        let g = build(n, &edges, &removals);
        let csr = CsrGraph::from_graph(&g);
        let weights = EdgeTypeWeights::uniform().with(EdgeKind::External, w_ext);
        let cum = csr.edge_type_cum(&weights);
        let mut scratch = Vec::new();

        for start in g.nodes() {
            let reference: Vec<u32> =
                random_walk(&g, start, len, &mut SmallRng::seed_from_u64(seed))
                    .into_iter().map(|x| x.0).collect();
            let mut flat = Vec::new();
            random_walk_csr_into(&csr, start, len, &mut SmallRng::seed_from_u64(seed), &mut flat);
            prop_assert_eq!(&flat, &reference, "uniform from {}", start);

            let reference: Vec<u32> =
                random_walk_edge_typed(&g, start, len, &weights, &mut SmallRng::seed_from_u64(seed))
                    .into_iter().map(|x| x.0).collect();
            let mut flat = Vec::new();
            random_walk_edge_typed_csr_into(
                &csr, start, len, &weights, &cum,
                &mut SmallRng::seed_from_u64(seed), &mut flat,
            );
            prop_assert_eq!(&flat, &reference, "edge-typed from {}", start);

            let reference: Vec<u32> =
                random_walk_node2vec(&g, start, len, 0.4, 1.7, &mut SmallRng::seed_from_u64(seed))
                    .into_iter().map(|x| x.0).collect();
            let mut flat = Vec::new();
            random_walk_node2vec_csr_into(
                &csr, start, len, 0.4, 1.7,
                &mut SmallRng::seed_from_u64(seed), &mut scratch, &mut flat,
            );
            prop_assert_eq!(&flat, &reference, "node2vec from {}", start);
        }
    }
}
