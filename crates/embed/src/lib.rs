//! Embedding substrate for TDmatch.
//!
//! The paper's default embedding generator (Alg. 4) runs `n` random walks of
//! length `l` from every graph node, treats each walk's label sequence as a
//! sentence, and trains a Word2Vec model — Skip-gram (window 3) for the
//! text-to-data task and CBOW (window 15) for text-oriented tasks (§V).
//!
//! Everything here is built from scratch:
//!
//! * [`vocab`] — frequency-ranked vocabulary construction;
//! * [`corpus`] — the [`FlatCorpus`] token arena all trainers consume;
//! * [`word2vec`] — Skip-gram & CBOW with negative sampling, trained in
//!   parallel Hogwild-style over a lock-free shared matrix ([`hogwild`]);
//! * [`doc2vec`] — PV-DBOW document embeddings (the D2VEC baseline);
//! * [`walks`] — parallel random-walk corpus generation over a
//!   [`tdmatch_graph::Graph`] or its [`tdmatch_graph::CsrGraph`] snapshot;
//! * [`vectors`] — dense embedding stores, cosine similarity, top-k search;
//! * [`score`] — the flat similarity engine: pre-normalized
//!   [`ScoreMatrix`] rows, unrolled dot kernels, and bounded top-k batch
//!   matching (the §IV-B hot path);
//! * [`ann`] — a persisted, deterministic HNSW index over
//!   [`ScoreMatrix`] rows for sub-linear candidate retrieval, paired
//!   with exact widened-pool rescoring.
//!
//! # Snapshot lifecycle (the hot path)
//!
//! The embedding phase is read-only over the graph, so the pipeline
//! freezes the built/expanded/merged [`tdmatch_graph::Graph`] into a
//! [`tdmatch_graph::CsrGraph`] once and then:
//!
//! 1. [`walks::generate_walk_corpus`] streams all random walks into one
//!    [`FlatCorpus`] arena (two allocations, any thread count, corpus
//!    byte-identical to the legacy nested path);
//! 2. [`word2vec::train_corpus`] / [`doc2vec::train_pv_dbow`] train
//!    straight off the arena via sentence-slice iterators.
//!
//! The nested `Vec<Vec<u32>>` entry points ([`walks::generate_walks`],
//! [`word2vec::train_ids`]) remain as compatibility shims for baselines
//! and as equivalence oracles in tests.

pub mod ann;
pub mod corpus;
pub mod doc2vec;
pub mod hogwild;
pub mod neg_table;
pub mod score;
pub mod vectors;
pub mod vocab;
pub mod walks;
pub mod word2vec;

pub use ann::{HnswIndex, HnswParams};
pub use corpus::FlatCorpus;
pub use score::{QueryBlock, ScoreMatrix};
pub use vectors::{cosine, Embeddings};
pub use vocab::Vocab;
pub use word2vec::{W2vMode, Word2Vec, Word2VecConfig};
