//! Synchronous client for the daemon's socket protocol — used by
//! `tdmatch query --socket` (or `--tcp`), the protocol tests, and the
//! bench recorder.
//!
//! The client is resilient by configuration: give it a [`RetryPolicy`]
//! and it transparently retries *retryable* failures — the daemon's
//! `overloaded`/`shutting_down` shed responses, a dropped connection
//! (daemon restarted), a refused/missing socket (daemon still coming
//! back up) — with capped exponential backoff plus jitter, reconnecting
//! when the failure broke the stream. Non-retryable errors (`bad_json`,
//! `unknown_id`, …) surface immediately. The default policy is
//! [`RetryPolicy::none`], which preserves exact one-shot semantics.

use std::io::BufReader;
use std::os::unix::net::UnixStream;
use std::path::{Path, PathBuf};
use std::time::Duration;

use crate::net;
use crate::protocol::{
    read_frame, write_frame, ErrorCode, FrameError, Request, RequestBody, Response, ResponseBody,
    StatsSnapshot,
};

/// Why a request could not be completed.
#[derive(Debug)]
pub enum ClientError {
    /// Connecting or talking to the socket failed.
    Io(std::io::Error),
    /// A response frame was unreadable.
    Frame(FrameError),
    /// The server closed the stream before answering.
    Disconnected,
    /// The response decoded but made no protocol sense.
    Protocol(String),
    /// The server answered with an error response.
    Server {
        /// Machine-readable failure class.
        code: ErrorCode,
        /// Server-provided detail.
        message: String,
    },
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "I/O error: {e}"),
            ClientError::Frame(e) => write!(f, "bad response frame: {e}"),
            ClientError::Disconnected => write!(f, "server closed the connection"),
            ClientError::Protocol(m) => write!(f, "protocol error: {m}"),
            ClientError::Server { code, message } => write!(f, "server error [{code}]: {message}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<FrameError> for ClientError {
    fn from(e: FrameError) -> Self {
        ClientError::Frame(e)
    }
}

/// Transient I/O kinds worth another attempt: the signatures of a
/// daemon that died, is restarting, or shed us under load.
fn transient_io(kind: std::io::ErrorKind) -> bool {
    use std::io::ErrorKind::*;
    matches!(
        kind,
        ConnectionRefused | ConnectionReset | ConnectionAborted | BrokenPipe | NotFound
            | WouldBlock | TimedOut | Interrupted
    )
}

impl ClientError {
    /// True when resending (possibly after reconnecting) may succeed
    /// without operator action.
    pub fn is_retryable(&self) -> bool {
        match self {
            ClientError::Server { code, .. } => code.is_retryable(),
            ClientError::Disconnected => true,
            ClientError::Io(e) => transient_io(e.kind()),
            ClientError::Frame(FrameError::Io(e)) => transient_io(e.kind()),
            // The daemon died mid-response; a restarted one can answer.
            ClientError::Frame(FrameError::Truncated) => true,
            _ => false,
        }
    }

    /// True when the failure leaves the stream unusable (a retry must
    /// reconnect first). Error *responses* keep the connection healthy.
    fn breaks_connection(&self) -> bool {
        !matches!(self, ClientError::Server { .. })
    }
}

/// Capped exponential backoff with jitter for retryable failures.
#[derive(Debug, Clone, Copy)]
pub struct RetryPolicy {
    /// Additional attempts after the first (0 = never retry).
    pub retries: u32,
    /// Delay before the first retry; doubles per attempt.
    pub base_delay: Duration,
    /// Ceiling on the (pre-jitter) delay.
    pub max_delay: Duration,
}

impl RetryPolicy {
    /// Never retry — exact one-shot semantics (the default).
    pub fn none() -> Self {
        RetryPolicy {
            retries: 0,
            base_delay: Duration::ZERO,
            max_delay: Duration::ZERO,
        }
    }

    /// `retries` attempts with 10 ms base delay capped at 500 ms.
    pub fn with_retries(retries: u32) -> Self {
        RetryPolicy {
            retries,
            base_delay: Duration::from_millis(10),
            max_delay: Duration::from_millis(500),
        }
    }

    /// The sleep before retry number `attempt` (0-based): doubled per
    /// attempt, capped, then jittered into `[d/2, d]` ("equal jitter")
    /// so a herd of shed clients does not resynchronize.
    fn delay(&self, attempt: u32, jitter: &mut Jitter) -> Duration {
        let exp = self
            .base_delay
            .saturating_mul(1u32 << attempt.min(16))
            .min(self.max_delay)
            .max(self.base_delay);
        if exp.is_zero() {
            return exp;
        }
        let half = exp / 2;
        let spread = exp - half;
        let offset_nanos = jitter.next() % (spread.as_nanos().max(1) as u64 + 1);
        half + Duration::from_nanos(offset_nanos)
    }
}

/// A tiny xorshift64* generator — enough entropy to decorrelate backoff
/// sleeps without pulling in a randomness dependency.
#[derive(Debug)]
struct Jitter(u64);

impl Jitter {
    fn new() -> Self {
        let nanos = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.subsec_nanos() as u64)
            .unwrap_or(0x9e37_79b9);
        Jitter((nanos | 1) ^ ((std::process::id() as u64) << 32))
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }
}

/// Where the daemon is listening: its Unix socket, or (with `--tcp`)
/// a TCP address. Both speak the identical framed protocol.
enum Transport {
    Unix(PathBuf),
    Tcp(String),
}

impl Transport {
    fn open(&self) -> std::io::Result<net::Stream> {
        match self {
            Transport::Unix(path) => UnixStream::connect(path).map(net::Stream::Unix),
            Transport::Tcp(addr) => std::net::TcpStream::connect(addr.as_str()).map(net::Stream::tcp),
        }
    }
}

/// One connection to a running daemon. Requests are synchronous:
/// [`request`](Client::request) writes a frame and blocks for the
/// matching response, retrying per the configured [`RetryPolicy`].
pub struct Client {
    transport: Transport,
    writer: net::Stream,
    reader: BufReader<net::Stream>,
    next_id: u64,
    retry: RetryPolicy,
    io_timeout: Option<Duration>,
    ann: Option<bool>,
    jitter: Jitter,
}

impl Client {
    fn open(transport: Transport) -> Result<Self, ClientError> {
        let writer = transport.open()?;
        let reader = BufReader::new(writer.try_clone()?);
        Ok(Client {
            transport,
            writer,
            reader,
            next_id: 1,
            retry: RetryPolicy::none(),
            io_timeout: None,
            ann: None,
            jitter: Jitter::new(),
        })
    }

    /// Connects to the daemon's Unix socket (no retries; see
    /// [`set_retry_policy`](Client::set_retry_policy)).
    pub fn connect<P: AsRef<Path>>(socket: P) -> Result<Self, ClientError> {
        Self::open(Transport::Unix(socket.as_ref().to_path_buf()))
    }

    /// Connects to a daemon's TCP front (`HOST:PORT`). The protocol —
    /// and every client feature, retries included — is identical to the
    /// Unix-socket transport.
    pub fn connect_tcp<S: Into<String>>(addr: S) -> Result<Self, ClientError> {
        Self::open(Transport::Tcp(addr.into()))
    }

    /// Sets the retrieval mode stamped onto subsequent queries:
    /// `Some(true)` requests ANN candidate retrieval, `Some(false)`
    /// forces the exact scan, and `None` (the default) defers to the
    /// daemon's configured mode.
    pub fn set_ann(&mut self, ann: Option<bool>) {
        self.ann = ann;
    }

    /// Sets the retry policy for subsequent requests.
    pub fn set_retry_policy(&mut self, policy: RetryPolicy) {
        self.retry = policy;
    }

    /// Arms (or clears) read/write deadlines on the connection, so a
    /// hung daemon surfaces as a retryable timeout instead of blocking
    /// forever. Persists across reconnects.
    pub fn set_io_timeout(&mut self, timeout: Option<Duration>) -> Result<(), ClientError> {
        self.writer.set_read_timeout(timeout)?;
        self.writer.set_write_timeout(timeout)?;
        self.io_timeout = timeout;
        Ok(())
    }

    /// Re-establishes the connection after a broken stream.
    fn reconnect(&mut self) -> Result<(), ClientError> {
        let writer = self.transport.open()?;
        if self.io_timeout.is_some() {
            writer.set_read_timeout(self.io_timeout)?;
            writer.set_write_timeout(self.io_timeout)?;
        }
        self.reader = BufReader::new(writer.try_clone()?);
        self.writer = writer;
        Ok(())
    }

    /// One request/response exchange, no retries.
    fn exchange(&mut self, body: RequestBody) -> Result<ResponseBody, ClientError> {
        let id = self.next_id;
        self.next_id += 1;
        let request = Request { id, body };
        write_frame(&mut self.writer, &request.encode())?;
        let payload = read_frame(&mut self.reader)?.ok_or(ClientError::Disconnected)?;
        let response = Response::decode(&payload).map_err(|e| ClientError::Protocol(e.to_string()))?;
        if response.id != id {
            return Err(ClientError::Protocol(format!(
                "response id {} does not match request id {id}",
                response.id
            )));
        }
        match response.body {
            ResponseBody::Error { code, message } => Err(ClientError::Server { code, message }),
            body => Ok(body),
        }
    }

    /// Sends one request and blocks for its response, retrying
    /// retryable failures per the policy. Error *responses* come back
    /// as [`ClientError::Server`]; the id echo is verified.
    pub fn request(&mut self, body: RequestBody) -> Result<ResponseBody, ClientError> {
        let mut attempt = 0u32;
        loop {
            match self.exchange(body.clone()) {
                Ok(response) => return Ok(response),
                Err(e) if attempt < self.retry.retries && e.is_retryable() => {
                    std::thread::sleep(self.retry.delay(attempt, &mut self.jitter));
                    if e.breaks_connection() {
                        // A failed reconnect is itself retryable (the
                        // next exchange fails fast with the same I/O
                        // error and re-enters this arm).
                        let _ = self.reconnect();
                    }
                    attempt += 1;
                }
                Err(e) => return Err(e),
            }
        }
    }

    fn expect_matches(
        &mut self,
        body: RequestBody,
    ) -> Result<(Vec<(usize, f32)>, usize), ClientError> {
        match self.request(body)? {
            ResponseBody::Matches { matches, batch } => Ok((matches, batch)),
            other => Err(ClientError::Protocol(format!(
                "expected a matches response, got {other:?}"
            ))),
        }
    }

    /// Ranks targets for query-corpus document `doc`. Returns the
    /// ranked `(target, score)` list and the size of the batch the
    /// request was coalesced into.
    pub fn query_id(&mut self, doc: usize, k: usize) -> Result<(Vec<(usize, f32)>, usize), ClientError> {
        let ann = self.ann;
        self.expect_matches(RequestBody::QueryId { doc, k, ann })
    }

    /// Ranks targets for a free-text query (tokenized server-side).
    pub fn query_text(
        &mut self,
        text: &str,
        k: usize,
    ) -> Result<(Vec<(usize, f32)>, usize), ClientError> {
        let ann = self.ann;
        self.expect_matches(RequestBody::QueryText {
            text: text.to_string(),
            k,
            ann,
        })
    }

    /// Ranks targets for a raw embedding vector.
    pub fn query_vector(
        &mut self,
        vector: Vec<f32>,
        k: usize,
    ) -> Result<(Vec<(usize, f32)>, usize), ClientError> {
        let ann = self.ann;
        self.expect_matches(RequestBody::QueryVector { vector, k, ann })
    }

    /// Liveness probe.
    pub fn ping(&mut self) -> Result<(), ClientError> {
        match self.request(RequestBody::Ping)? {
            ResponseBody::Pong => Ok(()),
            other => Err(ClientError::Protocol(format!("expected pong, got {other:?}"))),
        }
    }

    /// Fetches the daemon's counters.
    pub fn stats(&mut self) -> Result<StatsSnapshot, ClientError> {
        match self.request(RequestBody::Stats)? {
            ResponseBody::Stats(s) => Ok(s),
            other => Err(ClientError::Protocol(format!("expected stats, got {other:?}"))),
        }
    }

    /// Asks the daemon to swap in a freshly published artifact. Returns
    /// the new snapshot generation; on failure the daemon keeps serving
    /// the old snapshot and this returns the `reload_failed` error.
    pub fn reload(&mut self) -> Result<u64, ClientError> {
        match self.request(RequestBody::Reload)? {
            ResponseBody::Reloaded { generation } => Ok(generation),
            other => Err(ClientError::Protocol(format!(
                "expected reloaded, got {other:?}"
            ))),
        }
    }

    /// Asks the daemon to drain and exit. `Ok` means the daemon
    /// acknowledged and will stop.
    pub fn shutdown(&mut self) -> Result<(), ClientError> {
        match self.request(RequestBody::Shutdown)? {
            ResponseBody::Stopping => Ok(()),
            other => Err(ClientError::Protocol(format!(
                "expected stopping, got {other:?}"
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_doubles_caps_and_stays_within_the_jitter_band() {
        let policy = RetryPolicy::with_retries(8);
        let mut jitter = Jitter::new();
        let mut last_cap = Duration::ZERO;
        for attempt in 0..8 {
            let pre_jitter = policy
                .base_delay
                .saturating_mul(1u32 << attempt)
                .min(policy.max_delay);
            let d = policy.delay(attempt, &mut jitter);
            assert!(d >= pre_jitter / 2, "attempt {attempt}: {d:?} below half band");
            assert!(d <= pre_jitter, "attempt {attempt}: {d:?} above cap");
            assert!(pre_jitter >= last_cap, "caps must be monotone");
            last_cap = pre_jitter;
        }
        // Deep attempts are pinned at the cap's band, not overflowing.
        let deep = policy.delay(31, &mut jitter);
        assert!(deep <= policy.max_delay);
        assert!(deep >= policy.max_delay / 2);
    }

    #[test]
    fn zero_policy_never_sleeps() {
        let policy = RetryPolicy::none();
        let mut jitter = Jitter::new();
        assert_eq!(policy.delay(0, &mut jitter), Duration::ZERO);
        assert_eq!(policy.delay(5, &mut jitter), Duration::ZERO);
    }

    #[test]
    fn retryability_matches_the_failure_class() {
        assert!(ClientError::Disconnected.is_retryable());
        assert!(ClientError::Server {
            code: ErrorCode::Overloaded,
            message: String::new()
        }
        .is_retryable());
        assert!(ClientError::Server {
            code: ErrorCode::ShuttingDown,
            message: String::new()
        }
        .is_retryable());
        assert!(!ClientError::Server {
            code: ErrorCode::UnknownId,
            message: String::new()
        }
        .is_retryable());
        assert!(
            ClientError::Io(std::io::Error::from(std::io::ErrorKind::ConnectionRefused))
                .is_retryable()
        );
        assert!(
            !ClientError::Io(std::io::Error::from(std::io::ErrorKind::PermissionDenied))
                .is_retryable()
        );
        assert!(!ClientError::Protocol("nope".into()).is_retryable());
        assert!(ClientError::Frame(FrameError::Truncated).is_retryable());
        assert!(!ClientError::Frame(FrameError::Oversized { len: 9 }).is_retryable());
    }
}
