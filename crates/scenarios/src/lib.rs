//! Scenario conformance harness for the td-match stack.
//!
//! Three layers, each usable on its own:
//!
//! * [`harness`] — the shared experiment plumbing (scaled configs,
//!   W-RW(-EX) runners, metric evaluation, table printing) the
//!   `tdmatch-bench` targets build on;
//! * [`registry`] + [`methods`] — the canonical scenario registry and
//!   the one dispatcher for every evaluated matching method;
//! * [`lifecycle`] + [`golden`] — the end-to-end conformance runs
//!   (generate → fit → index → publish → mapped load → daemon over
//!   Unix **and** TCP, exact **and** ANN → score) and the committed
//!   quality goldens (`BENCH_scenarios.json`) they gate against.
//!
//! The `cargo test`-able suite lives in `tests/conformance.rs`; the
//! `scenarios_record` binary re-records the goldens.

pub mod golden;
pub mod harness;
pub mod lifecycle;
pub mod methods;
pub mod registry;

pub use harness::{
    audit_eval, bench_config, evaluate, print_prf_header, print_prf_row, print_ranking_header,
    print_ranking_row, run_pipeline, run_with_config, run_wrw, run_wrw_ex, scale_from_env,
    scale_presets, supervised_options, MethodRun, TABLE_K,
};
pub use lifecycle::{run_lifecycle, LifecycleOptions, MethodMetrics, ScenarioReport};
pub use methods::{ranking_table, Method};
