//! A small fixed worker pool for shard scoring and response writing.
//!
//! The scheduler thread must never run the engine or block on a peer's
//! socket: it partitions each coalesced batch into query-chunk shards
//! and submits them here. Workers pull tasks from a shared queue, so a
//! slow shard (a huge corpus scan, a stalling client eating its
//! SO_SNDTIMEO) delays only the worker it occupies while the rest of
//! the pool keeps draining.
//!
//! Each worker owns mutable per-worker state (in the daemon: a reusable
//! [`QueryBlock`](tdmatch_core::serving) and ANN scratch) created once
//! by a factory closure — the pool is generic so the policy stays
//! testable without sockets.
//!
//! Shutdown is **drain-on-close**: [`close`](WorkerPool::close) stops
//! new submissions, but workers finish every task already queued before
//! exiting. The daemon relies on this — an admitted query must be
//! answered even when shutdown lands mid-batch.

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

struct PoolState<T> {
    tasks: VecDeque<T>,
    open: bool,
}

struct PoolShared<T> {
    state: Mutex<PoolState<T>>,
    cv: Condvar,
}

/// A fixed-width pool of worker threads draining a shared task queue.
pub struct WorkerPool<T: Send + 'static> {
    shared: Arc<PoolShared<T>>,
    handles: Mutex<Vec<JoinHandle<()>>>,
}

impl<T: Send + 'static> WorkerPool<T> {
    /// Spawns `workers` threads (clamped to ≥ 1). `factory(i)` runs on
    /// the caller to build worker `i`'s handler; the handler itself is
    /// `FnMut` so it can own reusable scratch across tasks.
    pub fn new<F, H>(workers: usize, mut factory: F) -> WorkerPool<T>
    where
        F: FnMut(usize) -> H,
        H: FnMut(T) + Send + 'static,
    {
        let shared = Arc::new(PoolShared {
            state: Mutex::new(PoolState {
                tasks: VecDeque::new(),
                open: true,
            }),
            cv: Condvar::new(),
        });
        let mut handles = Vec::new();
        for i in 0..workers.max(1) {
            let shared = Arc::clone(&shared);
            let mut handler = factory(i);
            let handle = std::thread::Builder::new()
                .name(format!("tdmatch-worker-{i}"))
                .spawn(move || loop {
                    let task = {
                        let mut state = shared.state.lock().expect("worker pool poisoned");
                        loop {
                            if let Some(task) = state.tasks.pop_front() {
                                break task;
                            }
                            if !state.open {
                                return;
                            }
                            state = shared.cv.wait(state).expect("worker pool poisoned");
                        }
                    };
                    handler(task);
                })
                .expect("spawn worker thread");
            handles.push(handle);
        }
        WorkerPool {
            shared,
            handles: Mutex::new(handles),
        }
    }

    /// Queues a task for the next free worker. Once the pool is closed
    /// the task is handed back so the caller can fail it explicitly
    /// (the daemon answers its routes with `shutting_down`).
    pub fn submit(&self, task: T) -> Result<(), T> {
        let mut state = self.shared.state.lock().expect("worker pool poisoned");
        if !state.open {
            return Err(task);
        }
        state.tasks.push_back(task);
        drop(state);
        self.shared.cv.notify_one();
        Ok(())
    }

    /// Stops new submissions; queued tasks still run to completion.
    pub fn close(&self) {
        self.shared.state.lock().expect("worker pool poisoned").open = false;
        self.shared.cv.notify_all();
    }

    /// Closes the pool and blocks until every queued task has run and
    /// all workers have exited. Idempotent; callable through an `Arc`.
    pub fn join(&self) {
        self.close();
        let handles = std::mem::take(&mut *self.handles.lock().expect("worker pool poisoned"));
        for handle in handles {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn every_submitted_task_runs_exactly_once_across_workers() {
        let hits = Arc::new(AtomicUsize::new(0));
        let pool = WorkerPool::new(4, |_| {
            let hits = Arc::clone(&hits);
            move |n: usize| {
                hits.fetch_add(n, Ordering::SeqCst);
            }
        });
        for _ in 0..1000 {
            assert!(pool.submit(1).is_ok());
        }
        pool.join();
        assert_eq!(hits.load(Ordering::SeqCst), 1000);
        assert_eq!(pool.submit(1), Err(1), "closed pool must hand tasks back");
    }

    #[test]
    fn close_drains_queued_tasks_before_workers_exit() {
        // One deliberately slow worker: close() lands while tasks are
        // still queued, and join() must still see all of them run.
        let done = Arc::new(AtomicUsize::new(0));
        let pool = WorkerPool::new(1, |_| {
            let done = Arc::clone(&done);
            move |_task: ()| {
                std::thread::sleep(std::time::Duration::from_millis(2));
                done.fetch_add(1, Ordering::SeqCst);
            }
        });
        for _ in 0..20 {
            assert!(pool.submit(()).is_ok());
        }
        pool.close();
        pool.join();
        assert_eq!(done.load(Ordering::SeqCst), 20);
    }

    #[test]
    fn per_worker_state_is_built_once_and_reused() {
        // The factory runs once per worker; handlers mutate their own
        // state across tasks (the daemon's reusable QueryBlock pattern).
        let builds = Arc::new(AtomicUsize::new(0));
        let counted = Arc::new(AtomicUsize::new(0));
        let pool = WorkerPool::new(2, |_| {
            builds.fetch_add(1, Ordering::SeqCst);
            let counted = Arc::clone(&counted);
            let mut local = 0usize;
            move |n: usize| {
                local += n; // private accumulator, no contention
                counted.fetch_add(local, Ordering::SeqCst);
            }
        });
        for _ in 0..10 {
            assert!(pool.submit(0).is_ok());
        }
        pool.join();
        assert_eq!(builds.load(Ordering::SeqCst), 2);
    }
}
