//! Text preprocessing substrate for TDmatch.
//!
//! The paper (§II) pre-processes every corpus before graph creation:
//! tokenization, stop-word removal and stemming turn raw cell values and
//! sentences into *terms*; a term may span several tokens (§II-D handles
//! multi-token terms with n-grams up to `n = 3`).
//!
//! This crate provides all of those pieces from scratch:
//!
//! * [`mod@tokenize`] — lower-casing, punctuation-aware word splitting;
//! * [`stopwords`] — a built-in English stop-word list;
//! * [`stem`] — a full Porter stemmer;
//! * [`ngrams`] — contiguous n-gram term generation;
//! * [`normalize`] — numeric detection/parsing used by the bucketing merge;
//! * [`distance`] — Levenshtein and Jaccard similarities used in tests and
//!   typo-oriented merging;
//! * [`preprocess`] — the end-to-end [`preprocess::Preprocessor`] pipeline.

pub mod distance;
pub mod ngrams;
pub mod normalize;
pub mod preprocess;
pub mod stem;
pub mod stopwords;
pub mod tokenize;

pub use preprocess::{PreprocessOptions, Preprocessor};
pub use tokenize::tokenize;
