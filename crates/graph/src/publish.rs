//! Crash-safe snapshot publication: write-temp / fsync / rename.
//!
//! Every on-disk snapshot in this workspace (TDZ1 containers, legacy
//! streams) is consumed by long-lived readers that memory-map the file
//! ([`Storage::open`](crate::container::Storage::open)) — so a *torn*
//! file at a published path is the one corruption the CRC layer cannot
//! fully absorb: a daemon that maps a half-written file at startup
//! fails, and one that maps it mid-rewrite can fault. The publication
//! discipline `docs/SERVING.md` specifies closes that hole:
//!
//! 1. write the complete payload to a **same-directory** temp file
//!    (rename is only atomic within a filesystem);
//! 2. `fsync` the temp file, so the payload bytes are durable before
//!    the name ever points at them;
//! 3. `rename(2)` the temp file over the destination — atomic on every
//!    POSIX filesystem: readers see either the old complete file or the
//!    new complete file, never a mixture;
//! 4. `fsync` the parent directory, so the *name change* is durable too
//!    (without it a crash can revert the rename while keeping the data).
//!
//! A crash (including `SIGKILL`) at any point leaves the destination
//! path untouched or fully updated; at worst a `.tmp.*` orphan remains
//! beside it, which later publishes ignore (fresh temp names) and
//! operators may delete freely. The fault-injection suite in
//! `crates/serve/tests/faults.rs` kills writers mid-publish at
//! randomized byte offsets and asserts exactly this.

use std::fs::File;
use std::io;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};

/// Per-process counter making concurrent temp names unique.
static PUBLISH_SEQ: AtomicU64 = AtomicU64::new(0);

/// Atomically replaces (or creates) `path` with bytes produced by
/// `write`.
///
/// `write` receives a fresh temp [`File`] in `path`'s directory; when it
/// returns `Ok`, the file is fsynced and renamed over `path`, and the
/// directory entry is fsynced. On any error — including one returned by
/// `write` itself — the temp file is removed and `path` is left exactly
/// as it was.
///
/// The temp name embeds the destination file name, the process id and a
/// per-process counter, so concurrent publishers (even across processes)
/// never collide on it.
///
/// ```
/// use tdmatch_graph::publish::publish_atomic;
///
/// let path = std::env::temp_dir().join("tdmatch-doc-publish.bin");
/// publish_atomic(&path, |f| {
///     use std::io::Write;
///     f.write_all(b"complete payload")
/// })?;
/// assert_eq!(std::fs::read(&path)?, b"complete payload");
/// # std::fs::remove_file(&path).ok();
/// # Ok::<(), std::io::Error>(())
/// ```
pub fn publish_atomic<E, F>(path: &Path, write: F) -> Result<(), E>
where
    E: From<io::Error>,
    F: FnOnce(&mut File) -> Result<(), E>,
{
    let file_name = path
        .file_name()
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "publish path has no file name"))?
        .to_string_lossy()
        .into_owned();
    let dir = path.parent().filter(|d| !d.as_os_str().is_empty());
    let tmp = path.with_file_name(format!(
        ".{file_name}.tmp.{}.{}",
        std::process::id(),
        PUBLISH_SEQ.fetch_add(1, Ordering::Relaxed),
    ));

    let result = (|| {
        let mut file = File::create(&tmp).map_err(E::from)?;
        write(&mut file)?;
        // Payload durable *before* the rename can expose it.
        file.sync_all().map_err(E::from)?;
        drop(file);
        std::fs::rename(&tmp, path).map_err(E::from)?;
        // Make the rename itself durable: fsync the directory entry.
        // Failure to *open* the directory (exotic filesystems) is not a
        // correctness problem for readers — the rename already happened
        // atomically — so only a failing fsync on an opened dir errors.
        if let Some(dir) = dir {
            if let Ok(d) = File::open(dir) {
                d.sync_all().map_err(E::from)?;
            }
        }
        Ok(())
    })();
    if result.is_err() {
        let _ = std::fs::remove_file(&tmp);
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;

    fn tmpdir(tag: &str) -> std::path::PathBuf {
        let d = std::env::temp_dir().join(format!("tdmatch-publish-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn publishes_new_and_replaces_old() {
        let dir = tmpdir("replace");
        let path = dir.join("snap.bin");
        publish_atomic::<io::Error, _>(&path, |f| f.write_all(b"one")).unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"one");
        publish_atomic::<io::Error, _>(&path, |f| f.write_all(b"two")).unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"two");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn failed_write_leaves_destination_untouched_and_no_temp() {
        let dir = tmpdir("failed");
        let path = dir.join("snap.bin");
        publish_atomic::<io::Error, _>(&path, |f| f.write_all(b"good")).unwrap();
        let err = publish_atomic::<io::Error, _>(&path, |f| {
            f.write_all(b"partial garbage").unwrap();
            Err(io::Error::other("writer failed mid-payload"))
        })
        .unwrap_err();
        assert!(err.to_string().contains("mid-payload"));
        assert_eq!(std::fs::read(&path).unwrap(), b"good", "destination must be untouched");
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().into_string().unwrap())
            .filter(|n| n.contains(".tmp."))
            .collect();
        assert!(leftovers.is_empty(), "temp files left behind: {leftovers:?}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn bare_file_name_publishes_into_cwd() {
        // `path.parent()` is empty for a bare name; the directory fsync
        // is skipped but the write + rename must still work.
        let dir = tmpdir("cwd");
        let path = dir.join("bare.bin");
        publish_atomic::<io::Error, _>(&path, |f| f.write_all(b"x")).unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"x");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn concurrent_publishers_never_tear_the_destination() {
        let dir = tmpdir("concurrent");
        let path = dir.join("snap.bin");
        let payload = |tag: u8| vec![tag; 4096];
        publish_atomic::<io::Error, _>(&path, |f| f.write_all(&payload(0))).unwrap();
        let workers: Vec<_> = (1u8..=4)
            .map(|tag| {
                let path = path.clone();
                std::thread::spawn(move || {
                    for _ in 0..25 {
                        publish_atomic::<io::Error, _>(&path, |f| f.write_all(&vec![tag; 4096]))
                            .unwrap();
                    }
                })
            })
            .collect();
        for _ in 0..200 {
            let bytes = std::fs::read(&path).unwrap();
            assert_eq!(bytes.len(), 4096);
            assert!(bytes.windows(2).all(|w| w[0] == w[1]), "torn read observed");
        }
        for w in workers {
            w.join().unwrap();
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}
