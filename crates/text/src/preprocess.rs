//! End-to-end pre-processing pipeline (§II).
//!
//! Turns raw text (a sentence, a paragraph, a cell value) into the list of
//! *terms* that become data nodes: tokenize → drop stop words → stem →
//! generate n-grams. Stemming is applied per token *before* n-gram
//! formation so that multi-token terms are built over stemmed forms
//! ("The Sixth Sense" → "the six sens" n-grams), maximizing overlap across
//! corpora.

use crate::ngrams::{ngrams, DEFAULT_MAX_N};
use crate::stem::stem;
use crate::stopwords::is_stopword;
use crate::tokenize::tokenize;

/// Configuration of the pre-processing pipeline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PreprocessOptions {
    /// Remove stop words before stemming. Paper default: on.
    pub remove_stopwords: bool,
    /// Apply Porter stemming (one of the §II-C merge techniques). Default on.
    pub stem: bool,
    /// Maximum n-gram order for multi-token terms (§II-D). Default 3.
    pub max_ngram: usize,
}

impl Default for PreprocessOptions {
    fn default() -> Self {
        Self {
            remove_stopwords: true,
            stem: true,
            max_ngram: DEFAULT_MAX_N,
        }
    }
}

/// A reusable pre-processor. Stateless; cheap to clone.
#[derive(Debug, Clone, Default)]
pub struct Preprocessor {
    options: PreprocessOptions,
}

impl Preprocessor {
    /// Creates a pre-processor with the given options.
    pub fn new(options: PreprocessOptions) -> Self {
        Self { options }
    }

    /// The options this pre-processor was built with.
    pub fn options(&self) -> &PreprocessOptions {
        &self.options
    }

    /// Produces the base (unigram) tokens of `text` after stop-word removal
    /// and stemming. This is the token stream used for filtering decisions.
    pub fn base_tokens(&self, text: &str) -> Vec<String> {
        let mut toks = tokenize(text);
        if self.options.remove_stopwords {
            toks.retain(|t| !is_stopword(t));
        }
        if self.options.stem {
            for t in &mut toks {
                *t = stem(t);
            }
        }
        toks
    }

    /// Produces all terms (n-grams over the base tokens) of `text`.
    ///
    /// ```
    /// use tdmatch_text::{Preprocessor, PreprocessOptions};
    /// let p = Preprocessor::new(PreprocessOptions { max_ngram: 2, ..Default::default() });
    /// let terms = p.terms("The Sixth Sense");
    /// assert!(terms.contains(&"sixth sens".to_string()));
    /// ```
    pub fn terms(&self, text: &str) -> Vec<String> {
        let base = self.base_tokens(text);
        ngrams(&base, self.options.max_ngram)
    }

    /// Terms of a whole document given as multiple fields (e.g. a tuple's
    /// cells): n-grams never cross field boundaries.
    pub fn terms_of_fields<'a, I: IntoIterator<Item = &'a str>>(&self, fields: I) -> Vec<String> {
        let mut out = Vec::new();
        for field in fields {
            out.extend(self.terms(field));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_pipeline_stems_and_filters() {
        let p = Preprocessor::default();
        let toks = p.base_tokens("The planning of the audits");
        assert_eq!(toks, vec!["plan", "audit"]);
    }

    #[test]
    fn stopword_removal_can_be_disabled() {
        let p = Preprocessor::new(PreprocessOptions {
            remove_stopwords: false,
            stem: false,
            max_ngram: 1,
        });
        assert_eq!(p.terms("the cat"), vec!["the", "cat"]);
    }

    #[test]
    fn ngrams_do_not_cross_fields() {
        let p = Preprocessor::new(PreprocessOptions {
            remove_stopwords: false,
            stem: false,
            max_ngram: 2,
        });
        let terms = p.terms_of_fields(["alpha", "beta"]);
        assert_eq!(terms, vec!["alpha", "beta"]);
        let joined = p.terms("alpha beta");
        assert!(joined.contains(&"alpha beta".to_string()));
    }

    #[test]
    fn paper_merge_example() {
        // §II-C: stemming merges "planning" (paragraph) with "Plan"
        // (taxonomy node "Plan Do Check Act Steps").
        let p = Preprocessor::default();
        let a = p.base_tokens("planning");
        let b = p.base_tokens("Plan Do Check Act Steps");
        assert!(b.contains(&a[0]));
    }

    #[test]
    fn empty_text() {
        let p = Preprocessor::default();
        assert!(p.terms("").is_empty());
        assert!(p.terms("the of and").is_empty());
    }
}
