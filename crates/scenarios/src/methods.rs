//! One dispatcher for every matching method the paper evaluates.
//!
//! The table benches used to repeat the same positional-argument
//! baseline invocations per scenario; [`Method::run`] centralizes them
//! so a bench is just a scenario plus a method list, and
//! [`ranking_table`] prints the standard ranking-table layout for such
//! a list in one call.

use tdmatch_datasets::Scenario;

use crate::harness::{
    evaluate, print_ranking_header, print_ranking_row, run_wrw, run_wrw_ex, supervised_options,
    MethodRun,
};

/// A matching method from the paper's evaluation sweep. Unsupervised
/// methods ignore the ground truth; supervised ones (`*`-suffixed in
/// the tables) train on it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Method {
    /// S-BE: pre-trained sentence embeddings, no training.
    Sbe,
    /// BM25 lexical ranking.
    Bm25,
    /// Doc2Vec trained on the scenario's own text.
    D2vec,
    /// Word2Vec trained on the scenario's own text.
    W2vec,
    /// W-RW: the paper's graph walk + embedding pipeline, no expansion.
    Wrw,
    /// W-RW-EX: the pipeline with knowledge-base expansion.
    WrwEx,
    /// RANK*: supervised pairwise re-ranker.
    Rank,
    /// DEEP-M*: supervised DeepMatcher-style classifier.
    DeepMatcher,
    /// DITTO*: supervised Ditto-style classifier.
    Ditto,
    /// TAPAS*: supervised TAPAS-style classifier.
    Tapas,
    /// L-BE*: supervised fine-tuned sentence embeddings.
    Lbe,
}

impl Method {
    /// Runs this method on a scenario, ranking the top `k` targets per
    /// query. `seed` seeds the supervised baselines' training (the
    /// unsupervised ones are seeded by the scenario's config).
    pub fn run(self, scenario: &Scenario, k: usize, seed: u64) -> MethodRun {
        let first = &scenario.first;
        let second = &scenario.second;
        match self {
            Method::Sbe => {
                tdmatch_baselines::sbe::run(first, second, &scenario.pretrained, k).into()
            }
            Method::Bm25 => tdmatch_baselines::tfidf::run_bm25(first, second, k).into(),
            Method::D2vec => tdmatch_baselines::d2vec::run(
                first,
                second,
                &tdmatch_baselines::d2vec::D2vecOptions::default(),
                k,
            )
            .into(),
            Method::W2vec => tdmatch_baselines::w2vec::run(
                first,
                second,
                &tdmatch_baselines::w2vec::W2vecOptions::default(),
                k,
            )
            .into(),
            Method::Wrw => run_wrw(scenario, k).0,
            Method::WrwEx => run_wrw_ex(scenario, k).0,
            Method::Rank => tdmatch_baselines::rank::run(
                first,
                second,
                &scenario.ground_truth,
                &scenario.pretrained,
                &supervised_options(seed),
                k,
            )
            .into(),
            Method::DeepMatcher => tdmatch_baselines::supervised::run_deepmatcher(
                first,
                second,
                &scenario.ground_truth,
                &scenario.pretrained,
                &supervised_options(seed),
                k,
            )
            .into(),
            Method::Ditto => tdmatch_baselines::supervised::run_ditto(
                first,
                second,
                &scenario.ground_truth,
                &scenario.pretrained,
                &supervised_options(seed),
                k,
            )
            .into(),
            Method::Tapas => tdmatch_baselines::supervised::run_tapas(
                first,
                second,
                &scenario.ground_truth,
                &scenario.pretrained,
                &supervised_options(seed),
                k,
            )
            .into(),
            Method::Lbe => tdmatch_baselines::supervised::run_lbe(
                first,
                second,
                &scenario.ground_truth,
                &scenario.pretrained,
                &supervised_options(seed),
                k,
            )
            .into(),
        }
    }
}

/// Runs each method on the scenario at [`TABLE_K`](crate::TABLE_K)
/// depth and prints one standard ranking table (header + one metrics
/// row per method). Returns the runs for callers that also want the
/// raw rankings.
pub fn ranking_table(
    title: &str,
    scenario: &Scenario,
    methods: &[Method],
    seed: u64,
) -> Vec<MethodRun> {
    print_ranking_header(title);
    methods
        .iter()
        .map(|&m| {
            let run = m.run(scenario, crate::harness::TABLE_K, seed);
            print_ranking_row(&run.method.clone(), &evaluate(&run, scenario));
            run
        })
        .collect()
}
