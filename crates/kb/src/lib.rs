//! External-resource substrate for TDmatch.
//!
//! The paper plugs three kinds of external resources into the pipeline:
//!
//! 1. **Knowledge bases** for graph expansion (§III-A): DBpedia for
//!    entity-centric corpora (IMDb), ConceptNet/WordNet for concept-heavy
//!    ones. We model them behind the [`KnowledgeBase`] trait and provide
//!    synthetic implementations built from the same lexicons as the
//!    synthetic datasets — so expansion can genuinely add useful
//!    cross-corpus paths (and noise for compression to prune).
//! 2. **Synonym dictionaries** for node merging (§II-C): a synthetic
//!    WordNet whose synonym groups mirror the generators' vocabulary.
//! 3. **Pre-trained embeddings** (Wikipedia2Vec for merging, SentenceBERT
//!    for the S-BE baseline): simulated by [`pretrained::PretrainedModel`],
//!    a deterministic vector space that knows *general* vocabulary and
//!    popular entities but is out-of-vocabulary on domain-specific terms —
//!    reproducing the paper's central observation that pre-trained
//!    resources fail on specialised corpora.

pub mod conceptnet;
pub mod dbpedia;
pub mod lexicon;
pub mod pretrained;
pub mod wordnet;

pub use conceptnet::SyntheticConceptNet;
pub use dbpedia::SyntheticDbpedia;
pub use pretrained::PretrainedModel;
pub use wordnet::SyntheticWordNet;

/// A single relation fetched from an external resource.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Relation {
    /// Predicate label, e.g. `relatedTo`, `starringOf`, `spouse`.
    pub predicate: String,
    /// The object term/entity the subject is related to.
    pub object: String,
}

impl Relation {
    /// Convenience constructor.
    pub fn new(predicate: impl Into<String>, object: impl Into<String>) -> Self {
        Self {
            predicate: predicate.into(),
            object: object.into(),
        }
    }
}

/// An external resource that can be queried for a node's relations
/// (Alg. 2: "relations ← all connections of node in E").
pub trait KnowledgeBase {
    /// All relations whose subject is `term`. Empty when unknown.
    fn relations(&self, term: &str) -> Vec<Relation>;

    /// Number of distinct subjects (diagnostics).
    fn subject_count(&self) -> usize;

    /// Resource name for logs/reports.
    fn name(&self) -> &str;
}
