//! Table IV — quality of match results for the Politifact text-to-text
//! scenario.
//!
//! Paper shape: W-RW(-EX) beats the unsupervised S-BE on all measures but
//! sits *below* the supervised RANK* — generic claim language is where
//! pre-training plus supervision pays off.

use tdmatch_bench::{
    evaluate, print_ranking_header, print_ranking_row, run_wrw, run_wrw_ex, scale_from_env,
    supervised_options, MethodRun, TABLE_K,
};
use tdmatch_datasets::claims;

fn main() {
    let scenario = claims::politifact(scale_from_env(), 42);
    print_ranking_header("Table IV — Politifact");

    let sbe: MethodRun = tdmatch_baselines::sbe::run(
        &scenario.first,
        &scenario.second,
        &scenario.pretrained,
        TABLE_K,
    )
    .into();
    print_ranking_row(&sbe.method.clone(), &evaluate(&sbe, &scenario));


    let bm25: MethodRun =
        tdmatch_baselines::tfidf::run_bm25(&scenario.first, &scenario.second, TABLE_K).into();
    print_ranking_row(&bm25.method.clone(), &evaluate(&bm25, &scenario));

    let (wrw, _) = run_wrw(&scenario, TABLE_K);
    print_ranking_row(&wrw.method.clone(), &evaluate(&wrw, &scenario));

    let (wrw_ex, _) = run_wrw_ex(&scenario, TABLE_K);
    print_ranking_row(&wrw_ex.method.clone(), &evaluate(&wrw_ex, &scenario));

    let rank: MethodRun = tdmatch_baselines::rank::run(
        &scenario.first,
        &scenario.second,
        &scenario.ground_truth,
        &scenario.pretrained,
        &supervised_options(42),
        TABLE_K,
    )
    .into();
    print_ranking_row(&rank.method.clone(), &evaluate(&rank, &scenario));
}
