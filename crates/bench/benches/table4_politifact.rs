//! Table IV — quality of match results for the Politifact text-to-text
//! scenario.
//!
//! Paper shape: W-RW(-EX) beats the unsupervised S-BE on all measures but
//! sits *below* the supervised RANK* — generic claim language is where
//! pre-training plus supervision pays off.

use tdmatch_bench::{ranking_table, registry, scale_from_env, Method};

fn main() {
    let scenario = registry::by_key("politifact")
        .expect("registered")
        .generate(scale_from_env(), 42);
    ranking_table(
        "Table IV — Politifact",
        &scenario,
        &[
            Method::Sbe,
            Method::Bm25,
            Method::Wrw,
            Method::WrwEx,
            Method::Rank,
        ],
        42,
    );
}
