//! Property-based tests for graph creation (Alg. 1) invariants.

use proptest::prelude::*;

use tdmatch_core::artifact::MatchArtifact;
use tdmatch_core::builder::{build_graph, doc_label};
use tdmatch_core::config::{FilterMode, TdConfig};
use tdmatch_core::corpus::{Corpus, Table, TextCorpus};
use tdmatch_graph::CorpusSide;

/// A word pool small enough to force overlap between corpora.
fn word(i: usize) -> String {
    format!("w{}", i % 12)
}

fn table_from(rows_spec: &[Vec<usize>]) -> Corpus {
    let n_cols = rows_spec.iter().map(|r| r.len()).max().unwrap_or(1);
    let columns: Vec<String> = (0..n_cols).map(|j| format!("c{j}")).collect();
    let rows: Vec<Vec<String>> = rows_spec
        .iter()
        .map(|r| {
            (0..n_cols)
                .map(|j| word(r.get(j).copied().unwrap_or(j)))
                .collect()
        })
        .collect();
    Corpus::Table(Table::new("t", columns, rows))
}

fn text_from(docs_spec: &[Vec<usize>]) -> Corpus {
    Corpus::Text(TextCorpus::new(
        docs_spec
            .iter()
            .map(|d| {
                d.iter()
                    .map(|&i| word(i))
                    .collect::<Vec<_>>()
                    .join(" ")
            })
            .collect(),
    ))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Algorithm 1 invariants: every document gets a metadata node; no
    /// metadata-metadata edges cross corpora; every term node is reachable
    /// from at least one metadata node.
    #[test]
    fn builder_invariants(
        rows in prop::collection::vec(
            prop::collection::vec(0usize..12, 1..4),
            1..6,
        ),
        docs in prop::collection::vec(
            prop::collection::vec(0usize..12, 1..6),
            1..6,
        ),
        filtering in prop::sample::select(vec![
            FilterMode::None,
            FilterMode::Intersect,
            FilterMode::TfIdf { k: 3 },
        ]),
    ) {
        let first = table_from(&rows);
        let second = text_from(&docs);
        let config = TdConfig {
            filtering,
            ..TdConfig::for_tests()
        };
        let built = build_graph(&first, &second, &config, None);
        let g = &built.graph;

        // Every document has its metadata node.
        for i in 0..first.len() {
            prop_assert!(g.meta_node(&doc_label(CorpusSide::First, i)).is_some());
        }
        for i in 0..second.len() {
            prop_assert!(g.meta_node(&doc_label(CorpusSide::Second, i)).is_some());
        }

        // No cross-corpus metadata edges.
        for (a, b) in g.edges() {
            let (ka, kb) = (g.kind(a), g.kind(b));
            if ka.is_metadata() && kb.is_metadata() {
                prop_assert_eq!(ka.side(), kb.side());
            }
        }

        // Data nodes all touch at least one metadata node (rows/docs are
        // non-empty, so every term was introduced through a document).
        for n in g.nodes() {
            if !g.kind(n).is_metadata() {
                prop_assert!(
                    g.neighbors(n).iter().any(|&m| g.kind(m).is_metadata()),
                    "orphan term {:?}",
                    g.label(n)
                );
            }
        }
    }

    /// Intersect never yields *more* term nodes than no filtering.
    #[test]
    fn intersect_is_a_filter(
        rows in prop::collection::vec(prop::collection::vec(0usize..12, 1..4), 1..5),
        docs in prop::collection::vec(prop::collection::vec(0usize..12, 1..6), 1..5),
    ) {
        let first = table_from(&rows);
        let second = text_from(&docs);
        let base = TdConfig::for_tests();
        let none = build_graph(
            &first,
            &second,
            &TdConfig { filtering: FilterMode::None, ..base.clone() },
            None,
        );
        let inter = build_graph(
            &first,
            &second,
            &TdConfig { filtering: FilterMode::Intersect, ..base },
            None,
        );
        prop_assert!(inter.stats.terms_created <= none.stats.terms_created);
    }

    /// Graph creation is deterministic.
    #[test]
    fn builder_deterministic(
        rows in prop::collection::vec(prop::collection::vec(0usize..12, 1..3), 1..4),
        docs in prop::collection::vec(prop::collection::vec(0usize..12, 1..5), 1..4),
    ) {
        let first = table_from(&rows);
        let second = text_from(&docs);
        let config = TdConfig::for_tests();
        let a = build_graph(&first, &second, &config, None);
        let b = build_graph(&first, &second, &config, None);
        prop_assert_eq!(a.graph.node_count(), b.graph.node_count());
        prop_assert_eq!(a.graph.edge_count(), b.graph.edge_count());
    }

    /// Any artifact survives a serialize → deserialize roundtrip exactly,
    /// and its matching output is unchanged.
    #[test]
    fn artifact_roundtrip_is_lossless(
        dim in 1usize..6,
        n_terms in 0usize..8,
        n_first in 1usize..6,
        n_second in 1usize..4,
        fill in prop::collection::vec(-1.0f32..1.0, 0..400),
    ) {
        let mut it = fill.into_iter().cycle();
        let mut vec_of = |dim: usize| -> Vec<f32> {
            (0..dim).map(|_| it.next().unwrap_or(0.5)).collect()
        };
        let terms: Vec<(String, Vec<f32>)> = (0..n_terms)
            .map(|i| (format!("term{i}"), vec_of(dim)))
            .collect();
        let first: Vec<Option<Vec<f32>>> = (0..n_first)
            .map(|i| if i % 3 == 2 { None } else { Some(vec_of(dim)) })
            .collect();
        let second: Vec<Option<Vec<f32>>> = (0..n_second)
            .map(|_| Some(vec_of(dim)))
            .collect();
        let a = MatchArtifact::new(dim, terms, first, second);
        let mut buf = Vec::new();
        a.write_to(&mut buf).unwrap();
        let b = MatchArtifact::read_from(&mut buf.as_slice()).unwrap();
        prop_assert_eq!(&a, &b);
        let (ra, rb) = (a.match_top_k(5), b.match_top_k(5));
        for (x, y) in ra.iter().zip(&rb) {
            prop_assert_eq!(x.target_indices(), y.target_indices());
        }
    }

    /// The zero-copy load path is ranking-identical to the live matcher:
    /// an artifact written and reloaded from bytes (borrowed matrices)
    /// returns exactly the rankings of matching the raw rows directly —
    /// which is what `TdModel::match_top_k` computes — with no per-call
    /// normalization.
    #[test]
    fn zero_copy_artifact_matches_like_live_model(
        dim in 1usize..8,
        n_first in 1usize..8,
        n_second in 1usize..6,
        k in 1usize..10,
        fill in prop::collection::vec(-1.0f32..1.0, 0..400),
        missing in prop::collection::vec(0usize..8, 0..4),
    ) {
        use tdmatch_core::matcher::top_k_matches;
        use tdmatch_graph::container::Storage;

        let mut it = fill.into_iter().cycle();
        let mut vec_of = || -> Vec<f32> {
            (0..dim).map(|_| it.next().unwrap_or(0.5)).collect()
        };
        let first: Vec<Option<Vec<f32>>> = (0..n_first)
            .map(|i| (!missing.contains(&i)).then(&mut vec_of))
            .collect();
        let second: Vec<Option<Vec<f32>>> = (0..n_second)
            .map(|_| Some(vec_of()))
            .collect();

        // What the live model computes: normalize-once + dot-many over
        // the same raw rows.
        let live = top_k_matches(&second, &first, k, None, None);

        let a = MatchArtifact::new(dim, Vec::new(), first, second);
        let mut buf = Vec::new();
        a.write_to(&mut buf).unwrap();
        let storage = Storage::from_bytes(&buf);
        let loaded = MatchArtifact::from_storage(&storage).unwrap();
        prop_assert!(loaded.is_zero_copy());

        let warm = loaded.match_top_k(k);
        prop_assert_eq!(live.len(), warm.len());
        for (l, w) in live.iter().zip(&warm) {
            // Indices and tie-breaks exact; scores bit-identical (both
            // paths run the same normalized dot kernel).
            prop_assert_eq!(l, w);
        }
    }

    /// Legacy v1 streams (raw, un-normalized rows) decode and upgrade
    /// into exactly the artifact built from the same raw parts.
    #[test]
    fn legacy_v1_stream_upgrades_losslessly(
        dim in 1usize..6,
        n_terms in 0usize..5,
        n_first in 0usize..6,
        n_second in 0usize..4,
        fill in prop::collection::vec(-1.0f32..1.0, 0..300),
    ) {
        use tdmatch_graph::persist::{crc32, put_f32s, put_u32};

        let mut it = fill.into_iter().cycle();
        let mut vec_of = || -> Vec<f32> {
            (0..dim).map(|_| it.next().unwrap_or(0.25)).collect()
        };
        let terms: Vec<(String, Vec<f32>)> = (0..n_terms)
            .map(|i| (format!("t{i}"), vec_of()))
            .collect();
        let first: Vec<Option<Vec<f32>>> = (0..n_first)
            .map(|i| (i % 3 != 2).then(&mut vec_of))
            .collect();
        let second: Vec<Option<Vec<f32>>> = (0..n_second)
            .map(|_| Some(vec_of()))
            .collect();

        // Encode the v1 stream exactly like the historical writer did:
        // raw rows, whole-stream CRC.
        let mut buf: Vec<u8> = Vec::new();
        buf.extend_from_slice(b"TDM1");
        put_u32(&mut buf, 1);
        put_u32(&mut buf, dim as u32);
        put_u32(&mut buf, terms.len() as u32);
        for (label, vec) in &terms {
            put_u32(&mut buf, label.len() as u32);
            buf.extend_from_slice(label.as_bytes());
            put_f32s(&mut buf, vec);
        }
        for side in [&first, &second] {
            put_u32(&mut buf, side.len() as u32);
            for doc in side.iter() {
                match doc {
                    Some(v) => {
                        buf.push(1);
                        put_f32s(&mut buf, v);
                    }
                    None => buf.push(0),
                }
            }
        }
        let crc = crc32(&buf);
        put_u32(&mut buf, crc);

        let upgraded = MatchArtifact::read_from(&mut buf.as_slice()).unwrap();
        let direct = MatchArtifact::new(dim, terms, first, second);
        // Same raw inputs → same normalized matrices, bit for bit.
        prop_assert_eq!(&upgraded, &direct);
        let (ra, rb) = (upgraded.match_top_k(5), direct.match_top_k(5));
        prop_assert_eq!(ra, rb);
    }

    /// Every corrupted byte of an artifact is detected at load time.
    #[test]
    fn artifact_corruption_never_loads_silently(
        flip_byte in 0usize..200,
        flip_bit in 0u8..8,
    ) {
        let a = MatchArtifact::new(
            2,
            vec![("x".to_string(), vec![0.25, -0.5])],
            vec![Some(vec![1.0, 0.0]), None],
            vec![Some(vec![0.0, 1.0])],
        );
        let mut buf = Vec::new();
        a.write_to(&mut buf).unwrap();
        let pos = flip_byte % buf.len();
        buf[pos] ^= 1 << flip_bit;
        match MatchArtifact::read_from(&mut buf.as_slice()) {
            Err(_) => {}
            Ok(loaded) => prop_assert!(
                false,
                "corrupted byte {pos} loaded silently: {loaded:?}"
            ),
        }
    }
}
