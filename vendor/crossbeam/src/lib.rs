//! Vendored, dependency-free stand-in for the `crossbeam` crate.
//!
//! Only [`thread::scope`] is provided — the single API this workspace
//! uses — implemented over `std::thread::scope` (stable since Rust 1.63),
//! with crossbeam's calling convention: the scope closure and every spawn
//! closure receive a [`thread::Scope`] handle, and `scope` returns a
//! `Result` so call sites can `.expect()` it.

pub mod thread {
    use std::any::Any;

    /// Handle for spawning threads tied to the enclosing scope.
    ///
    /// `Copy`, so closures can capture it by value and spawn nested work.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Clone for Scope<'scope, 'env> {
        fn clone(&self) -> Self {
            *self
        }
    }

    impl<'scope, 'env> Copy for Scope<'scope, 'env> {}

    /// Owned handle to a scoped thread; join before the scope ends or let
    /// the scope join it implicitly.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Waits for the thread and returns its result (`Err` holds the
        /// panic payload, as with `std::thread::JoinHandle::join`).
        pub fn join(self) -> Result<T, Box<dyn Any + Send + 'static>> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread. The closure receives the scope handle so
        /// it can spawn further threads, mirroring crossbeam's signature.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            ScopedJoinHandle {
                inner: inner.spawn(move || f(&Scope { inner })),
            }
        }
    }

    /// Runs `f` with a scope handle; all spawned threads are joined before
    /// this returns. Child panics propagate as panics (the std behaviour),
    /// so the `Ok` wrapper exists purely for crossbeam API compatibility.
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn scoped_threads_borrow_locals() {
        let counter = AtomicUsize::new(0);
        let counter = &counter;
        let data = [1usize, 2, 3, 4];
        super::thread::scope(|scope| {
            let handles: Vec<_> = data
                .chunks(2)
                .map(|chunk| {
                    scope.spawn(move |_| {
                        counter.fetch_add(chunk.iter().sum::<usize>(), Ordering::Relaxed);
                        chunk.len()
                    })
                })
                .collect();
            for h in handles {
                assert_eq!(h.join().expect("worker panicked"), 2);
            }
        })
        .expect("scope failed");
        assert_eq!(counter.load(Ordering::Relaxed), 10);
    }

    #[test]
    fn nested_spawn_through_the_handle() {
        let hit = AtomicUsize::new(0);
        super::thread::scope(|scope| {
            scope.spawn(|inner| {
                inner.spawn(|_| hit.fetch_add(1, Ordering::Relaxed));
            });
        })
        .expect("scope failed");
        assert_eq!(hit.load(Ordering::Relaxed), 1);
    }
}
