//! Extension ablation — candidate blocking (none vs inverted-index vs
//! LSH).
//!
//! The paper's conclusion names "blocking to speed up performance" as
//! future work. This bench compares exhaustive cosine scoring against the
//! two blockers on quality (MAP@5) and match time. Expected shape: the
//! inverted token index is the cheapest and loses almost nothing on these
//! lexically overlapping corpora; multiprobe LSH stays within a few MAP
//! points of exhaustive scoring with a modest speedup at this corpus size
//! (hash probing is a fixed per-query cost, so its advantage grows with
//! target-corpus size — at `Small` scale it is visible but not dramatic).

use tdmatch_bench::{bench_config, evaluate, run_with_config};
use tdmatch_core::config::BlockingMode;
use tdmatch_core::lsh::LshConfig;
use tdmatch_datasets::corona::SentenceKind;
use tdmatch_bench::scale_from_env;
use tdmatch_datasets::{claims, corona, imdb, Scenario};

fn modes() -> Vec<(&'static str, BlockingMode)> {
    vec![
        ("none", BlockingMode::None),
        ("inverted", BlockingMode::InvertedIndex),
        (
            "lsh",
            BlockingMode::Lsh(LshConfig {
                tables: 8,
                bits: 10,
                probes: 2,
                seed: 42,
            }),
        ),
    ]
}

fn main() {
    let scale = scale_from_env();
    let scenarios: Vec<Scenario> = vec![
        imdb::generate(scale, 42, true),
        corona::generate(scale, 42, SentenceKind::Generated),
        claims::snopes(scale, 42),
    ];
    let modes = modes();
    println!("\n=== Ablation — blocking (MAP@5 / match ms) ===");
    print!("{:<12}", "scenario");
    for (name, _) in &modes {
        print!(" {name:>16}");
    }
    println!();
    for scenario in &scenarios {
        print!("{:<12}", scenario.name);
        for (_, mode) in &modes {
            let mut config = bench_config(&scenario.config);
            config.blocking = *mode;
            let (run, _) = run_with_config(scenario, config, 20, false);
            let m = evaluate(&run, scenario);
            print!(" {:>8.3}/{:<7.1}", m.map_at[1], run.test_secs * 1e3);
        }
        println!();
    }
}
