//! Table III — Exact and Node P/R/F for the Audit text-to-structured-text
//! scenario at K ∈ {1, 3, 5, 10}.
//!
//! Methods: D2VEC, S-BE, W-RW, W-RW-EX (unsupervised) and RANK*, L-BE*
//! (supervised). Paper shape: the task is hard in absolute terms; W-RW-EX
//! leads the unsupervised field; D2VEC (trained on the audit text) beats
//! the pre-trained S-BE because the vocabulary is domain specific; L-BE*
//! is competitive only at K = 1.

use tdmatch_bench::{
    audit_eval, print_prf_header, print_prf_row, run_wrw, run_wrw_ex, scale_from_env,
    supervised_options, MethodRun,
};
use tdmatch_datasets::audit;

const KS: [usize; 4] = [1, 3, 5, 10];

fn main() {
    let scale = scale_from_env();
    let scenario = audit::generate(scale, 42);
    print_prf_header("Table III — Audit: exact and node scores");

    let d2vec: MethodRun = tdmatch_baselines::d2vec::run(
        &scenario.first,
        &scenario.second,
        &tdmatch_baselines::d2vec::D2vecOptions::default(),
        10,
    )
    .into();
    let sbe: MethodRun = tdmatch_baselines::sbe::run(
        &scenario.first,
        &scenario.second,
        &scenario.pretrained,
        10,
    )
    .into();
    let (wrw, _) = run_wrw(&scenario, 10);
    let (wrw_ex, _) = run_wrw_ex(&scenario, 10);
    let opts = supervised_options(42);
    let rank: MethodRun = tdmatch_baselines::rank::run(
        &scenario.first,
        &scenario.second,
        &scenario.ground_truth,
        &scenario.pretrained,
        &opts,
        10,
    )
    .into();
    let lbe: MethodRun = tdmatch_baselines::supervised::run_lbe(
        &scenario.first,
        &scenario.second,
        &scenario.ground_truth,
        &scenario.pretrained,
        &opts,
        10,
    )
    .into();

    for k in KS {
        for run in [&d2vec, &sbe, &wrw, &wrw_ex, &rank, &lbe] {
            let (exact, node) = audit_eval(run, &scenario, k);
            print_prf_row(k, &run.method, &exact, &node);
        }
        println!("{}", "-".repeat(66));
    }
}
