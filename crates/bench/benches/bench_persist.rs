//! Persistence recorder: cold pipeline fit vs warm artifact load.
//!
//! The pipeline is fit-once / match-many, so the number that matters for
//! serving is not how fast a fit is but how fast a *saved* fit comes
//! back. This recorder measures, on a `fig8_scaling`-sized STS workload:
//!
//! * **cold** — graph build + walks + Word2Vec training + normalization
//!   (`TdMatch::fit`), the price of not having a snapshot;
//! * **warm** — `TDZ1` container bytes → zero-copy `MatchArtifact`
//!   (`from_storage`: borrowed matrices, no re-normalization), plus the
//!   legacy `TDM1` decode-and-upgrade path for comparison;
//! * **load-then-match** — warm load followed by a full `match_top_k`
//!   sweep, i.e. end-to-end time-to-first-ranking from bytes;
//! * **CSR snapshot** — freeze-from-graph vs zero-copy snapshot load.
//!
//! The warm rankings are asserted identical to the live model's before
//! anything is recorded. Results land in `BENCH_persist.json` at the
//! repository root so the warm-start trajectory is tracked from PR to PR.
//!
//! Run with `cargo bench -p tdmatch-bench --bench bench_persist`.
//! `TDMATCH_BENCH_COPIES` (default 2) scales the corpus pair like
//! Figure 8's union-of-scenarios construction; `TDMATCH_SCALE` /
//! `TDMATCH_DIM` / … behave as in the other recorders.

use std::time::Instant;

use tdmatch_bench::alloc_probe::{AllocProbe, CountingAlloc};
use tdmatch_bench::bench_config;
use tdmatch_core::artifact::MatchArtifact;
use tdmatch_core::corpus::{Corpus, TextCorpus};
use tdmatch_core::pipeline::TdMatch;
use tdmatch_datasets::{sts, Scale};
use tdmatch_graph::container::Storage;
use tdmatch_graph::{ContainerWriter, CsrGraph};

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

struct LoadStats {
    secs: f64,
    allocations: u64,
    peak_bytes: u64,
}

fn json_load_stats(s: &LoadStats) -> String {
    format!(
        "{{\"secs\": {:.6}, \"allocations\": {}, \"peak_bytes\": {}}}",
        s.secs, s.allocations, s.peak_bytes,
    )
}

/// Best-of-N wall time + first-run allocation counters.
fn measure<T, F: FnMut() -> T>(reps: usize, mut f: F) -> (T, LoadStats) {
    let probe = AllocProbe::start();
    let t = Instant::now();
    let out = f();
    let mut secs = t.elapsed().as_secs_f64();
    let (allocations, peak_bytes) = probe.finish();
    for _ in 1..reps {
        let t = Instant::now();
        std::hint::black_box(f());
        secs = secs.min(t.elapsed().as_secs_f64());
    }
    (
        out,
        LoadStats {
            secs,
            allocations,
            peak_bytes,
        },
    )
}

fn main() {
    let copies: usize = std::env::var("TDMATCH_BENCH_COPIES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(2);
    let k = 20usize;
    const REPS: usize = 5;

    // Figure-8-sized corpus pair: a union of independently seeded STS
    // corpora, exactly like fig8_scaling / bench_walks build theirs.
    let mut first_docs = Vec::new();
    let mut second_docs = Vec::new();
    for seed in 0..copies as u64 {
        let s = sts::generate(Scale::Small, 100 + seed, 2);
        let Corpus::Text(f) = s.first else { unreachable!() };
        let Corpus::Text(snd) = s.second else { unreachable!() };
        first_docs.extend(f.docs);
        second_docs.extend(snd.docs);
    }
    let first = Corpus::Text(TextCorpus::new(first_docs));
    let second = Corpus::Text(TextCorpus::new(second_docs));
    let base = sts::generate(Scale::Tiny, 1, 2);
    let config = bench_config(&base.config);
    let dim = config.dim;
    println!(
        "persist workload: {} targets × {} queries, dim {dim}, k {k} ({copies} copies)",
        first.len(),
        second.len(),
    );

    // --- Cold: the full fit (build + walks + train + normalize) --------
    let trainer = TdMatch::new(config);
    let t = Instant::now();
    let model = trainer.fit(&first, &second).expect("pipeline fit failed");
    let cold_secs = t.elapsed().as_secs_f64();
    let live = model.match_top_k(k);

    // --- Artifact save (v2 container + legacy v1 stream) ---------------
    let artifact = model.artifact();
    let t = Instant::now();
    let mut v2_bytes = Vec::new();
    artifact.write_to(&mut v2_bytes).unwrap();
    let save_secs = t.elapsed().as_secs_f64();
    let mut v1_bytes = Vec::new();
    artifact.write_to_v1(&mut v1_bytes).unwrap();

    // --- Warm: zero-copy container load vs legacy decode --------------
    let (warm, v2_load) = measure(REPS, || {
        let storage = Storage::from_bytes(&v2_bytes);
        MatchArtifact::from_storage(&storage).unwrap()
    });
    assert!(warm.is_zero_copy(), "v2 load fell off the zero-copy path");
    let (_, v1_load) = measure(REPS, || {
        MatchArtifact::read_from(&mut v1_bytes.as_slice()).unwrap()
    });

    // The warm artifact must rank exactly like the live model.
    let warm_results = warm.match_top_k(k);
    assert_eq!(live, warm_results, "warm artifact diverged from the live model");

    // --- Load-then-match: time-to-first-ranking from bytes -------------
    let pairs = (first.len() * second.len()) as f64;
    let (_, load_match) = measure(REPS, || {
        let storage = Storage::from_bytes(&v2_bytes);
        let a = MatchArtifact::from_storage(&storage).unwrap();
        a.match_top_k(k)
    });

    // --- CSR snapshot: cold (build graph + freeze) vs zero-copy load ----
    // The cold path to a walkable CsrGraph from scratch is graph
    // creation plus the freeze; the snapshot replaces both.
    let (csr, csr_cold) = measure(1, || {
        let built =
            tdmatch_core::builder::build_graph(&first, &second, trainer.config(), None);
        CsrGraph::from_graph(&built.graph)
    });
    let mut w = ContainerWriter::new();
    csr.write_sections(&mut w);
    let csr_bytes = w.finish();
    let (_, csr_load) = measure(REPS, || {
        let storage = Storage::from_bytes(&csr_bytes);
        let c = storage.container().unwrap();
        CsrGraph::from_sections(&storage, &c).unwrap()
    });

    let speedup_warm_vs_cold = cold_secs / v2_load.secs;
    let speedup_v2_vs_v1 = v1_load.secs / v2_load.secs;
    let speedup_csr = csr_cold.secs / csr_load.secs;
    println!(
        "cold fit: {cold_secs:.3}s | warm v2 load: {:.6}s ({speedup_warm_vs_cold:.0}x) | \
         v1 load: {:.6}s (v2 is {speedup_v2_vs_v1:.1}x) | load+match: {:.4}s \
         ({:.1}M pairs/s) | csr build+freeze {:.4}s vs load {:.6}s ({speedup_csr:.1}x)",
        v2_load.secs,
        v1_load.secs,
        load_match.secs,
        pairs / load_match.secs / 1e6,
        csr_cold.secs,
        csr_load.secs,
    );
    assert!(
        speedup_warm_vs_cold >= 10.0,
        "warm load regressed: only {speedup_warm_vs_cold:.1}x faster than the cold fit"
    );

    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"persistence\",\n",
            "  \"workload\": {{\"targets\": {}, \"queries\": {}, \"dim\": {}, \"k\": {}, ",
            "\"copies\": {}}},\n",
            "  \"cold_fit_secs\": {:.6},\n",
            "  \"artifact_bytes\": {},\n",
            "  \"artifact_save_secs\": {:.6},\n",
            "  \"warm_load_v2\": {},\n",
            "  \"warm_load_v1_legacy\": {},\n",
            "  \"load_then_match\": {{\"secs\": {:.6}, \"pairs_per_sec\": {:.1}}},\n",
            "  \"csr_snapshot\": {{\"bytes\": {}, \"build_freeze_secs\": {:.6}, ",
            "\"load_secs\": {:.6}}},\n",
            "  \"speedup_warm_vs_cold\": {:.1},\n",
            "  \"speedup_v2_vs_v1_load\": {:.2},\n",
            "  \"speedup_csr_load_vs_build\": {:.2}\n",
            "}}\n"
        ),
        first.len(),
        second.len(),
        dim,
        k,
        copies,
        cold_secs,
        v2_bytes.len(),
        save_secs,
        json_load_stats(&v2_load),
        json_load_stats(&v1_load),
        load_match.secs,
        pairs / load_match.secs,
        csr_bytes.len(),
        csr_cold.secs,
        csr_load.secs,
        speedup_warm_vs_cold,
        speedup_v2_vs_v1,
        speedup_csr,
    );
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_persist.json");
    std::fs::write(out, &json).expect("write BENCH_persist.json");
    println!("wrote {out}");
}
