//! End-to-end ANN serving: a daemon over an indexed artifact answers
//! ANN-mode queries bit-identically to the exact scan when the pool
//! covers the corpus, honors per-request mode overrides, counts
//! retrieval modes in its stats, and falls back to the exact scan when
//! the artifact carries no index.

#![cfg(unix)]

use std::path::PathBuf;

use tdmatch_core::artifact::MatchArtifact;
use tdmatch_core::serving::Matcher;
use tdmatch_embed::ann::HnswParams;
use tdmatch_serve::client::Client;
use tdmatch_serve::server::{ServeOptions, Server};

fn xorshift(state: &mut u64) -> u64 {
    *state ^= *state >> 12;
    *state ^= *state << 25;
    *state ^= *state >> 27;
    state.wrapping_mul(0x2545_F491_4F6C_DD1D)
}

/// A synthetic artifact with `targets` first-corpus rows (some missing)
/// and a persisted HNSW index over them.
fn indexed_artifact(targets: usize, dim: usize) -> MatchArtifact {
    let mut state = 0x5eed_1234_u64;
    let row = |state: &mut u64| -> Vec<f32> {
        (0..dim)
            .map(|_| (xorshift(state) >> 40) as f32 / (1u64 << 24) as f32 - 0.5)
            .collect()
    };
    let first: Vec<Option<Vec<f32>>> = (0..targets)
        .map(|i| (i % 13 != 5).then(|| row(&mut state)))
        .collect();
    let second: Vec<Option<Vec<f32>>> = (0..4).map(|_| Some(row(&mut state))).collect();
    let vocab = vec![
        ("alpha".to_string(), row(&mut state)),
        ("beta".to_string(), row(&mut state)),
    ];
    let mut artifact = MatchArtifact::new(dim, vocab, first, second);
    artifact.build_ann(&HnswParams::default());
    artifact
}

fn socket_path(tag: &str) -> PathBuf {
    let path = std::env::temp_dir().join(format!(
        "tdmatch-ann-{tag}-{}.sock",
        std::process::id()
    ));
    std::fs::remove_file(&path).ok();
    path
}

fn bits(ranked: &[(usize, f32)]) -> Vec<(usize, u32)> {
    ranked.iter().map(|&(t, s)| (t, s.to_bits())).collect()
}

#[test]
fn daemon_ann_mode_rescoring_overrides_and_counters() {
    let artifact = indexed_artifact(200, 8);
    let reference = Matcher::new(artifact.clone());
    let exact: Vec<_> = (0..2)
        .map(|q| reference.query_by_id(q, 5).expect("doc exists"))
        .collect();

    let socket = socket_path("modes");
    // ANN is the daemon default; the pool covers the whole corpus, so
    // every ANN answer must be bit-identical to the exact scan.
    let server = Server::start(
        Matcher::new(artifact),
        ServeOptions::at(&socket).ann_pool(1000),
    )
    .expect("daemon starts");

    let mut client = Client::connect(&socket).expect("connect");
    for (q, want) in exact.iter().enumerate() {
        let (got, _) = client.query_id(q, 5).expect("ann query");
        assert_eq!(bits(&got), bits(want), "query {q} under default ANN mode");
    }
    // Per-request override: force the exact path on an ANN daemon.
    client.set_ann(Some(false));
    let (got, _) = client.query_id(0, 5).expect("exact query");
    assert_eq!(bits(&got), bits(&exact[0]));
    // And opt back into ANN explicitly.
    client.set_ann(Some(true));
    let (got, _) = client.query_id(1, 5).expect("ann query");
    assert_eq!(bits(&got), bits(&exact[1]));

    let stats = client.stats().expect("stats");
    assert_eq!(stats.ann_queries, 3, "two defaulted + one explicit ANN");
    assert_eq!(stats.exact_queries, 1, "one forced-exact");
    // Each ANN query pooled every valid row (pool ≥ corpus).
    assert!(stats.mean_pool() > 100.0, "mean pool {}", stats.mean_pool());

    client.shutdown().expect("shutdown");
    server.join();
}

#[test]
fn ann_request_against_an_unindexed_daemon_scans_exactly() {
    let mut artifact = indexed_artifact(60, 4);
    artifact.clear_ann();
    let reference = Matcher::new(artifact.clone());
    let want = reference.query_by_id(0, 5).expect("doc exists");

    let socket = socket_path("noindex");
    let server =
        Server::start(Matcher::new(artifact), ServeOptions::at(&socket)).expect("daemon starts");
    let mut client = Client::connect(&socket).expect("connect");
    // The client asks for ANN but the artifact has no index: the
    // daemon answers with the exact scan rather than erroring.
    client.set_ann(Some(true));
    let (got, _) = client.query_id(0, 5).expect("query");
    assert_eq!(bits(&got), bits(&want));

    let stats = client.stats().expect("stats");
    assert_eq!(stats.ann_queries, 0);
    assert_eq!(stats.exact_queries, 1);
    assert_eq!(stats.pooled, 0);

    client.shutdown().expect("shutdown");
    server.join();
}
