//! W2VEC — Word2Vec trained on the serialized documents (§V baselines).
//!
//! Both corpora are serialized (tables with `[COL]/[VAL]` markers),
//! Word2Vec is trained on the union, and each document embeds as the mean
//! of its token vectors \[38\]. Vector size 300 and Skip-gram in the paper;
//! dimensionality is configurable here for scaled-down runs.

use std::time::Instant;

use tdmatch_core::corpus::Corpus;
use tdmatch_embed::word2vec::{W2vMode, Word2Vec, Word2VecConfig};
use tdmatch_text::Preprocessor;

use crate::serialize::serialize_corpus;
use crate::{rank_dense, RankedMatches};

/// Options for the W2VEC baseline.
#[derive(Debug, Clone)]
pub struct W2vecOptions {
    /// Embedding dimensionality (paper: 300).
    pub dim: usize,
    /// Training epochs.
    pub epochs: usize,
    /// Threads (1 = deterministic).
    pub threads: usize,
    /// Seed.
    pub seed: u64,
}

impl Default for W2vecOptions {
    fn default() -> Self {
        Self {
            dim: 64,
            epochs: 5,
            threads: 1,
            seed: 42,
        }
    }
}

/// Runs the W2VEC baseline.
pub fn run(first: &Corpus, second: &Corpus, opts: &W2vecOptions, k: usize) -> RankedMatches {
    let pre = Preprocessor::default();
    let t0 = Instant::now();
    let docs_first = serialize_corpus(first, &pre);
    let docs_second = serialize_corpus(second, &pre);
    let mut training: Vec<Vec<String>> = docs_first.clone();
    training.extend(docs_second.iter().cloned());

    let model = Word2Vec::train(
        &training,
        Word2VecConfig {
            dim: opts.dim,
            window: 5,
            epochs: opts.epochs,
            mode: W2vMode::SkipGram,
            threads: opts.threads,
            seed: opts.seed,
            ..Default::default()
        },
    );
    let emb = model.embeddings();
    let train_secs = t0.elapsed().as_secs_f64();

    let t1 = Instant::now();
    let zero = vec![0.0f32; opts.dim];
    let embed_docs = |docs: &[Vec<String>]| -> Vec<Vec<f32>> {
        docs.iter()
            .map(|d| emb.mean_vector(d).unwrap_or_else(|| zero.clone()))
            .collect()
    };
    let targets = embed_docs(&docs_first);
    let queries = embed_docs(&docs_second);
    let per_query = rank_dense(&queries, &targets, opts.dim, k);
    RankedMatches {
        method: "W2VEC".to_string(),
        per_query,
        train_secs,
        test_secs: t1.elapsed().as_secs_f64(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tdmatch_core::corpus::TextCorpus;

    #[test]
    fn lexical_overlap_ranks_first() {
        let first = Corpus::Text(TextCorpus::new(vec![
            "tarantino pulp fiction jackson".into(),
            "shyamalan sixth sense willis".into(),
        ]));
        let second = Corpus::Text(TextCorpus::new(vec![
            "a review about tarantino and jackson in pulp fiction".into(),
        ]));
        let r = run(&first, &second, &W2vecOptions::default(), 2);
        assert_eq!(r.indices(0)[0], 0);
        assert!(r.train_secs > 0.0);
    }

    #[test]
    fn handles_empty_overlap_gracefully() {
        let first = Corpus::Text(TextCorpus::new(vec!["alpha beta".into()]));
        let second = Corpus::Text(TextCorpus::new(vec!["gamma delta".into()]));
        let r = run(&first, &second, &W2vecOptions::default(), 1);
        assert_eq!(r.per_query.len(), 1);
        assert_eq!(r.per_query[0].len(), 1);
    }
}
