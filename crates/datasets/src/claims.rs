//! The fact-checking scenarios (§V-C): Snopes and Politifact — given an
//! input claim, rank the verified claims that check it.
//!
//! Verified claims ("facts") are templated statements about people,
//! places, and figures; each popular subject accumulates a *family* of
//! near-duplicate facts differing in one slot (a different figure, place,
//! or topic) — the same-speaker confusability that makes real
//! previously-fact-checked-claim retrieval hard. Input claims paraphrase
//! one fact with synonym substitution, name shortening, token dropout and
//! chatter.
//!
//! Politifact is made harder than Snopes (matching the paper's MRR gap):
//! more facts, larger same-subject families, lossier paraphrases.

use rand::rngs::SmallRng;
use rand::seq::IndexedRandom;
use rand::{RngExt, SeedableRng};

use tdmatch_core::config::TdConfig;
use tdmatch_core::corpus::{Corpus, TextCorpus};
use tdmatch_kb::{lexicon, SyntheticConceptNet};

use crate::{standard_pretrained, Scale, Scenario};

struct ClaimParams {
    name: &'static str,
    n_facts: usize,
    n_claims: usize,
    /// Probability a fact spawns a family of same-subject near-duplicates.
    family: f64,
    /// Maximum family size (siblings beyond the base fact).
    family_size: usize,
    /// Per-token dropout in paraphrases.
    dropout: f64,
}

fn snopes_params(scale: Scale) -> ClaimParams {
    let (n_facts, n_claims) = match scale {
        Scale::Tiny => (120, 25),
        Scale::Small => (1_000, 100),
        Scale::Paper => (11_000, 1_000),
    };
    ClaimParams {
        name: "snopes",
        n_facts,
        n_claims,
        family: 0.25,
        family_size: 2,
        dropout: 0.25,
    }
}

fn politifact_params(scale: Scale) -> ClaimParams {
    let (n_facts, n_claims) = match scale {
        Scale::Tiny => (160, 25),
        Scale::Small => (1_500, 80),
        Scale::Paper => (16_600, 768),
    };
    ClaimParams {
        name: "politifact",
        n_facts,
        n_claims,
        family: 0.6,
        family_size: 4,
        dropout: 0.4,
    }
}

/// A structured fact; near-duplicates vary one slot of the same subject.
#[derive(Debug, Clone)]
struct FactRecord {
    subject_first: String,
    subject_last: String,
    template: usize,
    noun: String,
    noun2: String,
    verb: String,
    adj: String,
    country: String,
    number: u64,
}

impl FactRecord {
    fn random(rng: &mut SmallRng) -> Self {
        Self {
            subject_first: lexicon::FIRST_NAMES.choose(rng).expect("non-empty").to_string(),
            subject_last: lexicon::LAST_NAMES.choose(rng).expect("non-empty").to_string(),
            template: rng.random_range(0..5),
            noun: lexicon::GENERIC_NOUNS.choose(rng).expect("non-empty").to_string(),
            noun2: lexicon::GENERIC_NOUNS.choose(rng).expect("non-empty").to_string(),
            verb: lexicon::GENERIC_VERBS.choose(rng).expect("non-empty").to_string(),
            adj: lexicon::GENERIC_ADJS.choose(rng).expect("non-empty").to_string(),
            country: lexicon::COUNTRIES.choose(rng).expect("non-empty").to_string(),
            number: 10 + rng.random_range(0..99) * 10,
        }
    }

    /// A same-subject sibling with a few slots changed — the confuser.
    fn sibling(&self, rng: &mut SmallRng) -> Self {
        let mut s = self.clone();
        s.template = rng.random_range(0..5);
        match rng.random_range(0..3) {
            0 => s.noun = lexicon::GENERIC_NOUNS.choose(rng).expect("non-empty").to_string(),
            1 => s.country = lexicon::COUNTRIES.choose(rng).expect("non-empty").to_string(),
            _ => s.number = 10 + rng.random_range(0..99) * 10,
        }
        s.noun2 = lexicon::GENERIC_NOUNS.choose(rng).expect("non-empty").to_string();
        s
    }

    fn subject(&self) -> String {
        format!("{} {}", self.subject_first, self.subject_last)
    }

    /// The verified-claim text.
    fn render(&self) -> String {
        let s = self.subject();
        match self.template {
            0 => format!(
                "{s} said the {} {} by {} percent in {}",
                self.noun, self.verb, self.number, self.country
            ),
            1 => format!(
                "a {} photo shows {s} with a {} in {}",
                self.adj, self.noun, self.country
            ),
            2 => format!(
                "{s} claimed that {} will {} the {} {}",
                self.country, self.verb, self.noun, self.noun2
            ),
            3 => format!(
                "the {} in {} {} {} {} last year",
                self.noun, self.country, self.verb, self.number, self.noun2
            ),
            _ => format!(
                "{s} never {} the {} {} about {}",
                self.verb, self.adj, self.noun, self.noun2
            ),
        }
    }

    /// An input claim paraphrasing this fact: shortened name, synonym
    /// swaps, token dropout, chatter.
    fn paraphrase(&self, rng: &mut SmallRng, dropout: f64) -> String {
        let subject_form = if rng.random_bool(0.5) {
            self.subject_last.clone()
        } else {
            self.subject()
        };
        let core = match self.template {
            0 => format!(
                "{subject_form} says {} {} {} percent {}",
                self.noun, self.verb, self.number, self.country
            ),
            1 => format!(
                "photo of {subject_form} holding a {} in {}",
                self.noun, self.country
            ),
            2 => format!(
                "{subject_form} thinks {} would {} the {}",
                self.country, self.verb, self.noun
            ),
            3 => format!(
                "apparently the {} in {} {} {}",
                self.noun, self.country, self.verb, self.number
            ),
            _ => format!(
                "{subject_form} swears he never {} that {} {}",
                self.verb, self.adj, self.noun
            ),
        };
        let mut words: Vec<String> = core
            .split(' ')
            .map(|w| synonym_swap(rng, w))
            .collect();
        // Never drop the subject token(s); drop the rest independently.
        let subject_tokens: std::collections::HashSet<&str> =
            subject_form.split(' ').collect();
        words.retain(|w| subject_tokens.contains(w.as_str()) || rng.random::<f64>() > dropout);
        if rng.random_bool(0.5) {
            words.insert(0, "they say".to_string());
        }
        if rng.random_bool(0.3) {
            words.push("is this true".to_string());
        }
        words.join(" ")
    }
}

/// Swaps a word for a random member of its synonym group.
fn synonym_swap(rng: &mut SmallRng, token: &str) -> String {
    for group in lexicon::SYNONYM_GROUPS {
        if group.contains(&token) && rng.random_bool(0.6) {
            return group.choose(rng).expect("non-empty").to_string();
        }
    }
    token.to_string()
}

fn generate_with(params: ClaimParams, seed: u64) -> Scenario {
    let mut rng = SmallRng::seed_from_u64(seed ^ 0xFAC7_0000 ^ params.name.len() as u64);
    let mut records: Vec<FactRecord> = Vec::with_capacity(params.n_facts);
    while records.len() < params.n_facts {
        let base = FactRecord::random(&mut rng);
        records.push(base.clone());
        if rng.random_bool(params.family) {
            let size = rng.random_range(1..=params.family_size);
            for _ in 0..size {
                if records.len() >= params.n_facts {
                    break;
                }
                records.push(base.sibling(&mut rng));
            }
        }
    }
    let facts: Vec<String> = records.iter().map(|r| r.render()).collect();

    let mut claims = Vec::with_capacity(params.n_claims);
    let mut truth = Vec::with_capacity(params.n_claims);
    for _ in 0..params.n_claims {
        let target = rng.random_range(0..records.len());
        claims.push(records[target].paraphrase(&mut rng, params.dropout));
        truth.push(vec![target]);
    }

    let (pretrained, gamma) = standard_pretrained(seed, 0.3);
    Scenario {
        name: params.name.to_string(),
        first: Corpus::Text(TextCorpus::new(facts)),
        second: Corpus::Text(TextCorpus::new(claims)),
        ground_truth: truth,
        kb: Box::new(SyntheticConceptNet::standard(seed, 2)),
        pretrained,
        gamma,
        config: TdConfig::text_oriented(),
    }
}

/// The Snopes scenario: 1k tweets against 11k fact-checks (scaled).
pub fn snopes(scale: Scale, seed: u64) -> Scenario {
    generate_with(snopes_params(scale), seed)
}

/// The Politifact scenario: politician claims against 16.6k fact-checks
/// (scaled); harder than Snopes by construction.
pub fn politifact(scale: Scale, seed: u64) -> Scenario {
    generate_with(politifact_params(scale), seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn politifact_has_more_facts_than_snopes() {
        let s = snopes(Scale::Tiny, 4);
        let p = politifact(Scale::Tiny, 4);
        assert!(p.first.len() > s.first.len());
    }

    #[test]
    fn claims_share_vocabulary_with_their_fact() {
        let s = snopes(Scale::Tiny, 4);
        let Corpus::Text(facts) = &s.first else { panic!() };
        let Corpus::Text(claims) = &s.second else { panic!() };
        let mut overlaps = 0;
        for (i, claim) in claims.docs.iter().enumerate() {
            let fact = &facts.docs[s.ground_truth[i][0]];
            let fact_words: std::collections::HashSet<&str> = fact.split(' ').collect();
            let shared = claim.split(' ').filter(|w| fact_words.contains(w)).count();
            if shared >= 2 {
                overlaps += 1;
            }
        }
        assert!(
            overlaps as f64 >= claims.docs.len() as f64 * 0.7,
            "claims should lexically overlap their facts: {overlaps}/{}",
            claims.docs.len()
        );
    }

    #[test]
    fn families_share_subjects() {
        let p = politifact(Scale::Small, 4);
        let Corpus::Text(facts) = &p.first else { panic!() };
        // Count facts sharing a (first, last) subject prefix with their
        // predecessor — families must exist.
        let mut shared_subject = 0;
        for w in facts.docs.windows(2) {
            let a: Vec<&str> = w[0].split(' ').collect();
            let b: Vec<&str> = w[1].split(' ').collect();
            if a.len() > 1 && b.len() > 1 {
                let subj_a = w[0].contains(&format!("{} {}", a[0], a[1]));
                let _ = subj_a;
                if w[1].contains(a[0]) && w[1].contains(a[1]) {
                    shared_subject += 1;
                }
            }
        }
        assert!(shared_subject > 0, "expected same-subject fact families");
    }

    #[test]
    fn paraphrase_keeps_subject() {
        let mut rng = SmallRng::seed_from_u64(1);
        let r = FactRecord::random(&mut rng);
        for _ in 0..10 {
            let p = r.paraphrase(&mut rng, 0.5);
            assert!(
                p.contains(&r.subject_last),
                "paraphrase must keep the subject: {p}"
            );
        }
    }

    #[test]
    fn sibling_keeps_subject_changes_slot() {
        let mut rng = SmallRng::seed_from_u64(1);
        let r = FactRecord::random(&mut rng);
        let s = r.sibling(&mut rng);
        assert_eq!(r.subject(), s.subject());
        assert_ne!(r.render(), s.render());
    }

    #[test]
    fn scenario_names() {
        assert_eq!(snopes(Scale::Tiny, 1).name, "snopes");
        assert_eq!(politifact(Scale::Tiny, 1).name, "politifact");
    }
}
