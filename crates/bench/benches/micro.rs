//! Criterion micro-benchmarks for the hot components: preprocessing,
//! graph construction, traversal, random walks, Word2Vec epochs, cosine
//! top-k, and MSP compression.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

use tdmatch_compress::{msp_compress, MspConfig};
use tdmatch_core::builder::build_graph;
use tdmatch_core::config::TdConfig;
use tdmatch_datasets::{imdb, Scale};
use tdmatch_embed::corpus::FlatCorpus;
use tdmatch_embed::hogwild::SharedMatrix;
use tdmatch_embed::score::{batch_top_k_seq, dot_unrolled, ScoreMatrix};
use tdmatch_embed::vectors::top_k_cosine;
use tdmatch_embed::walks::{
    generate_walk_corpus, generate_walks, walk_counts, WalkConfig, WalkStrategy,
};
use tdmatch_embed::word2vec::{train_corpus, train_ids, Word2VecConfig};
use tdmatch_graph::traverse::{all_shortest_paths, bfs_distances};
use tdmatch_graph::{CorpusSide, CsrGraph, EdgeTypeWeights, Graph};
use tdmatch_text::Preprocessor;

fn tiny_graph() -> Graph {
    let scenario = imdb::generate(Scale::Tiny, 7, true);
    build_graph(
        &scenario.first,
        &scenario.second,
        &TdConfig::for_tests(),
        None,
    )
    .graph
}

fn bench_preprocess(c: &mut Criterion) {
    let pre = Preprocessor::default();
    let text = "The Sixth Sense delivers a brilliant thriller full of suspense \
                and mystery with Bruce Willis giving a subtle performance";
    c.bench_function("preprocess/terms", |b| {
        b.iter(|| black_box(pre.terms(black_box(text))))
    });
}

fn bench_graph_build(c: &mut Criterion) {
    let scenario = imdb::generate(Scale::Tiny, 7, true);
    let config = TdConfig::for_tests();
    c.bench_function("graph/build_imdb_tiny", |b| {
        b.iter(|| {
            black_box(build_graph(
                &scenario.first,
                &scenario.second,
                &config,
                None,
            ))
        })
    });
}

fn bench_traversal(c: &mut Criterion) {
    let g = tiny_graph();
    let meta = g.matchable_nodes(CorpusSide::First);
    let queries = g.matchable_nodes(CorpusSide::Second);
    c.bench_function("graph/bfs_distances", |b| {
        b.iter(|| black_box(bfs_distances(&g, meta[0])))
    });
    c.bench_function("graph/all_shortest_paths", |b| {
        b.iter(|| black_box(all_shortest_paths(&g, queries[0], meta[0], 16)))
    });
}

fn bench_walks_and_train(c: &mut Criterion) {
    let g = tiny_graph();
    let cfg = WalkConfig {
        walks_per_node: 5,
        walk_len: 10,
        seed: 1,
        threads: 1,
        strategy: WalkStrategy::Uniform,
    };
    c.bench_function("embed/generate_walks", |b| {
        b.iter(|| black_box(generate_walks(&g, &cfg)))
    });
    let corpus = generate_walks(&g, &cfg);
    let counts = walk_counts(&corpus, g.id_bound(), false);
    let w2v = Word2VecConfig {
        dim: 32,
        epochs: 1,
        threads: 1,
        ..Default::default()
    };
    c.bench_function("embed/w2v_epoch", |b| {
        b.iter(|| black_box(train_ids(&corpus, &counts, &w2v)))
    });
    let flat = FlatCorpus::from_nested(&corpus);
    c.bench_function("embed/w2v_epoch_flat", |b| {
        b.iter(|| black_box(train_corpus(&flat, &counts, &w2v)))
    });
}

/// Walk generation and corpus iteration over both graph representations:
/// nested `Vec<Vec<u32>>` over `Graph` vs flat arena over `CsrGraph`.
fn bench_walk_representations(c: &mut Criterion) {
    let g = tiny_graph();
    let csr = CsrGraph::from_graph(&g);
    for (tag, strategy) in [
        ("uniform", WalkStrategy::Uniform),
        ("node2vec", WalkStrategy::Node2Vec { p: 0.5, q: 2.0 }),
        ("edge_typed", WalkStrategy::EdgeTyped(EdgeTypeWeights::uniform())),
    ] {
        let cfg = WalkConfig {
            walks_per_node: 5,
            walk_len: 10,
            seed: 1,
            threads: 1,
            strategy,
        };
        c.bench_function(&format!("walks/{tag}/nested_graph"), |b| {
            b.iter(|| black_box(generate_walks(&g, &cfg)))
        });
        c.bench_function(&format!("walks/{tag}/flat_csr"), |b| {
            b.iter(|| black_box(generate_walk_corpus(&csr, &cfg)))
        });
    }

    c.bench_function("graph/csr_snapshot_build", |b| {
        b.iter(|| black_box(CsrGraph::from_graph(&g)))
    });

    let cfg = WalkConfig {
        walks_per_node: 5,
        walk_len: 10,
        seed: 1,
        threads: 1,
        strategy: WalkStrategy::Uniform,
    };
    let nested = generate_walks(&g, &cfg);
    let flat = generate_walk_corpus(&csr, &cfg);
    c.bench_function("corpus/iterate_nested", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for sent in &nested {
                for &tok in sent {
                    acc = acc.wrapping_add(tok as u64);
                }
            }
            black_box(acc)
        })
    });
    c.bench_function("corpus/iterate_flat", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for sent in flat.sentences() {
                for &tok in sent {
                    acc = acc.wrapping_add(tok as u64);
                }
            }
            black_box(acc)
        })
    });
    c.bench_function("corpus/counts_nested", |b| {
        b.iter(|| black_box(walk_counts(&nested, g.id_bound(), false)))
    });
    c.bench_function("corpus/counts_flat", |b| {
        b.iter(|| black_box(flat.token_counts(g.id_bound(), false)))
    });
}

fn bench_topk(c: &mut Criterion) {
    let dim = 64;
    let vectors: Vec<Vec<f32>> = (0..1000)
        .map(|i| (0..dim).map(|d| ((i * d) % 97) as f32 / 97.0).collect())
        .collect();
    let refs: Vec<&[f32]> = vectors.iter().map(|v| v.as_slice()).collect();
    let query: Vec<f32> = (0..dim).map(|d| d as f32 / dim as f32).collect();
    c.bench_function("match/top_k_cosine_1000", |b| {
        b.iter(|| black_box(top_k_cosine(&query, &refs, 20)))
    });

    // The flat engine on the same workload: one-off matrix build vs the
    // normalize-once / dot-many steady state.
    let tm = ScoreMatrix::from_rows(refs.iter().copied(), dim);
    let qm = ScoreMatrix::from_rows(std::iter::once(query.as_slice()), dim);
    c.bench_function("match/score_matrix_build_1000", |b| {
        b.iter(|| black_box(ScoreMatrix::from_rows(refs.iter().copied(), dim)))
    });
    c.bench_function("match/engine_top_k_1000", |b| {
        b.iter(|| black_box(batch_top_k_seq(&qm, &tm, 20, None, None)))
    });
}

/// The SharedMatrix row kernels Word2Vec hammers: unrolled 4-wide chunked
/// loops over the atomic cells (relaxed loads are plain movs).
fn bench_hogwild(c: &mut Criterion) {
    let dim = 128;
    let m = SharedMatrix::uniform_init(64, dim, 7);
    let buf: Vec<f32> = (0..dim).map(|i| (i as f32 * 0.37).sin()).collect();
    let mut acc = vec![0.0f32; dim];
    c.bench_function("hogwild/dot_with_row_128", |b| {
        b.iter(|| black_box(m.dot_with_row(5, &buf)))
    });
    c.bench_function("hogwild/axpy_row_into_128", |b| {
        b.iter(|| {
            m.axpy_row_into(5, 0.5, &mut acc);
            black_box(acc[0]);
        })
    });
    c.bench_function("hogwild/add_scaled_to_row_128", |b| {
        b.iter(|| m.add_scaled_to_row(9, 1e-6, &buf))
    });
    c.bench_function("hogwild/add_to_row_128", |b| {
        b.iter(|| m.add_to_row(9, &buf))
    });
    c.bench_function("score/dot_unrolled_128", |b| {
        b.iter(|| black_box(dot_unrolled(&buf, &buf)))
    });
}

fn bench_compression(c: &mut Criterion) {
    let g = tiny_graph();
    c.bench_function("compress/msp_beta_0.25", |b| {
        b.iter_batched(
            || g.clone(),
            |g| {
                black_box(msp_compress(
                    &g,
                    &MspConfig {
                        beta: 0.25,
                        ..Default::default()
                    },
                ))
            },
            BatchSize::SmallInput,
        )
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_preprocess, bench_graph_build, bench_traversal,
              bench_walks_and_train, bench_walk_representations, bench_topk,
              bench_hogwild, bench_compression
}
criterion_main!(benches);
