//! Walk-generation throughput recorder: times the legacy nested path
//! (`generate_walks` over `Graph`) against the CSR + flat-arena hot path
//! (`generate_walk_corpus` over `CsrGraph`) on a `fig8_scaling`-sized
//! graph, counts heap allocations with an instrumented global allocator,
//! and writes `BENCH_walks.json` at the repository root so the perf
//! trajectory is tracked from PR to PR.
//!
//! Run with `cargo bench -p tdmatch-bench --bench bench_walks`.
//! `TDMATCH_BENCH_COPIES` (default 4) scales the graph like Figure 8's
//! union-of-scenarios construction.

use std::time::Instant;

use tdmatch_bench::alloc_probe::{AllocProbe, CountingAlloc};
use tdmatch_bench::bench_config;
use tdmatch_core::builder::build_graph;
use tdmatch_core::corpus::{Corpus, TextCorpus};
use tdmatch_datasets::{sts, Scale};
use tdmatch_embed::walks::{generate_walk_corpus, generate_walks, WalkConfig};
use tdmatch_graph::CsrGraph;

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

struct PathStats {
    secs: f64,
    nodes_per_sec: f64,
    tokens_per_sec: f64,
    allocations: u64,
    peak_bytes: u64,
    iter_tokens_per_sec: f64,
}

fn json_path_stats(s: &PathStats) -> String {
    format!(
        concat!(
            "{{\"secs\": {:.6}, \"nodes_per_sec\": {:.1}, \"tokens_per_sec\": {:.1}, ",
            "\"allocations\": {}, \"peak_bytes\": {}, \"corpus_iter_tokens_per_sec\": {:.1}}}"
        ),
        s.secs, s.nodes_per_sec, s.tokens_per_sec, s.allocations, s.peak_bytes,
        s.iter_tokens_per_sec,
    )
}

fn main() {
    let copies: usize = std::env::var("TDMATCH_BENCH_COPIES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(4);

    // Figure-8-style graph: a union of independently seeded STS corpora,
    // built and expanded like the scaling experiment.
    let mut first_docs = Vec::new();
    let mut second_docs = Vec::new();
    for seed in 0..copies as u64 {
        let s = sts::generate(Scale::Small, 100 + seed, 2);
        let Corpus::Text(f) = s.first else { unreachable!() };
        let Corpus::Text(snd) = s.second else { unreachable!() };
        first_docs.extend(f.docs);
        second_docs.extend(snd.docs);
    }
    let first = Corpus::Text(TextCorpus::new(first_docs));
    let second = Corpus::Text(TextCorpus::new(second_docs));
    let base = sts::generate(Scale::Tiny, 1, 2);
    let config = bench_config(&base.config);
    let built = build_graph(&first, &second, &config, None);
    let mut graph = built.graph;
    tdmatch_core::expand::expand_graph(&mut graph, base.kb.as_ref(), 16);

    let walk_config = WalkConfig {
        walks_per_node: 20,
        walk_len: 30,
        ..config.walk_config()
    };
    let n_nodes = graph.node_count() as f64;
    println!(
        "graph: {} nodes, {} edges; {} walks/node × len {} on {} threads",
        graph.node_count(),
        graph.edge_count(),
        walk_config.walks_per_node,
        walk_config.walk_len,
        walk_config.threads,
    );

    // Best-of-N wall times: the box this runs on is noisy, and min-time is
    // the standard de-noised estimator for deterministic workloads.
    const REPS: usize = 3;

    // --- Legacy nested path -------------------------------------------
    let probe = AllocProbe::start();
    let t = Instant::now();
    let nested = generate_walks(&graph, &walk_config);
    let mut nested_secs = t.elapsed().as_secs_f64();
    let (nested_allocs, nested_peak) = probe.finish();
    for _ in 1..REPS {
        let t = Instant::now();
        std::hint::black_box(generate_walks(&graph, &walk_config));
        nested_secs = nested_secs.min(t.elapsed().as_secs_f64());
    }
    let nested_tokens: usize = nested.iter().map(Vec::len).sum();

    let t = Instant::now();
    let mut checksum = 0u64;
    for sent in &nested {
        for &tok in sent {
            checksum = checksum.wrapping_add(tok as u64);
        }
    }
    let nested_iter_secs = t.elapsed().as_secs_f64();
    std::hint::black_box(checksum);

    let nested_stats = PathStats {
        secs: nested_secs,
        nodes_per_sec: n_nodes / nested_secs,
        tokens_per_sec: nested_tokens as f64 / nested_secs,
        allocations: nested_allocs,
        peak_bytes: nested_peak,
        iter_tokens_per_sec: nested_tokens as f64 / nested_iter_secs,
    };
    drop(nested);

    // --- CSR + flat arena path ----------------------------------------
    let t = Instant::now();
    let csr = CsrGraph::from_graph(&graph);
    let snapshot_secs = t.elapsed().as_secs_f64();

    let probe = AllocProbe::start();
    let t = Instant::now();
    let flat = generate_walk_corpus(&csr, &walk_config);
    let mut flat_secs = t.elapsed().as_secs_f64();
    let (flat_allocs, flat_peak) = probe.finish();
    for _ in 1..REPS {
        let t = Instant::now();
        std::hint::black_box(generate_walk_corpus(&csr, &walk_config));
        flat_secs = flat_secs.min(t.elapsed().as_secs_f64());
    }

    let t = Instant::now();
    let mut checksum = 0u64;
    for sent in flat.sentences() {
        for &tok in sent {
            checksum = checksum.wrapping_add(tok as u64);
        }
    }
    let flat_iter_secs = t.elapsed().as_secs_f64();
    std::hint::black_box(checksum);

    let flat_stats = PathStats {
        secs: flat_secs,
        nodes_per_sec: n_nodes / flat_secs,
        tokens_per_sec: flat.total_tokens() as f64 / flat_secs,
        allocations: flat_allocs,
        peak_bytes: flat_peak,
        iter_tokens_per_sec: flat.total_tokens() as f64 / flat_iter_secs,
    };
    assert_eq!(
        flat.total_tokens(),
        nested_tokens,
        "flat and nested corpora must cover the same tokens"
    );

    let speedup = nested_stats.secs / flat_stats.secs;
    let alloc_ratio = nested_stats.allocations as f64 / flat_stats.allocations.max(1) as f64;
    println!(
        "nested: {:.3}s, {} allocs | flat: {:.3}s, {} allocs | speedup {:.2}x, {:.0}x fewer allocs",
        nested_stats.secs, nested_stats.allocations, flat_stats.secs, flat_stats.allocations,
        speedup, alloc_ratio,
    );

    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"walk_generation\",\n",
            "  \"graph\": {{\"nodes\": {}, \"edges\": {}, \"copies\": {}}},\n",
            "  \"walk_config\": {{\"walks_per_node\": {}, \"walk_len\": {}, \"threads\": {}, \"seed\": {}}},\n",
            "  \"snapshot_build_secs\": {:.6},\n",
            "  \"nested\": {},\n",
            "  \"flat\": {},\n",
            "  \"speedup\": {:.3},\n",
            "  \"alloc_ratio\": {:.1}\n",
            "}}\n"
        ),
        graph.node_count(),
        graph.edge_count(),
        copies,
        walk_config.walks_per_node,
        walk_config.walk_len,
        walk_config.threads,
        walk_config.seed,
        snapshot_secs,
        json_path_stats(&nested_stats),
        json_path_stats(&flat_stats),
        speedup,
        alloc_ratio,
    );
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_walks.json");
    std::fs::write(out, &json).expect("write BENCH_walks.json");
    println!("wrote {out}");
}
