//! Table VI — quality of match results for the STS scenario at thresholds
//! k = 2 and k = 3 (pairs with ground-truth similarity ≥ k count as
//! matches).
//!
//! Paper shape: all methods improve from k=2 to k=3 (higher-similarity
//! pairs share more tokens); W-RW(-EX) beats S-BE and approaches RANK*.

use tdmatch_bench::{
    evaluate, print_ranking_header, print_ranking_row, run_wrw, run_wrw_ex, scale_from_env,
    supervised_options, MethodRun, TABLE_K,
};
use tdmatch_datasets::sts;

fn main() {
    let scale = scale_from_env();
    for k in [2u8, 3] {
        let scenario = sts::generate(scale, 42, k);
        print_ranking_header(&format!("Table VI — STS k={k}"));

        let sbe: MethodRun = tdmatch_baselines::sbe::run(
            &scenario.first,
            &scenario.second,
            &scenario.pretrained,
            TABLE_K,
        )
        .into();
        print_ranking_row(&sbe.method.clone(), &evaluate(&sbe, &scenario));


        let bm25: MethodRun =
            tdmatch_baselines::tfidf::run_bm25(&scenario.first, &scenario.second, TABLE_K)
                .into();
        print_ranking_row(&bm25.method.clone(), &evaluate(&bm25, &scenario));

        let (wrw, _) = run_wrw(&scenario, TABLE_K);
        print_ranking_row(&wrw.method.clone(), &evaluate(&wrw, &scenario));

        let (wrw_ex, _) = run_wrw_ex(&scenario, TABLE_K);
        print_ranking_row(&wrw_ex.method.clone(), &evaluate(&wrw_ex, &scenario));

        let rank: MethodRun = tdmatch_baselines::rank::run(
            &scenario.first,
            &scenario.second,
            &scenario.ground_truth,
            &scenario.pretrained,
            &supervised_options(42),
            TABLE_K,
        )
        .into();
        print_ranking_row(&rank.method.clone(), &evaluate(&rank, &scenario));
    }
}
