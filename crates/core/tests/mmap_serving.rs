//! Cross-process serving smoke test: two reader processes map the same
//! artifact file and both serve correct top-k rankings from it.
//!
//! The test re-executes its own binary (filtered to this test with
//! `--exact`) with `TDMATCH_SERVING_CHILD_PATH` set; in child mode the
//! test body opens the artifact, matches, and prints a deterministic
//! digest of the rankings that the parent compares against its own.

use std::process::{Command, Stdio};

use tdmatch_core::artifact::MatchArtifact;
use tdmatch_core::matcher::MatchResult;
use tdmatch_graph::container::Storage;

const CHILD_ENV: &str = "TDMATCH_SERVING_CHILD_PATH";

/// Bit-exact digest of a ranking set: same artifact + same binary must
/// produce the same digest in every process.
fn digest(results: &[MatchResult]) -> String {
    let mut out = String::new();
    for r in results {
        out.push_str(&format!("q{}[", r.query));
        for (idx, score) in &r.ranked {
            out.push_str(&format!("{}:{:08x};", idx, score.to_bits()));
        }
        out.push(']');
    }
    out
}

fn sample_artifact() -> MatchArtifact {
    MatchArtifact::new(
        3,
        vec![
            ("tarantino".into(), vec![1.0, 0.0, 0.0]),
            ("thriller".into(), vec![0.0, 1.0, 0.0]),
        ],
        vec![
            Some(vec![1.0, 0.0, 0.0]),
            Some(vec![0.0, 1.0, 0.0]),
            Some(vec![0.0, 0.0, 1.0]),
            None,
            Some(vec![0.7, 0.7, 0.1]),
        ],
        vec![
            Some(vec![0.9, 0.1, 0.0]),
            Some(vec![0.1, 0.2, 0.9]),
            Some(vec![0.6, 0.6, 0.0]),
        ],
    )
}

fn child_main(path: &str) {
    let storage = Storage::open(path).expect("child: open artifact storage");
    let artifact = MatchArtifact::from_storage(&storage).expect("child: load artifact");
    let results = artifact.match_top_k(3);
    println!(
        "CHILD mapped={} digest={}",
        storage.is_mapped(),
        digest(&results)
    );
}

#[test]
fn two_processes_serve_one_mapped_snapshot() {
    // Child mode: serve from the file the parent points us at.
    if let Ok(path) = std::env::var(CHILD_ENV) {
        child_main(&path);
        return;
    }

    let artifact = sample_artifact();
    let path = std::env::temp_dir().join(format!(
        "tdmatch-serving-smoke-{}.tdm",
        std::process::id()
    ));
    artifact.save(&path).unwrap();
    let expected = digest(&artifact.match_top_k(3));

    // Spawn both readers first so they are alive (and mapped)
    // concurrently, then collect.
    let exe = std::env::current_exe().unwrap();
    let spawn = || {
        Command::new(&exe)
            .args(["--exact", "two_processes_serve_one_mapped_snapshot", "--nocapture"])
            .env(CHILD_ENV, path.to_str().unwrap())
            .stdout(Stdio::piped())
            .stderr(Stdio::piped())
            .spawn()
            .expect("spawn reader process")
    };
    let readers = [spawn(), spawn()];

    for (i, child) in readers.into_iter().enumerate() {
        let out = child.wait_with_output().expect("reader process exited");
        let stdout = String::from_utf8_lossy(&out.stdout);
        assert!(
            out.status.success(),
            "reader {i} failed: {stdout}\n{}",
            String::from_utf8_lossy(&out.stderr)
        );
        // With --nocapture the digest may share a line with libtest's
        // own progress output, so match by substring.
        let line = stdout
            .lines()
            .find(|l| l.contains("CHILD "))
            .unwrap_or_else(|| panic!("reader {i} printed no digest: {stdout}"));
        assert!(
            line.contains(&format!("digest={expected}")),
            "reader {i} ranked differently:\n  got      {line}\n  expected {expected}"
        );
        // On platforms with mmap support the readers must actually be
        // serving from a mapping (one shared physical copy), not a
        // private heap buffer.
        #[cfg(all(unix, target_pointer_width = "64"))]
        assert!(
            line.contains("mapped=true"),
            "reader {i} fell off the mmap path: {line}"
        );
    }
    std::fs::remove_file(&path).ok();
}

/// The `TDMATCH_EAGER_CRC` escape hatch flips `Storage::open` onto the
/// eager path — checked in a child process so the env var can't race
/// other tests in this one.
#[test]
fn eager_crc_env_forces_eager_verification() {
    if let Ok(path) = std::env::var("TDMATCH_EAGER_CHILD_PATH") {
        let storage = Storage::open(&path).expect("child: open");
        println!("EAGER lazy={}", storage.lazy_verification());
        return;
    }

    let path = std::env::temp_dir().join(format!(
        "tdmatch-eager-env-{}.tdm",
        std::process::id()
    ));
    sample_artifact().save(&path).unwrap();

    let exe = std::env::current_exe().unwrap();
    let run = |eager: Option<&str>| {
        let mut cmd = Command::new(&exe);
        cmd.args(["--exact", "eager_crc_env_forces_eager_verification", "--nocapture"])
            .env("TDMATCH_EAGER_CHILD_PATH", path.to_str().unwrap())
            .env_remove("TDMATCH_EAGER_CRC");
        if let Some(v) = eager {
            cmd.env("TDMATCH_EAGER_CRC", v);
        }
        let out = cmd.output().expect("spawn env-hatch child");
        assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
        String::from_utf8_lossy(&out.stdout).to_string()
    };

    assert!(run(None).contains("EAGER lazy=true"), "default open must be lazy");
    assert!(run(Some("1")).contains("EAGER lazy=false"), "env hatch ignored");
    assert!(run(Some("0")).contains("EAGER lazy=true"), "'0' must not enable it");
    std::fs::remove_file(&path).ok();
}
