//! Sub-linear candidate retrieval: a persisted HNSW index over
//! pre-normalized [`ScoreMatrix`] rows.
//!
//! Every query in the matching phase today scans all `T` target rows
//! (`O(T·dim)`). This module builds a Hierarchical Navigable Small World
//! graph (Malkov & Yashunin) over the *existing* rows — neighbor lists
//! store row indices, never vector copies — so a query can
//! ANN-retrieve a widened candidate pool in roughly `O(log T · pool)`
//! distance evaluations, and the engine then exact-rescores the pool
//! with the same [`dot_unrolled`]/`TopK` kernels it always used. The
//! published ranking therefore keeps the engine's exact total order
//! *over the pool*; widening the pool to the corpus size recovers the
//! exact scan bit-for-bit (pinned by property tests).
//!
//! # Determinism
//!
//! Construction is sequential over valid rows in ascending index order,
//! with layer assignment drawn from a seeded [`SmallRng`]
//! (`floor(-ln(u)·mL)`, `mL = 1/ln(M)`). All heap orderings break ties
//! on ascending row index via [`f32::total_cmp`], so the same matrix,
//! parameters, and seed always produce the same index — and the same
//! index always produces the same candidate pool for a query.
//!
//! # Distance
//!
//! Rows are L2-pre-normalized, so cosine distance is `1 − dot(a, b)`
//! with the engine's own [`dot_unrolled`] kernel. Only *valid* rows are
//! inserted; invalid (missing) rows never appear in a pool — the
//! serving layer appends them separately so missing-target semantics
//! (score exactly `-1.0`) survive ANN retrieval.
//!
//! # Persistence
//!
//! The index serializes as four `TDZ1` sections per slot (tags
//! `ANH`/`ANS`/`ANO`/`ANE` + slot byte, mirroring the `SM?` family):
//! a header, per-layer segment starts into one concatenated neighbor
//! array, per-layer CSR offsets, and the neighbor array itself. All
//! arrays load as zero-copy [`FlatBuf`] views, and
//! [`from_sections`](HnswIndex::from_sections) fully validates the
//! structure (monotone offsets, in-range neighbors, entry point) so
//! search over a mapped index is panic-free; the sections' CRCs are
//! verified on that first access per the container's lazy-CRC contract.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};
use tdmatch_graph::container::{Container, ContainerWriter, FlatBuf, SectionTag, Storage};
use tdmatch_graph::DecodeError;

use crate::score::{dot_unrolled, ScoreMatrix};

/// Default widened candidate-pool size for ANN retrieval (~4k): a
/// recall-first default — recall@20 ≈ 1.0 on every benchmarked tier,
/// at worst break-even with the exact scan. Narrower pools buy the
/// speed (≈20× at 256k targets with pool 256); see `BENCH_ann.json`
/// for the measured recall/speedup curve.
pub const DEFAULT_POOL: usize = 4096;

/// HNSW construction parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HnswParams {
    /// Max neighbors per node on layers above 0 (layer 0 keeps `2·m`).
    pub m: usize,
    /// Size of the dynamic candidate list during construction.
    pub ef_construction: usize,
    /// Seed for the layer-assignment RNG.
    pub seed: u64,
}

impl Default for HnswParams {
    fn default() -> Self {
        HnswParams {
            m: 16,
            ef_construction: 100,
            seed: 42,
        }
    }
}

/// On-disk header version for the `ANH` section.
const ANN_VERSION: u64 = 1;

/// A built (or mapped) HNSW index over one [`ScoreMatrix`]'s rows.
///
/// Adjacency is flat: one concatenated `neighbors` array, per-layer
/// CSR `offsets` (length `layers·(rows+1)`, each layer's run starting
/// at 0), and per-layer `seg` starts (length `layers+1`) into
/// `neighbors`. Layer 0 holds every inserted node; higher layers thin
/// out geometrically, with `entry` the sole occupant of the top layer's
/// greedy-descent start.
#[derive(Debug, Clone, Default)]
pub struct HnswIndex {
    m: u64,
    ef_construction: u64,
    seed: u64,
    /// Row count of the source matrix (valid or not).
    rows: usize,
    /// Inserted (valid) rows.
    count: usize,
    /// Number of layers (0 for an empty index).
    layers: usize,
    /// Entry-point row index for greedy descent.
    entry: usize,
    /// Per-layer starts into `neighbors`; `seg[layers]` is its length.
    seg: FlatBuf<u64>,
    /// Per-layer CSR offsets, relative to the layer's segment start.
    offsets: FlatBuf<u32>,
    /// Concatenated neighbor row indices for every (layer, node).
    neighbors: FlatBuf<u32>,
}

impl PartialEq for HnswIndex {
    fn eq(&self, other: &Self) -> bool {
        self.m == other.m
            && self.ef_construction == other.ef_construction
            && self.seed == other.seed
            && self.rows == other.rows
            && self.count == other.count
            && self.layers == other.layers
            && self.entry == other.entry
            && self.seg[..] == other.seg[..]
            && self.offsets[..] == other.offsets[..]
            && self.neighbors[..] == other.neighbors[..]
    }
}

/// Max-heap entry ordered by distance, ties by ascending row index
/// (larger index compares greater, so ties evict the larger index
/// first — any consistent rule works; this one is deterministic).
#[derive(Debug, Clone, Copy, PartialEq)]
struct Cand {
    dist: f32,
    node: u32,
}

impl Eq for Cand {}

impl Ord for Cand {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.dist
            .total_cmp(&other.dist)
            .then_with(|| self.node.cmp(&other.node))
    }
}

impl PartialOrd for Cand {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// O(1)-reset visited set: generation-stamped, allocated once per
/// search/build instead of once per layer traversal.
struct Visited {
    stamp: Vec<u32>,
    generation: u32,
}

impl Visited {
    fn new(n: usize) -> Self {
        Visited {
            stamp: vec![0; n],
            generation: 0,
        }
    }

    fn next_generation(&mut self) {
        self.generation = self.generation.wrapping_add(1);
        if self.generation == 0 {
            self.stamp.fill(0);
            self.generation = 1;
        }
    }

    /// True when `i` was not yet visited this generation (and marks it).
    fn insert(&mut self, i: u32) -> bool {
        let slot = &mut self.stamp[i as usize];
        if *slot == self.generation {
            false
        } else {
            *slot = self.generation;
            true
        }
    }
}

/// Reusable search scratch: the generation-stamped visited set one
/// [`HnswIndex::search_with`] call needs. A search allocates a
/// ~`rows`-sized stamp array; batching layers keep one `SearchScratch`
/// per worker and reuse it across every query in a batch, turning N
/// per-query allocations into one. Reuse never changes results — the
/// visited set is logically cleared (O(1), by generation bump) at every
/// layer traversal — and a scratch sized for one matrix transparently
/// resizes when handed a different one.
#[derive(Default)]
pub struct SearchScratch {
    visited: Option<Visited>,
}

impl SearchScratch {
    /// An empty scratch; sized lazily on first use.
    pub fn new() -> Self {
        SearchScratch::default()
    }

    /// The visited set, (re)sized for `rows` rows.
    fn visited_for(&mut self, rows: usize) -> &mut Visited {
        match &mut self.visited {
            Some(v) if v.stamp.len() == rows => {}
            slot => *slot = Some(Visited::new(rows)),
        }
        self.visited.as_mut().expect("just ensured")
    }
}

/// Cosine distance between a query row and target row `t` (both
/// pre-normalized): `1 − dot`.
#[inline]
fn dist_to(matrix: &ScoreMatrix, qrow: &[f32], t: u32) -> f32 {
    1.0 - dot_unrolled(qrow, matrix.row(t as usize))
}

/// Greedy beam search within one layer: starting from `eps`, expands
/// the closest unexpanded candidate until the `ef` best found can no
/// longer improve. Returns the best ≤`ef` nodes sorted by ascending
/// `(distance, index)`.
fn search_layer<'a, F>(
    matrix: &ScoreMatrix,
    qrow: &[f32],
    eps: &[Cand],
    ef: usize,
    visited: &mut Visited,
    neigh: F,
) -> Vec<Cand>
where
    F: Fn(u32) -> &'a [u32],
{
    visited.next_generation();
    let mut frontier: BinaryHeap<Reverse<Cand>> = BinaryHeap::new();
    let mut best: BinaryHeap<Cand> = BinaryHeap::new();
    for &ep in eps {
        if visited.insert(ep.node) {
            frontier.push(Reverse(ep));
            best.push(ep);
        }
    }
    while best.len() > ef {
        best.pop();
    }
    while let Some(Reverse(c)) = frontier.pop() {
        if best.len() >= ef {
            if let Some(worst) = best.peek() {
                if c.dist > worst.dist {
                    break;
                }
            }
        }
        for &nb in neigh(c.node) {
            if !visited.insert(nb) {
                continue;
            }
            let d = dist_to(matrix, qrow, nb);
            let cand = Cand { dist: d, node: nb };
            if best.len() < ef || cand < *best.peek().expect("ef > 0") {
                frontier.push(Reverse(cand));
                best.push(cand);
                if best.len() > ef {
                    best.pop();
                }
            }
        }
    }
    let mut out = best.into_vec();
    out.sort_unstable();
    out
}

/// The paper's `SELECT-NEIGHBORS-HEURISTIC`: from candidates sorted by
/// ascending distance, keep one only when it is closer to the query
/// point than to every already-selected neighbor (diversity), then
/// backfill with the closest pruned candidates up to `m_max`.
fn select_neighbors(matrix: &ScoreMatrix, cands: &[Cand], m_max: usize) -> Vec<u32> {
    let mut selected: Vec<u32> = Vec::with_capacity(m_max.min(cands.len()));
    let mut pruned: Vec<u32> = Vec::new();
    for c in cands {
        if selected.len() >= m_max {
            break;
        }
        let crow = matrix.row(c.node as usize);
        let diverse = selected
            .iter()
            .all(|&s| 1.0 - dot_unrolled(crow, matrix.row(s as usize)) > c.dist);
        if diverse {
            selected.push(c.node);
        } else {
            pruned.push(c.node);
        }
    }
    for p in pruned {
        if selected.len() >= m_max {
            break;
        }
        selected.push(p);
    }
    selected
}

/// Inserts node `i` at `level` into build-time adjacency `graph`
/// (`graph[layer][node]`, every inner vec `rows` long), updating
/// `entry`/`count`. The one insertion routine shared by
/// [`HnswIndex::build`] and [`HnswIndex::insert`], so the incremental
/// path connects nodes exactly like construction does.
#[allow(clippy::too_many_arguments)]
fn insert_node(
    matrix: &ScoreMatrix,
    graph: &mut Vec<Vec<Vec<u32>>>,
    visited: &mut Visited,
    entry: &mut usize,
    count: &mut usize,
    i: usize,
    level: usize,
    m: usize,
    efc: usize,
    rows: usize,
) {
    let node = i as u32;
    let qrow = matrix.row(i);
    let top = graph.len();

    if *count == 0 {
        graph.clear();
        for _ in 0..=level {
            graph.push(vec![Vec::new(); rows]);
        }
        *entry = i;
        *count = 1;
        return;
    }

    let mut eps = vec![Cand {
        dist: dist_to(matrix, qrow, *entry as u32),
        node: *entry as u32,
    }];
    // Greedy descent (ef = 1) through layers above the node's.
    for l in ((level + 1)..top).rev() {
        let layer = &graph[l];
        eps = search_layer(matrix, qrow, &eps, 1, visited, |n| {
            layer[n as usize].as_slice()
        });
    }
    // Connect on every layer the node occupies.
    for l in (0..=level.min(top - 1)).rev() {
        let cands = {
            let layer = &graph[l];
            search_layer(matrix, qrow, &eps, efc, visited, |n| {
                layer[n as usize].as_slice()
            })
        };
        let m_max = if l == 0 { 2 * m } else { m };
        let sel = select_neighbors(matrix, &cands, m);
        for &nb in &sel {
            graph[l][nb as usize].push(node);
            if graph[l][nb as usize].len() > m_max {
                // Re-select the owner's neighbors to respect m_max.
                let owner_row = matrix.row(nb as usize);
                let mut owned: Vec<Cand> = graph[l][nb as usize]
                    .iter()
                    .map(|&x| Cand {
                        dist: dist_to(matrix, owner_row, x),
                        node: x,
                    })
                    .collect();
                owned.sort_unstable();
                graph[l][nb as usize] = select_neighbors(matrix, &owned, m_max);
            }
        }
        graph[l][i] = sel;
        eps = cands;
    }
    if level >= top {
        for _ in top..=level {
            graph.push(vec![Vec::new(); rows]);
        }
        *entry = i;
    }
    *count += 1;
}

/// Flattens build-time adjacency into the persisted per-layer CSR form:
/// `(seg, offsets, neighbors)`.
fn flatten(graph: &[Vec<Vec<u32>>], rows: usize) -> (Vec<u64>, Vec<u32>, Vec<u32>) {
    let layers = graph.len();
    let mut seg: Vec<u64> = Vec::with_capacity(layers + 1);
    let mut offsets: Vec<u32> = Vec::with_capacity(layers * (rows + 1));
    let mut neighbors: Vec<u32> = Vec::new();
    seg.push(0);
    for layer in graph {
        let base = neighbors.len();
        offsets.push(0);
        for adj in layer {
            neighbors.extend_from_slice(adj);
            offsets.push((neighbors.len() - base) as u32);
        }
        seg.push(neighbors.len() as u64);
    }
    (seg, offsets, neighbors)
}

/// Deterministic layer assignment for one insertion draw `u ∈ [0, 1)`:
/// `floor(-ln(u)·mL)`, capped at 31.
#[inline]
fn level_from_draw(u: f64, ml: f64) -> usize {
    ((-u.max(f64::MIN_POSITIVE).ln() * ml).floor() as usize).min(31)
}

impl HnswIndex {
    /// Builds the index over `matrix`'s valid rows, sequentially and
    /// deterministically (see the [module docs](self)). `O(T·log T)`
    /// distance evaluations; intended for artifact build time, not the
    /// query path.
    pub fn build(matrix: &ScoreMatrix, params: &HnswParams) -> Self {
        let m = params.m.max(2);
        let efc = params.ef_construction.max(m);
        let ml = 1.0 / (m as f64).ln();
        let mut rng = SmallRng::seed_from_u64(params.seed);
        let rows = matrix.rows();

        // Build-time adjacency: graph[layer][node] — flattened below.
        let mut graph: Vec<Vec<Vec<u32>>> = Vec::new();
        let mut visited = Visited::new(rows);
        let mut entry = 0usize;
        let mut count = 0usize;

        for i in 0..rows {
            if !matrix.is_valid(i) {
                continue;
            }
            let u: f64 = rng.random();
            let level = level_from_draw(u, ml);
            insert_node(
                matrix, &mut graph, &mut visited, &mut entry, &mut count, i, level, m, efc, rows,
            );
        }

        let (seg, offsets, neighbors) = flatten(&graph, rows);
        HnswIndex {
            m: m as u64,
            ef_construction: efc as u64,
            seed: params.seed,
            rows,
            count,
            layers: graph.len(),
            entry,
            seg: seg.into(),
            offsets: offsets.into(),
            neighbors: neighbors.into(),
        }
    }

    /// Incrementally applies a delta to the index — the ingest path, so
    /// a small corpus change survives without the full `O(T·log T)`
    /// rebuild of [`build`](HnswIndex::build).
    ///
    /// `matrix` is the **post-delta** matrix (its row count may have
    /// grown; never shrunk). `removed` lists nodes to take out of the
    /// adjacency (tombstoned targets, plus the old positions of updated
    /// rows); `added` lists valid rows of `matrix` to insert (appended
    /// targets, plus updated rows re-inserted against their new
    /// vectors). The caller keeps the lists duplicate-free and
    /// disjoint from the untouched membership: after the call the index
    /// covers exactly (old members − `removed`) ∪ `added`.
    ///
    /// Removed nodes disappear from every neighbor list, so a narrow
    /// pool can never surface a tombstoned row (which would duplicate
    /// the serving layer's separate invalid-row handling). If the entry
    /// point is removed, a new one is chosen deterministically (the
    /// deepest remaining node, ties to the smallest index) and empty
    /// top layers are dropped.
    ///
    /// New nodes connect through the **same** insertion routine as
    /// construction, with layer assignment drawn from a per-node seeded
    /// RNG (`seed ⊕ hash(row)`), so the result is deterministic and
    /// independent of how many deltas preceded it. The incremental
    /// index is *not* bit-identical to a fresh rebuild — HNSW adjacency
    /// is insertion-order-dependent — but retrieval exactness is
    /// unaffected: a pool ≥ the inserted-node count still returns every
    /// valid row (the exact scan's candidate set, property-pinned).
    pub fn insert(&mut self, matrix: &ScoreMatrix, added: &[usize], removed: &[usize]) {
        let rows = matrix.rows();
        assert!(
            rows >= self.rows,
            "post-delta matrix cannot have fewer rows than the index"
        );
        let m = (self.m as usize).max(2);
        let efc = (self.ef_construction as usize).max(m);
        let ml = 1.0 / (m as f64).ln();

        // Re-inflate the flat CSR into build-time adjacency, grown to
        // the new row count.
        let mut graph: Vec<Vec<Vec<u32>>> = (0..self.layers)
            .map(|l| {
                (0..rows)
                    .map(|n| {
                        if n < self.rows {
                            self.neighbors_of(l, n).to_vec()
                        } else {
                            Vec::new()
                        }
                    })
                    .collect()
            })
            .collect();
        let mut entry = self.entry;
        let mut count = self.count;

        // Drop removed nodes from the adjacency entirely.
        let mut dead = vec![false; rows];
        let mut dead_members = 0usize;
        for &r in removed {
            if r < self.rows && !dead[r] {
                dead[r] = true;
                dead_members += 1;
            }
        }
        if dead_members > 0 {
            for layer in &mut graph {
                for (n, adj) in layer.iter_mut().enumerate() {
                    if dead[n] {
                        adj.clear();
                    } else {
                        adj.retain(|&x| !dead[x as usize]);
                    }
                }
            }
            count = count.saturating_sub(dead_members);
            if count == 0 {
                graph.clear();
                entry = 0;
            } else if dead[entry] {
                // New entry: the deepest remaining node (highest layer
                // with any adjacency), ties to the smallest index.
                let deepest = graph
                    .iter()
                    .enumerate()
                    .rev()
                    .find_map(|(l, layer)| {
                        layer
                            .iter()
                            .position(|adj| !adj.is_empty())
                            .map(|n| (l, n))
                    });
                match deepest {
                    Some((l, n)) => {
                        entry = n;
                        graph.truncate(l + 1);
                    }
                    None => {
                        // Members remain but no edges (e.g. one lone
                        // node): membership equals the matrix's valid
                        // rows minus the pending inserts.
                        let mut in_added = vec![false; rows];
                        for &a in added {
                            if a < rows {
                                in_added[a] = true;
                            }
                        }
                        entry = (0..rows)
                            .find(|&n| matrix.is_valid(n) && !dead[n] && !in_added[n])
                            .unwrap_or(0);
                        graph.truncate(1);
                    }
                }
            }
        }

        // Insert the delta rows through the construction routine, each
        // with an order-independent deterministic layer draw.
        let mut visited = Visited::new(rows);
        let mut to_add: Vec<usize> = added
            .iter()
            .copied()
            .filter(|&a| a < rows && matrix.is_valid(a))
            .collect();
        to_add.sort_unstable();
        to_add.dedup();
        for i in to_add {
            let mut rng =
                SmallRng::seed_from_u64(self.seed ^ (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
            let u: f64 = rng.random();
            let level = level_from_draw(u, ml);
            insert_node(
                matrix, &mut graph, &mut visited, &mut entry, &mut count, i, level, m, efc, rows,
            );
        }

        let (seg, offsets, neighbors) = flatten(&graph, rows);
        self.rows = rows;
        self.count = count;
        self.layers = graph.len();
        self.entry = entry;
        self.seg = seg.into();
        self.offsets = offsets.into();
        self.neighbors = neighbors.into();
    }

    /// Max neighbors per upper-layer node.
    pub fn m(&self) -> usize {
        self.m as usize
    }

    /// Construction-time beam width.
    pub fn ef_construction(&self) -> usize {
        self.ef_construction as usize
    }

    /// Layer-assignment seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Row count of the matrix the index was built over.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of inserted (valid) rows.
    pub fn count(&self) -> usize {
        self.count
    }

    /// Number of layers (0 for an empty index).
    pub fn layers(&self) -> usize {
        self.layers
    }

    /// Total stored neighbor references across all layers.
    pub fn edges(&self) -> usize {
        self.neighbors.len()
    }

    /// True when the index holds no nodes.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Neighbor list of `node` on `layer`.
    #[inline]
    fn neighbors_of(&self, layer: usize, node: usize) -> &[u32] {
        let base = self.seg[layer] as usize;
        let row0 = layer * (self.rows + 1) + node;
        let s = self.offsets[row0] as usize;
        let e = self.offsets[row0 + 1] as usize;
        &self.neighbors[base + s..base + e]
    }

    /// Retrieves a widened candidate pool for `qrow` (length =
    /// `matrix.dim()`): up to `pool` valid row indices sorted by
    /// ascending `(cosine distance, index)`. `matrix` must be the
    /// matrix the index was built over.
    ///
    /// When `pool ≥` the inserted-node count the pool is simply every
    /// valid row — by construction the exact scan's candidate set, so a
    /// wide-open pool reproduces exact results bit-for-bit.
    pub fn search(&self, matrix: &ScoreMatrix, qrow: &[f32], pool: usize) -> Vec<usize> {
        self.search_with(matrix, qrow, pool, pool, &mut SearchScratch::new())
    }

    /// [`search`](HnswIndex::search) with an explicit layer-0 beam
    /// width and a caller-owned [`SearchScratch`].
    ///
    /// `ef` is the beam the graph walk explores; the best `pool` of
    /// the explored nodes are returned. `ef` below `pool` is clamped up
    /// to `pool` (a beam can't return more nodes than it explored), so
    /// `ef == pool` — the [`search`](HnswIndex::search) default — is
    /// the floor, and raising `ef` buys recall without widening the
    /// exact-rescore pool downstream. Reusing one `scratch` across a
    /// batch of queries skips the per-query visited-set allocation and
    /// is bit-identical to a fresh scratch per call.
    pub fn search_with(
        &self,
        matrix: &ScoreMatrix,
        qrow: &[f32],
        pool: usize,
        ef: usize,
        scratch: &mut SearchScratch,
    ) -> Vec<usize> {
        assert_eq!(
            matrix.rows(),
            self.rows,
            "index was built over a different matrix shape"
        );
        if self.layers == 0 || pool == 0 {
            return Vec::new();
        }
        if pool >= self.count {
            return (0..self.rows).filter(|&i| matrix.is_valid(i)).collect();
        }
        let beam = ef.max(pool);
        let visited = scratch.visited_for(self.rows);
        let mut eps = vec![Cand {
            dist: dist_to(matrix, qrow, self.entry as u32),
            node: self.entry as u32,
        }];
        for l in (1..self.layers).rev() {
            eps = search_layer(matrix, qrow, &eps, 1, visited, |n| {
                self.neighbors_of(l, n as usize)
            });
        }
        let found = search_layer(matrix, qrow, &eps, beam, visited, |n| {
            self.neighbors_of(0, n as usize)
        });
        found
            .into_iter()
            .take(pool)
            .map(|c| c.node as usize)
            .collect()
    }

    /// Tag of this index's header section under `slot`.
    pub fn header_tag(slot: u8) -> SectionTag {
        [b'A', b'N', b'H', slot]
    }

    /// Tag of this index's per-layer segment-start section under `slot`.
    pub fn seg_tag(slot: u8) -> SectionTag {
        [b'A', b'N', b'S', slot]
    }

    /// Tag of this index's CSR-offsets section under `slot`.
    pub fn offsets_tag(slot: u8) -> SectionTag {
        [b'A', b'N', b'O', slot]
    }

    /// Tag of this index's neighbor-array section under `slot`.
    pub fn neighbors_tag(slot: u8) -> SectionTag {
        [b'A', b'N', b'E', slot]
    }

    /// True when `container` carries an index under `slot`.
    pub fn present(container: &Container<'_>, slot: u8) -> bool {
        container.section(Self::header_tag(slot)).is_some()
    }

    /// Serializes the index into `TDZ1` sections under `slot`. The
    /// adjacency arrays are borrowed by the writer — saving streams
    /// them without a second copy.
    pub fn write_sections<'a>(&'a self, slot: u8, w: &mut ContainerWriter<'a>) {
        w.add(
            Self::header_tag(slot),
            tdmatch_graph::container::pod_bytes(&[
                ANN_VERSION,
                self.m,
                self.ef_construction,
                self.seed,
                self.rows as u64,
                self.count as u64,
                self.layers as u64,
                self.entry as u64,
            ]),
        );
        w.add_pod(Self::seg_tag(slot), &self.seg);
        w.add_pod(Self::offsets_tag(slot), &self.offsets);
        w.add_pod(Self::neighbors_tag(slot), &self.neighbors);
    }

    /// Reassembles an index from container sections under `slot`,
    /// zero-copy, and validates the whole structure — segment starts,
    /// per-layer offset monotonicity, neighbor ranges, entry point — so
    /// [`search`](HnswIndex::search) over a mapped index cannot go out
    /// of bounds. Section CRCs are verified here, on first access.
    pub fn from_sections(
        storage: &Storage,
        container: &Container<'_>,
        slot: u8,
    ) -> Result<Self, DecodeError> {
        let header = container.require(Self::header_tag(slot))?.as_u64s()?;
        let &[version, m, ef_construction, seed, rows, count, layers, entry] = header else {
            return Err(DecodeError::Invalid("ann header shape"));
        };
        if version != ANN_VERSION {
            return Err(DecodeError::Invalid("unsupported ann index version"));
        }
        let rows = usize::try_from(rows).map_err(|_| DecodeError::Corrupt)?;
        let count = usize::try_from(count).map_err(|_| DecodeError::Corrupt)?;
        let layers = usize::try_from(layers).map_err(|_| DecodeError::Corrupt)?;
        let entry = usize::try_from(entry).map_err(|_| DecodeError::Corrupt)?;
        if m < 2 || ef_construction < m || layers > 64 || count > rows {
            return Err(DecodeError::Invalid("ann header out of range"));
        }
        if (layers == 0) != (count == 0) {
            return Err(DecodeError::Invalid("ann layer/count mismatch"));
        }
        if layers > 0 && entry >= rows {
            return Err(DecodeError::Invalid("ann entry point out of range"));
        }
        let seg = FlatBuf::<u64>::from_section(storage, container.require(Self::seg_tag(slot))?)?;
        let offsets =
            FlatBuf::<u32>::from_section(storage, container.require(Self::offsets_tag(slot))?)?;
        let neighbors =
            FlatBuf::<u32>::from_section(storage, container.require(Self::neighbors_tag(slot))?)?;
        if seg.len() != layers + 1 || seg[0] != 0 {
            return Err(DecodeError::Invalid("ann segment table shape"));
        }
        if *seg.last().expect("non-empty") != neighbors.len() as u64 {
            return Err(DecodeError::Invalid("ann segment/neighbor length mismatch"));
        }
        let per_layer = rows
            .checked_add(1)
            .and_then(|x| x.checked_mul(layers))
            .ok_or(DecodeError::Invalid("ann offsets shape overflows"))?;
        if offsets.len() != per_layer {
            return Err(DecodeError::Invalid("ann offsets length mismatch"));
        }
        for l in 0..layers {
            let lo = seg[l];
            let hi = seg[l + 1];
            if lo > hi {
                return Err(DecodeError::Invalid("ann segment table not monotone"));
            }
            let run = &offsets[l * (rows + 1)..(l + 1) * (rows + 1)];
            if run[0] != 0 || run[rows] as u64 != hi - lo {
                return Err(DecodeError::Invalid("ann layer offsets bounds"));
            }
            if run.windows(2).any(|w| w[0] > w[1]) {
                return Err(DecodeError::Invalid("ann layer offsets not monotone"));
            }
        }
        if neighbors.iter().any(|&n| n as usize >= rows) {
            return Err(DecodeError::Invalid("ann neighbor index out of range"));
        }
        Ok(HnswIndex {
            m,
            ef_construction,
            seed,
            rows,
            count,
            layers,
            entry,
            seg,
            offsets,
            neighbors,
        })
    }

    /// Converts the adjacency arrays into owned `Vec`s, detaching the
    /// index from container storage. No-op for built indexes.
    pub fn into_owned(mut self) -> Self {
        self.seg.make_mut();
        self.offsets.make_mut();
        self.neighbors.make_mut();
        self
    }

    /// True when the index still borrows container storage.
    pub fn is_zero_copy(&self) -> bool {
        self.seg.is_shared() || self.offsets.is_shared() || self.neighbors.is_shared()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::score::TopK;

    /// Deterministic pseudo-random unit-ish rows (normalized by the
    /// matrix on insert).
    fn random_matrix(rows: usize, dim: usize, seed: u64) -> ScoreMatrix {
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state >> 12;
            state ^= state << 25;
            state ^= state >> 27;
            (state.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 40) as f32 / (1 << 24) as f32 - 0.5
        };
        let mut m = ScoreMatrix::invalid(rows, dim);
        for i in 0..rows {
            if i % 17 == 11 {
                continue; // leave some rows invalid
            }
            let row: Vec<f32> = (0..dim).map(|_| next()).collect();
            m.set_row(i, &row);
        }
        m
    }

    fn exact_top_k(matrix: &ScoreMatrix, qrow: &[f32], k: usize) -> Vec<(usize, f32)> {
        let mut top = TopK::new(k);
        for t in 0..matrix.rows() {
            let s = if matrix.is_valid(t) {
                dot_unrolled(qrow, matrix.row(t))
            } else {
                -1.0
            };
            top.push(t, s);
        }
        top.drain_sorted()
    }

    #[test]
    fn build_is_deterministic() {
        let m = random_matrix(400, 24, 7);
        let a = HnswIndex::build(&m, &HnswParams::default());
        let b = HnswIndex::build(&m, &HnswParams::default());
        assert_eq!(a, b);
        let c = HnswIndex::build(
            &m,
            &HnswParams {
                seed: 43,
                ..HnswParams::default()
            },
        );
        assert_ne!(a, c, "a different seed must change layer assignment");
    }

    #[test]
    fn empty_and_tiny_matrices() {
        let empty = ScoreMatrix::invalid(0, 8);
        let idx = HnswIndex::build(&empty, &HnswParams::default());
        assert!(idx.is_empty());
        assert_eq!(idx.search(&empty, &[0.0; 8], 10), Vec::<usize>::new());

        let all_invalid = ScoreMatrix::invalid(5, 8);
        let idx = HnswIndex::build(&all_invalid, &HnswParams::default());
        assert!(idx.is_empty());
        assert_eq!(idx.layers(), 0);

        let mut one = ScoreMatrix::invalid(3, 4);
        one.set_row(1, &[1.0, 0.0, 0.0, 0.0]);
        let idx = HnswIndex::build(&one, &HnswParams::default());
        assert_eq!(idx.count(), 1);
        assert_eq!(idx.search(&one, &[0.5, 0.5, 0.0, 0.0], 8), vec![1]);
    }

    #[test]
    fn wide_open_pool_is_every_valid_row() {
        let m = random_matrix(300, 16, 3);
        let idx = HnswIndex::build(&m, &HnswParams::default());
        let all: Vec<usize> = (0..m.rows()).filter(|&i| m.is_valid(i)).collect();
        let got = idx.search(&m, m.row(0), m.rows());
        assert_eq!(got, all);
    }

    #[test]
    fn pool_is_unique_valid_and_bounded() {
        let m = random_matrix(500, 16, 9);
        let idx = HnswIndex::build(&m, &HnswParams::default());
        let pool = idx.search(&m, m.row(2), 64);
        assert!(pool.len() <= 64);
        assert!(!pool.is_empty());
        let mut sorted = pool.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), pool.len(), "pool must be duplicate-free");
        assert!(pool.iter().all(|&t| m.is_valid(t)));
    }

    #[test]
    fn recall_is_high_on_a_small_corpus() {
        let m = random_matrix(1000, 16, 5);
        let idx = HnswIndex::build(&m, &HnswParams::default());
        let k = 10;
        let mut hit = 0usize;
        let mut total = 0usize;
        for q in (0..m.rows()).step_by(31) {
            if !m.is_valid(q) {
                continue;
            }
            let qrow = m.row(q);
            let truth: Vec<usize> = exact_top_k(&m, qrow, k)
                .into_iter()
                .filter(|&(_, s)| s > -1.0)
                .map(|(t, _)| t)
                .collect();
            let pool = idx.search(&m, qrow, 200);
            hit += truth.iter().filter(|t| pool.contains(t)).count();
            total += truth.len();
        }
        assert!(total > 0);
        let recall = hit as f64 / total as f64;
        assert!(recall >= 0.9, "recall@{k} = {recall:.3} below 0.9");
    }

    #[test]
    fn reused_scratch_matches_fresh_scratch_bit_for_bit() {
        let m = random_matrix(600, 16, 21);
        let idx = HnswIndex::build(&m, &HnswParams::default());
        let mut scratch = SearchScratch::new();
        for q in (0..m.rows()).step_by(29) {
            if !m.is_valid(q) {
                continue;
            }
            let fresh = idx.search(&m, m.row(q), 48);
            let reused = idx.search_with(&m, m.row(q), 48, 48, &mut scratch);
            assert_eq!(fresh, reused, "query {q} diverged under scratch reuse");
        }
        // The same scratch survives a differently-shaped matrix.
        let m2 = random_matrix(150, 16, 22);
        let idx2 = HnswIndex::build(&m2, &HnswParams::default());
        assert_eq!(
            idx2.search(&m2, m2.row(0), 32),
            idx2.search_with(&m2, m2.row(0), 32, 32, &mut scratch),
        );
    }

    #[test]
    fn wider_ef_keeps_pool_bounded_and_helps_recall() {
        let m = random_matrix(1000, 16, 5);
        let idx = HnswIndex::build(&m, &HnswParams::default());
        let mut scratch = SearchScratch::new();
        let mut recall_at = |ef: usize| {
            let (mut hit, mut total) = (0usize, 0usize);
            for q in (0..m.rows()).step_by(31) {
                if !m.is_valid(q) {
                    continue;
                }
                let qrow = m.row(q);
                let truth: Vec<usize> = exact_top_k(&m, qrow, 10)
                    .into_iter()
                    .filter(|&(_, s)| s > -1.0)
                    .map(|(t, _)| t)
                    .collect();
                let pool = idx.search_with(&m, qrow, 32, ef, &mut scratch);
                assert!(pool.len() <= 32, "ef must not widen the pool");
                hit += truth.iter().filter(|t| pool.contains(t)).count();
                total += truth.len();
            }
            hit as f64 / total.max(1) as f64
        };
        let narrow = recall_at(32); // ef == pool: the `search` default
        let wide = recall_at(256);
        assert!(
            wide >= narrow,
            "widening the beam lost recall: ef 256 {wide:.3} < ef 32 {narrow:.3}"
        );
        // An ef below the pool is clamped up to it, not honored.
        assert_eq!(
            idx.search_with(&m, m.row(0), 64, 1, &mut scratch),
            idx.search(&m, m.row(0), 64),
        );
    }

    #[test]
    fn insert_appends_and_search_covers_them() {
        let mut m = random_matrix(300, 16, 3);
        let mut idx = HnswIndex::build(&m, &HnswParams::default());
        // Append 10 rows and insert them incrementally.
        m.grow_rows(310);
        let mut state = 77u64;
        let mut next = move || {
            state ^= state >> 12;
            state ^= state << 25;
            state ^= state >> 27;
            (state.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 40) as f32 / (1 << 24) as f32 - 0.5
        };
        let added: Vec<usize> = (300..310).collect();
        for &i in &added {
            let row: Vec<f32> = (0..16).map(|_| next()).collect();
            m.set_row(i, &row);
        }
        idx.insert(&m, &added, &[]);
        assert_eq!(idx.rows(), 310);
        assert_eq!(idx.count(), m.valid_rows());
        // Wide-open pool is still every valid row (exact-scan candidate set).
        let all: Vec<usize> = (0..m.rows()).filter(|&i| m.is_valid(i)).collect();
        assert_eq!(idx.search(&m, m.row(0), m.rows()), all);
        // A narrow pool can reach an inserted node when queried by it.
        let pool = idx.search(&m, m.row(305), 32);
        assert!(pool.contains(&305), "inserted node unreachable: {pool:?}");
    }

    #[test]
    fn insert_is_deterministic_and_order_independent_per_node() {
        let mut m = random_matrix(200, 12, 9);
        let idx0 = HnswIndex::build(&m, &HnswParams::default());
        m.grow_rows(220);
        for i in 200..220 {
            let row: Vec<f32> = (0..12).map(|d| ((i * 31 + d) as f32).sin()).collect();
            m.set_row(i, &row);
        }
        let added: Vec<usize> = (200..220).collect();
        let mut a = idx0.clone();
        a.insert(&m, &added, &[]);
        let mut b = idx0.clone();
        b.insert(&m, &added, &[]);
        assert_eq!(a, b, "same delta must produce the same index");
    }

    #[test]
    fn insert_removes_tombstones_from_every_neighbor_list() {
        let m0 = random_matrix(400, 16, 5);
        let mut idx = HnswIndex::build(&m0, &HnswParams::default());
        let dead: Vec<usize> = (0..m0.rows()).filter(|&i| m0.is_valid(i)).step_by(7).collect();
        let mut m = m0.clone();
        for &d in &dead {
            m.clear_row(d);
        }
        idx.insert(&m, &[], &dead);
        assert_eq!(idx.count(), m.valid_rows());
        // No neighbor list anywhere references a removed node.
        for l in 0..idx.layers() {
            for n in 0..idx.rows() {
                for &nb in idx.neighbors_of(l, n) {
                    assert!(!dead.contains(&(nb as usize)), "layer {l} node {n} -> {nb}");
                }
            }
        }
        // Narrow pools never surface a tombstoned row.
        for q in (0..m.rows()).step_by(41) {
            if !m.is_valid(q) {
                continue;
            }
            let pool = idx.search(&m, m.row(q), 24);
            assert!(pool.iter().all(|&t| m.is_valid(t)));
        }
    }

    #[test]
    fn insert_survives_entry_removal_and_total_teardown() {
        let m0 = random_matrix(120, 8, 13);
        let idx0 = HnswIndex::build(&m0, &HnswParams::default());
        let entry_node = idx0.entry;

        // Remove the entry point: a new one is chosen and search works.
        let mut m = m0.clone();
        m.clear_row(entry_node);
        let mut idx = idx0.clone();
        idx.insert(&m, &[], &[entry_node]);
        assert_eq!(idx.count(), m.valid_rows());
        assert!(m.is_valid(idx.entry), "repaired entry must be a live row");
        let pool = idx.search(&m, m.row(idx.entry), 16);
        assert!(!pool.is_empty() && pool.iter().all(|&t| m.is_valid(t)));

        // Remove everything, then insert one fresh node: a fresh index.
        let all: Vec<usize> = (0..m0.rows()).filter(|&i| m0.is_valid(i)).collect();
        let mut empty = ScoreMatrix::invalid(m0.rows(), 8);
        let mut idx = idx0.clone();
        idx.insert(&empty, &[], &all);
        assert!(idx.is_empty());
        assert_eq!(idx.layers(), 0);
        empty.set_row(3, &[1.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0]);
        idx.insert(&empty, &[3], &[]);
        assert_eq!(idx.count(), 1);
        assert_eq!(idx.search(&empty, empty.row(3), 4), vec![3]);
    }

    #[test]
    fn inserted_index_roundtrips_through_sections() {
        let mut m = random_matrix(150, 12, 17);
        let mut idx = HnswIndex::build(&m, &HnswParams::default());
        m.grow_rows(160);
        for i in 150..160 {
            let row: Vec<f32> = (0..12).map(|d| ((i * 13 + d) as f32).cos()).collect();
            m.set_row(i, &row);
        }
        idx.insert(&m, &(150..160).collect::<Vec<_>>(), &[2, 5]);
        let mut w = ContainerWriter::new();
        idx.write_sections(0, &mut w);
        let bytes = w.finish();
        let storage = Storage::from_bytes(&bytes);
        let container = storage.container().expect("parse");
        let loaded = HnswIndex::from_sections(&storage, &container, 0)
            .expect("post-insert index must satisfy full structural validation");
        assert_eq!(idx, loaded);
    }

    #[test]
    fn sections_roundtrip_bit_identical() {
        let m = random_matrix(300, 12, 11);
        let idx = HnswIndex::build(&m, &HnswParams::default());
        let mut w = ContainerWriter::new();
        idx.write_sections(0, &mut w);
        let bytes = w.finish();
        let storage = Storage::from_bytes(&bytes);
        let container = storage.container().expect("parse");
        let loaded = HnswIndex::from_sections(&storage, &container, 0).expect("load");
        assert!(loaded.is_zero_copy());
        assert_eq!(idx, loaded);
        // A loaded index searches identically.
        assert_eq!(idx.search(&m, m.row(1), 50), loaded.search(&m, m.row(1), 50));
    }

    #[test]
    fn from_sections_rejects_structural_corruption() {
        let m = random_matrix(64, 8, 13);
        let idx = HnswIndex::build(&m, &HnswParams::default());

        // Out-of-range neighbor index.
        let mut bad = idx.clone();
        bad.neighbors.make_mut()[0] = bad.rows as u32;
        let mut w = ContainerWriter::new();
        bad.write_sections(0, &mut w);
        let bytes = w.finish();
        let storage = Storage::from_bytes(&bytes);
        let container = storage.container().expect("parse");
        assert!(HnswIndex::from_sections(&storage, &container, 0).is_err());

        // Non-monotone offsets.
        let mut bad = idx.clone();
        let o = bad.offsets.make_mut();
        if o.len() > 2 {
            o[1] = u32::MAX;
        }
        let mut w = ContainerWriter::new();
        bad.write_sections(0, &mut w);
        let bytes = w.finish();
        let storage = Storage::from_bytes(&bytes);
        let container = storage.container().expect("parse");
        assert!(HnswIndex::from_sections(&storage, &container, 0).is_err());

        // Missing section.
        let mut w = ContainerWriter::new();
        idx.write_sections(0, &mut w);
        let bytes = w.finish();
        let storage = Storage::from_bytes(&bytes);
        let container = storage.container().expect("parse");
        assert!(HnswIndex::from_sections(&storage, &container, 1).is_err());
    }
}
