//! Corpus deltas for incremental ingest — append / update / tombstone
//! of first-corpus (target-side) documents, applied to a loaded
//! [`MatchArtifact`](crate::artifact::MatchArtifact) or a live
//! [`TdModel`](crate::pipeline::TdModel) without a refit.
//!
//! The fit is expensive (graph build → walks → Word2Vec, tens of
//! seconds on the benchmark corpus) while the quantity that matching
//! actually consumes — a document's embedding — is a *cheap, frozen
//! function of the vocabulary*: the mean of its known terms' vectors
//! (§V's aggregation, [`MatchArtifact::embed_tokens`]). A delta
//! therefore re-embeds only the touched documents against the frozen
//! term table and leaves every other row's bits untouched, which is
//! what makes the delta path **bit-identical** to a from-scratch
//! re-export over the final corpus with the same vocabulary
//! (`crates/core/tests/delta_prop.rs` pins this).
//!
//! Tokens in a [`DeltaOp`] must be pre-processed the same way the fit
//! was — use `tdmatch_text::Preprocessor::terms_of_fields` with the
//! fitted config's preprocess options, or [`DeltaBatch::from_tsv`]
//! which does exactly that. Terms outside the frozen vocabulary are
//! ignored; a document with *no* known term embeds to nothing and its
//! row becomes invalid (it still occupies its slot and ranks last at
//! exactly −1.0 — the engine's missing-row semantics).
//!
//! [`MatchArtifact::embed_tokens`]: crate::artifact::MatchArtifact::embed_tokens

use tdmatch_text::Preprocessor;

/// One target-side mutation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DeltaOp {
    /// Adds a new target document at the next free row index.
    Append {
        /// Pre-processed terms of the new document.
        tokens: Vec<String>,
    },
    /// Re-embeds an existing target row in place.
    Update {
        /// Row index of the target to re-embed.
        target: usize,
        /// Pre-processed terms of the replacement document.
        tokens: Vec<String>,
    },
    /// Removes a target row. Its slot stays allocated (ids are stable)
    /// and scores exactly −1.0 from then on.
    Tombstone {
        /// Row index of the target to remove.
        target: usize,
    },
}

/// An ordered batch of target-side mutations.
///
/// Ops apply in order: an `Append` allocates the next row index, so a
/// later `Update`/`Tombstone` may address a row appended earlier in the
/// same batch. Built programmatically with the chaining constructors or
/// parsed from the `tdmatch ingest` TSV format via
/// [`from_tsv`](DeltaBatch::from_tsv).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DeltaBatch {
    /// The mutations, in application order.
    pub ops: Vec<DeltaOp>,
}

impl DeltaBatch {
    /// An empty batch.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a new target document (chaining).
    pub fn append<S: Into<String>>(mut self, tokens: impl IntoIterator<Item = S>) -> Self {
        self.ops.push(DeltaOp::Append {
            tokens: tokens.into_iter().map(Into::into).collect(),
        });
        self
    }

    /// Re-embeds target row `target` (chaining).
    pub fn update<S: Into<String>>(
        mut self,
        target: usize,
        tokens: impl IntoIterator<Item = S>,
    ) -> Self {
        self.ops.push(DeltaOp::Update {
            target,
            tokens: tokens.into_iter().map(Into::into).collect(),
        });
        self
    }

    /// Tombstones target row `target` (chaining).
    pub fn tombstone(mut self, target: usize) -> Self {
        self.ops.push(DeltaOp::Tombstone { target });
        self
    }

    /// Number of ops in the batch.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// True when the batch holds no ops.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Parses the `tdmatch ingest` delta file format: one op per line,
    /// tab-separated, `#`-comments and blank lines ignored.
    ///
    /// ```text
    /// append <TAB> field1 [<TAB> field2 ...]
    /// update <TAB> ROW <TAB> field1 [<TAB> field2 ...]
    /// tombstone <TAB> ROW
    /// ```
    ///
    /// Fields are raw document text; they are pre-processed here with
    /// `pre` (the same `base_tokens` → per-field n-grams pipeline the
    /// fit used, so parsed deltas embed exactly like fitted documents).
    pub fn from_tsv(text: &str, pre: &Preprocessor) -> Result<Self, String> {
        let mut batch = DeltaBatch::new();
        for (ln, line) in text.lines().enumerate() {
            let line = line.trim_end_matches('\r');
            if line.trim().is_empty() || line.trim_start().starts_with('#') {
                continue;
            }
            let mut parts = line.split('\t');
            let op = parts.next().unwrap_or("");
            let parse_row = |s: Option<&str>| -> Result<usize, String> {
                s.ok_or_else(|| format!("line {}: missing row index", ln + 1))?
                    .trim()
                    .parse()
                    .map_err(|_| format!("line {}: bad row index", ln + 1))
            };
            match op {
                "append" => {
                    let fields: Vec<&str> = parts.collect();
                    if fields.is_empty() {
                        return Err(format!("line {}: append needs at least one field", ln + 1));
                    }
                    batch = batch.append(pre.terms_of_fields(fields));
                }
                "update" => {
                    let target = parse_row(parts.next())?;
                    let fields: Vec<&str> = parts.collect();
                    if fields.is_empty() {
                        return Err(format!("line {}: update needs at least one field", ln + 1));
                    }
                    batch = batch.update(target, pre.terms_of_fields(fields));
                }
                "tombstone" => {
                    let target = parse_row(parts.next())?;
                    if parts.next().is_some() {
                        return Err(format!("line {}: tombstone takes only a row index", ln + 1));
                    }
                    batch = batch.tombstone(target);
                }
                other => {
                    return Err(format!(
                        "line {}: unknown op {other:?} (expected append/update/tombstone)",
                        ln + 1
                    ));
                }
            }
        }
        Ok(batch)
    }
}

/// What applying a delta changed — returned by
/// [`MatchArtifact::apply_delta`](crate::artifact::MatchArtifact::apply_delta)
/// and [`TdModel::apply_delta`](crate::pipeline::TdModel::apply_delta).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DeltaSummary {
    /// Rows appended to the target matrix.
    pub appended: usize,
    /// Existing rows re-embedded in place.
    pub updated: usize,
    /// Rows tombstoned.
    pub tombstoned: usize,
    /// Rows inserted into the ANN index (0 when no index is carried).
    pub ann_inserted: usize,
    /// Members dropped from the ANN index (0 when no index is carried).
    pub ann_removed: usize,
    /// Target-side row count after the delta.
    pub rows: usize,
}

#[cfg(test)]
mod tests {
    use super::*;
    use tdmatch_text::PreprocessOptions;

    #[test]
    fn builder_chains_ops_in_order() {
        let b = DeltaBatch::new()
            .append(["quentin", "tarantino"])
            .update(3, ["bruce", "willis"])
            .tombstone(1);
        assert_eq!(b.len(), 3);
        assert_eq!(
            b.ops[0],
            DeltaOp::Append { tokens: vec!["quentin".into(), "tarantino".into()] }
        );
        assert_eq!(b.ops[2], DeltaOp::Tombstone { target: 1 });
    }

    #[test]
    fn tsv_parses_ops_and_preprocesses_fields() {
        let pre = Preprocessor::new(PreprocessOptions {
            remove_stopwords: false,
            stem: false,
            max_ngram: 1,
        });
        let text = "# a comment\n\nappend\talpha beta\nupdate\t2\tgamma\ntombstone\t0\n";
        let b = DeltaBatch::from_tsv(text, &pre).unwrap();
        assert_eq!(b.len(), 3);
        assert_eq!(
            b.ops[0],
            DeltaOp::Append { tokens: vec!["alpha".into(), "beta".into()] }
        );
        assert_eq!(
            b.ops[1],
            DeltaOp::Update { target: 2, tokens: vec!["gamma".into()] }
        );
        assert_eq!(b.ops[2], DeltaOp::Tombstone { target: 0 });
    }

    #[test]
    fn tsv_rejects_malformed_lines() {
        let pre = Preprocessor::default();
        for bad in [
            "frobnicate\tx",
            "append",
            "update\tnot-a-number\tx",
            "update\t1",
            "tombstone\t1\textra",
        ] {
            assert!(DeltaBatch::from_tsv(bad, &pre).is_err(), "{bad:?} parsed");
        }
    }
}
