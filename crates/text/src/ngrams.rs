//! Contiguous n-gram term generation (§II-D).
//!
//! A cell value such as *The Sixth Sense* must not be lost by splitting it
//! into single-word nodes, nor be kept only as a monolithic value that never
//! overlaps with review text. The paper's solution generates all n-grams
//! for `n = 1..=max_n` so that *The Sixth Sense* yields `Six`, `Sense`,
//! `The Six`, `Six Sense`, and `The Six Sense` as data nodes. The default
//! `max_n = 3` was chosen by profiling Wikipedia titles (99 % have at most
//! three tokens).

/// Default maximum n-gram order, per §II-D.
pub const DEFAULT_MAX_N: usize = 3;

/// Generates all contiguous n-grams of `tokens` for `n = 1..=max_n`,
/// joining tokens with a single space.
///
/// ```
/// use tdmatch_text::ngrams::ngrams;
/// let toks = vec!["six".into(), "sense".into()];
/// assert_eq!(ngrams(&toks, 2), vec!["six", "sense", "six sense"]);
/// ```
pub fn ngrams(tokens: &[String], max_n: usize) -> Vec<String> {
    let max_n = max_n.max(1);
    let mut out = Vec::with_capacity(tokens.len() * max_n);
    for n in 1..=max_n {
        if n > tokens.len() {
            break;
        }
        for window in tokens.windows(n) {
            out.push(window.join(" "));
        }
    }
    out
}

/// Exact number of n-grams [`ngrams`] will produce without generating them.
pub fn ngram_count(token_count: usize, max_n: usize) -> usize {
    let max_n = max_n.max(1).min(token_count);
    (1..=max_n).map(|n| token_count + 1 - n).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(words: &[&str]) -> Vec<String> {
        words.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn paper_example_trigram_expansion() {
        // "The Sixth Sense" stems to ["the","sixth","sense"]; the paper's
        // running example uses "The Six Sense" after stemming — five nodes
        // once "the" survives pre-stop-word removal. We check the counts.
        let t = toks(&["the", "six", "sense"]);
        let grams = ngrams(&t, 3);
        assert_eq!(
            grams,
            vec!["the", "six", "sense", "the six", "six sense", "the six sense"]
        );
    }

    #[test]
    fn unigrams_only() {
        let t = toks(&["a", "b", "c"]);
        assert_eq!(ngrams(&t, 1), vec!["a", "b", "c"]);
    }

    #[test]
    fn max_n_longer_than_input() {
        let t = toks(&["solo"]);
        assert_eq!(ngrams(&t, 5), vec!["solo"]);
    }

    #[test]
    fn empty_input() {
        assert!(ngrams(&[], 3).is_empty());
        assert_eq!(ngram_count(0, 3), 0);
    }

    #[test]
    fn count_matches_generation() {
        for len in 0..6 {
            for n in 1..5 {
                let t: Vec<String> = (0..len).map(|i| format!("w{i}")).collect();
                assert_eq!(ngrams(&t, n).len(), ngram_count(len, n), "len={len} n={n}");
            }
        }
    }

    #[test]
    fn zero_max_n_behaves_as_one() {
        let t = toks(&["a", "b"]);
        assert_eq!(ngrams(&t, 0), vec!["a", "b"]);
    }
}
