//! Random sampling over the graph: neighbors and random walks (Alg. 4),
//! plus the biased variants (node2vec second-order walks, edge-type
//! weighted walks) that plug into the embedding generator.

use rand::seq::IndexedRandom;
use rand::{Rng, RngExt};

use crate::csr::{CsrGraph, EdgeTypeCum};
use crate::edge::EdgeTypeWeights;
use crate::graph::Graph;
use crate::node::NodeId;

/// Picks a uniformly random neighbor of `node`, or `None` for isolated /
/// removed nodes.
#[inline]
pub fn random_neighbor<R: Rng + ?Sized>(g: &Graph, node: NodeId, rng: &mut R) -> Option<NodeId> {
    g.neighbors(node).choose(rng).copied()
}

/// Generates one random walk of exactly `len` *steps* starting at `start`
/// (the paper's Alg. 4 appends `len` randomly chosen neighbors). The walk
/// includes the start node followed by up to `len` sampled nodes; it stops
/// early only if it reaches an isolated node.
pub fn random_walk<R: Rng + ?Sized>(
    g: &Graph,
    start: NodeId,
    len: usize,
    rng: &mut R,
) -> Vec<NodeId> {
    let mut walk = Vec::with_capacity(len + 1);
    walk.push(start);
    let mut cur = start;
    for _ in 0..len {
        match random_neighbor(g, cur, rng) {
            Some(next) => {
                walk.push(next);
                cur = next;
            }
            None => break,
        }
    }
    walk
}

/// Picks a uniformly random element of `items`.
pub fn choose<'a, T, R: Rng + ?Sized>(items: &'a [T], rng: &mut R) -> Option<&'a T> {
    items.choose(rng)
}

/// Samples an index from unnormalized non-negative `weights` by cumulative
/// sum. Returns `None` when all weights are zero (or the slice is empty).
///
/// The selection rule is "first index whose running prefix sum exceeds
/// `r · total`", with the prefix accumulated by sequential `f32` addition.
/// [`sample_cumulative`] applies the same rule to a *precomputed* prefix
/// table; keeping both on one arithmetic definition is what makes walks
/// over a [`CsrGraph`] byte-identical to walks over the mutable graph.
fn sample_weighted<R: Rng + ?Sized>(weights: &[f32], rng: &mut R) -> Option<usize> {
    let mut total = 0.0f32;
    for &w in weights {
        total += w;
    }
    if total <= 0.0 || total.is_nan() {
        return None;
    }
    // Reborrow: `Rng::random` needs `Self: Sized`, and `&mut R` is.
    let target = (*rng).random::<f32>() * total;
    let mut running = 0.0f32;
    for (i, &w) in weights.iter().enumerate() {
        running += w;
        if running > target {
            return Some(i);
        }
    }
    // Float round-off can leave the prefix at ~target; fall back to the
    // last positive-weight index.
    weights.iter().rposition(|&w| w > 0.0)
}

/// [`sample_weighted`] over a precomputed prefix-sum table: binary search
/// for the first entry exceeding `r · total` (O(log n) instead of O(n)).
/// `positive` reports whether the weight at an index is positive, for the
/// round-off fallback. Draws from `rng` exactly like [`sample_weighted`].
fn sample_cumulative<R: Rng + ?Sized>(
    cum: &[f32],
    positive: impl Fn(usize) -> bool,
    rng: &mut R,
) -> Option<usize> {
    let total = *cum.last()?;
    if total <= 0.0 || total.is_nan() {
        return None;
    }
    let target = (*rng).random::<f32>() * total;
    let idx = cum.partition_point(|&c| c <= target);
    if idx < cum.len() {
        return Some(idx);
    }
    (0..cum.len()).rev().find(|&i| positive(i))
}

/// One random walk where each transition is weighted by the edge's
/// [`EdgeKind`](crate::edge::EdgeKind) via `weights`. With uniform weights
/// this is exactly [`random_walk`]. Edges whose kind has weight `0.0` are
/// never crossed; the walk stops early if no crossable edge remains.
pub fn random_walk_edge_typed<R: Rng + ?Sized>(
    g: &Graph,
    start: NodeId,
    len: usize,
    weights: &EdgeTypeWeights,
    rng: &mut R,
) -> Vec<NodeId> {
    let mut walk = Vec::with_capacity(len + 1);
    walk.push(start);
    let mut cur = start;
    let mut buf: Vec<f32> = Vec::new();
    for _ in 0..len {
        let neighbors = g.neighbors(cur);
        if neighbors.is_empty() {
            break;
        }
        buf.clear();
        buf.extend(g.neighbor_kinds(cur).iter().map(|&k| weights.get(k)));
        match sample_weighted(&buf, rng) {
            Some(i) => {
                cur = neighbors[i];
                walk.push(cur);
            }
            None => break,
        }
    }
    walk
}

/// One node2vec-style second-order random walk (Grover & Leskovec, KDD'16
/// — cited by the paper as an alternative embedding generator, §IV-A).
///
/// Given the previous node `t` and current node `v`, the unnormalized
/// probability of stepping to neighbor `x` is:
///
/// * `1/p` when `x == t` (return),
/// * `1`   when `x` is a neighbor of `t` (stay close),
/// * `1/q` otherwise (explore).
///
/// `p` is the *return* parameter, `q` the *in-out* parameter; `p = q = 1`
/// reduces to the paper's uniform walk. Both must be positive.
pub fn random_walk_node2vec<R: Rng + ?Sized>(
    g: &Graph,
    start: NodeId,
    len: usize,
    p: f32,
    q: f32,
    rng: &mut R,
) -> Vec<NodeId> {
    debug_assert!(p > 0.0 && q > 0.0, "node2vec parameters must be positive");
    let mut walk = Vec::with_capacity(len + 1);
    walk.push(start);
    // First step has no history: uniform.
    let Some(first) = random_neighbor(g, start, rng) else {
        return walk;
    };
    walk.push(first);
    let (mut prev, mut cur) = (start, first);
    let (inv_p, inv_q) = (1.0 / p, 1.0 / q);
    let mut buf: Vec<f32> = Vec::new();
    for _ in 1..len {
        let neighbors = g.neighbors(cur);
        if neighbors.is_empty() {
            break;
        }
        buf.clear();
        buf.extend(neighbors.iter().map(|&x| {
            if x == prev {
                inv_p
            } else if g.has_edge(prev, x) {
                1.0
            } else {
                inv_q
            }
        }));
        match sample_weighted(&buf, rng) {
            Some(i) => {
                prev = cur;
                cur = neighbors[i];
                walk.push(cur);
            }
            None => break,
        }
    }
    walk
}

/// One uniform random walk over a CSR snapshot, appended to `out` as raw
/// `u32` tokens (no per-walk allocation). Byte-identical to
/// [`random_walk`] over the source graph under the same RNG stream.
pub fn random_walk_csr_into<R: Rng + ?Sized>(
    g: &CsrGraph,
    start: NodeId,
    len: usize,
    rng: &mut R,
    out: &mut Vec<u32>,
) {
    out.push(start.0);
    let mut cur = start;
    for _ in 0..len {
        match g.neighbors(cur).choose(rng) {
            Some(&next) => {
                out.push(next.0);
                cur = next;
            }
            None => break,
        }
    }
}

/// One edge-type-weighted walk over a CSR snapshot using a precomputed
/// cumulative weight table ([`CsrGraph::edge_type_cum`]): each transition
/// samples by binary search over the node's prefix sums, O(log degree).
/// Byte-identical to [`random_walk_edge_typed`] under the same RNG stream.
pub fn random_walk_edge_typed_csr_into<R: Rng + ?Sized>(
    g: &CsrGraph,
    start: NodeId,
    len: usize,
    weights: &EdgeTypeWeights,
    cum: &EdgeTypeCum,
    rng: &mut R,
    out: &mut Vec<u32>,
) {
    out.push(start.0);
    let mut cur = start;
    for _ in 0..len {
        let neighbors = g.neighbors(cur);
        if neighbors.is_empty() {
            break;
        }
        let kinds = g.neighbor_kinds(cur);
        let slice = g.cum_slice(cum, cur);
        match sample_cumulative(slice, |i| weights.get(kinds[i]) > 0.0, rng) {
            Some(i) => {
                cur = neighbors[i];
                out.push(cur.0);
            }
            None => break,
        }
    }
}

/// One node2vec second-order walk over a CSR snapshot. The `prev`-neighbor
/// probe uses the snapshot's binary-search [`has_edge`], so each step costs
/// O(degree · log degree) instead of O(degree²); `buf` is caller-provided
/// scratch reused across walks. Byte-identical to [`random_walk_node2vec`]
/// under the same RNG stream.
///
/// [`has_edge`]: CsrGraph::has_edge
#[allow(clippy::too_many_arguments)] // mirrors the walk-primitive family's flat signatures
pub fn random_walk_node2vec_csr_into<R: Rng + ?Sized>(
    g: &CsrGraph,
    start: NodeId,
    len: usize,
    p: f32,
    q: f32,
    rng: &mut R,
    buf: &mut Vec<f32>,
    out: &mut Vec<u32>,
) {
    debug_assert!(p > 0.0 && q > 0.0, "node2vec parameters must be positive");
    out.push(start.0);
    // First step has no history: uniform.
    let Some(&first) = g.neighbors(start).choose(rng) else {
        return;
    };
    out.push(first.0);
    let (mut prev, mut cur) = (start, first);
    let (inv_p, inv_q) = (1.0 / p, 1.0 / q);
    for _ in 1..len {
        let neighbors = g.neighbors(cur);
        if neighbors.is_empty() {
            break;
        }
        buf.clear();
        buf.extend(neighbors.iter().map(|&x| {
            if x == prev {
                inv_p
            } else if g.has_edge(prev, x) {
                1.0
            } else {
                inv_q
            }
        }));
        match sample_weighted(buf, rng) {
            Some(i) => {
                prev = cur;
                cur = neighbors[i];
                out.push(cur.0);
            }
            None => break,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn walk_has_expected_length_and_valid_edges() {
        let mut g = Graph::new();
        let nodes: Vec<NodeId> = (0..10).map(|i| g.intern_data(&format!("n{i}"))).collect();
        for w in nodes.windows(2) {
            g.add_edge(w[0], w[1]);
        }
        let mut rng = SmallRng::seed_from_u64(7);
        let walk = random_walk(&g, nodes[0], 20, &mut rng);
        assert_eq!(walk.len(), 21);
        for pair in walk.windows(2) {
            assert!(g.has_edge(pair[0], pair[1]));
        }
    }

    #[test]
    fn walk_from_isolated_node_is_singleton() {
        let mut g = Graph::new();
        let a = g.intern_data("a");
        let mut rng = SmallRng::seed_from_u64(1);
        assert_eq!(random_walk(&g, a, 5, &mut rng), vec![a]);
        assert_eq!(random_neighbor(&g, a, &mut rng), None);
    }

    #[test]
    fn walks_are_deterministic_under_seed() {
        let mut g = Graph::new();
        let a = g.intern_data("a");
        let b = g.intern_data("b");
        let c = g.intern_data("c");
        g.add_edge(a, b);
        g.add_edge(a, c);
        g.add_edge(b, c);
        let w1 = random_walk(&g, a, 10, &mut SmallRng::seed_from_u64(42));
        let w2 = random_walk(&g, a, 10, &mut SmallRng::seed_from_u64(42));
        assert_eq!(w1, w2);
    }

    #[test]
    fn weighted_sampler_respects_zero_and_point_masses() {
        let mut rng = SmallRng::seed_from_u64(3);
        assert_eq!(sample_weighted(&[], &mut rng), None);
        assert_eq!(sample_weighted(&[0.0, 0.0], &mut rng), None);
        for _ in 0..20 {
            assert_eq!(sample_weighted(&[0.0, 1.0, 0.0], &mut rng), Some(1));
        }
    }

    #[test]
    fn edge_typed_walk_never_crosses_zero_weight_edges() {
        use crate::edge::EdgeKind;
        // a —Contains— b —External— c. Forbidding External traps the walk
        // on {a, b}.
        let mut g = Graph::new();
        let a = g.intern_data("a");
        let b = g.intern_data("b");
        let c = g.intern_data("c");
        g.add_edge_typed(a, b, EdgeKind::Contains);
        g.add_edge_typed(b, c, EdgeKind::External);
        let weights = EdgeTypeWeights::uniform().with(EdgeKind::External, 0.0);
        let mut rng = SmallRng::seed_from_u64(5);
        for _ in 0..10 {
            let walk = random_walk_edge_typed(&g, a, 12, &weights, &mut rng);
            assert!(!walk.contains(&c), "walk crossed a zero-weight edge");
        }
    }

    #[test]
    fn edge_typed_walk_with_uniform_weights_matches_plain_walk() {
        let mut g = Graph::new();
        let ids: Vec<NodeId> = (0..8).map(|i| g.intern_data(&format!("n{i}"))).collect();
        for w in ids.windows(2) {
            g.add_edge(w[0], w[1]);
        }
        let weights = EdgeTypeWeights::uniform();
        let walk = random_walk_edge_typed(&g, ids[0], 15, &weights, &mut SmallRng::seed_from_u64(11));
        assert_eq!(walk.len(), 16);
        for pair in walk.windows(2) {
            assert!(g.has_edge(pair[0], pair[1]));
        }
    }

    #[test]
    fn node2vec_walk_follows_edges_and_is_deterministic() {
        let mut g = Graph::new();
        let ids: Vec<NodeId> = (0..10).map(|i| g.intern_data(&format!("n{i}"))).collect();
        for i in 0..10 {
            g.add_edge(ids[i], ids[(i + 1) % 10]);
            g.add_edge(ids[i], ids[(i + 3) % 10]);
        }
        let w1 = random_walk_node2vec(&g, ids[0], 20, 0.5, 2.0, &mut SmallRng::seed_from_u64(7));
        let w2 = random_walk_node2vec(&g, ids[0], 20, 0.5, 2.0, &mut SmallRng::seed_from_u64(7));
        assert_eq!(w1, w2);
        assert_eq!(w1.len(), 21);
        for pair in w1.windows(2) {
            assert!(g.has_edge(pair[0], pair[1]));
        }
    }

    #[test]
    fn node2vec_low_p_returns_more_often() {
        // On a path graph, the middle node's walker either returns (weight
        // 1/p) or moves on (weight 1/q since endpoints of a path share no
        // neighbors). With p tiny, returning dominates.
        let mut g = Graph::new();
        let ids: Vec<NodeId> = (0..30).map(|i| g.intern_data(&format!("n{i}"))).collect();
        for w in ids.windows(2) {
            g.add_edge(w[0], w[1]);
        }
        let count_returns = |p: f32, q: f32, seed: u64| {
            let mut rng = SmallRng::seed_from_u64(seed);
            let mut returns = 0usize;
            let mut steps = 0usize;
            for _ in 0..50 {
                let walk = random_walk_node2vec(&g, ids[15], 10, p, q, &mut rng);
                for win in walk.windows(3) {
                    steps += 1;
                    if win[0] == win[2] {
                        returns += 1;
                    }
                }
            }
            returns as f64 / steps.max(1) as f64
        };
        let returny = count_returns(0.05, 1.0, 9);
        let explorey = count_returns(20.0, 1.0, 9);
        assert!(
            returny > explorey + 0.2,
            "low p should return far more often: {returny} vs {explorey}"
        );
    }

    #[test]
    fn csr_walks_match_graph_walks_token_for_token() {
        use crate::csr::CsrGraph;
        use crate::edge::EdgeKind;
        // A messy graph: ring + chords + typed edges + a tombstone.
        let mut g = Graph::new();
        let ids: Vec<NodeId> = (0..12).map(|i| g.intern_data(&format!("n{i}"))).collect();
        for i in 0..12 {
            g.add_edge_typed(
                ids[i],
                ids[(i + 1) % 12],
                if i % 2 == 0 { EdgeKind::Contains } else { EdgeKind::External },
            );
            g.add_edge_typed(ids[i], ids[(i + 5) % 12], EdgeKind::Hierarchy);
        }
        g.remove_node(ids[7]);
        let csr = CsrGraph::from_graph(&g);
        let weights = EdgeTypeWeights::uniform()
            .with(EdgeKind::External, 2.5)
            .with(EdgeKind::Hierarchy, 0.5);
        let cum = csr.edge_type_cum(&weights);
        let mut buf = Vec::new();
        for seed in 0..40u64 {
            let start = ids[(seed % 12) as usize];
            if g.is_removed(start) {
                continue;
            }
            let reference: Vec<u32> = random_walk(&g, start, 9, &mut SmallRng::seed_from_u64(seed))
                .into_iter()
                .map(|n| n.0)
                .collect();
            let mut flat = Vec::new();
            random_walk_csr_into(&csr, start, 9, &mut SmallRng::seed_from_u64(seed), &mut flat);
            assert_eq!(flat, reference, "uniform seed {seed}");

            let reference: Vec<u32> =
                random_walk_edge_typed(&g, start, 9, &weights, &mut SmallRng::seed_from_u64(seed))
                    .into_iter()
                    .map(|n| n.0)
                    .collect();
            let mut flat = Vec::new();
            random_walk_edge_typed_csr_into(
                &csr,
                start,
                9,
                &weights,
                &cum,
                &mut SmallRng::seed_from_u64(seed),
                &mut flat,
            );
            assert_eq!(flat, reference, "edge-typed seed {seed}");

            let reference: Vec<u32> =
                random_walk_node2vec(&g, start, 9, 0.3, 2.0, &mut SmallRng::seed_from_u64(seed))
                    .into_iter()
                    .map(|n| n.0)
                    .collect();
            let mut flat = Vec::new();
            random_walk_node2vec_csr_into(
                &csr,
                start,
                9,
                0.3,
                2.0,
                &mut SmallRng::seed_from_u64(seed),
                &mut buf,
                &mut flat,
            );
            assert_eq!(flat, reference, "node2vec seed {seed}");
        }
    }

    #[test]
    fn csr_zero_weight_edges_strand_walkers() {
        use crate::csr::CsrGraph;
        use crate::edge::EdgeKind;
        let mut g = Graph::new();
        let a = g.intern_data("a");
        let b = g.intern_data("b");
        g.add_edge_typed(a, b, EdgeKind::Generic);
        let weights = EdgeTypeWeights::uniform().with(EdgeKind::Generic, 0.0);
        let csr = CsrGraph::from_graph(&g);
        let cum = csr.edge_type_cum(&weights);
        let mut out = Vec::new();
        random_walk_edge_typed_csr_into(
            &csr,
            a,
            5,
            &weights,
            &cum,
            &mut SmallRng::seed_from_u64(1),
            &mut out,
        );
        assert_eq!(out, vec![a.0]);
    }

    #[test]
    fn node2vec_from_isolated_node_is_singleton() {
        let mut g = Graph::new();
        let a = g.intern_data("a");
        let mut rng = SmallRng::seed_from_u64(1);
        assert_eq!(random_walk_node2vec(&g, a, 5, 1.0, 1.0, &mut rng), vec![a]);
        let weights = EdgeTypeWeights::uniform();
        assert_eq!(
            random_walk_edge_typed(&g, a, 5, &weights, &mut rng),
            vec![a]
        );
    }
}
