//! Table VIII — compression performance: graph size (#N, #E) and matching
//! quality (MRR) for the original graph, the expanded graph, MSP(0.5),
//! MSP(0.25), and SSuM(0.1) on all five scenarios.
//!
//! Paper shape: expansion grows the graph and improves MRR; MSP shrinks
//! the expanded graph back below (or near) the original with little
//! quality loss on scenarios with a relational table, a visible drop on
//! text-only scenarios; MSP beats SSuM on quality at comparable sizes.

use tdmatch_bench::{evaluate, registry, run_pipeline, scale_from_env, TABLE_K};
use tdmatch_core::config::Compression;
use tdmatch_datasets::Scenario;

fn row(scenario: &Scenario, label: &str, expand: bool, compression: Option<Compression>) {
    let (run, model) = run_pipeline(scenario, TABLE_K, expand, compression);
    let (n, e) = model.graph_size();
    let metrics = evaluate(&run, scenario);
    println!(
        "{:<12} {:<12} {:>8} {:>9} {:>7.3}",
        scenario.name, label, n, e, metrics.mrr
    );
}

fn main() {
    let scale = scale_from_env();
    let scenarios: Vec<Scenario> = ["imdb-nt", "corona-gen", "snopes", "politifact", "audit"]
        .iter()
        .map(|k| registry::by_key(k).expect("registered").generate(scale, 42))
        .collect();

    println!("\n=== Table VIII — compression: size vs matching quality ===");
    println!(
        "{:<12} {:<12} {:>8} {:>9} {:>7}",
        "Dataset", "Graph", "#N", "#E", "MRR"
    );
    println!("{}", "-".repeat(52));
    for scenario in &scenarios {
        row(scenario, "Original", false, None);
        row(scenario, "Expanded", true, None);
        row(scenario, "MSP(0.5)", true, Some(Compression::Msp { beta: 0.5 }));
        row(scenario, "MSP(0.25)", true, Some(Compression::Msp { beta: 0.25 }));
        row(scenario, "SSuM(0.1)", true, Some(Compression::Ssum { ratio: 0.9 }));
        println!("{}", "-".repeat(52));
    }
}
