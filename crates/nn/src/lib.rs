//! Minimal neural-network substrate for the paper's supervised baselines.
//!
//! The paper fine-tunes transformer models (BERT-large, Ditto, DeepMatcher,
//! TAPAS) and trains a pairwise re-ranker \[39\] on 60 % of the annotated
//! pairs. We reproduce those baselines as feature-based neural models (see
//! DESIGN.md for the substitution rationale); this crate supplies the
//! machinery:
//!
//! * [`mlp`] — multi-layer perceptrons with ReLU hidden layers, trained by
//!   backpropagation with Adam;
//! * [`ranker`] — a RankNet-style pairwise ranker on top of a scalar MLP;
//! * [`loss`] — sigmoid cross-entropy helpers for binary and multi-label
//!   objectives.

pub mod loss;
pub mod mlp;
pub mod ranker;

pub use mlp::{Mlp, TrainConfig};
pub use ranker::PairwiseRanker;
