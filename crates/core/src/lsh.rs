//! Random-hyperplane LSH over metadata embeddings — approximate cosine
//! blocking (the paper's §VII "blocking to speed up performance" future
//! work, embedding-space variant).
//!
//! The inverted-index blocker ([`crate::blocking`]) prunes by *lexical*
//! overlap and therefore cannot see matches that only the embeddings
//! express (synonyms, expansion edges). This blocker hashes the embedding
//! vectors themselves: each of `tables` hash tables projects a vector onto
//! `bits` random hyperplanes and packs the signs into a signature; vectors
//! with high cosine similarity collide in at least one table with high
//! probability (Charikar's SimHash guarantee: collision probability per
//! bit is `1 − θ/π`).

use std::collections::HashMap;

use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};

/// Parameters of the LSH blocker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LshConfig {
    /// Independent hash tables; more tables → higher recall, more
    /// candidates.
    pub tables: usize,
    /// Hyperplanes (signature bits) per table, at most 64; more bits →
    /// smaller buckets, fewer candidates.
    pub bits: usize,
    /// Multiprobe radius: also look up buckets whose signature differs
    /// from the query's in at most this many bits. `0` probes only the
    /// exact bucket; `1` adds `bits` extra probes per table and raises
    /// recall substantially on mid-similarity matches at modest cost.
    pub probes: usize,
    /// Seed for hyperplane sampling.
    pub seed: u64,
}

impl Default for LshConfig {
    fn default() -> Self {
        Self {
            tables: 12,
            bits: 10,
            probes: 1,
            seed: 42,
        }
    }
}

/// A fitted random-hyperplane index over one vector collection.
#[derive(Debug, Clone)]
pub struct LshIndex {
    /// Flattened hyperplane normals: `tables * bits` rows of `dim`.
    planes: Vec<f32>,
    /// signature → target ids, one map per table.
    buckets: Vec<HashMap<u64, Vec<u32>>>,
    dim: usize,
    bits: usize,
    probes: usize,
    n_targets: usize,
}

impl LshIndex {
    /// Indexes `targets` (entries may be `None` for documents whose
    /// metadata node vanished; those are never returned as candidates).
    ///
    /// `dim` must match the vectors' length; `bits` is clamped to 64.
    pub fn build(targets: &[Option<Vec<f32>>], dim: usize, config: &LshConfig) -> Self {
        let tables = config.tables.max(1);
        let bits = config.bits.clamp(1, 64);
        let mut rng = SmallRng::seed_from_u64(config.seed);
        // Gaussian entries (Box–Muller) make hyperplane directions uniform
        // on the sphere.
        let mut planes = Vec::with_capacity(tables * bits * dim);
        let mut gauss = || {
            let u1: f32 = rng.random::<f32>().max(1e-12);
            let u2: f32 = rng.random::<f32>();
            (-2.0 * u1.ln()).sqrt() * (std::f32::consts::TAU * u2).cos()
        };
        for _ in 0..tables * bits * dim {
            planes.push(gauss());
        }

        let mut index = Self {
            planes,
            buckets: vec![HashMap::new(); tables],
            dim,
            bits,
            probes: config.probes,
            n_targets: targets.len(),
        };
        for (i, v) in targets.iter().enumerate() {
            let Some(v) = v else { continue };
            for t in 0..tables {
                let sig = index.signature(t, v);
                index.buckets[t].entry(sig).or_default().push(i as u32);
            }
        }
        index
    }

    /// The signature of `v` in table `t`: one sign bit per hyperplane.
    fn signature(&self, t: usize, v: &[f32]) -> u64 {
        debug_assert_eq!(v.len(), self.dim);
        let mut sig = 0u64;
        let base = t * self.bits * self.dim;
        for b in 0..self.bits {
            let row = &self.planes[base + b * self.dim..base + (b + 1) * self.dim];
            let dot: f32 = row.iter().zip(v).map(|(p, x)| p * x).sum();
            if dot >= 0.0 {
                sig |= 1 << b;
            }
        }
        sig
    }

    /// Candidate targets colliding with `query` in at least one probed
    /// bucket of at least one table, sorted ascending. With `probes ≥ 1`,
    /// buckets within that Hamming distance of the query signature are
    /// probed too (multiprobe LSH). Falls back to *all* targets when every
    /// probe misses, so downstream matching still returns k results.
    pub fn candidates(&self, query: &[f32]) -> Vec<usize> {
        let mut hits: Vec<u32> = Vec::new();
        for (t, table) in self.buckets.iter().enumerate() {
            let sig = self.signature(t, query);
            if let Some(list) = table.get(&sig) {
                hits.extend_from_slice(list);
            }
            if self.probes >= 1 {
                for b in 0..self.bits {
                    if let Some(list) = table.get(&(sig ^ (1 << b))) {
                        hits.extend_from_slice(list);
                    }
                    if self.probes >= 2 {
                        for b2 in b + 1..self.bits {
                            if let Some(list) = table.get(&(sig ^ (1 << b) ^ (1 << b2))) {
                                hits.extend_from_slice(list);
                            }
                        }
                    }
                }
            }
        }
        if hits.is_empty() {
            return (0..self.n_targets).collect();
        }
        hits.sort_unstable();
        hits.dedup();
        hits.into_iter().map(|x| x as usize).collect()
    }

    /// Number of tables.
    pub fn table_count(&self) -> usize {
        self.buckets.len()
    }

    /// Mean candidate-list length over all indexed vectors — the expected
    /// fraction of the corpus scored per query is roughly this over
    /// [`target_count`](Self::target_count).
    pub fn mean_bucket_size(&self) -> f64 {
        let (mut total, mut n) = (0usize, 0usize);
        for table in &self.buckets {
            for list in table.values() {
                total += list.len();
                n += 1;
            }
        }
        if n == 0 {
            0.0
        } else {
            total as f64 / n as f64
        }
    }

    /// Number of indexed target slots (including `None` entries).
    pub fn target_count(&self) -> usize {
        self.n_targets
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit(angle: f32) -> Option<Vec<f32>> {
        Some(vec![angle.cos(), angle.sin()])
    }

    fn config(seed: u64) -> LshConfig {
        LshConfig {
            tables: 6,
            bits: 4,
            probes: 0,
            seed,
        }
    }

    #[test]
    fn identical_vector_is_always_a_candidate() {
        let targets: Vec<Option<Vec<f32>>> =
            (0..20).map(|i| unit(i as f32 * 0.3)).collect();
        let idx = LshIndex::build(&targets, 2, &config(1));
        for (i, v) in targets.iter().enumerate() {
            let c = idx.candidates(v.as_ref().unwrap());
            assert!(c.contains(&i), "vector {i} missed its own bucket");
        }
    }

    #[test]
    fn near_duplicates_collide_far_vectors_often_do_not() {
        // Two tight clusters on opposite sides of the circle.
        let mut targets: Vec<Option<Vec<f32>>> = Vec::new();
        for i in 0..10 {
            targets.push(unit(0.01 * i as f32)); // cluster A near angle 0
        }
        for i in 0..10 {
            targets.push(unit(std::f32::consts::PI + 0.01 * i as f32)); // cluster B
        }
        let idx = LshIndex::build(&targets, 2, &config(7));
        let c = idx.candidates(&[1.0, 0.0]);
        let in_a = c.iter().filter(|&&i| i < 10).count();
        let in_b = c.iter().filter(|&&i| i >= 10).count();
        assert!(in_a >= 8, "cluster A should almost all collide: {in_a}");
        assert!(in_b <= 2, "cluster B should rarely collide: {in_b}");
    }

    #[test]
    fn none_entries_are_never_candidates() {
        let targets: Vec<Option<Vec<f32>>> = vec![unit(0.0), None, unit(0.1)];
        let idx = LshIndex::build(&targets, 2, &config(3));
        let c = idx.candidates(&[1.0, 0.0]);
        assert!(!c.contains(&1));
    }

    #[test]
    fn empty_buckets_fall_back_to_all_targets() {
        // Index nothing but None: every query falls back.
        let targets: Vec<Option<Vec<f32>>> = vec![None, None, None];
        let idx = LshIndex::build(&targets, 2, &config(4));
        assert_eq!(idx.candidates(&[1.0, 0.0]), vec![0, 1, 2]);
    }

    #[test]
    fn candidates_are_sorted_and_deduplicated() {
        let targets: Vec<Option<Vec<f32>>> =
            (0..30).map(|i| unit(i as f32 * 0.05)).collect();
        let idx = LshIndex::build(&targets, 2, &config(5));
        let c = idx.candidates(&[1.0, 0.0]);
        let mut sorted = c.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(c, sorted);
    }

    #[test]
    fn bits_are_clamped_to_sixty_four() {
        let targets: Vec<Option<Vec<f32>>> = vec![unit(0.0)];
        let idx = LshIndex::build(
            &targets,
            2,
            &LshConfig {
                tables: 1,
                bits: 200,
                probes: 0,
                seed: 1,
            },
        );
        assert!(idx.candidates(&[1.0, 0.0]).contains(&0));
    }

    #[test]
    fn stats_reflect_index_contents() {
        let targets: Vec<Option<Vec<f32>>> =
            (0..12).map(|i| unit(i as f32 * 0.4)).collect();
        let idx = LshIndex::build(&targets, 2, &config(6));
        assert_eq!(idx.table_count(), 6);
        assert_eq!(idx.target_count(), 12);
        assert!(idx.mean_bucket_size() >= 1.0);
    }

    #[test]
    fn multiprobe_widens_candidates_monotonically() {
        let targets: Vec<Option<Vec<f32>>> =
            (0..40).map(|i| unit(i as f32 * 0.16)).collect();
        let base = LshConfig {
            tables: 2,
            bits: 8,
            probes: 0,
            seed: 11,
        };
        let q = [0.95f32, 0.31];
        let mut last = 0usize;
        for probes in 0..=2 {
            let idx = LshIndex::build(&targets, 2, &LshConfig { probes, ..base });
            let c = idx.candidates(&q);
            // Fallback-to-all can only fire at probes = 0; past that,
            // candidate sets only grow.
            if c.len() != idx.target_count() {
                assert!(c.len() >= last, "probes={probes} shrank candidates");
                last = c.len();
            }
        }
    }
}
