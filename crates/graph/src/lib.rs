//! Undirected typed graph substrate for TDmatch.
//!
//! The paper models heterogeneous corpora as one undirected, unweighted
//! graph with two node families (§II):
//!
//! * **data nodes** — pre-processed terms, interned so that a term shared by
//!   several documents is a single node;
//! * **metadata nodes** — tuples, attributes (columns), free-text documents
//!   and taxonomy nodes.
//!
//! This crate provides the graph itself ([`Graph`]), an immutable
//! compressed-sparse-row snapshot for read-heavy phases ([`CsrGraph`]),
//! breadth-first search and all-shortest-path enumeration ([`traverse`]),
//! and random-neighbor sampling used by the walk generator ([`sample`]).
//!
//! # Snapshot lifecycle
//!
//! The intended flow separates the *mutation* phase from the *read* phase:
//!
//! 1. build the [`Graph`] (Alg. 1), then expand (Alg. 2), merge (§II-C)
//!    and/or compress (Alg. 3) it — all mutating operations;
//! 2. freeze the result once with [`CsrGraph::from_graph`];
//! 3. run all read-heavy work — random-walk generation, `has_edge`-heavy
//!    biased walks, embedding training — against the snapshot.
//!
//! The snapshot is immutable: further `Graph` mutations require a fresh
//! freeze. Walks over the snapshot are byte-identical to walks over the
//! source graph under the same seed (see [`csr`] for why).

//!
//! # Persistence
//!
//! Two on-disk formats live here. [`persist`] is the legacy `TDG1`
//! stream for the *mutable* [`Graph`] (labels included, ids renumbered).
//! [`container`] is the `TDZ1` zero-copy section container shared by the
//! whole workspace (byte-level spec: `docs/FORMAT.md` at the repository
//! root); a frozen [`CsrGraph`] serializes its flat arrays straight into
//! it ([`CsrGraph::write_sections`]) and a warm start maps them back
//! without rebuilding ([`CsrGraph::from_sections`]). Serving processes
//! open snapshots through [`container::Storage::open`], which
//! memory-maps the file ([`mmap`]) so N processes share one physical
//! copy through the OS page cache and defers per-section CRC checks to
//! first access. Snapshot files are published crash-safely via
//! [`publish::publish_atomic`] (same-directory temp file, fsync,
//! rename): a writer killed mid-save can never leave a torn file at a
//! published path.

pub mod codec;
pub mod container;
pub mod csr;
pub mod mmap;
pub mod edge;
pub mod graph;
pub mod node;
pub mod persist;
pub mod publish;
pub mod sample;
pub mod stats;
pub mod traverse;

pub use codec::DecodeError;
pub use container::{Container, ContainerWriter, FlatBuf, SectionTag, Storage, Verification};
pub use csr::{CsrAppend, CsrGraph, EdgeTypeCum};
pub use edge::{EdgeKind, EdgeTypeWeights};
pub use graph::Graph;
pub use node::{CorpusSide, MetaKind, NodeId, NodeKind};
pub use publish::publish_atomic;
pub use stats::GraphStats;
