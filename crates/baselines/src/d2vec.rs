//! D2VEC — Doc2Vec (PV-DBOW) document embeddings (§V baselines).
//!
//! One joint PV-DBOW training over both corpora's documents; matching is
//! cosine between the trained document vectors. The paper uses DBOW with
//! size 300; dimensionality is configurable for scaled runs.

use std::time::Instant;

use tdmatch_core::corpus::Corpus;
use tdmatch_embed::doc2vec::{Doc2Vec, Doc2VecConfig};
use tdmatch_text::Preprocessor;

use crate::serialize::serialize_corpus;
use crate::{rank_dense, RankedMatches};

/// Options for the D2VEC baseline.
#[derive(Debug, Clone)]
pub struct D2vecOptions {
    /// Document-vector dimensionality (paper: 300).
    pub dim: usize,
    /// Training epochs.
    pub epochs: usize,
    /// Seed.
    pub seed: u64,
}

impl Default for D2vecOptions {
    fn default() -> Self {
        Self {
            dim: 64,
            epochs: 10,
            seed: 42,
        }
    }
}

/// Runs the D2VEC baseline.
pub fn run(first: &Corpus, second: &Corpus, opts: &D2vecOptions, k: usize) -> RankedMatches {
    let pre = Preprocessor::default();
    let t0 = Instant::now();
    let docs_first = serialize_corpus(first, &pre);
    let docs_second = serialize_corpus(second, &pre);
    let mut all_docs = docs_first;
    let n_first = all_docs.len();
    all_docs.extend(docs_second);

    let model = Doc2Vec::train(
        &all_docs,
        Doc2VecConfig {
            dim: opts.dim,
            epochs: opts.epochs,
            seed: opts.seed,
            ..Default::default()
        },
    );
    let train_secs = t0.elapsed().as_secs_f64();

    let t1 = Instant::now();
    let n_second = all_docs.len() - n_first;
    let queries: Vec<&[f32]> = (0..n_second).map(|q| model.doc_vector(n_first + q)).collect();
    let targets: Vec<&[f32]> = (0..n_first).map(|t| model.doc_vector(t)).collect();
    let per_query = rank_dense(&queries, &targets, opts.dim, k);
    RankedMatches {
        method: "D2VEC".to_string(),
        per_query,
        train_secs,
        test_secs: t1.elapsed().as_secs_f64(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tdmatch_core::corpus::TextCorpus;

    #[test]
    fn repeated_vocabulary_clusters() {
        // 6 wine documents (indices 0..6) and 6 engine documents (6..12);
        // the query is a wine document, so a wine target must rank first.
        let wine = ["wine", "grape", "vineyard", "barrel", "cork"];
        let engine = ["engine", "piston", "gear", "clutch", "valve"];
        let mut docs = Vec::new();
        for i in 0..6 {
            let mut d: Vec<&str> = wine.to_vec();
            d.rotate_left(i % wine.len());
            docs.push(d.join(" "));
        }
        for i in 0..6 {
            let mut d: Vec<&str> = engine.to_vec();
            d.rotate_left(i % engine.len());
            docs.push(d.join(" "));
        }
        let first = Corpus::Text(TextCorpus::new(docs));
        let second = Corpus::Text(TextCorpus::new(vec![
            "grape wine barrel vineyard cork grape wine".into(),
        ]));
        let r = run(
            &first,
            &second,
            &D2vecOptions {
                epochs: 30,
                ..Default::default()
            },
            3,
        );
        assert!(r.indices(0)[0] < 6, "top match should be a wine doc: {:?}", r.indices(0));
    }

    #[test]
    fn output_arity() {
        let first = Corpus::Text(TextCorpus::new(vec!["a b".into(), "c d".into()]));
        let second = Corpus::Text(TextCorpus::new(vec!["a b".into(), "c d".into(), "e f".into()]));
        let r = run(&first, &second, &D2vecOptions::default(), 1);
        assert_eq!(r.per_query.len(), 3);
    }
}
