//! Property-based tests for text preprocessing.

use proptest::prelude::*;

use tdmatch_text::distance::{jaccard, levenshtein, levenshtein_similarity};
use tdmatch_text::ngrams::{ngram_count, ngrams};
use tdmatch_text::normalize::{bucket_index, freedman_diaconis_width, parse_number};
use tdmatch_text::stem::stem;
use tdmatch_text::tokenize::{split_sentences, tokenize, tokenize_with_spans};
use tdmatch_text::{PreprocessOptions, Preprocessor};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Tokenization output is lower-case and free of whitespace.
    #[test]
    fn tokens_are_normalized(text in ".{0,80}") {
        for tok in tokenize(&text) {
            prop_assert!(!tok.is_empty());
            prop_assert!(!tok.chars().any(char::is_whitespace));
            prop_assert_eq!(tok.to_lowercase(), tok.clone());
        }
    }

    /// Token spans index back into the original string.
    #[test]
    fn spans_are_consistent(text in "[a-zA-Z0-9 ,.!-]{0,60}") {
        for (tok, s, e) in tokenize_with_spans(&text) {
            prop_assert!(s < e && e <= text.len());
            prop_assert_eq!(text[s..e].to_lowercase(), tok);
        }
    }

    /// Tokenization is idempotent: re-tokenizing the joined tokens yields
    /// the same sequence.
    #[test]
    fn tokenize_idempotent(text in "[a-zA-Z ,.]{0,60}") {
        let once = tokenize(&text);
        let again = tokenize(&once.join(" "));
        prop_assert_eq!(once, again);
    }

    /// Stemming never lengthens an ASCII word and is deterministic.
    #[test]
    fn stem_shrinks(word in "[a-z]{1,15}") {
        let s = stem(&word);
        prop_assert!(s.len() <= word.len());
        prop_assert_eq!(stem(&word), s);
    }

    /// n-gram generation matches its count formula and every n-gram's
    /// token arity is within bounds.
    #[test]
    fn ngram_invariants(
        tokens in prop::collection::vec("[a-z]{1,6}", 0..8),
        max_n in 1usize..5,
    ) {
        let grams = ngrams(&tokens, max_n);
        prop_assert_eq!(grams.len(), ngram_count(tokens.len(), max_n));
        for g in &grams {
            let arity = g.split(' ').count();
            prop_assert!((1..=max_n).contains(&arity));
        }
    }

    /// Levenshtein is a metric: identity, symmetry, triangle inequality.
    #[test]
    fn levenshtein_is_a_metric(
        a in "[a-c]{0,8}",
        b in "[a-c]{0,8}",
        c in "[a-c]{0,8}",
    ) {
        prop_assert_eq!(levenshtein(&a, &a), 0);
        prop_assert_eq!(levenshtein(&a, &b), levenshtein(&b, &a));
        prop_assert!(levenshtein(&a, &c) <= levenshtein(&a, &b) + levenshtein(&b, &c));
        let sim = levenshtein_similarity(&a, &b);
        prop_assert!((0.0..=1.0).contains(&sim));
    }

    /// Jaccard similarity is bounded and reflexive.
    #[test]
    fn jaccard_bounds(
        a in prop::collection::vec("[a-c]{1,3}", 0..6),
        b in prop::collection::vec("[a-c]{1,3}", 0..6),
    ) {
        let av: Vec<&str> = a.iter().map(|s| s.as_str()).collect();
        let bv: Vec<&str> = b.iter().map(|s| s.as_str()).collect();
        let j = jaccard(av.iter().copied(), bv.iter().copied());
        prop_assert!((0.0..=1.0).contains(&j));
        let jr = jaccard(av.iter().copied(), av.iter().copied());
        prop_assert!(av.is_empty() || (jr - 1.0).abs() < 1e-12);
    }

    /// Numbers round-trip through parse_number.
    #[test]
    fn numbers_parse(v in -1_000_000i64..1_000_000) {
        let parsed = parse_number(&v.to_string());
        prop_assert_eq!(parsed, Some(v as f64));
    }

    /// Bucket indices are monotone in the value.
    #[test]
    fn buckets_monotone(
        mut values in prop::collection::vec(-1000.0f64..1000.0, 3..40),
        a in -1000.0f64..1000.0,
        b in -1000.0f64..1000.0,
    ) {
        values.push(a);
        values.push(b);
        if let Some(width) = freedman_diaconis_width(&values) {
            let min = values.iter().copied().fold(f64::INFINITY, f64::min);
            let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
            prop_assert!(bucket_index(lo, min, width) <= bucket_index(hi, min, width));
        }
    }

    /// The full preprocessor never emits stop words when filtering is on.
    #[test]
    fn preprocessor_removes_stopwords(text in "[a-z ]{0,60}") {
        let pre = Preprocessor::new(PreprocessOptions { stem: false, ..Default::default() });
        for tok in pre.base_tokens(&text) {
            prop_assert!(!tdmatch_text::stopwords::is_stopword(&tok), "{tok}");
        }
    }

    /// Sentence splitting loses no non-whitespace content.
    #[test]
    fn sentences_preserve_content(text in "[a-z .!?]{0,80}") {
        let joined: String = split_sentences(&text).join(" ");
        let strip = |s: &str| s.chars().filter(|c| !c.is_whitespace()).collect::<String>();
        prop_assert_eq!(strip(&joined), strip(&text));
    }
}
