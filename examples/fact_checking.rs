//! Text-to-text matching: detect previously fact-checked claims (§V-C),
//! and improve the ranking by averaging TDmatch scores with the
//! pre-trained sentence encoder (the Fig. 10 combination).
//!
//! ```sh
//! cargo run --release --example fact_checking
//! ```

use std::collections::HashSet;

use tdmatch::baselines::sbe::encode_corpus;
use tdmatch::core::pipeline::{FitOptions, TdMatch};
use tdmatch::datasets::{claims, Scale};
use tdmatch::embed::vectors::cosine;
use tdmatch::eval::ranking::mean_metrics;
use tdmatch::text::Preprocessor;

fn main() {
    let scenario = claims::snopes(Scale::Tiny, 3);
    println!(
        "Snopes scenario: {} verified claims, {} input claims",
        scenario.first.len(),
        scenario.second.len()
    );

    let config = tdmatch::core::config::TdConfig {
        walks_per_node: 20,
        walk_len: 12,
        dim: 64,
        ..scenario.config.clone()
    };
    let model = TdMatch::new(config)
        .fit_with(
            &scenario.first,
            &scenario.second,
            FitOptions {
                merge: Some((&scenario.pretrained, scenario.gamma)),
                ..Default::default()
            },
        )
        .expect("fit");

    let truth = scenario.truth_sets();
    let eval = |ranked: Vec<Vec<usize>>| {
        let queries: Vec<(Vec<usize>, HashSet<usize>)> =
            ranked.into_iter().zip(truth.clone()).collect();
        mean_metrics(&queries)
    };

    // Plain TDmatch ranking.
    let plain = eval(
        model
            .match_top_k(20)
            .iter()
            .map(|r| r.target_indices())
            .collect(),
    );

    // Fig. 10: average our cosine with the pre-trained sentence encoder.
    let pre = Preprocessor::default();
    let sbe_targets = encode_corpus(&scenario.first, &scenario.pretrained, &pre);
    let sbe_queries = encode_corpus(&scenario.second, &scenario.pretrained, &pre);
    let extra = |q: usize, t: usize| cosine(&sbe_queries[q], &sbe_targets[t]);
    let combined = eval(
        model
            .match_top_k_combined(20, Some(&extra))
            .iter()
            .map(|r| r.target_indices())
            .collect(),
    );

    println!("W-RW       MRR {:.3}  MAP@5 {:.3}", plain.mrr, plain.map_at[1]);
    println!(
        "W-RW&S-BE  MRR {:.3}  MAP@5 {:.3}   (score averaging, Fig. 10)",
        combined.mrr, combined.map_at[1]
    );
}
