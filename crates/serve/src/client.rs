//! Synchronous client for the daemon's socket protocol — used by
//! `tdmatch query --socket`, the protocol tests, and the bench recorder.

use std::io::BufReader;
use std::os::unix::net::UnixStream;
use std::path::Path;

use crate::protocol::{
    read_frame, write_frame, ErrorCode, FrameError, Request, RequestBody, Response, ResponseBody,
    StatsSnapshot,
};

/// Why a request could not be completed.
#[derive(Debug)]
pub enum ClientError {
    /// Connecting or talking to the socket failed.
    Io(std::io::Error),
    /// A response frame was unreadable.
    Frame(FrameError),
    /// The server closed the stream before answering.
    Disconnected,
    /// The response decoded but made no protocol sense.
    Protocol(String),
    /// The server answered with an error response.
    Server {
        /// Machine-readable failure class.
        code: ErrorCode,
        /// Server-provided detail.
        message: String,
    },
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "I/O error: {e}"),
            ClientError::Frame(e) => write!(f, "bad response frame: {e}"),
            ClientError::Disconnected => write!(f, "server closed the connection"),
            ClientError::Protocol(m) => write!(f, "protocol error: {m}"),
            ClientError::Server { code, message } => write!(f, "server error [{code}]: {message}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<FrameError> for ClientError {
    fn from(e: FrameError) -> Self {
        ClientError::Frame(e)
    }
}

/// One connection to a running daemon. Requests are synchronous:
/// [`request`](Client::request) writes a frame and blocks for the
/// matching response.
pub struct Client {
    writer: UnixStream,
    reader: BufReader<UnixStream>,
    next_id: u64,
}

impl Client {
    /// Connects to the daemon's socket.
    pub fn connect<P: AsRef<Path>>(socket: P) -> Result<Self, ClientError> {
        let writer = UnixStream::connect(socket)?;
        let reader = BufReader::new(writer.try_clone()?);
        Ok(Client {
            writer,
            reader,
            next_id: 1,
        })
    }

    /// Sends one request and blocks for its response. Error *responses*
    /// come back as [`ClientError::Server`]; the id echo is verified.
    pub fn request(&mut self, body: RequestBody) -> Result<ResponseBody, ClientError> {
        let id = self.next_id;
        self.next_id += 1;
        let request = Request { id, body };
        write_frame(&mut self.writer, &request.encode())?;
        let payload = read_frame(&mut self.reader)?.ok_or(ClientError::Disconnected)?;
        let response = Response::decode(&payload).map_err(|e| ClientError::Protocol(e.to_string()))?;
        if response.id != id {
            return Err(ClientError::Protocol(format!(
                "response id {} does not match request id {id}",
                response.id
            )));
        }
        match response.body {
            ResponseBody::Error { code, message } => Err(ClientError::Server { code, message }),
            body => Ok(body),
        }
    }

    fn expect_matches(
        &mut self,
        body: RequestBody,
    ) -> Result<(Vec<(usize, f32)>, usize), ClientError> {
        match self.request(body)? {
            ResponseBody::Matches { matches, batch } => Ok((matches, batch)),
            other => Err(ClientError::Protocol(format!(
                "expected a matches response, got {other:?}"
            ))),
        }
    }

    /// Ranks targets for query-corpus document `doc`. Returns the
    /// ranked `(target, score)` list and the size of the batch the
    /// request was coalesced into.
    pub fn query_id(&mut self, doc: usize, k: usize) -> Result<(Vec<(usize, f32)>, usize), ClientError> {
        self.expect_matches(RequestBody::QueryId { doc, k })
    }

    /// Ranks targets for a free-text query (tokenized server-side).
    pub fn query_text(
        &mut self,
        text: &str,
        k: usize,
    ) -> Result<(Vec<(usize, f32)>, usize), ClientError> {
        self.expect_matches(RequestBody::QueryText {
            text: text.to_string(),
            k,
        })
    }

    /// Ranks targets for a raw embedding vector.
    pub fn query_vector(
        &mut self,
        vector: Vec<f32>,
        k: usize,
    ) -> Result<(Vec<(usize, f32)>, usize), ClientError> {
        self.expect_matches(RequestBody::QueryVector { vector, k })
    }

    /// Liveness probe.
    pub fn ping(&mut self) -> Result<(), ClientError> {
        match self.request(RequestBody::Ping)? {
            ResponseBody::Pong => Ok(()),
            other => Err(ClientError::Protocol(format!("expected pong, got {other:?}"))),
        }
    }

    /// Fetches the daemon's counters.
    pub fn stats(&mut self) -> Result<StatsSnapshot, ClientError> {
        match self.request(RequestBody::Stats)? {
            ResponseBody::Stats(s) => Ok(s),
            other => Err(ClientError::Protocol(format!("expected stats, got {other:?}"))),
        }
    }

    /// Asks the daemon to drain and exit. `Ok` means the daemon
    /// acknowledged and will stop.
    pub fn shutdown(&mut self) -> Result<(), ClientError> {
        match self.request(RequestBody::Shutdown)? {
            ResponseBody::Stopping => Ok(()),
            other => Err(ClientError::Protocol(format!(
                "expected stopping, got {other:?}"
            ))),
        }
    }
}
