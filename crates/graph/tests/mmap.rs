//! Integration tests for the cross-process mmap serving path: mapping
//! lifetime (unmap exactly when the last view drops), heap-fallback
//! equivalence, and lazy CRC behaviour through a real consumer
//! (`CsrGraph`).

use tdmatch_graph::container::{ContainerWriter, Storage, Verification};
use tdmatch_graph::{CsrGraph, DecodeError, Graph};

fn temp_path(name: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(name)
}

fn sample_graph() -> Graph {
    let mut g = Graph::new();
    let a = g.intern_data("tarantino");
    let b = g.intern_data("thriller");
    let c = g.intern_data("willis");
    g.add_edge(a, b);
    g.add_edge(b, c);
    g.add_edge(a, c);
    g
}

/// True when `/proc/self/maps` has a mapping starting at `addr`.
#[cfg(target_os = "linux")]
fn is_mapped_at(addr: usize) -> bool {
    std::fs::read_to_string("/proc/self/maps")
        .unwrap()
        .lines()
        .any(|l| l.starts_with(&format!("{addr:x}-")))
}

#[test]
fn mapped_and_heap_snapshots_are_bit_identical() {
    let csr = CsrGraph::from_graph(&sample_graph());
    let path = temp_path("tdmatch-mmap-equiv.tdz");
    csr.save_snapshot(&path).unwrap();

    let mapped = Storage::open_with(&path, Verification::Lazy).unwrap();
    let heap = Storage::read_file(&path).unwrap();
    assert!(!heap.is_mapped());
    // Identical raw bytes…
    assert_eq!(mapped.as_bytes(), heap.as_bytes());
    // …and identical loaded views through a real consumer.
    let from_mapped =
        CsrGraph::from_sections(&mapped, &mapped.container().unwrap()).unwrap();
    let from_heap = CsrGraph::from_sections(&heap, &heap.container().unwrap()).unwrap();
    assert_eq!(from_mapped.id_bound(), from_heap.id_bound());
    assert_eq!(from_mapped.edge_count(), from_heap.edge_count());
    for id in from_mapped.nodes() {
        assert_eq!(from_mapped.neighbors(id), from_heap.neighbors(id));
        assert_eq!(from_mapped.neighbor_kinds(id), from_heap.neighbor_kinds(id));
        assert_eq!(from_mapped.kind(id), from_heap.kind(id));
    }
    std::fs::remove_file(&path).ok();
}

#[cfg(all(unix, target_pointer_width = "64"))]
#[test]
fn load_snapshot_serves_from_a_mapping() {
    let csr = CsrGraph::from_graph(&sample_graph());
    let path = temp_path("tdmatch-mmap-load-snapshot.tdz");
    csr.save_snapshot(&path).unwrap();
    let storage = Storage::open(&path).unwrap();
    assert!(storage.is_mapped(), "snapshot open fell off the mmap path");
    let warm = CsrGraph::load_snapshot(&path).unwrap();
    assert!(warm.is_zero_copy());
    for id in csr.nodes() {
        assert_eq!(warm.neighbors(id), csr.neighbors(id));
    }
    std::fs::remove_file(&path).ok();
}

/// The mapping must stay alive while *any* loaded view borrows it —
/// dropping the `Storage` handle is not enough — and must be unmapped
/// when the last one goes.
#[cfg(target_os = "linux")]
#[test]
fn mapping_unmaps_only_after_the_last_view_drops() {
    let csr = CsrGraph::from_graph(&sample_graph());
    let path = temp_path("tdmatch-mmap-lifetime.tdz");
    csr.save_snapshot(&path).unwrap();

    let storage = Storage::open_with(&path, Verification::Lazy).unwrap();
    assert!(storage.is_mapped());
    let addr = storage.as_bytes().as_ptr() as usize;
    assert!(is_mapped_at(addr), "mapping missing while storage is alive");

    let loaded = {
        let container = storage.container().unwrap();
        CsrGraph::from_sections(&storage, &container).unwrap()
    };
    drop(storage);
    // The loaded graph's FlatBufs keep the mapping alive.
    assert!(
        is_mapped_at(addr),
        "mapping vanished while a loaded snapshot still borrows it"
    );
    assert_eq!(loaded.edge_count(), 3);

    drop(loaded);
    assert!(
        !is_mapped_at(addr),
        "mapping leaked after the last view dropped"
    );
    std::fs::remove_file(&path).ok();
}

/// Corruption in a section a consumer never touches is invisible to a
/// lazy open (O(1) open does not scan payloads) — but the moment the
/// corrupt section is accessed, it fails, on every access path.
#[test]
fn corrupt_unused_section_does_not_block_open_but_fails_on_access() {
    let csr = CsrGraph::from_graph(&sample_graph());
    let mut w = ContainerWriter::new();
    csr.write_sections(&mut w);
    // An extra optional section (cum table slot 0) that loading the bare
    // snapshot never touches.
    let weights = tdmatch_graph::EdgeTypeWeights::uniform();
    let cum = csr.edge_type_cum(&weights);
    csr.write_cum_section(&cum, 0, &mut w);
    let mut bytes = w.finish();

    // Corrupt the *last* payload byte region (the cum table payload sits
    // last in the container).
    let container = tdmatch_graph::Container::parse(&bytes).unwrap();
    let base = bytes.as_ptr() as usize;
    let cum_view = container.section(tdmatch_graph::csr::cum_section_tag(0)).unwrap();
    let off = cum_view.bytes().as_ptr() as usize - base;
    drop(container);
    bytes[off] ^= 0x40;

    let path = temp_path("tdmatch-mmap-lazy-cum.tdz");
    std::fs::write(&path, &bytes).unwrap();

    // Eager modes refuse the whole file…
    assert!(Storage::open_verified(&path).is_err());
    assert!(Storage::read_file(&path).unwrap().container().is_err());

    // …lazy open + snapshot load succeed (the snapshot sections are
    // clean and verified on access during from_sections)…
    let storage = Storage::open_with(&path, Verification::Lazy).unwrap();
    let c = storage.container().unwrap();
    let loaded = CsrGraph::from_sections(&storage, &c).unwrap();
    assert_eq!(loaded.edge_count(), 3);

    // …and the corrupt optional section fails exactly when requested.
    let err = loaded.cum_from_sections(&storage, &c, 0).unwrap_err();
    assert!(matches!(err, DecodeError::Corrupt), "got {err:?}");
    std::fs::remove_file(&path).ok();
}
