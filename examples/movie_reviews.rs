//! Text-to-data matching on the synthetic IMDb scenario (§V-A), with and
//! without DBpedia expansion, reporting the paper's ranking metrics.
//!
//! ```sh
//! cargo run --release --example movie_reviews
//! ```

use std::collections::HashSet;

use tdmatch::core::pipeline::{FitOptions, TdMatch};
use tdmatch::datasets::{imdb, Scale};
use tdmatch::eval::ranking::mean_metrics;

fn main() {
    let scenario = imdb::generate(Scale::Tiny, 7, true);
    println!(
        "IMDb scenario: {} tuples, {} reviews, γ = {:.2}",
        scenario.first.len(),
        scenario.second.len(),
        scenario.gamma
    );

    // Scale the paper's defaults down so the example runs in seconds.
    let config = tdmatch::core::config::TdConfig {
        walks_per_node: 20,
        walk_len: 12,
        dim: 64,
        ..scenario.config.clone()
    };

    for expand in [false, true] {
        let model = TdMatch::new(config.clone())
            .fit_with(
                &scenario.first,
                &scenario.second,
                FitOptions {
                    kb: expand.then_some(scenario.kb.as_ref()),
                    merge: Some((&scenario.pretrained, scenario.gamma)),
                    ..Default::default()
                },
            )
            .expect("fit");
        let truth = scenario.truth_sets();
        let queries: Vec<(Vec<usize>, HashSet<usize>)> = model
            .match_top_k(20)
            .iter()
            .map(|r| r.target_indices())
            .zip(truth)
            .collect();
        let metrics = mean_metrics(&queries);
        let label = if expand { "W-RW-EX" } else { "W-RW" };
        println!(
            "{label:<8} MRR {:.3}  MAP@5 {:.3}  HasPositive@5 {:.3}  (graph {}N/{}E, {:.2}s)",
            metrics.mrr,
            metrics.map_at[1],
            metrics.has_positive_at[1],
            model.graph_size().0,
            model.graph_size().1,
            model.timings.total(),
        );
        if expand {
            println!(
                "expansion: {} relations fetched, {} edges added, {} sinks removed",
                model.expand_stats.relations_fetched,
                model.expand_stats.edges_added,
                model.expand_stats.sinks_removed
            );
        }
    }
}
