//! S-BE — the SentenceBERT baseline (§V), backed by the simulated
//! pre-trained model.
//!
//! Documents on both sides are encoded with the pre-trained sentence
//! encoder; matching is cosine top-k, exactly like the main method's final
//! step (§IV-B). No training happens ("S-BE has no training", Table VII).

use std::time::Instant;

use tdmatch_core::corpus::Corpus;
use tdmatch_kb::PretrainedModel;
use tdmatch_text::Preprocessor;

use crate::serialize::doc_tokens;
use crate::{rank_dense, RankedMatches};

/// Encodes every document of a corpus with the pre-trained model.
pub fn encode_corpus(
    corpus: &Corpus,
    model: &PretrainedModel,
    pre: &Preprocessor,
) -> Vec<Vec<f32>> {
    (0..corpus.len())
        .map(|i| model.sentence_vector(&doc_tokens(corpus, i, pre)))
        .collect()
}

/// Runs the S-BE baseline: rank first-corpus documents for every
/// second-corpus document.
pub fn run(
    first: &Corpus,
    second: &Corpus,
    model: &PretrainedModel,
    k: usize,
) -> RankedMatches {
    let pre = Preprocessor::default();
    let t0 = Instant::now();
    let targets = encode_corpus(first, model, &pre);
    let queries = encode_corpus(second, model, &pre);
    let per_query = rank_dense(&queries, &targets, model.dim(), k);
    RankedMatches {
        method: "S-BE".to_string(),
        per_query,
        train_secs: 0.0,
        test_secs: t0.elapsed().as_secs_f64(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tdmatch_core::corpus::TextCorpus;

    #[test]
    fn generic_text_matches_well() {
        let model = PretrainedModel::standard(48, 3, 0.3);
        let first = Corpus::Text(TextCorpus::new(vec![
            "the movie was great and the actor famous".into(),
            "tax policy will increase the budget".into(),
        ]));
        let second = Corpus::Text(TextCorpus::new(vec![
            "an excellent film with a renowned star".into(),
        ]));
        let r = run(&first, &second, &model, 2);
        assert_eq!(r.indices(0)[0], 0, "synonym-rich match should win");
        assert_eq!(r.train_secs, 0.0);
    }

    #[test]
    fn domain_text_is_weakly_separated() {
        // Audit vocabulary is OOV: scores exist but are driven by the weak
        // hash fallback.
        let model = PretrainedModel::standard(48, 3, 0.3);
        let first = Corpus::Text(TextCorpus::new(vec![
            "materiality workpaper reconciliation".into(),
            "substantive sampling walkthrough".into(),
        ]));
        let second = Corpus::Text(TextCorpus::new(vec![
            "materiality workpaper reconciliation".into(),
        ]));
        let r = run(&first, &second, &model, 2);
        // Identical OOV text still ranks first (hash determinism)…
        assert_eq!(r.indices(0)[0], 0);
        // …but the separation is weak compared to in-vocabulary content.
        let gap = r.per_query[0][0].1 - r.per_query[0][1].1;
        assert!(gap.is_finite());
    }
}
