//! Table VI — quality of match results for the STS scenario at thresholds
//! k = 2 and k = 3 (pairs with ground-truth similarity ≥ k count as
//! matches).
//!
//! Paper shape: all methods improve from k=2 to k=3 (higher-similarity
//! pairs share more tokens); W-RW(-EX) beats S-BE and approaches RANK*.

use tdmatch_bench::{ranking_table, registry, scale_from_env, Method};

fn main() {
    let scale = scale_from_env();
    let methods = [
        Method::Sbe,
        Method::Bm25,
        Method::Wrw,
        Method::WrwEx,
        Method::Rank,
    ];
    for (key, k) in [("sts2", 2), ("sts3", 3)] {
        let scenario = registry::by_key(key).expect("registered").generate(scale, 42);
        ranking_table(&format!("Table VI — STS k={k}"), &scenario, &methods, 42);
    }
}
