//! Minimal read-only memory mapping for container files.
//!
//! [`Storage`](crate::container::Storage) wants a file's bytes without a
//! private heap copy: when N serving processes open the same snapshot,
//! the OS page cache should hold **one** physical copy and every process
//! should map it. This module provides exactly that — a read-only,
//! whole-file [`MmapRegion`] that unmaps on drop — and nothing more (no
//! writable maps, no partial maps, no `mlock`).
//!
//! # No `libc` dependency
//!
//! The build environment is offline, so the wrapper declares the two
//! symbols it needs (`mmap`, `munmap`) directly: on every unix target the
//! Rust standard library already links the platform C runtime, which
//! exports both. The module is compiled only on 64-bit unix
//! (`cfg(all(unix, target_pointer_width = "64"))`) where `off_t` is
//! unambiguously 64-bit; on other targets callers fall back to a heap
//! read ([`Storage::open`](crate::container::Storage::open) does this
//! automatically, as it does when mapping fails at runtime — e.g. for
//! empty files or filesystems without mmap support).
//!
//! # Concurrent-modification caveat
//!
//! A mapping observes the file *live*: another process truncating the
//! mapped file makes reads past the new end fault (`SIGBUS`), and
//! rewriting it in place changes mapped bytes under the reader. Treat
//! published snapshot files as immutable — write to a temp path and
//! `rename(2)` into place, never rewrite in place. (The CRC layer above
//! detects in-place rewrites that happen *before* a section's first
//! access, but cannot protect reads after verification.)

#![cfg(all(unix, target_pointer_width = "64"))]

use std::fs::File;
use std::io;
use std::os::unix::io::AsRawFd;

/// Raw bindings to the platform's `mmap`/`munmap`. The constants are
/// identical across the unix targets this module compiles on (Linux,
/// macOS, and the BSDs all use `PROT_READ = 1`, `MAP_SHARED = 1`).
mod sys {
    use core::ffi::c_void;

    extern "C" {
        pub fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: i32,
            flags: i32,
            fd: i32,
            offset: i64,
        ) -> *mut c_void;
        pub fn munmap(addr: *mut c_void, len: usize) -> i32;
    }

    pub const PROT_READ: i32 = 1;
    pub const MAP_SHARED: i32 = 1;
}

/// A read-only, shared, whole-file memory mapping. Unmapped on drop.
///
/// The mapping is `MAP_SHARED | PROT_READ`: pages are clean, file-backed,
/// and shared through the page cache with every other process mapping the
/// same file — the kernel keeps one physical copy no matter how many
/// readers exist. `mmap` returns page-aligned addresses, so the 64-byte
/// section alignment of the `TDZ1` container always holds inside a
/// mapped buffer.
#[derive(Debug)]
pub struct MmapRegion {
    ptr: std::ptr::NonNull<u8>,
    len: usize,
}

// Safety: the region is an immutable byte buffer for its whole lifetime
// (PROT_READ, never handed out mutably) — as thread-safe as `&[u8]`.
unsafe impl Send for MmapRegion {}
unsafe impl Sync for MmapRegion {}

impl MmapRegion {
    /// Maps the whole of `file` read-only. Fails for empty files
    /// (`mmap(len = 0)` is an error) and whenever the kernel refuses the
    /// mapping; callers are expected to fall back to a heap read.
    pub fn map_file(file: &File) -> io::Result<Self> {
        let len = usize::try_from(file.metadata()?.len())
            .map_err(|_| io::Error::other("file too large to map"))?;
        if len == 0 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "cannot map an empty file",
            ));
        }
        // Safety: a fresh anonymous-address, read-only, shared file
        // mapping; the fd stays open only for the duration of the call
        // (mappings survive the fd being closed).
        let ptr = unsafe {
            sys::mmap(
                std::ptr::null_mut(),
                len,
                sys::PROT_READ,
                sys::MAP_SHARED,
                file.as_raw_fd(),
                0,
            )
        };
        // MAP_FAILED is (void*)-1; a null return would be non-conforming
        // but is rejected too rather than wrapped in NonNull.
        if ptr as usize == usize::MAX || ptr.is_null() {
            return Err(io::Error::last_os_error());
        }
        Ok(Self {
            ptr: unsafe { std::ptr::NonNull::new_unchecked(ptr as *mut u8) },
            len,
        })
    }

    /// The mapped bytes.
    #[inline]
    pub fn as_slice(&self) -> &[u8] {
        // Safety: ptr/len describe a live PROT_READ mapping owned by self.
        unsafe { std::slice::from_raw_parts(self.ptr.as_ptr(), self.len) }
    }

    /// Mapped length in bytes.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the mapping is empty (never constructed; kept for
    /// API completeness).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

impl Drop for MmapRegion {
    fn drop(&mut self) {
        // Safety: ptr/len came from a successful mmap and are unmapped
        // exactly once. Failure is unrecoverable and ignored (the address
        // range simply stays mapped until process exit).
        unsafe {
            sys::munmap(self.ptr.as_ptr() as *mut core::ffi::c_void, self.len);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;

    fn temp(name: &str, bytes: &[u8]) -> std::path::PathBuf {
        let path = std::env::temp_dir().join(name);
        let mut f = File::create(&path).unwrap();
        f.write_all(bytes).unwrap();
        path
    }

    #[test]
    fn maps_file_contents() {
        let path = temp("tdmatch-mmap-basic.bin", b"hello mapped world");
        let f = File::open(&path).unwrap();
        let m = MmapRegion::map_file(&f).unwrap();
        assert_eq!(m.as_slice(), b"hello mapped world");
        assert_eq!(m.len(), 18);
        assert!(!m.is_empty());
        // Page alignment implies container section alignment.
        assert_eq!(m.as_slice().as_ptr() as usize % 64, 0);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn empty_file_is_rejected() {
        let path = temp("tdmatch-mmap-empty.bin", b"");
        let f = File::open(&path).unwrap();
        assert!(MmapRegion::map_file(&f).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn drop_unmaps_the_region() {
        let path = temp("tdmatch-mmap-drop.bin", &vec![7u8; 8192]);
        let f = File::open(&path).unwrap();
        let m = MmapRegion::map_file(&f).unwrap();
        let addr = m.as_slice().as_ptr() as usize;
        let maps = std::fs::read_to_string("/proc/self/maps").unwrap();
        assert!(
            maps.lines().any(|l| l.starts_with(&format!("{addr:x}-"))),
            "mapping for {addr:x} not found while alive"
        );
        drop(m);
        let maps = std::fs::read_to_string("/proc/self/maps").unwrap();
        assert!(
            !maps.lines().any(|l| l.starts_with(&format!("{addr:x}-"))),
            "mapping for {addr:x} still present after drop"
        );
        std::fs::remove_file(&path).ok();
    }
}
