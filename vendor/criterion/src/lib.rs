//! Vendored, dependency-free stand-in for the `criterion` crate.
//!
//! Implements the macro/API surface the bench targets use —
//! [`criterion_group!`] / [`criterion_main!`], [`Criterion::bench_function`],
//! [`Bencher::iter`] / [`Bencher::iter_batched`], [`BatchSize`] — with a
//! straightforward timing loop: warm up, then time `sample_size` samples
//! and report min / median / mean per iteration. No statistics engine, no
//! plots; numbers print to stdout in a stable, grep-friendly format.

use std::time::{Duration, Instant};

/// How batched inputs are grouped (accepted for API compatibility; the
/// vendored harness times each batch of one input individually).
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per batch.
    PerIteration,
}

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
    warmup_iters: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            sample_size: 20,
            warmup_iters: 3,
        }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one named benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            sample_size: self.sample_size,
            warmup_iters: self.warmup_iters,
            samples: Vec::new(),
        };
        f(&mut bencher);
        bencher.report(name);
        self
    }
}

/// Per-benchmark timing handle.
pub struct Bencher {
    sample_size: usize,
    warmup_iters: usize,
    /// Nanoseconds per iteration, one entry per sample.
    samples: Vec<f64>,
}

impl Bencher {
    /// Times `routine` repeatedly.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        for _ in 0..self.warmup_iters {
            std::hint::black_box(routine());
        }
        // Batch iterations so sub-microsecond routines get stable clocks.
        let probe = Instant::now();
        std::hint::black_box(routine());
        let once = probe.elapsed().max(Duration::from_nanos(1));
        let per_sample = (Duration::from_millis(2).as_nanos() / once.as_nanos()).clamp(1, 10_000)
            as usize;
        self.samples.clear();
        for _ in 0..self.sample_size {
            let t = Instant::now();
            for _ in 0..per_sample {
                std::hint::black_box(routine());
            }
            self.samples
                .push(t.elapsed().as_nanos() as f64 / per_sample as f64);
        }
    }

    /// Times `routine` over fresh inputs built by `setup` (setup time is
    /// excluded from the measurement).
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        for _ in 0..self.warmup_iters {
            std::hint::black_box(routine(setup()));
        }
        self.samples.clear();
        for _ in 0..self.sample_size {
            let input = setup();
            let t = Instant::now();
            std::hint::black_box(routine(input));
            self.samples.push(t.elapsed().as_nanos() as f64);
        }
    }

    fn report(&mut self, name: &str) {
        if self.samples.is_empty() {
            println!("{name:<40} (no samples)");
            return;
        }
        self.samples.sort_by(|a, b| a.total_cmp(b));
        let min = self.samples[0];
        let median = self.samples[self.samples.len() / 2];
        let mean = self.samples.iter().sum::<f64>() / self.samples.len() as f64;
        println!(
            "{name:<40} min {:>12}  median {:>12}  mean {:>12}",
            fmt_ns(min),
            fmt_ns(median),
            fmt_ns(mean)
        );
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// Declares a benchmark group: a function running each target with the
/// given [`Criterion`] configuration.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the bench entry point running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_collects_samples() {
        let mut c = Criterion::default().sample_size(5);
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
        c.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 16], |v| v.len(), BatchSize::SmallInput)
        });
    }

    #[test]
    fn ns_formatting_scales() {
        assert!(fmt_ns(12.0).ends_with("ns"));
        assert!(fmt_ns(12_000.0).ends_with("µs"));
        assert!(fmt_ns(12_000_000.0).ends_with("ms"));
        assert!(fmt_ns(12_000_000_000.0).ends_with("s"));
    }
}
