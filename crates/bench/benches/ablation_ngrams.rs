//! §V-F1 ablation — number of tokens per term (n-gram order).
//!
//! Paper shape: MAP improves substantially from n = 1 to n = 2, less from
//! 2 to 3, and plateaus (or regresses) beyond 3 — the basis for the
//! default n = 3.

use tdmatch_bench::{bench_config, evaluate, run_with_config};
use tdmatch_datasets::corona::SentenceKind;
use tdmatch_datasets::{audit, claims, corona, imdb, Scale, Scenario};

const NS: [usize; 4] = [1, 2, 3, 4];

fn main() {
    let scenarios: Vec<Scenario> = vec![
        imdb::generate(Scale::Tiny, 42, true),
        corona::generate(Scale::Tiny, 42, SentenceKind::Generated),
        audit::generate(Scale::Tiny, 42),
        claims::snopes(Scale::Tiny, 42),
    ];
    println!("\n=== Ablation — n-gram order (MAP@5, #nodes) ===");
    print!("{:<12}", "max_n");
    for n in NS {
        print!(" {n:>14}");
    }
    println!();
    for scenario in &scenarios {
        print!("{:<12}", scenario.name);
        for n in NS {
            let mut config = bench_config(&scenario.config);
            config.preprocess.max_ngram = n;
            let (run, model) = run_with_config(scenario, config, 20, false);
            let map = evaluate(&run, scenario).map_at[1];
            print!(" {:>7.3}/{:<6}", map, model.graph_size().0);
        }
        println!();
    }
}
