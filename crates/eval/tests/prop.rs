//! Property-based tests for the evaluation metrics.

use std::collections::HashSet;

use proptest::prelude::*;

use tdmatch_eval::node_score::node_score;
use tdmatch_eval::prf::exact_prf_single;
use tdmatch_eval::ranking::{average_precision_at_k, has_positive_at_k, reciprocal_rank};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// All ranking metrics live in [0, 1].
    #[test]
    fn metrics_are_bounded(
        ranked in prop::collection::vec(0u32..50, 0..30),
        relevant in prop::collection::hash_set(0u32..50, 0..10),
        k in 1usize..25,
    ) {
        let rr = reciprocal_rank(&ranked, &relevant);
        let ap = average_precision_at_k(&ranked, &relevant, k);
        let hp = has_positive_at_k(&ranked, &relevant, k);
        prop_assert!((0.0..=1.0).contains(&rr));
        prop_assert!((0.0..=1.0).contains(&ap), "ap = {ap}");
        prop_assert!(hp == 0.0 || hp == 1.0);
    }

    /// HasPositive@k is monotone in k; AP@k relevance hits imply HP@k.
    #[test]
    fn has_positive_monotone_in_k(
        ranked in prop::collection::vec(0u32..30, 0..20),
        relevant in prop::collection::hash_set(0u32..30, 1..8),
        k in 1usize..15,
    ) {
        let hp_k = has_positive_at_k(&ranked, &relevant, k);
        let hp_k1 = has_positive_at_k(&ranked, &relevant, k + 1);
        prop_assert!(hp_k1 >= hp_k);
        if average_precision_at_k(&ranked, &relevant, k) > 0.0 {
            prop_assert_eq!(hp_k, 1.0);
        }
    }

    /// Prepending a relevant item that is not already in the list never
    /// hurts RR or AP. (A *duplicate* relevant item may legitimately lower
    /// AP@k by pushing another relevant item past the cutoff.)
    #[test]
    fn prepending_relevant_item_improves(
        ranked in prop::collection::vec(0u32..30, 0..15),
        relevant in prop::collection::hash_set(0u32..30, 1..8),
        k in 1usize..10,
    ) {
        let best = *relevant.iter().next().unwrap();
        let ranked: Vec<u32> = ranked.into_iter().filter(|&x| x != best).collect();
        let mut improved = vec![best];
        improved.extend(ranked.iter().copied());
        prop_assert!(
            reciprocal_rank(&improved, &relevant) >= reciprocal_rank(&ranked, &relevant)
        );
        prop_assert!(
            average_precision_at_k(&improved, &relevant, k)
                >= average_precision_at_k(&ranked, &relevant, k) - 1e-12
        );
    }

    /// Perfect prediction ⇒ P = R = F = 1.
    #[test]
    fn perfect_prediction_scores_one(
        truth in prop::collection::hash_set("[a-c]{1,3}", 1..6),
    ) {
        let predicted: Vec<String> = truth.iter().cloned().collect();
        let truth_set: HashSet<String> = truth;
        let prf = exact_prf_single(&predicted, &truth_set);
        prop_assert!((prf.precision - 1.0).abs() < 1e-12);
        prop_assert!((prf.recall - 1.0).abs() < 1e-12);
        prop_assert!((prf.f1 - 1.0).abs() < 1e-12);
    }

    /// Node score is symmetric and bounded.
    #[test]
    fn node_score_symmetric_bounded(
        p1 in prop::collection::vec("[a-e]{1,2}", 1..6),
        p2 in prop::collection::vec("[a-e]{1,2}", 1..6),
    ) {
        let s12 = node_score(&p1, &p2);
        let s21 = node_score(&p2, &p1);
        prop_assert!((s12 - s21).abs() < 1e-12);
        prop_assert!((0.0..=1.0).contains(&s12));
    }

    /// A path scores 1.0 against itself.
    #[test]
    fn node_score_reflexive(p in prop::collection::vec("[a-e]{1,2}", 1..6)) {
        prop_assert!((node_score(&p, &p) - 1.0).abs() < 1e-12);
    }
}
