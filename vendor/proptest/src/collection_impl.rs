//! `prop::collection` strategies: sized `Vec` and `HashSet`.

use std::collections::HashSet;
use std::fmt;
use std::hash::Hash;

use crate::{Strategy, TestRng};

/// A size specification: inclusive lower bound, exclusive upper bound
/// (matching the `lo..hi` ranges test files pass).
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl SizeRange {
    fn sample(&self, rng: &mut TestRng) -> usize {
        assert!(self.lo < self.hi, "empty size range");
        self.lo + rng.below((self.hi - self.lo) as u64) as usize
    }
}

impl From<std::ops::Range<usize>> for SizeRange {
    fn from(r: std::ops::Range<usize>) -> Self {
        Self {
            lo: r.start,
            hi: r.end,
        }
    }
}

impl From<std::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: std::ops::RangeInclusive<usize>) -> Self {
        Self {
            lo: *r.start(),
            hi: r.end() + 1,
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        Self { lo: n, hi: n + 1 }
    }
}

/// Strategy for vectors with element strategy `S` and a sampled length.
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let n = self.size.sample(rng);
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}

/// `prop::collection::vec(element, size)`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// Strategy for hash sets; duplicates are retried so the sampled size is
/// met whenever the element domain allows it.
#[derive(Debug, Clone)]
pub struct HashSetStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for HashSetStrategy<S>
where
    S::Value: Eq + Hash + fmt::Debug,
{
    type Value = HashSet<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let n = self.size.sample(rng);
        let mut set = HashSet::with_capacity(n);
        // Bounded retries: tiny domains (e.g. "[a-c]{1,1}") can saturate
        // below the requested size.
        let mut attempts = 0usize;
        while set.len() < n && attempts < n * 20 + 100 {
            set.insert(self.element.generate(rng));
            attempts += 1;
        }
        set
    }
}

/// `prop::collection::hash_set(element, size)`.
pub fn hash_set<S: Strategy>(element: S, size: impl Into<SizeRange>) -> HashSetStrategy<S> {
    HashSetStrategy {
        element,
        size: size.into(),
    }
}
