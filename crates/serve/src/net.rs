//! Transport abstraction: one stream type over Unix sockets and TCP.
//!
//! The frame codec ([`crate::protocol`]) is already transport-agnostic —
//! it only needs `Read`/`Write`. What the server and client additionally
//! rely on is the small POSIX surface both socket families share:
//! `try_clone`, half-duplex `shutdown`, and the SO_RCVTIMEO/SO_SNDTIMEO
//! deadlines that drive slow-peer eviction. This enum carries exactly
//! that surface so the rest of the crate stays oblivious to which
//! listener accepted the connection.
//!
//! TCP streams get `TCP_NODELAY` set at construction: frames are small
//! (a k=10 response is a few hundred bytes) and the daemon's whole
//! latency budget is microseconds of coalescing window — Nagle's 40 ms
//! delayed-ACK interaction would dwarf everything else.

use std::io::{self, Read, Write};
use std::net::{Shutdown, TcpStream};
use std::os::unix::net::UnixStream;
use std::time::Duration;

/// A connected byte stream from either listener family.
#[derive(Debug)]
pub(crate) enum Stream {
    Unix(UnixStream),
    Tcp(TcpStream),
}

impl Stream {
    /// Wraps an accepted/connected TCP stream, setting `TCP_NODELAY`.
    /// A failure to set the option is not fatal — the stream still
    /// works, just with Nagle latency.
    pub(crate) fn tcp(stream: TcpStream) -> Stream {
        let _ = stream.set_nodelay(true);
        Stream::Tcp(stream)
    }

    pub(crate) fn try_clone(&self) -> io::Result<Stream> {
        match self {
            Stream::Unix(s) => s.try_clone().map(Stream::Unix),
            Stream::Tcp(s) => s.try_clone().map(Stream::Tcp),
        }
    }

    pub(crate) fn shutdown(&self, how: Shutdown) -> io::Result<()> {
        match self {
            Stream::Unix(s) => s.shutdown(how),
            Stream::Tcp(s) => s.shutdown(how),
        }
    }

    pub(crate) fn set_read_timeout(&self, dur: Option<Duration>) -> io::Result<()> {
        match self {
            Stream::Unix(s) => s.set_read_timeout(dur),
            Stream::Tcp(s) => s.set_read_timeout(dur),
        }
    }

    pub(crate) fn set_write_timeout(&self, dur: Option<Duration>) -> io::Result<()> {
        match self {
            Stream::Unix(s) => s.set_write_timeout(dur),
            Stream::Tcp(s) => s.set_write_timeout(dur),
        }
    }
}

impl Read for Stream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Stream::Unix(s) => s.read(buf),
            Stream::Tcp(s) => s.read(buf),
        }
    }
}

impl Write for Stream {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            Stream::Unix(s) => s.write(buf),
            Stream::Tcp(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            Stream::Unix(s) => s.flush(),
            Stream::Tcp(s) => s.flush(),
        }
    }
}

impl From<UnixStream> for Stream {
    fn from(s: UnixStream) -> Stream {
        Stream::Unix(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    #[test]
    fn both_families_roundtrip_bytes_and_share_the_timeout_surface() {
        // Unix pair.
        let (a, b) = UnixStream::pair().expect("socketpair");
        let mut tx = Stream::Unix(a);
        let mut rx = Stream::Unix(b);
        tx.write_all(b"unix").unwrap();
        tx.flush().unwrap();
        let mut buf = [0u8; 4];
        rx.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"unix");

        // TCP pair through a loopback listener on an ephemeral port.
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().unwrap();
        let client = TcpStream::connect(addr).expect("connect");
        let (server, _) = listener.accept().expect("accept");
        let mut tx = Stream::tcp(client);
        let mut rx = Stream::tcp(server);
        tx.set_write_timeout(Some(Duration::from_secs(5))).unwrap();
        rx.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        tx.write_all(b"tcp!").unwrap();
        tx.flush().unwrap();
        rx.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"tcp!");

        // Clones share the descriptor; shutdown of the write half is
        // seen as EOF by the peer.
        let clone = tx.try_clone().unwrap();
        clone.shutdown(Shutdown::Write).unwrap();
        assert_eq!(rx.read(&mut buf).unwrap(), 0, "EOF after shutdown");
    }
}
