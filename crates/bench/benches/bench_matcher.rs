//! Batch-matching throughput recorder: times the seed nested-`Option`
//! scoring path (`top_k_matches_naive`: cosine recomputed per pair + full
//! sort) against the flat similarity engine (pre-normalized
//! `ScoreMatrix`, tiled dot kernels, bounded top-k) on a
//! `fig8_scaling`-sized query/target set, counts heap allocations, and
//! writes `BENCH_matcher.json` at the repository root so the matching
//! phase's perf trajectory is tracked from PR to PR.
//!
//! Run with `cargo bench -p tdmatch-bench --bench bench_matcher`.
//! `TDMATCH_BENCH_COPIES` (default 4) scales the corpus pair like
//! Figure 8's union-of-scenarios construction; `TDMATCH_DIM` overrides
//! the embedding dimensionality (default: the Small-scale 80).
//!
//! Embeddings are synthesized deterministically (SplitMix64) at the
//! corpus sizes the fig8 construction yields — the matcher's cost depends
//! only on shapes and missing-row density, not on where the vectors came
//! from — with ~2% missing rows per side, matching documents whose
//! metadata node vanished.

use std::time::Instant;

use tdmatch_bench::alloc_probe::{AllocProbe, CountingAlloc};
use tdmatch_core::matcher::{
    top_k_matches, top_k_matches_matrix, top_k_matches_matrix_parallel, top_k_matches_naive,
    MatchResult,
};
use tdmatch_datasets::{sts, Scale};
use tdmatch_embed::score::ScoreMatrix;

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Synthetic metadata embeddings: ~2% missing, entries in [-1, 1).
fn gen_side(n: usize, dim: usize, state: &mut u64) -> Vec<Option<Vec<f32>>> {
    (0..n)
        .map(|_| {
            if splitmix(state).is_multiple_of(50) {
                None
            } else {
                Some(
                    (0..dim)
                        .map(|_| (splitmix(state) >> 40) as f32 / (1u64 << 23) as f32 - 1.0)
                        .collect(),
                )
            }
        })
        .collect()
}

struct PathStats {
    secs: f64,
    pairs_per_sec: f64,
    allocations: u64,
    peak_bytes: u64,
}

fn json_path_stats(s: &PathStats) -> String {
    format!(
        "{{\"secs\": {:.6}, \"pairs_per_sec\": {:.1}, \"allocations\": {}, \"peak_bytes\": {}}}",
        s.secs, s.pairs_per_sec, s.allocations, s.peak_bytes,
    )
}

/// Best-of-N wall time + first-run allocation counters for one path.
fn measure<F: FnMut() -> Vec<MatchResult>>(
    pairs: f64,
    reps: usize,
    mut f: F,
) -> (Vec<MatchResult>, PathStats) {
    let probe = AllocProbe::start();
    let t = Instant::now();
    let out = f();
    let mut secs = t.elapsed().as_secs_f64();
    let (allocations, peak_bytes) = probe.finish();
    for _ in 1..reps {
        let t = Instant::now();
        std::hint::black_box(f());
        secs = secs.min(t.elapsed().as_secs_f64());
    }
    let stats = PathStats {
        secs,
        pairs_per_sec: pairs / secs,
        allocations,
        peak_bytes,
    };
    (out, stats)
}

fn main() {
    let copies: usize = std::env::var("TDMATCH_BENCH_COPIES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(4);
    let dim: usize = std::env::var("TDMATCH_DIM")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(80);
    let k = 20usize;

    // Figure-8-sized corpus pair: a union of independently seeded STS
    // corpora, exactly like fig8_scaling / bench_walks build theirs.
    let mut n_targets = 0usize;
    let mut n_queries = 0usize;
    for seed in 0..copies as u64 {
        let s = sts::generate(Scale::Small, 100 + seed, 2);
        n_targets += s.first.len();
        n_queries += s.second.len();
    }

    let mut state = 0x7D_5EEDu64;
    let targets = gen_side(n_targets, dim, &mut state);
    let queries = gen_side(n_queries, dim, &mut state);
    let pairs = (n_queries * n_targets) as f64;
    // Matching is compute-bound (unlike training), so the parallel row
    // uses every core.
    let threads = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!(
        "matching workload: {n_queries} queries × {n_targets} targets, dim {dim}, k {k} \
         ({} missing targets, {} missing queries)",
        targets.iter().filter(|t| t.is_none()).count(),
        queries.iter().filter(|q| q.is_none()).count(),
    );

    const REPS: usize = 3;

    // --- Seed path: nested Options, cosine per pair, full sort ---------
    let (naive_out, naive) =
        measure(pairs, REPS, || top_k_matches_naive(&queries, &targets, k, None, None));

    // --- Engine, one-shot: per-call matrix build + batch top-k ---------
    let (engine_out, engine_oneshot) =
        measure(pairs, REPS, || top_k_matches(&queries, &targets, k, None, None));

    // --- Engine, normalize-once: pre-built matrices (the TdModel path) --
    let t = Instant::now();
    let qm = ScoreMatrix::from_options_dim(&queries, dim);
    let tm = ScoreMatrix::from_options_dim(&targets, dim);
    let normalize_secs = t.elapsed().as_secs_f64();
    let (_, engine_seq) =
        measure(pairs, REPS, || top_k_matches_matrix(&qm, &tm, k, None, None));
    let (par_out, engine_par) = measure(pairs, REPS, || {
        top_k_matches_matrix_parallel(&qm, &tm, k, None, None, threads)
    });

    // The engine must reproduce the seed rankings exactly.
    assert_eq!(naive_out.len(), engine_out.len());
    for (n, e) in naive_out.iter().zip(&engine_out) {
        assert_eq!(
            n.target_indices(),
            e.target_indices(),
            "engine diverged from the seed ranking at query {}",
            n.query
        );
    }
    assert_eq!(engine_out, par_out, "parallel engine diverged");

    let speedup_seq = naive.secs / engine_seq.secs;
    let speedup_oneshot = naive.secs / engine_oneshot.secs;
    let speedup_par = naive.secs / engine_par.secs;
    println!(
        "naive: {:.3}s | engine one-shot: {:.3}s ({:.2}x) | engine seq: {:.3}s ({:.2}x) | \
         engine {}T: {:.3}s ({:.2}x)",
        naive.secs, engine_oneshot.secs, speedup_oneshot, engine_seq.secs, speedup_seq,
        threads, engine_par.secs, speedup_par,
    );

    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"batch_matching\",\n",
            "  \"workload\": {{\"queries\": {}, \"targets\": {}, \"dim\": {}, \"k\": {}, ",
            "\"copies\": {}, \"threads\": {}}},\n",
            "  \"normalize_secs\": {:.6},\n",
            "  \"nested_option\": {},\n",
            "  \"engine_oneshot\": {},\n",
            "  \"engine_prenormalized\": {},\n",
            "  \"engine_parallel\": {},\n",
            "  \"speedup_oneshot\": {:.3},\n",
            "  \"speedup_prenormalized\": {:.3},\n",
            "  \"speedup_parallel\": {:.3}\n",
            "}}\n"
        ),
        n_queries,
        n_targets,
        dim,
        k,
        copies,
        threads,
        normalize_secs,
        json_path_stats(&naive),
        json_path_stats(&engine_oneshot),
        json_path_stats(&engine_seq),
        json_path_stats(&engine_par),
        speedup_oneshot,
        speedup_seq,
        speedup_par,
    );
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_matcher.json");
    std::fs::write(out, &json).expect("write BENCH_matcher.json");
    println!("wrote {out}");
}
