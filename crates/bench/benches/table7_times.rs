//! Table VII — train and test execution times (seconds) per method per
//! task, averaged over the task's scenarios.
//!
//! Paper shape: our method's *test* time is the fastest of all methods
//! (embedding lookup + cosine); its train time sits between the plain
//! embedding baselines and the fine-tuned transformers; S-BE has no
//! training at all.

use tdmatch_bench::{registry, scale_from_env, Method, TABLE_K};
use tdmatch_datasets::{Scale, Scenario};

struct Task {
    name: &'static str,
    scenarios: Vec<Scenario>,
}

const METHODS: [Method; 7] = [
    Method::W2vec,
    Method::D2vec,
    Method::Sbe,
    Method::Wrw,
    Method::Rank,
    Method::Lbe,
    Method::Ditto,
];

fn method_times(scenario: &Scenario) -> Vec<(String, f64, f64)> {
    METHODS
        .iter()
        .map(|&m| {
            let run = m.run(scenario, TABLE_K, 42);
            (run.method, run.train_secs, run.test_secs)
        })
        .collect()
}

fn scenarios(keys: &[&str], scale: Scale) -> Vec<Scenario> {
    keys.iter()
        .map(|k| registry::by_key(k).expect("registered").generate(scale, 42))
        .collect()
}

fn main() {
    let scale = scale_from_env();
    let tasks = vec![
        Task {
            name: "Text to data",
            scenarios: scenarios(&["imdb-wt", "corona-gen"], scale),
        },
        Task {
            name: "Structured text",
            scenarios: scenarios(&["audit"], scale),
        },
        Task {
            name: "Text to text",
            scenarios: scenarios(&["snopes", "politifact"], scale),
        },
    ];

    println!("\n=== Table VII — train and test execution times (sec) ===");
    println!("{:<16} {:<10} {:>10} {:>10}", "Task", "Method", "Train", "Test");
    println!("{}", "-".repeat(50));
    for task in tasks {
        // Average per method over the task's scenarios.
        let mut agg: std::collections::BTreeMap<String, (f64, f64, usize)> =
            std::collections::BTreeMap::new();
        for scenario in &task.scenarios {
            for (m, tr, te) in method_times(scenario) {
                let e = agg.entry(m).or_insert((0.0, 0.0, 0));
                e.0 += tr;
                e.1 += te;
                e.2 += 1;
            }
        }
        for (m, (tr, te, n)) in agg {
            println!(
                "{:<16} {:<10} {:>10.3} {:>10.4}",
                task.name,
                m,
                tr / n as f64,
                te / n as f64
            );
        }
        println!("{}", "-".repeat(50));
    }
}
