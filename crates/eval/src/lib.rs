//! Evaluation metrics for TDmatch experiments (§V).
//!
//! * [`ranking`] — Mean Reciprocal Rank, MAP@k, HasPositive@k (Tables I,
//!   II, IV, V, VI);
//! * [`prf`] — precision / recall / F-score over top-k assignments with
//!   *exact* path matching (Table III);
//! * [`mod@node_score`] — the paper's partial-path Node score, Eq. (1)
//!   (Table III).

pub mod node_score;
pub mod prf;
pub mod ranking;

pub use node_score::{node_prf, node_score};
pub use prf::{exact_prf, Prf};
pub use ranking::{
    average_precision_at_k, has_positive_at_k, mean_metrics, mean_metrics_over,
    reciprocal_rank, RankMetrics,
};
