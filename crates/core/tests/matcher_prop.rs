//! Property tests pinning the engine-backed matcher to the seed
//! implementation: [`top_k_matches`] (and its parallel/matrix variants)
//! must produce exactly the same rankings — indices and tie-breaks — as
//! the legacy nested-`Option` cosine + full-sort path
//! ([`top_k_matches_naive`]), with scores within 1e-5, across random
//! dims, missing rows, k above/below the target count, blocking,
//! extra-score combination, and any thread count.

use proptest::prelude::*;

use tdmatch_core::matcher::{
    top_k_matches, top_k_matches_matrix, top_k_matches_matrix_parallel, top_k_matches_naive,
    top_k_matches_parallel,
};
use tdmatch_embed::score::ScoreMatrix;

/// SplitMix64 — deterministic vector material from a proptest seed.
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn unit(state: &mut u64) -> f32 {
    (splitmix(state) >> 40) as f32 / (1u64 << 23) as f32 - 1.0
}

/// Optional rows: ~1/5 missing, ~1/7 all-zero, rest random in [-1, 1).
fn gen_rows(n: usize, dim: usize, state: &mut u64) -> Vec<Option<Vec<f32>>> {
    (0..n)
        .map(|_| {
            let marker = splitmix(state) % 35;
            if marker % 5 == 4 {
                None
            } else if marker % 7 == 3 {
                Some(vec![0.0; dim])
            } else {
                Some((0..dim).map(|_| unit(state)).collect())
            }
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Engine wrapper ≡ seed path ≡ matrix entry points ≡ parallel, for
    /// every combination of blocking / extra-score, at any thread count.
    #[test]
    fn matcher_is_pinned_to_the_seed_path(
        dim in 1usize..12,
        n_queries in 0usize..9,
        n_targets in 0usize..16,
        k in 0usize..20,
        seed in 0u64..1_000_000,
        use_extra in 0u8..2,
        blocking in 0u8..3,
    ) {
        let mut state = seed ^ 0xF00D;
        let queries = gen_rows(n_queries, dim, &mut state);
        let targets = gen_rows(n_targets, dim, &mut state);

        let extra_fn = |q: usize, t: usize| ((q * 29 + t * 13) % 17) as f32 / 17.0 - 0.4;
        // blocking == 1: a deterministic subset (sometimes empty);
        // blocking == 2: subset with duplicated candidates.
        let cand_fn = move |q: usize| {
            let mut c: Vec<usize> = (0..n_targets)
                .filter(|t| !(t * 7 + q * 3 + 1).is_multiple_of(3))
                .collect();
            if blocking == 2 {
                let dups: Vec<usize> =
                    c.iter().copied().filter(|t| t % 5 == 0).collect();
                c.extend(dups);
            }
            c
        };
        let extra: Option<&(dyn Fn(usize, usize) -> f32 + Sync)> =
            if use_extra == 1 { Some(&extra_fn) } else { None };
        let cand: Option<&(dyn Fn(usize) -> Vec<usize> + Sync)> =
            if blocking > 0 { Some(&cand_fn) } else { None };
        let extra_plain = extra.map(|f| f as &dyn Fn(usize, usize) -> f32);
        let cand_plain = cand.map(|f| f as &dyn Fn(usize) -> Vec<usize>);

        let naive = top_k_matches_naive(&queries, &targets, k, extra_plain, cand_plain);
        let engine = top_k_matches(&queries, &targets, k, extra_plain, cand_plain);

        prop_assert_eq!(naive.len(), engine.len());
        for (n, e) in naive.iter().zip(&engine) {
            prop_assert_eq!(n.query, e.query);
            prop_assert_eq!(
                &n.target_indices(), &e.target_indices(),
                "q={} k={} extra={} blocking={}", n.query, k, use_extra, blocking
            );
            for (a, b) in n.ranked.iter().zip(&e.ranked) {
                prop_assert!(
                    (a.1 - b.1).abs() < 1e-5,
                    "q={} score {:?} vs {:?}", n.query, a, b
                );
            }
        }

        // The pre-normalized matrix entry points agree bit-for-bit with
        // the slice wrapper, sequentially and at any thread count.
        let qm = ScoreMatrix::from_options_dim(&queries, dim);
        let tm = ScoreMatrix::from_options_dim(&targets, dim);
        let matrix = top_k_matches_matrix(&qm, &tm, k, extra_plain, cand_plain);
        prop_assert_eq!(&engine, &matrix);
        for threads in [1usize, 2, 3, 7] {
            let par = top_k_matches_parallel(&queries, &targets, k, extra, cand, threads);
            prop_assert_eq!(&engine, &par, "slice parallel, threads = {}", threads);
            let mpar =
                top_k_matches_matrix_parallel(&qm, &tm, k, extra, cand, threads);
            prop_assert_eq!(&engine, &mpar, "matrix parallel, threads = {}", threads);
        }
    }
}
