//! Serving: two handles memory-map the *same* saved artifact and answer
//! top-k queries from one shared physical copy.
//!
//! ```sh
//! cargo run --release --example serving
//! ```
//!
//! The handles below live in one process for brevity, but nothing about
//! them is process-local: `MatchArtifact::load` maps the file read-only,
//! so N *processes* doing the same share the pages through the OS page
//! cache exactly like the two handles here share one mapping each.
//! `BENCH_persist.json` (`serving.rss_per_reader`) records that
//! cross-process effect; `crates/core/tests/mmap_serving.rs` proves it
//! with real subprocesses.

use tdmatch::core::artifact::MatchArtifact;
use tdmatch::core::config::TdConfig;
use tdmatch::core::corpus::{Corpus, Table, TextCorpus};
use tdmatch::core::pipeline::TdMatch;
use tdmatch::graph::container::Storage;

fn main() {
    let movies = Table::new(
        "movies",
        vec!["title".into(), "director".into(), "genre".into()],
        vec![
            vec!["The Sixth Sense".into(), "Shyamalan".into(), "Thriller".into()],
            vec!["Pulp Fiction".into(), "Tarantino".into(), "Drama".into()],
            vec!["Kill Bill".into(), "Tarantino".into(), "Action".into()],
        ],
    );
    let reviews = TextCorpus::new(vec![
        "shyamalan thriller with the famous twist ending".into(),
        "tarantino pulp dialogue and a drama that is a comedy".into(),
    ]);

    // Fit once and publish the artifact — the expensive step, done by
    // the fitting job, not the serving fleet.
    let model = TdMatch::new(TdConfig::for_tests())
        .fit(&Corpus::Table(movies), &Corpus::Text(reviews))
        .expect("fit");
    let path = std::env::temp_dir().join("tdmatch-serving-example.tdm");
    model.save_artifact(&path).expect("save artifact");
    println!(
        "published {} ({} bytes)",
        path.display(),
        std::fs::metadata(&path).expect("stat").len()
    );

    // Two independent serving handles open the same file. Each load is
    // O(1) in the artifact size: the file is mapped, not read, and
    // section checksums verify on first access.
    let serve_a = MatchArtifact::load(&path).expect("reader A");
    let serve_b = MatchArtifact::load(&path).expect("reader B");
    assert!(serve_a.is_zero_copy() && serve_b.is_zero_copy());

    // (Storage::open is what load uses under the hood — shown here only
    // to report the backing.)
    let storage = Storage::open(&path).expect("probe storage");
    println!(
        "backing: {} | lazy per-section CRC: {}\n",
        if storage.is_mapped() { "mmap (one shared physical copy)" } else { "heap (no mmap on this target)" },
        storage.lazy_verification(),
    );

    // Handle A sweeps the whole query corpus…
    println!("reader A: full top-2 sweep");
    for result in serve_a.match_top_k(2) {
        let ranked: Vec<String> = result
            .ranked
            .iter()
            .map(|(t, s)| format!("tuple{t}:{s:.3}"))
            .collect();
        println!("  query {} -> {}", result.query, ranked.join(" "));
    }

    // …while handle B answers ad-hoc, out-of-corpus queries against the
    // same mapped matrices.
    let query = "a tarantino drama";
    let tokens = tdmatch::text::Preprocessor::default().base_tokens(query);
    let result = serve_b.match_new_query(&tokens, 2);
    println!("reader B: {query:?} -> ");
    for (rank, (target, score)) in result.ranked.iter().enumerate() {
        println!("  #{} tuple {target} (score {score:.3})", rank + 1);
    }

    // Both handles rank identically — they are views of the same bytes.
    assert_eq!(serve_a.match_top_k(2), serve_b.match_top_k(2));
    println!("\nreaders agree; dropping the last handle unmaps the file");
    std::fs::remove_file(&path).ok();
}
