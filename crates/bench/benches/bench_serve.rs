//! Serving recorder: coalesced batch scans vs serial per-request scans,
//! in-process and over the daemon's socket.
//!
//! The `tdmatch serve` daemon exists so that N concurrent clients ride
//! **one** tiled batch top-k call per coalescing window instead of
//! issuing N scalar scans. This recorder measures, on the
//! `bench_persist`-sized STS workload:
//!
//! * **engine** — the scheduler's inner loop without any socket: every
//!   query scored one-per-call (`Matcher::query_by_id`, the serial
//!   baseline) vs coalesced through a reused `QueryBlock` in batches of
//!   8 (`Matcher::query_batch_with`, what the daemon's scheduler runs).
//!   Both paths are asserted bit-identical to `match_top_k` before
//!   anything is timed. Measured twice: on the fitted workload (target
//!   matrix is cache-resident, so coalescing only amortizes per-call
//!   fixed costs) and on a cache-exceeding synthetic serving tier,
//!   where a serial scan re-streams the whole target matrix per request
//!   while a coalesced batch streams it once per 8 — the memory-traffic
//!   regime the tiled kernel is built for;
//! * **daemon** — a live daemon on a temp socket under an 8-client
//!   lockstep workload, once with batching disabled (`max_batch 1`,
//!   zero window — the serial per-request daemon) and once with the
//!   default coalescing policy (`max_batch 8`): wall-clock throughput,
//!   per-request latency (mean/p50/p99), and the achieved batch shape
//!   from the daemon's own counters;
//! * **degraded** — the coalescing daemon again, with the same 8
//!   healthy clients plus one client stalled mid-frame holding its
//!   connection open. The daemon must evict the stall (50 ms deadline)
//!   and the healthy clients' p99 must stay within 2× of the
//!   all-healthy tier — one broken peer cannot poison the fleet;
//! * **saturated** — 32 clients hammering a daemon over the
//!   cache-exceeding 65k-target corpus with wide batches
//!   (`max_batch 32`), swept across scoring-pool widths (`--workers`
//!   1/2/4). This is the scale-out tier: with more cores than clients
//!   need, req/s should grow with the worker count; the recorded
//!   `cores` field says how much hardware parallelism the run actually
//!   had (on a single-core host the sweep records the pool's overhead
//!   instead of its scaling).
//!
//! Results land in `BENCH_serve.json` at the repository root. Run with
//! `cargo bench -p tdmatch-bench --bench bench_serve`;
//! `TDMATCH_BENCH_COPIES` / `TDMATCH_SCALE` / `TDMATCH_DIM` / … scale
//! the workload as in the other recorders.

use std::time::{Duration, Instant};

use tdmatch_bench::bench_config;
use tdmatch_core::artifact::MatchArtifact;
use tdmatch_core::corpus::{Corpus, TextCorpus};
use tdmatch_core::pipeline::TdMatch;
use tdmatch_core::serving::{Matcher, Query};
use tdmatch_datasets::{sts, Scale};
use tdmatch_serve::batch::BatchOptions;
use tdmatch_serve::client::Client;
use tdmatch_serve::server::{ServeOptions, Server};

const CLIENTS: usize = 8;
const REQUESTS_PER_CLIENT: usize = 150;
const ENGINE_ROUNDS: usize = 5;

struct DaemonRun {
    clients: usize,
    wall_secs: f64,
    requests: usize,
    latencies_us: Vec<f64>,
    mean_batch: f64,
    max_batch: u64,
    coalesced: u64,
    evicted: u64,
    workers: u64,
    shards: u64,
}

impl DaemonRun {
    fn p99_us(&self) -> f64 {
        let mut lat = self.latencies_us.clone();
        lat.sort_by(|a, b| a.partial_cmp(b).unwrap());
        percentile(&lat, 0.99)
    }
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx]
}

fn json_daemon(run: &DaemonRun) -> String {
    let mut lat = run.latencies_us.clone();
    lat.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let mean = lat.iter().sum::<f64>() / lat.len().max(1) as f64;
    format!(
        "{{\"clients\": {}, \"workers\": {}, \"requests\": {}, \"wall_secs\": {:.6}, \
         \"requests_per_sec\": {:.1}, \
         \"latency_us\": {{\"mean\": {:.1}, \"p50\": {:.1}, \"p99\": {:.1}}}, \
         \"mean_batch\": {:.2}, \"max_batch\": {}, \"coalesced_requests\": {}, \
         \"shards\": {}, \"evicted\": {}}}",
        run.clients,
        run.workers,
        run.requests,
        run.wall_secs,
        run.requests as f64 / run.wall_secs,
        mean,
        percentile(&lat, 0.50),
        percentile(&lat, 0.99),
        run.mean_batch,
        run.max_batch,
        run.coalesced,
        run.shards,
        run.evicted,
    )
}

/// Runs a `clients`-way lockstep workload against a daemon with the
/// given batching policy and scoring-pool width, collecting client-side
/// latencies + server counters. With `stalled_peer`, one extra client
/// stalls mid-frame for the whole run (and must be evicted by the
/// daemon's 50 ms deadline) while the healthy clients proceed.
#[allow(clippy::too_many_arguments)]
fn daemon_run(
    matcher: &Matcher,
    tag: &str,
    batch: BatchOptions,
    k: usize,
    clients: usize,
    per_client: usize,
    pool_workers: usize,
    stalled_peer: bool,
) -> DaemonRun {
    use std::io::Write;

    let socket = std::env::temp_dir().join(format!(
        "tdmatch-bench-serve-{tag}-{}.sock",
        std::process::id()
    ));
    std::fs::remove_file(&socket).ok();
    let mut options = ServeOptions {
        batch,
        ..ServeOptions::at(socket.clone()).workers(pool_workers)
    };
    if stalled_peer {
        options.io_timeout = Duration::from_millis(50);
    }
    let server = Server::start(matcher.clone(), options).expect("daemon start");

    // The stalled peer claims a 64-byte frame, delivers 4 bytes, and
    // holds the connection for the whole run.
    let _stalled = stalled_peer.then(|| {
        let mut s = std::os::unix::net::UnixStream::connect(&socket).expect("stalled connect");
        s.write_all(&64u32.to_le_bytes()).expect("stall prefix");
        s.write_all(b"{\"op").expect("stall partial payload");
        s
    });

    let queries = matcher.queries();
    let wall = Instant::now();
    let handles: Vec<_> = (0..clients)
        .map(|c| {
            let socket = socket.clone();
            std::thread::spawn(move || {
                let mut client = Client::connect(&socket).expect("connect");
                let mut latencies = Vec::with_capacity(per_client);
                for r in 0..per_client {
                    let doc = (c * per_client + r) % queries;
                    let t = Instant::now();
                    let (ranked, _batch) = client.query_id(doc, k).expect("query");
                    latencies.push(t.elapsed().as_secs_f64() * 1e6);
                    assert!(ranked.len() <= k);
                }
                latencies
            })
        })
        .collect();
    let mut latencies_us = Vec::with_capacity(clients * per_client);
    for w in handles {
        latencies_us.extend(w.join().expect("client thread"));
    }
    let wall_secs = wall.elapsed().as_secs_f64();
    if stalled_peer {
        // Give the read deadline room to fire even if the healthy
        // workload finished inside the 50 ms window.
        std::thread::sleep(Duration::from_millis(150));
    }
    let stats = server.stats();
    drop(server);
    std::fs::remove_file(&socket).ok();
    assert_eq!(stats.requests as usize, clients * per_client);
    assert_eq!(stats.inflight, 0, "admitted queries left unanswered");
    if stalled_peer {
        assert!(
            stats.evicted >= 1,
            "the stalled peer was never evicted (evicted={})",
            stats.evicted
        );
    }
    DaemonRun {
        clients,
        wall_secs,
        requests: clients * per_client,
        latencies_us,
        mean_batch: stats.mean_batch(),
        max_batch: stats.max_batch,
        coalesced: stats.coalesced,
        evicted: stats.evicted,
        workers: stats.workers,
        shards: stats.shards,
    }
}

/// Times serial `query_by_id` scans vs 8-wide coalesced batches over
/// `matcher`'s full query corpus, `rounds` times each. Returns
/// `(serial_secs, batched_secs)`.
fn engine_pass(matcher: &Matcher, k: usize, rounds: usize) -> (f64, f64) {
    let queries = matcher.queries();
    let all_ids: Vec<Query> = (0..queries).map(Query::ById).collect();

    let t = Instant::now();
    for _ in 0..rounds {
        for id in 0..queries {
            std::hint::black_box(matcher.query_by_id(id, k).unwrap());
        }
    }
    let serial_secs = t.elapsed().as_secs_f64();

    let mut block = matcher.query_block();
    let t = Instant::now();
    for _ in 0..rounds {
        for chunk in all_ids.chunks(block.capacity()) {
            std::hint::black_box(matcher.query_batch_with(&mut block, chunk, k));
        }
    }
    (serial_secs, t.elapsed().as_secs_f64())
}

/// A synthetic serving-tier matcher whose target matrix exceeds every
/// cache level: `targets × dim` pseudo-random rows (~tens of MiB), a
/// small resident query set. No fitting — this matrix stands in for a
/// production-sized index, isolating the scan's memory behaviour.
fn synthetic_matcher(targets: usize, queries: usize, dim: usize) -> Matcher {
    let mut state = 0x2545F4914F6CDD1Du64;
    let mut next = move || {
        // xorshift*: cheap, deterministic, good enough to defeat any
        // similarity structure between rows.
        state ^= state >> 12;
        state ^= state << 25;
        state ^= state >> 27;
        (state.wrapping_mul(0x2545F4914F6CDD1D) >> 40) as f32 / (1 << 24) as f32 - 0.5
    };
    let mut row = |_: usize| Some((0..dim).map(|_| next()).collect::<Vec<f32>>());
    let target_rows: Vec<Option<Vec<f32>>> = (0..targets).map(&mut row).collect();
    let query_rows: Vec<Option<Vec<f32>>> = (0..queries).map(&mut row).collect();
    Matcher::new(MatchArtifact::new(dim, Vec::new(), target_rows, query_rows))
}

fn main() {
    let copies: usize = std::env::var("TDMATCH_BENCH_COPIES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(2);
    let k = 20usize;

    // The bench_persist workload: a union of independently seeded STS
    // corpora at the env-controlled scale.
    let mut first_docs = Vec::new();
    let mut second_docs = Vec::new();
    for seed in 0..copies as u64 {
        let s = sts::generate(Scale::Small, 100 + seed, 2);
        let Corpus::Text(f) = s.first else { unreachable!() };
        let Corpus::Text(snd) = s.second else { unreachable!() };
        first_docs.extend(f.docs);
        second_docs.extend(snd.docs);
    }
    let first = Corpus::Text(TextCorpus::new(first_docs));
    let second = Corpus::Text(TextCorpus::new(second_docs));
    let base = sts::generate(Scale::Tiny, 1, 2);
    let config = bench_config(&base.config);
    let dim = config.dim;
    let (targets, queries) = (first.len(), second.len());
    println!(
        "serve workload: {targets} targets × {queries} queries, dim {dim}, k {k} \
         ({copies} copies, {CLIENTS} clients × {REQUESTS_PER_CLIENT} requests)"
    );

    let model = TdMatch::new(config).fit(&first, &second).expect("pipeline fit");
    let matcher = Matcher::new(model.artifact());

    // --- Correctness gate: both serving paths ≡ the one-shot ranking ---
    let oracle = matcher.artifact().match_top_k(k);
    let all_ids: Vec<Query> = (0..queries).map(Query::ById).collect();
    let batched_all = matcher.query_batch(&all_ids, k);
    for (id, want) in oracle.iter().enumerate() {
        let serial = matcher.query_by_id(id, k).expect("id in range");
        let batched = batched_all[id].as_ref().expect("id in range");
        assert_eq!(&serial, &want.ranked, "serial diverged at {id}");
        assert_eq!(batched, &want.ranked, "batched diverged at {id}");
        for (b, w) in batched.iter().zip(&want.ranked) {
            assert_eq!(b.1.to_bits(), w.1.to_bits(), "score bits at {id}");
        }
    }

    // --- Engine: serial per-request scans vs coalesced batches ---------
    let (serial_secs, batched_secs) = engine_pass(&matcher, k, ENGINE_ROUNDS);
    let pairs = (targets * queries * ENGINE_ROUNDS) as f64;
    let engine_speedup = serial_secs / batched_secs;
    println!(
        "engine (fitted): serial {serial_secs:.4}s ({:.1}M pairs/s) vs coalesced \
         {batched_secs:.4}s ({:.1}M pairs/s) -> {engine_speedup:.2}x",
        pairs / serial_secs / 1e6,
        pairs / batched_secs / 1e6,
    );

    // --- Engine on a cache-exceeding serving tier ----------------------
    let (l_targets, l_queries, l_dim) = (65_536usize, 128usize, 96usize);
    let large = synthetic_matcher(l_targets, l_queries, l_dim);
    let (l_serial, l_batched) = engine_pass(&large, k, 1);
    let l_pairs = (l_targets * l_queries) as f64;
    let large_speedup = l_serial / l_batched;
    println!(
        "engine ({}MiB target matrix): serial {l_serial:.4}s ({:.1}M pairs/s) vs coalesced \
         {l_batched:.4}s ({:.1}M pairs/s) -> {large_speedup:.2}x",
        (l_targets * l_dim * 4) >> 20,
        l_pairs / l_serial / 1e6,
        l_pairs / l_batched / 1e6,
    );
    assert!(
        large_speedup > 1.0,
        "coalesced batches must beat serial per-request scans (got {large_speedup:.2}x)"
    );

    // --- Daemon: serial per-request policy vs coalescing policy --------
    let serial_daemon = daemon_run(
        &matcher,
        "serial",
        BatchOptions {
            window: Duration::ZERO,
            max_batch: 1,
        },
        k,
        CLIENTS,
        REQUESTS_PER_CLIENT,
        1,
        false,
    );
    let batched_daemon = daemon_run(
        &matcher,
        "batched",
        BatchOptions::default(),
        k,
        CLIENTS,
        REQUESTS_PER_CLIENT,
        1,
        false,
    );
    let daemon_speedup = serial_daemon.wall_secs / batched_daemon.wall_secs;
    println!(
        "daemon (8 clients): serial {:.3}s ({:.0} req/s, mean batch {:.2}) vs \
         coalesced {:.3}s ({:.0} req/s, mean batch {:.2}, max {}) -> {daemon_speedup:.2}x",
        serial_daemon.wall_secs,
        serial_daemon.requests as f64 / serial_daemon.wall_secs,
        serial_daemon.mean_batch,
        batched_daemon.wall_secs,
        batched_daemon.requests as f64 / batched_daemon.wall_secs,
        batched_daemon.mean_batch,
        batched_daemon.max_batch,
    );
    assert!(
        batched_daemon.max_batch >= 2,
        "the coalescing daemon never batched concurrent clients"
    );

    // --- Degraded mode: 8 healthy clients + 1 stalled mid-frame --------
    let degraded_daemon = daemon_run(
        &matcher,
        "degraded",
        BatchOptions::default(),
        k,
        CLIENTS,
        REQUESTS_PER_CLIENT,
        1,
        true,
    );
    let healthy_p99 = batched_daemon.p99_us();
    let degraded_p99 = degraded_daemon.p99_us();
    let degraded_ratio = degraded_p99 / healthy_p99.max(f64::EPSILON);
    println!(
        "daemon (degraded, +1 stalled client): {:.3}s ({:.0} req/s), healthy p99 \
         {degraded_p99:.1}µs vs all-healthy p99 {healthy_p99:.1}µs -> {degraded_ratio:.2}x, \
         {} evicted",
        degraded_daemon.wall_secs,
        degraded_daemon.requests as f64 / degraded_daemon.wall_secs,
        degraded_daemon.evicted,
    );
    assert!(
        degraded_ratio <= 2.0,
        "one stalled client poisoned healthy p99 ({degraded_ratio:.2}x > 2x)"
    );

    // --- Saturated scale-out tier: 32 clients on the 65k corpus --------
    // Wide batches shard across the scoring pool; the sweep records how
    // req/s responds to pool width on this host's core count.
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let sat_clients = 32usize;
    let sat_per_client = 15usize;
    let sat_batch = BatchOptions {
        window: Duration::from_micros(500),
        max_batch: 32,
    };
    let mut saturated = Vec::new();
    for pool_workers in [1usize, 2, 4] {
        let run = daemon_run(
            &large,
            &format!("saturated-w{pool_workers}"),
            sat_batch,
            k,
            sat_clients,
            sat_per_client,
            pool_workers,
            false,
        );
        println!(
            "daemon (saturated, {sat_clients} clients, {pool_workers} workers): {:.3}s \
             ({:.0} req/s, mean batch {:.2}, max {}, {} shards, p99 {:.1}µs)",
            run.wall_secs,
            run.requests as f64 / run.wall_secs,
            run.mean_batch,
            run.max_batch,
            run.shards,
            run.p99_us(),
        );
        assert!(
            run.max_batch > 8,
            "the saturated tier never built a wide batch (max {})",
            run.max_batch
        );
        saturated.push(run);
    }
    // Scale-out gate: with real hardware parallelism, the best sharded
    // tier must beat the single-worker pool on throughput. On a
    // single-core host the sweep only measures pool overhead, so the
    // gate would be noise — skip it there.
    if cores > 1 {
        let rps = |run: &DaemonRun| run.requests as f64 / run.wall_secs;
        let single = rps(&saturated[0]);
        let best_multi = saturated[1..].iter().map(rps).fold(0.0f64, f64::max);
        assert!(
            best_multi >= single * 1.1,
            "sharded scoring pool does not scale on this {cores}-core host: \
             1 worker {single:.0} req/s, best multi-worker {best_multi:.0} req/s"
        );
    }
    let saturated_json: Vec<String> = saturated.iter().map(json_daemon).collect();

    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"serve\",\n",
            "  \"workload\": {{\"targets\": {}, \"queries\": {}, \"dim\": {}, \"k\": {}, ",
            "\"copies\": {}}},\n",
            "  \"engine_fitted\": {{\"rounds\": {}, \"serial_secs\": {:.6}, ",
            "\"batched_secs\": {:.6}, ",
            "\"serial_pairs_per_sec\": {:.1}, \"batched_pairs_per_sec\": {:.1}, ",
            "\"speedup\": {:.2}}},\n",
            "  \"engine_large\": {{\"targets\": {}, \"queries\": {}, \"dim\": {}, ",
            "\"serial_secs\": {:.6}, \"batched_secs\": {:.6}, ",
            "\"serial_pairs_per_sec\": {:.1}, \"batched_pairs_per_sec\": {:.1}, ",
            "\"speedup\": {:.2}}},\n",
            "  \"daemon_serial\": {},\n",
            "  \"daemon_batched\": {},\n",
            "  \"daemon_speedup\": {:.2},\n",
            "  \"daemon_degraded\": {},\n",
            "  \"degraded_p99_ratio\": {:.2},\n",
            "  \"cores\": {},\n",
            "  \"daemon_saturated\": {{\"targets\": {}, \"queries\": {}, \"dim\": {}, ",
            "\"max_batch\": {}, \"tiers\": [\n    {}\n  ]}}\n",
            "}}\n"
        ),
        targets,
        queries,
        dim,
        k,
        copies,
        ENGINE_ROUNDS,
        serial_secs,
        batched_secs,
        pairs / serial_secs,
        pairs / batched_secs,
        engine_speedup,
        l_targets,
        l_queries,
        l_dim,
        l_serial,
        l_batched,
        l_pairs / l_serial,
        l_pairs / l_batched,
        large_speedup,
        json_daemon(&serial_daemon),
        json_daemon(&batched_daemon),
        daemon_speedup,
        json_daemon(&degraded_daemon),
        degraded_ratio,
        cores,
        l_targets,
        l_queries,
        l_dim,
        sat_batch.max_batch,
        saturated_json.join(",\n    "),
    );
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_serve.json");
    std::fs::write(out, &json).expect("write BENCH_serve.json");
    println!("wrote {out}");
}
