//! The single registry of the paper's evaluation scenarios.
//!
//! Every consumer that needs a scenario by name — the CLI's
//! `--scenario` flag, the table/figure benches, the conformance
//! lifecycle — resolves it here, so the set of known datasets and
//! their spellings cannot drift between entry points.

use tdmatch_datasets::corona::SentenceKind;
use tdmatch_datasets::{audit, claims, corona, imdb, sts, Scale, Scenario};

/// One named, deterministic scenario generator.
pub struct ScenarioSpec {
    /// Canonical key (what the CLI's `--scenario` accepts).
    pub key: &'static str,
    /// Human-readable description for reports.
    pub title: &'static str,
    generate: fn(Scale, u64) -> Scenario,
}

impl ScenarioSpec {
    /// Generates the scenario at a scale tier. Same `(scale, seed)` →
    /// byte-identical corpora and ground truth.
    pub fn generate(&self, scale: Scale, seed: u64) -> Scenario {
        (self.generate)(scale, seed)
    }
}

/// Every registered scenario, in table order.
pub const ALL: &[ScenarioSpec] = &[
    ScenarioSpec {
        key: "imdb-wt",
        title: "IMDb reviews to movie tuples (with titles)",
        generate: |scale, seed| imdb::generate(scale, seed, true),
    },
    ScenarioSpec {
        key: "imdb-nt",
        title: "IMDb reviews to movie tuples (no titles)",
        generate: |scale, seed| imdb::generate(scale, seed, false),
    },
    ScenarioSpec {
        key: "corona-gen",
        title: "CoronaCheck generated claims to statistics",
        generate: |scale, seed| corona::generate(scale, seed, SentenceKind::Generated),
    },
    ScenarioSpec {
        key: "corona-usr",
        title: "CoronaCheck user claims to statistics",
        generate: |scale, seed| corona::generate(scale, seed, SentenceKind::User),
    },
    ScenarioSpec {
        key: "audit",
        title: "Audit findings to taxonomy paths",
        generate: audit::generate,
    },
    ScenarioSpec {
        key: "politifact",
        title: "Politifact documents to verified claims",
        generate: claims::politifact,
    },
    ScenarioSpec {
        key: "snopes",
        title: "Snopes documents to verified claims",
        generate: claims::snopes,
    },
    ScenarioSpec {
        key: "sts2",
        title: "STS sentence pairs at similarity threshold 2",
        generate: |scale, seed| sts::generate(scale, seed, 2),
    },
    ScenarioSpec {
        key: "sts3",
        title: "STS sentence pairs at similarity threshold 3",
        generate: |scale, seed| sts::generate(scale, seed, 3),
    },
];

/// The six-dataset conformance set (one representative variant per
/// paper dataset: IMDb, CoronaCheck, Audit, Politifact, Snopes, STS)
/// that the end-to-end lifecycle suite drives through the daemon.
pub const CONFORMANCE_KEYS: [&str; 6] = [
    "imdb-wt",
    "corona-gen",
    "audit",
    "politifact",
    "snopes",
    "sts2",
];

/// The conformance scenarios that additionally run the
/// incremental-ingest (delta) stage: apply a delta to the published
/// artifact, republish, hot-reload the daemon, and re-assert the wire
/// invariants. Two families keep the suite test-speed while covering
/// both a structured and a free-text dataset.
pub const DELTA_KEYS: [&str; 2] = ["imdb-wt", "sts2"];

/// Whether a conformance scenario runs the delta stage.
pub fn runs_delta(key: &str) -> bool {
    DELTA_KEYS.contains(&key)
}

/// Looks a scenario up by its canonical key.
pub fn by_key(key: &str) -> Option<&'static ScenarioSpec> {
    ALL.iter().find(|s| s.key == key)
}

/// Every registered key, in table order (for help texts and errors).
pub fn keys() -> Vec<&'static str> {
    ALL.iter().map(|s| s.key).collect()
}

/// The conformance set resolved to specs.
pub fn conformance_specs() -> Vec<&'static ScenarioSpec> {
    CONFORMANCE_KEYS
        .iter()
        .map(|k| by_key(k).expect("conformance keys are registered"))
        .collect()
}

/// The five scenarios the paper's parameter-sweep figures iterate over
/// (Figs. 6/7/9/10), generated at one scale and seed.
pub fn paper_five(scale: Scale, seed: u64) -> Vec<Scenario> {
    ["imdb-wt", "corona-gen", "audit", "politifact", "snopes"]
        .iter()
        .map(|k| by_key(k).expect("registered").generate(scale, seed))
        .collect()
}

/// The stable tier name recorded in `BENCH_scenarios.json`.
pub fn scale_name(scale: Scale) -> &'static str {
    match scale {
        Scale::Tiny => "tiny",
        Scale::Small => "small",
        Scale::Paper => "paper",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keys_are_unique_and_resolvable() {
        let keys = keys();
        for (i, k) in keys.iter().enumerate() {
            assert!(!keys[i + 1..].contains(k), "duplicate key {k}");
            assert_eq!(by_key(k).unwrap().key, *k);
        }
        assert!(by_key("no-such-scenario").is_none());
    }

    #[test]
    fn generated_names_match_registry_keys() {
        // The Scenario's self-reported name must agree with the
        // registry spelling (the STS generator spells its threshold
        // `sts-k2`; the CLI key has always been the shorter `sts2`).
        for spec in ALL {
            let s = spec.generate(Scale::Tiny, 1);
            let want = match spec.key {
                "sts2" => "sts-k2",
                "sts3" => "sts-k3",
                key => key,
            };
            assert_eq!(s.name, want, "{} generates a scenario named {}", spec.key, s.name);
        }
    }

    #[test]
    fn paper_five_is_deterministic() {
        let a = paper_five(Scale::Tiny, 3);
        let b = paper_five(Scale::Tiny, 3);
        assert_eq!(a.len(), 5);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.name, y.name);
            assert_eq!(x.ground_truth, y.ground_truth);
        }
    }
}
