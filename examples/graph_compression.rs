//! Graph expansion and MSP compression (§III): expand the joint graph
//! with an external KB, shrink it back with Metadata-Shortest-Path
//! sampling, and compare sizes and matching quality.
//!
//! ```sh
//! cargo run --release --example graph_compression
//! ```

use std::collections::HashSet;

use tdmatch::core::config::Compression;
use tdmatch::core::pipeline::{FitOptions, TdMatch};
use tdmatch::datasets::corona::{self, SentenceKind};
use tdmatch::datasets::Scale;
use tdmatch::eval::ranking::mean_metrics;

fn main() {
    let scenario = corona::generate(Scale::Tiny, 5, SentenceKind::Generated);
    let config = tdmatch::core::config::TdConfig {
        walks_per_node: 20,
        walk_len: 12,
        dim: 64,
        ..scenario.config.clone()
    };

    println!("{:<22} {:>7} {:>8} {:>7}", "variant", "#nodes", "#edges", "MRR");
    for (label, expand, compression) in [
        ("original", false, None),
        ("expanded", true, None),
        ("expanded + MSP(0.5)", true, Some(Compression::Msp { beta: 0.5 })),
        ("expanded + MSP(0.25)", true, Some(Compression::Msp { beta: 0.25 })),
    ] {
        let model = TdMatch::new(config.clone())
            .fit_with(
                &scenario.first,
                &scenario.second,
                FitOptions {
                    kb: expand.then_some(scenario.kb.as_ref()),
                    compression,
                    merge: Some((&scenario.pretrained, scenario.gamma)),
                },
            )
            .expect("fit");
        let truth = scenario.truth_sets();
        let queries: Vec<(Vec<usize>, HashSet<usize>)> = model
            .match_top_k(20)
            .iter()
            .map(|r| r.target_indices())
            .zip(truth)
            .collect();
        let metrics = mean_metrics(&queries);
        let (n, e) = model.graph_size();
        println!("{label:<22} {n:>7} {e:>8} {:>7.3}", metrics.mrr);
    }
}
