//! Property-based tests for the graph substrate.

use proptest::prelude::*;

use tdmatch_graph::traverse::{all_shortest_paths, bfs_distances, connected_components, shortest_path_len};
use tdmatch_graph::{EdgeKind, Graph, NodeId};

/// Builds a graph from `n` nodes and arbitrary edge pairs (mod n).
fn build(n: usize, edges: &[(usize, usize)]) -> Graph {
    let mut g = Graph::new();
    let ids: Vec<NodeId> = (0..n).map(|i| g.intern_data(&format!("n{i}"))).collect();
    for &(a, b) in edges {
        g.add_edge(ids[a % n], ids[b % n]);
    }
    g
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Edge count equals the number of distinct undirected pairs.
    #[test]
    fn edge_count_matches_distinct_pairs(
        n in 2usize..20,
        edges in prop::collection::vec((0usize..20, 0usize..20), 0..60),
    ) {
        let g = build(n, &edges);
        let mut set = std::collections::HashSet::new();
        for &(a, b) in &edges {
            let (a, b) = (a % n, b % n);
            if a != b {
                set.insert((a.min(b), a.max(b)));
            }
        }
        prop_assert_eq!(g.edge_count(), set.len());
        prop_assert_eq!(g.edges().count(), set.len());
    }

    /// Adjacency is symmetric.
    #[test]
    fn adjacency_is_symmetric(
        n in 2usize..15,
        edges in prop::collection::vec((0usize..15, 0usize..15), 0..40),
    ) {
        let g = build(n, &edges);
        for a in g.nodes() {
            for &b in g.neighbors(a) {
                prop_assert!(g.neighbors(b).contains(&a));
            }
        }
    }

    /// BFS distances satisfy the triangle property along edges:
    /// |d(u) − d(v)| ≤ 1 for every edge (u, v) reachable from the source.
    #[test]
    fn bfs_distances_are_lipschitz(
        n in 2usize..15,
        edges in prop::collection::vec((0usize..15, 0usize..15), 0..40),
    ) {
        let g = build(n, &edges);
        let start = g.nodes().next().unwrap();
        let dist = bfs_distances(&g, start);
        for (a, b) in g.edges() {
            let (da, db) = (dist[a.index()], dist[b.index()]);
            if da != u32::MAX && db != u32::MAX {
                prop_assert!(da.abs_diff(db) <= 1, "edge ({a},{b}): {da} vs {db}");
            } else {
                prop_assert_eq!(da, db, "one endpoint reachable, the other not");
            }
        }
    }

    /// Every enumerated shortest path has the BFS-optimal length and is a
    /// valid edge sequence.
    #[test]
    fn enumerated_paths_are_shortest(
        n in 2usize..12,
        edges in prop::collection::vec((0usize..12, 0usize..12), 1..40),
        pick in (0usize..12, 0usize..12),
    ) {
        let g = build(n, &edges);
        let a = NodeId((pick.0 % n) as u32);
        let b = NodeId((pick.1 % n) as u32);
        let paths = all_shortest_paths(&g, a, b, 32);
        match shortest_path_len(&g, a, b) {
            None => prop_assert!(paths.is_empty()),
            Some(len) => {
                prop_assert!(!paths.is_empty());
                for p in &paths {
                    prop_assert_eq!(p.len() as u32, len + 1);
                    prop_assert_eq!(p[0], a);
                    prop_assert_eq!(*p.last().unwrap(), b);
                    for w in p.windows(2) {
                        prop_assert!(g.has_edge(w[0], w[1]));
                    }
                }
            }
        }
    }

    /// Components partition the live nodes.
    #[test]
    fn components_partition(
        n in 1usize..15,
        edges in prop::collection::vec((0usize..15, 0usize..15), 0..30),
    ) {
        let g = build(n, &edges);
        let comps = connected_components(&g);
        let total: usize = comps.iter().map(|c| c.len()).sum();
        prop_assert_eq!(total, g.node_count());
        let mut seen = std::collections::HashSet::new();
        for c in &comps {
            for &x in c {
                prop_assert!(seen.insert(x), "node in two components");
            }
        }
    }

    /// Removing a node never leaves dangling adjacency entries.
    #[test]
    fn removal_is_clean(
        n in 2usize..12,
        edges in prop::collection::vec((0usize..12, 0usize..12), 0..30),
        victim in 0usize..12,
    ) {
        let mut g = build(n, &edges);
        let v = NodeId((victim % n) as u32);
        g.remove_node(v);
        for a in g.nodes() {
            prop_assert!(!g.neighbors(a).contains(&v));
        }
        prop_assert_eq!(g.edges().count(), g.edge_count());
    }

    /// Under an arbitrary sequence of typed edge insertions and node
    /// removals, the adjacency and edge-kind tables stay parallel and the
    /// kind reported from both endpoints agrees.
    #[test]
    fn edge_kinds_stay_consistent_under_edits(
        n in 2usize..12,
        ops in prop::collection::vec(
            // (op, a, b, kind index): op 0..=3 add edge, 4 remove node.
            (0u8..5, 0usize..12, 0usize..12, 0usize..5),
            1..60,
        ),
    ) {
        let mut g = Graph::new();
        let ids: Vec<NodeId> = (0..n).map(|i| g.intern_data(&format!("n{i}"))).collect();
        for &(op, a, b, k) in &ops {
            let (a, b) = (ids[a % n], ids[b % n]);
            if op < 4 {
                g.add_edge_typed(a, b, EdgeKind::ALL[k]);
            } else {
                g.remove_node(a);
            }
        }
        let mut live_edges = 0usize;
        for u in g.nodes() {
            prop_assert_eq!(g.neighbors(u).len(), g.neighbor_kinds(u).len());
            for (&v, &kind) in g.neighbors(u).iter().zip(g.neighbor_kinds(u)) {
                prop_assert!(!g.is_removed(v), "edge to removed node");
                prop_assert_eq!(g.edge_kind(u, v), Some(kind));
                prop_assert_eq!(g.edge_kind(v, u), Some(kind));
                live_edges += 1;
            }
        }
        prop_assert_eq!(live_edges, 2 * g.edge_count());
        let hist = g.edge_kind_histogram();
        prop_assert_eq!(hist.iter().sum::<usize>(), g.edge_count());
    }

    /// Merging preserves the union of neighborhoods (minus the pair).
    #[test]
    fn merge_preserves_neighbors(
        n in 3usize..12,
        edges in prop::collection::vec((0usize..12, 0usize..12), 0..30),
    ) {
        let mut g = build(n, &edges);
        let keep = NodeId(0);
        let remove = NodeId(1);
        let mut expected: std::collections::HashSet<NodeId> = g
            .neighbors(keep)
            .iter()
            .chain(g.neighbors(remove))
            .copied()
            .filter(|&x| x != keep && x != remove)
            .collect();
        g.merge_nodes(keep, remove);
        let actual: std::collections::HashSet<NodeId> =
            g.neighbors(keep).iter().copied().collect();
        expected.remove(&remove);
        prop_assert_eq!(actual, expected);
    }

    /// Persisting any graph and reading it back preserves node labels,
    /// kinds, degrees, and edge kinds.
    #[test]
    fn persist_roundtrip_preserves_structure(
        n in 1usize..12,
        edges in prop::collection::vec((0usize..12, 0usize..12, 0usize..5), 0..40),
        removals in prop::collection::vec(0usize..12, 0..4),
    ) {
        use tdmatch_graph::persist::{read_graph, write_graph};
        let mut g = Graph::new();
        let ids: Vec<NodeId> = (0..n).map(|i| g.intern_data(&format!("n{i}"))).collect();
        for &(a, b, k) in &edges {
            g.add_edge_typed(ids[a % n], ids[b % n], EdgeKind::ALL[k]);
        }
        for &r in &removals {
            g.remove_node(ids[r % n]);
        }
        let mut buf = Vec::new();
        write_graph(&g, &mut buf).unwrap();
        let h = read_graph(&mut buf.as_slice()).unwrap();
        prop_assert_eq!(g.node_count(), h.node_count());
        prop_assert_eq!(g.edge_count(), h.edge_count());
        for u in g.nodes() {
            let hu = h.data_node(g.label(u)).expect("node survives");
            prop_assert_eq!(g.degree(u), h.degree(hu));
            for (&v, &kind) in g.neighbors(u).iter().zip(g.neighbor_kinds(u)) {
                let hv = h.data_node(g.label(v)).unwrap();
                prop_assert_eq!(h.edge_kind(hu, hv), Some(kind));
            }
        }
    }
}
