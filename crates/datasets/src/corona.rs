//! The CoronaCheck scenario (§V-A): COVID-19 claims matched to official
//! statistics tuples.
//!
//! A table of per-country monthly case/death statistics, and two claim
//! corpora: **Generated** sentences templated from the data, and **User**
//! sentences with typos in country names, rounded figures, and comparative
//! claims that require matching *two* rows (the paper's "Number of cases
//! in US is higher than China" example). About a quarter of data nodes are
//! numeric — the bucketing merge's natural habitat.

use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};

use tdmatch_core::config::TdConfig;
use tdmatch_core::corpus::{Corpus, Table, TextCorpus};
use tdmatch_kb::{lexicon, SyntheticConceptNet};

use crate::{standard_pretrained, Scale, Scenario};

/// Which claim corpus to generate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SentenceKind {
    /// Sentences templated directly from the data (the paper's *Gen*).
    Generated,
    /// Noisier user-submitted sentences (the paper's *Usr*): typos,
    /// rounding, comparatives.
    User,
}

static MONTHS: &[&str] = &[
    "january", "february", "march", "april", "may", "june", "july", "august", "september",
    "october", "november", "december",
];

fn sizes(scale: Scale) -> (usize, usize, usize) {
    // (countries, months, sentences)
    match scale {
        Scale::Tiny => (12, 4, 30),
        Scale::Small => (50, 12, 300),
        Scale::Paper => (50, 24, 7_000),
    }
}

/// Deterministic monthly new-case volume for (country, month).
fn cases_for(seed: u64, country: usize, month: usize) -> u64 {
    100 + lexicon::pick(seed ^ 0xC0F0, (country * 64 + month) as u64, 50_000) as u64
}

fn deaths_for(seed: u64, country: usize, month: usize) -> u64 {
    1 + lexicon::pick(seed ^ 0xD0D0, (country * 64 + month) as u64, 900) as u64
}

struct World {
    countries: Vec<&'static str>,
    months: usize,
    seed: u64,
}

impl World {
    fn row_index(&self, country: usize, month: usize) -> usize {
        country * self.months + month
    }

    fn table(&self) -> Table {
        let columns: Vec<String> = [
            "country", "month", "year", "new_cases", "total_cases", "new_deaths", "total_deaths",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let mut rows = Vec::new();
        for (c, country) in self.countries.iter().enumerate() {
            let mut total_cases = 0u64;
            let mut total_deaths = 0u64;
            for m in 0..self.months {
                let new_cases = cases_for(self.seed, c, m);
                let new_deaths = deaths_for(self.seed, c, m);
                total_cases += new_cases;
                total_deaths += new_deaths;
                rows.push(vec![
                    country.to_string(),
                    MONTHS[m % 12].to_string(),
                    (2020 + m / 12).to_string(),
                    new_cases.to_string(),
                    total_cases.to_string(),
                    new_deaths.to_string(),
                    total_deaths.to_string(),
                ]);
            }
        }
        Table::new("coronacheck", columns, rows)
    }
}

/// Introduces one character-drop typo into a country name.
fn typo(rng: &mut SmallRng, word: &str) -> String {
    if word.len() < 4 {
        return word.to_string();
    }
    let pos = rng.random_range(1..word.len() - 1);
    let mut s = String::with_capacity(word.len() - 1);
    for (i, ch) in word.chars().enumerate() {
        if i != pos {
            s.push(ch);
        }
    }
    s
}

/// Rounds a figure the way people quote numbers ("about 5300").
fn rounded(v: u64) -> u64 {
    if v >= 10_000 {
        (v / 1_000) * 1_000
    } else if v >= 1_000 {
        (v / 100) * 100
    } else {
        (v / 10) * 10
    }
}

fn generate_sentence(
    rng: &mut SmallRng,
    world: &World,
    kind: SentenceKind,
) -> (String, Vec<usize>) {
    let c = rng.random_range(0..world.countries.len());
    let m = rng.random_range(0..world.months);
    let country = world.countries[c];
    let month = MONTHS[m % 12];
    let year = 2020 + m / 12;
    let cases = cases_for(world.seed, c, m);
    let deaths = deaths_for(world.seed, c, m);
    match kind {
        SentenceKind::Generated => {
            let (text, rows) = match rng.random_range(0..3) {
                0 => (
                    format!("the number of new cases in {country} in {month} {year} was {cases}"),
                    vec![world.row_index(c, m)],
                ),
                1 => (
                    format!("{country} recorded {deaths} new deaths during {month} {year}"),
                    vec![world.row_index(c, m)],
                ),
                _ => (
                    format!("in {month} {year} {country} reported {cases} confirmed cases"),
                    vec![world.row_index(c, m)],
                ),
            };
            (text, rows)
        }
        SentenceKind::User => {
            let noisy_country = if rng.random_bool(0.5) {
                typo(rng, country)
            } else {
                country.to_string()
            };
            match rng.random_range(0..3) {
                0 => (
                    format!(
                        "about {} people tested positive in {noisy_country} in {month}",
                        rounded(cases)
                    ),
                    vec![world.row_index(c, m)],
                ),
                1 => (
                    format!(
                        "i heard {noisy_country} had around {} deaths in {month} {year}",
                        rounded(deaths)
                    ),
                    vec![world.row_index(c, m)],
                ),
                _ => {
                    // Comparative claim: needs two rows (the paper's
                    // US-vs-China example).
                    let mut c2 = rng.random_range(0..world.countries.len());
                    if c2 == c {
                        c2 = (c2 + 1) % world.countries.len();
                    }
                    let other = world.countries[c2];
                    (
                        format!(
                            "number of cases in {noisy_country} is higher than {other} in {month}"
                        ),
                        vec![world.row_index(c, m), world.row_index(c2, m)],
                    )
                }
            }
        }
    }
}

/// Generates the CoronaCheck scenario for the given claim corpus kind.
pub fn generate(scale: Scale, seed: u64, kind: SentenceKind) -> Scenario {
    let mut rng = SmallRng::seed_from_u64(seed ^ 0xC0C0_0C0C);
    let (n_countries, n_months, n_sentences) = sizes(scale);
    // User corpora are small in the paper (50 sentences vs 7k generated).
    let n_sentences = match kind {
        SentenceKind::Generated => n_sentences,
        SentenceKind::User => (n_sentences / 6).max(10),
    };
    let world = World {
        countries: lexicon::COUNTRIES[..n_countries.min(lexicon::COUNTRIES.len())].to_vec(),
        months: n_months,
        seed,
    };

    let mut sentences = Vec::with_capacity(n_sentences);
    let mut truth = Vec::with_capacity(n_sentences);
    for _ in 0..n_sentences {
        let (text, rows) = generate_sentence(&mut rng, &world, kind);
        sentences.push(text);
        truth.push(rows);
    }

    let (pretrained, gamma) = standard_pretrained(seed, 0.25);
    Scenario {
        name: match kind {
            SentenceKind::Generated => "corona-gen".to_string(),
            SentenceKind::User => "corona-usr".to_string(),
        },
        first: Corpus::Table(world.table()),
        second: Corpus::Text(TextCorpus::new(sentences)),
        ground_truth: truth,
        kb: Box::new(SyntheticConceptNet::standard(seed, 2)),
        pretrained,
        gamma,
        config: TdConfig {
            bucket_numbers: true,
            ..TdConfig::text_to_data()
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_shape() {
        let s = generate(Scale::Tiny, 5, SentenceKind::Generated);
        let Corpus::Table(t) = &s.first else { panic!() };
        assert_eq!(t.columns.len(), 7);
        assert_eq!(t.rows.len(), 12 * 4);
    }

    #[test]
    fn generated_sentences_quote_exact_numbers() {
        let s = generate(Scale::Tiny, 5, SentenceKind::Generated);
        let Corpus::Table(t) = &s.first else { panic!() };
        let Corpus::Text(claims) = &s.second else { panic!() };
        // Each sentence contains its row's country name.
        for (i, claim) in claims.docs.iter().enumerate() {
            let row = s.ground_truth[i][0];
            assert!(
                claim.contains(&t.rows[row][0]),
                "claim {i} misses country: {claim}"
            );
        }
    }

    #[test]
    fn user_sentences_include_comparatives() {
        let s = generate(Scale::Small, 5, SentenceKind::User);
        let two_row = s.ground_truth.iter().filter(|g| g.len() == 2).count();
        assert!(two_row > 0, "expected comparative claims with 2-row truth");
    }

    #[test]
    fn user_corpus_is_smaller() {
        let g = generate(Scale::Small, 5, SentenceKind::Generated);
        let u = generate(Scale::Small, 5, SentenceKind::User);
        assert!(u.second.len() < g.second.len());
    }

    #[test]
    fn typo_drops_one_char() {
        let mut rng = SmallRng::seed_from_u64(1);
        let t = typo(&mut rng, "germany");
        assert_eq!(t.len(), "germany".len() - 1);
        assert_eq!(typo(&mut rng, "usa"), "usa");
    }

    #[test]
    fn config_enables_bucketing() {
        let s = generate(Scale::Tiny, 5, SentenceKind::Generated);
        assert!(s.config.bucket_numbers);
    }
}
