//! MSP — Metadata Shortest Path compression (the paper's Alg. 3).
//!
//! `L = β · |V|` iterations; each picks one random *matchable* metadata
//! node per corpus, computes all shortest paths between them in the input
//! graph, and adds those paths to the output. A final pass guarantees that
//! every metadata node is connected by at least one shortest path even if
//! it was never sampled.

use rand::rngs::SmallRng;
use rand::seq::IndexedRandom;
use rand::SeedableRng;

use tdmatch_graph::traverse::{all_shortest_paths, bfs_distances};
use tdmatch_graph::{CorpusSide, Graph, NodeId};

use crate::subgraph::SubgraphBuilder;

/// MSP parameters.
#[derive(Debug, Clone, Copy)]
pub struct MspConfig {
    /// Compression ratio β: iterations = `β · node_count`. The paper
    /// evaluates 0.5 and 0.25 (Table VIII).
    pub beta: f64,
    /// Cap on enumerated shortest paths per sampled pair (the shortest-path
    /// DAG can hold exponentially many).
    pub max_paths_per_pair: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for MspConfig {
    fn default() -> Self {
        Self {
            beta: 0.5,
            max_paths_per_pair: 16,
            seed: 42,
        }
    }
}

/// Runs MSP compression and returns the compressed graph.
pub fn msp_compress(g: &Graph, config: &MspConfig) -> Graph {
    let first = g.matchable_nodes(CorpusSide::First);
    let second = g.matchable_nodes(CorpusSide::Second);
    let mut builder = SubgraphBuilder::new(g);
    if first.is_empty() || second.is_empty() {
        return builder.build();
    }
    let mut rng = SmallRng::seed_from_u64(config.seed);
    let iterations = (config.beta * g.node_count() as f64).ceil() as usize;

    for _ in 0..iterations {
        let &a = first.choose(&mut rng).expect("non-empty");
        let &b = second.choose(&mut rng).expect("non-empty");
        for path in all_shortest_paths(g, a, b, config.max_paths_per_pair) {
            builder.add_path(&path);
        }
    }

    // Guarantee: every metadata node keeps at least one shortest path to
    // the other corpus (Alg. 3's post-condition).
    connect_unsampled(g, &mut builder, &first, &second, config.max_paths_per_pair);
    connect_unsampled(g, &mut builder, &second, &first, config.max_paths_per_pair);

    builder.build()
}

/// For each metadata node of `from` missing from the subgraph, adds one
/// shortest path to the nearest node of `to`.
fn connect_unsampled(
    g: &Graph,
    builder: &mut SubgraphBuilder<'_>,
    from: &[NodeId],
    to: &[NodeId],
    max_paths: usize,
) {
    for &m in from {
        if builder.contains_node(m) {
            continue;
        }
        // Nearest opposite-corpus metadata node by BFS.
        let dist = bfs_distances(g, m);
        let target = to
            .iter()
            .copied()
            .filter(|t| dist[t.index()] != u32::MAX)
            .min_by_key(|t| dist[t.index()]);
        match target {
            Some(t) => {
                for path in all_shortest_paths(g, m, t, max_paths.min(2)) {
                    builder.add_path(&path);
                }
            }
            None => builder.add_node(m), // disconnected in the source too
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tdmatch_graph::MetaKind;

    /// Two tuples, two paragraphs, several terms; some terms are only
    /// reachable off the shortest paths.
    fn fixture() -> Graph {
        let mut g = Graph::new();
        let t0 = g.add_meta("t0", CorpusSide::First, MetaKind::Tuple, 0);
        let t1 = g.add_meta("t1", CorpusSide::First, MetaKind::Tuple, 1);
        let p0 = g.add_meta("p0", CorpusSide::Second, MetaKind::TextDoc, 0);
        let p1 = g.add_meta("p1", CorpusSide::Second, MetaKind::TextDoc, 1);
        let shared0 = g.intern_data("shared0");
        let shared1 = g.intern_data("shared1");
        g.add_edge(t0, shared0);
        g.add_edge(p0, shared0);
        g.add_edge(t1, shared1);
        g.add_edge(p1, shared1);
        // Off-path decorations: chains hanging off tuples.
        for i in 0..20 {
            let d = g.intern_data(&format!("deco{i}"));
            let d2 = g.intern_data(&format!("deco{i}b"));
            g.add_edge(t0, d);
            g.add_edge(d, d2);
        }
        g
    }

    #[test]
    fn compressed_graph_is_smaller() {
        let g = fixture();
        let cg = msp_compress(&g, &MspConfig { beta: 0.25, ..Default::default() });
        assert!(cg.node_count() < g.node_count());
        assert!(cg.edge_count() < g.edge_count());
    }

    #[test]
    fn all_metadata_nodes_survive() {
        let g = fixture();
        let cg = msp_compress(&g, &MspConfig { beta: 0.1, ..Default::default() });
        for label in ["t0", "t1", "p0", "p1"] {
            assert!(cg.meta_node(label).is_some(), "{label} missing");
        }
    }

    #[test]
    fn metadata_stays_connected_cross_corpus() {
        let g = fixture();
        let cg = msp_compress(&g, &MspConfig { beta: 0.5, ..Default::default() });
        let t0 = cg.meta_node("t0").unwrap();
        let p0 = cg.meta_node("p0").unwrap();
        assert!(
            tdmatch_graph::traverse::shortest_path_len(&cg, t0, p0).is_some(),
            "t0 must stay connected to p0"
        );
    }

    #[test]
    fn shortest_paths_are_preserved_in_length() {
        let g = fixture();
        let cg = msp_compress(&g, &MspConfig { beta: 1.0, ..Default::default() });
        let (t0, p0) = (g.meta_node("t0").unwrap(), g.meta_node("p0").unwrap());
        let before = tdmatch_graph::traverse::shortest_path_len(&g, t0, p0).unwrap();
        let (ct0, cp0) = (cg.meta_node("t0").unwrap(), cg.meta_node("p0").unwrap());
        let after = tdmatch_graph::traverse::shortest_path_len(&cg, ct0, cp0).unwrap();
        assert_eq!(before, after, "compression must not lengthen shortest paths");
    }

    #[test]
    fn deterministic_under_seed() {
        let g = fixture();
        let c1 = msp_compress(&g, &MspConfig::default());
        let c2 = msp_compress(&g, &MspConfig::default());
        assert_eq!(c1.node_count(), c2.node_count());
        assert_eq!(c1.edge_count(), c2.edge_count());
    }

    #[test]
    fn empty_side_yields_empty_graph() {
        let mut g = Graph::new();
        g.add_meta("t0", CorpusSide::First, MetaKind::Tuple, 0);
        let cg = msp_compress(&g, &MspConfig::default());
        assert_eq!(cg.node_count(), 0);
    }

    #[test]
    fn disconnected_metadata_is_kept_isolated() {
        let mut g = Graph::new();
        let t0 = g.add_meta("t0", CorpusSide::First, MetaKind::Tuple, 0);
        let p0 = g.add_meta("p0", CorpusSide::Second, MetaKind::TextDoc, 0);
        let d = g.intern_data("only-t0");
        g.add_edge(t0, d);
        let _ = p0;
        let cg = msp_compress(&g, &MspConfig::default());
        assert!(cg.meta_node("p0").is_some(), "isolated metadata still present");
    }
}
