//! The end-to-end TDmatch pipeline (Fig. 3): graph → (expand) →
//! (compress) → walks → Word2Vec → match.

use std::time::Instant;

use tdmatch_compress::{msp_compress, ssp_compress, ssum_compress, MspConfig, SspConfig, SsumConfig};
use tdmatch_embed::corpus::FlatCorpus;
use tdmatch_embed::walks::generate_walk_corpus;
use tdmatch_embed::word2vec::train_corpus;
use tdmatch_graph::{CorpusSide, CsrGraph, EdgeKind, Graph, MetaKind, NodeKind};
use tdmatch_kb::{KnowledgeBase, PretrainedModel};
use tdmatch_text::Preprocessor;

use crate::artifact::MatchArtifact;
use crate::blocking::BlockIndex;
use crate::builder::{build_graph, doc_label, BuildStats};
use crate::config::{BlockingMode, Compression, EmbedMethod, TdConfig};
use crate::corpus::Corpus;
use crate::error::TdError;
use crate::expand::{expand_graph, ExpandStats};
use tdmatch_embed::score::ScoreMatrix;

use crate::lsh::LshIndex;
use crate::matcher::{top_k_matches_matrix, top_k_matches_matrix_parallel, MatchResult};

/// Fitted blocking state, matching the configured [`BlockingMode`].
#[derive(Debug)]
enum BlockData {
    /// No blocking: score all pairs.
    None,
    /// Inverted token index over the first corpus plus the pre-tokenized
    /// queries of the second corpus.
    Inverted {
        index: BlockIndex,
        query_tokens: Vec<Vec<String>>,
    },
    /// LSH index over the first corpus's metadata embeddings.
    Lsh(LshIndex),
}

/// Optional resources for a fit.
#[derive(Default)]
pub struct FitOptions<'a> {
    /// External resource for graph expansion (Alg. 2). `None` = W-RW,
    /// `Some` = W-RW-EX.
    pub kb: Option<&'a dyn KnowledgeBase>,
    /// Compression applied after expansion (Alg. 3 / baselines).
    pub compression: Option<Compression>,
    /// Pre-trained model + threshold γ for similarity merging (§II-C).
    /// `None` skips the merge.
    pub merge: Option<(&'a PretrainedModel, f32)>,
}

/// Wall-clock seconds spent in each pipeline stage.
#[derive(Debug, Clone, Copy, Default)]
pub struct StageTimings {
    /// Graph creation (Alg. 1 + merging).
    pub build: f64,
    /// Expansion (Alg. 2).
    pub expand: f64,
    /// Compression (Alg. 3).
    pub compress: f64,
    /// Random-walk generation.
    pub walks: f64,
    /// Word2Vec training.
    pub train: f64,
}

impl StageTimings {
    /// Total training-side time (everything up to matching).
    pub fn total(&self) -> f64 {
        self.build + self.expand + self.compress + self.walks + self.train
    }
}

/// The TDmatch trainer. Construct with a [`TdConfig`], then [`fit`] two
/// corpora.
///
/// [`fit`]: TdMatch::fit
pub struct TdMatch {
    config: TdConfig,
}

impl TdMatch {
    /// Creates a trainer with the given configuration.
    pub fn new(config: TdConfig) -> Self {
        Self { config }
    }

    /// The configuration.
    pub fn config(&self) -> &TdConfig {
        &self.config
    }

    /// Fits the default pipeline (no expansion, no compression, no
    /// similarity merge) — the paper's **W-RW**.
    pub fn fit(&self, first: &Corpus, second: &Corpus) -> Result<TdModel, TdError> {
        self.fit_with(first, second, FitOptions::default())
    }

    /// Fits with expansion — the paper's **W-RW-EX**.
    pub fn fit_expanded(
        &self,
        first: &Corpus,
        second: &Corpus,
        kb: &dyn KnowledgeBase,
    ) -> Result<TdModel, TdError> {
        self.fit_with(
            first,
            second,
            FitOptions {
                kb: Some(kb),
                ..Default::default()
            },
        )
    }

    /// Resumes the pipeline from a pre-built graph — e.g. one persisted
    /// with [`tdmatch_graph::persist::save_graph`] after an expensive
    /// expansion/compression — skipping graph creation entirely. Runs
    /// walks, training, and vector extraction on `graph` as-is.
    ///
    /// Corpus sizes are recovered from the metadata nodes' document
    /// indices. [`BlockingMode::InvertedIndex`] is rejected (it needs the
    /// raw corpora); use `None` or `Lsh`.
    pub fn fit_prebuilt(&self, graph: Graph) -> Result<TdModel, TdError> {
        if matches!(self.config.blocking, BlockingMode::InvertedIndex) {
            return Err(TdError::PrebuiltNeedsCorpora);
        }
        let has_terms = graph.nodes().any(|n| !graph.kind(n).is_metadata());
        if !has_terms {
            return Err(TdError::NoSharedTerms);
        }
        // Recover corpus sizes: max matchable document index + 1 per side.
        let side_len = |side: CorpusSide| -> usize {
            graph
                .matchable_nodes(side)
                .iter()
                .filter_map(|&n| match graph.kind(n) {
                    tdmatch_graph::NodeKind::Meta { index, .. } => Some(index as usize + 1),
                    _ => None,
                })
                .max()
                .unwrap_or(0)
        };
        let (first_len, second_len) = (side_len(CorpusSide::First), side_len(CorpusSide::Second));
        if first_len == 0 {
            return Err(TdError::EmptyCorpus { which: "first" });
        }
        if second_len == 0 {
            return Err(TdError::EmptyCorpus { which: "second" });
        }

        let mut timings = StageTimings::default();

        // Freeze once: all walk generation runs against the CSR snapshot.
        let t = Instant::now();
        let csr = CsrGraph::from_graph(&graph);
        let walk_corpus = generate_walk_corpus(&csr, &self.config.walk_config());
        timings.walks = t.elapsed().as_secs_f64();
        if walk_corpus.is_empty() {
            return Err(TdError::EmptyWalkCorpus);
        }

        let t = Instant::now();
        let matrix = self.train_matrix(&graph, &walk_corpus);
        timings.train = t.elapsed().as_secs_f64();

        let dim = self.config.dim;
        let extract = |side: CorpusSide, len: usize| -> Vec<Option<Vec<f32>>> {
            (0..len)
                .map(|i| {
                    graph.meta_node(&doc_label(side, i)).map(|n| {
                        matrix[n.index() * dim..(n.index() + 1) * dim].to_vec()
                    })
                })
                .collect()
        };
        let first_vecs = extract(CorpusSide::First, first_len);
        let second_vecs = extract(CorpusSide::Second, second_len);

        let blocks = match self.config.blocking {
            BlockingMode::Lsh(lsh_config) => {
                BlockData::Lsh(LshIndex::build(&first_vecs, dim, &lsh_config))
            }
            _ => BlockData::None,
        };

        // Normalize once: every subsequent match call is dot-many over
        // these pre-normalized matrices.
        let first_norm = ScoreMatrix::from_options_dim(&first_vecs, dim);
        let second_norm = ScoreMatrix::from_options_dim(&second_vecs, dim);

        Ok(TdModel {
            config: self.config.clone(),
            graph,
            matrix,
            first_vecs,
            second_vecs,
            first_norm,
            second_norm,
            build_stats: BuildStats::default(),
            expand_stats: ExpandStats::default(),
            timings,
            blocks,
        })
    }


    /// Trains node embeddings from the walk corpus with the configured
    /// [`EmbedMethod`], returning an `id_bound × dim` row-major matrix.
    fn train_matrix(&self, graph: &Graph, walk_corpus: &FlatCorpus) -> Vec<f32> {
        match self.config.embed_method {
            EmbedMethod::WalkWord2Vec => {
                let counts = walk_corpus.token_counts(graph.id_bound(), false);
                train_corpus(walk_corpus, &counts, &self.config.w2v_config())
            }
            EmbedMethod::WalkDoc2Vec => {
                // Each node's "document" is the bag of all walks starting
                // at it; PV-DBOW then trains one vector per node. Walks
                // from one start node are contiguous in the corpus arena,
                // so each document is a zero-copy token range over it —
                // ids without walks (tombstones) get empty documents.
                let id_bound = graph.id_bound();
                let mut ranges: Vec<Option<(usize, usize)>> = vec![None; id_bound];
                let mut pos = 0usize;
                for sent in walk_corpus.sentences() {
                    let next = pos + sent.len();
                    if let Some(&start) = sent.first() {
                        let r = ranges[start as usize].get_or_insert((pos, pos));
                        assert_eq!(
                            r.1, pos,
                            "walk corpus no longer contiguous per start node"
                        );
                        r.1 = next;
                    }
                    pos = next;
                }
                let arena = walk_corpus.tokens();
                let docs: Vec<&[u32]> = ranges
                    .iter()
                    .map(|r| match *r {
                        Some((lo, hi)) => &arena[lo..hi],
                        None => &[][..],
                    })
                    .collect();
                let counts = walk_corpus.token_counts(id_bound, false);
                tdmatch_embed::doc2vec::train_pv_dbow_docs(
                    &docs,
                    &counts,
                    &tdmatch_embed::doc2vec::Doc2VecConfig {
                        dim: self.config.dim,
                        negative: self.config.negative,
                        epochs: self.config.epochs,
                        initial_lr: 0.025,
                        min_count: 1,
                        seed: self.config.seed,
                    },
                )
            }
        }
    }

    /// Fits with explicit options (expansion / compression / merging).
    pub fn fit_with(
        &self,
        first: &Corpus,
        second: &Corpus,
        options: FitOptions<'_>,
    ) -> Result<TdModel, TdError> {
        if first.is_empty() {
            return Err(TdError::EmptyCorpus { which: "first" });
        }
        if second.is_empty() {
            return Err(TdError::EmptyCorpus { which: "second" });
        }
        let mut timings = StageTimings::default();

        // 1. Graph creation (Alg. 1) + merging (§II-C).
        let t0 = Instant::now();
        let built = build_graph(first, second, &self.config, options.merge);
        let build_stats = built.stats;
        let mut graph = built.graph;
        timings.build = t0.elapsed().as_secs_f64();

        // A graph with no data nodes cannot relate the corpora.
        if build_stats.terms_created == 0 {
            return Err(TdError::NoSharedTerms);
        }

        // 2. Expansion (Alg. 2).
        let mut expand_stats = ExpandStats::default();
        if let Some(kb) = options.kb {
            let t = Instant::now();
            expand_stats = expand_graph(&mut graph, kb, self.config.max_relations_per_node);
            timings.expand = t.elapsed().as_secs_f64();
        }

        // 3. Compression (Alg. 3 or a baseline).
        if let Some(compression) = options.compression {
            let t = Instant::now();
            graph = match compression {
                Compression::Msp { beta } => msp_compress(
                    &graph,
                    &MspConfig {
                        beta,
                        seed: self.config.seed,
                        ..Default::default()
                    },
                ),
                Compression::Ssp { ratio } => ssp_compress(
                    &graph,
                    &SspConfig {
                        ratio,
                        seed: self.config.seed,
                        ..Default::default()
                    },
                ),
                Compression::Ssum { ratio } => ssum_compress(
                    &graph,
                    &SsumConfig {
                        ratio,
                        edge_ratio: ratio,
                        seed: self.config.seed,
                    },
                ),
            };
            timings.compress = t.elapsed().as_secs_f64();
        }

        // 4. Random walks (Alg. 4, first half). The graph is final now:
        //    freeze it once and run walk generation on the CSR snapshot.
        let t = Instant::now();
        let csr = CsrGraph::from_graph(&graph);
        let walk_corpus = generate_walk_corpus(&csr, &self.config.walk_config());
        timings.walks = t.elapsed().as_secs_f64();
        if walk_corpus.is_empty() {
            return Err(TdError::EmptyWalkCorpus);
        }

        // 5. Embedding model over walks (Alg. 4, second half).
        let t = Instant::now();
        let matrix = self.train_matrix(&graph, &walk_corpus);
        timings.train = t.elapsed().as_secs_f64();

        // 6. Metadata vectors per (side, document index).
        let dim = self.config.dim;
        let extract = |side: CorpusSide, len: usize| -> Vec<Option<Vec<f32>>> {
            (0..len)
                .map(|i| {
                    graph.meta_node(&doc_label(side, i)).map(|n| {
                        matrix[n.index() * dim..(n.index() + 1) * dim].to_vec()
                    })
                })
                .collect()
        };
        let first_vecs = extract(CorpusSide::First, first.len());
        let second_vecs = extract(CorpusSide::Second, second.len());

        // 7. Optional blocking index (future-work extension): lexical
        //    blocking indexes the first corpus's tokens; LSH blocking
        //    hashes the just-trained first-corpus embeddings.
        let blocks = match self.config.blocking {
            BlockingMode::None => BlockData::None,
            BlockingMode::InvertedIndex => {
                let pre = Preprocessor::new(self.config.preprocess.clone());
                let index = BlockIndex::build(first, &pre);
                let query_tokens: Vec<Vec<String>> = (0..second.len())
                    .map(|i| {
                        second
                            .fields(i)
                            .iter()
                            .flat_map(|f| pre.base_tokens(f))
                            .collect()
                    })
                    .collect();
                BlockData::Inverted {
                    index,
                    query_tokens,
                }
            }
            BlockingMode::Lsh(lsh_config) => {
                BlockData::Lsh(LshIndex::build(&first_vecs, dim, &lsh_config))
            }
        };

        // Normalize once: every subsequent match call is dot-many over
        // these pre-normalized matrices.
        let first_norm = ScoreMatrix::from_options_dim(&first_vecs, dim);
        let second_norm = ScoreMatrix::from_options_dim(&second_vecs, dim);

        Ok(TdModel {
            config: self.config.clone(),
            graph,
            matrix,
            first_vecs,
            second_vecs,
            first_norm,
            second_norm,
            build_stats,
            expand_stats,
            timings,
            blocks,
        })
    }
}

/// A fitted TDmatch model: the final graph, node embeddings, and matching
/// entry points.
#[derive(Debug)]
pub struct TdModel {
    config: TdConfig,
    /// The graph embeddings were trained on (post expansion/compression).
    pub graph: Graph,
    matrix: Vec<f32>,
    first_vecs: Vec<Option<Vec<f32>>>,
    second_vecs: Vec<Option<Vec<f32>>>,
    /// Pre-normalized first-corpus rows (targets in the default match
    /// direction); built once at fit time, scored many times.
    first_norm: ScoreMatrix,
    /// Pre-normalized second-corpus rows (queries in the default match
    /// direction).
    second_norm: ScoreMatrix,
    /// Graph-creation statistics.
    pub build_stats: BuildStats,
    /// Expansion statistics (zeroed when expansion was off).
    pub expand_stats: ExpandStats,
    /// Per-stage wall-clock timings.
    pub timings: StageTimings,
    blocks: BlockData,
}

impl TdModel {
    /// The configuration the model was fitted with.
    pub fn config(&self) -> &TdConfig {
        &self.config
    }

    /// Embedding of document `idx` on `side`, if its metadata node
    /// survived the pipeline.
    pub fn doc_vector(&self, side: CorpusSide, idx: usize) -> Option<&[f32]> {
        let store = match side {
            CorpusSide::First => &self.first_vecs,
            CorpusSide::Second => &self.second_vecs,
        };
        store.get(idx).and_then(|v| v.as_deref())
    }

    /// Embedding of a term (data node), if present in the final graph.
    pub fn term_vector(&self, term: &str) -> Option<&[f32]> {
        let n = self.graph.data_node(term)?;
        let dim = self.config.dim;
        Some(&self.matrix[n.index() * dim..(n.index() + 1) * dim])
    }

    /// Ranks the top-`k` first-corpus documents for every second-corpus
    /// document (the default direction: queries are the text side).
    pub fn match_top_k(&self, k: usize) -> Vec<MatchResult> {
        self.match_top_k_combined(k, None)
    }

    /// Like [`match_top_k`], averaging cosine scores with an external
    /// scorer (Fig. 10's combination with SentenceBERT).
    ///
    /// [`match_top_k`]: TdModel::match_top_k
    pub fn match_top_k_combined(
        &self,
        k: usize,
        extra_score: Option<&dyn Fn(usize, usize) -> f32>,
    ) -> Vec<MatchResult> {
        let inverted_fn;
        let lsh_fn;
        let candidates: Option<&dyn Fn(usize) -> Vec<usize>> = match &self.blocks {
            BlockData::None => None,
            BlockData::Inverted {
                index,
                query_tokens,
            } => {
                inverted_fn = move |q: usize| index.candidates(&query_tokens[q]);
                Some(&inverted_fn)
            }
            BlockData::Lsh(index) => {
                lsh_fn = move |q: usize| match &self.second_vecs[q] {
                    Some(v) => index.candidates(v),
                    None => Vec::new(),
                };
                Some(&lsh_fn)
            }
        };
        top_k_matches_matrix(&self.second_norm, &self.first_norm, k, extra_score, candidates)
    }

    /// Ranks the top-`k` second-corpus documents for every first-corpus
    /// document (the reverse direction; §IV-B default "start from the
    /// larger corpus" is the caller's choice).
    pub fn match_top_k_reverse(&self, k: usize) -> Vec<MatchResult> {
        top_k_matches_matrix(&self.first_norm, &self.second_norm, k, None, None)
    }

    /// Like [`match_top_k`](TdModel::match_top_k) but splits the queries
    /// over `threads` workers. Output is identical to the sequential
    /// version; worthwhile when the query corpus is large.
    pub fn match_top_k_parallel(&self, k: usize, threads: usize) -> Vec<MatchResult> {
        let inverted_fn;
        let lsh_fn;
        let candidates: Option<&(dyn Fn(usize) -> Vec<usize> + Sync)> = match &self.blocks {
            BlockData::None => None,
            BlockData::Inverted {
                index,
                query_tokens,
            } => {
                inverted_fn = move |q: usize| index.candidates(&query_tokens[q]);
                Some(&inverted_fn)
            }
            BlockData::Lsh(index) => {
                lsh_fn = move |q: usize| match &self.second_vecs[q] {
                    Some(v) => index.candidates(v),
                    None => Vec::new(),
                };
                Some(&lsh_fn)
            }
        };
        top_k_matches_matrix_parallel(
            &self.second_norm,
            &self.first_norm,
            k,
            None,
            candidates,
            threads,
        )
    }

    /// `(nodes, edges)` of the final graph (Table VIII's #N / #E).
    pub fn graph_size(&self) -> (usize, usize) {
        (self.graph.node_count(), self.graph.edge_count())
    }

    /// Exports the model's matching state (term vectors + both corpora's
    /// document vectors) as a persistable [`MatchArtifact`]. The artifact
    /// matches exactly like [`match_top_k`](TdModel::match_top_k) does
    /// without blocking, and can be saved/loaded without re-training.
    ///
    /// The document sides are taken from the model's pre-normalized
    /// score matrices — two flat memcpy-style clones, not a per-row
    /// `Option<Vec<f32>>` copy — so the artifact scores without ever
    /// re-normalizing.
    pub fn artifact(&self) -> MatchArtifact {
        let dim = self.config.dim;
        let terms: Vec<(String, Vec<f32>)> = self
            .graph
            .nodes()
            .filter(|&n| !self.graph.kind(n).is_metadata())
            .map(|n| {
                (
                    self.graph.label(n).to_string(),
                    self.matrix[n.index() * dim..(n.index() + 1) * dim].to_vec(),
                )
            })
            .collect();
        MatchArtifact::from_matrices(
            dim,
            terms,
            self.first_norm.clone(),
            self.second_norm.clone(),
        )
    }

    /// Applies a corpus delta to the fitted model in place — the
    /// live-model counterpart of
    /// [`MatchArtifact::apply_delta`](crate::artifact::MatchArtifact::apply_delta).
    ///
    /// Touched first-corpus rows are re-embedded against the **frozen**
    /// vocabulary (the mean of their known terms' trained vectors — the
    /// same aggregation the artifact path runs, so exporting after the
    /// delta equals exporting first and applying the delta to the
    /// artifact, bit for bit). Graph membership tracks the delta:
    /// appended documents gain a metadata node wired by `Contains`
    /// edges to their known terms (unknown terms are *not* interned —
    /// the vocabulary stays frozen), tombstoned documents are removed.
    /// Updates re-embed the row only; the document's existing graph
    /// edges are left as fitted, since walks and training are not
    /// re-run on a delta — re-freeze or refit when the graph itself
    /// must reflect edited content.
    pub fn apply_delta(
        &mut self,
        batch: &crate::delta::DeltaBatch,
    ) -> Result<crate::delta::DeltaSummary, crate::artifact::PersistError> {
        use crate::delta::{DeltaOp, DeltaSummary};
        let old_rows = self.first_norm.rows();
        let mut rows = old_rows;
        for op in &batch.ops {
            match op {
                DeltaOp::Append { .. } => rows += 1,
                DeltaOp::Update { target, .. } | DeltaOp::Tombstone { target } => {
                    if *target >= rows {
                        return Err(crate::artifact::PersistError::Invalid(
                            "delta target out of bounds",
                        ));
                    }
                }
            }
        }

        // Appended documents mirror the metadata kind of the fitted
        // first side (tuple / text doc / taxonomy node).
        let doc_kind = self
            .graph
            .meta_node(&doc_label(CorpusSide::First, 0))
            .map(|n| match self.graph.kind(n) {
                NodeKind::Meta { kind, .. } => kind,
                _ => MetaKind::TextDoc,
            })
            .unwrap_or(MetaKind::TextDoc);

        let dim = self.config.dim;
        // The frozen-vocab aggregation, arithmetic-identical to
        // `MatchArtifact::embed_tokens` over this model's exported term
        // table: sum known term vectors in token order, scale by 1/hits.
        let embed = |graph: &Graph, matrix: &[f32], tokens: &[String]| -> Option<Vec<f32>> {
            let mut sum = vec![0.0f32; dim];
            let mut hits = 0usize;
            for tok in tokens {
                if let Some(n) = graph.data_node(tok) {
                    let v = &matrix[n.index() * dim..(n.index() + 1) * dim];
                    for (s, x) in sum.iter_mut().zip(v) {
                        *s += x;
                    }
                    hits += 1;
                }
            }
            if hits == 0 {
                return None;
            }
            let inv = 1.0 / hits as f32;
            for s in &mut sum {
                *s *= inv;
            }
            Some(sum)
        };

        let mut summary = DeltaSummary { rows, ..Default::default() };
        self.first_norm.grow_rows(rows);
        self.first_vecs.resize(rows, None);
        let mut next = old_rows;
        for op in &batch.ops {
            match op {
                DeltaOp::Append { tokens } => {
                    let v = embed(&self.graph, &self.matrix, tokens);
                    let doc = self.graph.add_meta(
                        &doc_label(CorpusSide::First, next),
                        CorpusSide::First,
                        doc_kind,
                        next as u32,
                    );
                    for tok in tokens {
                        if let Some(n) = self.graph.data_node(tok) {
                            self.graph.add_edge_typed(doc, n, EdgeKind::Contains);
                        }
                    }
                    if let Some(v) = &v {
                        self.first_norm.set_row(next, v);
                    }
                    self.first_vecs[next] = v;
                    next += 1;
                    summary.appended += 1;
                }
                DeltaOp::Update { target, tokens } => {
                    let v = embed(&self.graph, &self.matrix, tokens);
                    match &v {
                        Some(v) => self.first_norm.set_row(*target, v),
                        None => self.first_norm.clear_row(*target),
                    }
                    self.first_vecs[*target] = v;
                    summary.updated += 1;
                }
                DeltaOp::Tombstone { target } => {
                    if let Some(n) = self.graph.meta_node(&doc_label(CorpusSide::First, *target)) {
                        self.graph.remove_node(n);
                    }
                    self.first_norm.clear_row(*target);
                    self.first_vecs[*target] = None;
                    summary.tombstoned += 1;
                }
            }
        }
        Ok(summary)
    }

    /// Exports the match artifact and writes it straight to `path` —
    /// fit-once / match-many in one call. The saved `TDZ1` container is
    /// what serving processes later memory-map with
    /// [`MatchArtifact::load`]: every reader of the same file shares one
    /// physical copy of the matrices through the OS page cache.
    pub fn save_artifact<P: AsRef<std::path::Path>>(
        &self,
        path: P,
    ) -> Result<(), crate::artifact::PersistError> {
        self.artifact().save(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::{Table, TextCorpus};

    fn corpora() -> (Corpus, Corpus) {
        let table = Table::new(
            "movies",
            vec!["title".into(), "director".into(), "actor".into(), "genre".into()],
            vec![
                vec![
                    "The Sixth Sense".into(),
                    "Shyamalan".into(),
                    "Bruce Willis".into(),
                    "Thriller".into(),
                ],
                vec![
                    "Pulp Fiction".into(),
                    "Tarantino".into(),
                    "Samuel Jackson".into(),
                    "Drama".into(),
                ],
                vec![
                    "Dark City".into(),
                    "Proyas".into(),
                    "Rufus Sewell".into(),
                    "Mystery".into(),
                ],
            ],
        );
        let reviews = TextCorpus::new(vec![
            "shyamalan made a thriller with bruce willis and a twist".into(),
            "tarantino directs samuel jackson in pulp fiction".into(),
            "dark city is a mystery by proyas".into(),
        ]);
        (Corpus::Table(table), Corpus::Text(reviews))
    }

    #[test]
    fn end_to_end_matches_reviews_to_tuples() {
        let (first, second) = corpora();
        let model = TdMatch::new(TdConfig::for_tests())
            .fit(&first, &second)
            .unwrap();
        let results = model.match_top_k(3);
        assert_eq!(results.len(), 3);
        // Every review's top-1 should be its own tuple: the lexical
        // overlap is strong and the graph encodes it.
        let mut correct = 0;
        for (i, r) in results.iter().enumerate() {
            if r.target_indices().first() == Some(&i) {
                correct += 1;
            }
        }
        assert!(correct >= 2, "at least 2/3 top-1 correct, got {correct}");
    }

    #[test]
    fn delta_on_model_commutes_with_artifact_export() {
        let (first, second) = corpora();
        let mut model = TdMatch::new(TdConfig::for_tests())
            .fit(&first, &second)
            .unwrap();
        let pre = Preprocessor::new(model.config.preprocess.clone());
        let batch = crate::delta::DeltaBatch::new()
            .append(pre.terms_of_fields(["Leon", "Besson", "Jean Reno", "Thriller"]))
            .update(1, pre.terms_of_fields(["Pulp Fiction", "Tarantino", "Travolta", "Crime"]))
            .tombstone(0);

        // Export-then-delta vs delta-then-export must agree bit for bit.
        let mut via_artifact = model.artifact();
        via_artifact.apply_delta(&batch).unwrap();
        let s = model.apply_delta(&batch).unwrap();
        assert_eq!((s.appended, s.updated, s.tombstoned, s.rows), (1, 1, 1, 4));
        assert_eq!(model.artifact(), via_artifact);

        // Graph membership tracked the delta: the appended document has
        // a metadata node, the tombstoned one is gone.
        let appended = model.graph.meta_node(&doc_label(CorpusSide::First, 3));
        assert!(appended.is_some_and(|n| model.graph.degree(n) > 0));
        assert!(model.graph.meta_node(&doc_label(CorpusSide::First, 0)).is_none());
    }

    #[test]
    fn empty_corpus_is_rejected() {
        let (first, _) = corpora();
        let empty = Corpus::Text(TextCorpus::new(vec![]));
        let err = TdMatch::new(TdConfig::for_tests())
            .fit(&first, &empty)
            .unwrap_err();
        assert_eq!(err, TdError::EmptyCorpus { which: "second" });
    }

    #[test]
    fn timings_are_populated() {
        let (first, second) = corpora();
        let model = TdMatch::new(TdConfig::for_tests())
            .fit(&first, &second)
            .unwrap();
        assert!(model.timings.build > 0.0);
        assert!(model.timings.walks > 0.0);
        assert!(model.timings.train > 0.0);
        assert!(model.timings.total() > 0.0);
        assert_eq!(model.timings.expand, 0.0);
    }

    #[test]
    fn blocking_does_not_change_top1_here() {
        let (first, second) = corpora();
        let plain = TdMatch::new(TdConfig::for_tests())
            .fit(&first, &second)
            .unwrap();
        let blocked = TdMatch::new(TdConfig {
            blocking: BlockingMode::InvertedIndex,
            ..TdConfig::for_tests()
        })
        .fit(&first, &second)
        .unwrap();
        for (a, b) in plain.match_top_k(1).iter().zip(blocked.match_top_k(1)) {
            assert_eq!(a.target_indices(), b.target_indices());
        }
    }

    #[test]
    fn lsh_blocking_keeps_matching_usable() {
        use crate::lsh::LshConfig;
        let (first, second) = corpora();
        let blocked = TdMatch::new(TdConfig {
            // Generous parameters on a 3-document corpus: every true match
            // should survive the hashing.
            blocking: BlockingMode::Lsh(LshConfig {
                tables: 12,
                bits: 2,
                probes: 1,
                seed: 42,
            }),
            ..TdConfig::for_tests()
        })
        .fit(&first, &second)
        .unwrap();
        let results = blocked.match_top_k(3);
        assert_eq!(results.len(), 3);
        // Every query still gets at least one ranked target.
        assert!(results.iter().all(|r| !r.ranked.is_empty()));
    }

    #[test]
    fn term_vectors_are_accessible() {
        let (first, second) = corpora();
        let model = TdMatch::new(TdConfig::for_tests())
            .fit(&first, &second)
            .unwrap();
        assert!(model.term_vector("tarantino").is_some());
        assert!(model.term_vector("not-a-term").is_none());
    }

    #[test]
    fn compression_keeps_model_usable() {
        let (first, second) = corpora();
        let model = TdMatch::new(TdConfig::for_tests())
            .fit_with(
                &first,
                &second,
                FitOptions {
                    compression: Some(Compression::Msp { beta: 0.5 }),
                    ..Default::default()
                },
            )
            .unwrap();
        let results = model.match_top_k(2);
        assert_eq!(results.len(), 3);
        let (n, e) = model.graph_size();
        assert!(n > 0 && e > 0);
    }

    #[test]
    fn doc2vec_embedding_method_matches_reasonably() {
        use crate::config::EmbedMethod;
        let (first, second) = corpora();
        let model = TdMatch::new(TdConfig {
            embed_method: EmbedMethod::WalkDoc2Vec,
            ..TdConfig::for_tests()
        })
        .fit(&first, &second)
        .unwrap();
        let results = model.match_top_k(3);
        assert_eq!(results.len(), 3);
        let correct = results
            .iter()
            .enumerate()
            .filter(|(i, r)| r.target_indices().first() == Some(i))
            .count();
        assert!(correct >= 2, "doc2vec embeddings collapsed: {correct}/3");
    }

    #[test]
    fn fit_prebuilt_resumes_from_persisted_graph() {
        let (first, second) = corpora();
        let trainer = TdMatch::new(TdConfig::for_tests());
        let model = trainer.fit(&first, &second).unwrap();

        // Persist the fitted graph and resume from it.
        let mut buf = Vec::new();
        tdmatch_graph::persist::write_graph(&model.graph, &mut buf).unwrap();
        let restored = tdmatch_graph::persist::read_graph(&mut buf.as_slice()).unwrap();
        let resumed = trainer.fit_prebuilt(restored).unwrap();

        assert_eq!(resumed.graph_size(), model.graph_size());
        // Matching still works and mostly agrees at top-1 (walk RNG keys
        // off node ids, which a roundtrip renumbers, so require quality,
        // not bit-equality).
        let results = resumed.match_top_k(3);
        assert_eq!(results.len(), 3);
        let correct = results
            .iter()
            .enumerate()
            .filter(|(i, r)| r.target_indices().first() == Some(i))
            .count();
        assert!(correct >= 2, "resumed model degraded: {correct}/3");
    }

    #[test]
    fn fit_prebuilt_rejects_inverted_blocking_and_empty_sides() {
        let (first, second) = corpora();
        let model = TdMatch::new(TdConfig::for_tests())
            .fit(&first, &second)
            .unwrap();
        let trainer = TdMatch::new(TdConfig {
            blocking: BlockingMode::InvertedIndex,
            ..TdConfig::for_tests()
        });
        assert_eq!(
            trainer.fit_prebuilt(model.graph.clone()).unwrap_err(),
            TdError::PrebuiltNeedsCorpora
        );
        // A graph with no metadata on one side is rejected.
        let mut g = tdmatch_graph::Graph::new();
        let m = g.add_meta("A:doc0", CorpusSide::First, tdmatch_graph::MetaKind::Tuple, 0);
        let d = g.intern_data("term");
        g.add_edge(m, d);
        assert_eq!(
            TdMatch::new(TdConfig::for_tests()).fit_prebuilt(g).unwrap_err(),
            TdError::EmptyCorpus { which: "second" }
        );
    }

    #[test]
    fn parallel_matching_equals_sequential() {
        let (first, second) = corpora();
        let model = TdMatch::new(TdConfig::for_tests())
            .fit(&first, &second)
            .unwrap();
        let seq = model.match_top_k(3);
        for threads in [1, 2, 8] {
            assert_eq!(seq, model.match_top_k_parallel(3, threads));
        }
    }

    #[test]
    fn artifact_roundtrip_matches_like_the_model() {
        let (first, second) = corpora();
        let model = TdMatch::new(TdConfig::for_tests())
            .fit(&first, &second)
            .unwrap();
        let mut buf = Vec::new();
        model.artifact().write_to(&mut buf).unwrap();
        // Reload from bytes on the borrowed (zero-copy) path.
        let storage = tdmatch_graph::container::Storage::from_bytes(&buf);
        let loaded = crate::artifact::MatchArtifact::from_storage(&storage).unwrap();
        assert!(loaded.is_zero_copy());
        // The warm artifact ranks *identically* to the live model — same
        // indices, same scores, no per-call normalization on either side.
        assert_eq!(model.match_top_k(3), loaded.match_top_k(3));
        // Term vectors survive too.
        assert_eq!(
            model.term_vector("tarantino"),
            loaded.term_vector("tarantino")
        );
    }

    #[test]
    fn reverse_direction_ranks_reviews() {
        let (first, second) = corpora();
        let model = TdMatch::new(TdConfig::for_tests())
            .fit(&first, &second)
            .unwrap();
        let results = model.match_top_k_reverse(2);
        assert_eq!(results.len(), 3);
        assert!(results.iter().all(|r| r.ranked.len() == 2));
    }
}
