//! Graph creation — the paper's Algorithm 1 plus §II-B filtering and
//! §II-C merging.
//!
//! Both corpora become one undirected graph: a metadata node per document
//! (and per table attribute), a data node per term, and edges connecting
//! documents (and attributes) to their terms. Metadata nodes of different
//! corpora are never connected directly — discovering those connections
//! *is* the downstream matching task. Taxonomy nodes of the same
//! structured document are connected to their parents.

use std::collections::{HashMap, HashSet};

use tdmatch_graph::{CorpusSide, EdgeKind, Graph, MetaKind, NodeId};
use tdmatch_kb::PretrainedModel;
use tdmatch_text::ngrams::ngrams;
use tdmatch_text::Preprocessor;

use crate::config::{FilterMode, TdConfig};
use crate::corpus::Corpus;
use crate::merging::{similarity_merge, MergeStats, NumericBuckets};

/// Stable label of the metadata node for document `i` of a corpus side.
pub fn doc_label(side: CorpusSide, i: usize) -> String {
    match side {
        CorpusSide::First => format!("A:doc{i}"),
        CorpusSide::Second => format!("B:doc{i}"),
    }
}

/// Stable label of the metadata node for column `j` of a corpus side.
pub fn col_label(side: CorpusSide, j: usize) -> String {
    match side {
        CorpusSide::First => format!("A:col{j}"),
        CorpusSide::Second => format!("B:col{j}"),
    }
}

/// Statistics of graph creation.
#[derive(Debug, Clone, Copy, Default)]
pub struct BuildStats {
    /// Distinct term nodes created.
    pub terms_created: usize,
    /// Term occurrences dropped by filtering (Intersect / TF-IDF).
    pub terms_filtered: usize,
    /// Whether numeric bucketing was active.
    pub bucketing_active: bool,
    /// Similarity merging outcome (zero when disabled).
    pub merge: MergeStats,
}

/// The output of graph creation.
#[derive(Debug)]
pub struct BuiltGraph {
    /// The joint graph.
    pub graph: Graph,
    /// Creation statistics.
    pub stats: BuildStats,
}

/// Per-document base tokens, one list per field (n-grams never cross
/// fields).
type DocTokens = Vec<Vec<String>>;

/// Builds the joint graph over two corpora.
///
/// `merge` optionally enables §II-C similarity merging with the given
/// pre-trained model and threshold γ.
pub fn build_graph(
    first: &Corpus,
    second: &Corpus,
    config: &TdConfig,
    merge: Option<(&PretrainedModel, f32)>,
) -> BuiltGraph {
    let pre = Preprocessor::new(config.preprocess.clone());
    let mut stats = BuildStats::default();

    // 1. Base tokens per document per field, for both corpora.
    let mut tokens: [Vec<DocTokens>; 2] = [tokenize_corpus(first, &pre), tokenize_corpus(second, &pre)];

    // 2. Optional numeric bucketing fitted over both corpora (§II-C).
    let buckets = if config.bucket_numbers {
        let values: Vec<f64> = tokens
            .iter()
            .flatten()
            .flatten()
            .flatten()
            .filter_map(|t| tdmatch_text::normalize::parse_number(t))
            .collect();
        let b = NumericBuckets::fit(&values);
        stats.bucketing_active = b.is_enabled();
        b
    } else {
        NumericBuckets::default()
    };
    if buckets.is_enabled() {
        for corpus_tokens in &mut tokens {
            for doc in corpus_tokens.iter_mut() {
                for field in doc.iter_mut() {
                    for tok in field.iter_mut() {
                        let mapped = buckets.map_term(tok);
                        if mapped != *tok {
                            *tok = mapped;
                        }
                    }
                }
            }
        }
    }

    // 3. TF-IDF filtering keeps the k best tokens per document (Fig. 9
    //    baseline); applied to base tokens so n-grams respect it.
    if let FilterMode::TfIdf { k } = config.filtering {
        for corpus_tokens in &mut tokens {
            tfidf_filter(corpus_tokens, k, &mut stats);
        }
    }

    // 4. Decide the seed corpus for Intersect filtering: the one with the
    //    smaller distinct-token count creates term nodes; the other only
    //    attaches to existing terms (§II-B).
    let distinct: [usize; 2] = [distinct_tokens(&tokens[0]), distinct_tokens(&tokens[1])];
    let seed_first = distinct[0] <= distinct[1];
    let order: [usize; 2] = if seed_first { [0, 1] } else { [1, 0] };

    let mut graph = Graph::with_capacity(distinct[0] + distinct[1]);

    // 5. Metadata skeleton for both corpora (doc nodes, attribute nodes,
    //    taxonomy parent edges) — Alg. 1 lines 3–17 / 27–28.
    let corpora: [&Corpus; 2] = [first, second];
    let sides: [CorpusSide; 2] = [CorpusSide::First, CorpusSide::Second];
    for c in 0..2 {
        add_metadata_skeleton(&mut graph, corpora[c], sides[c], config.taxonomy_edges);
    }

    // 6. Term nodes and edges, seed corpus first.
    for (round, &c) in order.iter().enumerate() {
        let create_terms = round == 0 || config.filtering != FilterMode::Intersect;
        add_term_edges(
            &mut graph,
            corpora[c],
            sides[c],
            &tokens[c],
            config.preprocess.max_ngram,
            create_terms,
            &mut stats,
        );
    }

    // 7. Similarity merging (§II-C) over the finished graph.
    if let Some((model, gamma)) = merge {
        stats.merge = similarity_merge(&mut graph, model, gamma);
    }

    stats.terms_created = graph
        .nodes()
        .filter(|&n| !graph.kind(n).is_metadata())
        .count();

    BuiltGraph { graph, stats }
}

/// Tokenizes every document of a corpus into per-field base tokens.
fn tokenize_corpus(corpus: &Corpus, pre: &Preprocessor) -> Vec<DocTokens> {
    (0..corpus.len())
        .map(|i| {
            corpus
                .fields(i)
                .iter()
                .map(|f| pre.base_tokens(f))
                .collect()
        })
        .collect()
}

fn distinct_tokens(docs: &[DocTokens]) -> usize {
    let mut set = HashSet::new();
    for doc in docs {
        for field in doc {
            for tok in field {
                set.insert(tok.as_str());
            }
        }
    }
    set.len()
}

/// Creates metadata nodes (and taxonomy parent edges) for one corpus.
fn add_metadata_skeleton(g: &mut Graph, corpus: &Corpus, side: CorpusSide, taxonomy_edges: bool) {
    match corpus {
        Corpus::Table(t) => {
            for j in 0..t.columns.len() {
                g.add_meta(&col_label(side, j), side, MetaKind::Attribute, j as u32);
            }
            for i in 0..t.rows.len() {
                g.add_meta(&doc_label(side, i), side, MetaKind::Tuple, i as u32);
            }
        }
        Corpus::Structured(s) => {
            for (i, node) in s.nodes.iter().enumerate() {
                let id = g.add_meta(&doc_label(side, i), side, MetaKind::Taxonomy, i as u32);
                if !taxonomy_edges {
                    continue;
                }
                if let Some(p) = node.parent {
                    let pid = g
                        .meta_node(&doc_label(side, p))
                        .expect("parents precede children");
                    g.add_edge_typed(id, pid, EdgeKind::Hierarchy);
                }
            }
        }
        Corpus::Text(t) => {
            for i in 0..t.docs.len() {
                g.add_meta(&doc_label(side, i), side, MetaKind::TextDoc, i as u32);
            }
        }
    }
}

/// Adds term nodes (when `create_terms`) and document/attribute → term
/// edges for one corpus.
fn add_term_edges(
    g: &mut Graph,
    corpus: &Corpus,
    side: CorpusSide,
    tokens: &[DocTokens],
    max_ngram: usize,
    create_terms: bool,
    stats: &mut BuildStats,
) {
    let is_table = matches!(corpus, Corpus::Table(_));
    for (i, doc) in tokens.iter().enumerate() {
        let doc_node = g
            .meta_node(&doc_label(side, i))
            .expect("metadata skeleton built first");
        for (j, field) in doc.iter().enumerate() {
            let col_node: Option<NodeId> = if is_table {
                g.meta_node(&col_label(side, j))
            } else {
                None
            };
            for term in ngrams(field, max_ngram) {
                let term_node = if create_terms {
                    Some(g.intern_data(&term))
                } else {
                    match g.data_node(&term) {
                        Some(n) => Some(n),
                        None => {
                            stats.terms_filtered += 1;
                            None
                        }
                    }
                };
                if let Some(tn) = term_node {
                    g.add_edge_typed(doc_node, tn, EdgeKind::Contains);
                    if let Some(cn) = col_node {
                        g.add_edge_typed(cn, tn, EdgeKind::ColumnOf);
                    }
                }
            }
        }
    }
}

/// Keeps only the `k` highest-TF-IDF tokens per document, in place.
fn tfidf_filter(docs: &mut [DocTokens], k: usize, stats: &mut BuildStats) {
    let n_docs = docs.len().max(1);
    // Document frequency per token.
    let mut df: HashMap<String, usize> = HashMap::new();
    for doc in docs.iter() {
        let mut seen = HashSet::new();
        for field in doc {
            for tok in field {
                if seen.insert(tok.as_str()) {
                    *df.entry(tok.clone()).or_insert(0) += 1;
                }
            }
        }
    }
    for doc in docs.iter_mut() {
        // Term frequency within the document.
        let mut tf: HashMap<&str, usize> = HashMap::new();
        for field in doc.iter() {
            for tok in field {
                *tf.entry(tok.as_str()).or_insert(0) += 1;
            }
        }
        let mut scored: Vec<(&str, f64)> = tf
            .iter()
            .map(|(&tok, &f)| {
                let idf = (n_docs as f64 / (1.0 + df[tok] as f64)).ln().max(0.0);
                (tok, f as f64 * idf)
            })
            .collect();
        scored.sort_by(|a, b| {
            b.1.partial_cmp(&a.1)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| a.0.cmp(b.0))
        });
        let keep: HashSet<String> = scored.iter().take(k).map(|(t, _)| t.to_string()).collect();
        for field in doc.iter_mut() {
            let before = field.len();
            field.retain(|t| keep.contains(t));
            stats.terms_filtered += before - field.len();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::{Table, TextCorpus};

    fn movie_corpora() -> (Corpus, Corpus) {
        let table = Table::new(
            "movies",
            vec!["title".into(), "director".into(), "genre".into()],
            vec![
                vec!["The Sixth Sense".into(), "Shyamalan".into(), "Thriller".into()],
                vec!["Pulp Fiction".into(), "Tarantino".into(), "Drama".into()],
            ],
        );
        let reviews = TextCorpus::new(vec![
            "a tarantino movie that is really a comedy".into(),
            "shyamalan directs a thriller with a twist".into(),
        ]);
        (Corpus::Table(table), Corpus::Text(reviews))
    }

    fn config() -> TdConfig {
        TdConfig::for_tests()
    }

    #[test]
    fn figure4_structure() {
        let (first, second) = movie_corpora();
        let built = build_graph(&first, &second, &config(), None);
        let g = &built.graph;
        // 2 tuples + 3 columns + 2 paragraphs metadata nodes.
        assert_eq!(g.metadata_nodes(None).len(), 7);
        // Tuple t1 connects to its terms.
        let t1 = g.meta_node("A:doc1").unwrap();
        let tarantino = g.data_node("tarantino").unwrap();
        assert!(g.has_edge(t1, tarantino));
        // Column node connects to both directors.
        let col_director = g.meta_node("A:col1").unwrap();
        assert!(g.has_edge(col_director, tarantino));
        // Review p0 attaches to the shared term.
        let p0 = g.meta_node("B:doc0").unwrap();
        assert!(g.has_edge(p0, tarantino));
    }

    #[test]
    fn builder_tags_edge_kinds() {
        let (first, second) = movie_corpora();
        let built = build_graph(&first, &second, &config(), None);
        let g = &built.graph;
        let t1 = g.meta_node("A:doc1").unwrap();
        let col_director = g.meta_node("A:col1").unwrap();
        let tarantino = g.data_node("tarantino").unwrap();
        assert_eq!(g.edge_kind(t1, tarantino), Some(EdgeKind::Contains));
        assert_eq!(g.edge_kind(col_director, tarantino), Some(EdgeKind::ColumnOf));
        // Every edge in a freshly built graph has a non-Generic kind.
        for (a, b, kind) in g.edges_with_kinds() {
            assert_ne!(kind, EdgeKind::Generic, "untyped edge {a}-{b}");
        }
    }

    #[test]
    fn taxonomy_edges_are_hierarchy_kind() {
        use crate::corpus::{StructuredText, TaxonomyNode};
        let tax = StructuredText::new(vec![
            TaxonomyNode { text: "audit".into(), parent: None },
            TaxonomyNode { text: "audit programme".into(), parent: Some(0) },
        ]);
        let docs = TextCorpus::new(vec!["the audit programme".into()]);
        let built = build_graph(&Corpus::Structured(tax), &Corpus::Text(docs), &config(), None);
        let g = &built.graph;
        let n0 = g.meta_node("A:doc0").unwrap();
        let n1 = g.meta_node("A:doc1").unwrap();
        assert_eq!(g.edge_kind(n0, n1), Some(EdgeKind::Hierarchy));
    }

    #[test]
    fn metadata_nodes_never_connect_across_corpora() {
        let (first, second) = movie_corpora();
        let built = build_graph(&first, &second, &config(), None);
        let g = &built.graph;
        for (a, b) in g.edges() {
            let (ka, kb) = (g.kind(a), g.kind(b));
            if ka.is_metadata() && kb.is_metadata() {
                assert_eq!(ka.side(), kb.side(), "cross-corpus metadata edge {a}-{b}");
            }
        }
    }

    #[test]
    fn intersect_filters_second_corpus_terms() {
        let (first, second) = movie_corpora();
        let built = build_graph(&first, &second, &config(), None);
        // "twist" appears only in reviews; table is the seed corpus (fewer
        // distinct tokens), so "twist" must be filtered out.
        assert!(built.graph.data_node("twist").is_none());
        assert!(built.stats.terms_filtered > 0);
    }

    #[test]
    fn no_filtering_keeps_everything() {
        let (first, second) = movie_corpora();
        let cfg = TdConfig {
            filtering: FilterMode::None,
            ..config()
        };
        let built = build_graph(&first, &second, &cfg, None);
        assert!(built.graph.data_node("twist").is_some());
    }

    #[test]
    fn ngram_terms_exist_for_titles() {
        let (first, second) = movie_corpora();
        let built = build_graph(&first, &second, &config(), None);
        // Multi-token title terms: stemmed "sixth sens" bigram node.
        let bigram = built.graph.data_node("sixth sens");
        assert!(bigram.is_some(), "title bigram missing");
    }

    #[test]
    fn taxonomy_parents_are_linked() {
        use crate::corpus::{StructuredText, TaxonomyNode};
        let tax = StructuredText::new(vec![
            TaxonomyNode { text: "audit".into(), parent: None },
            TaxonomyNode { text: "audit programme".into(), parent: Some(0) },
        ]);
        let docs = TextCorpus::new(vec!["the audit programme for planning".into()]);
        let built = build_graph(
            &Corpus::Structured(tax),
            &Corpus::Text(docs),
            &config(),
            None,
        );
        let g = &built.graph;
        let n0 = g.meta_node("A:doc0").unwrap();
        let n1 = g.meta_node("A:doc1").unwrap();
        assert!(g.has_edge(n0, n1), "taxonomy hierarchy edge missing");
    }

    #[test]
    fn tfidf_filtering_reduces_terms() {
        let (first, second) = movie_corpora();
        let none = build_graph(
            &first,
            &second,
            &TdConfig { filtering: FilterMode::None, ..config() },
            None,
        );
        let tfidf = build_graph(
            &first,
            &second,
            &TdConfig { filtering: FilterMode::TfIdf { k: 2 }, ..config() },
            None,
        );
        assert!(tfidf.stats.terms_created < none.stats.terms_created);
    }

    #[test]
    fn bucketing_merges_numeric_cells() {
        let table = Table::new(
            "cases",
            vec!["country".into(), "cases".into()],
            (0..30)
                .map(|i| vec![format!("country{i}"), format!("{}", 100 + i)])
                .collect(),
        );
        let text = TextCorpus::new(vec!["country5 has 105 cases".into()]);
        let cfg = TdConfig {
            bucket_numbers: true,
            filtering: FilterMode::None,
            ..config()
        };
        let built = build_graph(&Corpus::Table(table), &Corpus::Text(text), &cfg, None);
        assert!(built.stats.bucketing_active);
        // Raw numeric labels replaced by bucket labels.
        assert!(built.graph.data_node("105").is_none());
        let has_bucket = built
            .graph
            .nodes()
            .any(|n| built.graph.label(n).starts_with("num["));
        assert!(has_bucket);
    }

    #[test]
    fn empty_corpora_build_empty_graphs() {
        let built = build_graph(
            &Corpus::Text(TextCorpus::new(vec![])),
            &Corpus::Text(TextCorpus::new(vec![])),
            &config(),
            None,
        );
        assert_eq!(built.graph.node_count(), 0);
    }

    #[test]
    fn stats_count_terms() {
        let (first, second) = movie_corpora();
        let built = build_graph(&first, &second, &config(), None);
        let data_nodes = built
            .graph
            .nodes()
            .filter(|&n| !built.graph.kind(n).is_metadata())
            .count();
        assert_eq!(built.stats.terms_created, data_nodes);
        assert!(data_nodes > 0);
    }
}
