//! Table V — quality of match results for the Snopes text-to-text
//! scenario. Same method set and expected shape as Table IV, with overall
//! higher scores (Snopes claims are less ambiguous than Politifact's).

use tdmatch_bench::{ranking_table, registry, scale_from_env, Method};

fn main() {
    let scenario = registry::by_key("snopes")
        .expect("registered")
        .generate(scale_from_env(), 42);
    ranking_table(
        "Table V — Snopes",
        &scenario,
        &[
            Method::Sbe,
            Method::Bm25,
            Method::Wrw,
            Method::WrwEx,
            Method::Rank,
        ],
        42,
    );
}
