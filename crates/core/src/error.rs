//! Error type for the TDmatch pipeline.

/// Errors surfaced by [`crate::pipeline::TdMatch`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TdError {
    /// One of the corpora holds no documents.
    EmptyCorpus {
        /// Which input ("first" / "second").
        which: &'static str,
    },
    /// After preprocessing/filtering no term connects the corpora, so no
    /// embedding can relate them.
    NoSharedTerms,
    /// The walk corpus came out empty (e.g. all nodes isolated).
    EmptyWalkCorpus,
    /// `fit_prebuilt` was called with a configuration that needs the raw
    /// corpora (inverted-index blocking tokenizes the inputs, which a
    /// persisted graph no longer carries).
    PrebuiltNeedsCorpora,
}

impl std::fmt::Display for TdError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TdError::EmptyCorpus { which } => write!(f, "the {which} corpus has no documents"),
            TdError::NoSharedTerms => {
                write!(f, "no shared terms between the corpora after filtering")
            }
            TdError::EmptyWalkCorpus => write!(f, "random-walk corpus is empty"),
            TdError::PrebuiltNeedsCorpora => write!(
                f,
                "inverted-index blocking needs the raw corpora; use BlockingMode::None or Lsh with fit_prebuilt"
            ),
        }
    }
}

impl std::error::Error for TdError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = TdError::EmptyCorpus { which: "first" };
        assert!(e.to_string().contains("first"));
        assert!(TdError::NoSharedTerms.to_string().contains("shared"));
    }
}
