//! Random-walk corpus generation over the heterogeneous graph (Alg. 4).
//!
//! A walk starts from every live node; at each step the next node is chosen
//! among the current node's neighbors according to the configured
//! [`WalkStrategy`] — uniformly by default (the paper's Alg. 4), biased by
//! node2vec `p`/`q` parameters, or weighted by edge kind (the typed-edge
//! future-work extension). The resulting node-id sequences are the
//! "sentences" Word2Vec trains on. Generation is parallel *and*
//! deterministic: each `(seed, start node, walk index)` triple seeds its
//! own RNG, so the corpus does not depend on thread count.

use rand::rngs::SmallRng;
use rand::SeedableRng;

use tdmatch_graph::sample::{
    random_walk, random_walk_csr_into, random_walk_edge_typed, random_walk_edge_typed_csr_into,
    random_walk_node2vec, random_walk_node2vec_csr_into,
};
use tdmatch_graph::{CsrGraph, EdgeTypeWeights, Graph, NodeId};

use crate::corpus::FlatCorpus;

/// How the next node of a walk is chosen.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum WalkStrategy {
    /// Uniform neighbor choice — the paper's Algorithm 4 (DeepWalk-style).
    #[default]
    Uniform,
    /// node2vec second-order bias (Grover & Leskovec): `p` is the return
    /// parameter, `q` the in-out parameter; `p = q = 1` is equivalent to
    /// [`Uniform`](WalkStrategy::Uniform) in distribution.
    Node2Vec {
        /// Return parameter (likelihood of immediately revisiting the
        /// previous node scales with `1/p`).
        p: f32,
        /// In-out parameter (likelihood of moving further from the
        /// previous node scales with `1/q`).
        q: f32,
    },
    /// First-order walk where transition probability is proportional to
    /// the edge's [`EdgeKind`](tdmatch_graph::EdgeKind) weight.
    EdgeTyped(EdgeTypeWeights),
}

/// Parameters of walk generation. Paper defaults (§V): 100 walks of
/// length 30 per node. Scaled-down experiment presets use fewer.
#[derive(Debug, Clone, Copy)]
pub struct WalkConfig {
    /// Walks started from every node.
    pub walks_per_node: usize,
    /// Steps per walk (the sentence has `walk_len + 1` tokens).
    pub walk_len: usize,
    /// Seed for deterministic generation.
    pub seed: u64,
    /// Worker threads.
    pub threads: usize,
    /// Transition rule (uniform unless configured otherwise).
    pub strategy: WalkStrategy,
}

impl Default for WalkConfig {
    fn default() -> Self {
        Self {
            walks_per_node: 100,
            walk_len: 30,
            seed: 42,
            threads: crate::word2vec::default_threads(),
            strategy: WalkStrategy::Uniform,
        }
    }
}

/// Mixes the walk identity into a per-walk RNG seed.
#[inline]
fn walk_seed(seed: u64, node: NodeId, walk: usize) -> u64 {
    let mut x = seed ^ (node.0 as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    x ^= (walk as u64).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^ (x >> 31)
}

/// Lanes interleaved per start node in the uniform fast path: walks are
/// serial pointer-chases, so stepping several *independent* walks in
/// lockstep overlaps their cache misses. Each lane owns its RNG (seeded
/// per walk index as always), keeping the corpus byte-identical to
/// sequential generation.
const WALK_LANES: usize = 8;

/// Steps up to [`WALK_LANES`] uniform walks from `start` in lockstep,
/// appending each finished walk (in walk-index order) to `tokens` /
/// `lens`. `rng_pool` and `lane_buf` are caller-owned scratch reused
/// across calls.
#[allow(clippy::too_many_arguments)] // all-scratch-by-ref keeps the hot loop allocation-free
fn uniform_walks_interleaved(
    g: &CsrGraph,
    start: NodeId,
    seeds: &[u64],
    walk_len: usize,
    rng_pool: &mut Vec<SmallRng>,
    lane_buf: &mut Vec<u32>,
    tokens: &mut Vec<u32>,
    lens: &mut Vec<u32>,
) {
    use rand::seq::IndexedRandom;
    let lanes = seeds.len();
    debug_assert!(lanes <= WALK_LANES);
    let stride = walk_len + 1;
    rng_pool.clear();
    for &s in seeds {
        rng_pool.push(SmallRng::seed_from_u64(s));
    }
    lane_buf.clear();
    lane_buf.resize(lanes * stride, 0);
    let mut lane_len = [0usize; WALK_LANES];
    let mut cur = [start; WALK_LANES];
    for (lane, len) in lane_len.iter_mut().take(lanes).enumerate() {
        lane_buf[lane * stride] = start.0;
        *len = 1;
    }
    let mut live = lanes;
    for step in 0..walk_len {
        if live == 0 {
            break;
        }
        for lane in 0..lanes {
            // A lane is active iff it has exactly `step + 1` tokens.
            if lane_len[lane] != step + 1 {
                continue;
            }
            match g.neighbors(cur[lane]).choose(&mut rng_pool[lane]) {
                Some(&next) => {
                    lane_buf[lane * stride + step + 1] = next.0;
                    lane_len[lane] = step + 2;
                    cur[lane] = next;
                }
                None => live -= 1,
            }
        }
    }
    for lane in 0..lanes {
        tokens.extend_from_slice(&lane_buf[lane * stride..lane * stride + lane_len[lane]]);
        lens.push(lane_len[lane] as u32);
    }
}

/// Generates the full walk corpus over a [`CsrGraph`] snapshot into a
/// [`FlatCorpus`] arena — the allocation-free hot path the pipeline uses.
///
/// Each worker thread walks a contiguous chunk of start nodes and streams
/// tokens into one pre-reserved per-chunk buffer (no per-walk `Vec`);
/// chunks are then concatenated in node order. Because every walk's RNG is
/// seeded from `(seed, start node, walk index)`, the corpus is *identical*
/// for any thread count, and byte-identical to [`generate_walks`] over the
/// graph the snapshot was frozen from. Uniform walks additionally step
/// `WALK_LANES` (8) independent walks per node in lockstep to overlap
/// their memory latencies — the corpus is unchanged because walk RNG
/// streams never interact.
pub fn generate_walk_corpus(g: &CsrGraph, config: &WalkConfig) -> FlatCorpus {
    let nodes: Vec<NodeId> = g.nodes().collect();
    let threads = config.threads.max(1).min(nodes.len().max(1));
    let chunk_size = nodes.len().div_ceil(threads.max(1)).max(1);
    // Per-(snapshot, weights) cumulative tables, built once up front.
    let cum = match config.strategy {
        WalkStrategy::EdgeTyped(weights) => Some(g.edge_type_cum(&weights)),
        _ => None,
    };
    let mut corpus = FlatCorpus::with_capacity(
        nodes.len() * config.walks_per_node,
        nodes.len() * config.walks_per_node * (config.walk_len + 1),
    );

    crossbeam::thread::scope(|scope| {
        let cum = cum.as_ref();
        let handles: Vec<_> = nodes
            .chunks(chunk_size)
            .map(|chunk| {
                scope.spawn(move |_| {
                    let walks = chunk.len() * config.walks_per_node;
                    let mut tokens: Vec<u32> =
                        Vec::with_capacity(walks * (config.walk_len + 1));
                    let mut lens: Vec<u32> = Vec::with_capacity(walks);
                    let mut scratch: Vec<f32> = Vec::new();
                    if matches!(config.strategy, WalkStrategy::Uniform) {
                        let mut rng_pool: Vec<SmallRng> = Vec::with_capacity(WALK_LANES);
                        let mut lane_buf: Vec<u32> = Vec::new();
                        let mut seeds = [0u64; WALK_LANES];
                        for &node in chunk {
                            let mut w = 0;
                            while w < config.walks_per_node {
                                let lanes = WALK_LANES.min(config.walks_per_node - w);
                                for (lane, s) in seeds.iter_mut().take(lanes).enumerate() {
                                    *s = walk_seed(config.seed, node, w + lane);
                                }
                                uniform_walks_interleaved(
                                    g,
                                    node,
                                    &seeds[..lanes],
                                    config.walk_len,
                                    &mut rng_pool,
                                    &mut lane_buf,
                                    &mut tokens,
                                    &mut lens,
                                );
                                w += lanes;
                            }
                        }
                        return (tokens, lens);
                    }
                    for &node in chunk {
                        for w in 0..config.walks_per_node {
                            let mut rng =
                                SmallRng::seed_from_u64(walk_seed(config.seed, node, w));
                            let start = tokens.len();
                            match config.strategy {
                                WalkStrategy::Uniform => random_walk_csr_into(
                                    g,
                                    node,
                                    config.walk_len,
                                    &mut rng,
                                    &mut tokens,
                                ),
                                WalkStrategy::Node2Vec { p, q } => {
                                    random_walk_node2vec_csr_into(
                                        g,
                                        node,
                                        config.walk_len,
                                        p,
                                        q,
                                        &mut rng,
                                        &mut scratch,
                                        &mut tokens,
                                    )
                                }
                                WalkStrategy::EdgeTyped(weights) => {
                                    random_walk_edge_typed_csr_into(
                                        g,
                                        node,
                                        config.walk_len,
                                        &weights,
                                        cum.expect("cum table built for EdgeTyped"),
                                        &mut rng,
                                        &mut tokens,
                                    )
                                }
                            }
                            lens.push((tokens.len() - start) as u32);
                        }
                    }
                    (tokens, lens)
                })
            })
            .collect();
        for h in handles {
            let (tokens, lens) = h.join().expect("walk worker panicked");
            corpus.append_parts(&tokens, &lens);
        }
    })
    .expect("walk generation scope failed");

    corpus
}

/// Generates the full walk corpus: `walks_per_node` walks from every live
/// node, as sentences of node-id tokens.
///
/// This is the nested-representation reference path, kept for baselines
/// and as the equivalence oracle for [`generate_walk_corpus`]; new code
/// should snapshot the graph and use the flat variant.
pub fn generate_walks(g: &Graph, config: &WalkConfig) -> Vec<Vec<u32>> {
    let nodes: Vec<NodeId> = g.nodes().collect();
    let threads = config.threads.max(1).min(nodes.len().max(1));
    let chunk_size = nodes.len().div_ceil(threads.max(1)).max(1);
    let mut corpus = Vec::with_capacity(nodes.len() * config.walks_per_node);

    crossbeam::thread::scope(|scope| {
        let handles: Vec<_> = nodes
            .chunks(chunk_size)
            .map(|chunk| {
                scope.spawn(move |_| {
                    let mut local =
                        Vec::with_capacity(chunk.len() * config.walks_per_node);
                    for &node in chunk {
                        for w in 0..config.walks_per_node {
                            let mut rng =
                                SmallRng::seed_from_u64(walk_seed(config.seed, node, w));
                            let walk = match config.strategy {
                                WalkStrategy::Uniform => {
                                    random_walk(g, node, config.walk_len, &mut rng)
                                }
                                WalkStrategy::Node2Vec { p, q } => random_walk_node2vec(
                                    g,
                                    node,
                                    config.walk_len,
                                    p,
                                    q,
                                    &mut rng,
                                ),
                                WalkStrategy::EdgeTyped(weights) => random_walk_edge_typed(
                                    g,
                                    node,
                                    config.walk_len,
                                    &weights,
                                    &mut rng,
                                ),
                            };
                            local.push(walk.into_iter().map(|n| n.0).collect::<Vec<u32>>());
                        }
                    }
                    local
                })
            })
            .collect();
        for h in handles {
            corpus.extend(h.join().expect("walk worker panicked"));
        }
    })
    .expect("walk generation scope failed");

    corpus
}

/// Token frequencies over a walk corpus, sized to `id_bound` so the counts
/// can double as a Word2Vec "vocabulary" indexed by node id. Nodes that
/// never appear get count 0 and are excluded from negative sampling by
/// giving them a floor of 1 only when `floor_missing` is set.
pub fn walk_counts(corpus: &[Vec<u32>], id_bound: usize, floor_missing: bool) -> Vec<u64> {
    let mut counts = vec![0u64; id_bound];
    for sent in corpus {
        for &tok in sent {
            counts[tok as usize] += 1;
        }
    }
    if floor_missing {
        for c in &mut counts {
            if *c == 0 {
                *c = 1;
            }
        }
    }
    counts
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ring(n: usize) -> Graph {
        let mut g = Graph::new();
        let ids: Vec<NodeId> = (0..n).map(|i| g.intern_data(&format!("n{i}"))).collect();
        for i in 0..n {
            g.add_edge(ids[i], ids[(i + 1) % n]);
        }
        g
    }

    #[test]
    fn corpus_size_and_lengths() {
        let g = ring(10);
        let cfg = WalkConfig {
            walks_per_node: 3,
            walk_len: 5,
            seed: 1,
            threads: 2,
            strategy: WalkStrategy::Uniform,
        };
        let corpus = generate_walks(&g, &cfg);
        assert_eq!(corpus.len(), 30);
        assert!(corpus.iter().all(|w| w.len() == 6));
    }

    #[test]
    fn walks_are_thread_count_independent() {
        let g = ring(12);
        let mut c1 = generate_walks(
            &g,
            &WalkConfig {
                walks_per_node: 2,
                walk_len: 4,
                seed: 9,
                threads: 1,
                strategy: WalkStrategy::Uniform,
            },
        );
        let mut c4 = generate_walks(
            &g,
            &WalkConfig {
                walks_per_node: 2,
                walk_len: 4,
                seed: 9,
                threads: 4,
                strategy: WalkStrategy::Uniform,
            },
        );
        c1.sort();
        c4.sort();
        assert_eq!(c1, c4);
    }

    #[test]
    fn walk_steps_follow_edges() {
        let g = ring(6);
        let corpus = generate_walks(
            &g,
            &WalkConfig {
                walks_per_node: 1,
                walk_len: 8,
                seed: 2,
                threads: 1,
                strategy: WalkStrategy::Uniform,
            },
        );
        for sent in &corpus {
            for pair in sent.windows(2) {
                assert!(g.has_edge(NodeId(pair[0]), NodeId(pair[1])));
            }
        }
    }

    #[test]
    fn counts_cover_all_visited_nodes() {
        let g = ring(5);
        let corpus = generate_walks(
            &g,
            &WalkConfig {
                walks_per_node: 4,
                walk_len: 6,
                seed: 3,
                threads: 1,
                strategy: WalkStrategy::Uniform,
            },
        );
        let counts = walk_counts(&corpus, g.id_bound(), false);
        let total: u64 = counts.iter().sum();
        assert_eq!(total as usize, corpus.iter().map(|s| s.len()).sum::<usize>());
        // Every node starts 4 walks, so every node appears.
        assert!(counts.iter().all(|&c| c >= 4));
    }

    #[test]
    fn floor_missing_gives_min_one() {
        let counts = walk_counts(&[], 3, true);
        assert_eq!(counts, vec![1, 1, 1]);
    }

    #[test]
    fn node2vec_strategy_produces_valid_deterministic_corpus() {
        let g = ring(10);
        let cfg = WalkConfig {
            walks_per_node: 2,
            walk_len: 6,
            seed: 5,
            threads: 2,
            strategy: WalkStrategy::Node2Vec { p: 0.25, q: 4.0 },
        };
        let c1 = generate_walks(&g, &cfg);
        let c2 = generate_walks(&g, &cfg);
        assert_eq!(c1, c2, "node2vec corpus must be deterministic");
        assert_eq!(c1.len(), 20);
        for sent in &c1 {
            for pair in sent.windows(2) {
                assert!(g.has_edge(NodeId(pair[0]), NodeId(pair[1])));
            }
        }
    }

    #[test]
    fn edge_typed_strategy_with_uniform_weights_is_complete() {
        use tdmatch_graph::EdgeTypeWeights;
        let g = ring(8);
        let cfg = WalkConfig {
            walks_per_node: 2,
            walk_len: 5,
            seed: 6,
            threads: 1,
            strategy: WalkStrategy::EdgeTyped(EdgeTypeWeights::uniform()),
        };
        let corpus = generate_walks(&g, &cfg);
        assert_eq!(corpus.len(), 16);
        assert!(corpus.iter().all(|w| w.len() == 6));
    }

    #[test]
    fn forbidding_all_kinds_yields_singleton_walks() {
        use tdmatch_graph::{EdgeKind, EdgeTypeWeights};
        let g = ring(5);
        // Ring edges are Generic; weight 0 strands every walker at start.
        let weights = EdgeTypeWeights::uniform().with(EdgeKind::Generic, 0.0);
        let cfg = WalkConfig {
            walks_per_node: 1,
            walk_len: 5,
            seed: 7,
            threads: 1,
            strategy: WalkStrategy::EdgeTyped(weights),
        };
        let corpus = generate_walks(&g, &cfg);
        assert!(corpus.iter().all(|w| w.len() == 1));
    }

    #[test]
    fn flat_corpus_matches_nested_for_every_strategy() {
        use tdmatch_graph::{CsrGraph, EdgeKind, EdgeTypeWeights};
        let mut g = ring(14);
        // Add typed chords so the strategies actually diverge.
        for i in 0..14 {
            let a = g.data_node(&format!("n{i}")).unwrap();
            let b = g.data_node(&format!("n{}", (i + 4) % 14)).unwrap();
            g.add_edge_typed(a, b, EdgeKind::External);
        }
        let csr = CsrGraph::from_graph(&g);
        for strategy in [
            WalkStrategy::Uniform,
            WalkStrategy::Node2Vec { p: 0.5, q: 2.0 },
            WalkStrategy::EdgeTyped(EdgeTypeWeights::uniform().with(EdgeKind::External, 0.25)),
        ] {
            let cfg = WalkConfig {
                // Above WALK_LANES so uniform runs a full batch + tail.
                walks_per_node: 11,
                walk_len: 7,
                seed: 13,
                threads: 1,
                strategy,
            };
            let nested = generate_walks(&g, &cfg);
            for threads in [1, 2, 5] {
                let flat = generate_walk_corpus(&csr, &WalkConfig { threads, ..cfg });
                assert_eq!(flat.to_nested(), nested, "{strategy:?} threads={threads}");
            }
        }
    }

    #[test]
    fn flat_corpus_counts_match_nested_counts() {
        let g = ring(9);
        let cfg = WalkConfig {
            walks_per_node: 2,
            walk_len: 5,
            seed: 21,
            threads: 3,
            strategy: WalkStrategy::Uniform,
        };
        let nested = generate_walks(&g, &cfg);
        let flat =
            generate_walk_corpus(&tdmatch_graph::CsrGraph::from_graph(&g), &cfg);
        assert_eq!(
            flat.token_counts(g.id_bound(), false),
            walk_counts(&nested, g.id_bound(), false)
        );
    }

    #[test]
    fn removed_nodes_do_not_start_walks() {
        let mut g = ring(6);
        let victim = g.data_node("n0").unwrap();
        g.remove_node(victim);
        let corpus = generate_walks(
            &g,
            &WalkConfig {
                walks_per_node: 1,
                walk_len: 3,
                seed: 4,
                threads: 1,
                strategy: WalkStrategy::Uniform,
            },
        );
        assert_eq!(corpus.len(), 5);
        assert!(corpus.iter().all(|s| !s.contains(&victim.0)));
    }
}
