//! Multi-layer perceptron with ReLU hidden layers and Adam training.

use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::{RngExt, SeedableRng};

use crate::loss::{bce_grad, sigmoid};

/// One fully-connected layer with Adam moment buffers.
#[derive(Debug, Clone)]
struct Dense {
    in_dim: usize,
    out_dim: usize,
    w: Vec<f32>,
    b: Vec<f32>,
    // Adam state.
    mw: Vec<f32>,
    vw: Vec<f32>,
    mb: Vec<f32>,
    vb: Vec<f32>,
}

impl Dense {
    fn new(in_dim: usize, out_dim: usize, rng: &mut SmallRng) -> Self {
        // He initialization for ReLU nets.
        let scale = (2.0 / in_dim as f32).sqrt();
        let w = (0..in_dim * out_dim)
            .map(|_| (rng.random::<f32>() * 2.0 - 1.0) * scale)
            .collect();
        Self {
            in_dim,
            out_dim,
            w,
            b: vec![0.0; out_dim],
            mw: vec![0.0; in_dim * out_dim],
            vw: vec![0.0; in_dim * out_dim],
            mb: vec![0.0; out_dim],
            vb: vec![0.0; out_dim],
        }
    }

    /// `out = W·x + b`.
    fn forward(&self, x: &[f32], out: &mut Vec<f32>) {
        out.clear();
        out.reserve(self.out_dim);
        for o in 0..self.out_dim {
            let row = &self.w[o * self.in_dim..(o + 1) * self.in_dim];
            let mut acc = self.b[o];
            for (wi, xi) in row.iter().zip(x) {
                acc += wi * xi;
            }
            out.push(acc);
        }
    }
}

/// Adam hyper-parameters and step counter.
#[derive(Debug, Clone)]
struct Adam {
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    t: u64,
}

impl Adam {
    fn new(lr: f32) -> Self {
        Self {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            t: 0,
        }
    }

    #[inline]
    fn update(&self, p: &mut f32, m: &mut f32, v: &mut f32, g: f32) {
        *m = self.beta1 * *m + (1.0 - self.beta1) * g;
        *v = self.beta2 * *v + (1.0 - self.beta2) * g * g;
        let mh = *m / (1.0 - self.beta1.powi(self.t as i32));
        let vh = *v / (1.0 - self.beta2.powi(self.t as i32));
        *p -= self.lr * mh / (vh.sqrt() + self.eps);
    }
}

/// Training configuration for [`Mlp::fit_sigmoid`].
#[derive(Debug, Clone)]
pub struct TrainConfig {
    /// Passes over the training set.
    pub epochs: usize,
    /// Adam learning rate.
    pub lr: f32,
    /// Shuffle/ init seed.
    pub seed: u64,
    /// L2 weight decay (applied to weights, not biases).
    pub l2: f32,
}

impl Default for TrainConfig {
    fn default() -> Self {
        Self {
            epochs: 30,
            lr: 1e-3,
            seed: 42,
            l2: 1e-5,
        }
    }
}

/// A ReLU MLP with linear output logits.
#[derive(Debug, Clone)]
pub struct Mlp {
    layers: Vec<Dense>,
    adam: Adam,
}

impl Mlp {
    /// Builds an MLP with the given layer sizes, e.g. `[in, hidden, out]`.
    pub fn new(dims: &[usize], seed: u64) -> Self {
        assert!(dims.len() >= 2, "need at least input and output dims");
        let mut rng = SmallRng::seed_from_u64(seed);
        let layers = dims
            .windows(2)
            .map(|w| Dense::new(w[0], w[1], &mut rng))
            .collect();
        Self {
            layers,
            adam: Adam::new(1e-3),
        }
    }

    /// Output (logit) dimensionality.
    pub fn out_dim(&self) -> usize {
        self.layers.last().expect("non-empty").out_dim
    }

    /// Input dimensionality.
    pub fn in_dim(&self) -> usize {
        self.layers.first().expect("non-empty").in_dim
    }

    /// Forward pass returning raw logits.
    pub fn forward(&self, x: &[f32]) -> Vec<f32> {
        let mut cur = x.to_vec();
        let mut next = Vec::new();
        for (li, layer) in self.layers.iter().enumerate() {
            layer.forward(&cur, &mut next);
            if li + 1 < self.layers.len() {
                for v in &mut next {
                    *v = v.max(0.0); // ReLU on hidden layers
                }
            }
            std::mem::swap(&mut cur, &mut next);
        }
        cur
    }

    /// Forward pass keeping every layer's post-activation output (the
    /// first entry is the input itself).
    fn forward_cached(&self, x: &[f32]) -> Vec<Vec<f32>> {
        let mut acts = Vec::with_capacity(self.layers.len() + 1);
        acts.push(x.to_vec());
        for (li, layer) in self.layers.iter().enumerate() {
            let mut out = Vec::new();
            layer.forward(acts.last().expect("non-empty"), &mut out);
            if li + 1 < self.layers.len() {
                for v in &mut out {
                    *v = v.max(0.0);
                }
            }
            acts.push(out);
        }
        acts
    }

    /// One backpropagation + Adam step given the gradient of the loss
    /// w.r.t. the output logits. Returns nothing; updates parameters.
    // Index loops: rows are manual `o * in_dim` slices of flat weight
    // buffers; iterator chains here obscure the addressing.
    #[allow(clippy::needless_range_loop)]
    pub fn train_step(&mut self, x: &[f32], dlogits: &[f32], lr: f32, l2: f32) {
        self.adam.lr = lr;
        self.adam.t += 1;
        let acts = self.forward_cached(x);
        let mut delta = dlogits.to_vec();
        for li in (0..self.layers.len()).rev() {
            let input = &acts[li];
            // Propagate first (needs current weights), then update.
            let mut dinput = vec![0.0f32; self.layers[li].in_dim];
            {
                let layer = &self.layers[li];
                for o in 0..layer.out_dim {
                    let row = &layer.w[o * layer.in_dim..(o + 1) * layer.in_dim];
                    let d = delta[o];
                    for (di, wi) in dinput.iter_mut().zip(row) {
                        *di += d * wi;
                    }
                }
            }
            // ReLU derivative for hidden layers: gradient flows only where
            // the activation was positive.
            if li > 0 {
                for (di, &a) in dinput.iter_mut().zip(&acts[li]) {
                    if a <= 0.0 {
                        *di = 0.0;
                    }
                }
            }
            let layer = &mut self.layers[li];
            for o in 0..layer.out_dim {
                let d = delta[o];
                let base = o * layer.in_dim;
                for i in 0..layer.in_dim {
                    let g = d * input[i] + l2 * layer.w[base + i];
                    self.adam.update(
                        &mut layer.w[base + i],
                        &mut layer.mw[base + i],
                        &mut layer.vw[base + i],
                        g,
                    );
                }
                self.adam
                    .update(&mut layer.b[o], &mut layer.mb[o], &mut layer.vb[o], d);
            }
            delta = dinput;
        }
    }

    /// Trains with sigmoid cross-entropy on (multi-)binary targets.
    /// `data` pairs each input with a target vector of the output arity.
    pub fn fit_sigmoid(&mut self, data: &[(Vec<f32>, Vec<f32>)], cfg: &TrainConfig) {
        let mut order: Vec<usize> = (0..data.len()).collect();
        let mut rng = SmallRng::seed_from_u64(cfg.seed);
        for _ in 0..cfg.epochs {
            order.shuffle(&mut rng);
            for &i in &order {
                let (x, y) = &data[i];
                let logits = self.forward(x);
                let dlogits: Vec<f32> = logits
                    .iter()
                    .zip(y)
                    .map(|(&l, &t)| bce_grad(l, t))
                    .collect();
                self.train_step(x, &dlogits, cfg.lr, cfg.l2);
            }
        }
    }

    /// Sigmoid probabilities for each output.
    pub fn predict_sigmoid(&self, x: &[f32]) -> Vec<f32> {
        self.forward(x).into_iter().map(sigmoid).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// XOR — the classic non-linear sanity check.
    #[test]
    fn learns_xor() {
        let data: Vec<(Vec<f32>, Vec<f32>)> = vec![
            (vec![0.0, 0.0], vec![0.0]),
            (vec![0.0, 1.0], vec![1.0]),
            (vec![1.0, 0.0], vec![1.0]),
            (vec![1.0, 1.0], vec![0.0]),
        ];
        let mut mlp = Mlp::new(&[2, 16, 1], 7);
        mlp.fit_sigmoid(
            &data,
            &TrainConfig {
                epochs: 800,
                lr: 5e-3,
                ..Default::default()
            },
        );
        for (x, y) in &data {
            let p = mlp.predict_sigmoid(x)[0];
            assert!(
                (p - y[0]).abs() < 0.3,
                "xor({x:?}) predicted {p}, want {}",
                y[0]
            );
        }
    }

    #[test]
    fn learns_linear_separation_fast() {
        // y = 1 iff x0 > x1.
        let mut data = Vec::new();
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..200 {
            let a = rng.random::<f32>();
            let b = rng.random::<f32>();
            data.push((vec![a, b], vec![if a > b { 1.0 } else { 0.0 }]));
        }
        let mut mlp = Mlp::new(&[2, 8, 1], 3);
        mlp.fit_sigmoid(
            &data,
            &TrainConfig {
                epochs: 60,
                lr: 5e-3,
                ..Default::default()
            },
        );
        let correct = data
            .iter()
            .filter(|(x, y)| (mlp.predict_sigmoid(x)[0] > 0.5) == (y[0] > 0.5))
            .count();
        assert!(correct >= 180, "accuracy {correct}/200");
    }

    #[test]
    fn multilabel_outputs_are_independent() {
        // Output 0 mirrors x0; output 1 mirrors x1.
        let mut data = Vec::new();
        for a in [0.0f32, 1.0] {
            for b in [0.0f32, 1.0] {
                data.push((vec![a, b], vec![a, b]));
            }
        }
        let mut mlp = Mlp::new(&[2, 12, 2], 5);
        mlp.fit_sigmoid(
            &data,
            &TrainConfig {
                epochs: 500,
                lr: 5e-3,
                ..Default::default()
            },
        );
        let p = mlp.predict_sigmoid(&[1.0, 0.0]);
        assert!(p[0] > 0.6 && p[1] < 0.4, "p = {p:?}");
    }

    #[test]
    fn deterministic_under_seed() {
        let data = vec![(vec![0.3, 0.7], vec![1.0])];
        let mut a = Mlp::new(&[2, 4, 1], 9);
        let mut b = Mlp::new(&[2, 4, 1], 9);
        let cfg = TrainConfig {
            epochs: 5,
            ..Default::default()
        };
        a.fit_sigmoid(&data, &cfg);
        b.fit_sigmoid(&data, &cfg);
        assert_eq!(a.forward(&[0.1, 0.2]), b.forward(&[0.1, 0.2]));
    }

    #[test]
    #[should_panic(expected = "at least input and output")]
    fn rejects_degenerate_shape() {
        let _ = Mlp::new(&[3], 0);
    }
}
