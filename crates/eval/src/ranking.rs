//! Ranking metrics: MRR, MAP@k, HasPositive@k.

use std::collections::HashSet;

/// Reciprocal rank of the first relevant item in `ranked` (1-based), or 0
/// when none appears.
pub fn reciprocal_rank<T: Eq + std::hash::Hash>(ranked: &[T], relevant: &HashSet<T>) -> f64 {
    for (i, item) in ranked.iter().enumerate() {
        if relevant.contains(item) {
            return 1.0 / (i as f64 + 1.0);
        }
    }
    0.0
}

/// Average precision truncated at rank `k`:
/// `Σ_{i≤k, ranked[i] relevant} P(i) / min(|relevant|, k)`.
///
/// A relevant item is credited only at its first occurrence in `ranked`;
/// duplicates contribute nothing (standard IR convention, and required for
/// the metric to stay within `[0, 1]`).
pub fn average_precision_at_k<T: Eq + std::hash::Hash>(
    ranked: &[T],
    relevant: &HashSet<T>,
    k: usize,
) -> f64 {
    if relevant.is_empty() || k == 0 {
        return 0.0;
    }
    let mut seen: HashSet<&T> = HashSet::new();
    let mut precision_sum = 0.0;
    for (i, item) in ranked.iter().take(k).enumerate() {
        if relevant.contains(item) && seen.insert(item) {
            precision_sum += seen.len() as f64 / (i as f64 + 1.0);
        }
    }
    precision_sum / relevant.len().min(k) as f64
}

/// 1.0 if any of the top `k` items is relevant, else 0.0.
pub fn has_positive_at_k<T: Eq + std::hash::Hash>(
    ranked: &[T],
    relevant: &HashSet<T>,
    k: usize,
) -> f64 {
    if ranked.iter().take(k).any(|x| relevant.contains(x)) {
        1.0
    } else {
        0.0
    }
}

/// The metric bundle the paper reports per scenario (Tables I/II/IV/V/VI):
/// MRR plus MAP@k and HasPositive@k at k ∈ {1, 5, 20}.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct RankMetrics {
    /// Mean Reciprocal Rank.
    pub mrr: f64,
    /// MAP truncated at 1, 5, 20.
    pub map_at: [f64; 3],
    /// HasPositive at 1, 5, 20.
    pub has_positive_at: [f64; 3],
}

/// The `k` values reported in the paper's ranking tables.
pub const REPORTED_KS: [usize; 3] = [1, 5, 20];

/// Averages the metrics over queries: each query is a ranked candidate list
/// plus its relevant set. Queries with empty relevant sets are skipped (no
/// ground truth → nothing to score).
pub fn mean_metrics<T: Eq + std::hash::Hash>(
    queries: &[(Vec<T>, HashSet<T>)],
) -> RankMetrics {
    mean_metrics_over(queries.iter().map(|(r, rel)| (r.as_slice(), rel)))
}

/// Borrowing [`mean_metrics`]: consumes `(ranked slice, relevant set)`
/// pairs directly, so callers evaluating an existing matcher output (e.g.
/// the engine's per-query rankings) don't have to clone every ranked list
/// into an owned pair first.
pub fn mean_metrics_over<'a, T: Eq + std::hash::Hash + 'a>(
    queries: impl IntoIterator<Item = (&'a [T], &'a HashSet<T>)>,
) -> RankMetrics {
    let mut out = RankMetrics::default();
    let mut n = 0usize;
    for (ranked, relevant) in queries {
        if relevant.is_empty() {
            continue;
        }
        n += 1;
        out.mrr += reciprocal_rank(ranked, relevant);
        for (slot, &k) in REPORTED_KS.iter().enumerate() {
            out.map_at[slot] += average_precision_at_k(ranked, relevant, k);
            out.has_positive_at[slot] += has_positive_at_k(ranked, relevant, k);
        }
    }
    if n > 0 {
        let inv = 1.0 / n as f64;
        out.mrr *= inv;
        for v in &mut out.map_at {
            *v *= inv;
        }
        for v in &mut out.has_positive_at {
            *v *= inv;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rel(items: &[u32]) -> HashSet<u32> {
        items.iter().copied().collect()
    }

    #[test]
    fn rr_positions() {
        assert_eq!(reciprocal_rank(&[1, 2, 3], &rel(&[1])), 1.0);
        assert_eq!(reciprocal_rank(&[9, 2, 3], &rel(&[2])), 0.5);
        assert_eq!(reciprocal_rank(&[9, 9, 3], &rel(&[3])), 1.0 / 3.0);
        assert_eq!(reciprocal_rank(&[9, 9, 9], &rel(&[3])), 0.0);
        assert_eq!(reciprocal_rank::<u32>(&[], &rel(&[3])), 0.0);
    }

    #[test]
    fn ap_at_k_hand_computed() {
        // ranked = [R, N, R], relevant = {a, c}; AP@3 = (1/1 + 2/3)/2.
        let ranked = vec![0u32, 1, 2];
        let relevant = rel(&[0, 2]);
        let ap = average_precision_at_k(&ranked, &relevant, 3);
        assert!((ap - (1.0 + 2.0 / 3.0) / 2.0).abs() < 1e-12);
    }

    #[test]
    fn ap_at_k_truncates() {
        let ranked = vec![9u32, 9, 0];
        let relevant = rel(&[0]);
        assert_eq!(average_precision_at_k(&ranked, &relevant, 2), 0.0);
        assert!((average_precision_at_k(&ranked, &relevant, 3) - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn ap_denominator_uses_min() {
        // One relevant item retrieved at rank 1, k=5 → AP = 1.0 (divide by
        // min(|rel|,k)=1, not k).
        let ranked = vec![0u32, 9, 9, 9, 9];
        assert_eq!(average_precision_at_k(&ranked, &rel(&[0]), 5), 1.0);
    }

    #[test]
    fn ap_ignores_duplicate_hits() {
        // The same relevant item repeated must be credited once only, so AP
        // stays in [0, 1] (regression for the proptest-found case [30, 30]).
        let ranked = vec![30u32, 30];
        let relevant = rel(&[30]);
        assert_eq!(average_precision_at_k(&ranked, &relevant, 2), 1.0);
        // Duplicate of an irrelevant item changes nothing.
        let ranked = vec![9u32, 9, 30];
        assert!((average_precision_at_k(&ranked, &relevant, 3) - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn has_positive_boundaries() {
        let ranked = vec![9u32, 0];
        let relevant = rel(&[0]);
        assert_eq!(has_positive_at_k(&ranked, &relevant, 1), 0.0);
        assert_eq!(has_positive_at_k(&ranked, &relevant, 2), 1.0);
        assert_eq!(has_positive_at_k(&ranked, &relevant, 0), 0.0);
    }

    #[test]
    fn mean_metrics_averages_and_skips_empty() {
        let queries = vec![
            (vec![0u32, 1], rel(&[0])),       // rr 1.0
            (vec![1u32, 0], rel(&[0])),       // rr 0.5
            (vec![1u32, 0], HashSet::new()),  // skipped
        ];
        let m = mean_metrics(&queries);
        assert!((m.mrr - 0.75).abs() < 1e-12);
        assert!((m.has_positive_at[0] - 0.5).abs() < 1e-12);
        assert!((m.has_positive_at[1] - 1.0).abs() < 1e-12);
        // The borrowing variant computes the same bundle.
        let b = mean_metrics_over(queries.iter().map(|(r, rel)| (r.as_slice(), rel)));
        assert_eq!(m, b);
    }

    #[test]
    fn perfect_ranking_scores_one() {
        let queries = vec![(vec![0u32, 1, 2], rel(&[0]))];
        let m = mean_metrics(&queries);
        assert_eq!(m.mrr, 1.0);
        assert_eq!(m.map_at, [1.0, 1.0, 1.0]);
        assert_eq!(m.has_positive_at, [1.0, 1.0, 1.0]);
    }
}
