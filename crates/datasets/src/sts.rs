//! The STS scenario (§V-C): semantic-textual-similarity pairs treated as
//! an unsupervised matching task.
//!
//! Sentence pairs carry a 0–5 similarity score; a pair is a true match at
//! threshold `k` when its score ≥ k. Scores are realized by construction:
//!
//! * 5 — near-identical sentences;
//! * 4 — synonym substitutions;
//! * 3 — shared clause, divergent remainder;
//! * 2 — same topic words, different statement;
//! * 1/0 — unrelated sentences.

use rand::rngs::SmallRng;
use rand::seq::IndexedRandom;
use rand::SeedableRng;

use tdmatch_core::config::TdConfig;
use tdmatch_core::corpus::{Corpus, TextCorpus};
use tdmatch_kb::{lexicon, SyntheticConceptNet};

use crate::{standard_pretrained, Scale, Scenario};

fn n_pairs(scale: Scale) -> usize {
    match scale {
        Scale::Tiny => 40,
        Scale::Small => 400,
        Scale::Paper => 7_000,
    }
}

fn base_sentence(rng: &mut SmallRng) -> Vec<String> {
    let noun = lexicon::GENERIC_NOUNS.choose(rng).expect("non-empty");
    let noun2 = lexicon::GENERIC_NOUNS.choose(rng).expect("non-empty");
    let verb = lexicon::GENERIC_VERBS.choose(rng).expect("non-empty");
    let adj = lexicon::GENERIC_ADJS.choose(rng).expect("non-empty");
    format!("the {adj} {noun} will {verb} the {noun2} this year")
        .split(' ')
        .map(|s| s.to_string())
        .collect()
}

fn swap_synonyms(rng: &mut SmallRng, words: &[String]) -> Vec<String> {
    words
        .iter()
        .map(|w| {
            for group in lexicon::SYNONYM_GROUPS {
                if group.contains(&w.as_str()) {
                    return group.choose(rng).expect("non-empty").to_string();
                }
            }
            w.clone()
        })
        .collect()
}

/// Generates one `(sentence_a, sentence_b, score)` triple.
fn make_pair(rng: &mut SmallRng, score: u8) -> (String, String, u8) {
    let a = base_sentence(rng);
    let b: Vec<String> = match score {
        5 => a.clone(),
        4 => swap_synonyms(rng, &a),
        3 => {
            // Keep the first half, regenerate the rest.
            let mut b = a[..a.len() / 2].to_vec();
            b.extend(base_sentence(rng).into_iter().skip(a.len() / 2));
            b
        }
        2 => {
            // Shuffle topic words into a fresh frame.
            let noun = a[2].clone();
            let mut b = base_sentence(rng);
            let pos = b.len() - 2;
            b[pos] = noun;
            b
        }
        _ => base_sentence(rng),
    };
    (a.join(" "), b.join(" "), score)
}

/// Generates the STS scenario at threshold `k` (the paper reports k = 2
/// with ~5k matching pairs and k = 3 with ~3.7k).
pub fn generate(scale: Scale, seed: u64, k: u8) -> Scenario {
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x575_0000);
    let n = n_pairs(scale);
    let mut first_docs = Vec::with_capacity(n);
    let mut second_docs = Vec::with_capacity(n);
    let mut truth = Vec::with_capacity(n);
    for i in 0..n {
        // Score distribution roughly uniform over 0..=5.
        let score = (i % 6) as u8;
        let (a, b, s) = make_pair(&mut rng, score);
        second_docs.push(a);
        first_docs.push(b);
        truth.push(if s >= k { vec![i] } else { vec![] });
    }
    let (pretrained, gamma) = standard_pretrained(seed, 0.3);
    Scenario {
        name: format!("sts-k{k}"),
        first: Corpus::Text(TextCorpus::new(first_docs)),
        second: Corpus::Text(TextCorpus::new(second_docs)),
        ground_truth: truth,
        kb: Box::new(SyntheticConceptNet::standard(seed, 2)),
        pretrained,
        gamma,
        config: TdConfig::text_oriented(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn higher_threshold_means_fewer_matches() {
        let k2 = generate(Scale::Small, 6, 2);
        let k3 = generate(Scale::Small, 6, 3);
        assert!(k3.labeled_queries() < k2.labeled_queries());
        assert!(k2.labeled_queries() > 0);
    }

    #[test]
    fn score5_pairs_are_identical() {
        let mut rng = SmallRng::seed_from_u64(2);
        let (a, b, _) = make_pair(&mut rng, 5);
        assert_eq!(a, b);
    }

    #[test]
    fn score0_pairs_differ() {
        let mut rng = SmallRng::seed_from_u64(2);
        let (a, b, _) = make_pair(&mut rng, 0);
        assert_ne!(a, b);
    }

    #[test]
    fn score4_shares_most_words() {
        let mut rng = SmallRng::seed_from_u64(2);
        let (a, b, _) = make_pair(&mut rng, 4);
        let wa: std::collections::HashSet<&str> = a.split(' ').collect();
        let shared = b.split(' ').filter(|w| wa.contains(w)).count();
        assert!(shared >= 5, "synonym pairs share the frame: {a} / {b}");
    }

    #[test]
    fn corpora_are_parallel() {
        let s = generate(Scale::Tiny, 6, 2);
        assert_eq!(s.first.len(), s.second.len());
        assert_eq!(s.ground_truth.len(), s.second.len());
    }
}
