//! Document serialization and tokenization shared by the baselines.
//!
//! Tuples are serialized with the `[COL] attr [VAL] value` scheme of
//! Ditto \[2\] (§V: "we serialize every tuple to a sentence using two
//! special tokens"). All baselines tokenize through the same
//! pre-processor as the main pipeline so comparisons are fair.

use tdmatch_core::corpus::Corpus;
use tdmatch_text::Preprocessor;

/// Marker token standing in for Ditto's `[COL]`.
pub const COL_MARKER: &str = "colmarker";
/// Marker token standing in for Ditto's `[VAL]`.
pub const VAL_MARKER: &str = "valmarker";

/// Serializes document `i` of `corpus` into a token sequence.
///
/// Tables produce `colmarker <attr tokens> valmarker <value tokens> …`;
/// text and taxonomy documents produce their base tokens.
pub fn serialize_doc(corpus: &Corpus, i: usize, pre: &Preprocessor) -> Vec<String> {
    match corpus {
        Corpus::Table(t) => {
            let mut out = Vec::new();
            for (col, val) in t.columns.iter().zip(&t.rows[i]) {
                out.push(COL_MARKER.to_string());
                out.extend(pre.base_tokens(col));
                out.push(VAL_MARKER.to_string());
                out.extend(pre.base_tokens(val));
            }
            out
        }
        _ => doc_tokens(corpus, i, pre),
    }
}

/// Plain base tokens of document `i` (no markers).
pub fn doc_tokens(corpus: &Corpus, i: usize, pre: &Preprocessor) -> Vec<String> {
    corpus
        .fields(i)
        .iter()
        .flat_map(|f| pre.base_tokens(f))
        .collect()
}

/// Tokens per field of document `i` (for attribute-wise features).
pub fn field_tokens(corpus: &Corpus, i: usize, pre: &Preprocessor) -> Vec<Vec<String>> {
    corpus
        .fields(i)
        .iter()
        .map(|f| pre.base_tokens(f))
        .collect()
}

/// Serializes every document of a corpus.
pub fn serialize_corpus(corpus: &Corpus, pre: &Preprocessor) -> Vec<Vec<String>> {
    (0..corpus.len())
        .map(|i| serialize_doc(corpus, i, pre))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tdmatch_core::corpus::{Table, TextCorpus};

    #[test]
    fn tables_get_markers() {
        let t = Corpus::Table(Table::new(
            "m",
            vec!["title".into()],
            vec![vec!["The Sixth Sense".into()]],
        ));
        let toks = serialize_doc(&t, 0, &Preprocessor::default());
        assert_eq!(toks[0], COL_MARKER);
        assert!(toks.contains(&VAL_MARKER.to_string()));
        assert!(toks.contains(&"sixth".to_string()));
    }

    #[test]
    fn text_has_no_markers() {
        let c = Corpus::Text(TextCorpus::new(vec!["a plain sentence".into()]));
        let toks = serialize_doc(&c, 0, &Preprocessor::default());
        assert!(!toks.contains(&COL_MARKER.to_string()));
    }

    #[test]
    fn field_tokens_align_with_columns() {
        let t = Corpus::Table(Table::new(
            "m",
            vec!["a".into(), "b".into()],
            vec![vec!["first cell".into(), "second cell".into()]],
        ));
        let fields = field_tokens(&t, 0, &Preprocessor::default());
        assert_eq!(fields.len(), 2);
        assert!(fields[0].contains(&"first".to_string()));
    }
}
