//! The IMDb scenario (§V-A): movie reviews matched to movie tuples.
//!
//! A synthetic movie world with 13-attribute tuples (the paper's WT
//! variant) or 12 without the title (NT). Reviews are generated with the
//! phenomena the paper highlights:
//!
//! * entity aliasing — *Bruce Willis* appears as *B. Willis* or just
//!   *Willis* (n-grams + similarity merging must bridge it);
//! * genre drift — a *Drama* tuple reviewed as a *comedy* (the Pulp
//!   Fiction example; DBpedia expansion bridges it);
//! * ambiguity — actor pools are smaller than the cast demand, so the same
//!   actor stars in several movies;
//! * distractors — reviews name-drop actors from other movies.

use rand::rngs::SmallRng;
use rand::seq::IndexedRandom;
use rand::{RngExt, SeedableRng};

use tdmatch_core::config::TdConfig;
use tdmatch_core::corpus::{Corpus, Table, TextCorpus};
use tdmatch_kb::{lexicon, SyntheticDbpedia};

use crate::{standard_pretrained, Scale, Scenario};

/// A synthetic person with a full name.
#[derive(Debug, Clone)]
struct Person {
    first: &'static str,
    last: &'static str,
}

impl Person {
    fn full(&self) -> String {
        format!("{} {}", self.first, self.last)
    }

    fn abbreviated(&self) -> String {
        format!("{}. {}", &self.first[..1], self.last)
    }
}

/// A movie tuple before serialization.
#[derive(Debug, Clone)]
struct Movie {
    title: String,
    director: Person,
    actor1: Person,
    actor2: Person,
    genre: usize, // index into lexicon::GENRES
    year: u32,
    rating: f32,
    runtime: u32,
    language: &'static str,
    country: &'static str,
    certificate: &'static str,
    votes: u32,
    keyword: &'static str,
}

static LANGUAGES: &[&str] = &[
    "english", "french", "spanish", "german", "italian", "japanese", "korean", "hindi",
    "mandarin", "portuguese",
];
static CERTIFICATES: &[&str] = &["g", "pg", "pg13", "r", "nc17"];

fn sizes(scale: Scale) -> (usize, usize) {
    // (movies, reviewed movies); 2 reviews per reviewed movie.
    match scale {
        Scale::Tiny => (40, 10),
        Scale::Small => (600, 80),
        Scale::Paper => (50_000, 1_000),
    }
}

fn make_people(rng: &mut SmallRng, n: usize) -> Vec<Person> {
    let mut people = Vec::with_capacity(n);
    let mut seen = std::collections::HashSet::new();
    while people.len() < n {
        let p = Person {
            first: lexicon::FIRST_NAMES.choose(rng).expect("non-empty"),
            last: lexicon::LAST_NAMES.choose(rng).expect("non-empty"),
        };
        if seen.insert(p.full()) {
            people.push(p);
        }
    }
    people
}

fn make_title(rng: &mut SmallRng, seen: &mut std::collections::HashSet<String>) -> String {
    loop {
        let n_words = rng.random_range(2..=3);
        let mut words: Vec<&str> = (0..n_words)
            .map(|_| *lexicon::TITLE_WORDS.choose(rng).expect("non-empty"))
            .collect();
        words.dedup();
        let mut title = words.join(" ");
        if rng.random_bool(0.4) {
            title = format!("the {title}");
        }
        if seen.insert(title.clone()) {
            return title;
        }
    }
}

fn make_movies(rng: &mut SmallRng, n: usize) -> Vec<Movie> {
    // Small person pools relative to demand → natural ambiguity.
    let directors = make_people(rng, (n / 6).clamp(4, 400));
    let actors = make_people(rng, (n / 2).clamp(8, 2_000));
    let mut titles = std::collections::HashSet::new();
    (0..n)
        .map(|_| {
            let a1 = actors.choose(rng).expect("non-empty").clone();
            let mut a2 = actors.choose(rng).expect("non-empty").clone();
            while a2.full() == a1.full() {
                a2 = actors.choose(rng).expect("non-empty").clone();
            }
            Movie {
                title: make_title(rng, &mut titles),
                director: directors.choose(rng).expect("non-empty").clone(),
                actor1: a1,
                actor2: a2,
                genre: rng.random_range(0..lexicon::GENRES.len()),
                year: rng.random_range(1960..2021),
                rating: (rng.random_range(10..100) as f32) / 10.0,
                runtime: rng.random_range(70..210),
                language: LANGUAGES.choose(rng).expect("non-empty"),
                country: lexicon::COUNTRIES.choose(rng).expect("non-empty"),
                certificate: CERTIFICATES.choose(rng).expect("non-empty"),
                votes: rng.random_range(1_000..2_000_000),
                keyword: lexicon::GENERIC_NOUNS.choose(rng).expect("non-empty"),
            }
        })
        .collect()
}

fn to_table(movies: &[Movie]) -> Table {
    let columns: Vec<String> = [
        "title", "director", "actor1", "actor2", "genre", "year", "rating", "runtime",
        "language", "country", "certificate", "votes", "keyword",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    let rows = movies
        .iter()
        .map(|m| {
            vec![
                m.title.clone(),
                m.director.full(),
                m.actor1.full(),
                m.actor2.full(),
                lexicon::GENRES[m.genre].0.to_string(),
                m.year.to_string(),
                format!("{:.1}", m.rating),
                m.runtime.to_string(),
                m.language.to_string(),
                m.country.to_string(),
                m.certificate.to_string(),
                m.votes.to_string(),
                m.keyword.to_string(),
            ]
        })
        .collect();
    Table::new("imdb", columns, rows)
}

/// Picks how a person is mentioned: full, abbreviated, or last name only.
fn mention(rng: &mut SmallRng, p: &Person) -> String {
    match rng.random_range(0..3) {
        0 => p.full(),
        1 => p.abbreviated(),
        _ => p.last.to_string(),
    }
}

fn review_text(rng: &mut SmallRng, movies: &[Movie], idx: usize) -> String {
    let m = &movies[idx];
    let adj = |rng: &mut SmallRng| *lexicon::GENERIC_ADJS.choose(rng).expect("non-empty");
    let noun = |rng: &mut SmallRng| *lexicon::GENERIC_NOUNS.choose(rng).expect("non-empty");
    // Genre wording: usually the tuple's genre (or its colloquialism), but
    // sometimes a *different* genre's colloquialism — the comedy-labeled-
    // drama situation.
    let (genre_word, colloquial) = lexicon::GENRES[m.genre];
    let genre_mention = if rng.random_bool(0.2) {
        lexicon::GENRES[rng.random_range(0..lexicon::GENRES.len())].1
    } else if rng.random_bool(0.5) {
        colloquial
    } else {
        genre_word
    };
    // Title fragment: drop a leading "the", sometimes keep only a bigram.
    let title_words: Vec<&str> = m
        .title
        .split(' ')
        .filter(|w| *w != "the")
        .collect();
    let title_fragment = if title_words.len() > 2 && rng.random_bool(0.5) {
        title_words[..2].join(" ")
    } else {
        title_words.join(" ")
    };

    // Opening sentence: genre plus, usually, the title fragment and/or
    // the director — but not reliably, like real reviews.
    let mut sentences = Vec::new();
    let mention_title = rng.random_bool(0.6);
    let mention_director = rng.random_bool(0.7);
    if mention_title && mention_director {
        sentences.push(format!(
            "{} delivers {} a {} {} full of {}",
            mention(rng, &m.director),
            title_fragment,
            adj(rng),
            genre_mention,
            noun(rng),
        ));
    } else if mention_title {
        sentences.push(format!(
            "{} is a {} {} about a {}",
            title_fragment,
            adj(rng),
            genre_mention,
            noun(rng),
        ));
    } else if mention_director {
        sentences.push(format!(
            "{} returns with a {} {} about a {}",
            mention(rng, &m.director),
            adj(rng),
            genre_mention,
            noun(rng),
        ));
    } else {
        sentences.push(format!(
            "a {} {} that every {} will {}",
            adj(rng),
            genre_mention,
            noun(rng),
            lexicon::GENERIC_VERBS.choose(rng).expect("non-empty"),
        ));
    }
    // Cast mentions: the lead actor usually, the second one less often.
    // At least one true entity always appears so matching stays solvable.
    let mention_lead = rng.random_bool(0.8) || !mention_director;
    if mention_lead {
        sentences.push(format!(
            "{} gives a {} performance as the {}",
            mention(rng, &m.actor1),
            adj(rng),
            noun(rng),
        ));
    }
    if rng.random_bool(0.4) {
        sentences.push(format!(
            "{} is {} in a side {}",
            mention(rng, &m.actor2),
            adj(rng),
            noun(rng),
        ));
    }
    // Distractors: name-drop entities (and titles) from other movies.
    for _ in 0..rng.random_range(1..3usize) {
        if movies.len() > 1 {
            let other = &movies[rng.random_range(0..movies.len())];
            if rng.random_bool(0.5) {
                sentences.push(format!(
                    "it reminded me of that {} with {}",
                    noun(rng),
                    other.actor1.last,
                ));
            } else {
                // People reference other titles loosely — one word only.
                let other_word = other
                    .title
                    .split(' ')
                    .find(|w| *w != "the")
                    .unwrap_or("that");
                sentences.push(format!(
                    "not as {} as that {} movie though",
                    adj(rng),
                    other_word,
                ));
            }
        }
    }
    // Filler prose.
    for _ in 0..rng.random_range(2..5usize) {
        sentences.push(format!(
            "the {} is {} and the {} feels {}",
            noun(rng),
            adj(rng),
            noun(rng),
            adj(rng),
        ));
    }
    sentences.join(". ")
}

fn build_dbpedia(rng: &mut SmallRng, movies: &[Movie]) -> SyntheticDbpedia {
    let mut kb = SyntheticDbpedia::default();
    for m in movies {
        kb.add_fact(m.director.last, "directorOf", &m.title);
        kb.add_fact(m.actor1.last, "starringOf", &m.title);
        kb.add_fact(m.actor2.last, "starringOf", &m.title);
        // The paper's style(Tarantino, Comedy) case: the director's style
        // is described by the genre's colloquialism.
        let (_, colloquial) = lexicon::GENRES[m.genre];
        kb.add_fact(m.director.last, "style", colloquial);
        kb.add_fact(&m.title, "genre", lexicon::GENRES[m.genre].0);
        // DBpedia bulk: irrelevant facts per popular entity (spouses,
        // birthplaces, …) — mostly sinks the expansion cleanup removes or
        // noise for compression to prune.
        if rng.random_bool(0.3) {
            let spouse = format!(
                "{} {}",
                lexicon::FIRST_NAMES.choose(rng).expect("non-empty"),
                lexicon::LAST_NAMES.choose(rng).expect("non-empty")
            );
            kb.add_fact(m.director.last, "spouse", &spouse);
        }
        if rng.random_bool(0.3) {
            kb.add_fact(
                m.actor1.last,
                "birthPlace",
                lexicon::COUNTRIES.choose(rng).expect("non-empty"),
            );
        }
    }
    kb
}

/// Generates the IMDb scenario. `with_title = true` is the paper's WT
/// variant; `false` removes the title attribute (NT, harder).
pub fn generate(scale: Scale, seed: u64, with_title: bool) -> Scenario {
    let mut rng = SmallRng::seed_from_u64(seed ^ IMDB_SALT);
    let (n_movies, n_reviewed) = sizes(scale);
    let movies = make_movies(&mut rng, n_movies);

    let mut table = to_table(&movies);
    if !with_title {
        table = table.without_column("title");
    }

    // Two reviews for each of the first `n_reviewed` movies ("top 1K of
    // all times" in the paper).
    let mut reviews = Vec::with_capacity(n_reviewed * 2);
    let mut truth = Vec::with_capacity(n_reviewed * 2);
    for i in 0..n_reviewed {
        for _ in 0..2 {
            reviews.push(review_text(&mut rng, &movies, i));
            truth.push(vec![i]);
        }
    }

    let kb = build_dbpedia(&mut rng, &movies);

    // Pre-trained coverage: the model knows common words and ~30 % of the
    // last-name pool; additionally register the most famous full names.
    let (mut pretrained, gamma) = standard_pretrained(seed, 0.3);
    for m in movies.iter().take(n_movies / 5) {
        pretrained.add_entity(&m.actor1.full());
        pretrained.add_entity(&m.director.full());
    }

    Scenario {
        name: if with_title { "imdb-wt" } else { "imdb-nt" }.to_string(),
        first: Corpus::Table(table),
        second: Corpus::Text(TextCorpus::new(reviews)),
        ground_truth: truth,
        kb: Box::new(kb),
        pretrained,
        gamma,
        config: TdConfig::text_to_data(),
    }
}

/// Seed salt so IMDb streams differ from other scenarios under the same
/// user seed.
const IMDB_SALT: u64 = 0x1111_2222;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wt_has_13_attributes_nt_12() {
        let wt = generate(Scale::Tiny, 3, true);
        let nt = generate(Scale::Tiny, 3, false);
        let Corpus::Table(twt) = &wt.first else { panic!() };
        let Corpus::Table(tnt) = &nt.first else { panic!() };
        assert_eq!(twt.columns.len(), 13);
        assert_eq!(tnt.columns.len(), 12);
        assert!(!tnt.columns.contains(&"title".to_string()));
    }

    #[test]
    fn two_reviews_per_reviewed_movie() {
        let s = generate(Scale::Tiny, 3, true);
        assert_eq!(s.second.len(), 20);
        assert_eq!(s.ground_truth[0], vec![0]);
        assert_eq!(s.ground_truth[1], vec![0]);
        assert_eq!(s.ground_truth[2], vec![1]);
    }

    #[test]
    fn reviews_mention_their_movie() {
        let s = generate(Scale::Tiny, 3, true);
        let Corpus::Table(t) = &s.first else { panic!() };
        let Corpus::Text(reviews) = &s.second else { panic!() };
        // Director or actor last name must appear in the review.
        let mut mentioned = 0;
        for (i, review) in reviews.docs.iter().enumerate() {
            let movie = s.ground_truth[i][0];
            let director_last = t.rows[movie][1].split(' ').nth(1).unwrap();
            let actor_last = t.rows[movie][2].split(' ').nth(1).unwrap();
            if review.contains(director_last) || review.contains(actor_last) {
                mentioned += 1;
            }
        }
        assert_eq!(mentioned, reviews.docs.len());
    }

    #[test]
    fn dbpedia_knows_directors() {
        let s = generate(Scale::Tiny, 3, true);
        let Corpus::Table(t) = &s.first else { panic!() };
        let director_last = t.rows[0][1].split(' ').nth(1).unwrap();
        assert!(
            !s.kb.relations(director_last).is_empty(),
            "{director_last} should have DBpedia facts"
        );
    }

    #[test]
    fn titles_are_unique() {
        let s = generate(Scale::Tiny, 3, true);
        let Corpus::Table(t) = &s.first else { panic!() };
        let titles: std::collections::HashSet<&String> =
            t.rows.iter().map(|r| &r[0]).collect();
        assert_eq!(titles.len(), t.rows.len());
    }
}
