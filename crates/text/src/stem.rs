//! Porter stemming algorithm (Porter, 1980), implemented from scratch.
//!
//! Stemming is one of TDmatch's node-merging techniques (§II-C): it merges
//! different forms of a word — e.g. *planning* from a paragraph with *Plan*
//! from the taxonomy node "Plan Do Check Act Steps" — so that both documents
//! share a single data node in the graph.
//!
//! This is a faithful implementation of the original five-step algorithm,
//! operating on ASCII lower-case words; non-ASCII words are returned
//! unchanged (the synthetic corpora are ASCII).

/// Stems a single lower-case word with the Porter algorithm.
///
/// ```
/// use tdmatch_text::stem::stem;
/// assert_eq!(stem("planning"), "plan");
/// assert_eq!(stem("relational"), "relat");
/// assert_eq!(stem("caresses"), "caress");
/// ```
pub fn stem(word: &str) -> String {
    if word.len() <= 2 || !word.bytes().all(|b| b.is_ascii_lowercase()) {
        return word.to_string();
    }
    let mut w: Vec<u8> = word.as_bytes().to_vec();
    step1a(&mut w);
    step1b(&mut w);
    step1c(&mut w);
    step2(&mut w);
    step3(&mut w);
    step4(&mut w);
    step5a(&mut w);
    step5b(&mut w);
    // SAFETY-free: built from ASCII bytes only.
    String::from_utf8(w).expect("porter stemmer operates on ascii")
}

/// True if `w[i]` acts as a consonant in Porter's definition.
fn is_consonant(w: &[u8], i: usize) -> bool {
    match w[i] {
        b'a' | b'e' | b'i' | b'o' | b'u' => false,
        b'y' => {
            if i == 0 {
                true
            } else {
                !is_consonant(w, i - 1)
            }
        }
        _ => true,
    }
}

/// Porter's *measure* m of the stem `w[..len]`: the number of VC sequences.
fn measure(w: &[u8], len: usize) -> usize {
    let mut m = 0;
    let mut i = 0;
    // Skip initial consonants.
    while i < len && is_consonant(w, i) {
        i += 1;
    }
    loop {
        // Skip vowels.
        while i < len && !is_consonant(w, i) {
            i += 1;
        }
        if i >= len {
            return m;
        }
        // Skip consonants — one full VC block seen.
        while i < len && is_consonant(w, i) {
            i += 1;
        }
        m += 1;
    }
}

/// True if the stem `w[..len]` contains a vowel.
fn has_vowel(w: &[u8], len: usize) -> bool {
    (0..len).any(|i| !is_consonant(w, i))
}

/// True if `w[..len]` ends with a double consonant.
fn ends_double_consonant(w: &[u8], len: usize) -> bool {
    len >= 2 && w[len - 1] == w[len - 2] && is_consonant(w, len - 1)
}

/// True if `w[..len]` ends consonant-vowel-consonant where the final
/// consonant is not `w`, `x` or `y` (Porter's *o condition).
fn ends_cvc(w: &[u8], len: usize) -> bool {
    len >= 3
        && is_consonant(w, len - 3)
        && !is_consonant(w, len - 2)
        && is_consonant(w, len - 1)
        && !matches!(w[len - 1], b'w' | b'x' | b'y')
}

fn ends_with(w: &[u8], suffix: &str) -> bool {
    w.len() >= suffix.len() && &w[w.len() - suffix.len()..] == suffix.as_bytes()
}

/// Replaces `suffix` with `repl` if the remaining stem has measure > `min_m`.
/// Returns true if the suffix matched (even when the measure test failed).
fn replace_if_m(w: &mut Vec<u8>, suffix: &str, repl: &str, min_m: usize) -> bool {
    if !ends_with(w, suffix) {
        return false;
    }
    let stem_len = w.len() - suffix.len();
    if measure(w, stem_len) > min_m {
        w.truncate(stem_len);
        w.extend_from_slice(repl.as_bytes());
    }
    true
}

/// Step 1a: plurals. SSES→SS, IES→I, SS→SS, S→"".
fn step1a(w: &mut Vec<u8>) {
    if ends_with(w, "sses") || ends_with(w, "ies") {
        let keep = w.len() - 2;
        w.truncate(keep);
    } else if ends_with(w, "s") && !ends_with(w, "ss") {
        w.pop();
    }
}

/// Step 1b: -ED and -ING, with cleanup of the exposed stem.
fn step1b(w: &mut Vec<u8>) {
    if ends_with(w, "eed") {
        let stem_len = w.len() - 3;
        if measure(w, stem_len) > 0 {
            w.pop();
        }
        return;
    }
    let stripped = if ends_with(w, "ed") && has_vowel(w, w.len() - 2) {
        w.truncate(w.len() - 2);
        true
    } else if ends_with(w, "ing") && has_vowel(w, w.len() - 3) {
        w.truncate(w.len() - 3);
        true
    } else {
        false
    };
    if stripped {
        if ends_with(w, "at") || ends_with(w, "bl") || ends_with(w, "iz") {
            w.push(b'e');
        } else if ends_double_consonant(w, w.len())
            && !matches!(w[w.len() - 1], b'l' | b's' | b'z')
        {
            w.pop();
        } else if measure(w, w.len()) == 1 && ends_cvc(w, w.len()) {
            w.push(b'e');
        }
    }
}

/// Step 1c: Y→I when the stem contains a vowel.
fn step1c(w: &mut [u8]) {
    let n = w.len();
    if n > 1 && w[n - 1] == b'y' && has_vowel(w, n - 1) {
        w[n - 1] = b'i';
    }
}

/// Step 2: double→single suffixes when m > 0 (ational→ate, iveness→ive, …).
fn step2(w: &mut Vec<u8>) {
    const RULES: &[(&str, &str)] = &[
        ("ational", "ate"),
        ("tional", "tion"),
        ("enci", "ence"),
        ("anci", "ance"),
        ("izer", "ize"),
        ("abli", "able"),
        ("alli", "al"),
        ("entli", "ent"),
        ("eli", "e"),
        ("ousli", "ous"),
        ("ization", "ize"),
        ("ation", "ate"),
        ("ator", "ate"),
        ("alism", "al"),
        ("iveness", "ive"),
        ("fulness", "ful"),
        ("ousness", "ous"),
        ("aliti", "al"),
        ("iviti", "ive"),
        ("biliti", "ble"),
    ];
    for (suf, rep) in RULES {
        if replace_if_m(w, suf, rep, 0) {
            return;
        }
    }
}

/// Step 3: icate→ic, ative→"", alize→al, … when m > 0.
fn step3(w: &mut Vec<u8>) {
    const RULES: &[(&str, &str)] = &[
        ("icate", "ic"),
        ("ative", ""),
        ("alize", "al"),
        ("iciti", "ic"),
        ("ical", "ic"),
        ("ful", ""),
        ("ness", ""),
    ];
    for (suf, rep) in RULES {
        if replace_if_m(w, suf, rep, 0) {
            return;
        }
    }
}

/// Step 4: drop derivational suffixes when m > 1.
fn step4(w: &mut Vec<u8>) {
    const RULES: &[&str] = &[
        "al", "ance", "ence", "er", "ic", "able", "ible", "ant", "ement", "ment", "ent", "ou",
        "ism", "ate", "iti", "ous", "ive", "ize",
    ];
    // "ion" needs the stem to end in s or t.
    if ends_with(w, "ion") {
        let stem_len = w.len() - 3;
        if stem_len > 0
            && matches!(w[stem_len - 1], b's' | b't')
            && measure(w, stem_len) > 1
        {
            w.truncate(stem_len);
            return;
        }
    }
    for suf in RULES {
        if ends_with(w, suf) {
            let stem_len = w.len() - suf.len();
            if measure(w, stem_len) > 1 {
                w.truncate(stem_len);
            }
            return;
        }
    }
}

/// Step 5a: drop final E when m > 1, or m == 1 and not *o.
fn step5a(w: &mut Vec<u8>) {
    if ends_with(w, "e") {
        let stem_len = w.len() - 1;
        let m = measure(w, stem_len);
        if m > 1 || (m == 1 && !ends_cvc(w, stem_len)) {
            w.pop();
        }
    }
}

/// Step 5b: LL→L when m > 1.
fn step5b(w: &mut Vec<u8>) {
    if measure(w, w.len()) > 1 && ends_double_consonant(w, w.len()) && w[w.len() - 1] == b'l' {
        w.pop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference vectors from Porter's published examples.
    #[test]
    fn porter_reference_vectors() {
        let cases = [
            ("caresses", "caress"),
            ("ponies", "poni"),
            ("ties", "ti"),
            ("caress", "caress"),
            ("cats", "cat"),
            ("feed", "feed"),
            ("agreed", "agre"),
            ("plastered", "plaster"),
            ("bled", "bled"),
            ("motoring", "motor"),
            ("sing", "sing"),
            ("conflated", "conflat"),
            ("troubled", "troubl"),
            ("sized", "size"),
            ("hopping", "hop"),
            ("tanned", "tan"),
            ("falling", "fall"),
            ("hissing", "hiss"),
            ("fizzed", "fizz"),
            ("failing", "fail"),
            ("filing", "file"),
            ("happy", "happi"),
            ("sky", "sky"),
            ("relational", "relat"),
            ("conditional", "condit"),
            ("rational", "ration"),
            ("valenci", "valenc"),
            ("hesitanci", "hesit"),
            ("digitizer", "digit"),
            ("conformabli", "conform"),
            ("radicalli", "radic"),
            ("differentli", "differ"),
            ("vileli", "vile"),
            ("analogousli", "analog"),
            ("vietnamization", "vietnam"),
            ("predication", "predic"),
            ("operator", "oper"),
            ("feudalism", "feudal"),
            ("decisiveness", "decis"),
            ("hopefulness", "hope"),
            ("callousness", "callous"),
            ("formaliti", "formal"),
            ("sensitiviti", "sensit"),
            ("sensibiliti", "sensibl"),
            ("triplicate", "triplic"),
            ("formative", "form"),
            ("formalize", "formal"),
            ("electriciti", "electr"),
            ("electrical", "electr"),
            ("hopeful", "hope"),
            ("goodness", "good"),
            ("revival", "reviv"),
            ("allowance", "allow"),
            ("inference", "infer"),
            ("airliner", "airlin"),
            ("gyroscopic", "gyroscop"),
            ("adjustable", "adjust"),
            ("defensible", "defens"),
            ("irritant", "irrit"),
            ("replacement", "replac"),
            ("adjustment", "adjust"),
            ("dependent", "depend"),
            ("adoption", "adopt"),
            ("homologou", "homolog"),
            ("communism", "commun"),
            ("activate", "activ"),
            ("angulariti", "angular"),
            ("homologous", "homolog"),
            ("effective", "effect"),
            ("bowdlerize", "bowdler"),
            ("probate", "probat"),
            ("rate", "rate"),
            ("cease", "ceas"),
            ("controll", "control"),
            ("roll", "roll"),
        ];
        for (input, expected) in cases {
            assert_eq!(stem(input), expected, "stem({input:?})");
        }
    }

    #[test]
    fn planning_merges_with_plan() {
        // The paper's §II-C example.
        assert_eq!(stem("planning"), stem("plan"));
    }

    #[test]
    fn short_words_untouched() {
        assert_eq!(stem("a"), "a");
        assert_eq!(stem("be"), "be");
    }

    #[test]
    fn non_ascii_untouched() {
        assert_eq!(stem("café"), "café");
        assert_eq!(stem("covid-19"), "covid-19");
    }

    #[test]
    fn idempotent_on_many_words() {
        for w in ["running", "relational", "audit", "auditing", "matches"] {
            let once = stem(w);
            let twice = stem(&once);
            // Porter is not guaranteed idempotent in general, but it is on
            // these everyday words — a regression canary.
            assert_eq!(once, twice, "{w}");
        }
    }
}
