//! RANK\* — the supervised re-ranker of Shaar et al. \[39\]: learning to
//! rank with a pairwise loss, here a RankNet MLP over pair features, with
//! the same 5-fold protocol as the other supervised baselines.

use std::time::Instant;

use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};

use tdmatch_core::corpus::Corpus;
use tdmatch_embed::score::select_top_k;
use tdmatch_kb::PretrainedModel;
use tdmatch_nn::{PairwiseRanker, TrainConfig};

use crate::features::{FeatureSet, PairFeaturizer};
use crate::supervised::{make_folds, SupervisedOptions};
use crate::RankedMatches;

/// Runs the RANK\* baseline.
pub fn run(
    first: &Corpus,
    second: &Corpus,
    truth: &[Vec<usize>],
    pretrained: &PretrainedModel,
    opts: &SupervisedOptions,
    k: usize,
) -> RankedMatches {
    let featurizer = PairFeaturizer::new(first, second, pretrained);
    let n_targets = featurizer.n_targets();
    let labeled: Vec<usize> = (0..second.len()).filter(|&q| !truth[q].is_empty()).collect();
    let folds = make_folds(&labeled, opts.folds, opts.seed);

    let mut per_query: Vec<Vec<(usize, f32)>> = vec![Vec::new(); second.len()];
    let mut train_secs = 0.0;
    let mut test_secs = 0.0;
    let mut rng = SmallRng::seed_from_u64(opts.seed ^ RANK_SALT);

    for (fi, fold) in folds.iter().enumerate() {
        let t0 = Instant::now();
        let mut pairs: Vec<(Vec<f32>, Vec<f32>)> = Vec::new();
        for (fj, other) in folds.iter().enumerate() {
            if fj == fi {
                continue;
            }
            for &q in other {
                for &pos in &truth[q] {
                    let pos_feat = featurizer.features(q, pos, FeatureSet::Rank);
                    for _ in 0..opts.negatives_per_positive {
                        let neg = rng.random_range(0..n_targets);
                        if !truth[q].contains(&neg) {
                            pairs.push((
                                pos_feat.clone(),
                                featurizer.features(q, neg, FeatureSet::Rank),
                            ));
                        }
                    }
                }
            }
        }
        let mut ranker =
            PairwiseRanker::new(FeatureSet::Rank.dim(), opts.hidden, opts.seed ^ fi as u64);
        ranker.fit(
            &pairs,
            &TrainConfig {
                epochs: opts.epochs,
                lr: opts.lr,
                seed: opts.seed ^ fi as u64,
                ..Default::default()
            },
        );
        train_secs += t0.elapsed().as_secs_f64();

        let t1 = Instant::now();
        for &q in fold {
            per_query[q] = select_top_k(
                (0..n_targets)
                    .map(|t| (t, ranker.score(&featurizer.features(q, t, FeatureSet::Rank)))),
                k,
            );
        }
        test_secs += t1.elapsed().as_secs_f64();
    }

    RankedMatches {
        method: "RANK*".to_string(),
        per_query,
        train_secs,
        test_secs,
    }
}

/// Seed salt for negative sampling.
const RANK_SALT: u64 = 0x7A4B;

#[cfg(test)]
mod tests {
    use super::*;
    use tdmatch_core::corpus::TextCorpus;

    #[test]
    fn ranker_learns_lexical_preference() {
        let n = 20;
        let facts: Vec<String> = (0..n)
            .map(|i| format!("verified statement token{i} about topic{i}"))
            .collect();
        let claims: Vec<String> = (0..n)
            .map(|i| format!("someone said token{i} and topic{i} happened"))
            .collect();
        let truth: Vec<Vec<usize>> = (0..n).map(|i| vec![i]).collect();
        let first = Corpus::Text(TextCorpus::new(facts));
        let second = Corpus::Text(TextCorpus::new(claims));
        let model = PretrainedModel::standard(32, 1, 0.3);
        let r = run(
            &first,
            &second,
            &truth,
            &model,
            &SupervisedOptions {
                epochs: 10,
                ..Default::default()
            },
            5,
        );
        let top1 = (0..n).filter(|&q| r.indices(q).first() == Some(&q)).count();
        assert!(top1 >= n / 2, "top-1 correct {top1}/{n}");
        assert_eq!(r.method, "RANK*");
    }
}
