//! Serving facade: a long-lived, thread-safe matcher over a loaded
//! [`MatchArtifact`].
//!
//! The pipeline is fit-once / match-many, and on the "many" side a
//! resident process (the `tdmatch serve` daemon, or any embedding
//! application) answers a *stream* of requests against one artifact. The
//! [`Matcher`] wraps the artifact behind exactly the request shapes a
//! server needs:
//!
//! * **query-by-id** — rank targets for a document already in the
//!   artifact's query corpus ([`Matcher::query_by_id`]);
//! * **query-by-vector** — rank targets for an out-of-corpus embedding
//!   ([`Matcher::query_by_vector`]);
//! * **query-by-tokens** — embed pre-processed tokens first
//!   ([`Matcher::query_by_tokens`]), the same aggregation as
//!   [`MatchArtifact::embed_tokens`];
//! * **batches** — several concurrent requests coalesced into **one**
//!   scoring call over the pre-normalized matrices
//!   ([`Matcher::query_batch`] / [`Matcher::query_batch_with`]), so N
//!   clients ride the tiled batch kernel instead of issuing N scalar
//!   scans.
//!
//! # Bit-identical batching
//!
//! By-id queries are gathered **verbatim** out of the artifact's
//! pre-normalized query matrix
//! ([`QueryBlock::push_unit`]), and every query's
//! ranking in the tiled kernel is computed independently of its batch
//! neighbours — so a batched response is *bit-identical* to the serial
//! [`MatchArtifact::match_top_k`] ranking for the same document, at any
//! batch composition. The protocol tests in `crates/serve` pin this.

use tdmatch_embed::score::QueryBlock;

use crate::artifact::{MatchArtifact, PersistError};
use crate::matcher::top_k_matches_matrix;

/// How many ANN candidates a batch actually retrieved — the raw
/// material for the daemon's `ann_queries` / `mean_pool` counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AnnUsage {
    /// Queries whose candidates came from the ANN index.
    pub queries: u64,
    /// Total candidates offered to the exact rescorer across those
    /// queries (pool hits plus the invalid-row appendix).
    pub pooled: u64,
}

impl AnnUsage {
    /// Accumulates another batch's usage.
    pub fn add(&mut self, other: AnnUsage) {
        self.queries += other.queries;
        self.pooled += other.pooled;
    }
}

/// One serving request: which query row to rank against the artifact's
/// target corpus.
#[derive(Debug, Clone, PartialEq)]
pub enum Query {
    /// A document of the artifact's query (second) corpus, by index.
    ById(usize),
    /// An out-of-corpus raw (un-normalized) embedding of the artifact's
    /// dimensionality.
    ByVector(Vec<f32>),
}

/// Why a single request inside a batch could not be scored. The rest of
/// the batch is unaffected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QueryError {
    /// A [`Query::ById`] index at or beyond the query-corpus size.
    UnknownId {
        /// The requested document index.
        id: usize,
        /// Number of documents in the query corpus.
        rows: usize,
    },
    /// A [`Query::ByVector`] whose length is not the artifact dim.
    DimMismatch {
        /// The vector length received.
        got: usize,
        /// The artifact's embedding dimensionality.
        want: usize,
    },
}

impl std::fmt::Display for QueryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QueryError::UnknownId { id, rows } => {
                write!(f, "unknown query id {id} (corpus holds {rows} documents)")
            }
            QueryError::DimMismatch { got, want } => {
                write!(f, "query vector has dim {got}, artifact expects {want}")
            }
        }
    }
}

impl std::error::Error for QueryError {}

/// A ranked answer: `(target index, score)` by decreasing score, ties by
/// ascending index — the engine's standard ordering.
pub type Ranked = Vec<(usize, f32)>;

/// A long-lived matcher over one loaded artifact.
///
/// `Matcher` is `Send + Sync` and interior-mutability-free: any number
/// of threads can query it concurrently; batch state lives in a
/// caller-owned [`QueryBlock`] (see
/// [`query_batch_with`](Matcher::query_batch_with)).
///
/// ```
/// use tdmatch_core::artifact::MatchArtifact;
/// use tdmatch_core::serving::{Matcher, Query};
///
/// let artifact = MatchArtifact::new(
///     2,
///     vec![("tarantino".into(), vec![1.0, 0.0])],
///     vec![Some(vec![1.0, 0.0]), Some(vec![0.0, 1.0])], // targets
///     vec![Some(vec![0.9, 0.1]), Some(vec![0.2, 0.8])], // queries
/// );
/// let matcher = Matcher::new(artifact);
///
/// // Two concurrent requests coalesce into one batched kernel call…
/// let batch = matcher.query_batch(
///     &[Query::ById(0), Query::ByVector(vec![0.0, 3.0])],
///     1,
/// );
/// assert_eq!(batch[0].as_ref().unwrap()[0].0, 0); // [0.9,0.1] → target 0
/// assert_eq!(batch[1].as_ref().unwrap()[0].0, 1); // [0,3]    → target 1
///
/// // …and a by-id answer is bit-identical to the one-shot path.
/// let serial = matcher.artifact().match_top_k(1);
/// assert_eq!(batch[0].as_ref().unwrap(), &serial[0].ranked);
/// ```
#[derive(Debug, Clone)]
pub struct Matcher {
    artifact: MatchArtifact,
    /// `Some(pool)` ⇒ queries default to ANN retrieval with this pool
    /// width (when the artifact carries an index); `None` ⇒ exact scan.
    ann_pool: Option<usize>,
    /// ANN search beam width (`ef_search`); `None` follows the pool
    /// width (the historical coupling). Clamped up to the pool at use.
    ann_ef: Option<usize>,
}

impl Matcher {
    /// Wraps a loaded (or freshly exported) artifact. ANN retrieval
    /// starts **off** — the default path is the exact scan.
    pub fn new(artifact: MatchArtifact) -> Self {
        Self {
            artifact,
            ann_pool: None,
            ann_ef: None,
        }
    }

    /// Enables ANN retrieval by default, with `pool` candidates per
    /// query (builder form of [`set_ann_pool`](Matcher::set_ann_pool)).
    pub fn with_ann_pool(mut self, pool: usize) -> Self {
        self.ann_pool = Some(pool);
        self
    }

    /// Sets the ANN search beam width (builder form of
    /// [`set_ann_ef`](Matcher::set_ann_ef)).
    pub fn with_ann_ef(mut self, ef: usize) -> Self {
        self.ann_ef = Some(ef);
        self
    }

    /// Sets (or clears) the default retrieval mode: `Some(pool)` routes
    /// queries through the ANN index with that pool width, `None`
    /// restores the exact scan. Has no effect on artifacts without an
    /// index — those always scan exactly.
    pub fn set_ann_pool(&mut self, pool: Option<usize>) {
        self.ann_pool = pool;
    }

    /// Sets (or clears) the ANN search beam width (`ef_search`) —
    /// how many nodes the layer-0 graph walk explores per query.
    /// `None` (the default) keeps the beam at the pool width; wider
    /// beams buy recall without widening the exact-rescore pool.
    /// Values below the pool are clamped up to it at search time (a
    /// beam can't return more nodes than it explored).
    pub fn set_ann_ef(&mut self, ef: Option<usize>) {
        self.ann_ef = ef;
    }

    /// The configured default pool width, when ANN mode is on.
    pub fn ann_pool(&self) -> Option<usize> {
        self.ann_pool
    }

    /// The configured ANN search beam width, when decoupled from the
    /// pool.
    pub fn ann_ef(&self) -> Option<usize> {
        self.ann_ef
    }

    /// True when the wrapped artifact carries an ANN index.
    pub fn ann_ready(&self) -> bool {
        self.artifact.ann().is_some()
    }

    /// Loads an artifact file and wraps it — the daemon's startup path.
    /// Mapped zero-copy where the platform allows, exactly like
    /// [`MatchArtifact::load`].
    pub fn load<P: AsRef<std::path::Path>>(path: P) -> Result<Self, PersistError> {
        Ok(Self::new(MatchArtifact::load(path)?))
    }

    /// The wrapped artifact.
    pub fn artifact(&self) -> &MatchArtifact {
        &self.artifact
    }

    /// Embedding dimensionality.
    pub fn dim(&self) -> usize {
        self.artifact.dim()
    }

    /// Number of target (first-corpus) documents answers rank over.
    pub fn targets(&self) -> usize {
        self.artifact.first_matrix().rows()
    }

    /// Number of query (second-corpus) documents addressable by id.
    pub fn queries(&self) -> usize {
        self.artifact.second_matrix().rows()
    }

    /// A [`QueryBlock`] of the artifact's dimensionality at the engine's
    /// default coalescing width — allocate once per scheduler, reuse via
    /// [`query_batch_with`](Matcher::query_batch_with).
    pub fn query_block(&self) -> QueryBlock {
        QueryBlock::new(self.dim())
    }

    /// Ranks the top-`k` targets for query document `id`. A present id
    /// whose embedding is missing yields an empty ranking (the engine's
    /// missing-query semantics); an out-of-range id is an error.
    pub fn query_by_id(&self, id: usize, k: usize) -> Result<Ranked, QueryError> {
        let mut out = self.query_batch(&[Query::ById(id)], k);
        out.pop().expect("one query in, one answer out")
    }

    /// Ranks the top-`k` targets for a raw out-of-corpus vector
    /// (normalized on entry, like every scored row).
    pub fn query_by_vector(&self, v: &[f32], k: usize) -> Result<Ranked, QueryError> {
        let mut out = self.query_batch(&[Query::ByVector(v.to_vec())], k);
        out.pop().expect("one query in, one answer out")
    }

    /// Embeds pre-processed tokens (mean of known term vectors, as in
    /// [`MatchArtifact::embed_tokens`]) and ranks the top-`k` targets.
    /// All-unknown tokens yield an empty ranking. Tokenize with
    /// `tdmatch-text`'s `Preprocessor::base_tokens` to match the fitted
    /// vocabulary.
    pub fn query_by_tokens<S: AsRef<str>>(&self, tokens: &[S], k: usize) -> Ranked {
        match self.artifact.embed_tokens(tokens) {
            Some(v) => self
                .query_by_vector(&v, k)
                .expect("embed_tokens returns artifact-dim vectors"),
            None => Vec::new(),
        }
    }

    /// Scores a coalesced batch with a fresh block; see
    /// [`query_batch_with`](Matcher::query_batch_with).
    pub fn query_batch(&self, queries: &[Query], k: usize) -> Vec<Result<Ranked, QueryError>> {
        self.query_batch_with(&mut self.query_block(), queries, k)
    }

    /// Scores a coalesced batch of requests through a caller-owned
    /// (reusable) [`QueryBlock`], chunking by the block's capacity.
    /// Each chunk is **one** call into the tiled batch kernel: the
    /// per-scan fixed costs and every streamed target block are shared
    /// by the whole chunk.
    ///
    /// Results come back in request order. A request that fails
    /// validation gets its `Err` slot; the others are unaffected.
    pub fn query_batch_with(
        &self,
        block: &mut QueryBlock,
        queries: &[Query],
        k: usize,
    ) -> Vec<Result<Ranked, QueryError>> {
        self.query_batch_with_mode(block, queries, k, self.ann_pool.is_some())
            .0
    }

    /// [`query_batch_with`](Matcher::query_batch_with) with the
    /// retrieval mode chosen per call: `ann = true` routes every query
    /// in the batch through the ANN index's widened pool (falling back
    /// to the exact scan when the artifact has no index), `ann = false`
    /// forces the exact scan regardless of the configured default. The
    /// daemon's scheduler uses this to honour the protocol's per-request
    /// `ann` flag.
    ///
    /// The returned [`AnnUsage`] reports how many queries actually
    /// pooled through the index and how many candidates they offered —
    /// zeros whenever the exact path ran.
    pub fn query_batch_with_mode(
        &self,
        block: &mut QueryBlock,
        queries: &[Query],
        k: usize,
        ann: bool,
    ) -> (Vec<Result<Ranked, QueryError>>, AnnUsage) {
        let use_ann = ann && self.ann_ready();
        let pool = self
            .ann_pool
            .unwrap_or(tdmatch_embed::ann::DEFAULT_POOL)
            .max(1);
        let ef = self.ann_ef.unwrap_or(pool);
        // One visited-set scratch reused across every ANN query of the
        // batch (instead of a ~rows-sized allocation per query).
        let scratch = std::cell::RefCell::new(tdmatch_embed::ann::SearchScratch::new());
        let mut usage = AnnUsage::default();
        let second = self.artifact.second_matrix();
        let mut out: Vec<Result<Ranked, QueryError>> = Vec::with_capacity(queries.len());
        for chunk in queries.chunks(block.capacity().max(1)) {
            block.clear();
            let mut errs: Vec<Option<QueryError>> = Vec::with_capacity(chunk.len());
            for q in chunk {
                let err = match q {
                    Query::ById(id) => {
                        if *id >= second.rows() {
                            block.push_missing();
                            Some(QueryError::UnknownId {
                                id: *id,
                                rows: second.rows(),
                            })
                        } else {
                            if second.is_valid(*id) {
                                // Verbatim gather: batched scores stay
                                // bit-identical to the one-shot path.
                                block.push_unit(second.row(*id));
                            } else {
                                block.push_missing();
                            }
                            None
                        }
                    }
                    Query::ByVector(v) => {
                        if v.len() != self.dim() {
                            block.push_missing();
                            Some(QueryError::DimMismatch {
                                got: v.len(),
                                want: self.dim(),
                            })
                        } else {
                            block.push_raw(v);
                            None
                        }
                    }
                };
                errs.push(err);
            }
            let ranked = if use_ann {
                let qm = block.matrix();
                let pooled = std::sync::atomic::AtomicU64::new(0);
                let ann_queries = std::sync::atomic::AtomicU64::new(0);
                let cand = |q: usize| {
                    let c = self
                        .artifact
                        .ann_pool_with(qm.row(q), pool, ef, &mut scratch.borrow_mut())
                        .expect("use_ann implies a stored index");
                    ann_queries.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    pooled.fetch_add(c.len() as u64, std::sync::atomic::Ordering::Relaxed);
                    c
                };
                let ranked =
                    top_k_matches_matrix(qm, self.artifact.first_matrix(), k, None, Some(&cand));
                usage.add(AnnUsage {
                    queries: ann_queries.into_inner(),
                    pooled: pooled.into_inner(),
                });
                ranked
            } else {
                top_k_matches_matrix(block.matrix(), self.artifact.first_matrix(), k, None, None)
            };
            for (result, err) in ranked.into_iter().take(chunk.len()).zip(errs) {
                out.push(match err {
                    Some(e) => Err(e),
                    None => Ok(result.ranked),
                });
            }
        }
        (out, usage)
    }
}

/// A hot-swappable [`Matcher`] slot: the daemon's current snapshot.
///
/// Long-lived servers need to pick up a newly published artifact without
/// restarting. `MatcherCell` holds the *current* matcher behind an
/// [`Arc`](std::sync::Arc); readers grab a clone
/// ([`get`](MatcherCell::get)) and use it
/// for the whole of one request or batch, while a publisher installs a
/// replacement ([`replace`](MatcherCell::replace) /
/// [`reload_from`](MatcherCell::reload_from)) at any time. Consequences:
///
/// * every in-flight batch is answered **entirely** by the snapshot it
///   started with — queries never straddle two snapshots;
/// * the old artifact (and its memory mapping, for zero-copy loads) is
///   dropped — and unmapped — only when the last outstanding clone
///   drops, so a swap never invalidates memory a reader still scores
///   against;
/// * a **failed** reload changes nothing: the old snapshot keeps
///   serving ([`reload_from`](MatcherCell::reload_from) returns the
///   error and leaves the cell untouched) — a bad artifact on disk must
///   never take a healthy daemon down.
///
/// [`generation`](MatcherCell::generation) counts successful installs,
/// so observers can tell *which* snapshot answered.
#[derive(Debug)]
pub struct MatcherCell {
    current: std::sync::RwLock<std::sync::Arc<Matcher>>,
    generation: std::sync::atomic::AtomicU64,
}

impl MatcherCell {
    /// A cell serving `matcher` (generation 0).
    pub fn new(matcher: Matcher) -> Self {
        MatcherCell {
            current: std::sync::RwLock::new(std::sync::Arc::new(matcher)),
            generation: std::sync::atomic::AtomicU64::new(0),
        }
    }

    /// The current snapshot. The returned handle stays valid (and its
    /// backing storage mapped) across any number of subsequent swaps.
    pub fn get(&self) -> std::sync::Arc<Matcher> {
        std::sync::Arc::clone(&self.current.read().expect("matcher cell poisoned"))
    }

    /// Installs `matcher` as the current snapshot and returns the
    /// previous one (still alive for any reader that grabbed it).
    pub fn replace(&self, matcher: Matcher) -> std::sync::Arc<Matcher> {
        let mut slot = self.current.write().expect("matcher cell poisoned");
        let old = std::mem::replace(&mut *slot, std::sync::Arc::new(matcher));
        self.generation
            .fetch_add(1, std::sync::atomic::Ordering::SeqCst);
        old
    }

    /// Loads an artifact file and installs it. On error the cell is
    /// **unchanged** — the previous snapshot keeps serving — making this
    /// the safe reload primitive for a live daemon.
    ///
    /// The outgoing snapshot's retrieval configuration (the ANN pool
    /// width and search beam, see [`Matcher::set_ann_pool`] /
    /// [`Matcher::set_ann_ef`]) carries over to the fresh matcher — a
    /// hot swap must not silently flip a daemon out of ANN mode.
    pub fn reload_from<P: AsRef<std::path::Path>>(&self, path: P) -> Result<(), PersistError> {
        let mut fresh = Matcher::load(path)?;
        let old = self.get();
        fresh.set_ann_pool(old.ann_pool());
        fresh.set_ann_ef(old.ann_ef());
        drop(old);
        drop(self.replace(fresh));
        Ok(())
    }

    /// Number of successful installs since construction.
    pub fn generation(&self) -> u64 {
        self.generation.load(std::sync::atomic::Ordering::SeqCst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn artifact() -> MatchArtifact {
        let targets: Vec<Option<Vec<f32>>> = (0..17)
            .map(|i| {
                if i % 5 == 3 {
                    None
                } else {
                    Some(vec![(i as f32 * 1.3).cos(), (i as f32 * 1.3).sin()])
                }
            })
            .collect();
        let queries: Vec<Option<Vec<f32>>> = (0..11)
            .map(|i| {
                if i == 4 {
                    None
                } else {
                    Some(vec![(i as f32 * 0.7).cos(), (i as f32 * 0.7).sin()])
                }
            })
            .collect();
        MatchArtifact::new(
            2,
            vec![("term".into(), vec![1.0, 0.0])],
            targets,
            queries,
        )
    }

    #[test]
    fn by_id_is_bit_identical_to_one_shot_matching() {
        let m = Matcher::new(artifact());
        let serial = m.artifact().match_top_k(6);
        for (id, want) in serial.iter().enumerate() {
            let got = m.query_by_id(id, 6).unwrap();
            assert_eq!(got.len(), want.ranked.len());
            for (g, w) in got.iter().zip(&want.ranked) {
                assert_eq!(g.0, w.0);
                assert_eq!(g.1.to_bits(), w.1.to_bits(), "id {id}");
            }
        }
    }

    #[test]
    fn batches_of_any_shape_equal_serial_answers() {
        let m = Matcher::new(artifact());
        let serial = m.artifact().match_top_k(4);
        // 11 queries through a capacity-8 block: two kernel calls, mixed
        // with an out-of-corpus vector and two error slots.
        let mut batch: Vec<Query> = (0..m.queries()).map(Query::ById).collect();
        batch.push(Query::ByVector(vec![0.5, 0.5]));
        batch.push(Query::ById(999));
        batch.push(Query::ByVector(vec![1.0])); // wrong dim
        let got = m.query_batch(&batch, 4);
        for id in 0..m.queries() {
            let ranked = got[id].as_ref().unwrap();
            assert_eq!(ranked.len(), serial[id].ranked.len(), "id {id}");
            for (g, w) in ranked.iter().zip(&serial[id].ranked) {
                assert_eq!((g.0, g.1.to_bits()), (w.0, w.1.to_bits()));
            }
        }
        let vec_answer = got[m.queries()].as_ref().unwrap();
        let direct = m.query_by_vector(&[0.5, 0.5], 4).unwrap();
        assert_eq!(vec_answer, &direct);
        assert_eq!(
            got[m.queries() + 1],
            Err(QueryError::UnknownId { id: 999, rows: 11 })
        );
        assert_eq!(
            got[m.queries() + 2],
            Err(QueryError::DimMismatch { got: 1, want: 2 })
        );
    }

    #[test]
    fn missing_query_embedding_ranks_empty_not_error() {
        let m = Matcher::new(artifact());
        assert_eq!(m.query_by_id(4, 5), Ok(Vec::new()));
    }

    #[test]
    fn tokens_route_through_embed_tokens() {
        let m = Matcher::new(artifact());
        let direct = {
            let v = m.artifact().embed_tokens(&["term"]).unwrap();
            m.query_by_vector(&v, 3).unwrap()
        };
        assert_eq!(m.query_by_tokens(&["term"], 3), direct);
        assert!(m.query_by_tokens(&["nope"], 3).is_empty());
    }

    #[test]
    fn reused_block_does_not_leak_state_between_batches() {
        let m = Matcher::new(artifact());
        let mut block = m.query_block();
        let full: Vec<Query> = (0..8).map(Query::ById).collect();
        let first = m.query_batch_with(&mut block, &full, 3);
        // A smaller second batch through the same block must not see the
        // first batch's rows.
        let second = m.query_batch_with(&mut block, &[Query::ById(0)], 3);
        assert_eq!(second[0], first[0]);
        let errs = m.query_batch_with(&mut block, &[Query::ById(usize::MAX)], 3);
        assert!(errs[0].is_err());
    }

    #[test]
    fn matcher_cell_swaps_without_touching_outstanding_handles() {
        let cell = MatcherCell::new(Matcher::new(artifact()));
        assert_eq!(cell.generation(), 0);
        let before = cell.get();
        let answer_before = before.query_by_id(0, 3).unwrap();

        // Install a different snapshot (same corpus shape, scaled rows —
        // different scores) while `before` is still in use.
        let swapped = MatchArtifact::new(
            2,
            vec![("term".into(), vec![0.0, 1.0])],
            vec![Some(vec![0.0, 1.0]), Some(vec![1.0, 0.0])],
            vec![Some(vec![0.2, 0.8])],
        );
        let old = cell.replace(Matcher::new(swapped));
        assert_eq!(cell.generation(), 1);

        // The outstanding handle still answers from the old snapshot,
        // bit-identically.
        let again = before.query_by_id(0, 3).unwrap();
        assert_eq!(answer_before, again);
        assert_eq!(old.queries(), before.queries());

        // New readers see the new snapshot.
        assert_eq!(cell.get().queries(), 1);
    }

    #[test]
    fn failed_reload_leaves_the_cell_serving_the_old_snapshot() {
        let dir = std::env::temp_dir();
        let good = dir.join(format!("tdmatch-cell-good-{}.tdz", std::process::id()));
        let bad = dir.join(format!("tdmatch-cell-bad-{}.tdz", std::process::id()));
        artifact().save(&good).unwrap();
        std::fs::write(&bad, b"TDZ1 this is not a container").unwrap();

        let cell = MatcherCell::new(Matcher::load(&good).unwrap());
        let baseline = cell.get().query_by_id(0, 4).unwrap();

        assert!(cell.reload_from(&bad).is_err());
        assert_eq!(cell.generation(), 0, "failed reload must not bump the generation");
        assert_eq!(cell.get().query_by_id(0, 4).unwrap(), baseline);

        // A missing file is equally harmless.
        assert!(cell.reload_from(dir.join("tdmatch-cell-nope.tdz")).is_err());
        assert_eq!(cell.get().query_by_id(0, 4).unwrap(), baseline);

        // And a successful reload still works afterwards.
        cell.reload_from(&good).unwrap();
        assert_eq!(cell.generation(), 1);
        assert_eq!(cell.get().query_by_id(0, 4).unwrap(), baseline);
        std::fs::remove_file(&good).ok();
        std::fs::remove_file(&bad).ok();
    }

    #[test]
    fn ann_mode_with_wide_pool_is_bit_identical_to_exact() {
        let mut a = artifact();
        a.build_ann(&tdmatch_embed::ann::HnswParams::default());
        let exact = Matcher::new(a.clone());
        // Pool ≥ corpus size ⇒ the widened pool is the whole corpus and
        // the rescorer reproduces the exact scan bit-for-bit.
        let ann = Matcher::new(a).with_ann_pool(1_000);
        let mut batch: Vec<Query> = (0..exact.queries()).map(Query::ById).collect();
        batch.push(Query::ByVector(vec![0.3, 0.7]));
        let want = exact.query_batch(&batch, 6);
        let got = ann.query_batch(&batch, 6);
        assert_eq!(want.len(), got.len());
        for (w, g) in want.iter().zip(&got) {
            let (w, g) = (w.as_ref().unwrap(), g.as_ref().unwrap());
            assert_eq!(w.len(), g.len());
            for (a, b) in w.iter().zip(g) {
                assert_eq!((a.0, a.1.to_bits()), (b.0, b.1.to_bits()));
            }
        }
    }

    #[test]
    fn per_batch_mode_overrides_the_default_and_reports_usage() {
        let mut a = artifact();
        a.build_ann(&tdmatch_embed::ann::HnswParams::default());
        let m = Matcher::new(a).with_ann_pool(4);
        let mut block = m.query_block();
        let batch = [Query::ById(0), Query::ById(4), Query::ById(2)];

        // Forced-exact batches never touch the index.
        let (_, usage) = m.query_batch_with_mode(&mut block, &batch, 3, false);
        assert_eq!(usage, AnnUsage::default());

        // ANN batches pool once per *valid* query (id 4 is missing).
        let (_, usage) = m.query_batch_with_mode(&mut block, &batch, 3, true);
        assert_eq!(usage.queries, 2);
        assert!(usage.pooled >= usage.queries);

        // Without an index, a requested-ANN batch falls back to exact.
        let plain = Matcher::new(artifact()).with_ann_pool(4);
        assert!(!plain.ann_ready());
        let (ranked, usage) = plain.query_batch_with_mode(&mut block, &batch, 3, true);
        assert_eq!(usage, AnnUsage::default());
        assert_eq!(ranked.len(), 3);
    }

    #[test]
    fn reload_preserves_the_ann_pool_configuration() {
        let dir = std::env::temp_dir();
        let path = dir.join(format!("tdmatch-cell-annpool-{}.tdz", std::process::id()));
        let mut a = artifact();
        a.build_ann(&tdmatch_embed::ann::HnswParams::default());
        a.save(&path).unwrap();

        let cell = MatcherCell::new(
            Matcher::load(&path).unwrap().with_ann_pool(128).with_ann_ef(512),
        );
        assert_eq!(cell.get().ann_pool(), Some(128));
        assert_eq!(cell.get().ann_ef(), Some(512));
        cell.reload_from(&path).unwrap();
        assert_eq!(
            cell.get().ann_pool(),
            Some(128),
            "hot swap must not drop ANN mode"
        );
        assert_eq!(
            cell.get().ann_ef(),
            Some(512),
            "hot swap must not drop the search beam"
        );
        assert!(cell.get().ann_ready());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn wide_ef_with_wide_pool_stays_bit_identical_to_exact() {
        let mut a = artifact();
        a.build_ann(&tdmatch_embed::ann::HnswParams::default());
        let exact = Matcher::new(a.clone());
        // Pool ≥ corpus takes the all-valid-rows shortcut regardless of
        // ef — the decoupled beam must not break the exactness pin.
        let ann = Matcher::new(a).with_ann_pool(1_000).with_ann_ef(7);
        let batch: Vec<Query> = (0..exact.queries()).map(Query::ById).collect();
        let want = exact.query_batch(&batch, 6);
        let got = ann.query_batch(&batch, 6);
        for (w, g) in want.iter().zip(&got) {
            let (w, g) = (w.as_ref().unwrap(), g.as_ref().unwrap());
            assert_eq!(w.len(), g.len());
            for (a, b) in w.iter().zip(g) {
                assert_eq!((a.0, a.1.to_bits()), (b.0, b.1.to_bits()));
            }
        }
    }

    #[test]
    fn query_errors_format_usefully() {
        let e = QueryError::UnknownId { id: 9, rows: 2 }.to_string();
        assert!(e.contains('9') && e.contains('2'));
        let e = QueryError::DimMismatch { got: 3, want: 80 }.to_string();
        assert!(e.contains('3') && e.contains("80"));
    }
}
