//! Supervised baselines: DITTO\*, DEEP-M\*, TAPAS\* (pairwise match
//! classifiers) and L-BE\* (multi-label classifier), trained with 5-fold
//! cross-validation over the labeled queries as in §V ("we always report
//! results for 5-fold cross validation").
//!
//! Each fold trains on the other folds' (query, positive target) pairs
//! plus sampled negatives, then ranks the held-out fold's queries — so
//! every labeled query is scored by a model that never saw it.

use std::time::Instant;

use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::{RngExt, SeedableRng};

use tdmatch_core::corpus::Corpus;
use tdmatch_embed::score::select_top_k;
use tdmatch_kb::PretrainedModel;
use tdmatch_nn::{Mlp, TrainConfig};

use crate::features::{FeatureSet, PairFeaturizer};
use crate::RankedMatches;

/// Options shared by the supervised baselines.
#[derive(Debug, Clone)]
pub struct SupervisedOptions {
    /// Cross-validation folds (paper: 5).
    pub folds: usize,
    /// Negative pairs sampled per positive pair.
    pub negatives_per_positive: usize,
    /// Classifier training epochs.
    pub epochs: usize,
    /// Adam learning rate.
    pub lr: f32,
    /// Hidden-layer width.
    pub hidden: usize,
    /// Seed for folds, negatives, and initialization.
    pub seed: u64,
}

impl Default for SupervisedOptions {
    fn default() -> Self {
        Self {
            folds: 5,
            negatives_per_positive: 4,
            epochs: 20,
            lr: 3e-3,
            hidden: 16,
            seed: 42,
        }
    }
}

/// Splits the labeled query indices into `n_folds` disjoint folds.
pub(crate) fn make_folds(labeled: &[usize], n_folds: usize, seed: u64) -> Vec<Vec<usize>> {
    let mut shuffled = labeled.to_vec();
    shuffled.shuffle(&mut SmallRng::seed_from_u64(seed));
    let n_folds = n_folds.clamp(2, shuffled.len().max(2));
    let mut folds = vec![Vec::new(); n_folds];
    for (i, q) in shuffled.into_iter().enumerate() {
        folds[i % n_folds].push(q);
    }
    folds
}

/// Runs a pairwise match classifier (DITTO\*/DEEP-M\*/TAPAS\* depending on
/// `set`) and returns rankings for all queries (unlabeled queries get
/// empty rankings; metrics skip them anyway).
#[allow(clippy::too_many_arguments)] // mirrors the paper's per-system knobs
pub fn run_classifier(
    method: &str,
    set: FeatureSet,
    first: &Corpus,
    second: &Corpus,
    truth: &[Vec<usize>],
    pretrained: &PretrainedModel,
    opts: &SupervisedOptions,
    k: usize,
) -> RankedMatches {
    let featurizer = PairFeaturizer::new(first, second, pretrained);
    let n_targets = featurizer.n_targets();
    let labeled: Vec<usize> = (0..second.len()).filter(|&q| !truth[q].is_empty()).collect();
    let folds = make_folds(&labeled, opts.folds, opts.seed);

    let mut per_query: Vec<Vec<(usize, f32)>> = vec![Vec::new(); second.len()];
    let mut train_secs = 0.0;
    let mut test_secs = 0.0;
    let mut rng = SmallRng::seed_from_u64(opts.seed ^ 0x5E6);

    for (fi, fold) in folds.iter().enumerate() {
        // Training pairs from all other folds.
        let t0 = Instant::now();
        let mut data: Vec<(Vec<f32>, Vec<f32>)> = Vec::new();
        for (fj, other) in folds.iter().enumerate() {
            if fj == fi {
                continue;
            }
            for &q in other {
                for &pos in &truth[q] {
                    data.push((featurizer.features(q, pos, set), vec![1.0]));
                    for _ in 0..opts.negatives_per_positive {
                        let neg = rng.random_range(0..n_targets);
                        if !truth[q].contains(&neg) {
                            data.push((featurizer.features(q, neg, set), vec![0.0]));
                        }
                    }
                }
            }
        }
        let mut mlp = Mlp::new(&[set.dim(), opts.hidden, 1], opts.seed ^ fi as u64);
        mlp.fit_sigmoid(
            &data,
            &TrainConfig {
                epochs: opts.epochs,
                lr: opts.lr,
                seed: opts.seed ^ fi as u64,
                ..Default::default()
            },
        );
        train_secs += t0.elapsed().as_secs_f64();

        // Score the held-out fold.
        let t1 = Instant::now();
        for &q in fold {
            per_query[q] = select_top_k(
                (0..n_targets).map(|t| (t, mlp.forward(&featurizer.features(q, t, set))[0])),
                k,
            );
        }
        test_secs += t1.elapsed().as_secs_f64();
    }

    RankedMatches {
        method: method.to_string(),
        per_query,
        train_secs,
        test_secs,
    }
}

/// Runs DITTO\*: pair classifier over serialized-sequence features.
pub fn run_ditto(
    first: &Corpus,
    second: &Corpus,
    truth: &[Vec<usize>],
    pretrained: &PretrainedModel,
    opts: &SupervisedOptions,
    k: usize,
) -> RankedMatches {
    run_classifier("DITTO*", FeatureSet::Ditto, first, second, truth, pretrained, opts, k)
}

/// Runs DEEP-M\*: pair classifier with attribute-wise comparators.
pub fn run_deepmatcher(
    first: &Corpus,
    second: &Corpus,
    truth: &[Vec<usize>],
    pretrained: &PretrainedModel,
    opts: &SupervisedOptions,
    k: usize,
) -> RankedMatches {
    run_classifier(
        "DEEP-M*",
        FeatureSet::DeepMatcher,
        first,
        second,
        truth,
        pretrained,
        opts,
        k,
    )
}

/// Runs TAPAS\*: pair classifier with table-aware (numeric/cell) signals.
pub fn run_tapas(
    first: &Corpus,
    second: &Corpus,
    truth: &[Vec<usize>],
    pretrained: &PretrainedModel,
    opts: &SupervisedOptions,
    k: usize,
) -> RankedMatches {
    run_classifier("TAPAS*", FeatureSet::Tapas, first, second, truth, pretrained, opts, k)
}

/// Runs L-BE\* — the fine-tuned BERT-large multi-label classifier:
/// input is the query's pre-trained sentence embedding, output one logit
/// per target document/concept.
pub fn run_lbe(
    first: &Corpus,
    second: &Corpus,
    truth: &[Vec<usize>],
    pretrained: &PretrainedModel,
    opts: &SupervisedOptions,
    k: usize,
) -> RankedMatches {
    let featurizer = PairFeaturizer::new(first, second, pretrained);
    let n_targets = featurizer.n_targets();
    let labeled: Vec<usize> = (0..second.len()).filter(|&q| !truth[q].is_empty()).collect();
    let folds = make_folds(&labeled, opts.folds, opts.seed);

    let mut per_query: Vec<Vec<(usize, f32)>> = vec![Vec::new(); second.len()];
    let mut train_secs = 0.0;
    let mut test_secs = 0.0;

    for (fi, fold) in folds.iter().enumerate() {
        let t0 = Instant::now();
        let mut data: Vec<(Vec<f32>, Vec<f32>)> = Vec::new();
        for (fj, other) in folds.iter().enumerate() {
            if fj == fi {
                continue;
            }
            for &q in other {
                let mut target_vec = vec![0.0f32; n_targets];
                for &pos in &truth[q] {
                    target_vec[pos] = 1.0;
                }
                data.push((featurizer.query_embedding(q).to_vec(), target_vec));
            }
        }
        let in_dim = pretrained.dim();
        let mut mlp = Mlp::new(&[in_dim, opts.hidden.max(32), n_targets], opts.seed ^ fi as u64);
        mlp.fit_sigmoid(
            &data,
            &TrainConfig {
                epochs: opts.epochs,
                lr: opts.lr,
                seed: opts.seed ^ fi as u64,
                ..Default::default()
            },
        );
        train_secs += t0.elapsed().as_secs_f64();

        let t1 = Instant::now();
        for &q in fold {
            let logits = mlp.forward(featurizer.query_embedding(q));
            per_query[q] = select_top_k(logits.into_iter().enumerate(), k);
        }
        test_secs += t1.elapsed().as_secs_f64();
    }

    RankedMatches {
        method: "L-BE*".to_string(),
        per_query,
        train_secs,
        test_secs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tdmatch_core::corpus::{Table, TextCorpus};

    /// A trivially learnable matching task: queries repeat their target's
    /// rare token.
    fn easy_task(n: usize) -> (Corpus, Corpus, Vec<Vec<usize>>) {
        let rows: Vec<Vec<String>> = (0..n)
            .map(|i| vec![format!("entity{i} marker{i}"), format!("{}", 100 + i)])
            .collect();
        let first = Corpus::Table(Table::new(
            "t",
            vec!["name".into(), "value".into()],
            rows,
        ));
        let docs: Vec<String> = (0..n)
            .map(|i| format!("the report mentions entity{i} marker{i} value {}", 100 + i))
            .collect();
        let truth: Vec<Vec<usize>> = (0..n).map(|i| vec![i]).collect();
        (first, second_of(docs), truth)
    }

    fn second_of(docs: Vec<String>) -> Corpus {
        Corpus::Text(TextCorpus::new(docs))
    }

    fn opts() -> SupervisedOptions {
        SupervisedOptions {
            epochs: 12,
            ..Default::default()
        }
    }

    #[test]
    fn ditto_learns_easy_matching() {
        let (first, second, truth) = easy_task(20);
        let model = PretrainedModel::standard(32, 1, 0.3);
        let r = run_ditto(&first, &second, &truth, &model, &opts(), 5);
        let top1_correct = (0..20)
            .filter(|&q| r.indices(q).first() == Some(&q))
            .count();
        assert!(top1_correct >= 12, "top-1 correct {top1_correct}/20");
        assert!(r.train_secs > 0.0);
    }

    #[test]
    fn folds_partition_labeled_queries() {
        let labeled: Vec<usize> = (0..23).collect();
        let folds = make_folds(&labeled, 5, 7);
        assert_eq!(folds.len(), 5);
        let total: usize = folds.iter().map(|f| f.len()).sum();
        assert_eq!(total, 23);
        let mut all: Vec<usize> = folds.concat();
        all.sort_unstable();
        assert_eq!(all, labeled);
    }

    #[test]
    fn lbe_ranks_seen_label_space() {
        let (first, second, truth) = easy_task(15);
        let model = PretrainedModel::standard(32, 1, 0.3);
        let r = run_lbe(&first, &second, &truth, &model, &opts(), 5);
        assert_eq!(r.per_query.len(), 15);
        // Every labeled query got a ranking.
        assert!(r.per_query.iter().all(|p| !p.is_empty()));
    }

    #[test]
    fn unlabeled_queries_get_empty_rankings() {
        let (first, mut_second, mut truth) = easy_task(10);
        truth.push(vec![]); // an extra unlabeled query
        let Corpus::Text(mut tc) = mut_second else { panic!() };
        tc.docs.push("an unlabeled document".into());
        let second = Corpus::Text(tc);
        let model = PretrainedModel::standard(32, 1, 0.3);
        let r = run_tapas(&first, &second, &truth, &model, &opts(), 3);
        assert!(r.per_query[10].is_empty());
    }
}
