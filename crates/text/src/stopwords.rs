//! Built-in English stop-word list.
//!
//! The paper removes stop-words during pre-processing (§II). The list below
//! is the classic Van Rijsbergen / SMART-style core set; it is compiled into
//! a perfect-lookup sorted table so membership checks are allocation-free.

/// Sorted list of stop words. Keep sorted: membership uses binary search.
static STOPWORDS: &[&str] = &[
    "a", "about", "above", "after", "again", "against", "all", "am", "an", "and", "any", "are",
    "aren't", "as", "at", "be", "because", "been", "before", "being", "below", "between", "both",
    "but", "by", "can", "cannot", "could", "couldn't", "did", "didn't", "do", "does", "doesn't",
    "doing", "don't", "down", "during", "each", "few", "for", "from", "further", "had", "hadn't",
    "has", "hasn't", "have", "haven't", "having", "he", "he'd", "he'll", "he's", "her", "here",
    "here's", "hers", "herself", "him", "himself", "his", "how", "how's", "i", "i'd", "i'll",
    "i'm", "i've", "if", "in", "into", "is", "isn't", "it", "it's", "its", "itself", "let's",
    "me", "more", "most", "mustn't", "my", "myself", "no", "nor", "not", "of", "off", "on",
    "once", "only", "or", "other", "ought", "our", "ours", "ourselves", "out", "over", "own",
    "same", "shan't", "she", "she'd", "she'll", "she's", "should", "shouldn't", "so", "some",
    "such", "than", "that", "that's", "the", "their", "theirs", "them", "themselves", "then",
    "there", "there's", "these", "they", "they'd", "they'll", "they're", "they've", "this",
    "those", "through", "to", "too", "under", "until", "up", "very", "was", "wasn't", "we",
    "we'd", "we'll", "we're", "we've", "were", "weren't", "what", "what's", "when", "when's",
    "where", "where's", "which", "while", "who", "who's", "whom", "why", "why's", "with",
    "won't", "would", "wouldn't", "you", "you'd", "you'll", "you're", "you've", "your", "yours",
    "yourself", "yourselves",
];

/// Returns `true` if `word` (already lower-cased) is an English stop word.
///
/// ```
/// use tdmatch_text::stopwords::is_stopword;
/// assert!(is_stopword("the"));
/// assert!(!is_stopword("willis"));
/// ```
#[inline]
pub fn is_stopword(word: &str) -> bool {
    STOPWORDS.binary_search(&word).is_ok()
}

/// Removes stop words from a token sequence, preserving order.
pub fn remove_stopwords(tokens: &mut Vec<String>) {
    tokens.retain(|t| !is_stopword(t));
}

/// Number of stop words in the built-in list (for diagnostics).
pub fn stopword_count() -> usize {
    STOPWORDS.len()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn list_is_sorted_and_unique() {
        for w in STOPWORDS.windows(2) {
            assert!(w[0] < w[1], "{} !< {}", w[0], w[1]);
        }
    }

    #[test]
    fn common_words_are_stopwords() {
        for w in ["the", "a", "and", "is", "of", "with"] {
            assert!(is_stopword(w), "{w} should be a stopword");
        }
    }

    #[test]
    fn content_words_are_not() {
        for w in ["movie", "audit", "tarantino", "pulp", "fiction"] {
            assert!(!is_stopword(w));
        }
    }

    #[test]
    fn removal_preserves_order() {
        let mut toks: Vec<String> = ["the", "sixth", "sense", "is", "great"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        remove_stopwords(&mut toks);
        assert_eq!(toks, vec!["sixth", "sense", "great"]);
    }
}
