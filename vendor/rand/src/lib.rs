//! Vendored, dependency-free stand-in for the `rand` crate.
//!
//! The build environment has no network access and no registry cache, so
//! this workspace vendors the exact API subset it consumes: [`Rng`] /
//! [`RngExt`] / [`SeedableRng`], the [`rngs::SmallRng`] generator
//! (xoshiro256++ seeded via SplitMix64), and the slice helpers in [`seq`].
//! Distribution quality matches the upstream crate for every use in this
//! repository (uniform integers, floats in `[0, 1)`, Bernoulli, slice
//! choice and Fisher–Yates shuffling); streams are deterministic per seed
//! but are not bit-compatible with upstream `rand`.

pub mod rngs;
pub mod seq;

/// Core random-number source: everything derives from `next_u64`.
///
/// Object-safe; generic helpers live in [`RngExt`], which is blanket
/// implemented (mirroring upstream's `RngCore` / `Rng` split).
pub trait Rng {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly random bits (upper half of [`next_u64`]).
    ///
    /// [`next_u64`]: Rng::next_u64
    #[inline]
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types samplable uniformly over their full domain via
/// [`RngExt::random`].
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f32 {
    #[inline]
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        // 24 high bits → [0, 1) with full float precision.
        (rng.next_u64() >> 40) as f32 / (1u64 << 24) as f32
    }
}

impl Standard for f64 {
    #[inline]
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl Standard for u64 {
    #[inline]
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    #[inline]
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    #[inline]
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Types with uniform sampling over a half-open `[lo, hi)` interval.
pub trait SampleUniform: Copy + PartialOrd {
    /// One uniform draw from `[lo, hi)`. Callers guarantee `lo < hi`.
    fn sample_range<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
    /// The value immediately after `self`, for inclusive-range support;
    /// `None` at the domain maximum (floats return `self`).
    fn successor(self) -> Option<Self>;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_range<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                let span = (hi as i128 - lo as i128) as u128;
                // Multiply-shift keeps the draw unbiased enough for every
                // span this workspace uses (all far below 2^64).
                let r = (rng.next_u64() as u128 * span) >> 64;
                (lo as i128 + r as i128) as $t
            }
            #[inline]
            fn successor(self) -> Option<Self> {
                self.checked_add(1)
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_range<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                let unit = <$t as Standard>::sample(rng);
                lo + unit * (hi - lo)
            }
            #[inline]
            fn successor(self) -> Option<Self> {
                Some(self)
            }
        }
    )*};
}

impl_sample_uniform_float!(f32, f64);

/// Range shapes accepted by [`RngExt::random_range`].
pub trait SampleRange<T> {
    /// One uniform draw; panics on an empty range.
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    #[inline]
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample from empty range");
        T::sample_range(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    #[inline]
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "cannot sample from empty range");
        match hi.successor() {
            Some(hi_excl) => T::sample_range(rng, lo, hi_excl),
            // hi is the domain maximum; fold the (negligible) edge in.
            None => T::sample_range(rng, lo, hi),
        }
    }
}

/// Convenience sampling methods over any [`Rng`] (blanket-implemented).
pub trait RngExt: Rng {
    /// A uniform draw over `T`'s standard domain (`[0, 1)` for floats).
    #[inline]
    fn random<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// A uniform draw from `range` (half-open or inclusive).
    #[inline]
    fn random_range<T: SampleUniform, Sr: SampleRange<T>>(&mut self, range: Sr) -> T {
        range.sample_from(self)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    #[inline]
    fn random_bool(&mut self, p: f64) -> bool {
        self.random::<f64>() < p
    }
}

impl<R: Rng + ?Sized> RngExt for R {}

/// Construction of deterministic generators from integer seeds.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::SmallRng;
    use crate::seq::{IndexedRandom, SliceRandom};

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SmallRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn random_range_stays_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: usize = rng.random_range(3..17);
            assert!((3..17).contains(&x));
            let y: i32 = rng.random_range(-5..=5);
            assert!((-5..=5).contains(&y));
            let f: f64 = rng.random_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn range_endpoints_are_reachable() {
        let mut rng = SmallRng::seed_from_u64(2);
        let mut seen = [false; 3];
        for _ in 0..200 {
            seen[rng.random_range(0usize..3)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn floats_are_unit_interval() {
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..1000 {
            let f = rng.random::<f32>();
            assert!((0.0..1.0).contains(&f));
            let d = rng.random::<f64>();
            assert!((0.0..1.0).contains(&d));
        }
    }

    #[test]
    fn random_bool_tracks_probability() {
        let mut rng = SmallRng::seed_from_u64(4);
        let hits = (0..10_000).filter(|_| rng.random_bool(0.3)).count();
        assert!((2_500..3_500).contains(&hits), "hits={hits}");
    }

    #[test]
    fn unsized_rng_is_usable_through_references() {
        fn takes_dyn_ish<R: Rng + ?Sized>(rng: &mut R) -> f32 {
            // The reborrow pattern the workspace relies on.
            (*rng).random::<f32>()
        }
        let mut rng = SmallRng::seed_from_u64(5);
        let f = takes_dyn_ish(&mut rng);
        assert!((0.0..1.0).contains(&f));
    }

    #[test]
    fn choose_and_shuffle_cover_elements() {
        let mut rng = SmallRng::seed_from_u64(6);
        let items = [10, 20, 30];
        assert!(items.choose(&mut rng).is_some());
        let empty: [i32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<u32>>());
    }
}
