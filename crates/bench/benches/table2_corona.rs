//! Table II — quality of match results for the CoronaCheck scenario
//! (Gen and Usr claim corpora).
//!
//! Methods: S-BE, W-RW, W-RW-EX, RANK*, DEEP-M*, DITTO*, TAPAS*.
//! Paper shape: W-RW(-EX) on top for both corpora; Usr harder than Gen;
//! supervised methods well below the unsupervised graph method.

use tdmatch_bench::{ranking_table, registry, scale_from_env, Method};

fn main() {
    let scale = scale_from_env();
    let methods = [
        Method::Sbe,
        Method::Wrw,
        Method::WrwEx,
        Method::Rank,
        Method::DeepMatcher,
        Method::Ditto,
        Method::Tapas,
    ];
    for (key, variant) in [("corona-gen", "Gen"), ("corona-usr", "Usr")] {
        let scenario = registry::by_key(key).expect("registered").generate(scale, 42);
        ranking_table(
            &format!("Table II — CoronaCheck {variant}"),
            &scenario,
            &methods,
            42,
        );
    }
}
