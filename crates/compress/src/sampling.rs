//! Plain random node / edge sampling baselines (§III-B cites node-,
//! edge-, and exploration-based samplers; these are the first two).

use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use tdmatch_graph::{Graph, NodeId};

use crate::subgraph::SubgraphBuilder;

/// Keeps a uniformly random `ratio` fraction of nodes (metadata always
/// kept) plus all edges between surviving nodes.
pub fn random_node_sample(g: &Graph, ratio: f64, seed: u64) -> Graph {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut data_nodes: Vec<NodeId> = g
        .nodes()
        .filter(|&n| !g.kind(n).is_metadata())
        .collect();
    data_nodes.shuffle(&mut rng);
    let keep = ((data_nodes.len() as f64) * ratio.clamp(0.0, 1.0)).round() as usize;
    data_nodes.truncate(keep);

    let mut kept = vec![false; g.id_bound()];
    for &n in &data_nodes {
        kept[n.index()] = true;
    }
    for m in g.metadata_nodes(None) {
        kept[m.index()] = true;
    }

    let mut builder = SubgraphBuilder::new(g);
    for n in g.nodes() {
        if kept[n.index()] {
            builder.add_node(n);
        }
    }
    for (a, b) in g.edges() {
        if kept[a.index()] && kept[b.index()] {
            builder.add_edge(a, b);
        }
    }
    builder.build()
}

/// Keeps a uniformly random `ratio` fraction of edges plus all incident
/// nodes (metadata always kept).
pub fn random_edge_sample(g: &Graph, ratio: f64, seed: u64) -> Graph {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut edges: Vec<(NodeId, NodeId)> = g.edges().collect();
    edges.shuffle(&mut rng);
    let keep = ((edges.len() as f64) * ratio.clamp(0.0, 1.0)).round() as usize;
    edges.truncate(keep);

    let mut builder = SubgraphBuilder::new(g);
    for (a, b) in edges {
        builder.add_edge(a, b);
    }
    for m in g.metadata_nodes(None) {
        builder.add_node(m);
    }
    builder.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tdmatch_graph::{CorpusSide, MetaKind};

    fn fixture() -> Graph {
        let mut g = Graph::new();
        let t = g.add_meta("t0", CorpusSide::First, MetaKind::Tuple, 0);
        let mut prev = t;
        for i in 0..40 {
            let d = g.intern_data(&format!("d{i}"));
            g.add_edge(prev, d);
            prev = d;
        }
        g
    }

    #[test]
    fn node_sampling_hits_target() {
        let g = fixture();
        let sg = random_node_sample(&g, 0.5, 3);
        // 40 data nodes * 0.5 + 1 metadata
        assert_eq!(sg.node_count(), 21);
        assert!(sg.meta_node("t0").is_some());
    }

    #[test]
    fn edge_sampling_hits_target() {
        let g = fixture();
        let sg = random_edge_sample(&g, 0.25, 3);
        assert_eq!(sg.edge_count(), 10);
        assert!(sg.meta_node("t0").is_some());
    }

    #[test]
    fn ratio_bounds_are_clamped() {
        let g = fixture();
        assert_eq!(random_node_sample(&g, 2.0, 1).node_count(), g.node_count());
        assert_eq!(random_edge_sample(&g, -1.0, 1).edge_count(), 0);
    }
}
