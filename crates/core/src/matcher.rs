//! Metadata matching (§IV-B): cosine top-k over metadata-node embeddings,
//! optional score combination with another method (Fig. 10), with a
//! parallel variant for large query sets.

use tdmatch_embed::vectors::cosine;

/// Ranked matches for one query document: `(target index, score)` sorted
/// by decreasing score.
#[derive(Debug, Clone, PartialEq)]
pub struct MatchResult {
    /// Index of the query document in its corpus.
    pub query: usize,
    /// Ranked target documents with scores.
    pub ranked: Vec<(usize, f32)>,
}

impl MatchResult {
    /// Just the ranked target indices.
    pub fn target_indices(&self) -> Vec<usize> {
        self.ranked.iter().map(|&(t, _)| t).collect()
    }
}

/// Ranks the top-`k` targets for every query by cosine similarity.
///
/// * `queries[i]` / `targets[j]` may be `None` when a document's metadata
///   node vanished (e.g. dropped by aggressive compression); missing
///   queries yield empty rankings, missing targets score `-1`.
/// * `extra_score`, when given, is averaged with the cosine — the Fig. 10
///   combination with SentenceBERT.
/// * `candidates`, when given, restricts scoring per query (blocking).
pub fn top_k_matches(
    queries: &[Option<Vec<f32>>],
    targets: &[Option<Vec<f32>>],
    k: usize,
    extra_score: Option<&dyn Fn(usize, usize) -> f32>,
    candidates: Option<&dyn Fn(usize) -> Vec<usize>>,
) -> Vec<MatchResult> {
    let mut results = Vec::with_capacity(queries.len());
    for (qi, q) in queries.iter().enumerate() {
        let mut scored: Vec<(usize, f32)> = Vec::new();
        if let Some(qv) = q {
            let cand: Vec<usize> = match candidates {
                Some(f) => f(qi),
                None => (0..targets.len()).collect(),
            };
            scored.reserve(cand.len());
            for ti in cand {
                let base = match &targets[ti] {
                    Some(tv) => cosine(qv, tv),
                    None => -1.0,
                };
                let score = match extra_score {
                    Some(f) => (base + f(qi, ti)) / 2.0,
                    None => base,
                };
                scored.push((ti, score));
            }
            scored.sort_by(|a, b| {
                b.1.partial_cmp(&a.1)
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then_with(|| a.0.cmp(&b.0))
            });
            scored.truncate(k);
        }
        results.push(MatchResult {
            query: qi,
            ranked: scored,
        });
    }
    results
}

/// Parallel [`top_k_matches`]: splits the queries over `threads` workers.
/// Output is identical to the sequential version (each query's ranking is
/// independent and the scorers are deterministic).
pub fn top_k_matches_parallel(
    queries: &[Option<Vec<f32>>],
    targets: &[Option<Vec<f32>>],
    k: usize,
    extra_score: Option<&(dyn Fn(usize, usize) -> f32 + Sync)>,
    candidates: Option<&(dyn Fn(usize) -> Vec<usize> + Sync)>,
    threads: usize,
) -> Vec<MatchResult> {
    let threads = threads.max(1).min(queries.len().max(1));
    if threads <= 1 {
        // Re-borrow the Sync trait objects as plain ones.
        let extra = extra_score.map(|f| f as &dyn Fn(usize, usize) -> f32);
        let cand = candidates.map(|f| f as &dyn Fn(usize) -> Vec<usize>);
        return top_k_matches(queries, targets, k, extra, cand);
    }
    let chunk = queries.len().div_ceil(threads);
    let mut results: Vec<MatchResult> = Vec::with_capacity(queries.len());
    crossbeam::thread::scope(|scope| {
        let handles: Vec<_> = queries
            .chunks(chunk)
            .enumerate()
            .map(|(ci, qchunk)| {
                scope.spawn(move |_| {
                    let offset = ci * chunk;
                    let extra = extra_score.map(|f| {
                        move |q: usize, t: usize| f(q + offset, t)
                    });
                    let cand = candidates.map(|f| move |q: usize| f(q + offset));
                    let mut local = top_k_matches(
                        qchunk,
                        targets,
                        k,
                        extra.as_ref().map(|f| f as &dyn Fn(usize, usize) -> f32),
                        cand.as_ref().map(|f| f as &dyn Fn(usize) -> Vec<usize>),
                    );
                    for r in &mut local {
                        r.query += offset;
                    }
                    local
                })
            })
            .collect();
        for h in handles {
            results.extend(h.join().expect("matcher worker panicked"));
        }
    })
    .expect("parallel matching scope failed");
    results
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(x: f32, y: f32) -> Option<Vec<f32>> {
        Some(vec![x, y])
    }

    #[test]
    fn ranks_by_cosine() {
        let queries = vec![v(1.0, 0.0)];
        let targets = vec![v(0.0, 1.0), v(1.0, 0.1), v(0.7, 0.7)];
        let r = top_k_matches(&queries, &targets, 2, None, None);
        assert_eq!(r[0].target_indices(), vec![1, 2]);
        assert!(r[0].ranked[0].1 > r[0].ranked[1].1);
    }

    #[test]
    fn missing_query_gives_empty_ranking() {
        let queries = vec![None];
        let targets = vec![v(1.0, 0.0)];
        let r = top_k_matches(&queries, &targets, 5, None, None);
        assert!(r[0].ranked.is_empty());
    }

    #[test]
    fn missing_target_ranks_last() {
        let queries = vec![v(1.0, 0.0)];
        let targets = vec![None, v(1.0, 0.0)];
        let r = top_k_matches(&queries, &targets, 2, None, None);
        assert_eq!(r[0].target_indices(), vec![1, 0]);
    }

    #[test]
    fn extra_score_can_flip_ranking() {
        let queries = vec![v(1.0, 0.0)];
        let targets = vec![v(1.0, 0.0), v(0.9, 0.1)];
        // Without combination target 0 wins…
        let plain = top_k_matches(&queries, &targets, 2, None, None);
        assert_eq!(plain[0].target_indices()[0], 0);
        // …but a strong external preference for target 1 flips it.
        let extra = |_q: usize, t: usize| if t == 1 { 1.0 } else { -1.0 };
        let combined = top_k_matches(&queries, &targets, 2, Some(&extra), None);
        assert_eq!(combined[0].target_indices()[0], 1);
    }

    #[test]
    fn candidates_restrict_scoring() {
        let queries = vec![v(1.0, 0.0)];
        let targets = vec![v(1.0, 0.0), v(1.0, 0.0), v(1.0, 0.0)];
        let cand = |_q: usize| vec![2usize];
        let r = top_k_matches(&queries, &targets, 3, None, Some(&cand));
        assert_eq!(r[0].target_indices(), vec![2]);
    }

    #[test]
    fn ties_break_by_index_for_determinism() {
        let queries = vec![v(1.0, 0.0)];
        let targets = vec![v(2.0, 0.0), v(1.0, 0.0)];
        let r = top_k_matches(&queries, &targets, 2, None, None);
        assert_eq!(r[0].target_indices(), vec![0, 1]);
    }

    #[test]
    fn parallel_matches_sequential_exactly() {
        let queries: Vec<Option<Vec<f32>>> = (0..37)
            .map(|i| v((i as f32 * 0.7).cos(), (i as f32 * 0.7).sin()))
            .collect();
        let targets: Vec<Option<Vec<f32>>> = (0..23)
            .map(|i| {
                if i % 7 == 3 {
                    None
                } else {
                    v((i as f32 * 1.3).cos(), (i as f32 * 1.3).sin())
                }
            })
            .collect();
        let seq = top_k_matches(&queries, &targets, 5, None, None);
        for threads in [1, 2, 4, 64] {
            let par =
                top_k_matches_parallel(&queries, &targets, 5, None, None, threads);
            assert_eq!(seq, par, "threads = {threads}");
        }
    }

    #[test]
    fn parallel_preserves_query_indices_and_scorers() {
        let queries: Vec<Option<Vec<f32>>> =
            (0..10).map(|_| v(1.0, 0.0)).collect();
        let targets: Vec<Option<Vec<f32>>> = (0..6).map(|_| v(1.0, 0.0)).collect();
        // Extra scorer keyed on the *global* query index: query q prefers
        // target q % 6. Blocking restricts to two candidates.
        let extra = |q: usize, t: usize| if t == q % 6 { 1.0 } else { 0.0 };
        let cand = |q: usize| vec![q % 6, (q + 1) % 6];
        let seq = top_k_matches(&queries, &targets, 1, Some(&extra), Some(&cand));
        let par = top_k_matches_parallel(&queries, &targets, 1, Some(&extra), Some(&cand), 3);
        assert_eq!(seq, par);
        for (q, r) in par.iter().enumerate() {
            assert_eq!(r.query, q);
            assert_eq!(r.target_indices()[0], q % 6);
        }
    }
}
