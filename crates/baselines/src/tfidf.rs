//! TF-IDF cosine and BM25 — the classic IR baselines (related work
//! mentions fine-tuned models "outperform traditional IR approaches, such
//! as BM25"); TF-IDF doubles as a feature for the supervised matchers.

use std::collections::HashMap;
use std::time::Instant;

use tdmatch_core::corpus::Corpus;
use tdmatch_text::Preprocessor;

use crate::serialize::doc_tokens;
use crate::{rank_all, RankedMatches};

/// A TF-IDF vector space fitted on one document collection (the targets).
#[derive(Debug, Clone)]
pub struct TfIdfIndex {
    /// token → dense dimension
    vocab: HashMap<String, usize>,
    /// idf per dense dimension
    idf: Vec<f64>,
    /// Sparse document vectors: sorted `(dim, weight)` with L2 norm 1.
    docs: Vec<Vec<(usize, f64)>>,
    /// Document lengths in tokens (for BM25).
    doc_len: Vec<usize>,
    avg_len: f64,
    /// Raw term frequencies per document (for BM25).
    tf: Vec<HashMap<usize, usize>>,
}

impl TfIdfIndex {
    /// Fits the index on all documents of `corpus`.
    pub fn fit(corpus: &Corpus, pre: &Preprocessor) -> Self {
        let docs_tokens: Vec<Vec<String>> = (0..corpus.len())
            .map(|i| doc_tokens(corpus, i, pre))
            .collect();
        Self::fit_tokens(&docs_tokens)
    }

    /// Fits the index on pre-tokenized documents.
    pub fn fit_tokens(docs_tokens: &[Vec<String>]) -> Self {
        let n = docs_tokens.len().max(1);
        // Document frequencies.
        let mut df: HashMap<&str, usize> = HashMap::new();
        for doc in docs_tokens {
            let mut seen = std::collections::HashSet::new();
            for t in doc {
                if seen.insert(t.as_str()) {
                    *df.entry(t).or_insert(0) += 1;
                }
            }
        }
        let mut vocab: HashMap<String, usize> = HashMap::new();
        let mut idf_table: Vec<f64> = Vec::with_capacity(df.len());
        let mut sorted_terms: Vec<&&str> = df.keys().collect();
        sorted_terms.sort();
        for term in sorted_terms {
            let dim = vocab.len();
            vocab.insert(term.to_string(), dim);
            idf_table.push(((n as f64 + 1.0) / (df[*term] as f64 + 1.0)).ln() + 1.0);
        }
        let mut docs = Vec::with_capacity(docs_tokens.len());
        let mut tf_all = Vec::with_capacity(docs_tokens.len());
        let mut doc_len = Vec::with_capacity(docs_tokens.len());
        for doc in docs_tokens {
            let mut tf: HashMap<usize, usize> = HashMap::new();
            for t in doc {
                if let Some(&dim) = vocab.get(t) {
                    *tf.entry(dim).or_insert(0) += 1;
                }
            }
            let mut vec: Vec<(usize, f64)> = tf
                .iter()
                .map(|(&dim, &f)| (dim, f as f64 * idf_table[dim]))
                .collect();
            vec.sort_unstable_by_key(|&(d, _)| d);
            let norm: f64 = vec.iter().map(|&(_, w)| w * w).sum::<f64>().sqrt();
            if norm > 0.0 {
                for (_, w) in &mut vec {
                    *w /= norm;
                }
            }
            doc_len.push(doc.len());
            docs.push(vec);
            tf_all.push(tf);
        }
        let avg_len = doc_len.iter().sum::<usize>() as f64 / n as f64;
        Self {
            vocab,
            idf: idf_table,
            docs,
            doc_len,
            avg_len,
            tf: tf_all,
        }
    }

    /// Encodes an arbitrary token list into the fitted space (L2
    /// normalized sparse vector).
    pub fn encode<S: AsRef<str>>(&self, tokens: &[S]) -> Vec<(usize, f64)> {
        let mut tf: HashMap<usize, usize> = HashMap::new();
        for t in tokens {
            if let Some(&dim) = self.vocab.get(t.as_ref()) {
                *tf.entry(dim).or_insert(0) += 1;
            }
        }
        let mut vec: Vec<(usize, f64)> = tf
            .iter()
            .map(|(&dim, &f)| (dim, f as f64 * self.idf[dim]))
            .collect();
        vec.sort_unstable_by_key(|&(d, _)| d);
        let norm: f64 = vec.iter().map(|&(_, w)| w * w).sum::<f64>().sqrt();
        if norm > 0.0 {
            for (_, w) in &mut vec {
                *w /= norm;
            }
        }
        vec
    }

    /// Cosine between an encoded query and indexed document `t`.
    pub fn cosine(&self, query: &[(usize, f64)], t: usize) -> f64 {
        sparse_dot(query, &self.docs[t])
    }

    /// Okapi BM25 score of `query_tokens` against document `t`
    /// (k1 = 1.2, b = 0.75).
    pub fn bm25<S: AsRef<str>>(&self, query_tokens: &[S], t: usize) -> f64 {
        const K1: f64 = 1.2;
        const B: f64 = 0.75;
        let mut score = 0.0;
        for tok in query_tokens {
            let Some(&dim) = self.vocab.get(tok.as_ref()) else {
                continue;
            };
            let idf = self.idf[dim];
            let f = *self.tf[t].get(&dim).unwrap_or(&0) as f64;
            if f == 0.0 {
                continue;
            }
            let len_norm = 1.0 - B + B * self.doc_len[t] as f64 / self.avg_len.max(1.0);
            score += idf * f * (K1 + 1.0) / (f + K1 * len_norm);
        }
        score
    }

    /// Number of indexed documents.
    pub fn len(&self) -> usize {
        self.docs.len()
    }

    /// True when fitted over zero documents.
    pub fn is_empty(&self) -> bool {
        self.docs.is_empty()
    }
}

fn sparse_dot(a: &[(usize, f64)], b: &[(usize, f64)]) -> f64 {
    let (mut i, mut j, mut acc) = (0usize, 0usize, 0.0);
    while i < a.len() && j < b.len() {
        match a[i].0.cmp(&b[j].0) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                acc += a[i].1 * b[j].1;
                i += 1;
                j += 1;
            }
        }
    }
    acc
}

/// Runs the TF-IDF cosine baseline.
pub fn run_tfidf(first: &Corpus, second: &Corpus, k: usize) -> RankedMatches {
    let pre = Preprocessor::default();
    let t0 = Instant::now();
    let index = TfIdfIndex::fit(first, &pre);
    let train_secs = t0.elapsed().as_secs_f64();
    let t1 = Instant::now();
    let queries: Vec<Vec<(usize, f64)>> = (0..second.len())
        .map(|i| index.encode(&doc_tokens(second, i, &pre)))
        .collect();
    let per_query = rank_all(second.len(), first.len(), k, |q, t| {
        index.cosine(&queries[q], t) as f32
    });
    RankedMatches {
        method: "TF-IDF".to_string(),
        per_query,
        train_secs,
        test_secs: t1.elapsed().as_secs_f64(),
    }
}

/// Runs the BM25 baseline.
pub fn run_bm25(first: &Corpus, second: &Corpus, k: usize) -> RankedMatches {
    let pre = Preprocessor::default();
    let t0 = Instant::now();
    let index = TfIdfIndex::fit(first, &pre);
    let train_secs = t0.elapsed().as_secs_f64();
    let t1 = Instant::now();
    let queries: Vec<Vec<String>> = (0..second.len())
        .map(|i| doc_tokens(second, i, &pre))
        .collect();
    let per_query = rank_all(second.len(), first.len(), k, |q, t| {
        index.bm25(&queries[q], t) as f32
    });
    RankedMatches {
        method: "BM25".to_string(),
        per_query,
        train_secs,
        test_secs: t1.elapsed().as_secs_f64(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tdmatch_core::corpus::TextCorpus;

    fn corpora() -> (Corpus, Corpus) {
        (
            Corpus::Text(TextCorpus::new(vec![
                "tarantino pulp fiction masterpiece".into(),
                "shyamalan sixth sense thriller twist".into(),
                "generic movie words everywhere".into(),
            ])),
            Corpus::Text(TextCorpus::new(vec![
                "a twisty thriller from shyamalan".into(),
            ])),
        )
    }

    #[test]
    fn tfidf_ranks_lexical_match_first() {
        let (first, second) = corpora();
        let r = run_tfidf(&first, &second, 3);
        assert_eq!(r.indices(0)[0], 1);
    }

    #[test]
    fn bm25_agrees_on_easy_case() {
        let (first, second) = corpora();
        let r = run_bm25(&first, &second, 3);
        assert_eq!(r.indices(0)[0], 1);
        assert!(r.per_query[0][0].1 > 0.0);
    }

    #[test]
    fn rare_terms_weigh_more_than_common() {
        let docs: Vec<Vec<String>> = vec![
            vec!["common".into(), "rare".into()],
            vec!["common".into(), "other".into()],
            vec!["common".into(), "third".into()],
        ];
        let idx = TfIdfIndex::fit_tokens(&docs);
        let q = idx.encode(&["rare"]);
        assert!(idx.cosine(&q, 0) > idx.cosine(&q, 1));
        let qc = idx.encode(&["common"]);
        // "common" hits everything equally-ish.
        assert!((idx.cosine(&qc, 0) - idx.cosine(&qc, 1)).abs() < 0.3);
    }

    #[test]
    fn oov_query_scores_zero() {
        let docs: Vec<Vec<String>> = vec![vec!["a".into()]];
        let idx = TfIdfIndex::fit_tokens(&docs);
        let q = idx.encode(&["zzz"]);
        assert!(q.is_empty());
        assert_eq!(idx.cosine(&q, 0), 0.0);
        assert_eq!(idx.bm25(&["zzz"], 0), 0.0);
    }

    #[test]
    fn sparse_dot_alignment() {
        let a = vec![(0usize, 1.0), (3, 2.0)];
        let b = vec![(1usize, 5.0), (3, 4.0)];
        assert_eq!(sparse_dot(&a, &b), 8.0);
    }
}
