//! Synthetic WordNet: synonym sets over the shared lexicon.
//!
//! Used (a) as an expansion resource for concept-heavy corpora and (b) as
//! the synonym dictionary that calibrates the merging threshold γ (§II-C:
//! "we use a list of 17K synonym terms from WordNet and define γ as the
//! average cosine similarity between their vectors").

use std::collections::HashMap;

use tdmatch_text::stem::stem;

use crate::{KnowledgeBase, Relation};

/// A synonym dictionary keyed by stemmed surface form (graph node labels
/// are stemmed, so lookups must be too).
#[derive(Debug, Clone, Default)]
pub struct SyntheticWordNet {
    /// stemmed word → stemmed synonyms (excluding itself).
    synonyms: HashMap<String, Vec<String>>,
    /// Unstemmed synonym pairs, for γ calibration.
    pairs: Vec<(String, String)>,
}

impl SyntheticWordNet {
    /// Builds a WordNet from explicit synonym groups.
    pub fn from_groups<S: AsRef<str>>(groups: &[Vec<S>]) -> Self {
        let mut wn = SyntheticWordNet::default();
        for group in groups {
            let stems: Vec<String> = group.iter().map(|w| stem(w.as_ref())).collect();
            for (i, s) in stems.iter().enumerate() {
                let others: Vec<String> = stems
                    .iter()
                    .enumerate()
                    .filter(|&(j, o)| j != i && o != s)
                    .map(|(_, o)| o.clone())
                    .collect();
                wn.synonyms.entry(s.clone()).or_default().extend(others);
            }
            for i in 0..group.len() {
                for j in i + 1..group.len() {
                    wn.pairs.push((
                        group[i].as_ref().to_string(),
                        group[j].as_ref().to_string(),
                    ));
                }
            }
        }
        for syns in wn.synonyms.values_mut() {
            syns.sort();
            syns.dedup();
        }
        wn
    }

    /// The standard WordNet over [`crate::lexicon::SYNONYM_GROUPS`].
    pub fn standard() -> Self {
        let groups: Vec<Vec<&str>> = crate::lexicon::SYNONYM_GROUPS
            .iter()
            .map(|g| g.to_vec())
            .collect();
        Self::from_groups(&groups)
    }

    /// Stemmed synonyms of a (stemmed or raw) word.
    pub fn synonyms(&self, word: &str) -> &[String] {
        self.synonyms
            .get(word)
            .or_else(|| self.synonyms.get(&stem(word)))
            .map(|v| v.as_slice())
            .unwrap_or(&[])
    }

    /// All unstemmed synonym pairs, for threshold calibration.
    pub fn synonym_pairs(&self) -> &[(String, String)] {
        &self.pairs
    }
}

impl KnowledgeBase for SyntheticWordNet {
    fn relations(&self, term: &str) -> Vec<Relation> {
        self.synonyms(term)
            .iter()
            .map(|s| Relation::new("synonym", s.clone()))
            .collect()
    }

    fn subject_count(&self) -> usize {
        self.synonyms.len()
    }

    fn name(&self) -> &str {
        "wordnet"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_covers_lexicon_groups() {
        let wn = SyntheticWordNet::standard();
        assert!(!wn.synonyms("big").is_empty());
        assert!(wn.synonyms("big").contains(&"larg".to_string())); // stemmed "large"
    }

    #[test]
    fn lookup_works_on_raw_and_stemmed_forms() {
        let wn = SyntheticWordNet::from_groups(&[vec!["increase", "grow"]]);
        // "increase" stems to "increas".
        assert!(!wn.synonyms("increas").is_empty());
        assert!(!wn.synonyms("increase").is_empty());
    }

    #[test]
    fn pairs_enumerate_group_combinations() {
        let wn = SyntheticWordNet::from_groups(&[vec!["a1", "a2", "a3"]]);
        assert_eq!(wn.synonym_pairs().len(), 3);
    }

    #[test]
    fn unknown_word_has_no_synonyms() {
        let wn = SyntheticWordNet::standard();
        assert!(wn.synonyms("zzzzz").is_empty());
        assert!(wn.relations("zzzzz").is_empty());
    }

    #[test]
    fn kb_interface_reports_relations() {
        let wn = SyntheticWordNet::from_groups(&[vec!["movie", "film"]]);
        let rels = wn.relations("movie");
        assert_eq!(rels.len(), 1);
        assert_eq!(rels[0].predicate, "synonym");
    }
}
