//! `prop::sample` strategies.

use std::fmt;

use crate::{Strategy, TestRng};

/// Strategy choosing uniformly from a fixed list.
#[derive(Debug, Clone)]
pub struct Select<T> {
    options: Vec<T>,
}

impl<T: Clone + fmt::Debug> Strategy for Select<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        assert!(!self.options.is_empty(), "select() over an empty list");
        self.options[rng.below(self.options.len() as u64) as usize].clone()
    }
}

/// `prop::sample::select(options)`: one uniformly chosen element.
pub fn select<T: Clone + fmt::Debug>(options: Vec<T>) -> Select<T> {
    Select { options }
}
