//! Binary graph persistence, plus the encoding utilities shared with
//! `tdmatch-core`'s match artifacts.
//!
//! Expansion is the most expensive pipeline stage on entity-heavy corpora
//! (the paper reports 79k seconds for IMDb + DBpedia), so the expanded /
//! compressed graph is worth caching. The format mirrors the artifact
//! format's conventions: magic, little-endian integers, and a trailing
//! CRC-32 so corruption is a load-time error rather than silent garbage.
//!
//! ```text
//! magic   b"TDG1"
//! version u32 (currently 1)
//! nodes   u32 count, then per live node:
//!           u8 tag (0 = Data, 1 = External, 2 = Meta)
//!           if Meta: u8 side (0/1), u8 meta-kind (0..=3), u32 index
//!           u32 label length, UTF-8 label
//! edges   u32 count, then per edge: u32 a, u32 b, u8 edge-kind
//!         (a/b are positions in the node section, i.e. dense new ids)
//! crc32   u32 over everything before it
//! ```
//!
//! Node ids are *not* preserved: tombstones are skipped and live nodes are
//! renumbered densely. All label-based lookups (`data_node`, `meta_node`)
//! behave identically after a round-trip.
//!
//! `TDG1` is a *decode* format — it rebuilds the mutable [`Graph`] for
//! resumed training, so there is nothing to map in place. The zero-copy,
//! mmap-served path for read-only warm starts is the `TDZ1` container
//! ([`crate::container`], spec in `docs/FORMAT.md`): frozen
//! [`CsrGraph`](crate::CsrGraph) snapshots and match artifacts go
//! through [`crate::container::Storage::open`], which shares one
//! physical copy across serving processes.

use std::io::{Read, Write};
use std::path::Path;

use crate::edge::EdgeKind;
use crate::graph::Graph;
use crate::node::{CorpusSide, MetaKind, NodeId, NodeKind};

// The codec primitives used to live here; they moved to [`crate::codec`]
// when the TDZ1 container started sharing them. Re-exported so existing
// `persist::{crc32, ByteReader, …}` paths keep working.
pub use crate::codec::{crc32, put_f32s, put_u32, put_u64, ByteReader, DecodeError};

/// Current graph format version.
pub const GRAPH_FORMAT_VERSION: u32 = 1;

const MAGIC: [u8; 4] = *b"TDG1";

fn kind_tag(kind: NodeKind, buf: &mut Vec<u8>) {
    match kind {
        NodeKind::Data => buf.push(0),
        NodeKind::External => buf.push(1),
        NodeKind::Meta { side, kind, index } => {
            buf.push(2);
            buf.push(match side {
                CorpusSide::First => 0,
                CorpusSide::Second => 1,
            });
            buf.push(match kind {
                MetaKind::Tuple => 0,
                MetaKind::Attribute => 1,
                MetaKind::TextDoc => 2,
                MetaKind::Taxonomy => 3,
            });
            put_u32(buf, index);
        }
    }
}

fn edge_kind_tag(kind: EdgeKind) -> u8 {
    kind.index() as u8
}

fn edge_kind_from_tag(tag: u8) -> Result<EdgeKind, DecodeError> {
    EdgeKind::ALL
        .get(tag as usize)
        .copied()
        .ok_or(DecodeError::Invalid("edge kind tag"))
}

/// Serializes a graph (live nodes only) into a writer.
pub fn write_graph<W: Write>(g: &Graph, w: &mut W) -> Result<(), DecodeError> {
    let mut buf: Vec<u8> = Vec::new();
    buf.extend_from_slice(&MAGIC);
    put_u32(&mut buf, GRAPH_FORMAT_VERSION);

    // Node section: dense renumbering in id order.
    let nodes: Vec<NodeId> = g.nodes().collect();
    let mut remap: Vec<u32> = vec![u32::MAX; g.id_bound()];
    for (new_id, &n) in nodes.iter().enumerate() {
        remap[n.index()] = new_id as u32;
    }
    put_u32(&mut buf, nodes.len() as u32);
    for &n in &nodes {
        kind_tag(g.kind(n), &mut buf);
        let label = g.label(n);
        put_u32(&mut buf, label.len() as u32);
        buf.extend_from_slice(label.as_bytes());
    }

    // Edge section.
    put_u32(&mut buf, g.edge_count() as u32);
    for (a, b, kind) in g.edges_with_kinds() {
        put_u32(&mut buf, remap[a.index()]);
        put_u32(&mut buf, remap[b.index()]);
        buf.push(edge_kind_tag(kind));
    }

    let crc = crc32(&buf);
    put_u32(&mut buf, crc);
    w.write_all(&buf)?;
    Ok(())
}

/// Deserializes a graph, verifying magic, version, and checksum.
pub fn read_graph<R: Read>(r: &mut R) -> Result<Graph, DecodeError> {
    let mut buf = Vec::new();
    r.read_to_end(&mut buf)?;
    if buf.len() < MAGIC.len() + 8 || buf[..4] != MAGIC {
        return Err(DecodeError::BadMagic);
    }
    let body_len = buf.len() - 4;
    let stored = u32::from_le_bytes(buf[body_len..].try_into().unwrap());
    if crc32(&buf[..body_len]) != stored {
        return Err(DecodeError::Corrupt);
    }
    let mut cur = ByteReader::new(&buf[..body_len], 4);
    let version = cur.u32()?;
    if version != GRAPH_FORMAT_VERSION {
        return Err(DecodeError::UnsupportedVersion { found: version });
    }

    let n_nodes = cur.u32()? as usize;
    let mut g = Graph::with_capacity(n_nodes.min(1 << 24));
    let mut ids: Vec<NodeId> = Vec::with_capacity(n_nodes.min(1 << 24));
    for _ in 0..n_nodes {
        let tag = cur.u8()?;
        let id = match tag {
            0 => {
                let label = cur.string()?;
                g.intern_data(&label)
            }
            1 => {
                let label = cur.string()?;
                g.intern_external(&label)
            }
            2 => {
                let side = match cur.u8()? {
                    0 => CorpusSide::First,
                    1 => CorpusSide::Second,
                    _ => return Err(DecodeError::Invalid("corpus side tag")),
                };
                let kind = match cur.u8()? {
                    0 => MetaKind::Tuple,
                    1 => MetaKind::Attribute,
                    2 => MetaKind::TextDoc,
                    3 => MetaKind::Taxonomy,
                    _ => return Err(DecodeError::Invalid("meta kind tag")),
                };
                let index = cur.u32()?;
                let label = cur.string()?;
                g.add_meta(&label, side, kind, index)
            }
            _ => return Err(DecodeError::Invalid("node kind tag")),
        };
        ids.push(id);
    }

    let n_edges = cur.u32()? as usize;
    for _ in 0..n_edges {
        let a = cur.u32()? as usize;
        let b = cur.u32()? as usize;
        let kind = edge_kind_from_tag(cur.u8()?)?;
        let (Some(&na), Some(&nb)) = (ids.get(a), ids.get(b)) else {
            return Err(DecodeError::Invalid("edge references missing node"));
        };
        g.add_edge_typed(na, nb, kind);
    }
    Ok(g)
}

/// Saves a graph to a file path.
pub fn save_graph<P: AsRef<Path>>(g: &Graph, path: P) -> Result<(), DecodeError> {
    let mut f = std::fs::File::create(path)?;
    write_graph(g, &mut f)
}

/// Loads a graph from a file path.
pub fn load_graph<P: AsRef<Path>>(path: P) -> Result<Graph, DecodeError> {
    let mut f = std::fs::File::open(path)?;
    read_graph(&mut f)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Graph {
        let mut g = Graph::new();
        let t0 = g.add_meta("A:doc0", CorpusSide::First, MetaKind::Tuple, 0);
        let c0 = g.add_meta("A:col0", CorpusSide::First, MetaKind::Attribute, 0);
        let p0 = g.add_meta("B:doc0", CorpusSide::Second, MetaKind::TextDoc, 0);
        let tax = g.add_meta("A:doc1", CorpusSide::First, MetaKind::Taxonomy, 1);
        let willis = g.intern_data("willis");
        let pulp = g.intern_external("pulp fiction");
        g.add_edge_typed(t0, willis, EdgeKind::Contains);
        g.add_edge_typed(c0, willis, EdgeKind::ColumnOf);
        g.add_edge_typed(p0, willis, EdgeKind::Contains);
        g.add_edge_typed(willis, pulp, EdgeKind::External);
        g.add_edge_typed(t0, tax, EdgeKind::Hierarchy);
        // A tombstone: removed nodes must not be persisted.
        let gone = g.intern_data("ephemeral");
        g.add_edge(gone, willis);
        g.remove_node(gone);
        g
    }

    fn roundtrip(g: &Graph) -> Graph {
        let mut buf = Vec::new();
        write_graph(g, &mut buf).unwrap();
        read_graph(&mut buf.as_slice()).unwrap()
    }

    fn assert_same_structure(a: &Graph, b: &Graph) {
        assert_eq!(a.node_count(), b.node_count());
        assert_eq!(a.edge_count(), b.edge_count());
        for n in a.nodes() {
            let label = a.label(n);
            let nb = match a.kind(n) {
                NodeKind::Meta { .. } => b.meta_node(label),
                _ => b.data_node(label),
            }
            .unwrap_or_else(|| panic!("node {label} missing after roundtrip"));
            assert_eq!(a.kind(n), b.kind(nb), "kind of {label}");
            assert_eq!(a.degree(n), b.degree(nb), "degree of {label}");
            for (&m, &kind) in a.neighbors(n).iter().zip(a.neighbor_kinds(n)) {
                let mlabel = a.label(m);
                let mb = match a.kind(m) {
                    NodeKind::Meta { .. } => b.meta_node(mlabel),
                    _ => b.data_node(mlabel),
                }
                .unwrap();
                assert_eq!(b.edge_kind(nb, mb), Some(kind), "edge {label}-{mlabel}");
            }
        }
    }

    #[test]
    fn roundtrip_preserves_structure_kinds_and_drops_tombstones() {
        let g = sample();
        let h = roundtrip(&g);
        assert_same_structure(&g, &h);
        assert!(h.data_node("ephemeral").is_none());
    }

    #[test]
    fn empty_graph_roundtrips() {
        let g = Graph::new();
        let h = roundtrip(&g);
        assert_eq!(h.node_count(), 0);
        assert_eq!(h.edge_count(), 0);
    }

    #[test]
    fn double_roundtrip_is_stable() {
        let g = sample();
        let h1 = roundtrip(&g);
        let h2 = roundtrip(&h1);
        assert_same_structure(&h1, &h2);
        // Second encoding is byte-identical (dense ids are now canonical).
        let (mut b1, mut b2) = (Vec::new(), Vec::new());
        write_graph(&h1, &mut b1).unwrap();
        write_graph(&h2, &mut b2).unwrap();
        assert_eq!(b1, b2);
    }

    #[test]
    fn corruption_and_truncation_are_detected() {
        let mut buf = Vec::new();
        write_graph(&sample(), &mut buf).unwrap();
        for pos in 0..buf.len() {
            let mut bad = buf.clone();
            bad[pos] ^= 0x10;
            assert!(
                read_graph(&mut bad.as_slice()).is_err(),
                "bit flip at {pos} loaded silently"
            );
        }
        for cut in [0usize, 3, 8, buf.len() / 2, buf.len() - 1] {
            assert!(read_graph(&mut &buf[..cut]).is_err(), "truncation {cut}");
        }
    }

    #[test]
    fn unknown_version_is_rejected() {
        let mut buf = Vec::new();
        write_graph(&sample(), &mut buf).unwrap();
        buf[4..8].copy_from_slice(&7u32.to_le_bytes());
        let body = buf.len() - 4;
        let crc = crc32(&buf[..body]);
        let crc_bytes = crc.to_le_bytes();
        buf[body..].copy_from_slice(&crc_bytes);
        assert!(matches!(
            read_graph(&mut buf.as_slice()),
            Err(DecodeError::UnsupportedVersion { found: 7 })
        ));
    }

    #[test]
    fn file_save_and_load() {
        let path = std::env::temp_dir().join("tdmatch-graph-test.tdg");
        let g = sample();
        save_graph(&g, &path).unwrap();
        let h = load_graph(&path).unwrap();
        assert_same_structure(&g, &h);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn crc32_known_vector() {
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }
}
