//! End-to-end protocol tests against a live daemon on a temp socket:
//! hostile framing, per-request error codes, the drain lifecycle, and
//! the headline guarantee — batched responses bit-identical to serial
//! `top_k_matches_matrix` rankings.

#![cfg(unix)]

use std::io::Write;
use std::os::unix::net::UnixStream;
use std::path::PathBuf;
use std::time::Duration;

use tdmatch_core::artifact::MatchArtifact;
use tdmatch_core::matcher::top_k_matches_matrix;
use tdmatch_core::serving::Matcher;
use tdmatch_serve::batch::BatchOptions;
use tdmatch_serve::client::{Client, ClientError};
use tdmatch_serve::protocol::{read_frame, ErrorCode, Response, ResponseBody, MAX_FRAME};
use tdmatch_serve::server::{ServeOptions, Server};

/// A deterministic artifact big enough that rankings are non-trivial.
fn artifact() -> MatchArtifact {
    let dim = 8;
    let vector = |seed: usize| -> Vec<f32> {
        (0..dim)
            .map(|d| ((seed * 31 + d * 7) as f32 * 0.37).sin())
            .collect()
    };
    let targets: Vec<Option<Vec<f32>>> = (0..120)
        .map(|i| if i % 11 == 7 { None } else { Some(vector(i)) })
        .collect();
    let queries: Vec<Option<Vec<f32>>> = (0..24)
        .map(|i| if i == 5 { None } else { Some(vector(1000 + i)) })
        .collect();
    MatchArtifact::new(
        dim,
        vec![
            ("tarantino".into(), vector(7)),
            ("thriller".into(), vector(8)),
        ],
        targets,
        queries,
    )
}

fn socket_path(tag: &str) -> PathBuf {
    let path = std::env::temp_dir().join(format!(
        "tdmatch-proto-{tag}-{}.sock",
        std::process::id()
    ));
    std::fs::remove_file(&path).ok();
    path
}

fn start(tag: &str, batch: BatchOptions) -> (Server, PathBuf) {
    let socket = socket_path(tag);
    let server = Server::start(
        Matcher::new(artifact()),
        ServeOptions {
            batch,
            ..ServeOptions::at(socket.clone())
        },
    )
    .expect("daemon start");
    (server, socket)
}

fn assert_bit_identical(got: &[(usize, f32)], want: &[(usize, f32)], context: &str) {
    assert_eq!(got.len(), want.len(), "{context}: length");
    for (g, w) in got.iter().zip(want) {
        assert_eq!(g.0, w.0, "{context}: target order");
        assert_eq!(
            g.1.to_bits(),
            w.1.to_bits(),
            "{context}: score bits for target {}",
            g.0
        );
    }
}

#[test]
fn batched_socket_answers_are_bit_identical_to_serial_matrix_scan() {
    // A long window so two synchronized clients reliably coalesce.
    let (server, socket) = start(
        "twoclients",
        BatchOptions {
            window: Duration::from_millis(300),
            max_batch: 8,
        },
    );
    let art = artifact();
    // The serial oracle: the exact one-shot path `tdmatch match` uses.
    let serial = top_k_matches_matrix(art.second_matrix(), art.first_matrix(), 7, None, None);

    let worker = |docs: Vec<usize>, socket: PathBuf| {
        std::thread::spawn(move || {
            let mut client = Client::connect(&socket).expect("connect");
            docs.into_iter()
                .map(|doc| {
                    let (ranked, batch) = client.query_id(doc, 7).expect("query");
                    (doc, ranked, batch)
                })
                .collect::<Vec<_>>()
        })
    };
    // Two clients, interleaved ids, issued in lockstep (each waits for
    // its response, so both requests of a round sit in one window).
    let a = worker((0..24).step_by(2).collect(), socket.clone());
    let b = worker((1..24).step_by(2).collect(), socket.clone());
    let mut coalesced = 0usize;
    for (doc, ranked, batch) in a.join().unwrap().into_iter().chain(b.join().unwrap()) {
        assert_bit_identical(&ranked, &serial[doc].ranked, &format!("doc {doc}"));
        assert!((1..=8).contains(&batch));
        coalesced += usize::from(batch >= 2);
    }
    // With a 300 ms window and lockstep clients, essentially every
    // round coalesces; require it happened at all (the bit-identity
    // above must hold at *any* batch composition).
    assert!(coalesced > 0, "no request was ever coalesced");
    let stats = server.stats();
    assert_eq!(stats.requests, 24);
    assert!(stats.max_batch >= 2);
    assert!(stats.batches < 24, "every request got its own batch");
    drop(server);
    assert!(!socket.exists());
}

#[test]
fn text_and_vector_queries_match_the_one_shot_paths() {
    let (server, socket) = start("textvec", BatchOptions::default());
    let art = artifact();
    let mut client = Client::connect(&socket).expect("connect");

    // query_text ≡ MatchArtifact::match_new_query (same tokenizer).
    let text = "A Tarantino THRILLER!";
    let tokens = tdmatch_text::Preprocessor::default().base_tokens(text);
    let want = art.match_new_query(&tokens, 5);
    let (ranked, _) = client.query_text(text, 5).expect("text query");
    assert_bit_identical(&ranked, &want.ranked, "text query");

    // Unknown-vocabulary text: empty ranking, answered without scoring.
    let (ranked, batch) = client.query_text("zzz qqq", 5).expect("unknown text");
    assert!(ranked.is_empty());
    assert_eq!(batch, 0);

    // query_vector ≡ Matcher::query_by_vector.
    let v: Vec<f32> = (0..8).map(|d| (d as f32 * 0.9).cos()).collect();
    let want = Matcher::new(art).query_by_vector(&v, 4).unwrap();
    let (ranked, _) = client.query_vector(v, 4).expect("vector query");
    assert_bit_identical(&ranked, &want, "vector query");
    drop(server);
}

#[test]
fn per_request_errors_use_the_spec_codes_and_keep_the_connection() {
    let (server, socket) = start("errors", BatchOptions::default());
    let mut client = Client::connect(&socket).expect("connect");

    // Unknown query id.
    match client.query_id(24, 3) {
        Err(ClientError::Server { code, message }) => {
            assert_eq!(code, ErrorCode::UnknownId);
            assert!(message.contains("24"), "{message}");
        }
        other => panic!("expected unknown_id, got {other:?}"),
    }
    // A valid-but-missing query embedding is NOT an error: empty rank.
    let (ranked, _) = client.query_id(5, 3).expect("missing row");
    assert!(ranked.is_empty());
    // Dim-mismatched vector.
    match client.query_vector(vec![1.0, 2.0], 3) {
        Err(ClientError::Server { code, .. }) => assert_eq!(code, ErrorCode::BadVector),
        other => panic!("expected bad_vector, got {other:?}"),
    }
    // The same connection still serves good queries afterwards.
    let (ranked, _) = client.query_id(0, 3).expect("connection survived");
    assert_eq!(ranked.len(), 3);
    let stats = client.stats().expect("stats");
    assert_eq!(stats.errors, 2);
    drop(server);
}

/// Writes raw bytes and reads one response frame off the same stream.
fn raw_exchange(socket: &PathBuf, bytes: &[u8]) -> Option<Response> {
    let mut stream = UnixStream::connect(socket).expect("connect");
    stream.write_all(bytes).expect("write");
    let payload = read_frame(&mut stream).ok()??;
    Some(Response::decode(&payload).expect("decodable error response"))
}

fn frame(payload: &[u8]) -> Vec<u8> {
    let mut out = (payload.len() as u32).to_le_bytes().to_vec();
    out.extend_from_slice(payload);
    out
}

#[test]
fn malformed_payloads_answer_with_codes_and_framing_errors_close() {
    let (server, socket) = start("malformed", BatchOptions::default());

    // Invalid JSON in a well-formed frame → bad_json, id 0.
    let r = raw_exchange(&socket, &frame(b"{not json")).expect("response");
    assert!(matches!(
        r.body,
        ResponseBody::Error { code: ErrorCode::BadJson, .. }
    ));
    // Well-formed JSON, ill-formed request → bad_request echoing the id.
    let r = raw_exchange(&socket, &frame(br#"{"id":42,"op":"query_id"}"#)).expect("response");
    assert_eq!(r.id, 42);
    assert!(matches!(
        r.body,
        ResponseBody::Error { code: ErrorCode::BadRequest, .. }
    ));
    // Unknown op.
    let r = raw_exchange(&socket, &frame(br#"{"id":1,"op":"teleport"}"#)).expect("response");
    assert!(matches!(
        r.body,
        ResponseBody::Error { code: ErrorCode::UnknownOp, .. }
    ));

    // Oversized length prefix → oversized error, then the server closes.
    let mut stream = UnixStream::connect(&socket).expect("connect");
    stream
        .write_all(&(MAX_FRAME + 1).to_le_bytes())
        .expect("write");
    let payload = read_frame(&mut stream).expect("readable").expect("present");
    let r = Response::decode(&payload).expect("decodable");
    assert!(matches!(
        r.body,
        ResponseBody::Error { code: ErrorCode::Oversized, .. }
    ));
    assert!(
        read_frame(&mut stream).expect("clean close").is_none(),
        "connection must close after a framing error"
    );

    // Truncated frame (length promises more than is sent, then EOF) →
    // bad_frame, then close.
    let mut stream = UnixStream::connect(&socket).expect("connect");
    stream.write_all(&100u32.to_le_bytes()).expect("write");
    stream.write_all(b"short").expect("write");
    stream
        .shutdown(std::net::Shutdown::Write)
        .expect("half-close");
    let payload = read_frame(&mut stream).expect("readable").expect("present");
    let r = Response::decode(&payload).expect("decodable");
    assert!(matches!(
        r.body,
        ResponseBody::Error { code: ErrorCode::BadFrame, .. }
    ));
    assert!(read_frame(&mut stream).expect("clean close").is_none());

    // A zero-length frame is also a framing error.
    let mut stream = UnixStream::connect(&socket).expect("connect");
    stream.write_all(&0u32.to_le_bytes()).expect("write");
    let payload = read_frame(&mut stream).expect("readable").expect("present");
    let r = Response::decode(&payload).expect("decodable");
    assert!(matches!(
        r.body,
        ResponseBody::Error { code: ErrorCode::Oversized, .. }
    ));
    drop(server);
}

#[test]
fn oversized_but_parseable_requests_never_reach_the_scheduler() {
    let (server, socket) = start("oversized", BatchOptions::default());
    // A frame just over MAX_FRAME full of spaces around a valid ping:
    // rejected at the framing layer by size alone.
    let mut payload = vec![b' '; (MAX_FRAME + 1) as usize - 13];
    payload.extend_from_slice(br#"{"op":"ping"}"#);
    let mut stream = UnixStream::connect(&socket).expect("connect");
    stream
        .write_all(&(payload.len() as u32).to_le_bytes())
        .expect("write prefix");
    // The server rejects on the prefix alone and may close before the
    // body is consumed, so a partial body write (EPIPE) is expected.
    let _ = stream.write_all(&payload);
    let frame_payload = read_frame(&mut stream).expect("readable").expect("present");
    let r = Response::decode(&frame_payload).expect("decodable");
    assert!(matches!(
        r.body,
        ResponseBody::Error { code: ErrorCode::Oversized, .. }
    ));
    assert_eq!(server.stats().requests, 0);
    drop(server);
}

#[test]
fn lifecycle_ping_stats_shutdown_drain() {
    let (server, socket) = start(
        "lifecycle",
        BatchOptions {
            window: Duration::from_millis(1),
            max_batch: 8,
        },
    );
    let mut client = Client::connect(&socket).expect("connect");
    client.ping().expect("ping");
    let (ranked, _) = client.query_id(3, 4).expect("query");
    assert_eq!(ranked.len(), 4);
    let stats = client.stats().expect("stats");
    assert_eq!(stats.requests, 1);
    assert_eq!(stats.batches, 1);
    assert!(stats.uptime_secs >= 0.0);

    client.shutdown().expect("shutdown acknowledged");
    let stats = server.join();
    assert_eq!(stats.requests, 1);
    assert!(!socket.exists(), "socket file must be unlinked");
    // The daemon is gone: connecting fails.
    assert!(UnixStream::connect(&socket).is_err());
    // The drained client connection is severed.
    assert!(matches!(
        client.ping(),
        Err(ClientError::Io(_) | ClientError::Disconnected | ClientError::Frame(_))
    ));
}

#[test]
fn starting_on_an_existing_path_is_refused() {
    let socket = socket_path("inuse");
    std::fs::write(&socket, b"stale").expect("plant file");
    let err = Server::start(Matcher::new(artifact()), ServeOptions::at(&socket)).unwrap_err();
    assert_eq!(err.kind(), std::io::ErrorKind::AddrInUse);
    std::fs::remove_file(&socket).ok();
}

#[test]
fn responses_interleave_correctly_on_one_connection() {
    // Many sequential requests over one connection with a tiny window:
    // ids echo back in order and every answer matches the serial oracle.
    let (server, socket) = start(
        "sequential",
        BatchOptions {
            window: Duration::from_micros(100),
            max_batch: 4,
        },
    );
    let art = artifact();
    let serial = top_k_matches_matrix(art.second_matrix(), art.first_matrix(), 3, None, None);
    let mut client = Client::connect(&socket).expect("connect");
    for round in 0..3 {
        for (doc, want) in serial.iter().enumerate() {
            let (ranked, _) = client.query_id(doc, 3).expect("query");
            assert_bit_identical(&ranked, &want.ranked, &format!("round {round} doc {doc}"));
        }
    }
    assert_eq!(server.stats().requests, 72);
    drop(server);
}
