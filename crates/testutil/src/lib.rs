//! # tdmatch-testutil
//!
//! Fault-injection helpers for the crash/corruption/overload test
//! suites (`crates/serve/tests/faults.rs`, the publish crash tests).
//! Dev-dependency only — nothing here ships in the library crates.
//!
//! Three fault families:
//!
//! * [`ChaosWriter`] — a `Write` adapter with a byte-budget failpoint:
//!   after exactly `die_at` bytes it either errors or kills the process
//!   with `SIGKILL`, turning "publisher dies mid-save at byte N" into a
//!   deterministic, sweepable event;
//! * [`corrupt`] — post-hoc artifact damage (bit flips, truncation) at
//!   chosen offsets, for "the disk/copy tore the file" scenarios;
//! * [`respawn`] — run one `#[test]` function as a *child process* of
//!   itself, so a test can SIGKILL a publisher or daemon without taking
//!   the test runner down with it.

use std::io::{self, Write};

/// Raises `SIGKILL` against the current process: dies immediately, no
/// destructors, no buffer flushes — the closest userspace gets to a
/// power cut. (Declared directly because the build is offline and has
/// no `libc` crate; the C runtime is linked on every unix target.)
#[cfg(unix)]
pub fn kill_self() -> ! {
    extern "C" {
        fn raise(signum: i32) -> i32;
    }
    const SIGKILL: i32 = 9;
    // Safety: raising an uncatchable signal at ourselves.
    unsafe {
        raise(SIGKILL);
    }
    // SIGKILL cannot be handled; this line is unreachable in practice.
    std::process::abort();
}

/// How a [`ChaosWriter`] fails when its byte budget runs out.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Death {
    /// Return `io::Error` (kind `Other`) from the write call.
    Error,
    /// Flush what was written so far, then [`kill_self`]: simulates the
    /// publisher process dying mid-save.
    #[cfg(unix)]
    Kill,
}

/// A `Write` adapter that dies after exactly `die_at` bytes.
///
/// Writes pass through until the budget is exhausted; the write that
/// crosses the boundary first forwards the in-budget prefix (and
/// flushes it, so the bytes actually reach the OS) and then fails per
/// the configured [`Death`]. Sweeping `die_at` over a file's length
/// reproduces every possible torn-write prefix deterministically.
#[derive(Debug)]
pub struct ChaosWriter<W> {
    inner: W,
    written: u64,
    die_at: u64,
    death: Death,
}

impl<W: Write> ChaosWriter<W> {
    /// Fails after exactly `die_at` bytes with the given death mode.
    pub fn new(inner: W, die_at: u64, death: Death) -> Self {
        ChaosWriter {
            inner,
            written: 0,
            die_at,
            death,
        }
    }

    /// Bytes successfully forwarded so far.
    pub fn written(&self) -> u64 {
        self.written
    }

    fn die(&mut self) -> io::Error {
        match self.death {
            Death::Error => io::Error::other(format!(
                "chaos failpoint: writer died at byte {}",
                self.die_at
            )),
            #[cfg(unix)]
            Death::Kill => {
                let _ = self.inner.flush();
                kill_self();
            }
        }
    }
}

impl<W: Write> Write for ChaosWriter<W> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        let budget = self.die_at.saturating_sub(self.written);
        if budget == 0 && !buf.is_empty() {
            return Err(self.die());
        }
        let take = (buf.len() as u64).min(budget) as usize;
        let n = self.inner.write(&buf[..take])?;
        self.written += n as u64;
        if n == take && (buf.len() as u64) > budget {
            // This write crosses the boundary: the prefix landed, the
            // rest never will.
            return Err(self.die());
        }
        Ok(n)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

/// Post-hoc file damage: what a torn copy, bad disk, or truncated
/// download leaves behind.
pub mod corrupt {
    use std::fs::OpenOptions;
    use std::io::{self, Read, Seek, SeekFrom, Write};
    use std::path::Path;

    /// XORs `mask` into the byte at `offset` (must be in-bounds).
    pub fn flip_bits<P: AsRef<Path>>(path: P, offset: u64, mask: u8) -> io::Result<()> {
        let mut f = OpenOptions::new().read(true).write(true).open(path)?;
        f.seek(SeekFrom::Start(offset))?;
        let mut byte = [0u8; 1];
        f.read_exact(&mut byte)?;
        byte[0] ^= mask;
        f.seek(SeekFrom::Start(offset))?;
        f.write_all(&byte)?;
        f.sync_all()
    }

    /// Truncates the file to `len` bytes (a torn tail).
    pub fn truncate_to<P: AsRef<Path>>(path: P, len: u64) -> io::Result<()> {
        let f = OpenOptions::new().write(true).open(path)?;
        f.set_len(len)?;
        f.sync_all()
    }

    /// The file's current length.
    pub fn file_len<P: AsRef<Path>>(path: P) -> io::Result<u64> {
        Ok(std::fs::metadata(path)?.len())
    }
}

/// Re-running one `#[test]` as a child process of the test binary.
///
/// The pattern: a test calls [`respawn::role`] first. In the *parent*
/// (no role set) it gets `None`, spawns itself with a role via
/// [`respawn::spawn_self`], and supervises/kills the child. In the
/// *child* it gets `Some(role)` and takes the faulty branch (e.g. save
/// an artifact through a [`ChaosWriter`] with
/// `Death::Kill`).
pub mod respawn {
    use std::io;
    use std::process::{Child, Command, Stdio};

    /// The role this process was spawned with, if any.
    pub fn role(var: &str) -> Option<String> {
        std::env::var(var).ok()
    }

    /// Spawns the current test binary running exactly `test_name`, with
    /// `var=value` marking the child's role and any `extra_env` set.
    /// Stdout/stderr are piped (inspect via `wait_with_output`).
    pub fn spawn_self(
        test_name: &str,
        var: &str,
        value: &str,
        extra_env: &[(&str, &str)],
    ) -> io::Result<Child> {
        let exe = std::env::current_exe()?;
        let mut cmd = Command::new(exe);
        cmd.arg("--exact")
            .arg(test_name)
            .arg("--nocapture")
            .arg("--test-threads=1")
            .env(var, value)
            .stdout(Stdio::piped())
            .stderr(Stdio::piped());
        for (k, v) in extra_env {
            cmd.env(k, v);
        }
        cmd.spawn()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chaos_writer_forwards_exactly_the_budget_then_errors() {
        let mut out = Vec::new();
        {
            let mut w = ChaosWriter::new(&mut out, 10, Death::Error);
            assert_eq!(w.write(b"0123").unwrap(), 4);
            assert_eq!(w.write(b"4567").unwrap(), 4);
            // This write crosses byte 10: "89" lands, then the failpoint.
            let err = w.write(b"89ab").unwrap_err();
            assert!(err.to_string().contains("byte 10"), "{err}");
            assert_eq!(w.written(), 10);
            // Every later write fails immediately.
            assert!(w.write(b"x").is_err());
        }
        assert_eq!(out, b"0123456789");
    }

    #[test]
    fn chaos_writer_with_zero_budget_dies_on_first_byte() {
        let mut out = Vec::new();
        let mut w = ChaosWriter::new(&mut out, 0, Death::Error);
        assert!(w.write(b"x").is_err());
        assert_eq!(w.written(), 0);
        // Empty writes never trip the failpoint.
        assert_eq!(w.write(b"").unwrap(), 0);
    }

    #[test]
    fn corruption_helpers_damage_exactly_what_they_claim() {
        let dir = std::env::temp_dir().join(format!("tdmatch-testutil-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("victim.bin");
        std::fs::write(&path, [0u8; 64]).unwrap();

        corrupt::flip_bits(&path, 17, 0x80).unwrap();
        let data = std::fs::read(&path).unwrap();
        assert_eq!(data[17], 0x80);
        assert!(data.iter().enumerate().all(|(i, &b)| (i == 17) == (b != 0)));

        corrupt::truncate_to(&path, 9).unwrap();
        assert_eq!(corrupt::file_len(&path).unwrap(), 9);

        std::fs::remove_dir_all(&dir).ok();
    }
}
