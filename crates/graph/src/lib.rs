//! Undirected typed graph substrate for TDmatch.
//!
//! The paper models heterogeneous corpora as one undirected, unweighted
//! graph with two node families (§II):
//!
//! * **data nodes** — pre-processed terms, interned so that a term shared by
//!   several documents is a single node;
//! * **metadata nodes** — tuples, attributes (columns), free-text documents
//!   and taxonomy nodes.
//!
//! This crate provides the graph itself ([`Graph`]), breadth-first search
//! and all-shortest-path enumeration ([`traverse`]), and random-neighbor
//! sampling used by the walk generator ([`sample`]).

pub mod edge;
pub mod graph;
pub mod node;
pub mod persist;
pub mod sample;
pub mod stats;
pub mod traverse;

pub use edge::{EdgeKind, EdgeTypeWeights};
pub use graph::Graph;
pub use node::{CorpusSide, MetaKind, NodeId, NodeKind};
pub use stats::GraphStats;
