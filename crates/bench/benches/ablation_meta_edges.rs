//! §V-F2 ablation — connecting metadata nodes in structured text.
//!
//! Removing the taxonomy parent-child edges from the Audit graph drops the
//! Node F-score at every K (the paper reports −.08/−.04/−.02/−.01 at
//! K = 1/3/5/10).

use tdmatch_bench::{audit_eval, bench_config, run_with_config};
use tdmatch_datasets::{audit, Scale};

const KS: [usize; 4] = [1, 3, 5, 10];

fn main() {
    let scenario = audit::generate(Scale::Small, 42);
    println!("\n=== Ablation — taxonomy metadata edges (Audit, Node F) ===");
    println!(
        "{:<4} {:>12} {:>14} {:>8}",
        "K", "with edges", "without edges", "delta"
    );

    let with_cfg = bench_config(&scenario.config);
    let mut without_cfg = with_cfg.clone();
    without_cfg.taxonomy_edges = false;

    let (with_run, _) = run_with_config(&scenario, with_cfg, 10, false);
    let (without_run, _) = run_with_config(&scenario, without_cfg, 10, false);

    for k in KS {
        let (_, node_with) = audit_eval(&with_run, &scenario, k);
        let (_, node_without) = audit_eval(&without_run, &scenario, k);
        println!(
            "{:<4} {:>12.3} {:>14.3} {:>+8.3}",
            k,
            node_with.f1,
            node_without.f1,
            node_without.f1 - node_with.f1
        );
    }
}
