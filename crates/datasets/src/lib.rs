//! Seeded synthetic versions of the paper's six evaluation scenarios.
//!
//! The paper evaluates on two real-world corpora that cannot be shipped
//! (IMDb reviews hand-matched to tuples, a KPMG audit manual) and four
//! public ones. Every generator here produces a structurally equivalent
//! scenario from the shared lexicons in `tdmatch-kb`, with a deterministic
//! seed, a ground truth, a matching external KB for expansion, and a
//! "pre-trained" model whose coverage mirrors the real resource:
//!
//! | Module | Paper scenario | Task |
//! |---|---|---|
//! | [`imdb`] | IMDb reviews ↔ movie tuples (WT / NT) | text to data |
//! | [`corona`] | CoronaCheck claims ↔ case statistics (Gen / Usr) | text to data |
//! | [`audit`] | audit documents ↔ concept taxonomy | text to structured text |
//! | [`claims`] | Snopes / Politifact claim ↔ verified claims | text to text |
//! | [`sts`] | STS sentence pairs at threshold k | text to text |
//!
//! All scales are reduced by default (see [`Scale`]); shapes, not absolute
//! sizes, are what the experiments reproduce.

pub mod audit;
pub mod claims;
pub mod corona;
pub mod imdb;
pub mod sts;

use std::collections::HashSet;

use tdmatch_core::config::TdConfig;
use tdmatch_core::corpus::Corpus;
use tdmatch_kb::{KnowledgeBase, PretrainedModel, SyntheticWordNet};

/// Dataset size presets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Minimal sizes for unit tests (seconds end-to-end).
    Tiny,
    /// Default experiment scale: large enough for stable metric shapes,
    /// small enough for a laptop benchmark run.
    Small,
    /// Paper-scale sizes (50k movie tuples, 16k verified claims, …); hours
    /// of compute — only for dedicated runs.
    Paper,
}

/// A generated matching scenario.
pub struct Scenario {
    /// Scenario name for reports (e.g. `imdb-wt`).
    pub name: String,
    /// The first corpus — the matching *targets* (tuples, taxonomy nodes,
    /// verified claims).
    pub first: Corpus,
    /// The second corpus — the *queries* (reviews, claims, documents).
    pub second: Corpus,
    /// For each query document, the indices of its true matches in the
    /// first corpus. Empty sets mean "no ground truth" (skipped by
    /// metrics).
    pub ground_truth: Vec<Vec<usize>>,
    /// The external resource the paper uses for this scenario's expansion
    /// (DBpedia for IMDb, ConceptNet otherwise).
    pub kb: Box<dyn KnowledgeBase + Send + Sync>,
    /// The simulated pre-trained model (S-BE baseline + similarity merge).
    pub pretrained: PretrainedModel,
    /// Merge threshold γ calibrated on the synthetic WordNet (§II-C).
    pub gamma: f32,
    /// The paper's recommended pipeline configuration for this task.
    pub config: TdConfig,
}

impl Scenario {
    /// Ground truth as hash sets (what `tdmatch-eval` consumes).
    pub fn truth_sets(&self) -> Vec<HashSet<usize>> {
        self.ground_truth
            .iter()
            .map(|v| v.iter().copied().collect())
            .collect()
    }

    /// Number of queries that have at least one true match.
    pub fn labeled_queries(&self) -> usize {
        self.ground_truth.iter().filter(|g| !g.is_empty()).count()
    }
}

/// Builds the standard pre-trained model + γ used by most scenarios.
pub(crate) fn standard_pretrained(seed: u64, entity_coverage: f64) -> (PretrainedModel, f32) {
    let model = PretrainedModel::standard(48, seed, entity_coverage);
    let wn = SyntheticWordNet::standard();
    let gamma = model.calibrate_gamma(wn.synonym_pairs());
    (model, gamma)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_generators_produce_consistent_scenarios() {
        let scenarios: Vec<Scenario> = vec![
            imdb::generate(Scale::Tiny, 1, true),
            imdb::generate(Scale::Tiny, 1, false),
            corona::generate(Scale::Tiny, 1, corona::SentenceKind::Generated),
            corona::generate(Scale::Tiny, 1, corona::SentenceKind::User),
            audit::generate(Scale::Tiny, 1),
            claims::snopes(Scale::Tiny, 1),
            claims::politifact(Scale::Tiny, 1),
            sts::generate(Scale::Tiny, 1, 2),
        ];
        for s in &scenarios {
            assert!(!s.first.is_empty(), "{}: empty first corpus", s.name);
            assert!(!s.second.is_empty(), "{}: empty second corpus", s.name);
            assert_eq!(
                s.ground_truth.len(),
                s.second.len(),
                "{}: ground truth arity",
                s.name
            );
            assert!(s.labeled_queries() > 0, "{}: no labeled queries", s.name);
            for g in &s.ground_truth {
                for &t in g {
                    assert!(t < s.first.len(), "{}: truth out of range", s.name);
                }
            }
            assert!(s.gamma > 0.0 && s.gamma < 1.0, "{}: gamma {}", s.name, s.gamma);
        }
    }

    #[test]
    fn generators_are_deterministic() {
        let a = imdb::generate(Scale::Tiny, 9, true);
        let b = imdb::generate(Scale::Tiny, 9, true);
        assert_eq!(a.first, b.first);
        assert_eq!(a.second, b.second);
        assert_eq!(a.ground_truth, b.ground_truth);
        let c = imdb::generate(Scale::Tiny, 10, true);
        assert_ne!(a.second, c.second, "different seeds, different corpora");
    }
}
