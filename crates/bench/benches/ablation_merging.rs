//! §II-C / §V-F2 ablation — node merging.
//!
//! Two merges are toggled:
//! * numeric **bucketing** on CoronaCheck (the paper reports MAP 0.72 →
//!   0.76 with width-7 equal buckets) and on IMDb (a small *loss*, since
//!   release years should not merge);
//! * **similarity merging** with the pre-trained model at γ on IMDb
//!   (entity-name variants; ~+2.5 % in the paper) and Audit (no gain:
//!   domain terms are OOV / mislead the general-purpose space).

use tdmatch_bench::{bench_config, evaluate, MethodRun};
use tdmatch_core::pipeline::{FitOptions, TdMatch};
use tdmatch_datasets::corona::SentenceKind;
use tdmatch_datasets::{audit, corona, imdb, Scale, Scenario};

fn run(scenario: &Scenario, bucket: bool, merge: bool) -> f64 {
    let mut config = bench_config(&scenario.config);
    config.bucket_numbers = bucket;
    let model = TdMatch::new(config)
        .fit_with(
            &scenario.first,
            &scenario.second,
            FitOptions {
                merge: if merge {
                    Some((&scenario.pretrained, scenario.gamma))
                } else {
                    None
                },
                ..Default::default()
            },
        )
        .expect("fit failed");
    let run = MethodRun {
        method: "W-RW".into(),
        ranked: model
            .match_top_k(20)
            .iter()
            .map(|r| r.target_indices())
            .collect(),
        train_secs: 0.0,
        test_secs: 0.0,
    };
    evaluate(&run, scenario).map_at[1]
}

fn main() {
    println!("\n=== Ablation — node merging (MAP@5) ===");
    println!(
        "{:<12} {:>10} {:>10} {:>10}",
        "scenario", "none", "+bucket", "+simmerge"
    );
    let corona = corona::generate(Scale::Small, 42, SentenceKind::Generated);
    let imdb = imdb::generate(Scale::Tiny, 42, true);
    let audit = audit::generate(Scale::Tiny, 42);
    for scenario in [&corona, &imdb, &audit] {
        let none = run(scenario, false, false);
        let bucket = run(scenario, true, false);
        let simmerge = run(scenario, false, true);
        println!(
            "{:<12} {:>10.3} {:>10.3} {:>10.3}",
            scenario.name, none, bucket, simmerge
        );
    }
}
