//! Flat similarity engine for the matching phase (§IV-B): pre-normalized
//! score matrices, unrolled dot kernels, and bounded top-k selection.
//!
//! # The normalize-once / dot-many contract
//!
//! Every scoring call in the matching phase is a cosine between a query
//! row and a target row. Cosine is scale-invariant, so the engine
//! L2-normalizes each row **once** at [`ScoreMatrix`] construction and
//! afterwards scores pairs with a plain dot product — one fused
//! multiply-add stream per element instead of the three (dot, ‖a‖², ‖b‖²)
//! that a from-scratch cosine needs. Rows are stored in one flat,
//! row-major `Vec<f32>` so a batch scan streams targets linearly through
//! the cache instead of chasing `Option<Vec<f32>>` pointers.
//!
//! # Missing-row semantics
//!
//! A document's metadata node can vanish (e.g. dropped by aggressive
//! compression), which the legacy API modelled as `None` rows. The engine
//! keeps a validity bitmap instead of nested options:
//!
//! * a **missing query** row produces an *empty* ranking;
//! * a **missing target** row scores exactly `-1.0` (ranking last, below
//!   any reachable cosine), before any `extra_score` combination;
//! * a **present but all-zero** row stays a zero vector after
//!   normalization and therefore scores `0.0` against everything,
//!   matching `cosine`'s zero-vector convention.
//!
//! # Ranking semantics
//!
//! Top-k selection uses a bounded binary heap ([`TopK`]) — `O(T log k)`
//! per query instead of the `O(T log T)` full sort — with the same
//! ordering as the historical sort-and-truncate path: decreasing score,
//! ties broken by ascending target index. `-0.0` scores are canonicalized
//! to `+0.0` on push so the tie-break agrees with IEEE `==` comparisons.
//! Scores must be non-NaN (guaranteed for finite inputs; an `extra_score`
//! callback returning NaN gets an unspecified, but still deterministic,
//! rank).
//!
//! # Batch scoring
//!
//! [`batch_top_k`] / [`batch_top_k_seq`] walk query blocks × target
//! blocks: a block of target rows (sized to fit L1/L2) is scored against
//! up to [`QUERY_BLOCK`] queries before moving on, so hot target rows are
//! reused from cache across the query block. Query blocks are
//! independent, which makes the parallel variant (crossbeam scoped
//! threads over disjoint output chunks) bit-identical to the sequential
//! one at any thread count.

use tdmatch_graph::container::{Container, ContainerWriter, FlatBuf, SectionTag, Storage};
use tdmatch_graph::DecodeError;

use crate::vectors::cosine;

/// Queries scored together against one cached target block.
pub const QUERY_BLOCK: usize = 8;

/// Bytes of target rows to keep resident per block (~L1d sized).
const TARGET_BLOCK_BYTES: usize = 32 * 1024;

/// `Σ a[i] * b[i]` over equal-length slices, unrolled into 8 independent
/// accumulator lanes so the compiler can keep the loop in vector
/// registers (plain `mul`+`add`, auto-vectorizable without `-C
/// target-feature=+fma`).
#[inline]
pub fn dot_unrolled(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    let mut lanes = [0.0f32; 8];
    let mut ca = a.chunks_exact(8);
    let mut cb = b.chunks_exact(8);
    for (xa, xb) in (&mut ca).zip(&mut cb) {
        for l in 0..8 {
            lanes[l] += xa[l] * xb[l];
        }
    }
    let mut acc = ((lanes[0] + lanes[4]) + (lanes[1] + lanes[5]))
        + ((lanes[2] + lanes[6]) + (lanes[3] + lanes[7]));
    for (x, y) in ca.remainder().iter().zip(cb.remainder()) {
        acc += x * y;
    }
    acc
}

/// A flat, row-major, L2-pre-normalized `rows × dim` f32 matrix with a
/// validity bitmap for missing rows — the engine-side replacement for
/// `Vec<Option<Vec<f32>>>` wherever vectors are *scored*.
///
/// Invalid (missing) rows are stored as zeros and flagged in the bitmap;
/// see the [module docs](self) for their scoring semantics.
///
/// Both arrays are [`FlatBuf`]s: owned when the matrix is built row by
/// row, zero-copy views into `TDZ1` container [`Storage`] when loaded by
/// [`from_sections`](ScoreMatrix::from_sections) — a persisted matrix
/// maps back at normalize-once speed with no per-row copies and no
/// re-normalization.
#[derive(Debug, Clone, Default)]
pub struct ScoreMatrix {
    /// Row-major normalized rows; invalid rows are all-zero.
    data: FlatBuf<f32>,
    /// Bit `i` set ⇔ row `i` is present.
    valid: FlatBuf<u64>,
    rows: usize,
    dim: usize,
}

impl PartialEq for ScoreMatrix {
    fn eq(&self, other: &Self) -> bool {
        // Bitwise comparison (f32 bits, not IEEE ==): persistence
        // round-trips must be exact, including NaN payloads and -0.0.
        self.rows == other.rows
            && self.dim == other.dim
            && self.valid[..] == other.valid[..]
            && self.data.len() == other.data.len()
            && self
                .data
                .iter()
                .zip(other.data.iter())
                .all(|(a, b)| a.to_bits() == b.to_bits())
    }
}

impl ScoreMatrix {
    /// An all-invalid matrix of the given shape.
    pub fn invalid(rows: usize, dim: usize) -> Self {
        Self {
            data: vec![0.0; rows * dim].into(),
            valid: vec![0; rows.div_ceil(64)].into(),
            rows,
            dim,
        }
    }

    /// Builds from legacy optional rows, inferring `dim` from the first
    /// present row (0 when every row is missing).
    pub fn from_options(rows: &[Option<Vec<f32>>]) -> Self {
        let dim = rows
            .iter()
            .find_map(|r| r.as_ref().map(Vec::len))
            .unwrap_or(0);
        Self::from_options_dim(rows, dim)
    }

    /// Builds from legacy optional rows with an explicit dimensionality
    /// (every present row must have length `dim`).
    pub fn from_options_dim(rows: &[Option<Vec<f32>>], dim: usize) -> Self {
        let mut m = Self::invalid(rows.len(), dim);
        for (i, r) in rows.iter().enumerate() {
            if let Some(v) = r {
                m.set_row(i, v);
            }
        }
        m
    }

    /// Builds an all-valid matrix from row slices of length `dim`.
    pub fn from_rows<'a, I>(rows: I, dim: usize) -> Self
    where
        I: IntoIterator<Item = &'a [f32]>,
        I::IntoIter: ExactSizeIterator,
    {
        let iter = rows.into_iter();
        let mut m = Self::invalid(iter.len(), dim);
        for (i, r) in iter.enumerate() {
            m.set_row(i, r);
        }
        m
    }

    /// Installs row `i` (copied, then L2-normalized in place) and marks it
    /// valid. Zero vectors stay zero. A zero-copy matrix is first
    /// detached from its storage (copy-on-write).
    pub fn set_row(&mut self, i: usize, v: &[f32]) {
        assert_eq!(v.len(), self.dim, "row length must equal matrix dim");
        let dim = self.dim;
        let row = &mut self.data.make_mut()[i * dim..(i + 1) * dim];
        row.copy_from_slice(v);
        let norm = dot_unrolled(row, row).sqrt();
        if norm > 0.0 {
            // True division, not multiply-by-reciprocal: `x / |x|` is
            // exactly ±1.0 in IEEE, which keeps degenerate (collinear)
            // rows tie-broken identically to the cosine oracle.
            for x in row.iter_mut() {
                *x /= norm;
            }
        }
        self.valid.make_mut()[i / 64] |= 1 << (i % 64);
    }

    /// Installs row `i` **verbatim** (no normalization) and marks it
    /// valid. For rows that are *already* unit-length — e.g. gathered out
    /// of another `ScoreMatrix` — this preserves every bit, so scores
    /// computed against the copy are bit-identical to scores against the
    /// source row. Passing a non-normalized row silently breaks the
    /// cosine semantics; use [`set_row`](ScoreMatrix::set_row) for raw
    /// vectors.
    pub fn set_row_prenormalized(&mut self, i: usize, v: &[f32]) {
        assert_eq!(v.len(), self.dim, "row length must equal matrix dim");
        let dim = self.dim;
        self.data.make_mut()[i * dim..(i + 1) * dim].copy_from_slice(v);
        self.valid.make_mut()[i / 64] |= 1 << (i % 64);
    }

    /// Grows the matrix to `new_rows` rows, carrying every existing row
    /// and validity bit **verbatim** (bit-for-bit — scores against the
    /// carried rows are unchanged). New rows start invalid (zeroed).
    /// The delta-ingest append path: a zero-copy matrix detaches from
    /// its storage first. Panics if `new_rows` shrinks the matrix.
    pub fn grow_rows(&mut self, new_rows: usize) {
        assert!(new_rows >= self.rows, "grow_rows cannot shrink the matrix");
        self.data.make_mut().resize(new_rows * self.dim, 0.0);
        self.valid.make_mut().resize(new_rows.div_ceil(64), 0);
        self.rows = new_rows;
    }

    /// Clears row `i`: zeroes its data and clears its validity bit, so
    /// the row scores exactly `-1.0` afterwards (the missing-target
    /// convention). The delta-ingest tombstone path.
    pub fn clear_row(&mut self, i: usize) {
        assert!(i < self.rows, "row index out of bounds");
        let dim = self.dim;
        self.data.make_mut()[i * dim..(i + 1) * dim].fill(0.0);
        self.valid.make_mut()[i / 64] &= !(1u64 << (i % 64));
    }

    /// Number of rows (valid or not).
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Row dimensionality.
    #[inline]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// True when the matrix has no rows.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.rows == 0
    }

    /// Whether row `i` is present.
    #[inline]
    pub fn is_valid(&self, i: usize) -> bool {
        (self.valid[i / 64] >> (i % 64)) & 1 == 1
    }

    /// Number of present rows.
    pub fn valid_rows(&self) -> usize {
        self.valid.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// The normalized row `i` (all-zero when invalid).
    #[inline]
    pub fn row(&self, i: usize) -> &[f32] {
        &self.data[i * self.dim..(i + 1) * self.dim]
    }

    /// Tag of this matrix's header section under `slot`.
    pub fn header_tag(slot: u8) -> SectionTag {
        [b'S', b'M', b'H', slot]
    }

    /// Tag of this matrix's row-data section under `slot`.
    pub fn data_tag(slot: u8) -> SectionTag {
        [b'S', b'M', b'D', slot]
    }

    /// Tag of this matrix's validity-bitmap section under `slot`.
    pub fn valid_tag(slot: u8) -> SectionTag {
        [b'S', b'M', b'V', slot]
    }

    /// Serializes the pre-normalized matrix into `TDZ1` container
    /// sections under `slot` (so several matrices — e.g. both corpus
    /// sides of an artifact — coexist in one container). The rows are
    /// written exactly as stored — loading never re-normalizes — and the
    /// writer *borrows* them, so saving streams without a second copy.
    pub fn write_sections<'a>(&'a self, slot: u8, w: &mut ContainerWriter<'a>) {
        w.add(
            Self::header_tag(slot),
            tdmatch_graph::container::pod_bytes(&[self.rows as u64, self.dim as u64]),
        );
        w.add_pod(Self::data_tag(slot), &self.data);
        w.add_pod(Self::valid_tag(slot), &self.valid);
    }

    /// Reassembles a matrix from container sections under `slot`,
    /// zero-copy: `data` and the validity bitmap are views into
    /// `storage`'s buffer (kept alive by the matrix). `container` must
    /// have been parsed from the same storage.
    ///
    /// With storage opened through `Storage::open`, the views point
    /// straight into a read-only file mapping — serving processes
    /// loading the same matrix share one physical copy of its rows —
    /// and the three sections' CRCs are verified here, on first access
    /// (the lazy-CRC contract in `tdmatch_graph::container`).
    pub fn from_sections(
        storage: &Storage,
        container: &Container<'_>,
        slot: u8,
    ) -> Result<Self, DecodeError> {
        let header = container.require(Self::header_tag(slot))?.as_u64s()?;
        let &[rows, dim] = header else {
            return Err(DecodeError::Invalid("score matrix header shape"));
        };
        let rows = usize::try_from(rows).map_err(|_| DecodeError::Corrupt)?;
        let dim = usize::try_from(dim).map_err(|_| DecodeError::Corrupt)?;
        let data = FlatBuf::<f32>::from_section(storage, container.require(Self::data_tag(slot))?)?;
        let expect = rows
            .checked_mul(dim)
            .ok_or(DecodeError::Invalid("score matrix shape overflows"))?;
        if data.len() != expect {
            return Err(DecodeError::Invalid("score matrix data length mismatch"));
        }
        let valid =
            FlatBuf::<u64>::from_section(storage, container.require(Self::valid_tag(slot))?)?;
        if valid.len() != rows.div_ceil(64) {
            return Err(DecodeError::Invalid("score matrix bitmap length mismatch"));
        }
        let tail_bits = rows % 64;
        if tail_bits != 0 && valid.last().copied().unwrap_or(0) >> tail_bits != 0 {
            return Err(DecodeError::Invalid("score matrix bitmap trailing bits"));
        }
        Ok(Self {
            data,
            valid,
            rows,
            dim,
        })
    }

    /// Converts both arrays into owned `Vec`s, detaching the matrix from
    /// container storage. No-op for built matrices.
    pub fn into_owned(mut self) -> Self {
        self.data.make_mut();
        self.valid.make_mut();
        self
    }

    /// True when the matrix still borrows container storage.
    pub fn is_zero_copy(&self) -> bool {
        self.data.is_shared() || self.valid.is_shared()
    }
}

/// A reusable query-gathering buffer sized for batch scoring — the
/// serving-side entry point to the tiled kernel.
///
/// A long-lived matcher (the `tdmatch serve` daemon) coalesces requests
/// arriving within its batching window into one scoring call. This
/// buffer is the coalescing surface: a small owned [`ScoreMatrix`] of
/// [`QUERY_BLOCK`] rows (the tile width [`batch_top_k`] scores against
/// one cache-resident target block) that queries are pushed into and
/// that is [`clear`](QueryBlock::clear)ed and refilled batch after batch
/// without reallocating.
///
/// Rows enter three ways, matching the serving request kinds:
///
/// * [`push_unit`](QueryBlock::push_unit) — an already-normalized row
///   (e.g. gathered from a loaded artifact's query matrix), installed
///   verbatim so batched scores stay **bit-identical** to scoring the
///   source row directly;
/// * [`push_raw`](QueryBlock::push_raw) — an un-normalized vector (e.g.
///   an out-of-corpus query embedding), L2-normalized on entry exactly
///   like [`ScoreMatrix::set_row`];
/// * [`push_missing`](QueryBlock::push_missing) — a placeholder slot
///   that yields an empty ranking (used to keep batch positions aligned
///   with request order when a request fails validation).
///
/// ```
/// use tdmatch_embed::score::{batch_top_k_seq, QueryBlock, ScoreMatrix};
///
/// let targets = ScoreMatrix::from_rows([&[1.0f32, 0.0][..], &[0.0, 1.0]], 2);
/// let mut block = QueryBlock::new(2);
/// block.push_raw(&[2.0, 0.0]); // client A's query
/// block.push_raw(&[0.0, 5.0]); // client B's, coalesced into the same batch
/// let ranked = batch_top_k_seq(block.matrix(), &targets, 1, None, None);
/// assert_eq!(ranked[0][0].0, 0); // A matches target 0
/// assert_eq!(ranked[1][0].0, 1); // B matches target 1
/// block.clear(); // ready for the next batch, no reallocation
/// assert!(block.is_empty());
/// ```
#[derive(Debug, Clone)]
pub struct QueryBlock {
    m: ScoreMatrix,
    len: usize,
}

impl QueryBlock {
    /// An empty block of [`QUERY_BLOCK`] rows — the daemon's default
    /// coalescing width.
    pub fn new(dim: usize) -> Self {
        Self::with_capacity(QUERY_BLOCK, dim)
    }

    /// An empty block of `cap` rows (`cap ≥ 1`).
    pub fn with_capacity(cap: usize, dim: usize) -> Self {
        assert!(cap >= 1, "query block capacity must be at least 1");
        Self {
            m: ScoreMatrix::invalid(cap, dim),
            len: 0,
        }
    }

    /// Maximum number of queries one batch can hold.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.m.rows()
    }

    /// Queries pushed since the last [`clear`](QueryBlock::clear).
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no query has been pushed yet.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// True when the block holds `capacity()` queries — time to score.
    #[inline]
    pub fn is_full(&self) -> bool {
        self.len == self.capacity()
    }

    /// Row dimensionality.
    #[inline]
    pub fn dim(&self) -> usize {
        self.m.dim()
    }

    /// Resets the block for the next batch, keeping the allocation.
    /// All rows are re-zeroed and marked missing.
    pub fn clear(&mut self) {
        self.m.data.make_mut().fill(0.0);
        self.m.valid.make_mut().fill(0);
        self.len = 0;
    }

    /// Pushes an **already-normalized** row verbatim; returns its slot.
    /// Panics when full or on a length mismatch.
    pub fn push_unit(&mut self, row: &[f32]) -> usize {
        assert!(!self.is_full(), "query block is full");
        self.m.set_row_prenormalized(self.len, row);
        self.len += 1;
        self.len - 1
    }

    /// Pushes a raw vector, L2-normalizing it on entry; returns its slot.
    /// Panics when full or on a length mismatch.
    pub fn push_raw(&mut self, v: &[f32]) -> usize {
        assert!(!self.is_full(), "query block is full");
        self.m.set_row(self.len, v);
        self.len += 1;
        self.len - 1
    }

    /// Pushes a missing query (empty ranking); returns its slot.
    /// Panics when full.
    pub fn push_missing(&mut self) -> usize {
        assert!(!self.is_full(), "query block is full");
        self.len += 1;
        self.len - 1
    }

    /// The block as a scoring matrix: `capacity()` rows, of which the
    /// first [`len`](QueryBlock::len) are this batch's queries and the
    /// rest are missing (they rank empty and cost nothing to skip).
    #[inline]
    pub fn matrix(&self) -> &ScoreMatrix {
        &self.m
    }
}

/// `(score, index)` entry ordering: `a` strictly better than `b`.
/// IEEE `==`/`<` comparisons keep `-0.0 == 0.0` ties index-broken.
#[inline]
fn better(a: (f32, u32), b: (f32, u32)) -> bool {
    a.0 > b.0 || (a.0 == b.0 && a.1 < b.1)
}

/// A bounded top-k accumulator: a binary max-heap *on badness*, so the
/// root is always the worst kept entry and a full push is one comparison
/// in the common (rejected) case. `O(T log k)` for a T-candidate scan,
/// with the same ordering as sort-by-score-desc / tie-break-by-index-asc
/// / truncate-at-k.
#[derive(Debug, Clone)]
pub struct TopK {
    k: usize,
    /// `heap[0]` is the worst kept `(score, index)` entry.
    heap: Vec<(f32, u32)>,
}

impl TopK {
    /// An empty accumulator keeping at most `k` entries.
    pub fn new(k: usize) -> Self {
        Self {
            k,
            heap: Vec::with_capacity(k.min(4096)),
        }
    }

    /// Drops all entries, keeping `k` and the allocation.
    pub fn clear(&mut self) {
        self.heap.clear();
    }

    /// Entries currently kept.
    #[inline]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when nothing has been kept yet.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Offers `(idx, score)`; kept iff it beats the current worst (or the
    /// accumulator is not full). Duplicate offers are kept as duplicates,
    /// like the sort-based path did.
    #[inline]
    pub fn push(&mut self, idx: usize, score: f32) {
        // `+ 0.0` canonicalizes -0.0 so tie-breaks match IEEE equality.
        let entry = (score + 0.0, idx as u32);
        if self.heap.len() < self.k {
            self.heap.push(entry);
            self.sift_up(self.heap.len() - 1);
        } else if self.k > 0 && better(entry, self.heap[0]) {
            self.heap[0] = entry;
            self.sift_down();
        }
    }

    fn sift_up(&mut self, mut i: usize) {
        while i > 0 {
            let parent = (i - 1) / 2;
            // Max-heap on badness: a worse child bubbles above its parent.
            if better(self.heap[parent], self.heap[i]) {
                self.heap.swap(i, parent);
                i = parent;
            } else {
                break;
            }
        }
    }

    fn sift_down(&mut self) {
        let n = self.heap.len();
        let mut i = 0;
        loop {
            let (l, r) = (2 * i + 1, 2 * i + 2);
            let mut worst = i;
            if l < n && better(self.heap[worst], self.heap[l]) {
                worst = l;
            }
            if r < n && better(self.heap[worst], self.heap[r]) {
                worst = r;
            }
            if worst == i {
                break;
            }
            self.heap.swap(i, worst);
            i = worst;
        }
    }

    /// Empties the accumulator into a ranked `(index, score)` list:
    /// decreasing score, ties by ascending index.
    pub fn drain_sorted(&mut self) -> Vec<(usize, f32)> {
        let mut out: Vec<(usize, f32)> = self
            .heap
            .drain(..)
            .map(|(s, i)| (i as usize, s))
            .collect();
        out.sort_by(|a, b| {
            b.1.partial_cmp(&a.1)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| a.0.cmp(&b.0))
        });
        out
    }
}

/// Ranks the top `k` of an arbitrary `(index, score)` stream — the
/// bounded-heap replacement for collect / sort / truncate in scorers that
/// are not dot products (TF-IDF, MLP rankers, …).
pub fn select_top_k(scores: impl IntoIterator<Item = (usize, f32)>, k: usize) -> Vec<(usize, f32)> {
    let mut top = TopK::new(k);
    for (i, s) in scores {
        top.push(i, s);
    }
    top.drain_sorted()
}

/// Per-block target-row count: sized so one block of rows fits in
/// ~[`TARGET_BLOCK_BYTES`] of cache.
#[inline]
fn target_block_len(dim: usize) -> usize {
    (TARGET_BLOCK_BYTES / (dim.max(1) * std::mem::size_of::<f32>())).clamp(16, 1024)
}

/// Sequential batch scorer over pre-normalized matrices; results land in
/// `out[i]` for global query `q_lo + i`. Closures receive *global* query
/// indices.
fn score_queries_into(
    queries: &ScoreMatrix,
    targets: &ScoreMatrix,
    k: usize,
    q_lo: usize,
    extra: Option<&dyn Fn(usize, usize) -> f32>,
    candidates: Option<&dyn Fn(usize) -> Vec<usize>>,
    out: &mut [Vec<(usize, f32)>],
) {
    if extra.is_none() && candidates.is_none() {
        return score_dense_into(queries, targets, k, q_lo, out);
    }
    let mut top = TopK::new(k);
    for (oi, slot) in out.iter_mut().enumerate() {
        let q = q_lo + oi;
        if !queries.is_valid(q) {
            continue; // missing query ⇒ empty ranking
        }
        let qrow = queries.row(q);
        top.clear();
        let mut offer = |t: usize| {
            let base = if targets.is_valid(t) {
                dot_unrolled(qrow, targets.row(t))
            } else {
                -1.0
            };
            let score = match extra {
                Some(f) => (base + f(q, t)) / 2.0,
                None => base,
            };
            top.push(t, score);
        };
        match candidates {
            Some(f) => {
                for t in f(q) {
                    offer(t);
                }
            }
            None => {
                for t in 0..targets.rows() {
                    offer(t);
                }
            }
        }
        *slot = top.drain_sorted();
    }
}

/// The tiled hot path (no blocking, no score combination): query blocks ×
/// target blocks, so each cache-resident target block is scored against
/// up to [`QUERY_BLOCK`] queries before the next block streams in.
fn score_dense_into(
    queries: &ScoreMatrix,
    targets: &ScoreMatrix,
    k: usize,
    q_lo: usize,
    out: &mut [Vec<(usize, f32)>],
) {
    let t_rows = targets.rows();
    let block = target_block_len(targets.dim());
    let mut scores = vec![0.0f32; block.min(t_rows.max(1))];
    let mut tops: Vec<TopK> = (0..QUERY_BLOCK.min(out.len())).map(|_| TopK::new(k)).collect();

    let mut qb = 0;
    while qb < out.len() {
        let qe = (qb + QUERY_BLOCK).min(out.len());
        for top in &mut tops[..qe - qb] {
            top.clear();
        }
        let mut tb = 0;
        while tb < t_rows {
            let te = (tb + block).min(t_rows);
            for (qi, top) in tops[..qe - qb].iter_mut().enumerate() {
                let q = q_lo + qb + qi;
                if !queries.is_valid(q) {
                    continue;
                }
                let qrow = queries.row(q);
                let tile = &mut scores[..te - tb];
                // Fill the score tile, then feed the heap. The validity
                // branch is per-row (well-predicted) and must gate the
                // dot itself: an invalid row may belong to a matrix whose
                // inferred dim is 0 (every row missing), where a dot
                // against a nonzero-dim query would be a length mismatch.
                for (j, s) in tile.iter_mut().enumerate() {
                    let t = tb + j;
                    *s = if targets.is_valid(t) {
                        dot_unrolled(qrow, targets.row(t))
                    } else {
                        -1.0
                    };
                }
                for (j, &s) in tile.iter().enumerate() {
                    top.push(tb + j, s);
                }
            }
            tb = te;
        }
        for (qi, top) in tops[..qe - qb].iter_mut().enumerate() {
            let q = q_lo + qb + qi;
            if queries.is_valid(q) {
                out[qb + qi] = top.drain_sorted();
            }
        }
        qb = qe;
    }
}

/// Sequential batch top-k: for every query row, the `k` best targets by
/// normalized dot product (= cosine of the original vectors), with the
/// missing-row and ranking semantics described in the [module
/// docs](self). `extra`, when given, is averaged with the base score over
/// the full candidate pool; `candidates` restricts scoring per query
/// (blocking).
pub fn batch_top_k_seq(
    queries: &ScoreMatrix,
    targets: &ScoreMatrix,
    k: usize,
    extra: Option<&dyn Fn(usize, usize) -> f32>,
    candidates: Option<&dyn Fn(usize) -> Vec<usize>>,
) -> Vec<Vec<(usize, f32)>> {
    let mut out = vec![Vec::new(); queries.rows()];
    score_queries_into(queries, targets, k, 0, extra, candidates, &mut out);
    out
}

/// Parallel [`batch_top_k_seq`]: splits the queries over `threads`
/// workers (crossbeam scoped threads over disjoint output chunks). Every
/// query's ranking is computed by the same deterministic code path, so
/// the output is bit-identical to the sequential scorer at any thread
/// count.
pub fn batch_top_k(
    queries: &ScoreMatrix,
    targets: &ScoreMatrix,
    k: usize,
    extra: Option<&(dyn Fn(usize, usize) -> f32 + Sync)>,
    candidates: Option<&(dyn Fn(usize) -> Vec<usize> + Sync)>,
    threads: usize,
) -> Vec<Vec<(usize, f32)>> {
    let n = queries.rows();
    let threads = threads.max(1).min(n.max(1));
    if threads <= 1 {
        return batch_top_k_seq(
            queries,
            targets,
            k,
            extra.map(|f| f as &dyn Fn(usize, usize) -> f32),
            candidates.map(|f| f as &dyn Fn(usize) -> Vec<usize>),
        );
    }
    let mut out = vec![Vec::new(); n];
    let chunk = n.div_ceil(threads);
    crossbeam::thread::scope(|scope| {
        for (ci, out_chunk) in out.chunks_mut(chunk).enumerate() {
            scope.spawn(move |_| {
                score_queries_into(
                    queries,
                    targets,
                    k,
                    ci * chunk,
                    extra.map(|f| f as &dyn Fn(usize, usize) -> f32),
                    candidates.map(|f| f as &dyn Fn(usize) -> Vec<usize>),
                    out_chunk,
                );
            });
        }
    })
    .expect("batch scorer worker panicked");
    out
}

/// Reference scorer for one query against optional target rows — the
/// legacy cosine-per-pair path, kept as the property-test oracle.
#[doc(hidden)]
pub fn naive_rank(
    query: &[f32],
    targets: &[Option<Vec<f32>>],
    k: usize,
) -> Vec<(usize, f32)> {
    let mut scored: Vec<(usize, f32)> = targets
        .iter()
        .enumerate()
        .map(|(t, tv)| (t, tv.as_ref().map_or(-1.0, |tv| cosine(query, tv))))
        .collect();
    scored.sort_by(|a, b| {
        b.1.partial_cmp(&a.1)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| a.0.cmp(&b.0))
    });
    scored.truncate(k);
    scored
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(x: f32, y: f32) -> Option<Vec<f32>> {
        Some(vec![x, y])
    }

    #[test]
    fn dot_unrolled_matches_naive() {
        for len in [0usize, 1, 3, 7, 8, 9, 16, 31, 64, 100] {
            let a: Vec<f32> = (0..len).map(|i| (i as f32 * 0.7).sin()).collect();
            let b: Vec<f32> = (0..len).map(|i| (i as f32 * 1.3).cos()).collect();
            let naive: f32 = a.iter().zip(&b).map(|(x, y)| x * y).sum();
            let fast = dot_unrolled(&a, &b);
            assert!((naive - fast).abs() < 1e-4, "len {len}: {naive} vs {fast}");
        }
    }

    #[test]
    fn matrix_normalizes_and_tracks_validity() {
        let rows = vec![v(3.0, 4.0), None, v(0.0, 0.0)];
        let m = ScoreMatrix::from_options(&rows);
        assert_eq!((m.rows(), m.dim()), (3, 2));
        assert_eq!(m.valid_rows(), 2);
        assert!(m.is_valid(0) && !m.is_valid(1) && m.is_valid(2));
        assert!((m.row(0)[0] - 0.6).abs() < 1e-6 && (m.row(0)[1] - 0.8).abs() < 1e-6);
        assert_eq!(m.row(1), &[0.0, 0.0]); // invalid rows are zeroed
        assert_eq!(m.row(2), &[0.0, 0.0]); // zero rows stay zero
    }

    #[test]
    fn all_missing_matrix_has_zero_dim() {
        let m = ScoreMatrix::from_options(&[None, None]);
        assert_eq!((m.rows(), m.dim(), m.valid_rows()), (2, 0, 0));
    }

    #[test]
    fn all_missing_targets_rank_by_index_without_dotting() {
        // Regression: an all-None target side infers dim 0; the dense
        // tile path must not dot a dim-0 row against a dim-2 query.
        let qm = ScoreMatrix::from_options(&[v(1.0, 0.0)]);
        let tm = ScoreMatrix::from_options(&[None, None]);
        let got = batch_top_k_seq(&qm, &tm, 5, None, None);
        assert_eq!(got[0], vec![(0, -1.0), (1, -1.0)]);
    }

    #[test]
    fn top_k_keeps_best_with_index_tiebreak() {
        let mut top = TopK::new(3);
        for (i, s) in [(0, 0.5), (1, 0.9), (2, 0.5), (3, 0.1), (4, 0.9)] {
            top.push(i, s);
        }
        // 0.9@1, 0.9@4, then the 0.5 tie keeps the lower index 0.
        assert_eq!(top.drain_sorted(), vec![(1, 0.9), (4, 0.9), (0, 0.5)]);
    }

    #[test]
    fn top_k_zero_capacity_keeps_nothing() {
        let mut top = TopK::new(0);
        top.push(0, 1.0);
        assert!(top.drain_sorted().is_empty());
    }

    #[test]
    fn negative_zero_ties_break_by_index() {
        let mut top = TopK::new(2);
        top.push(0, -0.0);
        top.push(1, 0.0);
        top.push(2, 0.0);
        assert_eq!(top.drain_sorted(), vec![(0, 0.0), (1, 0.0)]);
    }

    #[test]
    fn select_top_k_equals_sort_truncate() {
        let scores: Vec<(usize, f32)> =
            (0..50).map(|i| (i, ((i * 37) % 11) as f32 / 11.0)).collect();
        let mut sorted = scores.clone();
        sorted.sort_by(|a, b| {
            b.1.partial_cmp(&a.1)
                .unwrap()
                .then_with(|| a.0.cmp(&b.0))
        });
        sorted.truncate(7);
        assert_eq!(select_top_k(scores, 7), sorted);
    }

    #[test]
    fn batch_matches_naive_oracle() {
        let queries: Vec<Option<Vec<f32>>> = (0..13)
            .map(|i| {
                if i % 5 == 4 {
                    None
                } else {
                    Some(vec![(i as f32 * 0.7).cos(), (i as f32 * 0.7).sin(), 0.3])
                }
            })
            .collect();
        let targets: Vec<Option<Vec<f32>>> = (0..37)
            .map(|i| {
                if i % 7 == 3 {
                    None
                } else {
                    Some(vec![(i as f32 * 1.3).cos(), (i as f32 * 1.3).sin(), -0.2])
                }
            })
            .collect();
        let qm = ScoreMatrix::from_options(&queries);
        let tm = ScoreMatrix::from_options(&targets);
        for k in [0usize, 1, 5, 37, 64] {
            let got = batch_top_k_seq(&qm, &tm, k, None, None);
            for (q, ranked) in got.iter().enumerate() {
                match &queries[q] {
                    None => assert!(ranked.is_empty()),
                    Some(qv) => {
                        let want = naive_rank(qv, &targets, k);
                        let got_idx: Vec<usize> = ranked.iter().map(|&(t, _)| t).collect();
                        let want_idx: Vec<usize> = want.iter().map(|&(t, _)| t).collect();
                        assert_eq!(got_idx, want_idx, "q={q} k={k}");
                        for (g, w) in ranked.iter().zip(&want) {
                            assert!((g.1 - w.1).abs() < 1e-5);
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn parallel_is_bit_identical_to_sequential() {
        let rows: Vec<Option<Vec<f32>>> = (0..41)
            .map(|i| Some(vec![(i as f32).sin(), (i as f32).cos(), 0.1 * i as f32]))
            .collect();
        let m = ScoreMatrix::from_options(&rows);
        let extra = |q: usize, t: usize| ((q * 7 + t) % 5) as f32 / 5.0 - 0.4;
        let cand = |q: usize| (0..41).filter(|t| !(q + t).is_multiple_of(3)).collect::<Vec<_>>();
        let seq = batch_top_k(&m, &m, 6, Some(&extra), Some(&cand), 1);
        for threads in [2, 3, 8, 64] {
            let par = batch_top_k(&m, &m, 6, Some(&extra), Some(&cand), threads);
            assert_eq!(seq, par, "threads = {threads}");
        }
    }

    #[test]
    fn matrix_roundtrips_through_container_zero_copy() {
        let rows: Vec<Option<Vec<f32>>> = (0..70)
            .map(|i| {
                if i % 9 == 5 {
                    None
                } else {
                    Some(vec![(i as f32).sin(), (i as f32).cos(), 0.1 * i as f32])
                }
            })
            .collect();
        let m = ScoreMatrix::from_options(&rows);
        let mut w = ContainerWriter::new();
        m.write_sections(3, &mut w);
        let storage = Storage::from_bytes(&w.finish());
        let c = storage.container().unwrap();
        let loaded = ScoreMatrix::from_sections(&storage, &c, 3).unwrap();
        assert!(loaded.is_zero_copy());
        assert_eq!(m, loaded);
        // Missing slot is an error, not a panic.
        assert!(ScoreMatrix::from_sections(&storage, &c, 4).is_err());
        // Rankings from the loaded matrix are bit-identical.
        assert_eq!(
            batch_top_k_seq(&m, &m, 7, None, None),
            batch_top_k_seq(&loaded, &loaded, 7, None, None),
        );
        // A mutated copy detaches from storage without touching the view.
        let mut cow = loaded.clone();
        cow.set_row(5, &[1.0, 0.0, 0.0]);
        assert!(!cow.is_zero_copy());
        assert!(loaded.is_zero_copy());
        assert_ne!(m.row(5), cow.row(5));
        let owned = loaded.clone().into_owned();
        assert!(!owned.is_zero_copy());
        assert_eq!(m, owned);
    }

    #[test]
    fn prenormalized_rows_install_verbatim() {
        let src = ScoreMatrix::from_options(&[v(3.0, 4.0)]);
        let mut dst = ScoreMatrix::invalid(1, 2);
        dst.set_row_prenormalized(0, src.row(0));
        assert!(dst.is_valid(0));
        // Bit-for-bit: no second normalization happened.
        for (a, b) in src.row(0).iter().zip(dst.row(0)) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn query_block_batches_score_bit_identical_to_direct_rows() {
        let queries: Vec<Option<Vec<f32>>> = (0..5)
            .map(|i| v((i as f32 * 0.7).cos(), (i as f32 * 0.7).sin()))
            .collect();
        let targets: Vec<Option<Vec<f32>>> = (0..29)
            .map(|i| {
                if i % 7 == 3 {
                    None
                } else {
                    v((i as f32 * 1.3).cos(), (i as f32 * 1.3).sin())
                }
            })
            .collect();
        let qm = ScoreMatrix::from_options(&queries);
        let tm = ScoreMatrix::from_options(&targets);
        let direct = batch_top_k_seq(&qm, &tm, 4, None, None);

        // Gather the same queries through a reused block, two batches.
        let mut block = QueryBlock::with_capacity(3, 2);
        let mut gathered: Vec<Vec<(usize, f32)>> = Vec::new();
        for chunk in (0..qm.rows()).collect::<Vec<_>>().chunks(block.capacity()) {
            block.clear();
            for &q in chunk {
                block.push_unit(qm.row(q));
            }
            let ranked = batch_top_k_seq(block.matrix(), &tm, 4, None, None);
            gathered.extend(ranked.into_iter().take(chunk.len()));
        }
        assert_eq!(gathered.len(), direct.len());
        for (g, d) in gathered.iter().zip(&direct) {
            assert_eq!(g.len(), d.len());
            for (a, b) in g.iter().zip(d) {
                assert_eq!(a.0, b.0);
                assert_eq!(a.1.to_bits(), b.1.to_bits(), "scores must be bit-identical");
            }
        }
    }

    #[test]
    fn query_block_missing_and_unused_slots_rank_empty() {
        let tm = ScoreMatrix::from_options(&[v(1.0, 0.0)]);
        let mut block = QueryBlock::new(2);
        assert_eq!(block.capacity(), QUERY_BLOCK);
        block.push_raw(&[1.0, 0.0]);
        block.push_missing();
        assert_eq!(block.len(), 2);
        let ranked = batch_top_k_seq(block.matrix(), &tm, 3, None, None);
        assert_eq!(ranked.len(), QUERY_BLOCK);
        assert_eq!(ranked[0], vec![(0, 1.0)]);
        assert!(ranked[1].is_empty()); // pushed missing
        assert!(ranked[2..].iter().all(Vec::is_empty)); // never pushed
        // Clearing re-arms every slot.
        block.clear();
        assert!(block.is_empty() && !block.is_full());
        assert_eq!(block.matrix().valid_rows(), 0);
    }

    #[test]
    fn grow_rows_carries_bits_and_new_rows_start_invalid() {
        let m0 = ScoreMatrix::from_options(&(0..70).map(|i| v(i as f32, 1.0)).collect::<Vec<_>>());
        let mut m = m0.clone();
        m.grow_rows(131); // crosses a bitmap-word boundary
        assert_eq!((m.rows(), m.dim()), (131, 2));
        assert_eq!(m.valid_rows(), 70);
        for i in 0..70 {
            assert!(m.is_valid(i));
            for (a, b) in m0.row(i).iter().zip(m.row(i)) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
        }
        for i in 70..131 {
            assert!(!m.is_valid(i));
            assert_eq!(m.row(i), &[0.0, 0.0]);
        }
        // Growing a zero-copy matrix detaches it first.
        let mut w = ContainerWriter::new();
        m0.write_sections(0, &mut w);
        let storage = Storage::from_bytes(&w.finish());
        let c = storage.container().unwrap();
        let mut mapped = ScoreMatrix::from_sections(&storage, &c, 0).unwrap();
        assert!(mapped.is_zero_copy());
        mapped.grow_rows(71);
        assert!(!mapped.is_zero_copy());
        assert_eq!(mapped.valid_rows(), 70);
    }

    #[test]
    fn clear_row_tombstones_to_missing_semantics() {
        let mut tm = ScoreMatrix::from_options(&[v(1.0, 0.0), v(0.0, 1.0)]);
        tm.clear_row(0);
        assert!(!tm.is_valid(0) && tm.is_valid(1));
        assert_eq!(tm.row(0), &[0.0, 0.0]);
        let qm = ScoreMatrix::from_options(&[v(1.0, 0.0)]);
        let got = batch_top_k_seq(&qm, &tm, 2, None, None);
        // The cleared row ranks last at exactly -1.0, like a missing target.
        assert_eq!(got[0], vec![(1, 0.0), (0, -1.0)]);
    }

    #[test]
    fn extra_score_averages_and_missing_target_ranks_last() {
        let queries = vec![v(1.0, 0.0)];
        let targets = vec![None, v(1.0, 0.0)];
        let qm = ScoreMatrix::from_options(&queries);
        let tm = ScoreMatrix::from_options(&targets);
        let extra = |_q: usize, _t: usize| 1.0f32;
        let got = batch_top_k_seq(&qm, &tm, 2, Some(&extra), None);
        // Target 1: (1 + 1)/2 = 1; target 0 (missing): (-1 + 1)/2 = 0.
        assert_eq!(got[0][0], (1, 1.0));
        assert_eq!(got[0][1], (0, 0.0));
    }
}
