//! Table VII — train and test execution times (seconds) per method per
//! task, averaged over the task's scenarios.
//!
//! Paper shape: our method's *test* time is the fastest of all methods
//! (embedding lookup + cosine); its train time sits between the plain
//! embedding baselines and the fine-tuned transformers; S-BE has no
//! training at all.

use tdmatch_bench::{run_wrw, scale_from_env, supervised_options, MethodRun, TABLE_K};
use tdmatch_datasets::{audit, claims, corona, imdb};
use tdmatch_datasets::corona::SentenceKind;
use tdmatch_datasets::Scenario;

struct Task {
    name: &'static str,
    scenarios: Vec<Scenario>,
}

fn method_times(scenario: &Scenario) -> Vec<(String, f64, f64)> {
    let opts = supervised_options(42);
    let mut rows: Vec<(String, f64, f64)> = Vec::new();

    let w2v = tdmatch_baselines::w2vec::run(
        &scenario.first,
        &scenario.second,
        &tdmatch_baselines::w2vec::W2vecOptions::default(),
        TABLE_K,
    );
    rows.push((w2v.method, w2v.train_secs, w2v.test_secs));

    let d2v = tdmatch_baselines::d2vec::run(
        &scenario.first,
        &scenario.second,
        &tdmatch_baselines::d2vec::D2vecOptions::default(),
        TABLE_K,
    );
    rows.push((d2v.method, d2v.train_secs, d2v.test_secs));

    let sbe = tdmatch_baselines::sbe::run(
        &scenario.first,
        &scenario.second,
        &scenario.pretrained,
        TABLE_K,
    );
    rows.push((sbe.method, sbe.train_secs, sbe.test_secs));

    let (wrw, _): (MethodRun, _) = run_wrw(scenario, TABLE_K);
    rows.push((wrw.method, wrw.train_secs, wrw.test_secs));

    let rank = tdmatch_baselines::rank::run(
        &scenario.first,
        &scenario.second,
        &scenario.ground_truth,
        &scenario.pretrained,
        &opts,
        TABLE_K,
    );
    rows.push((rank.method, rank.train_secs, rank.test_secs));

    let lbe = tdmatch_baselines::supervised::run_lbe(
        &scenario.first,
        &scenario.second,
        &scenario.ground_truth,
        &scenario.pretrained,
        &opts,
        TABLE_K,
    );
    rows.push((lbe.method, lbe.train_secs, lbe.test_secs));

    let ditto = tdmatch_baselines::supervised::run_ditto(
        &scenario.first,
        &scenario.second,
        &scenario.ground_truth,
        &scenario.pretrained,
        &opts,
        TABLE_K,
    );
    rows.push((ditto.method, ditto.train_secs, ditto.test_secs));

    rows
}

fn main() {
    let scale = scale_from_env();
    let tasks = vec![
        Task {
            name: "Text to data",
            scenarios: vec![
                imdb::generate(scale, 42, true),
                corona::generate(scale, 42, SentenceKind::Generated),
            ],
        },
        Task {
            name: "Structured text",
            scenarios: vec![audit::generate(scale, 42)],
        },
        Task {
            name: "Text to text",
            scenarios: vec![claims::snopes(scale, 42), claims::politifact(scale, 42)],
        },
    ];

    println!("\n=== Table VII — train and test execution times (sec) ===");
    println!("{:<16} {:<10} {:>10} {:>10}", "Task", "Method", "Train", "Test");
    println!("{}", "-".repeat(50));
    for task in tasks {
        // Average per method over the task's scenarios.
        let mut agg: std::collections::BTreeMap<String, (f64, f64, usize)> =
            std::collections::BTreeMap::new();
        for scenario in &task.scenarios {
            for (m, tr, te) in method_times(scenario) {
                let e = agg.entry(m).or_insert((0.0, 0.0, 0));
                e.0 += tr;
                e.1 += te;
                e.2 += 1;
            }
        }
        for (m, (tr, te, n)) in agg {
            println!(
                "{:<16} {:<10} {:>10.3} {:>10.4}",
                task.name,
                m,
                tr / n as f64,
                te / n as f64
            );
        }
        println!("{}", "-".repeat(50));
    }
}
