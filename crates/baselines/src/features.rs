//! Pair features for the supervised baselines.
//!
//! Each starred system in the paper consumes a (query, target) document
//! pair. We encode a pair as a feature vector; every baseline sees only
//! the view its architecture consumes:
//!
//! * **RANK\*** — sentence-pair signals (pre-trained cosine + surface
//!   overlap), the reranker of \[39\];
//! * **DITTO\*** — bigram-level overlap over the serialized
//!   (`[COL]/[VAL]`) sequences, Ditto's token-sequence view;
//! * **DEEP-M\*** — attribute-wise aggregated similarities, DeepMatcher's
//!   per-attribute comparators;
//! * **TAPAS\*** — numeric-cell and cell-containment signals, the
//!   table-QA view.

use std::collections::HashSet;

use tdmatch_core::corpus::Corpus;
use tdmatch_embed::vectors::cosine;
use tdmatch_kb::PretrainedModel;
use tdmatch_text::normalize::parse_number;
use tdmatch_text::Preprocessor;

use crate::sbe::encode_corpus;
use crate::serialize::{doc_tokens, field_tokens, serialize_doc};

/// Which baseline's feature view to compute.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FeatureSet {
    /// Base features only.
    Rank,
    /// Base + serialized-bigram overlap.
    Ditto,
    /// Base + attribute-wise similarity aggregates.
    DeepMatcher,
    /// Base + numeric/cell table signals.
    Tapas,
}

impl FeatureSet {
    /// Feature-vector dimensionality.
    pub fn dim(self) -> usize {
        4
    }
}

/// Precomputed per-document artefacts enabling O(tokens) pair features.
pub struct PairFeaturizer {
    sbe_first: Vec<Vec<f32>>,
    sbe_second: Vec<Vec<f32>>,
    token_sets_first: Vec<HashSet<String>>,
    token_sets_second: Vec<HashSet<String>>,
    bigrams_first: Vec<HashSet<(String, String)>>,
    bigrams_second: Vec<HashSet<(String, String)>>,
    fields_first: Vec<Vec<HashSet<String>>>,
    numbers_first: Vec<HashSet<u64>>,
    numbers_second: Vec<HashSet<u64>>,
    query_len: Vec<usize>,
    target_len: Vec<usize>,
}

fn bigram_set(tokens: &[String]) -> HashSet<(String, String)> {
    tokens
        .windows(2)
        .map(|w| (w[0].clone(), w[1].clone()))
        .collect()
}

fn number_set(tokens: &[String]) -> HashSet<u64> {
    tokens
        .iter()
        .filter_map(|t| parse_number(t))
        .map(|v| v.round() as u64)
        .collect()
}

fn jaccard<T: Eq + std::hash::Hash>(a: &HashSet<T>, b: &HashSet<T>) -> f32 {
    if a.is_empty() && b.is_empty() {
        return 0.0;
    }
    let inter = a.intersection(b).count();
    let union = a.len() + b.len() - inter;
    inter as f32 / union.max(1) as f32
}

impl PairFeaturizer {
    /// Precomputes all per-document artefacts.
    pub fn new(first: &Corpus, second: &Corpus, pretrained: &PretrainedModel) -> Self {
        let pre = Preprocessor::default();
        let tokens_first: Vec<Vec<String>> = (0..first.len())
            .map(|i| doc_tokens(first, i, &pre))
            .collect();
        let tokens_second: Vec<Vec<String>> = (0..second.len())
            .map(|i| doc_tokens(second, i, &pre))
            .collect();
        let serialized_first: Vec<Vec<String>> = (0..first.len())
            .map(|i| serialize_doc(first, i, &pre))
            .collect();
        let serialized_second: Vec<Vec<String>> = (0..second.len())
            .map(|i| serialize_doc(second, i, &pre))
            .collect();
        Self {
            sbe_first: encode_corpus(first, pretrained, &pre),
            sbe_second: encode_corpus(second, pretrained, &pre),
            token_sets_first: tokens_first
                .iter()
                .map(|t| t.iter().cloned().collect())
                .collect(),
            token_sets_second: tokens_second
                .iter()
                .map(|t| t.iter().cloned().collect())
                .collect(),
            bigrams_first: serialized_first.iter().map(|t| bigram_set(t)).collect(),
            bigrams_second: serialized_second.iter().map(|t| bigram_set(t)).collect(),
            fields_first: (0..first.len())
                .map(|i| {
                    field_tokens(first, i, &pre)
                        .into_iter()
                        .map(|f| f.into_iter().collect())
                        .collect()
                })
                .collect(),
            numbers_first: tokens_first.iter().map(|t| number_set(t)).collect(),
            numbers_second: tokens_second.iter().map(|t| number_set(t)).collect(),
            query_len: tokens_second.iter().map(|t| t.len()).collect(),
            target_len: tokens_first.iter().map(|t| t.len()).collect(),
        }
    }

    /// Number of query documents.
    pub fn n_queries(&self) -> usize {
        self.sbe_second.len()
    }

    /// Number of target documents.
    pub fn n_targets(&self) -> usize {
        self.sbe_first.len()
    }

    /// S-BE embedding of query `q` (used directly by L-BE*).
    pub fn query_embedding(&self, q: usize) -> &[f32] {
        &self.sbe_second[q]
    }

    /// Computes the feature vector for pair `(q, t)` under `set`.
    ///
    /// Feature access is deliberately *per system*: RANK\* models a
    /// reranker over IR scores (it sees the strong TF-IDF/overlap
    /// signals); the entity-matching transformers see only the views
    /// their architectures consume — serialized sequences (Ditto),
    /// per-attribute comparisons (DeepMatcher), table cells (TAPAS) —
    /// combined with the pre-trained sentence space. This keeps the
    /// substitution faithful: with little training data, those views
    /// underperform the reranker and the joint graph embeddings, as in
    /// the paper's Tables I–II.
    pub fn features(&self, q: usize, t: usize, set: FeatureSet) -> Vec<f32> {
        let qs = &self.token_sets_second[q];
        let ts = &self.token_sets_first[t];
        let sbe_cos = cosine(&self.sbe_second[q], &self.sbe_first[t]);
        let len_ratio = (self.query_len[q].min(self.target_len[t]) as f32)
            / (self.query_len[q].max(self.target_len[t]).max(1) as f32);
        let out = match set {
            FeatureSet::Rank => {
                // The reranker of [39] scores *sentence* pairs: it sees
                // the pre-trained sentence space plus surface overlap,
                // but no table-aware retrieval scores — which is why it
                // transfers poorly to the text-to-data tables (paper
                // Tables I/II) while staying strong on claim matching
                // (Tables IV/V).
                let inter = qs.intersection(ts).count() as f32;
                vec![
                    sbe_cos,
                    jaccard(qs, ts),
                    inter / (self.query_len[q].max(1) as f32),
                    len_ratio,
                ]
            }
            FeatureSet::Ditto => {
                let bigram = jaccard(&self.bigrams_second[q], &self.bigrams_first[t]);
                let unigram_hit =
                    (qs.intersection(ts).count() > 0) as u8 as f32;
                vec![sbe_cos, bigram, unigram_hit, len_ratio]
            }
            FeatureSet::DeepMatcher => {
                let fields = &self.fields_first[t];
                let sims: Vec<f32> = fields.iter().map(|f| jaccard(qs, f)).collect();
                let max = sims.iter().copied().fold(0.0f32, f32::max);
                let mean = if sims.is_empty() {
                    0.0
                } else {
                    sims.iter().sum::<f32>() / sims.len() as f32
                };
                vec![sbe_cos, max, mean, len_ratio]
            }
            FeatureSet::Tapas => {
                let qn = &self.numbers_second[q];
                let tn = &self.numbers_first[t];
                let num_overlap = if qn.is_empty() {
                    0.0
                } else {
                    qn.intersection(tn).count() as f32 / qn.len() as f32
                };
                let fields = &self.fields_first[t];
                let contained = fields
                    .iter()
                    .filter(|f| !f.is_empty() && f.iter().all(|tok| qs.contains(tok)))
                    .count() as f32;
                vec![
                    sbe_cos,
                    num_overlap,
                    contained / fields.len().max(1) as f32,
                    len_ratio,
                ]
            }
        };
        debug_assert_eq!(out.len(), set.dim());
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tdmatch_core::corpus::{Table, TextCorpus};

    fn featurizer() -> PairFeaturizer {
        let first = Corpus::Table(Table::new(
            "m",
            vec!["title".into(), "cases".into()],
            vec![
                vec!["pulp fiction".into(), "120".into()],
                vec!["sixth sense".into(), "999".into()],
            ],
        ));
        let second = Corpus::Text(TextCorpus::new(vec![
            "a review of pulp fiction with 120 cases".into(),
        ]));
        let model = PretrainedModel::standard(32, 1, 0.3);
        PairFeaturizer::new(&first, &second, &model)
    }

    #[test]
    fn dims_match_sets() {
        let f = featurizer();
        for set in [
            FeatureSet::Rank,
            FeatureSet::Ditto,
            FeatureSet::DeepMatcher,
            FeatureSet::Tapas,
        ] {
            assert_eq!(f.features(0, 0, set).len(), set.dim());
        }
    }

    #[test]
    fn matching_pair_scores_higher_on_overlap_features() {
        let f = featurizer();
        let good = f.features(0, 0, FeatureSet::Rank);
        let bad = f.features(0, 1, FeatureSet::Rank);
        assert!(good[1] > bad[1], "jaccard: {good:?} vs {bad:?}");
        assert!(good[2] > bad[2], "overlap fraction");
    }

    #[test]
    fn tapas_sees_numeric_overlap() {
        let f = featurizer();
        let good = f.features(0, 0, FeatureSet::Tapas);
        let bad = f.features(0, 1, FeatureSet::Tapas);
        assert!(good[1] > bad[1], "numeric overlap {good:?} {bad:?}");
    }

    #[test]
    fn features_are_finite_and_bounded() {
        let f = featurizer();
        for t in 0..f.n_targets() {
            for feat in f.features(0, t, FeatureSet::Tapas) {
                assert!(feat.is_finite());
                assert!((-1.0..=1.5).contains(&feat), "feature {feat}");
            }
        }
    }
}
