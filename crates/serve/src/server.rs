//! The `tdmatch serve` daemon: a Unix-domain-socket front end over a
//! long-lived [`Matcher`].
//!
//! # Architecture
//!
//! ```text
//! clients ──► listener thread ──► reader thread per connection
//!                                   │ decode + validate + tokenize
//!                                   ▼
//!                             BatchQueue (window / QUERY_BLOCK coalescing)
//!                                   │
//!                                   ▼
//!                          scheduler thread: one Matcher::query_batch_with
//!                          call per batch ──► responses written back
//! ```
//!
//! Reader threads do the cheap per-request work (framing, JSON,
//! tokenizing text queries) so the scheduler's only job is riding the
//! tiled kernel: every batch is **one** scoring call over the
//! pre-normalized matrices, regardless of how many clients contributed
//! queries to it. Responses are written back under a per-connection
//! lock, so one slow client never blocks scoring.
//!
//! # Lifecycle
//!
//! [`Server::start`] binds the socket and spawns the threads;
//! [`Server::join`] parks the caller until the daemon stops. Shutdown —
//! via a `shutdown` request or [`Server::shutdown`] — is *draining*:
//! the listener stops accepting and removes the socket file, queued
//! queries are still answered, then connections are closed. Requests
//! arriving after the drain began get a `shutting_down` error.
//!
//! Requests within one batch may ask for different `k`; the scheduler
//! scores at the largest and truncates per request, which by the
//! engine's total order (score desc, index asc) returns exactly each
//! request's own top-k.

use std::io::BufReader;
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, Weak};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use tdmatch_core::serving::{Matcher, Query, QueryError};
use tdmatch_embed::score::QueryBlock;
use tdmatch_text::Preprocessor;

use crate::batch::{BatchOptions, BatchQueue};
use crate::protocol::{
    read_frame, write_frame, ErrorCode, FrameError, Request, RequestBody, Response, ResponseBody,
    StatsSnapshot,
};

/// Daemon configuration.
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Filesystem path the Unix socket is bound at. Must not exist yet;
    /// the daemon unlinks it on shutdown.
    pub socket: PathBuf,
    /// Request-coalescing policy.
    pub batch: BatchOptions,
}

impl ServeOptions {
    /// Default policy at the given socket path.
    pub fn at<P: Into<PathBuf>>(socket: P) -> Self {
        ServeOptions {
            socket: socket.into(),
            batch: BatchOptions::default(),
        }
    }
}

/// One query waiting for the scheduler.
struct Pending {
    req_id: u64,
    query: Query,
    k: usize,
    conn: Arc<Conn>,
}

/// A connection's write half, shared by its reader thread and the
/// scheduler.
struct Conn {
    stream: Mutex<UnixStream>,
}

impl Conn {
    /// Writes a response frame; errors (peer gone) are swallowed — the
    /// reader thread notices the hangup on its side.
    fn send(&self, response: &Response) {
        let mut stream = self.stream.lock().expect("connection writer poisoned");
        let _ = write_frame(&mut *stream, &response.encode());
    }

    fn hang_up(&self) {
        let stream = self.stream.lock().expect("connection writer poisoned");
        let _ = stream.shutdown(std::net::Shutdown::Both);
    }
}

#[derive(Default)]
struct Counters {
    requests: AtomicU64,
    batched_requests: AtomicU64,
    batches: AtomicU64,
    coalesced: AtomicU64,
    errors: AtomicU64,
    max_batch: AtomicU64,
}

struct ServerInner {
    matcher: Matcher,
    queue: BatchQueue<Pending>,
    running: AtomicBool,
    counters: Counters,
    started: Instant,
    conns: Mutex<Vec<Weak<Conn>>>,
    options: ServeOptions,
    preprocessor: Preprocessor,
}

impl ServerInner {
    fn stats(&self) -> StatsSnapshot {
        StatsSnapshot {
            requests: self.counters.requests.load(Ordering::Relaxed),
            batched_requests: self.counters.batched_requests.load(Ordering::Relaxed),
            batches: self.counters.batches.load(Ordering::Relaxed),
            coalesced: self.counters.coalesced.load(Ordering::Relaxed),
            errors: self.counters.errors.load(Ordering::Relaxed),
            max_batch: self.counters.max_batch.load(Ordering::Relaxed),
            uptime_secs: self.started.elapsed().as_secs_f64(),
        }
    }

    fn count_error(&self) {
        self.counters.errors.fetch_add(1, Ordering::Relaxed);
    }

    /// Begins the drain: stop accepting, refuse new queries, answer the
    /// queued ones. Idempotent.
    fn begin_shutdown(&self) {
        if self.running.swap(false, Ordering::SeqCst) {
            self.queue.close();
        }
    }

    /// Severs every live connection (after the drain), unblocking their
    /// reader threads.
    fn close_connections(&self) {
        let conns = self.conns.lock().expect("connection registry poisoned");
        for conn in conns.iter().filter_map(Weak::upgrade) {
            conn.hang_up();
        }
    }
}

/// A running daemon. See the [module docs](self) for the architecture.
///
/// Dropping the handle shuts the daemon down and waits for its threads.
pub struct Server {
    inner: Arc<ServerInner>,
    listener: Option<JoinHandle<()>>,
    scheduler: Option<JoinHandle<()>>,
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server")
            .field("socket", &self.inner.options.socket)
            .field("running", &self.inner.running.load(Ordering::SeqCst))
            .finish_non_exhaustive()
    }
}

impl Server {
    /// Binds `options.socket` and starts serving `matcher`.
    ///
    /// Fails when the socket path already exists (a previous daemon may
    /// still own it — remove the file only if you know it is stale).
    pub fn start(matcher: Matcher, options: ServeOptions) -> std::io::Result<Server> {
        if options.socket.exists() {
            return Err(std::io::Error::new(
                std::io::ErrorKind::AddrInUse,
                format!(
                    "socket path {} already exists (stale daemon? remove it to reuse)",
                    options.socket.display()
                ),
            ));
        }
        let listener = UnixListener::bind(&options.socket)?;
        listener.set_nonblocking(true)?;
        let inner = Arc::new(ServerInner {
            matcher,
            queue: BatchQueue::new(),
            running: AtomicBool::new(true),
            counters: Counters::default(),
            started: Instant::now(),
            conns: Mutex::new(Vec::new()),
            options,
            preprocessor: Preprocessor::default(),
        });

        let listener_thread = {
            let inner = Arc::clone(&inner);
            std::thread::spawn(move || listen_loop(&inner, listener))
        };
        let scheduler_thread = {
            let inner = Arc::clone(&inner);
            std::thread::spawn(move || schedule_loop(&inner))
        };
        Ok(Server {
            inner,
            listener: Some(listener_thread),
            scheduler: Some(scheduler_thread),
        })
    }

    /// The socket path clients connect to.
    pub fn socket_path(&self) -> &Path {
        &self.inner.options.socket
    }

    /// Current counters.
    pub fn stats(&self) -> StatsSnapshot {
        self.inner.stats()
    }

    /// Triggers the drain from outside the protocol (e.g. a signal
    /// handler). Idempotent; returns immediately.
    pub fn shutdown(&self) {
        self.inner.begin_shutdown();
    }

    /// Parks until the daemon has stopped (a `shutdown` request arrived
    /// or [`shutdown`](Server::shutdown) was called) and both service
    /// threads have exited. Returns the final counters.
    pub fn join(mut self) -> StatsSnapshot {
        self.join_threads();
        self.inner.stats()
    }

    fn join_threads(&mut self) {
        if let Some(t) = self.listener.take() {
            let _ = t.join();
        }
        if let Some(t) = self.scheduler.take() {
            let _ = t.join();
        }
        // Sever connections only now: the scheduler has drained (every
        // accepted query is answered) AND the listener has stopped, so
        // no connection can register after this sweep — a registration
        // racing an earlier sweep would leak a blocked reader thread.
        self.inner.close_connections();
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.inner.begin_shutdown();
        self.join_threads();
    }
}

fn listen_loop(inner: &Arc<ServerInner>, listener: UnixListener) {
    while inner.running.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _addr)) => {
                if stream.set_nonblocking(false).is_err() {
                    continue;
                }
                let conn = Arc::new(Conn {
                    stream: Mutex::new(stream),
                });
                {
                    let mut conns = inner.conns.lock().expect("connection registry poisoned");
                    conns.retain(|w| w.strong_count() > 0);
                    conns.push(Arc::downgrade(&conn));
                }
                let inner = Arc::clone(inner);
                std::thread::spawn(move || serve_connection(&inner, &conn));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(1));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(1)),
        }
    }
    // Unbind before the drain finishes so late connectors fail fast.
    drop(listener);
    let _ = std::fs::remove_file(&inner.options.socket);
}

/// Reader-side request handling: framing, decoding, validation, and the
/// immediate (non-scored) answers. Scored queries go to the queue.
fn serve_connection(inner: &Arc<ServerInner>, conn: &Arc<Conn>) {
    let read_half = match conn.stream.lock().expect("connection writer poisoned").try_clone() {
        Ok(s) => s,
        Err(_) => return,
    };
    let mut reader = BufReader::new(read_half);
    loop {
        let payload = match read_frame(&mut reader) {
            Ok(Some(payload)) => payload,
            Ok(None) => break, // clean hangup
            Err(FrameError::Oversized { len }) => {
                inner.count_error();
                conn.send(&Response::error(
                    0,
                    ErrorCode::Oversized,
                    format!("frame length {len} outside (0, {}]", crate::protocol::MAX_FRAME),
                ));
                break; // stream is desynchronized beyond repair
            }
            Err(FrameError::Truncated) => {
                inner.count_error();
                conn.send(&Response::error(0, ErrorCode::BadFrame, "stream ended mid-frame"));
                break;
            }
            Err(FrameError::Io(_)) => break,
        };
        let request = match Request::decode(&payload) {
            Ok(request) => request,
            Err(bad) => {
                // The frame boundary held, so the connection survives a
                // malformed payload; only framing errors are fatal.
                inner.count_error();
                conn.send(&Response::error(bad.id, bad.code, bad.message));
                continue;
            }
        };
        let id = request.id;
        let (query, k) = match request.body {
            RequestBody::Ping => {
                conn.send(&Response {
                    id,
                    body: ResponseBody::Pong,
                });
                continue;
            }
            RequestBody::Stats => {
                conn.send(&Response {
                    id,
                    body: ResponseBody::Stats(inner.stats()),
                });
                continue;
            }
            RequestBody::Shutdown => {
                conn.send(&Response {
                    id,
                    body: ResponseBody::Stopping,
                });
                inner.begin_shutdown();
                continue; // the drain will sever this connection
            }
            RequestBody::QueryId { doc, k } => (Query::ById(doc), k),
            RequestBody::QueryVector { vector, k } => (Query::ByVector(vector), k),
            RequestBody::QueryText { text, k } => {
                inner.counters.requests.fetch_add(1, Ordering::Relaxed);
                let tokens = inner.preprocessor.base_tokens(&text);
                match inner.matcher.artifact().embed_tokens(&tokens) {
                    Some(vector) => {
                        enqueue(inner, conn, id, Query::ByVector(vector), k);
                    }
                    None => {
                        // No token in the vocabulary: the engine's
                        // missing-query semantics, answered inline.
                        conn.send(&Response {
                            id,
                            body: ResponseBody::Matches {
                                matches: Vec::new(),
                                batch: 0,
                            },
                        });
                    }
                }
                continue;
            }
        };
        inner.counters.requests.fetch_add(1, Ordering::Relaxed);
        enqueue(inner, conn, id, query, k);
    }
}

fn enqueue(inner: &Arc<ServerInner>, conn: &Arc<Conn>, req_id: u64, query: Query, k: usize) {
    let accepted = inner.queue.push(Pending {
        req_id,
        query,
        k,
        conn: Arc::clone(conn),
    });
    if !accepted {
        inner.count_error();
        conn.send(&Response::error(
            req_id,
            ErrorCode::ShuttingDown,
            "daemon is draining",
        ));
    }
}

/// Scheduler: one engine call per coalesced batch.
fn schedule_loop(inner: &Arc<ServerInner>) {
    let mut block = QueryBlock::with_capacity(
        inner.options.batch.max_batch.max(1),
        inner.matcher.dim(),
    );
    while let Some(batch) = inner.queue.next_batch(&inner.options.batch) {
        let n = batch.len();
        inner.counters.batches.fetch_add(1, Ordering::Relaxed);
        inner
            .counters
            .batched_requests
            .fetch_add(n as u64, Ordering::Relaxed);
        if n >= 2 {
            inner.counters.coalesced.fetch_add(n as u64, Ordering::Relaxed);
        }
        inner.counters.max_batch.fetch_max(n as u64, Ordering::Relaxed);

        // Score at the batch's largest k and truncate per request: the
        // engine's total order makes the prefix exactly each request's
        // own top-k.
        let k_max = batch.iter().map(|p| p.k).max().unwrap_or(0);
        let mut routes = Vec::with_capacity(n);
        let mut queries = Vec::with_capacity(n);
        for pending in batch {
            routes.push((pending.req_id, pending.k, pending.conn));
            queries.push(pending.query);
        }
        let results = inner.matcher.query_batch_with(&mut block, &queries, k_max);
        for ((req_id, k, conn), result) in routes.into_iter().zip(results) {
            let body = match result {
                Ok(mut ranked) => {
                    ranked.truncate(k);
                    ResponseBody::Matches {
                        matches: ranked,
                        batch: n,
                    }
                }
                Err(e) => {
                    inner.count_error();
                    ResponseBody::Error {
                        code: match e {
                            QueryError::UnknownId { .. } => ErrorCode::UnknownId,
                            QueryError::DimMismatch { .. } => ErrorCode::BadVector,
                        },
                        message: e.to_string(),
                    }
                }
            };
            conn.send(&Response { id: req_id, body });
        }
    }
}
