//! # tdmatch-core
//!
//! The core of TDmatch — *Unsupervised Matching of Data and Text* (ICDE
//! 2022). Matches heterogeneous corpora (relational tables, structured
//! text / taxonomies, free text) without supervision:
//!
//! 1. [`builder`] jointly models both corpora as an undirected graph of
//!    data (term) and metadata (tuple / attribute / document / taxonomy)
//!    nodes — Algorithm 1 — with *Intersect* term filtering and the node
//!    merging of §II-C (stemming, numeric bucketing, pre-trained-embedding
//!    similarity);
//! 2. [`expand`] enriches the graph from an external knowledge base and
//!    prunes sink nodes — Algorithm 2;
//! 3. compression (from `tdmatch-compress`) optionally shrinks the graph
//!    while preserving metadata shortest paths — Algorithm 3;
//! 4. [`pipeline`] generates random walks, trains Word2Vec over them —
//!    Algorithm 4 — and exposes metadata-node embeddings;
//! 5. [`matcher`] ranks cross-corpus documents by cosine similarity
//!    (sequentially or query-parallel), with optional score combination
//!    (Fig. 10) and candidate [`blocking`] — inverted token index or
//!    multiprobe [`lsh`] (the paper's future-work extension).
//!
//! A fitted model exports a persistable [`artifact::MatchArtifact`]
//! (versioned binary, CRC-checked) that matches offline and embeds
//! out-of-corpus queries; `TdMatch::fit_prebuilt` resumes from a graph
//! persisted with `tdmatch_graph::persist`.
//!
//! Entry point: [`pipeline::TdMatch`].

pub mod artifact;
pub mod blocking;
pub mod builder;
pub mod config;
pub mod corpus;
pub mod error;
pub mod expand;
pub mod lsh;
pub mod matcher;
pub mod merging;
pub mod pipeline;

pub use config::{BlockingMode, Compression, EmbedMethod, FilterMode, TdConfig};
pub use corpus::{Corpus, StructuredText, Table, TaxonomyNode, TextCorpus};
pub use artifact::{MatchArtifact, PersistError};
pub use error::TdError;
pub use pipeline::{FitOptions, TdMatch, TdModel};
