//! Unigram negative-sampling table.
//!
//! Negative examples are drawn from the unigram distribution raised to the
//! 3/4 power, exactly as in word2vec.c. The distribution is materialized as
//! a fixed-size table for O(1) sampling.

use rand::{Rng, RngExt};

/// Power applied to unigram counts (word2vec.c constant).
const POWER: f64 = 0.75;

/// A sampled-unigram table over word ids `0..counts.len()`.
#[derive(Debug, Clone)]
pub struct NegativeTable {
    table: Vec<u32>,
}

impl NegativeTable {
    /// Builds the table; `size` trades memory for sampling resolution
    /// (word2vec.c uses 1e8; 1e6 is ample for our vocabulary sizes).
    pub fn new(counts: &[u64], size: usize) -> Self {
        assert!(!counts.is_empty(), "cannot build a table over no words");
        let size = size.max(counts.len());
        let norm: f64 = counts.iter().map(|&c| (c as f64).powf(POWER)).sum();
        let mut table = Vec::with_capacity(size);
        let mut cumulative = (counts[0] as f64).powf(POWER) / norm;
        let mut word = 0usize;
        for i in 0..size {
            table.push(word as u32);
            if (i + 1) as f64 / size as f64 > cumulative {
                if word + 1 < counts.len() {
                    word += 1;
                }
                cumulative += (counts[word] as f64).powf(POWER) / norm;
            }
        }
        Self { table }
    }

    /// Draws one negative word id.
    #[inline]
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u32 {
        self.table[rng.random_range(0..self.table.len())]
    }

    /// Table length (for tests).
    pub fn len(&self) -> usize {
        self.table.len()
    }

    /// Whether the table is empty (never true after construction).
    pub fn is_empty(&self) -> bool {
        self.table.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn covers_all_words() {
        let t = NegativeTable::new(&[10, 10, 10], 300);
        let mut seen = [false; 3];
        for &w in &t.table {
            seen[w as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn frequent_words_sampled_more() {
        let t = NegativeTable::new(&[1000, 10], 10_000);
        let mut rng = SmallRng::seed_from_u64(5);
        let mut counts = [0usize; 2];
        for _ in 0..20_000 {
            counts[t.sample(&mut rng) as usize] += 1;
        }
        assert!(
            counts[0] > counts[1] * 5,
            "frequent word should dominate: {counts:?}"
        );
        assert!(counts[1] > 0, "rare word must still appear");
    }

    #[test]
    fn proportions_follow_power_law() {
        // counts 16:1 → (16^.75):(1^.75) = 8:1 sampling ratio.
        let t = NegativeTable::new(&[16, 1], 100_000);
        let share0 = t.table.iter().filter(|&&w| w == 0).count() as f64 / t.len() as f64;
        assert!((share0 - 8.0 / 9.0).abs() < 0.01, "share0 = {share0}");
    }

    #[test]
    fn single_word_vocab() {
        let t = NegativeTable::new(&[5], 100);
        let mut rng = SmallRng::seed_from_u64(1);
        assert_eq!(t.sample(&mut rng), 0);
    }
}
