//! Persistent match artifacts — save a fitted model's embeddings to disk
//! and match from them later without re-training.
//!
//! The paper notes that "any downstream classifier can be trained using
//! the embeddings from our solution" (§I); that requires the embeddings
//! to outlive the fitting process. A [`MatchArtifact`] holds everything
//! matching needs — the term vectors and both corpora's document vectors —
//! in a versioned, checksummed binary format:
//!
//! ```text
//! magic   b"TDM1"
//! version u32 (little-endian, currently 1)
//! dim     u32
//! terms   u32 count, then per term: u32 label length, UTF-8 label, dim f32s
//! first   u32 count, then per doc: u8 present flag, dim f32s if present
//! second  same layout as first
//! crc32   u32 over everything before it (IEEE polynomial)
//! ```
//!
//! All integers and floats are little-endian. The trailing CRC turns
//! silent disk corruption into a load-time [`PersistError::Corrupt`].

use std::collections::HashMap;
use std::io::{self, Read, Write};
use std::path::Path;

use tdmatch_graph::persist::{crc32, put_f32s, put_u32, ByteReader, DecodeError};

use crate::matcher::{top_k_matches, MatchResult};

/// Current on-disk format version.
pub const FORMAT_VERSION: u32 = 1;

const MAGIC: [u8; 4] = *b"TDM1";

/// Errors raised when saving or loading a [`MatchArtifact`].
#[derive(Debug)]
pub enum PersistError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// The file does not start with the TDmatch magic bytes.
    BadMagic,
    /// The file's format version is not supported by this build.
    UnsupportedVersion {
        /// Version found in the file.
        found: u32,
    },
    /// The checksum does not match: the file is truncated or corrupt.
    Corrupt,
    /// A label is not valid UTF-8 (implies corruption).
    BadLabel,
}

impl From<io::Error> for PersistError {
    fn from(e: io::Error) -> Self {
        PersistError::Io(e)
    }
}

impl std::fmt::Display for PersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "I/O error: {e}"),
            PersistError::BadMagic => write!(f, "not a TDmatch artifact (bad magic)"),
            PersistError::UnsupportedVersion { found } => {
                write!(f, "unsupported artifact version {found} (supported: {FORMAT_VERSION})")
            }
            PersistError::Corrupt => write!(f, "artifact checksum mismatch (corrupt file)"),
            PersistError::BadLabel => write!(f, "artifact contains a non-UTF-8 label"),
        }
    }
}

impl std::error::Error for PersistError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PersistError::Io(e) => Some(e),
            _ => None,
        }
    }
}

/// A self-contained, persistable matching state: term embeddings plus the
/// document embeddings of both corpora.
///
/// Obtained from [`TdModel::artifact`](crate::pipeline::TdModel::artifact)
/// or loaded from disk with [`MatchArtifact::load`].
#[derive(Debug, Clone, PartialEq)]
pub struct MatchArtifact {
    dim: usize,
    /// Term label → embedding, sorted by label for deterministic files.
    terms: Vec<(String, Vec<f32>)>,
    term_index: HashMap<String, usize>,
    first: Vec<Option<Vec<f32>>>,
    second: Vec<Option<Vec<f32>>>,
}

impl MatchArtifact {
    /// Assembles an artifact from raw parts. Vectors must all have length
    /// `dim`; term labels must be unique (later duplicates are dropped).
    pub fn new(
        dim: usize,
        mut terms: Vec<(String, Vec<f32>)>,
        first: Vec<Option<Vec<f32>>>,
        second: Vec<Option<Vec<f32>>>,
    ) -> Self {
        debug_assert!(terms.iter().all(|(_, v)| v.len() == dim));
        debug_assert!(first.iter().flatten().all(|v| v.len() == dim));
        debug_assert!(second.iter().flatten().all(|v| v.len() == dim));
        terms.sort_by(|a, b| a.0.cmp(&b.0));
        terms.dedup_by(|b, a| a.0 == b.0);
        let term_index = terms
            .iter()
            .enumerate()
            .map(|(i, (label, _))| (label.clone(), i))
            .collect();
        Self {
            dim,
            terms,
            term_index,
            first,
            second,
        }
    }

    /// Embedding dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of stored term vectors.
    pub fn term_count(&self) -> usize {
        self.terms.len()
    }

    /// `(first corpus size, second corpus size)`.
    pub fn corpus_sizes(&self) -> (usize, usize) {
        (self.first.len(), self.second.len())
    }

    /// The stored embedding of a term, if present.
    pub fn term_vector(&self, term: &str) -> Option<&[f32]> {
        self.term_index
            .get(term)
            .map(|&i| self.terms[i].1.as_slice())
    }

    /// The stored embedding of document `idx` in the first corpus.
    pub fn first_vector(&self, idx: usize) -> Option<&[f32]> {
        self.first.get(idx).and_then(|v| v.as_deref())
    }

    /// The stored embedding of document `idx` in the second corpus.
    pub fn second_vector(&self, idx: usize) -> Option<&[f32]> {
        self.second.get(idx).and_then(|v| v.as_deref())
    }

    /// Ranks the top-`k` first-corpus documents for every second-corpus
    /// document — the same matching as
    /// [`TdModel::match_top_k`](crate::pipeline::TdModel::match_top_k),
    /// without the graph.
    pub fn match_top_k(&self, k: usize) -> Vec<MatchResult> {
        top_k_matches(&self.second, &self.first, k, None, None)
    }

    /// Embeds an *unseen* document as the mean of its known terms' vectors
    /// (the standard aggregation the paper uses for its W2VEC baseline,
    /// §V: "We generate embeddings for longer texts with the mean of the
    /// vectors of their tokens"). Returns `None` when no token is in the
    /// stored vocabulary.
    ///
    /// Tokens should be pre-processed the same way the model was fitted
    /// (e.g. via `tdmatch-text`'s `Preprocessor::base_tokens`).
    pub fn embed_tokens<S: AsRef<str>>(&self, tokens: &[S]) -> Option<Vec<f32>> {
        let mut sum = vec![0.0f32; self.dim];
        let mut hits = 0usize;
        for tok in tokens {
            if let Some(v) = self.term_vector(tok.as_ref()) {
                for (s, x) in sum.iter_mut().zip(v) {
                    *s += x;
                }
                hits += 1;
            }
        }
        if hits == 0 {
            return None;
        }
        let inv = 1.0 / hits as f32;
        for s in &mut sum {
            *s *= inv;
        }
        Some(sum)
    }

    /// Ranks the top-`k` first-corpus documents for one *out-of-corpus*
    /// query given as pre-processed tokens. Queries whose tokens are all
    /// unknown yield an empty ranking.
    pub fn match_new_query<S: AsRef<str>>(&self, tokens: &[S], k: usize) -> MatchResult {
        let query = vec![self.embed_tokens(tokens)];
        let mut results = top_k_matches(&query, &self.first, k, None, None);
        results.swap_remove(0)
    }

    /// Serializes into any writer. See the module docs for the layout.
    pub fn write_to<W: Write>(&self, w: &mut W) -> Result<(), PersistError> {
        let mut buf: Vec<u8> = Vec::new();
        buf.extend_from_slice(&MAGIC);
        put_u32(&mut buf, FORMAT_VERSION);
        put_u32(&mut buf, self.dim as u32);
        put_u32(&mut buf, self.terms.len() as u32);
        for (label, vec) in &self.terms {
            put_u32(&mut buf, label.len() as u32);
            buf.extend_from_slice(label.as_bytes());
            put_f32s(&mut buf, vec);
        }
        for side in [&self.first, &self.second] {
            put_u32(&mut buf, side.len() as u32);
            for doc in side {
                match doc {
                    Some(v) => {
                        buf.push(1);
                        put_f32s(&mut buf, v);
                    }
                    None => buf.push(0),
                }
            }
        }
        let crc = crc32(&buf);
        put_u32(&mut buf, crc);
        w.write_all(&buf)?;
        Ok(())
    }

    /// Deserializes from a reader, verifying magic, version, and checksum.
    pub fn read_from<R: Read>(r: &mut R) -> Result<Self, PersistError> {
        let mut buf = Vec::new();
        r.read_to_end(&mut buf)?;
        if buf.len() < MAGIC.len() + 8 || buf[..4] != MAGIC {
            return Err(PersistError::BadMagic);
        }
        let body_len = buf.len() - 4;
        let stored_crc = u32::from_le_bytes(buf[body_len..].try_into().unwrap());
        if crc32(&buf[..body_len]) != stored_crc {
            return Err(PersistError::Corrupt);
        }
        let mut cur = ByteReader::new(&buf[..body_len], 4);
        let version = cur.u32()?;
        if version != FORMAT_VERSION {
            return Err(PersistError::UnsupportedVersion { found: version });
        }
        let dim = cur.u32()? as usize;
        let n_terms = cur.u32()? as usize;
        let mut terms = Vec::with_capacity(n_terms.min(1 << 20));
        for _ in 0..n_terms {
            let len = cur.u32()? as usize;
            let label = String::from_utf8(cur.bytes(len)?.to_vec())
                .map_err(|_| PersistError::BadLabel)?;
            terms.push((label, cur.f32s(dim)?));
        }
        let mut sides: [Vec<Option<Vec<f32>>>; 2] = [Vec::new(), Vec::new()];
        for side in &mut sides {
            let n = cur.u32()? as usize;
            side.reserve(n.min(1 << 20));
            for _ in 0..n {
                let present = cur.bytes(1)?[0];
                side.push(if present == 1 {
                    Some(cur.f32s(dim)?)
                } else {
                    None
                });
            }
        }
        let [first, second] = sides;
        Ok(Self::new(dim, terms, first, second))
    }

    /// Saves to a file path.
    pub fn save<P: AsRef<Path>>(&self, path: P) -> Result<(), PersistError> {
        let mut f = std::fs::File::create(path)?;
        self.write_to(&mut f)
    }

    /// Loads from a file path.
    pub fn load<P: AsRef<Path>>(path: P) -> Result<Self, PersistError> {
        let mut f = std::fs::File::open(path)?;
        Self::read_from(&mut f)
    }
}

/// Maps shared decode errors into artifact persistence errors.
impl From<DecodeError> for PersistError {
    fn from(e: DecodeError) -> Self {
        match e {
            DecodeError::Io(io) => PersistError::Io(io),
            DecodeError::BadMagic => PersistError::BadMagic,
            DecodeError::UnsupportedVersion { found } => {
                PersistError::UnsupportedVersion { found }
            }
            DecodeError::Corrupt => PersistError::Corrupt,
            DecodeError::Invalid(_) => PersistError::BadLabel,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> MatchArtifact {
        MatchArtifact::new(
            2,
            vec![
                ("tarantino".into(), vec![1.0, 0.0]),
                ("willis".into(), vec![0.5, 0.5]),
            ],
            vec![Some(vec![1.0, 0.0]), None, Some(vec![0.0, 1.0])],
            vec![Some(vec![0.9, 0.1])],
        )
    }

    fn roundtrip(a: &MatchArtifact) -> MatchArtifact {
        let mut buf = Vec::new();
        a.write_to(&mut buf).unwrap();
        MatchArtifact::read_from(&mut buf.as_slice()).unwrap()
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let a = sample();
        let b = roundtrip(&a);
        assert_eq!(a, b);
        assert_eq!(b.term_vector("tarantino"), Some(&[1.0f32, 0.0][..]));
        assert_eq!(b.first_vector(1), None);
        assert_eq!(b.corpus_sizes(), (3, 1));
    }

    #[test]
    fn matching_from_artifact_ranks_by_cosine() {
        let a = sample();
        let r = a.match_top_k(3);
        assert_eq!(r.len(), 1);
        // Query [0.9, 0.1]: closest is first doc [1,0], then [0,1]; the
        // None doc ranks last with score -1.
        assert_eq!(r[0].target_indices(), vec![0, 2, 1]);
    }

    #[test]
    fn embed_tokens_averages_known_vectors() {
        let a = sample();
        // "tarantino" = [1,0], "willis" = [0.5,0.5]; mean = [0.75, 0.25].
        let v = a.embed_tokens(&["tarantino", "willis", "unknown"]).unwrap();
        assert!((v[0] - 0.75).abs() < 1e-6 && (v[1] - 0.25).abs() < 1e-6);
        // All-unknown queries embed to nothing.
        assert!(a.embed_tokens(&["zzz", "yyy"]).is_none());
        assert!(a.embed_tokens::<&str>(&[]).is_none());
    }

    #[test]
    fn new_query_ranks_against_first_corpus() {
        let a = sample();
        // Query = "tarantino" → [1, 0]: nearest is first doc [1,0].
        let r = a.match_new_query(&["tarantino"], 2);
        assert_eq!(r.target_indices()[0], 0);
        // Unknown query gets an empty ranking, not a panic.
        let r = a.match_new_query(&["zzz"], 2);
        assert!(r.ranked.is_empty());
    }

    #[test]
    fn crc32_matches_known_vector() {
        // Standard test vector: CRC32("123456789") = 0xCBF43926.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn bad_magic_is_rejected() {
        let mut buf = Vec::new();
        sample().write_to(&mut buf).unwrap();
        buf[0] = b'X';
        let err = MatchArtifact::read_from(&mut buf.as_slice()).unwrap_err();
        assert!(matches!(err, PersistError::BadMagic));
    }

    #[test]
    fn bit_flip_anywhere_is_detected() {
        let mut clean = Vec::new();
        sample().write_to(&mut clean).unwrap();
        // Flip one bit in every byte position past the magic; each must
        // fail (checksum, version, or structure) — never load silently
        // wrong data equal to the original.
        for pos in 4..clean.len() {
            let mut buf = clean.clone();
            buf[pos] ^= 0x01;
            match MatchArtifact::read_from(&mut buf.as_slice()) {
                Err(_) => {}
                Ok(loaded) => panic!(
                    "bit flip at {pos} loaded successfully (CRC missed it): {loaded:?}"
                ),
            }
        }
    }

    #[test]
    fn truncation_is_detected() {
        let mut buf = Vec::new();
        sample().write_to(&mut buf).unwrap();
        for cut in [1usize, 4, buf.len() / 2, buf.len() - 1] {
            let short = &buf[..cut];
            assert!(
                MatchArtifact::read_from(&mut &short[..]).is_err(),
                "truncated file of {cut} bytes loaded"
            );
        }
    }

    #[test]
    fn future_version_is_rejected() {
        let mut buf = Vec::new();
        sample().write_to(&mut buf).unwrap();
        // Overwrite the version field (bytes 4..8) and re-stamp the CRC.
        buf[4..8].copy_from_slice(&99u32.to_le_bytes());
        let body = buf.len() - 4;
        let crc = crc32(&buf[..body]);
        buf[body..].copy_from_slice(&crc.to_le_bytes());
        let err = MatchArtifact::read_from(&mut buf.as_slice()).unwrap_err();
        assert!(matches!(err, PersistError::UnsupportedVersion { found: 99 }));
    }

    #[test]
    fn duplicate_terms_keep_first_occurrence_after_sort() {
        let a = MatchArtifact::new(
            1,
            vec![("b".into(), vec![2.0]), ("a".into(), vec![1.0]), ("a".into(), vec![9.0])],
            vec![],
            vec![],
        );
        assert_eq!(a.term_count(), 2);
        assert!(a.term_vector("a").is_some());
    }

    #[test]
    fn save_and_load_via_files() {
        let dir = std::env::temp_dir().join("tdmatch-artifact-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.tdm");
        let a = sample();
        a.save(&path).unwrap();
        let b = MatchArtifact::load(&path).unwrap();
        assert_eq!(a, b);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_file_is_io_error() {
        let err = MatchArtifact::load("/nonexistent/path/model.tdm").unwrap_err();
        assert!(matches!(err, PersistError::Io(_)));
        assert!(err.to_string().contains("I/O"));
    }
}
