//! String strategies from regex-like patterns.
//!
//! Supports the pattern subset this workspace's tests use: a sequence of
//! atoms, each an explicit character class `[...]` (literal characters and
//! `a-z` ranges; `-` is literal when first or last) or `.` (any printable
//! ASCII character), followed by an optional `{n}` / `{lo,hi}` / `+` / `*`
//! quantifier. Unquantified atoms emit exactly one character.

use crate::{Strategy, TestRng};

#[derive(Debug, Clone)]
struct Atom {
    /// Candidate characters, pre-expanded.
    chars: Vec<char>,
    /// Inclusive repetition bounds.
    lo: usize,
    hi: usize,
}

/// Parses the supported pattern subset; panics on anything else so a test
/// using an unsupported feature fails loudly rather than silently drifting.
fn parse(pattern: &str) -> Vec<Atom> {
    let mut atoms = Vec::new();
    let chars: Vec<char> = pattern.chars().collect();
    let mut i = 0;
    while i < chars.len() {
        let set: Vec<char> = match chars[i] {
            '.' => {
                i += 1;
                (' '..='~').collect()
            }
            '[' => {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == ']')
                    .unwrap_or_else(|| panic!("unclosed class in pattern {pattern:?}"))
                    + i;
                let class = &chars[i + 1..close];
                i = close + 1;
                expand_class(class, pattern)
            }
            c => {
                i += 1;
                vec![c]
            }
        };
        let (lo, hi) = match chars.get(i) {
            Some('{') => {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == '}')
                    .unwrap_or_else(|| panic!("unclosed quantifier in pattern {pattern:?}"))
                    + i;
                let spec: String = chars[i + 1..close].iter().collect();
                i = close + 1;
                match spec.split_once(',') {
                    Some((lo, hi)) => (
                        lo.trim().parse().expect("bad quantifier lower bound"),
                        hi.trim().parse().expect("bad quantifier upper bound"),
                    ),
                    None => {
                        let n = spec.trim().parse().expect("bad quantifier count");
                        (n, n)
                    }
                }
            }
            Some('+') => {
                i += 1;
                (1, 8)
            }
            Some('*') => {
                i += 1;
                (0, 8)
            }
            _ => (1, 1),
        };
        assert!(lo <= hi, "inverted quantifier in pattern {pattern:?}");
        atoms.push(Atom {
            chars: set,
            lo,
            hi,
        });
    }
    atoms
}

fn expand_class(class: &[char], pattern: &str) -> Vec<char> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < class.len() {
        // `a-z` range (not when `-` is first or last).
        if i + 2 < class.len() && class[i + 1] == '-' {
            let (lo, hi) = (class[i], class[i + 2]);
            assert!(lo <= hi, "inverted char range in pattern {pattern:?}");
            for c in lo..=hi {
                out.push(c);
            }
            i += 3;
        } else {
            out.push(class[i]);
            i += 1;
        }
    }
    assert!(!out.is_empty(), "empty char class in pattern {pattern:?}");
    out
}

impl Strategy for &'static str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        let atoms = parse(self);
        let mut s = String::new();
        for atom in &atoms {
            let n = atom.lo + rng.below((atom.hi - atom.lo + 1) as u64) as usize;
            for _ in 0..n {
                s.push(atom.chars[rng.below(atom.chars.len() as u64) as usize]);
            }
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_with_trailing_hyphen_is_literal() {
        let atoms = parse("[a-c!-]{2,4}");
        assert!(atoms[0].chars.contains(&'-'));
        assert!(atoms[0].chars.contains(&'!'));
        assert_eq!(atoms[0].lo, 2);
        assert_eq!(atoms[0].hi, 4);
    }

    #[test]
    fn pattern_lengths_respect_quantifiers() {
        let mut rng = TestRng::new(1);
        for _ in 0..50 {
            let s = Strategy::generate(&"[a-z ]{0,60}", &mut rng);
            assert!(s.len() <= 60);
            assert!(s.chars().all(|c| c == ' ' || c.is_ascii_lowercase()));
        }
    }

    #[test]
    fn exact_count_quantifier() {
        let mut rng = TestRng::new(2);
        let s = Strategy::generate(&"[0-9]{5}", &mut rng);
        assert_eq!(s.len(), 5);
    }
}
