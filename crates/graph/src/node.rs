//! Node identity and typing.

/// Compact node identifier: index into the graph's node tables.
///
/// `repr(transparent)` over `u32` so CSR snapshot sections can be viewed
/// zero-copy as `&[NodeId]` (see `tdmatch_graph::container`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[repr(transparent)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The node's index as `usize`, for table lookups.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Which of the two input corpora a metadata node belongs to.
///
/// Algorithm 1 never connects metadata nodes from *different* corpora —
/// those connections are exactly what the downstream matching must produce —
/// so the side is part of every metadata node's identity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CorpusSide {
    /// The first corpus handed to graph creation.
    First,
    /// The second corpus.
    Second,
}

impl CorpusSide {
    /// The opposite side.
    #[inline]
    pub fn other(self) -> Self {
        match self {
            CorpusSide::First => CorpusSide::Second,
            CorpusSide::Second => CorpusSide::First,
        }
    }
}

/// The specific role of a metadata node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MetaKind {
    /// A relational tuple (row); `index` is the row number in its corpus.
    Tuple,
    /// A table attribute (column); adds 2-hop paths across the column's
    /// active domain (§II).
    Attribute,
    /// A free-text document (sentence or paragraph, user-defined).
    TextDoc,
    /// A node of a structured-text taxonomy; connected to its parent.
    Taxonomy,
}

/// The type of a graph node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NodeKind {
    /// A term node produced by pre-processing.
    Data,
    /// A node brought in by graph expansion (Alg. 2) from an external
    /// resource; behaves as data for walks but never participates in
    /// matching.
    External,
    /// A metadata node: the objects we ultimately match.
    Meta {
        /// Which corpus the document belongs to.
        side: CorpusSide,
        /// What the node represents.
        kind: MetaKind,
        /// Document / column index within its corpus.
        index: u32,
    },
}

impl NodeKind {
    /// True for metadata nodes (tuples, attributes, documents, taxonomy).
    #[inline]
    pub fn is_metadata(&self) -> bool {
        matches!(self, NodeKind::Meta { .. })
    }

    /// True for document-level metadata (matchable objects): tuples, text
    /// documents and taxonomy nodes — attributes are structural helpers and
    /// are not matched.
    #[inline]
    pub fn is_matchable(&self) -> bool {
        matches!(
            self,
            NodeKind::Meta {
                kind: MetaKind::Tuple | MetaKind::TextDoc | MetaKind::Taxonomy,
                ..
            }
        )
    }

    /// The corpus side, if this is a metadata node.
    #[inline]
    pub fn side(&self) -> Option<CorpusSide> {
        match self {
            NodeKind::Meta { side, .. } => Some(*side),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn metadata_classification() {
        assert!(!NodeKind::Data.is_metadata());
        assert!(!NodeKind::External.is_metadata());
        let tup = NodeKind::Meta {
            side: CorpusSide::First,
            kind: MetaKind::Tuple,
            index: 0,
        };
        assert!(tup.is_metadata());
        assert!(tup.is_matchable());
        let attr = NodeKind::Meta {
            side: CorpusSide::First,
            kind: MetaKind::Attribute,
            index: 0,
        };
        assert!(attr.is_metadata());
        assert!(!attr.is_matchable());
    }

    #[test]
    fn sides_flip() {
        assert_eq!(CorpusSide::First.other(), CorpusSide::Second);
        assert_eq!(CorpusSide::Second.other(), CorpusSide::First);
    }

    #[test]
    fn node_id_display() {
        assert_eq!(NodeId(7).to_string(), "n7");
    }
}
