//! Precision / recall / F-score with exact matching (Table III "Exact").
//!
//! For every document the matcher assigns top-k taxonomy paths; an
//! assignment counts only if it is *equal* to a ground-truth path. Scores
//! are macro-averaged over documents.

use std::collections::HashSet;

/// A precision/recall/F bundle.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Prf {
    /// Precision.
    pub precision: f64,
    /// Recall.
    pub recall: f64,
    /// F1 (harmonic mean; 0 when both components are 0).
    pub f1: f64,
}

impl Prf {
    /// Computes F1 from P and R.
    pub fn from_pr(precision: f64, recall: f64) -> Self {
        let f1 = if precision + recall > 0.0 {
            2.0 * precision * recall / (precision + recall)
        } else {
            0.0
        };
        Self {
            precision,
            recall,
            f1,
        }
    }
}

/// Exact-match P/R/F for one document: `predicted` is the top-k list,
/// `truth` the ground-truth set.
pub fn exact_prf_single<T: Eq + std::hash::Hash>(predicted: &[T], truth: &HashSet<T>) -> Prf {
    if predicted.is_empty() || truth.is_empty() {
        return Prf::default();
    }
    let hits = predicted.iter().filter(|p| truth.contains(p)).count() as f64;
    Prf::from_pr(hits / predicted.len() as f64, hits / truth.len() as f64)
}

/// Macro-averaged exact P/R/F over documents. Documents with empty ground
/// truth are skipped.
pub fn exact_prf<T: Eq + std::hash::Hash>(docs: &[(Vec<T>, HashSet<T>)]) -> Prf {
    let mut p_sum = 0.0;
    let mut r_sum = 0.0;
    let mut n = 0usize;
    for (predicted, truth) in docs {
        if truth.is_empty() {
            continue;
        }
        let prf = exact_prf_single(predicted, truth);
        p_sum += prf.precision;
        r_sum += prf.recall;
        n += 1;
    }
    if n == 0 {
        return Prf::default();
    }
    Prf::from_pr(p_sum / n as f64, r_sum / n as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(items: &[&str]) -> HashSet<String> {
        items.iter().map(|s| s.to_string()).collect()
    }

    fn v(items: &[&str]) -> Vec<String> {
        items.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn single_doc_hand_computed() {
        // 1 hit out of 3 predictions, 1 hit out of 2 truths.
        let prf = exact_prf_single(&v(&["a", "b", "c"]), &set(&["a", "z"]));
        assert!((prf.precision - 1.0 / 3.0).abs() < 1e-12);
        assert!((prf.recall - 0.5).abs() < 1e-12);
        let expected_f = 2.0 * (1.0 / 3.0) * 0.5 / (1.0 / 3.0 + 0.5);
        assert!((prf.f1 - expected_f).abs() < 1e-12);
    }

    #[test]
    fn perfect_and_zero() {
        let perfect = exact_prf_single(&v(&["a"]), &set(&["a"]));
        assert_eq!(perfect, Prf::from_pr(1.0, 1.0));
        let zero = exact_prf_single(&v(&["x"]), &set(&["a"]));
        assert_eq!(zero.f1, 0.0);
    }

    #[test]
    fn macro_average_skips_empty_truth() {
        let docs = vec![
            (v(&["a"]), set(&["a"])),
            (v(&["x"]), set(&["a"])),
            (v(&["x"]), HashSet::new()),
        ];
        let prf = exact_prf(&docs);
        assert!((prf.precision - 0.5).abs() < 1e-12);
        assert!((prf.recall - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_inputs() {
        assert_eq!(exact_prf::<String>(&[]), Prf::default());
        assert_eq!(exact_prf_single(&Vec::<String>::new(), &set(&["a"])), Prf::default());
    }

    #[test]
    fn recall_grows_with_k() {
        let truth = set(&["a", "b", "c"]);
        let k1 = exact_prf_single(&v(&["a"]), &truth);
        let k3 = exact_prf_single(&v(&["a", "b", "x"]), &truth);
        assert!(k3.recall > k1.recall);
        assert!(k3.precision < k1.precision + 1e-12);
    }
}
