//! §IV-A ablation — embedding generator: Word2Vec on walks (paper
//! default) vs PV-DBOW per-node document vectors (a graph-native
//! DeepWalk-style alternative).
//!
//! Paper context (§IV-A, §VI): the paper found graph-native alternatives
//! "comparable [in quality] ... but more resources intensive" — but the
//! alternatives it cites (DeepWalk \[36\], node2vec \[37\]) are themselves
//! Word2Vec over (biased) walks; that comparison is reproduced in
//! `ablation_walk_strategy`, where quality is indeed comparable. This
//! bench measures a *different* alternative — PV-DBOW with one document
//! per node — and finds it substantially weaker: a DBOW doc vector only
//! models the first-order word distribution of its own walks, losing the
//! higher-order signal of metadata nodes appearing in *each other's*
//! walks that Word2Vec's context windows capture. Measured and recorded
//! in EXPERIMENTS.md as a negative result supporting the paper's default.

use tdmatch_bench::{bench_config, evaluate, run_with_config};
use tdmatch_core::config::EmbedMethod;
use tdmatch_datasets::corona::SentenceKind;
use tdmatch_datasets::{audit, claims, corona, imdb, Scale, Scenario};

fn main() {
    let scenarios: Vec<Scenario> = vec![
        imdb::generate(Scale::Tiny, 42, true),
        corona::generate(Scale::Tiny, 42, SentenceKind::Generated),
        audit::generate(Scale::Tiny, 42),
        claims::snopes(Scale::Tiny, 42),
    ];
    let methods = [
        ("w2v-walks", EmbedMethod::WalkWord2Vec),
        ("d2v-walks", EmbedMethod::WalkDoc2Vec),
    ];
    println!("\n=== Ablation — embedding method (MAP@5 / train s) ===");
    print!("{:<12}", "scenario");
    for (name, _) in &methods {
        print!(" {name:>16}");
    }
    println!();
    for scenario in &scenarios {
        print!("{:<12}", scenario.name);
        for (_, method) in &methods {
            let mut config = bench_config(&scenario.config);
            config.embed_method = *method;
            let (run, _) = run_with_config(scenario, config, 20, false);
            let m = evaluate(&run, scenario);
            print!(" {:>8.3}/{:<7.2}", m.map_at[1], run.train_secs);
        }
        println!();
    }
}
