//! Simulated pre-trained embeddings (Wikipedia2Vec / SentenceBERT stand-in).
//!
//! The paper uses two pre-trained resources: Wikipedia2Vec vectors to merge
//! similar data nodes (γ = 0.57, §II-C) and SentenceBERT as the strongest
//! unsupervised baseline (S-BE, §V). Neither can be shipped here, so we
//! build a deterministic vector space with the properties that matter:
//!
//! * words in the same synonym group embed close (cosine well above
//!   unrelated words) — merging and generic-text matching work;
//! * every general-lexicon word and each registered "popular entity" has a
//!   vector — the model is good on generic text (STS, Snopes);
//! * domain-specific terms (audit vocabulary, invented movie titles, most
//!   synthetic person names) are **out of vocabulary** — the model degrades
//!   exactly where the paper says pre-trained resources degrade;
//! * for sentence embeddings, unknown words contribute only a weak
//!   hash-based vector, mimicking a transformer's subword fallback.

use std::collections::HashMap;

use tdmatch_text::stem::stem;

use crate::lexicon;

/// Deterministic hash → unit-ish vector, used for concept bases and OOV
/// fallbacks.
fn hash_vector(key: &str, salt: u64, dim: usize) -> Vec<f32> {
    let mut state = salt ^ 0xcbf2_9ce4_8422_2325;
    for b in key.bytes() {
        state ^= b as u64;
        state = state.wrapping_mul(0x100_0000_01b3);
    }
    let mut v = Vec::with_capacity(dim);
    for i in 0..dim {
        let mut x = state ^ (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        x ^= x >> 31;
        let unit = (x >> 40) as f32 / (1u64 << 24) as f32; // [0, 1)
        v.push(unit * 2.0 - 1.0);
    }
    normalize(&mut v);
    v
}

fn normalize(v: &mut [f32]) {
    let n: f32 = v.iter().map(|x| x * x).sum::<f32>().sqrt();
    if n > 0.0 {
        for x in v {
            *x /= n;
        }
    }
}

fn cosine(a: &[f32], b: &[f32]) -> f32 {
    let mut dot = 0.0;
    let mut na = 0.0;
    let mut nb = 0.0;
    for (&x, &y) in a.iter().zip(b) {
        dot += x * y;
        na += x * x;
        nb += y * y;
    }
    if na == 0.0 || nb == 0.0 {
        0.0
    } else {
        dot / (na.sqrt() * nb.sqrt())
    }
}

/// How strongly a word's idiosyncratic component perturbs its concept base.
/// Chosen so that synonym cosine lands near the paper's γ = 0.57.
const WORD_NOISE: f32 = 0.95;
/// Weight of the OOV hash fallback in sentence embeddings. Deterministic
/// per surface form, so shared unseen tokens still align two sentences —
/// the behavior of subword vocabularies in real sentence encoders.
const OOV_WEIGHT: f32 = 0.6;

/// The simulated pre-trained model.
#[derive(Debug, Clone)]
pub struct PretrainedModel {
    dim: usize,
    vectors: HashMap<String, Vec<f32>>,
    seed: u64,
}

impl PretrainedModel {
    /// Builds the standard model over the general lexicon: nouns, verbs,
    /// adjectives, title words, countries, genre pairs, first names, and a
    /// deterministic fraction (`entity_coverage` in `[0,1]`) of last names
    /// — "popular entities" the pre-trained resource happens to know.
    ///
    /// Audit terms and acronyms are deliberately excluded.
    pub fn standard(dim: usize, seed: u64, entity_coverage: f64) -> Self {
        let mut model = Self {
            dim,
            vectors: HashMap::new(),
            seed,
        };
        // Synonym groups first: one shared concept base per group.
        for (gi, group) in lexicon::SYNONYM_GROUPS.iter().enumerate() {
            let base = hash_vector(&format!("concept-group-{gi}"), seed, dim);
            for &w in *group {
                model.insert_word(w, &base);
            }
        }
        // Genre colloquialisms share a concept with their genre.
        for (genre, colloquial) in lexicon::GENRES {
            let base = hash_vector(&format!("concept-genre-{genre}"), seed, dim);
            model.insert_word(genre, &base);
            model.insert_word(colloquial, &base);
        }
        // Remaining general vocabulary: own concept each.
        let singles = lexicon::GENERIC_NOUNS
            .iter()
            .chain(lexicon::GENERIC_VERBS)
            .chain(lexicon::GENERIC_ADJS)
            .chain(lexicon::TITLE_WORDS)
            .chain(lexicon::COUNTRIES)
            .chain(lexicon::FIRST_NAMES);
        for &w in singles {
            if !model.vectors.contains_key(w) {
                let base = hash_vector(&format!("concept-{w}"), seed, dim);
                model.insert_word(w, &base);
            }
        }
        // Popular entities: a deterministic subset of last names.
        for (i, &name) in lexicon::LAST_NAMES.iter().enumerate() {
            let covered =
                lexicon::pick(seed ^ 0xE17, i as u64, 1000) < (entity_coverage * 1000.0) as usize;
            if covered {
                let base = hash_vector(&format!("concept-entity-{name}"), seed, dim);
                model.insert_word(name, &base);
            }
        }
        model
    }

    /// Inserts `word` (and its stemmed form) as `base + WORD_NOISE · hash`.
    fn insert_word(&mut self, word: &str, base: &[f32]) {
        let noise = hash_vector(word, self.seed ^ 0xBEEF, self.dim);
        let mut v: Vec<f32> = base
            .iter()
            .zip(&noise)
            .map(|(&b, &n)| b + WORD_NOISE * n)
            .collect();
        normalize(&mut v);
        let stemmed = stem(word);
        self.vectors.entry(word.to_string()).or_insert_with(|| v.clone());
        self.vectors.entry(stemmed).or_insert(v);
    }

    /// Registers an additional known entity (e.g. a famous full name the
    /// dataset generator marks as popular).
    pub fn add_entity(&mut self, name: &str) {
        let base = hash_vector(&format!("concept-entity-{name}"), self.seed, self.dim);
        self.insert_word(name, &base);
    }

    /// Vector dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of known surface forms.
    pub fn vocab_size(&self) -> usize {
        self.vectors.len()
    }

    /// The vector of `word`, trying the raw form then the stemmed form.
    /// `None` for out-of-vocabulary words.
    pub fn word_vector(&self, word: &str) -> Option<&[f32]> {
        self.vectors
            .get(word)
            .or_else(|| self.vectors.get(&stem(word)))
            .map(|v| v.as_slice())
    }

    /// True if the model knows `word`.
    pub fn knows(&self, word: &str) -> bool {
        self.word_vector(word).is_some()
    }

    /// Cosine similarity between two words; `None` if either is OOV.
    pub fn similarity(&self, a: &str, b: &str) -> Option<f32> {
        Some(cosine(self.word_vector(a)?, self.word_vector(b)?))
    }

    /// Similarity between two multi-token labels (mean-of-tokens on each
    /// side); `None` if either side is fully OOV. This is what the merging
    /// step compares against γ.
    pub fn label_similarity(&self, a: &str, b: &str) -> Option<f32> {
        let va = self.label_vector(a)?;
        let vb = self.label_vector(b)?;
        Some(cosine(&va, &vb))
    }

    /// Mean vector of the known tokens of a label; `None` if all OOV.
    pub fn label_vector(&self, label: &str) -> Option<Vec<f32>> {
        let mut acc = vec![0.0f32; self.dim];
        let mut n = 0usize;
        for tok in label.split_whitespace() {
            if let Some(v) = self.word_vector(tok) {
                for (a, &x) in acc.iter_mut().zip(v) {
                    *a += x;
                }
                n += 1;
            }
        }
        if n == 0 {
            return None;
        }
        let inv = 1.0 / n as f32;
        for a in &mut acc {
            *a *= inv;
        }
        Some(acc)
    }

    /// Sentence embedding: mean over token vectors, with OOV tokens
    /// contributing a weak hash vector (subword-fallback behavior). This is
    /// the S-BE baseline's encoder.
    pub fn sentence_vector<S: AsRef<str>>(&self, tokens: &[S]) -> Vec<f32> {
        let mut acc = vec![0.0f32; self.dim];
        let mut n = 0usize;
        for tok in tokens {
            let tok = tok.as_ref();
            match self.word_vector(tok) {
                Some(v) => {
                    for (a, &x) in acc.iter_mut().zip(v) {
                        *a += x;
                    }
                }
                None => {
                    let v = hash_vector(tok, self.seed ^ OOV_SALT, self.dim);
                    for (a, &x) in acc.iter_mut().zip(&v) {
                        *a += OOV_WEIGHT * x;
                    }
                }
            }
            n += 1;
        }
        if n > 0 {
            let inv = 1.0 / n as f32;
            for a in &mut acc {
                *a *= inv;
            }
        }
        acc
    }

    /// Calibrates the merge threshold γ as the mean cosine over known
    /// synonym pairs (§II-C). Falls back to `0.57` (the paper's
    /// Wikipedia2Vec value) when no pair is in vocabulary.
    pub fn calibrate_gamma(&self, pairs: &[(String, String)]) -> f32 {
        let mut sum = 0.0f32;
        let mut n = 0usize;
        for (a, b) in pairs {
            if let Some(s) = self.similarity(a, b) {
                sum += s;
                n += 1;
            }
        }
        if n == 0 {
            0.57
        } else {
            sum / n as f32
        }
    }
}

/// Salt separating the OOV fallback space from concept vectors.
const OOV_SALT: u64 = 0xF00D;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wordnet::SyntheticWordNet;

    fn model() -> PretrainedModel {
        PretrainedModel::standard(64, 42, 0.25)
    }

    #[test]
    fn synonyms_are_closer_than_random_words() {
        let m = model();
        let syn = m.similarity("big", "large").unwrap();
        let unrel = m.similarity("big", "doctor").unwrap();
        assert!(syn > 0.35, "synonym similarity too low: {syn}");
        assert!(syn > unrel + 0.25, "syn={syn} unrel={unrel}");
    }

    #[test]
    fn audit_terms_are_oov() {
        let m = model();
        assert!(!m.knows("materiality"));
        assert!(!m.knows("pdca"));
        assert!(m.knows("movie"));
    }

    #[test]
    fn gamma_calibration_matches_paper_ballpark() {
        let m = model();
        let wn = SyntheticWordNet::standard();
        let gamma = m.calibrate_gamma(wn.synonym_pairs());
        // The paper reports γ = 0.57 for Wikipedia2Vec; our space is tuned
        // to land in the same region.
        assert!(
            (0.35..=0.75).contains(&gamma),
            "gamma {gamma} out of plausible band"
        );
    }

    #[test]
    fn sentence_vectors_reflect_content() {
        let m = model();
        let a = m.sentence_vector(&["the", "movie", "was", "great"]);
        let b = m.sentence_vector(&["the", "film", "was", "excellent"]);
        let c = m.sentence_vector(&["tax", "policy", "vote", "senate"]);
        assert!(cosine(&a, &b) > cosine(&a, &c));
    }

    #[test]
    fn oov_sentences_are_weakly_distinguishable() {
        let m = model();
        let a = m.sentence_vector(&["materiality", "workpaper"]);
        let b = m.sentence_vector(&["materiality", "workpaper"]);
        let c = m.sentence_vector(&["substantive", "sampling"]);
        assert_eq!(a, b, "deterministic");
        assert!(cosine(&a, &c) < 0.9, "distinct OOV content should differ");
        assert!(a.iter().any(|&x| x != 0.0));
    }

    #[test]
    fn entity_coverage_is_partial() {
        let m = model();
        let known = crate::lexicon::LAST_NAMES
            .iter()
            .filter(|n| m.knows(n))
            .count();
        let frac = known as f64 / crate::lexicon::LAST_NAMES.len() as f64;
        assert!(frac > 0.05 && frac < 0.6, "coverage fraction {frac}");
    }

    #[test]
    fn add_entity_registers_full_names() {
        let mut m = model();
        assert!(!m.knows("zorblat"));
        m.add_entity("zorblat");
        assert!(m.knows("zorblat"));
    }

    #[test]
    fn label_similarity_handles_multi_token() {
        let m = model();
        let s = m.label_similarity("dark night", "dark night");
        assert!((s.unwrap() - 1.0).abs() < 1e-5);
        assert!(m.label_similarity("materiality", "workpaper").is_none());
    }

    #[test]
    fn deterministic_across_constructions() {
        let a = PretrainedModel::standard(32, 7, 0.2);
        let b = PretrainedModel::standard(32, 7, 0.2);
        assert_eq!(a.word_vector("movie"), b.word_vector("movie"));
    }
}
