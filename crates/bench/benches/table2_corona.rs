//! Table II — quality of match results for the CoronaCheck scenario
//! (Gen and Usr claim corpora).
//!
//! Methods: S-BE, W-RW, W-RW-EX, RANK*, DEEP-M*, DITTO*, TAPAS*.
//! Paper shape: W-RW(-EX) on top for both corpora; Usr harder than Gen;
//! supervised methods well below the unsupervised graph method.

use tdmatch_bench::{
    evaluate, print_ranking_header, print_ranking_row, run_wrw, run_wrw_ex, scale_from_env,
    supervised_options, MethodRun, TABLE_K,
};
use tdmatch_datasets::corona::{self, SentenceKind};

fn main() {
    let scale = scale_from_env();
    for kind in [SentenceKind::Generated, SentenceKind::User] {
        let scenario = corona::generate(scale, 42, kind);
        let variant = match kind {
            SentenceKind::Generated => "Gen",
            SentenceKind::User => "Usr",
        };
        print_ranking_header(&format!("Table II — CoronaCheck {variant}"));

        let sbe: MethodRun = tdmatch_baselines::sbe::run(
            &scenario.first,
            &scenario.second,
            &scenario.pretrained,
            TABLE_K,
        )
        .into();
        print_ranking_row(&sbe.method.clone(), &evaluate(&sbe, &scenario));

        let (wrw, _) = run_wrw(&scenario, TABLE_K);
        print_ranking_row(&wrw.method.clone(), &evaluate(&wrw, &scenario));

        let (wrw_ex, _) = run_wrw_ex(&scenario, TABLE_K);
        print_ranking_row(&wrw_ex.method.clone(), &evaluate(&wrw_ex, &scenario));

        let opts = supervised_options(42);
        let supervised_runs: Vec<MethodRun> = vec![
            tdmatch_baselines::rank::run(
                &scenario.first,
                &scenario.second,
                &scenario.ground_truth,
                &scenario.pretrained,
                &opts,
                TABLE_K,
            )
            .into(),
            tdmatch_baselines::supervised::run_deepmatcher(
                &scenario.first,
                &scenario.second,
                &scenario.ground_truth,
                &scenario.pretrained,
                &opts,
                TABLE_K,
            )
            .into(),
            tdmatch_baselines::supervised::run_ditto(
                &scenario.first,
                &scenario.second,
                &scenario.ground_truth,
                &scenario.pretrained,
                &opts,
                TABLE_K,
            )
            .into(),
            tdmatch_baselines::supervised::run_tapas(
                &scenario.first,
                &scenario.second,
                &scenario.ground_truth,
                &scenario.pretrained,
                &opts,
                TABLE_K,
            )
            .into(),
        ];
        for run in supervised_runs {
            print_ranking_row(&run.method.clone(), &evaluate(&run, &scenario));
        }
    }
}
